/**
 * pldchaos: kill -9 chaos soak for the compile daemon.
 *
 *   $ pldchaos                          # full soak (all crash specs)
 *   $ pldchaos --list                   # print the spec list
 *   $ pldchaos --spec io_crash_point:store.put.tmp_written*2
 *   $ pldchaos --hang-smoke             # client-deadline self-test
 *   $ pldchaos --hang-serve /tmp/h.sock # accept-and-never-respond
 *                                       # server (for CI pldc smoke)
 *
 * The soak drives one scenario per fault spec: it spawns a real
 * `pldd` with PLD_FAULT set so the artifact store's filesystem
 * fails — or the process dies without warning (std::_Exit, the
 * injectable cousin of kill -9) — at a named crash site, then runs
 * an edit-refine workload through it with the client retry
 * discipline, restarting the daemon cleanly on the same store after
 * each crash. Per scenario it asserts the crash-safety contract:
 *
 *  - availability: every request eventually answers Ok;
 *  - integrity: every served blob is bit-identical to a direct
 *    library build, and no corrupt store entry is ever served
 *    (store.corrupt stays 0, including a final offline scan);
 *  - recompile-at-most-once: after a restart the daemon recompiles
 *    only artifacts the crash actually lost (run-2 backend compiles
 *    == apps minus recovered entries; the re-get phase compiles
 *    nothing);
 *  - exactly one crash per crash spec (the site was really reached).
 *
 * Everything is seeded and deterministic; blob expectations are
 * computed in-process by the same library the daemon links.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <chrono>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/io.h"
#include "fabric/device.h"
#include "ir/builder.h"
#include "pld/compiler.h"
#include "svc/client.h"
#include "svc/service.h"
#include "svc/store.h"
#include "svc/wire.h"

extern char **environ;

using namespace pld;
namespace fs = std::filesystem;

namespace {

constexpr int kApps = 3;
constexpr int kCrashExit = FaultVfs::kCrashExitCode;

// Crash specs the soak must survive. Each names a site the workload
// provably reaches ('*N' = die on the Nth arrival): five put sites
// x2, both index sites x3, the recovery scan, and the read path x3
// (reached by the re-get phase). Eviction-path crash sites need a
// controlled byte budget and are covered by tests/svc/test_crash.cpp
// instead.
const char *kCrashSpecs[] = {
    "io_crash_point:store.open.recovered*1",
    "io_crash_point:store.put.begin*1",
    "io_crash_point:store.put.begin*2",
    "io_crash_point:store.put.tmp_written*1",
    "io_crash_point:store.put.tmp_written*2",
    "io_crash_point:store.put.entry_renamed*1",
    "io_crash_point:store.put.entry_renamed*2",
    "io_crash_point:store.put.dir_synced*1",
    "io_crash_point:store.put.dir_synced*2",
    "io_crash_point:store.put.done*1",
    "io_crash_point:store.put.done*2",
    "io_crash_point:store.index.tmp_written*1",
    "io_crash_point:store.index.tmp_written*2",
    "io_crash_point:store.index.tmp_written*3",
    "io_crash_point:store.index.renamed*1",
    "io_crash_point:store.index.renamed*2",
    "io_crash_point:store.index.renamed*3",
    "io_crash_point:store.get.before_read*1",
    "io_crash_point:store.get.before_read*2",
    "io_crash_point:store.get.before_read*3",
};

// Non-crash fault scenarios: the disk misbehaves but the daemon must
// keep answering correctly (degraded, never wrong).
const char *kFaultSpecs[] = {
    "io_enospc:*",           // every write fails: serve from memory
    "io_enospc:lru.txt.tmp", // only the index is unwritable
    "io_eio:lru.txt*2",      // index rename flakes twice, heals
    "io_torn_rename:lru.txt*1", // index torn by an unsynced rename
};

constexpr ir::Type kFx = ir::Type::fx(32, 17);

ir::Graph
makePipeline(double factor)
{
    ir::OpBuilder s("scale");
    auto sin = s.input("Input_1");
    auto sout = s.output("mid");
    auto sx = s.var("x", kFx);
    s.pragma(ir::Target::HW);
    s.forLoop(0, 16, [&](ir::Ex) {
        s.set(sx, s.read(sin).bitcast(kFx));
        s.write(sout, (ir::Ex(sx) * ir::litF(factor, kFx)).cast(kFx));
    });

    ir::OpBuilder o("offset");
    auto oin = o.input("mid");
    auto oout = o.output("Output_1");
    auto ox = o.var("x", kFx);
    o.pragma(ir::Target::HW);
    o.forLoop(0, 16, [&](ir::Ex) {
        o.set(ox, o.read(oin).bitcast(kFx));
        o.write(oout, (ir::Ex(ox) + ir::litF(-2.0, kFx)).cast(kFx));
    });

    ir::GraphBuilder gb("chaos_app");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto mid = gb.wire();
    gb.inst(s.finish(), {in}, {mid});
    gb.inst(o.finish(), {mid}, {out});
    return gb.finish();
}

svc::CompileRequest
makeRequest(int app)
{
    svc::CompileRequest req;
    req.opts.level = 1; // O1
    req.graphText =
        svc::encodeGraphText(makePipeline(1.25 + 0.5 * app));
    return req;
}

/** What the daemon must serve: a direct library build of the same
 * request through the same codepath (graph-text round trip, same
 * compiler options compilerFor() would choose). */
std::vector<uint8_t>
expectedBlob(const fabric::Device &dev, const svc::CompileRequest &req)
{
    flow::CompileOptions co;
    co.effort = 1.0;
    co.seed = req.opts.seed;
    co.parallelJobs = req.opts.parallelJobs;
    co.softcoreTier = static_cast<rvgen::Tier>(req.opts.softcoreTier);
    flow::PldCompiler pc(dev, co);
    ir::Graph g = svc::decodeGraphText(req.graphText);
    flow::AppBuild b = pc.build(
        g, static_cast<flow::OptLevel>(req.opts.level), co.effort);
    return svc::BuildArtifact::fromAppBuild(b).encode();
}

[[noreturn]] void
die(const std::string &why)
{
    std::fprintf(stderr, "pldchaos: FAIL: %s\n", why.c_str());
    std::exit(1);
}

void
check(bool ok, const std::string &why)
{
    if (!ok)
        die(why);
}

std::string
sanitize(const std::string &spec)
{
    std::string out;
    for (char c : spec)
        out += (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '.' || c == '_')
                   ? c
                   : '_';
    return out;
}

// ---- daemon process management -----------------------------------

std::string g_plddPath;

std::string
plddPath()
{
    if (!g_plddPath.empty())
        return g_plddPath;
    // pldd sits next to this binary in the build tree.
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    check(n > 0, "cannot resolve /proc/self/exe");
    buf[n] = '\0';
    std::string self(buf);
    size_t slash = self.find_last_of('/');
    g_plddPath = self.substr(0, slash + 1) + "pldd";
    check(fs::exists(g_plddPath),
          "pldd not found at " + g_plddPath + " (use --pldd PATH)");
    return g_plddPath;
}

/** fork+exec a pldd. @p fault_spec empty = healthy daemon. Only
 * async-signal-safe calls run between fork and execve. */
pid_t
spawnDaemon(const std::string &socket_path,
            const std::string &store_dir,
            const std::string &fault_spec)
{
    static std::string exe;
    exe = plddPath();
    std::vector<std::string> argstrs = {
        "pldd",        "--socket",        socket_path,
        "--store",     store_dir,         "--max-executing",
        "2",           "--max-queued",    "8",
    };
    std::vector<char *> argv;
    for (auto &s : argstrs)
        argv.push_back(const_cast<char *>(s.c_str()));
    argv.push_back(nullptr);

    std::vector<std::string> envstrs;
    for (char **e = environ; *e; ++e) {
        if (std::strncmp(*e, "PLD_FAULT", 9) != 0)
            envstrs.emplace_back(*e);
    }
    if (!fault_spec.empty()) {
        envstrs.push_back("PLD_FAULT=" + fault_spec);
        envstrs.push_back("PLD_FAULT_SEED=1");
    }
    std::vector<char *> envp;
    for (auto &s : envstrs)
        envp.push_back(const_cast<char *>(s.c_str()));
    envp.push_back(nullptr);

    pid_t pid = ::fork();
    check(pid >= 0, "fork failed");
    if (pid == 0) {
        // Child: silence the daemon's stdout chatter, keep stderr.
        int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0)
            ::dup2(devnull, 1);
        ::execve(exe.c_str(), argv.data(), envp.data());
        ::_exit(127);
    }
    return pid;
}

/** waitpid(WNOHANG): 0 alive, else the exit status code. */
bool
daemonExited(pid_t pid, int *code)
{
    int status = 0;
    pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r != pid)
        return false;
    *code = WIFEXITED(status) ? WEXITSTATUS(status)
                              : 128 + WTERMSIG(status);
    return true;
}

struct StatsMap
{
    std::map<std::string, long long> v;
    long long operator[](const std::string &k) const
    {
        auto it = v.find(k);
        return it == v.end() ? -1 : it->second;
    }
};

StatsMap
parseStats(const std::string &text)
{
    StatsMap m;
    std::istringstream is(text);
    std::string name;
    long long value;
    while (is >> name >> value)
        m.v[name] = value;
    return m;
}

// ---- one soak scenario -------------------------------------------

struct Scenario
{
    std::string spec;
    bool expectCrash;
};

/** The daemon supervisor one scenario runs under: respawns after a
 * crash (cleanly — each spec injects exactly one crash) and counts
 * crashes observed. */
struct Supervisor
{
    std::string socketPath;
    std::string storeDir;
    std::string faultSpec;
    pid_t pid = -1;
    int crashes = 0;
    /** store.entries right after the most recent post-crash
     * restart (the recompile-at-most-once baseline). */
    long long entriesAtRestart = -1;
    bool restartedCleanly = false;

    void
    spawn(const std::string &spec)
    {
        pid = spawnDaemon(socketPath, storeDir, spec);
    }

    /** True when the daemon died; reaps, validates the exit code,
     * and restarts WITHOUT faults on the same store. */
    bool
    reviveIfDead()
    {
        int code = 0;
        if (pid < 0 || !daemonExited(pid, &code))
            return false;
        check(code == kCrashExit,
              faultSpec + ": daemon exited with " +
                  std::to_string(code) + ", want " +
                  std::to_string(kCrashExit) +
                  " (injected crash)");
        ++crashes;
        spawn("");
        restartedCleanly = true;
        return true;
    }

    void
    awaitReady(svc::Client &client)
    {
        for (int i = 0; i < 600; ++i) {
            reviveIfDead();
            if (client.connect() && client.ping(i))
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        die(faultSpec + ": daemon never became ready");
    }
};

void
runScenario(const Scenario &sc, const std::string &base,
            const std::vector<svc::CompileRequest> &reqs,
            const std::vector<std::vector<uint8_t>> &expected)
{
    std::printf("pldchaos: === %s%s\n", sc.spec.c_str(),
                sc.expectCrash ? " (expect one crash)" : "");
    std::fflush(stdout);

    Supervisor sup;
    sup.faultSpec = sc.spec;
    sup.storeDir = base + "/" + sanitize(sc.spec);
    sup.socketPath = base + "/" + sanitize(sc.spec) + ".sock";
    fs::create_directories(sup.storeDir);
    sup.spawn(sc.spec);

    svc::Client client(sup.socketPath);
    client.setDeadlineMs(30000);
    sup.awaitReady(client);

    // One compile round-trip that survives crashes: single attempts
    // in a loop, so the supervisor sees every daemon death.
    auto compileThrough = [&](const svc::CompileRequest &req) {
        for (int attempt = 0; attempt < 50; ++attempt) {
            if (sup.reviveIfDead() || !client.connected())
                sup.awaitReady(client);
            try {
                return client.compile(req);
            } catch (const CompileError &e) {
                if (!e.diag().retriable)
                    throw;
                client.close();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(30));
            }
        }
        die(sc.spec + ": request did not complete in 50 attempts");
    };

    // Phase A: first-build sweep.
    for (int i = 0; i < kApps; ++i) {
        auto resp = compileThrough(reqs[i]);
        check(resp.status == svc::RespStatus::Ok,
              sc.spec + ": app " + std::to_string(i) +
                  " did not compile Ok");
        check(resp.blob == expected[i],
              sc.spec + ": app " + std::to_string(i) +
                  " blob differs from the direct library build");
    }

    // Recompile-at-most-once baseline: what the current daemon
    // generation has had to compile itself.
    sup.reviveIfDead();
    StatsMap afterA = parseStats(client.stats());
    check(afterA["store.corrupt"] == 0,
          sc.spec + ": corrupt entries after phase A");

    // Phase B: re-gets. Every app must come back bit-identical; a
    // crash spec targeting the read path fires here.
    bool crashedBeforeB = sup.restartedCleanly;
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < kApps; ++i) {
            auto resp = compileThrough(reqs[i]);
            check(resp.status == svc::RespStatus::Ok,
                  sc.spec + ": re-get of app " + std::to_string(i) +
                      " not Ok");
            check(resp.blob == expected[i],
                  sc.spec + ": re-get of app " + std::to_string(i) +
                      " blob differs");
        }
    }

    sup.reviveIfDead();
    StatsMap afterB = parseStats(client.stats());
    check(afterB["store.corrupt"] == 0,
          sc.spec + ": corrupt entries after phase B");
    if (sc.expectCrash) {
        check(sup.crashes == 1,
              sc.spec + ": observed " +
                  std::to_string(sup.crashes) +
                  " crashes, want exactly 1 (site unreached or "
                  "re-fired)");
        // Recompile at most once: the re-get phase compiles nothing.
        // Same daemon generation → misses unchanged; fresh
        // generation (crash landed in phase B) → everything it
        // served was a store hit.
        if (crashedBeforeB == sup.restartedCleanly)
            check(afterB["svc.store_misses"] ==
                      afterA["svc.store_misses"],
                  sc.spec + ": re-gets recompiled (misses " +
                      std::to_string(afterA["svc.store_misses"]) +
                      " -> " +
                      std::to_string(afterB["svc.store_misses"]) +
                      ")");
        else
            check(afterB["svc.store_misses"] == 0,
                  sc.spec +
                      ": post-crash daemon recompiled during "
                      "re-gets");
    } else {
        check(sup.crashes == 0,
              sc.spec + ": unexpected daemon crash");
        // io_torn_rename reports success (that is its point — the
        // damage is silent), so only the erroring kinds must have
        // left a mark in the counters.
        if (sc.spec.find("enospc") != std::string::npos ||
            sc.spec.find("eio") != std::string::npos)
            check(afterB["store.io_errors"] > 0,
                  sc.spec + ": fault never fired");
        if (sc.spec == "io_enospc:*")
            check(afterB["store.degraded"] == 1,
                  sc.spec + ": daemon not in degraded mode");
    }

    check(client.shutdownDaemon(),
          sc.spec + ": final daemon refused shutdown");
    for (int i = 0; i < 600; ++i) {
        int code = 0;
        if (daemonExited(sup.pid, &code)) {
            check(code == 0, sc.spec + ": daemon shutdown exit " +
                                 std::to_string(code));
            break;
        }
        check(i < 599, sc.spec + ": daemon never exited");
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    // Offline integrity scan: open the store directly and demand
    // every surviving entry decode bit-identically. "io_enospc:*"
    // legitimately stores nothing; everything else must hold all
    // apps by now.
    svc::ArtifactStore post(sup.storeDir, 256ull << 20);
    check(post.stats().corrupt.load() == 0,
          sc.spec + ": offline scan found corrupt entries");
    int present = 0;
    for (int i = 0; i < kApps; ++i) {
        uint64_t key = svc::CompileService::requestKey(reqs[i]);
        auto got = post.get(key);
        if (!got)
            continue;
        ++present;
        check(*got == expected[i],
              sc.spec + ": stored entry for app " +
                  std::to_string(i) + " not bit-identical");
    }
    check(post.stats().corrupt.load() == 0,
          sc.spec + ": offline re-read detected corruption");
    if (sc.spec != "io_enospc:*")
        check(present == kApps,
              sc.spec + ": store holds " + std::to_string(present) +
                  "/" + std::to_string(kApps) + " apps after soak");

    std::printf("pldchaos: ok %s (crashes=%d, io_errors=%lld)\n",
                sc.spec.c_str(), sup.crashes,
                afterB["store.io_errors"]);
    std::fflush(stdout);
}

// ---- hang modes --------------------------------------------------

/** Bind an AF_UNIX listener that accepts and reads but never
 * replies — a daemon that wedged with the socket still open. */
int
hangListener(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    check(path.size() < sizeof(addr.sun_path),
          "socket path too long");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    check(fd >= 0, "socket() failed");
    ::unlink(path.c_str());
    check(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                 sizeof(addr)) == 0,
          "bind(" + path + ") failed");
    check(::listen(fd, 8) == 0, "listen failed");
    return fd;
}

[[noreturn]] void
hangServe(const std::string &path)
{
    int fd = hangListener(path);
    std::printf("pldchaos: hung daemon imitation on %s\n",
                path.c_str());
    std::fflush(stdout);
    for (;;) {
        int c = ::accept(fd, nullptr, nullptr);
        if (c < 0)
            continue;
        std::thread([c] {
            char buf[4096];
            while (::read(c, buf, sizeof(buf)) > 0) {
            }
            ::close(c);
        }).detach();
    }
}

int
hangSmoke()
{
    char tmpl[] = "/tmp/pldchaos_hang_XXXXXX";
    check(::mkdtemp(tmpl) != nullptr, "mkdtemp failed");
    std::string sock = std::string(tmpl) + "/hang.sock";
    int lfd = hangListener(sock);
    std::thread([lfd] {
        for (;;) {
            int c = ::accept(lfd, nullptr, nullptr);
            if (c < 0)
                return;
            // Read and discard; never answer.
            std::thread([c] {
                char buf[4096];
                while (::read(c, buf, sizeof(buf)) > 0) {
                }
                ::close(c);
            }).detach();
        }
    }).detach();

    svc::Client client(sock);
    client.setDeadlineMs(300);
    check(client.connect(), "cannot connect to hang listener");
    auto t0 = std::chrono::steady_clock::now();
    bool deadline_hit = false;
    try {
        client.compile(makeRequest(0));
    } catch (const CompileError &e) {
        deadline_hit =
            e.diag().code == CompileCode::DeadlineExceeded;
        check(e.diag().retriable, "deadline error not retriable");
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    check(deadline_hit, "expected DeadlineExceeded from a daemon "
                        "that never answers");
    check(secs < 10.0, "deadline took " + std::to_string(secs) +
                           "s to fire (want ~0.3s)");
    check(!client.ping(42), "ping unexpectedly answered");
    std::error_code ec;
    fs::remove_all(tmpl, ec);
    std::printf("pldchaos: hang smoke ok (deadline fired in %.2fs, "
                "ping refused)\n",
                secs);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string only_spec;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "pldchaos: %s needs a value\n",
                             a.c_str());
                std::exit(64);
            }
            return argv[++i];
        };
        if (a == "--list") {
            for (const char *s : kCrashSpecs)
                std::printf("%s\n", s);
            for (const char *s : kFaultSpecs)
                std::printf("%s\n", s);
            return 0;
        }
        if (a == "--hang-serve")
            hangServe(next());
        if (a == "--hang-smoke")
            return hangSmoke();
        if (a == "--spec") {
            only_spec = next();
            continue;
        }
        if (a == "--pldd") {
            g_plddPath = next();
            continue;
        }
        std::fprintf(
            stderr,
            "usage: pldchaos [--spec SPEC] [--pldd PATH] [--list]\n"
            "                [--hang-smoke] [--hang-serve SOCKET]\n");
        return a == "--help" || a == "-h" ? 0 : 64;
    }

    char tmpl[] = "/tmp/pldchaos_XXXXXX";
    check(::mkdtemp(tmpl) != nullptr, "mkdtemp failed");
    std::string base = tmpl;

    fabric::Device dev = fabric::makeU50();
    std::vector<svc::CompileRequest> reqs;
    std::vector<std::vector<uint8_t>> expected;
    std::printf("pldchaos: building %d reference artifacts...\n",
                kApps);
    std::fflush(stdout);
    for (int i = 0; i < kApps; ++i) {
        reqs.push_back(makeRequest(i));
        expected.push_back(expectedBlob(dev, reqs[i]));
    }

    std::vector<Scenario> scenarios;
    for (const char *s : kCrashSpecs)
        scenarios.push_back({s, true});
    for (const char *s : kFaultSpecs)
        scenarios.push_back({s, false});
    if (!only_spec.empty()) {
        scenarios.clear();
        scenarios.push_back(
            {only_spec,
             only_spec.rfind("io_crash_point", 0) == 0});
    }

    int crash_specs = 0;
    for (const auto &sc : scenarios) {
        runScenario(sc, base, reqs, expected);
        crash_specs += sc.expectCrash ? 1 : 0;
    }

    std::error_code ec;
    fs::remove_all(base, ec);
    std::printf("pldchaos: PASS — %zu scenarios (%d seeded crash "
                "points), store never served a corrupt or "
                "non-identical artifact\n",
                scenarios.size(), crash_specs);
    return 0;
}
