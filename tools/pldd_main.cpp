/**
 * pldd: the PLD compile daemon.
 *
 *   $ pldd --socket /tmp/pldd.sock --store /tmp/pldd-store &
 *   $ pldc compile app.pld            # same machine, any client
 *
 * A long-lived compile service for the edit-refine loop: clients
 * submit graph text over a local socket; the daemon coalesces
 * identical requests, serves warm artifacts from a persistent
 * on-disk store (hits survive daemon restarts), bounds its queue
 * with admission control, and answers with the canonical
 * bit-identical build artifact. Stop it with `pldc shutdown`.
 *
 * Chaos testing: when $PLD_FAULT contains io_* kinds (io_enospc,
 * io_eio, io_short_write, io_torn_rename, io_crash_point — see
 * common/fault.h), the artifact store runs on a FaultVfs, so a soak
 * harness can make this daemon's disk fail or kill the process at
 * named crash sites deterministically. Non-io kinds keep their
 * existing per-request meaning and do not wrap the store.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/io.h"
#include "fabric/device.h"
#include "svc/server.h"
#include "svc/service.h"

using namespace pld;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: pldd [--socket PATH] [--store DIR] [--budget-mb N]\n"
        "            [--max-executing N] [--max-queued N]\n"
        "            [--idle-timeout-ms N]\n"
        "\n"
        "  --socket PATH      AF_UNIX socket to listen on\n"
        "                     (default $PLD_SOCKET or /tmp/pldd.sock)\n"
        "  --store DIR        persistent artifact store directory\n"
        "                     (default $PLD_STORE or /tmp/pldd-store)\n"
        "  --budget-mb N      store LRU byte budget (default 256)\n"
        "  --max-executing N  concurrent backend compiles (default 4)\n"
        "  --max-queued N     waiting requests before admission\n"
        "                     rejects (default 8)\n"
        "  --idle-timeout-ms N  drop a client that sends no request\n"
        "                     for N ms (default 120000; 0 = never)\n"
        "\n"
        "PLD_FAULT with io_* kinds runs the artifact store on a\n"
        "fault-injecting filesystem (chaos testing; see pldchaos).\n");
}

std::string
envOr(const char *name, const char *fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? v : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path = envOr("PLD_SOCKET", "/tmp/pldd.sock");
    svc::ServiceConfig cfg;
    cfg.storeDir = envOr("PLD_STORE", "/tmp/pldd-store");
    int idle_timeout_ms = 120000;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--socket")
            socket_path = next();
        else if (a == "--store")
            cfg.storeDir = next();
        else if (a == "--budget-mb")
            cfg.storeBudgetBytes =
                static_cast<uint64_t>(std::strtoull(next(), nullptr,
                                                    10))
                << 20;
        else if (a == "--max-executing")
            cfg.maxExecuting = std::atoi(next());
        else if (a == "--max-queued")
            cfg.maxQueued = std::atoi(next());
        else if (a == "--idle-timeout-ms")
            idle_timeout_ms = std::atoi(next());
        else {
            usage();
            return a == "--help" || a == "-h" ? 0 : 2;
        }
    }

    FaultPlan plan = FaultPlan::fromEnv();
    if (planHasIoFaults(plan)) {
        std::printf("pldd: PLD_FAULT carries io_* kinds; artifact "
                    "store runs on a fault-injecting filesystem\n");
        cfg.vfs = std::make_shared<FaultVfs>(systemVfs(),
                                             std::move(plan));
    }

    fabric::Device dev = fabric::makeU50();
    svc::CompileService service(dev, cfg);
    svc::DaemonServer server(service, socket_path, idle_timeout_ms);
    server.start();
    std::printf("pldd: listening on %s (store %s, %d executing / %d "
                "queued)\n",
                socket_path.c_str(), cfg.storeDir.c_str(),
                cfg.maxExecuting, cfg.maxQueued);
    std::fflush(stdout);

    server.waitForShutdownRequest();
    server.stop();
    std::printf("pldd: shut down\n%s", service.statsText().c_str());
    return 0;
}
