/**
 * pldc: client CLI for the pldd compile daemon.
 *
 *   $ pldc emit quickstart -o q.pld     # write a builtin app's graph
 *   $ pldc compile q.pld                # compile via the daemon
 *   $ pldc swap q.pld --base KEY --op scale
 *   $ pldc ping
 *   $ pldc stats
 *   $ pldc shutdown
 *
 * `emit` needs no daemon: it serializes a builtin application (the
 * quickstart two-operator pipeline or any rosetta benchmark graph)
 * to the .pld text container, the portable source form an
 * edit-refine client submits every iteration.
 *
 * Exit codes distinguish "give up" from "try again" so scripts can
 * retry intelligently (see usage()): 0 success, 1 terminal failure
 * (the compile itself failed — a resubmit would fail identically),
 * 2 retriable failure (admission rejection, expired --deadline-ms,
 * daemon unreachable/restarting), 64 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "ir/builder.h"
#include "rosetta/benchmark.h"
#include "svc/client.h"
#include "svc/wire.h"

using namespace pld;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: pldc [--socket PATH] COMMAND ...\n"
        "\n"
        "  emit APP [-o FILE]       write a builtin app's .pld text\n"
        "                           (quickstart, rendering, digitrec,\n"
        "                           spamfilter, opticalflow,\n"
        "                           facedetect, bnn)\n"
        "  compile FILE [opts]      compile a .pld file via the daemon\n"
        "  swap FILE --base HEXKEY --op NAME [opts]\n"
        "                           hot-swap one operator against a\n"
        "                           previously compiled base build\n"
        "  ping                     health-probe the daemon\n"
        "  stats                    print daemon counters\n"
        "  shutdown                 stop the daemon\n"
        "\n"
        "compile/swap options:\n"
        "  --level O0|O1|O3|Vitis   opt level (default O1)\n"
        "  --seed N --effort X --jobs N --tier O0|Os\n"
        "  --fault SPEC             PLD_FAULT-grammar fault plan\n"
        "  --trace FILE             daemon writes a per-request\n"
        "                           Chrome trace to FILE\n"
        "\n"
        "resilience options (all daemon commands):\n"
        "  --deadline-ms N          bound every send/recv; an expired\n"
        "                           deadline exits 2 (default: wait\n"
        "                           forever)\n"
        "  --retries N              retry a retriable failure up to N\n"
        "                           times with exponential backoff\n"
        "                           (default 3; 0 = fail fast)\n"
        "  --retry-base-ms N        first backoff sleep (default 50,\n"
        "                           doubling per retry, capped at 2s)\n"
        "\n"
        "exit codes:\n"
        "  0   success\n"
        "  1   terminal failure: the compile/swap itself failed;\n"
        "      resubmitting the same request would fail identically\n"
        "  2   retriable failure: admission queue full, deadline\n"
        "      expired, or no daemon listening — try again later\n"
        "  64  usage error\n");
}

constexpr ir::Type kFx = ir::Type::fx(32, 17);
constexpr int kN = 64;

ir::OperatorFn
makeScale()
{
    ir::OpBuilder b("scale");
    auto in = b.input("Input_1");
    auto out = b.output("mid");
    auto x = b.var("x", kFx);
    b.pragma(ir::Target::HW);
    b.forLoop(0, kN, [&](ir::Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.write(out, (ir::Ex(x) * ir::litF(1.5, kFx)).cast(kFx));
    });
    return b.finish();
}

ir::OperatorFn
makeOffset()
{
    ir::OpBuilder b("offset");
    auto in = b.input("mid");
    auto out = b.output("Output_1");
    auto x = b.var("x", kFx);
    b.pragma(ir::Target::HW);
    b.forLoop(0, kN, [&](ir::Ex) {
        b.set(x, b.read(in).bitcast(kFx));
        b.write(out, (ir::Ex(x) + ir::litF(-2.0, kFx)).cast(kFx));
    });
    return b.finish();
}

ir::Graph
makeQuickstart()
{
    ir::GraphBuilder gb("quickstart");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto mid = gb.wire();
    gb.inst(makeScale(), {in}, {mid});
    gb.inst(makeOffset(), {mid}, {out});
    return gb.finish();
}

bool
builtinGraph(const std::string &name, ir::Graph *out)
{
    if (name == "quickstart") {
        *out = makeQuickstart();
        return true;
    }
    for (auto &b : rosetta::allBenchmarks()) {
        std::string lower;
        for (char c : b.name)
            if (c != '-' && c != '_' && c != ' ')
                lower += static_cast<char>(std::tolower(c));
        if (name == lower || name == b.name) {
            *out = std::move(b.graph);
            return true;
        }
    }
    return false;
}

int
parseLevel(const std::string &s)
{
    if (s == "O0")
        return 0;
    if (s == "O1")
        return 1;
    if (s == "O3")
        return 2;
    if (s == "Vitis" || s == "vitis")
        return 3;
    std::fprintf(stderr, "pldc: unknown level %s\n", s.c_str());
    std::exit(64);
}

// Exit codes (documented in usage()).
constexpr int kExitOk = 0;
constexpr int kExitTerminal = 1;
constexpr int kExitRetriable = 2;
constexpr int kExitUsage = 64;

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "pldc: cannot read %s\n", path.c_str());
        std::exit(1);
    }
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

void
printResponse(const svc::CompileResponse &resp, bool is_swap)
{
    const char *status =
        resp.status == svc::RespStatus::Ok         ? "ok"
        : resp.status == svc::RespStatus::Rejected ? "rejected"
                                                   : "failed";
    std::printf("%s %s key=%016llx%s%s (%.3fs)\n",
                is_swap ? "swap" : "compile", status,
                static_cast<unsigned long long>(resp.key),
                resp.storeHit ? " [store hit]" : "",
                resp.coalesced ? " [coalesced]" : "", resp.seconds);
    for (const auto &d : resp.diags.diags)
        std::printf("  %s\n", d.render().c_str());
    if (resp.status != svc::RespStatus::Ok || resp.blob.empty())
        return;
    if (is_swap) {
        auto sb = svc::SwapBlob::decode(resp.blob);
        std::printf("  op %s page %d image %llu bytes%s\n",
                    sb.op.c_str(), sb.binding.pageId,
                    static_cast<unsigned long long>(
                        sb.binding.imageBytes),
                    sb.fnChanged ? " (function changed)" : "");
    } else {
        auto art = svc::BuildArtifact::decode(resp.blob);
        std::printf("  %zu ops, %d pages, Fmax %.0f MHz, bitstream "
                    "%llu bytes\n",
                    art.ops.size(), art.pagesUsed, art.fmaxMHz,
                    static_cast<unsigned long long>(
                        art.totalBitstreamBytes));
    }
}

std::string
envOr(const char *name, const char *fallback)
{
    const char *v = std::getenv(name);
    return v && *v ? v : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path = envOr("PLD_SOCKET", "/tmp/pldd.sock");
    std::string cmd;
    int deadline_ms = 0;
    int retries = 3;
    int retry_base_ms = 50;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--socket" && i + 1 < argc) {
            socket_path = argv[++i];
        } else if (a == "--deadline-ms" && i + 1 < argc) {
            deadline_ms = std::atoi(argv[++i]);
        } else if (a == "--retries" && i + 1 < argc) {
            retries = std::atoi(argv[++i]);
        } else if (a == "--retry-base-ms" && i + 1 < argc) {
            retry_base_ms = std::atoi(argv[++i]);
        } else if (a == "--help" || a == "-h") {
            usage();
            return kExitOk;
        } else if (cmd.empty() && a[0] != '-') {
            cmd = a;
        } else {
            args.push_back(a);
        }
    }
    if (cmd.empty()) {
        usage();
        return kExitUsage;
    }
    svc::RetryPolicy policy;
    policy.maxAttempts = std::max(0, retries) + 1;
    policy.baseMs = std::max(1, retry_base_ms);

    if (cmd == "emit") {
        std::string app, out_path;
        for (size_t i = 0; i < args.size(); ++i) {
            if (args[i] == "-o" && i + 1 < args.size())
                out_path = args[++i];
            else if (app.empty())
                app = args[i];
        }
        ir::Graph g;
        if (app.empty() || !builtinGraph(app, &g)) {
            std::fprintf(stderr, "pldc: unknown app '%s'\n",
                         app.c_str());
            return kExitUsage;
        }
        std::string text = svc::encodeGraphText(g);
        if (out_path.empty()) {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream f(out_path, std::ios::trunc);
            f << text;
            if (!f) {
                std::fprintf(stderr, "pldc: cannot write %s\n",
                             out_path.c_str());
                return kExitTerminal;
            }
            std::printf("pldc: wrote %s (%zu bytes)\n",
                        out_path.c_str(), text.size());
        }
        return kExitOk;
    }

    svc::Client client(socket_path);
    client.setDeadlineMs(deadline_ms);
    // compile/swap connect inside the retry loop (the daemon may be
    // restarting); the point-in-time commands need a live daemon NOW
    // — unreachable is a retriable condition either way.
    if (cmd == "ping" || cmd == "stats" || cmd == "shutdown") {
        if (!client.connect()) {
            std::fprintf(stderr,
                         "pldc: no daemon listening on %s (start one "
                         "with: pldd --socket %s &)\n",
                         socket_path.c_str(), socket_path.c_str());
            return kExitRetriable;
        }
    }

    try {
        if (cmd == "ping") {
            if (!client.ping(0x706C6470696E67ull)) {
                std::fprintf(stderr, "pldc: daemon did not answer "
                                     "the ping\n");
                return kExitRetriable;
            }
            std::printf("pldc: daemon alive on %s\n",
                        socket_path.c_str());
            return kExitOk;
        }
        if (cmd == "stats") {
            std::fputs(client.stats().c_str(), stdout);
            return kExitOk;
        }
        if (cmd == "shutdown") {
            if (!client.shutdownDaemon()) {
                std::fprintf(stderr, "pldc: shutdown not acked\n");
                return kExitRetriable;
            }
            std::printf("pldc: daemon shut down\n");
            return kExitOk;
        }

        if (cmd != "compile" && cmd != "swap") {
            usage();
            return kExitUsage;
        }

        std::string file, base_hex, op_name;
        svc::RequestOptions opts;
        for (size_t i = 0; i < args.size(); ++i) {
            auto next = [&]() -> std::string {
                if (i + 1 >= args.size()) {
                    usage();
                    std::exit(kExitUsage);
                }
                return args[++i];
            };
            if (args[i] == "--level")
                opts.level = static_cast<uint8_t>(parseLevel(next()));
            else if (args[i] == "--seed")
                opts.seed = std::strtoull(next().c_str(), nullptr, 10);
            else if (args[i] == "--effort")
                opts.effort = std::atof(next().c_str());
            else if (args[i] == "--jobs")
                opts.parallelJobs = static_cast<uint32_t>(
                    std::atoi(next().c_str()));
            else if (args[i] == "--tier")
                opts.softcoreTier = next() == "O0" ? 0 : 1;
            else if (args[i] == "--fault")
                opts.faultSpec = next();
            else if (args[i] == "--trace")
                opts.traceFile = next();
            else if (args[i] == "--base")
                base_hex = next();
            else if (args[i] == "--op")
                op_name = next();
            else if (file.empty())
                file = args[i];
        }
        if (file.empty()) {
            usage();
            return kExitUsage;
        }

        auto exitFor = [](const svc::CompileResponse &resp) {
            if (resp.status == svc::RespStatus::Ok)
                return kExitOk;
            // A rejection clears on its own (the queue drains); a
            // failed compile does not (it is deterministic).
            return resp.status == svc::RespStatus::Rejected
                       ? kExitRetriable
                       : kExitTerminal;
        };

        if (cmd == "compile") {
            svc::CompileRequest req;
            req.opts = opts;
            req.graphText = readFile(file);
            auto resp = client.compileWithRetry(req, policy);
            printResponse(resp, false);
            return exitFor(resp);
        }

        if (base_hex.empty() || op_name.empty()) {
            std::fprintf(stderr,
                         "pldc: swap needs --base HEXKEY and --op "
                         "NAME\n");
            return kExitUsage;
        }
        svc::SwapRequest req;
        req.opts = opts;
        req.baseBuild =
            std::strtoull(base_hex.c_str(), nullptr, 16);
        req.opName = op_name;
        req.graphText = readFile(file);
        auto resp = client.swapWithRetry(req, policy);
        printResponse(resp, true);
        return exitFor(resp);
    } catch (const CompileError &e) {
        std::fprintf(stderr, "pldc: %s\n", e.diag().render().c_str());
        return e.diag().retriable ? kExitRetriable : kExitTerminal;
    }
}
