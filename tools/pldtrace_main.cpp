/**
 * @file
 * pldtrace: python-free validator for the observability subsystem.
 *
 *   pldtrace --check t.json          # validate Chrome trace JSON
 *   pldtrace --hash m.json           # print determinism fingerprint
 *   pldtrace --selftest-overhead     # tracing-on vs -off compile cost
 *
 * --check exits 0 iff the file parses as trace-event JSON and every
 * "B" has a matching "E" (complete "X" events pass trivially); CI
 * runs it on the traced smoke app. --hash prints the structure hash
 * plus the sorted deterministic counters from a PLD_METRICS dump, so
 * CI can diff the PLD_THREADS=1 and =4 fingerprints with `diff`.
 * --selftest-overhead compiles a small app repeatedly with tracing
 * disabled then enabled and fails when the median enabled time
 * exceeds the disabled median by more than the budget (default 10%).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fabric/device.h"
#include "ir/builder.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "pld/compiler.h"

using namespace pld;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: pldtrace <mode> [args]\n"
        "  --check <trace.json>      validate Chrome trace-event "
        "JSON\n"
        "  --hash <metrics.json>     print the determinism "
        "fingerprint\n"
        "  --selftest-overhead [pct] compile with tracing off vs on; "
        "fail if\n"
        "                            overhead exceeds pct (default "
        "10)\n");
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream f(path);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return true;
}

int
runCheck(const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "pldtrace: cannot read %s\n",
                     path.c_str());
        return 2;
    }
    obs::json::Value doc;
    std::string err;
    if (!obs::json::parse(text, doc, err)) {
        std::fprintf(stderr, "pldtrace: %s: JSON parse error: %s\n",
                     path.c_str(), err.c_str());
        return 1;
    }
    if (!obs::json::checkChromeTrace(doc, err)) {
        std::fprintf(stderr, "pldtrace: %s: invalid trace: %s\n",
                     path.c_str(), err.c_str());
        return 1;
    }
    size_t n = doc.get("traceEvents")->arr.size();
    std::printf("pldtrace: %s: OK (%zu events)\n", path.c_str(), n);
    return 0;
}

int
runHash(const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "pldtrace: cannot read %s\n",
                     path.c_str());
        return 2;
    }
    obs::json::Value doc;
    std::string err;
    if (!obs::json::parse(text, doc, err)) {
        std::fprintf(stderr, "pldtrace: %s: JSON parse error: %s\n",
                     path.c_str(), err.c_str());
        return 1;
    }
    const obs::json::Value *hash = doc.get("structure_hash");
    if (!hash || hash->type != obs::json::Type::Str) {
        std::fprintf(stderr,
                     "pldtrace: %s: missing structure_hash\n",
                     path.c_str());
        return 1;
    }
    std::printf("structure_hash %s\n", hash->str.c_str());
    const obs::json::Value *counters = doc.get("counters");
    if (counters && counters->type == obs::json::Type::Obj) {
        // Objects keep keys sorted (std::map), so this output diffs
        // cleanly across runs. sched.* counters are scheduling-
        // dependent by contract; skip them.
        for (const auto &[k, v] : counters->obj) {
            if (obs::isSchedName(k))
                continue;
            std::printf("counter %s %lld\n", k.c_str(),
                        static_cast<long long>(v.num));
        }
    }
    return 0;
}

// ---- --selftest-overhead -------------------------------------------

ir::Graph
makeSmokeApp()
{
    using namespace pld::ir;
    constexpr Type kFx = Type::fx(32, 17);
    auto make_op = [&](const char *name, const char *in_name,
                       const char *out_name, double mul) {
        OpBuilder b(name);
        auto in = b.input(in_name);
        auto out = b.output(out_name);
        auto x = b.var("x", kFx);
        b.pragma(Target::HW);
        b.forLoop(0, 64, [&](Ex) {
            b.set(x, b.read(in).bitcast(kFx));
            b.write(out, (Ex(x) * litF(mul, kFx)).cast(kFx));
        });
        return b.finish();
    };
    GraphBuilder gb("pldtrace-smoke");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto mid = gb.wire();
    gb.inst(make_op("scale", "Input_1", "mid", 1.5), {in}, {mid});
    gb.inst(make_op("offset", "mid", "Output_1", 0.5), {mid}, {out});
    return gb.finish();
}

double
medianCompileSeconds(const ir::Graph &app, const fabric::Device &dev,
                     int reps)
{
    std::vector<double> secs;
    for (int i = 0; i < reps; ++i) {
        // Fresh compiler per rep: a warm artifact cache would turn
        // later reps into lookups and hide the compile cost.
        flow::PldCompiler pc(dev);
        auto t0 = std::chrono::steady_clock::now();
        pc.build(app, flow::OptLevel::O1);
        secs.push_back(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
    std::sort(secs.begin(), secs.end());
    return secs[secs.size() / 2];
}

int
runOverheadSelftest(double budget_pct)
{
    ir::Graph app = makeSmokeApp();
    fabric::Device dev = fabric::makeU50();

    // Warm-up rep (page tables, allocator) outside both timings.
    {
        flow::PldCompiler pc(dev);
        pc.build(app, flow::OptLevel::O1);
    }

    const int reps = 9;
    obs::Tracer *prev = obs::Tracer::install(nullptr);
    double off = medianCompileSeconds(app, dev, reps);

    obs::Tracer tracer;
    obs::Tracer::install(&tracer);
    double on = medianCompileSeconds(app, dev, reps);
    obs::Tracer::install(prev);

    double pct = off > 0 ? (on - off) / off * 100.0 : 0.0;
    std::printf("pldtrace: overhead selftest: disabled %.6fs, "
                "enabled %.6fs, overhead %.2f%% (budget %.1f%%)\n",
                off, on, pct, budget_pct);
    if (pct > budget_pct) {
        std::fprintf(stderr,
                     "pldtrace: tracing overhead %.2f%% exceeds "
                     "budget %.1f%%\n",
                     pct, budget_pct);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string mode = argv[1];
    if (mode == "--check" && argc == 3)
        return runCheck(argv[2]);
    if (mode == "--hash" && argc == 3)
        return runHash(argv[2]);
    if (mode == "--selftest-overhead") {
        double budget = 10.0;
        if (argc == 3)
            budget = std::atof(argv[2]);
        return runOverheadSelftest(budget);
    }
    usage();
    return 2;
}
