/**
 * @file
 * pldfuzz: the cross-target differential fuzzing driver.
 *
 * Generates seeded random operator programs, runs each through the
 * functional golden model, the timed HLS-page system simulator, and
 * the rvgen/RV32 softcore path at both codegen tiers (-O0 and the
 * optimizing -Os), and reports any divergence. Failing
 * cases are greedily shrunk and (optionally) serialized as corpus
 * repro files that replay as regression tests.
 *
 *   pldfuzz --seed 1 --iters 500            # CI smoke configuration
 *   pldfuzz --iters 0 --time-budget 60      # fuzz for a minute
 *   pldfuzz --bug drop-sign-extend --iters 50 --save-repros corpus/
 *   pldfuzz --replay tests/fuzz/corpus      # corpus replay only
 *
 * Every run prints a final `verdict-hash` over (seed, status, detail)
 * of all executed cases; two runs with the same flags must print the
 * same hash no matter the thread count (CI compares PLD_THREADS=1
 * against PLD_THREADS=8).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/hash.h"
#include "fuzz/corpus.h"
#include "fuzz/diff.h"
#include "fuzz/gen.h"
#include "fuzz/shrink.h"

using namespace pld;

namespace {

struct Options
{
    uint64_t seed = 1;
    int iters = 100;
    double timeBudgetSec = 0; ///< 0 = iteration-bounded only
    fuzz::InjectedBug bug = fuzz::InjectedBug::None;
    bool shrink = true;
    int ladderEvery = 0; ///< 0 = off
    int detEvery = 0;    ///< 0 = off
    bool runSys = true;
    bool runIss = true;
    bool runOsIss = true;
    std::string saveReproDir;
    std::string replayDir;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: pldfuzz [options]\n"
        "  --seed S          base seed (default 1)\n"
        "  --iters N         cases to run (default 100; 0 = until "
        "time budget)\n"
        "  --time-budget SEC stop after SEC seconds\n"
        "  --bug NAME        inject a bug into the softcore path "
        "(drop-sign-extend | sub-to-add)\n"
        "  --no-shrink       report failures unshrunk\n"
        "  --ladder-every N  fault-ladder equivalence on every Nth "
        "case\n"
        "  --det-every N     parallel-build determinism on every Nth "
        "case\n"
        "  --no-sys          skip the system-simulator backend\n"
        "  --no-iss          skip the softcore -O0 backend\n"
        "  --no-iss-os       skip the softcore -Os backend\n"
        "  --save-repros DIR write shrunk repros as corpus files\n"
        "  --replay DIR      replay corpus files instead of fuzzing\n");
}

bool
parseArgs(int argc, char **argv, Options *o)
{
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            usage();
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *v = nullptr;
        if (!std::strcmp(a, "--seed")) {
            if (!(v = need(i)))
                return false;
            o->seed = std::strtoull(v, nullptr, 0);
        } else if (!std::strcmp(a, "--iters")) {
            if (!(v = need(i)))
                return false;
            o->iters = std::atoi(v);
        } else if (!std::strcmp(a, "--time-budget")) {
            if (!(v = need(i)))
                return false;
            o->timeBudgetSec = std::atof(v);
        } else if (!std::strcmp(a, "--bug")) {
            if (!(v = need(i)))
                return false;
            if (!std::strcmp(v, "drop-sign-extend"))
                o->bug = fuzz::InjectedBug::DropSignExtend;
            else if (!std::strcmp(v, "sub-to-add"))
                o->bug = fuzz::InjectedBug::SubToAdd;
            else {
                std::fprintf(stderr, "unknown bug '%s'\n", v);
                return false;
            }
        } else if (!std::strcmp(a, "--no-shrink")) {
            o->shrink = false;
        } else if (!std::strcmp(a, "--ladder-every")) {
            if (!(v = need(i)))
                return false;
            o->ladderEvery = std::atoi(v);
        } else if (!std::strcmp(a, "--det-every")) {
            if (!(v = need(i)))
                return false;
            o->detEvery = std::atoi(v);
        } else if (!std::strcmp(a, "--no-sys")) {
            o->runSys = false;
        } else if (!std::strcmp(a, "--no-iss")) {
            o->runIss = false;
        } else if (!std::strcmp(a, "--no-iss-os")) {
            o->runOsIss = false;
        } else if (!std::strcmp(a, "--save-repros")) {
            if (!(v = need(i)))
                return false;
            o->saveReproDir = v;
        } else if (!std::strcmp(a, "--replay")) {
            if (!(v = need(i)))
                return false;
            o->replayDir = v;
        } else {
            usage();
            return false;
        }
    }
    return true;
}

int
replayCorpus(const Options &o)
{
    auto files = fuzz::listCorpusFiles(o.replayDir);
    if (files.empty()) {
        std::fprintf(stderr, "no .pldfuzz files under %s\n",
                     o.replayDir.c_str());
        return 2;
    }
    fuzz::DiffOptions d;
    d.runSys = o.runSys;
    d.runIss = o.runIss;
    d.runOsIss = o.runOsIss;
    int failures = 0;
    for (const auto &f : files) {
        fuzz::GenCase c = fuzz::loadCorpusFile(f);
        fuzz::DiffResult r = fuzz::diffCase(c, d);
        std::printf("%-8s %s%s%s\n", fuzz::diffStatusName(r.status),
                    f.c_str(), r.pass() ? "" : ": ",
                    r.detail.c_str());
        if (!r.pass())
            ++failures;
    }
    std::printf("replayed %zu corpus cases, %d failing\n",
                files.size(), failures);
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, &o))
        return 2;
    if (!o.replayDir.empty())
        return replayCorpus(o);

    fuzz::DiffOptions d;
    d.runSys = o.runSys;
    d.runIss = o.runIss;
    d.runOsIss = o.runOsIss;
    d.bug = o.bug;

    auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    Hasher verdict;
    int ran = 0, passed = 0, mismatches = 0, hangs = 0, invalid = 0;
    int failures = 0;

    for (int i = 0; o.iters == 0 || i < o.iters; ++i) {
        if (o.timeBudgetSec > 0 && elapsed() > o.timeBudgetSec)
            break;
        uint64_t seed = o.seed + static_cast<uint64_t>(i);
        fuzz::GenCase c = fuzz::generateCase(seed);
        fuzz::DiffResult r = fuzz::diffCase(c, d);
        ++ran;
        verdict.u64(seed);
        verdict.u64(static_cast<uint64_t>(r.status));
        verdict.str(r.detail);

        switch (r.status) {
          case fuzz::DiffStatus::Pass: ++passed; break;
          case fuzz::DiffStatus::Mismatch: ++mismatches; break;
          case fuzz::DiffStatus::Hang: ++hangs; break;
          case fuzz::DiffStatus::Invalid: ++invalid; break;
        }

        if (!r.pass()) {
            ++failures;
            std::printf("case seed=%llu: %s: %s\n",
                        static_cast<unsigned long long>(seed),
                        fuzz::diffStatusName(r.status),
                        r.detail.c_str());
            if (r.status == fuzz::DiffStatus::Mismatch && o.shrink) {
                fuzz::ShrinkStats ss;
                fuzz::GenCase small = fuzz::shrinkCase(
                    c,
                    [&](const fuzz::GenCase &cand) {
                        return fuzz::diffCase(cand, d).status ==
                               fuzz::DiffStatus::Mismatch;
                    },
                    2000, &ss);
                std::printf(
                    "shrunk to %d stmts after %d evals:\n%s",
                    fuzz::stmtCount(small.graph.ops[0].fn),
                    ss.evals, small.dump().c_str());
                if (!o.saveReproDir.empty()) {
                    std::string path =
                        o.saveReproDir + "/repro_seed" +
                        std::to_string(seed) + ".pldfuzz";
                    fuzz::DiffResult rr = fuzz::diffCase(small, d);
                    fuzz::saveCorpusFile(
                        path, small,
                        "pldfuzz repro (bug=" +
                            std::string(
                                fuzz::injectedBugName(o.bug)) +
                            ")\n" + rr.detail);
                    std::printf("wrote %s\n", path.c_str());
                }
            }
        }

        if (o.ladderEvery > 0 && i % o.ladderEvery == 0) {
            fuzz::DiffResult lr = fuzz::checkFaultLadder(c, seed);
            verdict.u64(static_cast<uint64_t>(lr.status));
            if (!lr.pass()) {
                ++failures;
                std::printf("case seed=%llu: ladder: %s\n",
                            static_cast<unsigned long long>(seed),
                            lr.detail.c_str());
            }
        }
        if (o.detEvery > 0 && i % o.detEvery == 0) {
            fuzz::DiffResult dr =
                fuzz::checkBuildDeterminism(c, seed);
            verdict.u64(static_cast<uint64_t>(dr.status));
            if (!dr.pass()) {
                ++failures;
                std::printf("case seed=%llu: determinism: %s\n",
                            static_cast<unsigned long long>(seed),
                            dr.detail.c_str());
            }
        }
    }

    std::printf("pldfuzz: %d cases in %.1fs: %d pass, %d mismatch, "
                "%d hang, %d invalid\n",
                ran, elapsed(), passed, mismatches, hangs, invalid);
    std::printf("verdict-hash: %016llx\n",
                static_cast<unsigned long long>(verdict.digest()));
    return failures ? 1 : 0;
}
