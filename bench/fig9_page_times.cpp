/**
 * Reproduces Fig 9: the distribution of per-page (-O1) operator
 * mapping times for each benchmark. Prints min / median / max plus an
 * ASCII strip per benchmark — the claim being that pages within one
 * design vary several-fold, so typical incremental recompiles are
 * cheaper than the worst page (paper: 10 vs 20 minutes).
 */

#include <algorithm>

#include "bench_common.h"

using namespace pld;
using namespace pld::flow;

int
main()
{
    bench::initObservability();
    double effort = bench::benchEffort(25.0);
    auto benches = rosetta::allBenchmarks();

    Table t("Figure 9: Operators Mapping Time for PLD -O1 "
            "(seconds per page)");
    t.addRow({"Benchmark", "pages", "min", "median", "max",
              "per-page times"});

    for (auto &bm : benches) {
        PldCompiler pc(bench::device(), bench::compileOptions(effort));
        AppBuild o1 = pc.build(bm.graph, OptLevel::O1);

        // The pld.page.seconds strip from the build's telemetry
        // window — the same numbers PLD_METRICS reports.
        std::vector<double> times = bench::pageSeconds(o1);
        std::string strip;
        for (double s : times)
            strip += fmtDouble(s, 2) + " ";
        t.row(bm.name, times.size(), fmtDouble(times.front(), 2),
              fmtDouble(times[times.size() / 2], 2),
              fmtDouble(times.back(), 2), strip);
    }
    t.print();
    std::printf("(paper: page mapping times spread ~500-1200s within "
                "one design)\n");
    return 0;
}
