/**
 * Reproduces Fig 11: performance versus compile time across the four
 * flows — the paper's headline "new points in the compile-time vs
 * performance trade space". Prints one (compile seconds, normalized
 * performance) pair per benchmark per flow plus a log-scale ASCII
 * scatter.
 */

#include <algorithm>
#include <cmath>

#include "bench_common.h"

using namespace pld;
using namespace pld::flow;

int
main()
{
    double effort = bench::benchEffort(4.0);
    auto benches = rosetta::allBenchmarks();

    struct Point
    {
        std::string bench;
        OptLevel level;
        double compile_s;
        double norm_perf; // 1.0 = Vitis baseline throughput
    };
    std::vector<Point> pts;

    for (auto &bm : benches) {
        PldCompiler pc(bench::device(), bench::compileOptions(effort));
        struct Row { OptLevel lvl; AppBuild b; };
        std::vector<Row> rows;
        rows.push_back({OptLevel::Vitis,
                        pc.build(bm.graph, OptLevel::Vitis)});
        rows.push_back({OptLevel::O3, pc.build(bm.graph, OptLevel::O3)});
        pc.clearCache();
        rows.push_back({OptLevel::O1, pc.build(bm.graph, OptLevel::O1)});
        rows.push_back({OptLevel::O0, pc.build(bm.graph, OptLevel::O0)});

        double base_tput = 0;
        for (auto &r : rows) {
            auto rs = bench::execute(bm, r.b);
            double t_in = bench::perInputSeconds(bm, r.b, rs);
            double tput = 1.0 / t_in;
            if (r.lvl == OptLevel::Vitis)
                base_tput = tput;
            pts.push_back({bm.name, r.lvl, r.b.wallTimes.total(),
                           tput / base_tput});
        }
    }

    Table t("Figure 11: Performance vs Compile Time");
    t.addRow({"Benchmark", "Flow", "compile (s)", "norm perf"});
    for (const auto &p : pts) {
        t.row(p.bench, optLevelName(p.level),
              fmtDouble(p.compile_s, 3),
              fmtDouble(p.norm_perf, 5));
    }
    t.print();

    // ASCII scatter: x = log10 compile time, y = log10 norm perf.
    double min_x = 1e30, max_x = -1e30;
    for (const auto &p : pts) {
        double x = std::log10(std::max(1e-4, p.compile_s));
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
    }
    const int W = 60, H = 16;
    std::vector<std::string> grid(H, std::string(W, '.'));
    auto mark = [&](double cs, double np, char c) {
        double x = std::log10(std::max(1e-4, cs));
        double y = std::log10(std::max(1e-7, np));
        int col = static_cast<int>((x - min_x) / (max_x - min_x +
                                                  1e-9) * (W - 1));
        int row = static_cast<int>((y + 6) / 6.3 * (H - 1));
        row = std::clamp(row, 0, H - 1);
        col = std::clamp(col, 0, W - 1);
        grid[H - 1 - row][col] = c;
    };
    for (const auto &p : pts) {
        char c = p.level == OptLevel::Vitis ? 'V'
                 : p.level == OptLevel::O3  ? '3'
                 : p.level == OptLevel::O1  ? '1'
                                            : '0';
        mark(p.compile_s, p.norm_perf, c);
    }
    std::printf("\nlog10(norm perf) vs log10(compile time) "
                "[V=vitis 3=-O3 1=-O1 0=-O0]\n");
    for (const auto &line : grid)
        std::printf("  %s\n", line.c_str());
    std::printf("(paper: -O0/-O1 open fast-compile points below the "
                "slow, high-quality monolithic cluster)\n");
    return 0;
}
