/**
 * @file
 * Shared helpers for the table/figure reproduction harness.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper's evaluation (Sec 7). Absolute numbers are scaled — our
 * substrate is a simulator, not a Slurm cluster driving Vivado — but
 * each harness prints the same rows/series the paper reports so the
 * shapes can be compared (see EXPERIMENTS.md).
 */

#ifndef PLD_BENCH_COMMON_H
#define PLD_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "fabric/device.h"
#include "pld/compiler.h"
#include "rosetta/benchmark.h"
#include "sys/system.h"

namespace pld {
namespace bench {

/** Effort multiplier (PLD_BENCH_EFFORT env var overrides). */
inline double
benchEffort(double fallback = 1.0)
{
    if (const char *e = std::getenv("PLD_BENCH_EFFORT"))
        return std::atof(e);
    return fallback;
}

inline const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

inline flow::CompileOptions
compileOptions(double effort)
{
    flow::CompileOptions o;
    o.effort = effort;
    o.parallelJobs = 0; // all hardware threads, like the cluster
    return o;
}

/** Execute a built app on its workload; checks outputs; returns
 * run statistics. */
inline sys::RunStats
execute(const rosetta::Benchmark &bm, const flow::AppBuild &build,
        bool verify = true)
{
    sys::SystemSim sim(bm.graph, build.bindings, build.sysCfg);
    sim.loadInput(0, bm.input);
    sys::RunStats rs = sim.run(20000000000ull);
    if (!rs.completed) {
        std::fprintf(stderr, "%s: run did not complete!\n",
                     bm.name.c_str());
        std::exit(1);
    }
    if (verify) {
        auto out = sim.takeOutput(0);
        if (out != bm.expected) {
            std::fprintf(stderr, "%s: OUTPUT MISMATCH\n",
                         bm.name.c_str());
            std::exit(1);
        }
    }
    return rs;
}

/** Seconds per logical input item at the build's Fmax. */
inline double
perInputSeconds(const rosetta::Benchmark &bm,
                const flow::AppBuild &build,
                const sys::RunStats &rs)
{
    double hz = build.fmaxMHz * 1e6;
    return static_cast<double>(rs.cycles) / hz /
           static_cast<double>(bm.itemsPerRun);
}

} // namespace bench
} // namespace pld

#endif // PLD_BENCH_COMMON_H
