/**
 * @file
 * Shared helpers for the table/figure reproduction harness.
 *
 * Every binary in bench/ regenerates one table or figure from the
 * paper's evaluation (Sec 7). Absolute numbers are scaled — our
 * substrate is a simulator, not a Slurm cluster driving Vivado — but
 * each harness prints the same rows/series the paper reports so the
 * shapes can be compared (see EXPERIMENTS.md).
 */

#ifndef PLD_BENCH_COMMON_H
#define PLD_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "fabric/device.h"
#include "obs/trace.h"
#include "pld/compiler.h"
#include "rosetta/benchmark.h"
#include "sys/system.h"

namespace pld {
namespace bench {

/**
 * Install a process-lifetime tracer (unless PLD_TRACE/PLD_METRICS
 * already installed one), so every AppBuild::report carries a
 * metrics snapshot. The harnesses read stage times from that
 * snapshot — the same telemetry a user sees — instead of keeping
 * their own stopwatches. Call once at the top of main().
 */
inline void
initObservability()
{
    obs::ensureProcessTracer();
}

/**
 * Per-stage wall seconds for one build, from the telemetry gauges
 * the compiler publishes (pld.wall.*). Falls back to the legacy
 * stopwatch aggregate when tracing is disabled (PLD_OBS_DISABLE).
 */
inline flow::StageTimes
stageWalls(const flow::AppBuild &b)
{
    const obs::MetricsSnapshot &m = b.report.metrics;
    if (!m.enabled)
        return b.wallTimes;
    flow::StageTimes t;
    t.hls = m.gauge("pld.wall.hls");
    t.syn = m.gauge("pld.wall.syn");
    t.pnr = m.gauge("pld.wall.pnr");
    t.bitgen = m.gauge("pld.wall.bitgen");
    return t;
}

/**
 * Per-page compile-time samples for a -O1 build, sorted ascending:
 * the pld.page.seconds distribution from the build's metrics window
 * (cached pages excluded, matching what was actually compiled).
 */
inline std::vector<double>
pageSeconds(const flow::AppBuild &b)
{
    if (const obs::DistSummary *d =
            b.report.metrics.dist("pld.page.seconds"))
        return d->samples; // already sorted
    std::vector<double> times;
    for (const auto &op : b.ops)
        times.push_back(op.times.total());
    std::sort(times.begin(), times.end());
    return times;
}

/** Effort multiplier (PLD_BENCH_EFFORT env var overrides). */
inline double
benchEffort(double fallback = 1.0)
{
    if (const char *e = std::getenv("PLD_BENCH_EFFORT"))
        return std::atof(e);
    return fallback;
}

inline const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

inline flow::CompileOptions
compileOptions(double effort)
{
    flow::CompileOptions o;
    o.effort = effort;
    o.parallelJobs = 0; // all hardware threads, like the cluster
    return o;
}

/** Execute a built app on its workload; checks outputs; returns
 * run statistics. */
inline sys::RunStats
execute(const rosetta::Benchmark &bm, const flow::AppBuild &build,
        bool verify = true)
{
    sys::SystemSim sim(bm.graph, build.bindings, build.sysCfg);
    sim.loadInput(0, bm.input);
    sys::RunStats rs = sim.run(20000000000ull);
    if (!rs.completed) {
        std::fprintf(stderr, "%s: run did not complete!\n",
                     bm.name.c_str());
        std::exit(1);
    }
    if (verify) {
        auto out = sim.takeOutput(0);
        if (out != bm.expected) {
            std::fprintf(stderr, "%s: OUTPUT MISMATCH\n",
                         bm.name.c_str());
            std::exit(1);
        }
    }
    return rs;
}

/** Seconds per logical input item at the build's Fmax. */
inline double
perInputSeconds(const rosetta::Benchmark &bm,
                const flow::AppBuild &build,
                const sys::RunStats &rs)
{
    double hz = build.fmaxMHz * 1e6;
    return static_cast<double>(rs.cycles) / hz /
           static_cast<double>(bm.itemsPerRun);
}

} // namespace bench
} // namespace pld

#endif // PLD_BENCH_COMMON_H
