/**
 * Reproduces Table 4: Rosetta benchmark area consumption
 * (LUT / BRAM18 / DSP and pages used) for the Vitis baseline, -O3,
 * -O1, and -O0. Shapes to check: -O3 > Vitis (FIFO links), -O1 > -O3
 * (leaf interfaces), and -O0 charging whole softcore pages.
 */

#include "bench_common.h"

using namespace pld;
using namespace pld::flow;

int
main()
{
    double effort = bench::benchEffort(2.0);
    auto benches = rosetta::allBenchmarks();

    Table t("Table 4: Rosetta Benchmark Area Consumption");
    t.addRow({"Benchmark", "vitis:LUT", "B18", "DSP",
              "O3:LUT", "B18", "DSP",
              "O1:LUT", "B18", "DSP", "pages",
              "O0:LUT(mem KB)", "pages"});

    for (auto &bm : benches) {
        PldCompiler pc(bench::device(), bench::compileOptions(effort));
        AppBuild vit = pc.build(bm.graph, OptLevel::Vitis);
        AppBuild o3 = pc.build(bm.graph, OptLevel::O3);
        AppBuild o1 = pc.build(bm.graph, OptLevel::O1);
        AppBuild o0 = pc.build(bm.graph, OptLevel::O0);

        size_t o0_mem = 0;
        for (const auto &op : o0.ops)
            o0_mem += op.elf.memBytes;

        t.row(bm.name, vit.area.luts, vit.area.bram18, vit.area.dsps,
              o3.area.luts, o3.area.bram18, o3.area.dsps,
              o1.area.luts, o1.area.bram18, o1.area.dsps,
              o1.pagesUsed,
              std::to_string(o0.area.luts) + " (" +
                  std::to_string(o0_mem / 1024) + ")",
              o0.pagesUsed);
    }
    t.print();
    std::printf("(paper: O3 uses more BRAM/LUT than Vitis, O1 more "
                "than O3; O0 charges full one-size-fits-all "
                "processor pages)\n");
    return 0;
}
