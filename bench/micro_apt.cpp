/**
 * Microbenchmarks for the memory-efficient ap_int/ap_fixed
 * compatibility library (Sec 5.2).
 */

#include <benchmark/benchmark.h>

#include "apt/ap_fixed.h"
#include "apt/ap_int.h"

using namespace pld::apt;

static void
BM_ApFixedMulAdd(benchmark::State &state)
{
    ap_fixed<32, 17> acc = 0.0, x = 1.0625, k = 0.999;
    for (auto _ : state) {
        acc += x * k;
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ApFixedMulAdd);

static void
BM_ApFixedDivide(benchmark::State &state)
{
    ap_fixed<32, 17> n = 1234.5, d = 3.25;
    for (auto _ : state) {
        auto q = n / d;
        benchmark::DoNotOptimize(q);
    }
}
BENCHMARK(BM_ApFixedDivide);

static void
BM_ApIntBitRange(benchmark::State &state)
{
    ap_uint<32> x = 0;
    uint64_t i = 0;
    for (auto _ : state) {
        x(15, 8) = i++ & 0xFF;
        benchmark::DoNotOptimize(x.range(23, 4));
    }
}
BENCHMARK(BM_ApIntBitRange);

static void
BM_ApMemoryFootprint(benchmark::State &state)
{
    // The library claim: arrays of narrow types pack tightly.
    for (auto _ : state) {
        std::vector<ap_int<8>> v(4096);
        benchmark::DoNotOptimize(v.data());
        state.counters["bytes"] = v.size() * sizeof(ap_int<8>);
    }
}
BENCHMARK(BM_ApMemoryFootprint);

BENCHMARK_MAIN();
