/**
 * Microbenchmarks for the place-and-route engine: how annealing cost
 * scales with design size — the super-linear behaviour the PLD page
 * decomposition exploits (Sec 4.1).
 */

#include <benchmark/benchmark.h>

#include "fabric/device.h"
#include "pnr/placer.h"
#include "pnr/router.h"

using namespace pld;
using namespace pld::pnr;

namespace {

const fabric::Device &
device()
{
    static fabric::Device d = fabric::makeU50();
    return d;
}

netlist::Netlist
chain(int n)
{
    netlist::Netlist nl;
    int prev = -1;
    for (int i = 0; i < n; ++i) {
        int c = nl.addCell({netlist::SiteKind::Clb,
                            "x" + std::to_string(i), 6, 10, 1, 0,
                            {}});
        if (prev >= 0) {
            int w = nl.addNet("w" + std::to_string(i), 32, prev);
            nl.addSink(w, c);
        }
        prev = c;
    }
    return nl;
}

} // namespace

static void
BM_PlaceScaling(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    netlist::Netlist nl = chain(n);
    fabric::Rect region =
        n <= 1500 ? device().pages[0].rect : fabric::Rect{0, 0, 120,
                                                          576};
    PlacerOptions opts;
    opts.effort = 0.3;
    for (auto _ : state) {
        auto pr = place(nl, device(), region, opts);
        benchmark::DoNotOptimize(pr.finalCost);
        state.counters["moves"] =
            static_cast<double>(pr.movesAttempted);
    }
}
BENCHMARK(BM_PlaceScaling)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);

static void
BM_RouteScaling(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    netlist::Netlist nl = chain(n);
    fabric::Rect region =
        n <= 1500 ? device().pages[0].rect : fabric::Rect{0, 0, 120,
                                                          576};
    PlacerOptions popts;
    popts.effort = 0.2;
    auto pr = place(nl, device(), region, popts);
    for (auto _ : state) {
        auto rr = route(nl, device(), pr.place, {});
        benchmark::DoNotOptimize(rr.totalWirelength);
    }
}
BENCHMARK(BM_RouteScaling)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
