/**
 * Reproduces Table 3: Rosetta benchmark performance — Fmax and
 * per-input latency for the Vitis baseline, PLD -O3, PLD -O1
 * (overlay/NoC at 200 MHz), PLD -O0 (softcores), plus the X86 native
 * execution (wall clock of the functional KPN runtime) and a
 * Vitis-Emu-style estimate (functional simulation slowdown).
 *
 * Shape to check: -O3 ~ Vitis, -O1 1.5-10x slower than monolithic,
 * -O0 orders of magnitude slower again (paper Table 3).
 */

#include "bench_common.h"

#include "common/stopwatch.h"
#include "dataflow/runtime.h"

using namespace pld;
using namespace pld::flow;

int
main()
{
    double effort = bench::benchEffort(4.0);
    auto benches = rosetta::allBenchmarks();

    Table t("Table 3: Rosetta Benchmark Performance "
            "(per logical input item)");
    t.addRow({"Benchmark", "vitis:Fmax", "t/in", "O3:Fmax", "t/in",
              "O1:Fmax", "t/in", "O0:Fmax", "t/in", "x86 t/in",
              "emu t/in"});

    for (auto &bm : benches) {
        PldCompiler pc(bench::device(), bench::compileOptions(effort));
        AppBuild vit = pc.build(bm.graph, OptLevel::Vitis);
        AppBuild o3 = pc.build(bm.graph, OptLevel::O3);
        AppBuild o1 = pc.build(bm.graph, OptLevel::O1);
        AppBuild o0 = pc.build(bm.graph, OptLevel::O0);

        auto vit_rs = bench::execute(bm, vit);
        auto o3_rs = bench::execute(bm, o3);
        auto o1_rs = bench::execute(bm, o1);
        auto o0_rs = bench::execute(bm, o0);

        // X86 native: wall clock of the compiled functional model.
        Stopwatch sw;
        dataflow::GraphRuntime rt(bm.graph);
        rt.pushInput(0, bm.input);
        rt.run();
        double x86_t = sw.seconds() / double(bm.itemsPerRun);
        // Vitis-Emu-style RTL simulation: model as ~50x the native
        // functional run (RTL simulators interpret the netlist).
        double emu_t = x86_t * 50.0;

        t.row(bm.name, fmtDouble(vit.fmaxMHz, 0) + "MHz",
              fmtSeconds(bench::perInputSeconds(bm, vit, vit_rs)),
              fmtDouble(o3.fmaxMHz, 0) + "MHz",
              fmtSeconds(bench::perInputSeconds(bm, o3, o3_rs)),
              fmtDouble(o1.fmaxMHz, 0) + "MHz",
              fmtSeconds(bench::perInputSeconds(bm, o1, o1_rs)),
              fmtDouble(o0.fmaxMHz, 0) + "MHz",
              fmtSeconds(bench::perInputSeconds(bm, o0, o0_rs)),
              fmtSeconds(x86_t), fmtSeconds(emu_t));
    }
    t.print();
    std::printf(
        "(paper: -O1 1.5-10x slower than monolithic; -O0 3-5 orders "
        "slower; -O3 sometimes beats Vitis via pipelined links)\n");
    return 0;
}
