/**
 * Ablation for Sec 4.1's page-sizing discussion: sweep the page LUT
 * budget and report (a) per-page compile time and (b) overlay
 * efficiency per Eq. 1:
 *
 *   Eff = sum(operator use) /
 *         (sum(page size + leaf iface) + linking network)
 *
 * Small pages compile fast but pay interface overhead and
 * fragmentation; the paper picks ~18k-LUT pages for ~95% efficiency.
 */

#include "bench_common.h"

#include "hls/compiler.h"
#include "hls/resource_model.h"
#include "hls/synthesis.h"
#include "ir/builder.h"
#include "pnr/engine.h"

using namespace pld;

namespace {

/** A synthetic operator with roughly `target_luts` of logic. */
ir::OperatorFn
makeSized(int target_luts)
{
    using namespace pld::ir;
    OpBuilder b("sized" + std::to_string(target_luts));
    auto in = b.input("in");
    auto out = b.output("out");
    auto acc = b.var("acc", Type::s(32));
    int adders = std::max(1, target_luts / 40);
    b.forLoop(0, 64, [&](Ex) {
        b.set(acc, b.read(in).bitcast(Type::s(32)));
        for (int i = 0; i < adders; ++i)
            b.set(acc, Ex(acc) + (i + 1));
        b.write(out, acc);
    });
    return b.finish();
}

} // namespace

int
main()
{
    double effort = bench::benchEffort(0.5);
    const auto &dev = bench::device();

    Table t("Ablation: page size vs compile time and overlay "
            "efficiency (Eq. 1)");
    t.addRow({"page LUTs", "op LUTs", "p&r time (s)",
              "leaf+net overhead", "efficiency"});

    // Model pages as sub-rectangles of a real page with varying
    // height; the operator fills ~70% of each candidate page.
    const fabric::PageInfo &host = dev.pages[0];
    for (int frac = 1; frac <= 4; ++frac) {
        fabric::Rect region = host.rect;
        region.h = host.rect.h * frac / 4;
        auto res = dev.resourcesIn(region);
        int64_t page_luts = res.luts;

        auto hr = hls::compileOperator(
            makeSized(static_cast<int>(page_luts * 7 / 10)), true);
        hls::synthesize(hr.net);
        int64_t op_luts = hr.net.resources().luts;
        if (!res.covers(hr.net.resources())) {
            t.row(std::to_string(page_luts), op_luts, "does not fit",
                  "-", "-");
            continue;
        }

        pnr::PnrOptions popts;
        popts.effort = effort;
        auto pr = pnr::placeAndRoute(hr.net, dev, region, popts);

        int64_t leaf = hls::leafInterfaceOverhead().luts;
        int64_t net_per_endpoint = 500; // Sec 4.1: linking net cost
        double eff =
            double(op_luts - leaf) /
            double(page_luts + leaf + net_per_endpoint);
        t.row(std::to_string(page_luts), op_luts,
              fmtDouble(pr.placeSeconds + pr.routeSeconds, 3),
              std::to_string(leaf + net_per_endpoint),
              fmtDouble(eff, 3));
    }
    t.print();
    std::printf("(paper: ~18k-LUT pages give ~95%% efficiency "
                "before fragmentation; smaller pages compile faster "
                "but waste a larger interface fraction)\n");
    return 0;
}
