/**
 * Microbenchmarks (google-benchmark) for the linking network:
 * uncontended latency, many-to-one throughput, and config-packet
 * linking cost — the ablation behind Sec 4.3's "modest
 * packet-switched network ... for the fastest linking".
 */

#include <benchmark/benchmark.h>

#include "noc/bft.h"

using namespace pld;
using namespace pld::noc;

static void
BM_NocSingleFlitLatency(benchmark::State &state)
{
    int distance = static_cast<int>(state.range(0));
    for (auto _ : state) {
        BftNoc noc(32);
        noc.setRoute(0, 0, distance, 0);
        noc.outPort(0, 0)->write(1);
        int cycles = 0;
        auto *in = noc.inPort(distance, 0);
        while (!in->canRead()) {
            noc.stepCycle();
            ++cycles;
        }
        benchmark::DoNotOptimize(cycles);
        state.counters["net_cycles"] = cycles;
    }
}
BENCHMARK(BM_NocSingleFlitLatency)->Arg(1)->Arg(7)->Arg(31);

static void
BM_NocStreamThroughput(benchmark::State &state)
{
    int words = 256;
    for (auto _ : state) {
        BftNoc noc(32, 4, 64);
        noc.setRoute(2, 0, 21, 0);
        auto *out = noc.outPort(2, 0);
        auto *in = noc.inPort(21, 0);
        int sent = 0, got = 0;
        int cycles = 0;
        while (got < words) {
            if (sent < words && out->canWrite()) {
                out->write(static_cast<uint32_t>(sent));
                ++sent;
            }
            noc.stepCycle();
            while (in->canRead()) {
                in->read();
                ++got;
            }
            ++cycles;
        }
        state.counters["cycles_per_word"] =
            static_cast<double>(cycles) / words;
    }
}
BENCHMARK(BM_NocStreamThroughput);

static void
BM_NocLinkingConfig(benchmark::State &state)
{
    // "A few packets per page" (Sec 4.3): time to link 22 pages.
    for (auto _ : state) {
        BftNoc noc(32);
        for (int p = 0; p < 22; ++p)
            noc.sendConfig(24, p, 0, (p + 1) % 22, 0);
        int cycles = 0;
        while (!noc.idle()) {
            noc.stepCycle();
            ++cycles;
        }
        state.counters["link_cycles"] = cycles;
    }
}
BENCHMARK(BM_NocLinkingConfig);

BENCHMARK_MAIN();
