/**
 * Reproduces Table 2: Rosetta benchmark compile time by stage (hls /
 * syn / p&r / bitgen) for the Vitis baseline flow, PLD -O3, PLD -O1
 * (parallel page compiles; the stage value is the slowest operator,
 * matching the paper's per-operator cluster nodes), and PLD -O0.
 *
 * Absolute times are scaled (our backend is a simulator); the claims
 * to check are the ratios: -O1 is several-fold faster than the
 * monolithic flows, and -O0 compiles orders of magnitude faster
 * still (paper: 1-2 h monolithic, 10-20 min -O1, <4 s -O0).
 */

#include "bench_common.h"

using namespace pld;
using namespace pld::flow;

int
main()
{
    bench::initObservability();
    double effort = bench::benchEffort(25.0);
    auto benches = rosetta::allBenchmarks();

    Table t("Table 2: Rosetta Benchmark Compile Time (seconds, "
            "simulated backend)");
    t.addRow({"Benchmark",
              "vitis:hls", "syn", "p&r", "bit", "total",
              "O3:total", "O1:hls", "syn", "p&r", "bit", "total",
              "O0:total", "O1 speedup"});

    for (auto &bm : benches) {
        PldCompiler pc(bench::device(), bench::compileOptions(effort));
        AppBuild vit = pc.build(bm.graph, OptLevel::Vitis);
        AppBuild o3 = pc.build(bm.graph, OptLevel::O3);
        pc.clearCache();
        AppBuild o1 = pc.build(bm.graph, OptLevel::O1);
        AppBuild o0 = pc.build(bm.graph, OptLevel::O0);

        // Stage times come from each build's telemetry snapshot
        // (pld.wall.* gauges), not harness-local stopwatches.
        StageTimes vit_w = bench::stageWalls(vit);
        StageTimes o3_w = bench::stageWalls(o3);
        StageTimes o1_w = bench::stageWalls(o1);
        StageTimes o0_w = bench::stageWalls(o0);
        double speedup =
            vit_w.total() / std::max(1e-9, o1_w.total());
        t.row(bm.name, fmtDouble(vit_w.hls, 3),
              fmtDouble(vit_w.syn, 3),
              fmtDouble(vit_w.pnr, 3),
              fmtDouble(vit_w.bitgen, 3),
              fmtDouble(vit_w.total(), 3),
              fmtDouble(o3_w.total(), 3),
              fmtDouble(o1_w.hls, 3),
              fmtDouble(o1_w.syn, 3),
              fmtDouble(o1_w.pnr, 3),
              fmtDouble(o1_w.bitgen, 3),
              fmtDouble(o1_w.total(), 3),
              fmtDouble(o0_w.total(), 4),
              fmtDouble(speedup, 1) + "x");
    }
    t.print();
    std::printf("(paper: monolithic 3942-6584s; -O1 578-1152s => "
                "4.2-7.3x; -O0 1.0-3.4s)\n");
    return 0;
}
