/**
 * Reproduces Fig 10: the speedup distribution when ONE operator is
 * mapped to its softcore (-O0) and the rest stay on FPGA pages
 * (-O1), normalized to the all-softcore configuration — the common
 * steady-state debugging setup (paper Sec 7.4: recompile only the
 * single operator being debugged with -O0).
 */

#include <algorithm>

#include "bench_common.h"

using namespace pld;
using namespace pld::flow;

int
main()
{
    bench::initObservability();
    double effort = bench::benchEffort(2.0);
    auto benches = rosetta::allBenchmarks();
    // Retry-ladder totals across every mixed build, accumulated
    // from each build's telemetry window.
    std::map<std::string, int64_t> ladder;

    Table t("Figure 10: Speedup with One Softcore (-O0) and Rest "
            "on FPGA Pages (-O1), vs All Softcore (-O0)");
    t.addRow({"Benchmark", "allO0 cycles", "min", "median", "max",
              "per-operator speedups"});

    for (auto &bm : benches) {
        PldCompiler pc(bench::device(), bench::compileOptions(effort));
        AppBuild all_o0 = pc.build(bm.graph, OptLevel::O0);
        auto base_rs = bench::execute(bm, all_o0);
        double base = static_cast<double>(base_rs.cycles);

        std::vector<double> speedups;
        std::string detail;
        for (size_t victim = 0; victim < bm.graph.ops.size();
             ++victim) {
            ir::Graph g = bm.graph;
            for (size_t oi = 0; oi < g.ops.size(); ++oi) {
                g.ops[oi].fn.pragma.target = (oi == victim)
                                                 ? ir::Target::RISCV
                                                 : ir::Target::HW;
            }
            AppBuild mixed = pc.build(g, OptLevel::O1);
            // Surface unplanned degradation (e.g. under PLD_FAULT):
            // the requested softcore victim is not "degraded", so
            // anything here means the retry ladder actually fired.
            if (!mixed.report.allOk() ||
                mixed.report.degradedCount() > 0)
                std::printf("%s", mixed.report.render().c_str());
            for (const auto &[name, v] :
                 mixed.report.metrics.counters) {
                if (name.rfind("ladder.", 0) == 0)
                    ladder[name] += v;
            }
            rosetta::Benchmark bm2 = bm;
            bm2.graph = g;
            auto rs = bench::execute(bm2, mixed);
            double sp = base / static_cast<double>(rs.cycles);
            speedups.push_back(sp);
            detail += g.ops[victim].instName + "=" +
                      fmtDouble(sp, 1) + "x ";
        }
        std::sort(speedups.begin(), speedups.end());
        t.row(bm.name, base_rs.cycles,
              fmtDouble(speedups.front(), 1) + "x",
              fmtDouble(speedups[speedups.size() / 2], 1) + "x",
              fmtDouble(speedups.back(), 1) + "x", detail);
    }
    t.print();
    std::printf("retry ladder over all mixed builds:");
    if (ladder.empty())
        std::printf(" (no telemetry)");
    for (const auto &[name, v] : ladder)
        std::printf(" %s=%lld", name.c_str(),
                    static_cast<long long>(v));
    std::printf("\n");
    std::printf("(paper: speedups range from ~1x, when the softcore "
                "operator is the bottleneck, up to 100s of x)\n");
    return 0;
}
