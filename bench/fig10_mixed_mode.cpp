/**
 * Reproduces Fig 10: the speedup distribution when ONE operator is
 * mapped to its softcore (-O0) and the rest stay on FPGA pages
 * (-O1), normalized to the all-softcore configuration — the common
 * steady-state debugging setup (paper Sec 7.4: recompile only the
 * single operator being debugged with -O0).
 *
 * Also compares the two softcore codegen tiers on the same setup:
 * all-softcore cycle counts at -O0 vs -Os and the degraded-page
 * slowdown (one softcore victim vs the all-hardware build) at each
 * tier, emitted as BENCH_softcore.json — the measured answer to "how
 * much does the optimizing tier shrink the debug-loop penalty".
 *
 * Also measures the runtime half of that loop: hot-swapping each
 * operator's page live (drain, CRC-framed config stream, activate)
 * and reporting the swap-latency distribution (p50/p95 of the
 * sys.swap.cycles telemetry), emitted as BENCH_swap.json.
 */

#include <algorithm>

#include "bench_common.h"

using namespace pld;
using namespace pld::flow;

int
main()
{
    bench::initObservability();
    double effort = bench::benchEffort(2.0);
    auto benches = rosetta::allBenchmarks();
    // Retry-ladder totals across every mixed build, accumulated
    // from each build's telemetry window.
    std::map<std::string, int64_t> ladder;

    Table t("Figure 10: Speedup with One Softcore (-O0) and Rest "
            "on FPGA Pages (-O1), vs All Softcore (-O0)");
    t.addRow({"Benchmark", "allO0 cycles", "min", "median", "max",
              "per-operator speedups"});

    // Per-benchmark tier comparison (BENCH_softcore.json below).
    struct TierRow
    {
        std::string name;
        uint64_t allO0 = 0;   ///< all-softcore cycles, -O0 images
        uint64_t allOs = 0;   ///< all-softcore cycles, -Os images
        uint64_t hw = 0;      ///< all-hardware (-O1) cycles
        double worstO0 = 0;   ///< worst degraded-page slowdown, -O0
        double worstOs = 0;   ///< worst degraded-page slowdown, -Os
    };
    std::vector<TierRow> tiers;

    for (auto &bm : benches) {
        // The figure's table keeps the paper-faithful -O0 softcore;
        // a second compiler at -Os measures the optimizing tier on
        // exactly the same victims.
        CompileOptions co = bench::compileOptions(effort);
        co.softcoreTier = rvgen::Tier::O0;
        PldCompiler pc(bench::device(), co);
        co.softcoreTier = rvgen::Tier::Os;
        PldCompiler pcOs(bench::device(), co);

        AppBuild all_o0 = pc.build(bm.graph, OptLevel::O0);
        auto base_rs = bench::execute(bm, all_o0);
        double base = static_cast<double>(base_rs.cycles);

        TierRow tr;
        tr.name = bm.name;
        tr.allO0 = base_rs.cycles;
        AppBuild all_os = pcOs.build(bm.graph, OptLevel::O0);
        tr.allOs = bench::execute(bm, all_os).cycles;
        AppBuild hw = pc.build(bm.graph, OptLevel::O1);
        tr.hw = bench::execute(bm, hw).cycles;

        std::vector<double> speedups;
        std::string detail;
        for (size_t victim = 0; victim < bm.graph.ops.size();
             ++victim) {
            ir::Graph g = bm.graph;
            for (size_t oi = 0; oi < g.ops.size(); ++oi) {
                g.ops[oi].fn.pragma.target = (oi == victim)
                                                 ? ir::Target::RISCV
                                                 : ir::Target::HW;
            }
            AppBuild mixed = pc.build(g, OptLevel::O1);
            // Surface unplanned degradation (e.g. under PLD_FAULT):
            // the requested softcore victim is not "degraded", so
            // anything here means the retry ladder actually fired.
            if (!mixed.report.allOk() ||
                mixed.report.degradedCount() > 0)
                std::printf("%s", mixed.report.render().c_str());
            for (const auto &[name, v] :
                 mixed.report.metrics.counters) {
                if (name.rfind("ladder.", 0) == 0)
                    ladder[name] += v;
            }
            rosetta::Benchmark bm2 = bm;
            bm2.graph = g;
            auto rs = bench::execute(bm2, mixed);
            double sp = base / static_cast<double>(rs.cycles);
            speedups.push_back(sp);
            detail += g.ops[victim].instName + "=" +
                      fmtDouble(sp, 1) + "x ";

            AppBuild mixedOs = pcOs.build(g, OptLevel::O1);
            auto rsOs = bench::execute(bm2, mixedOs);
            double hwCycles = static_cast<double>(tr.hw);
            tr.worstO0 = std::max(
                tr.worstO0,
                static_cast<double>(rs.cycles) / hwCycles);
            tr.worstOs = std::max(
                tr.worstOs,
                static_cast<double>(rsOs.cycles) / hwCycles);
        }
        std::sort(speedups.begin(), speedups.end());
        t.row(bm.name, base_rs.cycles,
              fmtDouble(speedups.front(), 1) + "x",
              fmtDouble(speedups[speedups.size() / 2], 1) + "x",
              fmtDouble(speedups.back(), 1) + "x", detail);
        tiers.push_back(std::move(tr));
    }
    t.print();

    // ---- softcore tier comparison: -O0 vs -Os --------------------
    Table tt("Softcore Tier Comparison: all-softcore cycles and "
             "worst degraded-page slowdown vs all-HW");
    tt.addRow({"Benchmark", "allO0", "allOs", "Os speedup",
               "worst slowdown -O0", "worst slowdown -Os"});
    FILE *fs = std::fopen("BENCH_softcore.json", "w");
    if (!fs) {
        std::fprintf(stderr, "cannot write BENCH_softcore.json\n");
        return 1;
    }
    std::fprintf(fs, "{\n  \"bench\": \"softcore_tiers\",\n"
                     "  \"unit\": \"cycles\",\n"
                     "  \"benchmarks\": [");
    bool firstTier = true;
    for (const TierRow &tr : tiers) {
        double sp = tr.allOs
                        ? static_cast<double>(tr.allO0) /
                              static_cast<double>(tr.allOs)
                        : 0;
        tt.row(tr.name, tr.allO0, tr.allOs,
               fmtDouble(sp, 2) + "x",
               fmtDouble(tr.worstO0, 1) + "x",
               fmtDouble(tr.worstOs, 1) + "x");
        std::fprintf(
            fs,
            "%s\n    {\"name\": \"%s\", \"all_o0_cycles\": %llu, "
            "\"all_os_cycles\": %llu, \"os_speedup\": %.3f, "
            "\"hw_cycles\": %llu, "
            "\"worst_degraded_slowdown_o0\": %.3f, "
            "\"worst_degraded_slowdown_os\": %.3f}",
            firstTier ? "" : ",", tr.name.c_str(),
            static_cast<unsigned long long>(tr.allO0),
            static_cast<unsigned long long>(tr.allOs), sp,
            static_cast<unsigned long long>(tr.hw), tr.worstO0,
            tr.worstOs);
        firstTier = false;
    }
    std::fprintf(fs, "\n  ]\n}\n");
    std::fclose(fs);
    tt.print();
    std::printf("(the -Os tier shrinks the debug-loop penalty: a "
                "degraded page costs less because its softcore "
                "retires the same work in fewer ISS cycles)\n");
    std::printf("retry ladder over all mixed builds:");
    if (ladder.empty())
        std::printf(" (no telemetry)");
    for (const auto &[name, v] : ladder)
        std::printf(" %s=%lld", name.c_str(),
                    static_cast<long long>(v));
    std::printf("\n");
    std::printf("(paper: speedups range from ~1x, when the softcore "
                "operator is the bottleneck, up to 100s of x)\n");

    // ---- swap latency: the runtime cost of one live iteration ----
    // For each benchmark, hot-swap every operator's page once
    // (recompile-to-artifact is a cache hit; the cost measured is
    // drain + CRC-framed image stream + activation) and summarize
    // the sys.swap.cycles distribution.
    Table ts("Hot-Swap Latency per Page (cycles: drain + config "
             "stream + activate)");
    ts.addRow({"Benchmark", "swaps", "min", "p50", "p95", "max",
               "largest image"});
    FILE *f = std::fopen("BENCH_swap.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_swap.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"swap_latency\",\n"
                    "  \"unit\": \"cycles\",\n"
                    "  \"benchmarks\": [");
    bool first = true;
    for (auto &bm : benches) {
        PldCompiler pc(bench::device(), bench::compileOptions(effort));
        AppBuild build = pc.build(bm.graph, OptLevel::O1);
        sys::SystemSim sim(bm.graph, build.bindings, build.sysCfg);
        sim.loadInput(0, bm.input);
        if (!sim.run().completed) {
            std::fprintf(stderr, "%s: pre-swap run stalled\n",
                         bm.name.c_str());
            return 1;
        }
        sim.takeOutput(0);

        auto w = obs::beginWindow();
        uint64_t biggest = 0;
        for (const auto &op : bm.graph.ops) {
            SwapArtifact sa =
                pc.buildSwapArtifact(bm.graph, op.fn.name, build);
            biggest = std::max(biggest, sa.binding.imageBytes);
            sys::SwapResult r = sim.swapPage(
                sa.binding.pageId, sa.binding,
                sa.fnChanged ? &sa.fn : nullptr);
            if (r.outcome != sys::SwapOutcome::Swapped) {
                std::fprintf(stderr, "%s: swap of %s -> %s\n",
                             bm.name.c_str(), op.fn.name.c_str(),
                             sys::swapOutcomeName(r.outcome));
                return 1;
            }
        }
        obs::MetricsSnapshot m = obs::endWindow(w);
        const obs::DistSummary *d = m.dist("sys.swap.cycles");
        if (!d) {
            std::fprintf(stderr, "no sys.swap.cycles telemetry "
                                 "(tracing disabled?)\n");
            return 1;
        }
        ts.row(bm.name, d->count, fmtDouble(d->min, 0),
               fmtDouble(d->p50, 0), fmtDouble(d->p95, 0),
               fmtDouble(d->max, 0),
               std::to_string(biggest) + " B");
        std::fprintf(f,
                     "%s\n    {\"name\": \"%s\", \"swaps\": %llu, "
                     "\"min\": %.0f, \"p50\": %.0f, \"p95\": %.0f, "
                     "\"max\": %.0f, \"largest_image_bytes\": %llu}",
                     first ? "" : ",", bm.name.c_str(),
                     static_cast<unsigned long long>(d->count),
                     d->min, d->p50, d->p95, d->max,
                     static_cast<unsigned long long>(biggest));
        first = false;
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    ts.print();
    std::printf("(a swap streams the page's partial image as "
                "CRC-framed config packets; the other pages keep "
                "running throughout)\n");
    return 0;
}
