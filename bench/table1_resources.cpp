/**
 * Reproduces Table 1 (page resource distribution) and Fig 8 (the
 * physical layout floorplan) from the fabric model.
 */

#include "bench_common.h"

using namespace pld;

int
main()
{
    const fabric::Device &dev = bench::device();

    Table t1("Table 1: Resource Distribution (reproduction)");
    std::vector<std::string> header{"Page Type"};
    for (size_t i = 0; i < dev.pageTypes.size(); ++i)
        header.push_back("Type-" + std::to_string(i + 1));
    t1.addRow(header);

    auto row = [&](const std::string &label, auto get) {
        std::vector<std::string> r{label};
        for (const auto &pt : dev.pageTypes)
            r.push_back(std::to_string(get(pt)));
        t1.addRow(r);
    };
    row("LUTs", [](const fabric::PageType &p) { return p.res.luts; });
    row("FFs", [](const fabric::PageType &p) { return p.res.ffs; });
    row("BRAM18s",
        [](const fabric::PageType &p) { return p.res.bram18; });
    row("DSPs", [](const fabric::PageType &p) { return p.res.dsps; });
    row("Number", [](const fabric::PageType &p) { return p.count; });
    t1.print();

    auto user = dev.userResources();
    std::printf("Total user pages: %zu   %s\n", dev.pages.size(),
                user.toString().c_str());
    std::printf("(paper: 22 pages over 751,793 LUTs / 2,300 BRAM18s "
                "/ 5,936 DSPs, 4 types of 17.5k-21.3k LUTs)\n\n");

    std::printf("Figure 8: Physical Layout Floorplan\n%s\n",
                dev.renderFloorplan().c_str());
    return 0;
}
