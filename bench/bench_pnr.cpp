/**
 * @file
 * Parallel place-and-route speedup harness.
 *
 * Runs the same monolithic p&r job (several HLS-compiled operators
 * merged into the full user region, annealing restarts engaged) at
 * threads=1 and threads=8 and reports the wall-time speedup plus a
 * bit-identity check between the two runs — thread count must only
 * ever change wall time, never results. Emits BENCH_pnr.json for the
 * regression driver; the recorded speedup reflects the cores of the
 * machine it runs on (a 1-core box will show ~1x with identical
 * bits, a >=8-core box the real gain).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "hls/synthesis.h"
#include "ir/builder.h"
#include "pnr/engine.h"

using namespace pld;
using namespace pld::ir;
using namespace pld::pnr;
using netlist::Netlist;

namespace {

OperatorFn
makeKernel(const std::string &name, int taps)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto w = b.array("w", Type::fx(16, 8), taps);
    auto acc = b.var("acc", Type::fx(32, 17));
    b.forLoop(0, taps, [&](Ex i) {
        b.store(w, i, b.read(in).bitcast(Type::fx(16, 8)));
    });
    b.forLoop(0, 256, [&](Ex i) {
        Ex x = b.read(in).bitcast(Type::fx(32, 17));
        b.set(acc, Ex(acc) + x * w[i % lit(taps)]);
        b.write(out, acc);
    });
    return b.finish();
}

Netlist
makeMonolithic(int ops)
{
    Netlist big;
    for (int i = 0; i < ops; ++i) {
        auto r = hls::compileOperator(
            makeKernel("op" + std::to_string(i), 4 + i % 5), false);
        hls::synthesize(r.net);
        if (i == 0)
            big = std::move(r.net);
        else
            big.merge(r.net, "op" + std::to_string(i) + "/");
    }
    return big;
}

struct Measured
{
    double wall = 0;
    double cpu = 0;
    PnrResult res;
};

Measured
measure(const Netlist &nl, const fabric::Device &dev,
        const fabric::Rect &region, unsigned threads, double effort,
        int reps)
{
    PnrOptions opts;
    opts.effort = effort;
    opts.seed = 42;
    opts.threads = threads;
    opts.placeRestarts = 8;
    opts.abstractShell = false;

    std::vector<double> walls;
    Measured m;
    for (int r = 0; r < reps; ++r) {
        Stopwatch sw;
        m.res = placeAndRoute(nl, dev, region, opts);
        walls.push_back(sw.seconds());
    }
    std::sort(walls.begin(), walls.end());
    m.wall = walls[walls.size() / 2];
    m.cpu = m.res.placeCpuSeconds + m.res.routeCpuSeconds;
    return m;
}

} // namespace

int
main()
{
    const double effort = bench::benchEffort(1.0);
    const fabric::Device &dev = bench::device();
    const fabric::Rect user{0, 0, 120, 576};
    const int kOps = 8;
    const int kReps = 3;

    Netlist nl = makeMonolithic(kOps);

    Measured serial = measure(nl, dev, user, 1, effort, kReps);
    Measured wide = measure(nl, dev, user, 8, effort, kReps);

    bool identical =
        serial.res.place.pos == wide.res.place.pos &&
        serial.res.routing.routes == wide.res.routing.routes &&
        serial.res.bits.hash == wide.res.bits.hash &&
        serial.res.timing.fmaxMHz == wide.res.timing.fmaxMHz;
    double speedup = serial.wall / std::max(wide.wall, 1e-12);

    std::printf("monolithic p&r, %d ops, %zu cells, effort %.2f, "
                "8 restarts\n",
                kOps, nl.cells.size(), effort);
    std::printf("  threads=1: wall %.3fs  cpu %.3fs\n", serial.wall,
                serial.cpu);
    std::printf("  threads=8: wall %.3fs  cpu %.3fs  (%u lanes)\n",
                wide.wall, wide.cpu, wide.res.threadsUsed);
    std::printf("  speedup %.2fx, results %s\n", speedup,
                identical ? "bit-identical" : "DIFFER");

    FILE *f = std::fopen("BENCH_pnr.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_pnr.json\n");
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"pnr_parallel\",\n"
        "  \"ops\": %d,\n"
        "  \"cells\": %zu,\n"
        "  \"effort\": %g,\n"
        "  \"restarts\": 8,\n"
        "  \"reps\": %d,\n"
        "  \"serial\": {\"threads\": 1, \"wall_s\": %.6f, "
        "\"cpu_s\": %.6f},\n"
        "  \"parallel\": {\"threads\": 8, \"wall_s\": %.6f, "
        "\"cpu_s\": %.6f, \"lanes\": %u},\n"
        "  \"speedup\": %.4f,\n"
        "  \"bit_identical\": %s\n"
        "}\n",
        kOps, nl.cells.size(), effort, kReps, serial.wall,
        serial.cpu, wide.wall, wide.cpu, wide.res.threadsUsed,
        speedup, identical ? "true" : "false");
    std::fclose(f);

    // Identity is a hard requirement; speedup is reported, not
    // asserted, because it depends on the host's core count.
    return identical ? 0 : 1;
}
