/**
 * Multi-tenant scheduler benchmark: N tenants (one hostile)
 * time-share a grid half their combined footprint. Reports
 * per-tenant throughput (words per 1k fabric cycles), completed
 * batches, latency p50/p95, and quarantine counts, plus the Jain
 * fairness index over served page-cycles for the HEALTHY tenants
 * (the hostile tenant self-charges its fault recovery, so it is
 * reported separately, not averaged away). Emits BENCH_tenancy.json.
 *
 * Everything here is simulated fabric time, so the numbers are
 * bit-reproducible; wall time only changes how long the report
 * takes to produce.
 */

#include <string>
#include <vector>

#include "bench_common.h"
#include "dataflow/runtime.h"
#include "ir/builder.h"
#include "sys/tenancy.h"

using namespace pld;
using namespace pld::ir;

namespace {

OperatorFn
makeAdd(const std::string &name, int k, int n)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    b.forLoop(0, n, [&](Ex) {
        b.write(out, b.read(in).bitcast(Type::s(32)) + k);
    });
    return b.finish();
}

Graph
makeApp(const std::string &prefix, int k, int n)
{
    GraphBuilder gb(prefix);
    auto in = gb.extIn("I");
    auto out = gb.extOut("O");
    auto mid = gb.wire();
    gb.inst(makeAdd(prefix + "_a", k, n), {in}, {mid});
    gb.inst(makeAdd(prefix + "_b", 2 * k, n), {mid}, {out});
    return gb.finish();
}

std::vector<uint32_t>
iota(int n, uint32_t base)
{
    std::vector<uint32_t> v;
    for (int i = 0; i < n; ++i)
        v.push_back(base + static_cast<uint32_t>(i));
    return v;
}

} // namespace

int
main()
{
    bench::initObservability();
    const int kTenants = 6;
    const int kHostile = 2; // index of the hostile tenant
    const int n = 64;
    const int kBatches = 4;

    flow::PldCompiler pc(bench::device(),
                         bench::compileOptions(0.1));
    std::vector<std::string> names;
    std::vector<Graph> graphs;
    graphs.reserve(static_cast<size_t>(kTenants));
    for (int t = 0; t < kTenants; ++t) {
        names.push_back(t == kHostile ? "hostile"
                                      : "t" + std::to_string(t));
        graphs.push_back(makeApp(names.back(), t + 1, n));
    }
    std::vector<flow::AppBuild> builds;
    builds.reserve(graphs.size());
    std::vector<flow::TenantAppRef> refs;
    for (int t = 0; t < kTenants; ++t)
        builds.push_back(
            pc.build(graphs[static_cast<size_t>(t)],
                     flow::OptLevel::O1));
    for (int t = 0; t < kTenants; ++t)
        refs.push_back({names[static_cast<size_t>(t)],
                        &graphs[static_cast<size_t>(t)],
                        &builds[static_cast<size_t>(t)]});
    flow::TenantPack pack = pc.packTenantApps(refs);
    if (!pack.status.ok() ||
        pack.specs.size() != static_cast<size_t>(kTenants)) {
        std::fprintf(stderr, "pack failed:\n%s\n",
                     pack.status.render().c_str());
        return 1;
    }

    FaultPlan plan = FaultPlan::parse(
        "config_corrupt:hostile/hostile_a*2;"
        "page_hang:hostile/hostile_b");
    for (auto &spec : pack.specs)
        spec.sysCfg.faults = plan;

    sys::TenantLimits lim;
    lim.fabricPages = pack.totalPages / 2; // 2x oversubscribed
    lim.sliceCycles = 400;
    lim.drrQuantum = 1600;
    lim.hangSliceLimit = 12;
    sys::TenantScheduler sched(lim);
    std::vector<int> ids;
    for (auto &spec : pack.specs)
        ids.push_back(sched.admit(spec).tenantId);
    for (int t = 0; t < kTenants; ++t)
        for (int b = 0; b < kBatches; ++b)
            sched.submit(ids[static_cast<size_t>(t)],
                         {iota(n, static_cast<uint32_t>(
                                      1000 * t + 100 * b))});

    // Hostile mid-run swap: both attempts hang -> quarantine.
    flow::SwapArtifact sa = pc.buildSwapArtifact(
        graphs[kHostile], "hostile_b", builds[kHostile]);
    sched.requestTenantSwap(ids[kHostile], sa.binding.pageId,
                            sa.binding,
                            sa.fnChanged ? &sa.fn : nullptr);

    sys::SchedStats ss = sched.run();

    // Verify before reporting: a fairness number for wrong outputs
    // is worse than no number.
    for (int t = 0; t < kTenants; ++t) {
        auto out = sched.takeOutput(ids[static_cast<size_t>(t)]);
        if (out.size() != static_cast<size_t>(kBatches)) {
            std::fprintf(stderr, "%s: starved\n",
                         names[static_cast<size_t>(t)].c_str());
            return 1;
        }
        for (int b = 0; b < kBatches; ++b) {
            dataflow::GraphRuntime gold(
                graphs[static_cast<size_t>(t)]);
            gold.pushInput(0, iota(n, static_cast<uint32_t>(
                                          1000 * t + 100 * b)));
            if (!gold.run() ||
                out[static_cast<size_t>(b)].streams[0] !=
                    gold.takeOutput(0)) {
                std::fprintf(
                    stderr, "%s: OUTPUT MISMATCH\n",
                    names[static_cast<size_t>(t)].c_str());
                return 1;
            }
        }
    }

    // Jain over the healthy tenants' served page-cycles.
    double sum = 0, sumsq = 0;
    int healthy = 0;
    for (int t = 0; t < kTenants; ++t) {
        if (t == kHostile)
            continue;
        double x = static_cast<double>(
            sched.tenantStats(ids[static_cast<size_t>(t)])
                .servedPageCycles);
        sum += x;
        sumsq += x * x;
        ++healthy;
    }
    double jainHealthy =
        sumsq > 0 ? (sum * sum) / (healthy * sumsq) : 0.0;

    std::printf("tenancy: %d tenants (1 hostile) on %d pages, "
                "%d batches each\n",
                kTenants, lim.fabricPages, kBatches);
    std::printf("  %llu rounds, %llu slices, %llu fabric cycles, "
                "%llu evictions, %llu instatements\n",
                static_cast<unsigned long long>(ss.rounds),
                static_cast<unsigned long long>(ss.slices),
                static_cast<unsigned long long>(ss.virtualCycles),
                static_cast<unsigned long long>(ss.evictions),
                static_cast<unsigned long long>(ss.instatements));
    std::printf("  Jain fairness: healthy %.4f, all %.4f\n",
                jainHealthy, ss.jainFairness);

    FILE *f = std::fopen("BENCH_tenancy.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_tenancy.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"tenancy\",\n"
                 "  \"tenants\": %d,\n"
                 "  \"fabric_pages\": %d,\n"
                 "  \"batches_per_tenant\": %d,\n"
                 "  \"rounds\": %llu,\n"
                 "  \"slices\": %llu,\n"
                 "  \"fabric_cycles\": %llu,\n"
                 "  \"evictions\": %llu,\n"
                 "  \"instatements\": %llu,\n"
                 "  \"jain_fairness_healthy\": %.6f,\n"
                 "  \"jain_fairness_all\": %.6f,\n"
                 "  \"per_tenant\": [\n",
                 kTenants, lim.fabricPages, kBatches,
                 static_cast<unsigned long long>(ss.rounds),
                 static_cast<unsigned long long>(ss.slices),
                 static_cast<unsigned long long>(ss.virtualCycles),
                 static_cast<unsigned long long>(ss.evictions),
                 static_cast<unsigned long long>(ss.instatements),
                 jainHealthy, ss.jainFairness);
    for (int t = 0; t < kTenants; ++t) {
        auto st = sched.tenantStats(ids[static_cast<size_t>(t)]);
        double thr =
            ss.virtualCycles
                ? 1000.0 * static_cast<double>(st.wordsOut) /
                      static_cast<double>(ss.virtualCycles)
                : 0.0;
        std::printf("  %-8s words=%llu thr=%.3f/kcycle "
                    "p50=%llu p95=%llu evictions=%llu "
                    "rollbacks=%llu quarantines=%llu\n",
                    names[static_cast<size_t>(t)].c_str(),
                    static_cast<unsigned long long>(st.wordsOut),
                    thr,
                    static_cast<unsigned long long>(st.latencyP50),
                    static_cast<unsigned long long>(st.latencyP95),
                    static_cast<unsigned long long>(st.evictions),
                    static_cast<unsigned long long>(st.rollbacks),
                    static_cast<unsigned long long>(
                        st.quarantinedPages));
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"batches\": %llu, "
            "\"words\": %llu, \"throughput_per_kcycle\": %.6f, "
            "\"latency_p50\": %llu, \"latency_p95\": %llu, "
            "\"page_cycles\": %llu, \"evictions\": %llu, "
            "\"rollbacks\": %llu, \"retransmits\": %llu, "
            "\"quarantined_pages\": %llu}%s\n",
            names[static_cast<size_t>(t)].c_str(),
            static_cast<unsigned long long>(st.batchesDone),
            static_cast<unsigned long long>(st.wordsOut), thr,
            static_cast<unsigned long long>(st.latencyP50),
            static_cast<unsigned long long>(st.latencyP95),
            static_cast<unsigned long long>(st.servedPageCycles),
            static_cast<unsigned long long>(st.evictions),
            static_cast<unsigned long long>(st.rollbacks),
            static_cast<unsigned long long>(st.retransmits),
            static_cast<unsigned long long>(st.quarantinedPages),
            t + 1 < kTenants ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);

    std::printf("all outputs verified against the dataflow golden; "
                "wrote BENCH_tenancy.json\n");
    return 0;
}
