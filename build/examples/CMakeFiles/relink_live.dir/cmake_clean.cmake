file(REMOVE_RECURSE
  "CMakeFiles/relink_live.dir/relink_live.cpp.o"
  "CMakeFiles/relink_live.dir/relink_live.cpp.o.d"
  "relink_live"
  "relink_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relink_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
