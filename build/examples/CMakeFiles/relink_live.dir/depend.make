# Empty dependencies file for relink_live.
# This may be replaced when dependencies are built.
