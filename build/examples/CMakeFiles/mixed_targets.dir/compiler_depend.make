# Empty compiler generated dependencies file for mixed_targets.
# This may be replaced when dependencies are built.
