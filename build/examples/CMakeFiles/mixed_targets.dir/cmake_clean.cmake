file(REMOVE_RECURSE
  "CMakeFiles/mixed_targets.dir/mixed_targets.cpp.o"
  "CMakeFiles/mixed_targets.dir/mixed_targets.cpp.o.d"
  "mixed_targets"
  "mixed_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
