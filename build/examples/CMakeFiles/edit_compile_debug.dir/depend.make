# Empty dependencies file for edit_compile_debug.
# This may be replaced when dependencies are built.
