file(REMOVE_RECURSE
  "CMakeFiles/edit_compile_debug.dir/edit_compile_debug.cpp.o"
  "CMakeFiles/edit_compile_debug.dir/edit_compile_debug.cpp.o.d"
  "edit_compile_debug"
  "edit_compile_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edit_compile_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
