# Empty dependencies file for table4_area.
# This may be replaced when dependencies are built.
