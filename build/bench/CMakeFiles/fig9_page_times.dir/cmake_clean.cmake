file(REMOVE_RECURSE
  "CMakeFiles/fig9_page_times.dir/fig9_page_times.cpp.o"
  "CMakeFiles/fig9_page_times.dir/fig9_page_times.cpp.o.d"
  "fig9_page_times"
  "fig9_page_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_page_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
