# Empty dependencies file for fig9_page_times.
# This may be replaced when dependencies are built.
