# Empty compiler generated dependencies file for micro_pnr.
# This may be replaced when dependencies are built.
