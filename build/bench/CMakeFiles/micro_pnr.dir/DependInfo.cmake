
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_pnr.cpp" "bench/CMakeFiles/micro_pnr.dir/micro_pnr.cpp.o" "gcc" "bench/CMakeFiles/micro_pnr.dir/micro_pnr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pld/CMakeFiles/pld_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/rosetta/CMakeFiles/pld_rosetta.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/pld_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pld_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/pnr/CMakeFiles/pld_pnr.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/pld_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/pld_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/rv32/CMakeFiles/pld_rv32.dir/DependInfo.cmake"
  "/root/repo/build/src/rvgen/CMakeFiles/pld_rvgen.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/pld_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/pld_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pld_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pld_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
