file(REMOVE_RECURSE
  "CMakeFiles/micro_pnr.dir/micro_pnr.cpp.o"
  "CMakeFiles/micro_pnr.dir/micro_pnr.cpp.o.d"
  "micro_pnr"
  "micro_pnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
