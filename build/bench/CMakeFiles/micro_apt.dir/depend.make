# Empty dependencies file for micro_apt.
# This may be replaced when dependencies are built.
