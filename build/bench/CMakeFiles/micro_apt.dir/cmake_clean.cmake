file(REMOVE_RECURSE
  "CMakeFiles/micro_apt.dir/micro_apt.cpp.o"
  "CMakeFiles/micro_apt.dir/micro_apt.cpp.o.d"
  "micro_apt"
  "micro_apt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_apt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
