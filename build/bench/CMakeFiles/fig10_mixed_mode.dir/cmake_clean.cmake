file(REMOVE_RECURSE
  "CMakeFiles/fig10_mixed_mode.dir/fig10_mixed_mode.cpp.o"
  "CMakeFiles/fig10_mixed_mode.dir/fig10_mixed_mode.cpp.o.d"
  "fig10_mixed_mode"
  "fig10_mixed_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mixed_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
