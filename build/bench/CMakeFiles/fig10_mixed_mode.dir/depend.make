# Empty dependencies file for fig10_mixed_mode.
# This may be replaced when dependencies are built.
