# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_apt[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_hls[1]_include.cmake")
include("/root/repo/build/tests/test_pnr[1]_include.cmake")
include("/root/repo/build/tests/test_rv32[1]_include.cmake")
include("/root/repo/build/tests/test_rvgen[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_sys[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_rosetta[1]_include.cmake")
