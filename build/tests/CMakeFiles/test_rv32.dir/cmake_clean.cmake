file(REMOVE_RECURSE
  "CMakeFiles/test_rv32.dir/rv32/test_asm.cpp.o"
  "CMakeFiles/test_rv32.dir/rv32/test_asm.cpp.o.d"
  "CMakeFiles/test_rv32.dir/rv32/test_iss.cpp.o"
  "CMakeFiles/test_rv32.dir/rv32/test_iss.cpp.o.d"
  "test_rv32"
  "test_rv32.pdb"
  "test_rv32[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rv32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
