# Empty dependencies file for test_rv32.
# This may be replaced when dependencies are built.
