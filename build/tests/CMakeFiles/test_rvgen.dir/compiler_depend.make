# Empty compiler generated dependencies file for test_rvgen.
# This may be replaced when dependencies are built.
