file(REMOVE_RECURSE
  "CMakeFiles/test_rvgen.dir/rvgen/test_codegen.cpp.o"
  "CMakeFiles/test_rvgen.dir/rvgen/test_codegen.cpp.o.d"
  "CMakeFiles/test_rvgen.dir/rvgen/test_crosscheck.cpp.o"
  "CMakeFiles/test_rvgen.dir/rvgen/test_crosscheck.cpp.o.d"
  "CMakeFiles/test_rvgen.dir/rvgen/test_param_sweep.cpp.o"
  "CMakeFiles/test_rvgen.dir/rvgen/test_param_sweep.cpp.o.d"
  "test_rvgen"
  "test_rvgen.pdb"
  "test_rvgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rvgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
