file(REMOVE_RECURSE
  "CMakeFiles/test_rosetta.dir/rosetta/test_benchmarks.cpp.o"
  "CMakeFiles/test_rosetta.dir/rosetta/test_benchmarks.cpp.o.d"
  "test_rosetta"
  "test_rosetta.pdb"
  "test_rosetta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rosetta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
