# Empty dependencies file for test_rosetta.
# This may be replaced when dependencies are built.
