
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/test_builder.cpp" "tests/CMakeFiles/test_ir.dir/ir/test_builder.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/test_builder.cpp.o.d"
  "/root/repo/tests/ir/test_dfg.cpp" "tests/CMakeFiles/test_ir.dir/ir/test_dfg.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/test_dfg.cpp.o.d"
  "/root/repo/tests/ir/test_type.cpp" "tests/CMakeFiles/test_ir.dir/ir/test_type.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/test_type.cpp.o.d"
  "/root/repo/tests/ir/test_validate.cpp" "tests/CMakeFiles/test_ir.dir/ir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pld_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/pld_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/pld_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pld_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pld_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
