file(REMOVE_RECURSE
  "CMakeFiles/test_ir.dir/ir/test_builder.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_builder.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_dfg.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_dfg.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_type.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_type.cpp.o.d"
  "CMakeFiles/test_ir.dir/ir/test_validate.cpp.o"
  "CMakeFiles/test_ir.dir/ir/test_validate.cpp.o.d"
  "test_ir"
  "test_ir.pdb"
  "test_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
