file(REMOVE_RECURSE
  "CMakeFiles/test_hls.dir/hls/test_compiler.cpp.o"
  "CMakeFiles/test_hls.dir/hls/test_compiler.cpp.o.d"
  "CMakeFiles/test_hls.dir/hls/test_schedule.cpp.o"
  "CMakeFiles/test_hls.dir/hls/test_schedule.cpp.o.d"
  "test_hls"
  "test_hls.pdb"
  "test_hls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
