file(REMOVE_RECURSE
  "CMakeFiles/test_pnr.dir/pnr/test_engine.cpp.o"
  "CMakeFiles/test_pnr.dir/pnr/test_engine.cpp.o.d"
  "CMakeFiles/test_pnr.dir/pnr/test_placer.cpp.o"
  "CMakeFiles/test_pnr.dir/pnr/test_placer.cpp.o.d"
  "CMakeFiles/test_pnr.dir/pnr/test_router.cpp.o"
  "CMakeFiles/test_pnr.dir/pnr/test_router.cpp.o.d"
  "test_pnr"
  "test_pnr.pdb"
  "test_pnr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
