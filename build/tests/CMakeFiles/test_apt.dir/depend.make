# Empty dependencies file for test_apt.
# This may be replaced when dependencies are built.
