file(REMOVE_RECURSE
  "CMakeFiles/test_apt.dir/apt/test_ap_fixed.cpp.o"
  "CMakeFiles/test_apt.dir/apt/test_ap_fixed.cpp.o.d"
  "CMakeFiles/test_apt.dir/apt/test_ap_int.cpp.o"
  "CMakeFiles/test_apt.dir/apt/test_ap_int.cpp.o.d"
  "test_apt"
  "test_apt.pdb"
  "test_apt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
