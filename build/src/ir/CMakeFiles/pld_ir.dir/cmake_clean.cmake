file(REMOVE_RECURSE
  "CMakeFiles/pld_ir.dir/builder.cpp.o"
  "CMakeFiles/pld_ir.dir/builder.cpp.o.d"
  "CMakeFiles/pld_ir.dir/expr.cpp.o"
  "CMakeFiles/pld_ir.dir/expr.cpp.o.d"
  "CMakeFiles/pld_ir.dir/graph.cpp.o"
  "CMakeFiles/pld_ir.dir/graph.cpp.o.d"
  "CMakeFiles/pld_ir.dir/operator_fn.cpp.o"
  "CMakeFiles/pld_ir.dir/operator_fn.cpp.o.d"
  "CMakeFiles/pld_ir.dir/printer.cpp.o"
  "CMakeFiles/pld_ir.dir/printer.cpp.o.d"
  "CMakeFiles/pld_ir.dir/stmt.cpp.o"
  "CMakeFiles/pld_ir.dir/stmt.cpp.o.d"
  "CMakeFiles/pld_ir.dir/type.cpp.o"
  "CMakeFiles/pld_ir.dir/type.cpp.o.d"
  "CMakeFiles/pld_ir.dir/validate.cpp.o"
  "CMakeFiles/pld_ir.dir/validate.cpp.o.d"
  "libpld_ir.a"
  "libpld_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
