file(REMOVE_RECURSE
  "libpld_ir.a"
)
