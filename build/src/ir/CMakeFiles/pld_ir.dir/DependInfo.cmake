
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/pld_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/pld_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/ir/CMakeFiles/pld_ir.dir/expr.cpp.o" "gcc" "src/ir/CMakeFiles/pld_ir.dir/expr.cpp.o.d"
  "/root/repo/src/ir/graph.cpp" "src/ir/CMakeFiles/pld_ir.dir/graph.cpp.o" "gcc" "src/ir/CMakeFiles/pld_ir.dir/graph.cpp.o.d"
  "/root/repo/src/ir/operator_fn.cpp" "src/ir/CMakeFiles/pld_ir.dir/operator_fn.cpp.o" "gcc" "src/ir/CMakeFiles/pld_ir.dir/operator_fn.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/pld_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/pld_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/ir/CMakeFiles/pld_ir.dir/stmt.cpp.o" "gcc" "src/ir/CMakeFiles/pld_ir.dir/stmt.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "src/ir/CMakeFiles/pld_ir.dir/type.cpp.o" "gcc" "src/ir/CMakeFiles/pld_ir.dir/type.cpp.o.d"
  "/root/repo/src/ir/validate.cpp" "src/ir/CMakeFiles/pld_ir.dir/validate.cpp.o" "gcc" "src/ir/CMakeFiles/pld_ir.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pld_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
