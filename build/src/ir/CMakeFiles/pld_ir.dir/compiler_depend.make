# Empty compiler generated dependencies file for pld_ir.
# This may be replaced when dependencies are built.
