file(REMOVE_RECURSE
  "CMakeFiles/pld_netlist.dir/netlist.cpp.o"
  "CMakeFiles/pld_netlist.dir/netlist.cpp.o.d"
  "libpld_netlist.a"
  "libpld_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
