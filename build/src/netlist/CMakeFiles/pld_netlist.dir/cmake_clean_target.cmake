file(REMOVE_RECURSE
  "libpld_netlist.a"
)
