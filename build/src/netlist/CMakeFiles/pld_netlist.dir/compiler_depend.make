# Empty compiler generated dependencies file for pld_netlist.
# This may be replaced when dependencies are built.
