# CMake generated Testfile for 
# Source directory: /root/repo/src/rv32
# Build directory: /root/repo/build/src/rv32
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
