file(REMOVE_RECURSE
  "libpld_rv32.a"
)
