
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rv32/asm.cpp" "src/rv32/CMakeFiles/pld_rv32.dir/asm.cpp.o" "gcc" "src/rv32/CMakeFiles/pld_rv32.dir/asm.cpp.o.d"
  "/root/repo/src/rv32/elf.cpp" "src/rv32/CMakeFiles/pld_rv32.dir/elf.cpp.o" "gcc" "src/rv32/CMakeFiles/pld_rv32.dir/elf.cpp.o.d"
  "/root/repo/src/rv32/iss.cpp" "src/rv32/CMakeFiles/pld_rv32.dir/iss.cpp.o" "gcc" "src/rv32/CMakeFiles/pld_rv32.dir/iss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pld_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
