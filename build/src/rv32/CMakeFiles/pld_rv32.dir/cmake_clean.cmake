file(REMOVE_RECURSE
  "CMakeFiles/pld_rv32.dir/asm.cpp.o"
  "CMakeFiles/pld_rv32.dir/asm.cpp.o.d"
  "CMakeFiles/pld_rv32.dir/elf.cpp.o"
  "CMakeFiles/pld_rv32.dir/elf.cpp.o.d"
  "CMakeFiles/pld_rv32.dir/iss.cpp.o"
  "CMakeFiles/pld_rv32.dir/iss.cpp.o.d"
  "libpld_rv32.a"
  "libpld_rv32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_rv32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
