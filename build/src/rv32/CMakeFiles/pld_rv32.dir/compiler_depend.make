# Empty compiler generated dependencies file for pld_rv32.
# This may be replaced when dependencies are built.
