# Empty dependencies file for pld_sys.
# This may be replaced when dependencies are built.
