file(REMOVE_RECURSE
  "CMakeFiles/pld_sys.dir/system.cpp.o"
  "CMakeFiles/pld_sys.dir/system.cpp.o.d"
  "libpld_sys.a"
  "libpld_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
