file(REMOVE_RECURSE
  "libpld_sys.a"
)
