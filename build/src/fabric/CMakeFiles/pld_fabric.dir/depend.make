# Empty dependencies file for pld_fabric.
# This may be replaced when dependencies are built.
