file(REMOVE_RECURSE
  "libpld_fabric.a"
)
