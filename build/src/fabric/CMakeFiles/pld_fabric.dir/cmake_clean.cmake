file(REMOVE_RECURSE
  "CMakeFiles/pld_fabric.dir/device.cpp.o"
  "CMakeFiles/pld_fabric.dir/device.cpp.o.d"
  "libpld_fabric.a"
  "libpld_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
