file(REMOVE_RECURSE
  "CMakeFiles/pld_interp.dir/exec.cpp.o"
  "CMakeFiles/pld_interp.dir/exec.cpp.o.d"
  "libpld_interp.a"
  "libpld_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
