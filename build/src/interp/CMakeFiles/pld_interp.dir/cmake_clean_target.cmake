file(REMOVE_RECURSE
  "libpld_interp.a"
)
