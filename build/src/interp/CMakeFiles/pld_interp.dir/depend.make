# Empty dependencies file for pld_interp.
# This may be replaced when dependencies are built.
