# Empty dependencies file for pld_common.
# This may be replaced when dependencies are built.
