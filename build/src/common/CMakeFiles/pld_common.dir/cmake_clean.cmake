file(REMOVE_RECURSE
  "CMakeFiles/pld_common.dir/logging.cpp.o"
  "CMakeFiles/pld_common.dir/logging.cpp.o.d"
  "CMakeFiles/pld_common.dir/rng.cpp.o"
  "CMakeFiles/pld_common.dir/rng.cpp.o.d"
  "CMakeFiles/pld_common.dir/table.cpp.o"
  "CMakeFiles/pld_common.dir/table.cpp.o.d"
  "CMakeFiles/pld_common.dir/thread_pool.cpp.o"
  "CMakeFiles/pld_common.dir/thread_pool.cpp.o.d"
  "libpld_common.a"
  "libpld_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
