file(REMOVE_RECURSE
  "libpld_common.a"
)
