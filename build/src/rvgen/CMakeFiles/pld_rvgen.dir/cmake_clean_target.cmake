file(REMOVE_RECURSE
  "libpld_rvgen.a"
)
