file(REMOVE_RECURSE
  "CMakeFiles/pld_rvgen.dir/codegen.cpp.o"
  "CMakeFiles/pld_rvgen.dir/codegen.cpp.o.d"
  "libpld_rvgen.a"
  "libpld_rvgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_rvgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
