# Empty dependencies file for pld_rvgen.
# This may be replaced when dependencies are built.
