# Empty compiler generated dependencies file for pld_hls.
# This may be replaced when dependencies are built.
