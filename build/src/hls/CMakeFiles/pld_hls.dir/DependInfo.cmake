
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/compiler.cpp" "src/hls/CMakeFiles/pld_hls.dir/compiler.cpp.o" "gcc" "src/hls/CMakeFiles/pld_hls.dir/compiler.cpp.o.d"
  "/root/repo/src/hls/resource_model.cpp" "src/hls/CMakeFiles/pld_hls.dir/resource_model.cpp.o" "gcc" "src/hls/CMakeFiles/pld_hls.dir/resource_model.cpp.o.d"
  "/root/repo/src/hls/schedule.cpp" "src/hls/CMakeFiles/pld_hls.dir/schedule.cpp.o" "gcc" "src/hls/CMakeFiles/pld_hls.dir/schedule.cpp.o.d"
  "/root/repo/src/hls/synthesis.cpp" "src/hls/CMakeFiles/pld_hls.dir/synthesis.cpp.o" "gcc" "src/hls/CMakeFiles/pld_hls.dir/synthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pld_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pld_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
