file(REMOVE_RECURSE
  "libpld_hls.a"
)
