file(REMOVE_RECURSE
  "CMakeFiles/pld_hls.dir/compiler.cpp.o"
  "CMakeFiles/pld_hls.dir/compiler.cpp.o.d"
  "CMakeFiles/pld_hls.dir/resource_model.cpp.o"
  "CMakeFiles/pld_hls.dir/resource_model.cpp.o.d"
  "CMakeFiles/pld_hls.dir/schedule.cpp.o"
  "CMakeFiles/pld_hls.dir/schedule.cpp.o.d"
  "CMakeFiles/pld_hls.dir/synthesis.cpp.o"
  "CMakeFiles/pld_hls.dir/synthesis.cpp.o.d"
  "libpld_hls.a"
  "libpld_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
