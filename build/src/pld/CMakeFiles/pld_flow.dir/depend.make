# Empty dependencies file for pld_flow.
# This may be replaced when dependencies are built.
