file(REMOVE_RECURSE
  "CMakeFiles/pld_flow.dir/compiler.cpp.o"
  "CMakeFiles/pld_flow.dir/compiler.cpp.o.d"
  "libpld_flow.a"
  "libpld_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
