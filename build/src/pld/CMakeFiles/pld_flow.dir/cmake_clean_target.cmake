file(REMOVE_RECURSE
  "libpld_flow.a"
)
