file(REMOVE_RECURSE
  "libpld_pnr.a"
)
