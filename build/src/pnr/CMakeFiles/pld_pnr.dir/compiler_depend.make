# Empty compiler generated dependencies file for pld_pnr.
# This may be replaced when dependencies are built.
