file(REMOVE_RECURSE
  "CMakeFiles/pld_pnr.dir/engine.cpp.o"
  "CMakeFiles/pld_pnr.dir/engine.cpp.o.d"
  "CMakeFiles/pld_pnr.dir/placer.cpp.o"
  "CMakeFiles/pld_pnr.dir/placer.cpp.o.d"
  "CMakeFiles/pld_pnr.dir/router.cpp.o"
  "CMakeFiles/pld_pnr.dir/router.cpp.o.d"
  "CMakeFiles/pld_pnr.dir/timing.cpp.o"
  "CMakeFiles/pld_pnr.dir/timing.cpp.o.d"
  "libpld_pnr.a"
  "libpld_pnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_pnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
