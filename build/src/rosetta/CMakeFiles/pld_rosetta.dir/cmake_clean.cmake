file(REMOVE_RECURSE
  "CMakeFiles/pld_rosetta.dir/bnn.cpp.o"
  "CMakeFiles/pld_rosetta.dir/bnn.cpp.o.d"
  "CMakeFiles/pld_rosetta.dir/digitrec.cpp.o"
  "CMakeFiles/pld_rosetta.dir/digitrec.cpp.o.d"
  "CMakeFiles/pld_rosetta.dir/face_detect.cpp.o"
  "CMakeFiles/pld_rosetta.dir/face_detect.cpp.o.d"
  "CMakeFiles/pld_rosetta.dir/optical_flow.cpp.o"
  "CMakeFiles/pld_rosetta.dir/optical_flow.cpp.o.d"
  "CMakeFiles/pld_rosetta.dir/rendering.cpp.o"
  "CMakeFiles/pld_rosetta.dir/rendering.cpp.o.d"
  "CMakeFiles/pld_rosetta.dir/spam.cpp.o"
  "CMakeFiles/pld_rosetta.dir/spam.cpp.o.d"
  "libpld_rosetta.a"
  "libpld_rosetta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_rosetta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
