
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rosetta/bnn.cpp" "src/rosetta/CMakeFiles/pld_rosetta.dir/bnn.cpp.o" "gcc" "src/rosetta/CMakeFiles/pld_rosetta.dir/bnn.cpp.o.d"
  "/root/repo/src/rosetta/digitrec.cpp" "src/rosetta/CMakeFiles/pld_rosetta.dir/digitrec.cpp.o" "gcc" "src/rosetta/CMakeFiles/pld_rosetta.dir/digitrec.cpp.o.d"
  "/root/repo/src/rosetta/face_detect.cpp" "src/rosetta/CMakeFiles/pld_rosetta.dir/face_detect.cpp.o" "gcc" "src/rosetta/CMakeFiles/pld_rosetta.dir/face_detect.cpp.o.d"
  "/root/repo/src/rosetta/optical_flow.cpp" "src/rosetta/CMakeFiles/pld_rosetta.dir/optical_flow.cpp.o" "gcc" "src/rosetta/CMakeFiles/pld_rosetta.dir/optical_flow.cpp.o.d"
  "/root/repo/src/rosetta/rendering.cpp" "src/rosetta/CMakeFiles/pld_rosetta.dir/rendering.cpp.o" "gcc" "src/rosetta/CMakeFiles/pld_rosetta.dir/rendering.cpp.o.d"
  "/root/repo/src/rosetta/spam.cpp" "src/rosetta/CMakeFiles/pld_rosetta.dir/spam.cpp.o" "gcc" "src/rosetta/CMakeFiles/pld_rosetta.dir/spam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pld_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
