# Empty compiler generated dependencies file for pld_rosetta.
# This may be replaced when dependencies are built.
