file(REMOVE_RECURSE
  "libpld_rosetta.a"
)
