# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("apt")
subdirs("ir")
subdirs("dataflow")
subdirs("interp")
subdirs("netlist")
subdirs("fabric")
subdirs("hls")
subdirs("pnr")
subdirs("noc")
subdirs("rv32")
subdirs("rvgen")
subdirs("sys")
subdirs("pld")
subdirs("rosetta")
