file(REMOVE_RECURSE
  "libpld_dataflow.a"
)
