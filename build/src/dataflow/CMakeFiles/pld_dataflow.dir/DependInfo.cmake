
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/runtime.cpp" "src/dataflow/CMakeFiles/pld_dataflow.dir/runtime.cpp.o" "gcc" "src/dataflow/CMakeFiles/pld_dataflow.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pld_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pld_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/pld_interp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
