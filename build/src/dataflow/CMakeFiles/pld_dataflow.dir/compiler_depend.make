# Empty compiler generated dependencies file for pld_dataflow.
# This may be replaced when dependencies are built.
