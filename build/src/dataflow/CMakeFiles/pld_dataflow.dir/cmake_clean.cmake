file(REMOVE_RECURSE
  "CMakeFiles/pld_dataflow.dir/runtime.cpp.o"
  "CMakeFiles/pld_dataflow.dir/runtime.cpp.o.d"
  "libpld_dataflow.a"
  "libpld_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
