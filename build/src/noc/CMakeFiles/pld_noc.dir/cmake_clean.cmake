file(REMOVE_RECURSE
  "CMakeFiles/pld_noc.dir/bft.cpp.o"
  "CMakeFiles/pld_noc.dir/bft.cpp.o.d"
  "libpld_noc.a"
  "libpld_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
