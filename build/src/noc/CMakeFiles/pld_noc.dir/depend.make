# Empty dependencies file for pld_noc.
# This may be replaced when dependencies are built.
