file(REMOVE_RECURSE
  "libpld_noc.a"
)
