/**
 * @file
 * Linear-scan register allocation for the -Os MIR.
 *
 * Virtual registers are assigned to the callee-saved s0..s11 pool —
 * the firmware routines clobber only t0-t6 and a0-a5, so values stay
 * live across calls with no save/restore code. Intervals are
 * conservative
 * [first, last] ranges extended across loop back-edges by an
 * iterative block-liveness pass. Vregs that don't get a register
 * spill to an sp-relative frame; gp and tp (plain registers to the
 * ISS, untouched by both tiers' generated code) serve as the two
 * spill scratch registers during the rewrite.
 *
 * allocateIntervals() is the pure allocation core, exposed so the
 * property tests can drive it with random interval sets and check
 * the result against a brute-force conflict checker.
 */

#ifndef PLD_RVGEN_REGALLOC_H
#define PLD_RVGEN_REGALLOC_H

#include <vector>

#include "rvgen/mir.h"

namespace pld {
namespace rvgen {

struct LiveInterval
{
    int vreg;
    int start; ///< first instruction index where the vreg is live
    int end;   ///< last instruction index (inclusive)
};

/** Conservative live intervals for every vreg in @p f, sorted by
    (start, vreg). */
std::vector<LiveInterval> computeLiveIntervals(const MFunction &f);

/**
 * Pure linear scan: assign each interval a register in
 * [0, numRegs) or -1 (spill). Overlapping intervals never share a
 * register; the furthest-ending interval is evicted on pressure.
 * Result is indexed like @p intervals (which must be sorted by
 * start; computeLiveIntervals output qualifies).
 */
std::vector<int> allocateIntervals(
    const std::vector<LiveInterval> &intervals, int numRegs);

struct RegAllocOptions
{
    /** Registers drawn from the s0..s11 pool. Tests shrink this to
        force spilling; 0 runs everything out of the frame. */
    int regBudget = 12;
};

struct RegAllocStats
{
    int vregs = 0;
    int spilledVregs = 0;
    int spillLoads = 0;
    int spillStores = 0;
    int frameBytes = 0;
};

/** Rewrite @p f in place to physical registers + spill code. */
RegAllocStats allocateRegisters(MFunction &f,
                                const RegAllocOptions &opts = {});

} // namespace rvgen
} // namespace pld

#endif // PLD_RVGEN_REGALLOC_H
