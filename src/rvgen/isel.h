/**
 * @file
 * -Os instruction selection: ir::OperatorFn -> virtual-register MIR.
 *
 * The lowering mirrors the -O0 tier's arithmetic exactly — same pair
 * (64-bit) and quad (128-bit) alignment windows, same wrap points,
 * same firmware ABI — so the semantics contract (interpreter-exact
 * canonical values) is inherited rather than re-derived. What changes
 * is the value plumbing: canonical values live in (lo, hi) virtual
 * register pairs instead of the a0:a1 stack machine, scalar variables
 * are promoted to virtual registers, and two optimizations run during
 * selection:
 *
 *  - interpreter-exact constant folding (the folder re-implements
 *    interp's __int128 evaluation, so a folded subtree is bit-equal
 *    to what any backend would have produced);
 *  - strength reduction: multiply by a power-of-two constant becomes
 *    a constant pair shift, and multiplies whose operands are <= 32
 *    bits wide inline as mul/mulh[s]u pairs instead of calling the
 *    128-bit __pld_mulshift firmware.
 *
 * Subtrees are never skipped even when their value is statically
 * known-irrelevant: a nested StreamRead must still execute so MMIO
 * ordering matches the interpreter. Folding only replaces subtrees
 * that are entirely constant (no reads, no var/array references).
 */

#ifndef PLD_RVGEN_ISEL_H
#define PLD_RVGEN_ISEL_H

#include <cstdint>
#include <vector>

#include "ir/operator_fn.h"
#include "rvgen/mir.h"

namespace pld {
namespace rvgen {

struct IselResult
{
    MFunction mir;
    /** Data segment layout (arrays only; vars live in registers). */
    uint32_t dataBase = 0;
    std::vector<uint8_t> dataImage;
    // Optimization counters for obs metrics.
    int constantsFolded = 0;
    int strengthReduced = 0;
    int inlinedMuls = 0;
};

/** Lower @p fn to MIR. Throws std::runtime_error on -Os-specific
    capacity limits (the caller falls back to -O0). */
IselResult selectInstructions(const ir::OperatorFn &fn);

/**
 * Peephole pass: per-block local value numbering (CSE of pure ops),
 * copy propagation, redundant sign-extension elimination, and a
 * global dead-code sweep. Volatile (MMIO) instructions are never
 * touched. Returns the number of instructions removed.
 */
int peephole(MFunction &f);

} // namespace rvgen
} // namespace pld

#endif // PLD_RVGEN_ISEL_H
