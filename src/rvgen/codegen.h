/**
 * @file
 * Non-optimizing IR -> RV32IM code generator (the -O0 compiler).
 *
 * The same operator IR that the HLS flow compiles to a netlist is
 * compiled here to real machine code for the page softcore (paper
 * Sec 6.1: riscv-gcc caller + firmware.lib). Code generation is a
 * straightforward stack machine — deliberately unoptimized, because
 * -O0's contract is "compiles in seconds, runs slowly, bit-exact".
 *
 * Semantics contract: every expression value is carried as a 64-bit
 * canonical (sign-extended, scaled) pair, operations reproduce the
 * interpreter's exact quantization, and stream accesses are MMIO
 * loads/stores that the ISS blocks on — so ISS output is bit-identical
 * to the interpreter (enforced by the cross-check tests).
 *
 * A small firmware library is appended to every binary:
 *  - __pld_mulshift: signed 64x64->128 multiply, arithmetic shift
 *  - __pld_sdiv64:   signed 64/32 division (truncating, /0 -> 0)
 *  - __pld_mod64:    signed 64%64 remainder (sign of dividend, %0 -> 0)
 *  - __pld_puthex:   console hex printer for Print statements
 */

#ifndef PLD_RVGEN_CODEGEN_H
#define PLD_RVGEN_CODEGEN_H

#include "ir/operator_fn.h"
#include "rv32/elf.h"

namespace pld {
namespace rvgen {

/** Compilation result with simple stats. */
struct RvResult
{
    rv32::PldElf elf;
    int instructions = 0;
    double seconds = 0; ///< measured -O0 compile time
};

/**
 * Compile one operator to a softcore image. fatal()s if the image
 * exceeds the 192 KB page memory (Sec 5.1).
 */
RvResult compileToRiscv(const ir::OperatorFn &fn);

} // namespace rvgen
} // namespace pld

#endif // PLD_RVGEN_CODEGEN_H
