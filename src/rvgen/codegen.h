/**
 * @file
 * IR -> RV32IM softcore compilation entry points, in two tiers.
 *
 * -O0 (this file's stack-machine Codegen, the paper-faithful
 * baseline): the same operator IR that the HLS flow compiles to a
 * netlist is compiled to real machine code for the page softcore
 * (paper Sec 6.1: riscv-gcc caller + firmware.lib) — deliberately
 * unoptimized, because -O0's contract is "compiles in seconds, runs
 * slowly, bit-exact".
 *
 * -Os (mir.h / isel.h / regalloc.h): the optimizing tier —
 * instruction selection with constant folding and strength reduction
 * over a virtual-register MIR, a peephole pass, and linear-scan
 * register allocation — emitted through the same rv32::Assembler. It
 * exists because the softcore is the retry-ladder fallback and the
 * quarantine target, so degraded pages run on whatever this tier
 * produces.
 *
 * Both tiers share one semantics contract: every expression value is
 * carried as a 64-bit canonical (sign-extended, scaled) pair,
 * operations reproduce the interpreter's exact quantization, and
 * stream accesses are MMIO loads/stores that the ISS blocks on — so
 * ISS output is bit-identical to the interpreter for either tier
 * (enforced by the cross-check tests and the 4-leg pldfuzz
 * differential harness).
 *
 * A small firmware library (firmware.h) is appended to every binary:
 *  - __pld_mulshift: signed 64x64->128 multiply, arithmetic shift
 *  - __pld_sdiv64:   signed 64/32 division (truncating, /0 -> 0)
 *  - __pld_mod64:    signed 64%64 remainder (sign of dividend, %0 -> 0)
 *  - __pld_puthex:   console hex printer for Print statements
 */

#ifndef PLD_RVGEN_CODEGEN_H
#define PLD_RVGEN_CODEGEN_H

#include "ir/operator_fn.h"
#include "rv32/elf.h"

namespace pld {
namespace rvgen {

/** Softcore codegen tier. */
enum class Tier : uint8_t {
    O0, ///< stack machine, paper-faithful baseline
    Os, ///< MIR + peephole + linear-scan optimizing tier
};

const char *tierName(Tier t);

struct RvOptions
{
    Tier tier = Tier::O0;
    /** -Os allocatable s-register budget (tests shrink it to force
        spilling); clamped to [0, 12]. */
    int regBudget = 12;
};

/** Compilation result with simple stats. */
struct RvResult
{
    rv32::PldElf elf;
    int instructions = 0;
    double seconds = 0; ///< measured compile time
    Tier tier = Tier::O0;
    // -Os-only stats (0 under -O0):
    int mirInstructions = 0; ///< MIR size after optimization
    int constantsFolded = 0;
    int peepholeRemoved = 0;
    int spills = 0; ///< virtual registers sent to the spill frame
};

/**
 * Compile one operator to a softcore image at -O0. fatal()s if the
 * image exceeds the 192 KB page memory (Sec 5.1).
 */
RvResult compileToRiscv(const ir::OperatorFn &fn);

/**
 * Tier-selecting overload. The -Os path throws std::runtime_error on
 * its capacity limits (oversized text/image) instead of aborting, so
 * callers can fall back to the -O0 rung.
 */
RvResult compileToRiscv(const ir::OperatorFn &fn,
                        const RvOptions &opt);

} // namespace rvgen
} // namespace pld

#endif // PLD_RVGEN_CODEGEN_H
