#include "rvgen/isel.h"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "common/logging.h"
#include "rv32/iss.h"
#include "rvgen/firmware.h"

namespace pld {
namespace rvgen {

using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;
using ir::Type;

namespace {

using Wide = __int128;

uint64_t
maskBits(int w)
{
    return w >= 64 ? ~0ull : ((1ull << w) - 1);
}

Wide
shiftWide(Wide v, int sh)
{
    if (sh >= 0)
        return v << sh;
    return v >> (-sh);
}

int64_t
quantizeConst(int64_t v, int src_frac, const Type &t)
{
    Wide w = shiftWide(static_cast<Wide>(v), t.fracBits() - src_frac);
    return canonicalRaw(static_cast<uint64_t>(w), t);
}

// Physical registers isel is allowed to name: x0 and the firmware
// ABI. Everything else is virtual until regalloc.
constexpr int Z = 0;            // x0
constexpr int PhysA0 = 10;
constexpr int PhysA1 = 11;
constexpr int PhysA2 = 12;
constexpr int PhysA3 = 13;
constexpr int PhysA4 = 14;

/** A canonical 64-bit value as a (lo, hi) register pair. */
struct Val
{
    int lo = Z;
    int hi = Z;
};

using Quad = std::array<int, 4>;

class Isel
{
  public:
    explicit Isel(const ir::OperatorFn &fn) : fn(fn) {}

    IselResult
    run()
    {
        layoutData();
        // Scalar variables are promoted to virtual registers holding
        // the low word of their canonical value (exactly the word
        // -O0 keeps in the 4-byte slot). The data segment is
        // zero-filled on every target, so they start at 0.
        varReg.resize(fn.vars.size());
        for (size_t i = 0; i < fn.vars.size(); ++i) {
            varReg[i] = f().newVreg();
            emitLi(varReg[i], 0);
        }
        stmts(fn.body);
        // Operator complete: halt the core.
        emitStore(MOp::Sw, Z,
                  liConst(static_cast<int32_t>(rv32::Mmio::kHalt)), 0,
                  /*vol=*/true);
        res.mir.code.push_back({MOp::Ebreak});
        return std::move(res);
    }

  private:
    MFunction &
    f()
    {
        return res.mir;
    }

    // --- data layout (arrays only) -----------------------------------

    static constexpr uint32_t kTextReserve = 48 * 1024;

    void
    layoutData()
    {
        res.dataBase = kTextReserve;
        uint32_t off = 0;
        arrOff.resize(fn.arrays.size());
        for (size_t i = 0; i < fn.arrays.size(); ++i) {
            const auto &arr = fn.arrays[i];
            int eb = elemBytes(arr.elemType);
            off = (off + eb - 1) & ~uint32_t(eb - 1);
            arrOff[i] = res.dataBase + off;
            off += static_cast<uint32_t>(arr.size) * eb;
        }
        res.dataImage.assign(off, 0);
        // ROM init: canonical bit patterns, same as -O0/interp.
        for (size_t i = 0; i < fn.arrays.size(); ++i) {
            const auto &arr = fn.arrays[i];
            int eb = elemBytes(arr.elemType);
            uint32_t base = arrOff[i] - res.dataBase;
            for (size_t e = 0; e < arr.init.size(); ++e) {
                uint64_t raw = static_cast<uint64_t>(canonicalRaw(
                    static_cast<uint64_t>(arr.init[e]),
                    arr.elemType));
                for (int b = 0; b < eb; ++b)
                    res.dataImage[base + e * eb + b] =
                        static_cast<uint8_t>(raw >> (8 * b));
            }
        }
    }

    // --- MIR emission helpers ----------------------------------------

    void
    emitLi(int rd, int32_t imm)
    {
        MInst m{MOp::Li};
        m.rd = rd;
        m.imm = imm;
        f().code.push_back(m);
    }

    int
    liConst(int32_t v)
    {
        if (v == 0)
            return Z;
        int rd = f().newVreg();
        emitLi(rd, v);
        return rd;
    }

    /** rrr ALU op with algebraic identities on x0 operands. */
    int
    rrr(MOp op, int rs1, int rs2)
    {
        switch (op) {
        case MOp::Add:
        case MOp::Or:
        case MOp::Xor:
            if (rs1 == Z)
                return rs2;
            if (rs2 == Z)
                return rs1;
            break;
        case MOp::Sub:
            if (rs2 == Z)
                return rs1;
            break;
        case MOp::And:
        case MOp::Mul:
        case MOp::Mulh:
        case MOp::Mulhsu:
        case MOp::Mulhu:
            if (rs1 == Z || rs2 == Z)
                return Z;
            break;
        case MOp::Sll:
        case MOp::Srl:
        case MOp::Sra:
            if (rs1 == Z)
                return Z;
            break;
        case MOp::Sltu:
            if (rs2 == Z)
                return Z; // nothing is unsigned-below zero
            break;
        default:
            break;
        }
        MInst m{op};
        m.rd = f().newVreg();
        m.rs1 = rs1;
        m.rs2 = rs2;
        f().code.push_back(m);
        return m.rd;
    }

    /** rri ALU op with identity/zero shortcuts. */
    int
    rri(MOp op, int rs1, int32_t imm)
    {
        switch (op) {
        case MOp::Slli:
        case MOp::Srli:
        case MOp::Srai:
            if (imm == 0)
                return rs1;
            if (rs1 == Z)
                return Z;
            break;
        case MOp::Addi:
        case MOp::Xori:
        case MOp::Ori:
            if (imm == 0)
                return rs1;
            if (rs1 == Z)
                return liConst(op == MOp::Addi ? imm
                               : op == MOp::Xori ? imm
                                                 : imm);
            break;
        case MOp::Andi:
            if (imm == 0 || rs1 == Z)
                return Z;
            break;
        default:
            break;
        }
        MInst m{op};
        m.rd = f().newVreg();
        m.rs1 = rs1;
        m.imm = imm;
        f().code.push_back(m);
        return m.rd;
    }

    int
    emitLoad(MOp op, int base, int32_t off, bool vol = false)
    {
        MInst m{op};
        m.rd = f().newVreg();
        m.rs1 = base;
        m.imm = off;
        m.vol = vol;
        f().code.push_back(m);
        return m.rd;
    }

    void
    emitStore(MOp op, int val, int base, int32_t off,
              bool vol = false)
    {
        MInst m{op};
        m.rs2 = val;
        m.rs1 = base;
        m.imm = off;
        m.vol = vol;
        f().code.push_back(m);
    }

    void
    emitCopy(int rd, int rs)
    {
        MInst m{MOp::Copy};
        m.rd = rd;
        m.rs1 = rs;
        f().code.push_back(m);
    }

    void
    emitLabel(const std::string &l)
    {
        MInst m{MOp::Label};
        m.label = l;
        f().code.push_back(m);
    }

    void
    emitJump(const std::string &l)
    {
        MInst m{MOp::J};
        m.label = l;
        f().code.push_back(m);
    }

    void
    emitBranch(MOp op, int rs1, int rs2, const std::string &l)
    {
        MInst m{op};
        m.rs1 = rs1;
        m.rs2 = rs2;
        m.label = l;
        f().code.push_back(m);
    }

    Val
    materialize(int64_t v)
    {
        return {liConst(static_cast<int32_t>(v & 0xFFFFFFFF)),
                liConst(static_cast<int32_t>(v >> 32))};
    }

    /**
     * Call a firmware routine: operands through the fixed a0..a3
     * ABI (plus the shift amount in a4 for mulshift), 64-bit result
     * back out of a0:a1 into fresh vregs. The allocator keeps live
     * values in s-registers, which the firmware never clobbers.
     */
    Val
    callFw(const char *name, Val x, Val y, int shImm = -1)
    {
        emitCopy(PhysA0, x.lo);
        emitCopy(PhysA1, x.hi);
        emitCopy(PhysA2, y.lo);
        emitCopy(PhysA3, y.hi);
        if (shImm >= 0)
            emitLi(PhysA4, shImm);
        MInst c{MOp::Call};
        c.label = name;
        f().code.push_back(c);
        int lo = f().newVreg(), hi = f().newVreg();
        emitCopy(lo, PhysA0);
        emitCopy(hi, PhysA1);
        return {lo, hi};
    }

    // --- pair/quad arithmetic (functional mirrors of -O0) ------------

    /** Arithmetic shift of a pair by constant sh (positive = left). */
    Val
    shiftPairV(Val v, int sh)
    {
        if (sh == 0)
            return v;
        if (sh >= 64)
            return {Z, Z};
        if (sh <= -64) {
            int s = rri(MOp::Srai, v.hi, 31);
            return {s, s};
        }
        if (sh > 0) {
            if (sh >= 32) {
                int hi = sh == 32 ? v.lo
                                  : rri(MOp::Slli, v.lo, sh - 32);
                return {Z, hi};
            }
            int carry = rri(MOp::Srli, v.lo, 32 - sh);
            int hi = rrr(MOp::Or, rri(MOp::Slli, v.hi, sh), carry);
            int lo = rri(MOp::Slli, v.lo, sh);
            return {lo, hi};
        }
        int s = -sh;
        if (s >= 32) {
            int lo = s == 32 ? v.hi : rri(MOp::Srai, v.hi, s - 32);
            int hi = rri(MOp::Srai, v.hi, 31);
            return {lo, hi};
        }
        int lo = rrr(MOp::Or, rri(MOp::Srli, v.lo, s),
                     rri(MOp::Slli, v.hi, 32 - s));
        int hi = rri(MOp::Srai, v.hi, s);
        return {lo, hi};
    }

    /** Logical right shift of a pair by constant s >= 0. Used for
        the zero-extended u32*u32 inline multiply product. */
    Val
    shiftPairLogicalV(Val v, int s)
    {
        if (s == 0)
            return v;
        if (s >= 64)
            return {Z, Z};
        if (s >= 32) {
            int lo = s == 32 ? v.hi : rri(MOp::Srli, v.hi, s - 32);
            return {lo, Z};
        }
        int lo = rrr(MOp::Or, rri(MOp::Srli, v.lo, s),
                     rri(MOp::Slli, v.hi, 32 - s));
        int hi = rri(MOp::Srli, v.hi, s);
        return {lo, hi};
    }

    /** Wrap a pair to t's width with t's signedness. */
    Val
    wrapToV(Val v, const Type &t)
    {
        int w = t.width;
        if (w <= 32) {
            int lo = v.lo;
            if (w < 32) {
                int sh = rri(MOp::Slli, lo, 32 - w);
                lo = rri(t.isSigned() ? MOp::Srai : MOp::Srli, sh,
                         32 - w);
            }
            int hi = t.isSigned() ? rri(MOp::Srai, lo, 31) : Z;
            return {lo, hi};
        }
        if (w < 64) {
            int sh = rri(MOp::Slli, v.hi, 64 - w);
            int hi = rri(t.isSigned() ? MOp::Srai : MOp::Srli, sh,
                         64 - w);
            return {v.lo, hi};
        }
        return v;
    }

    Val
    quantizeV(Val v, int src_frac, const Type &t)
    {
        return wrapToV(shiftPairV(v, t.fracBits() - src_frac), t);
    }

    Val
    addPairV(Val x, Val y, bool subtract)
    {
        if (subtract) {
            int borrow = rrr(MOp::Sltu, x.lo, y.lo);
            int lo = rrr(MOp::Sub, x.lo, y.lo);
            int hi = rrr(MOp::Sub, rrr(MOp::Sub, x.hi, y.hi), borrow);
            return {lo, hi};
        }
        int lo = rrr(MOp::Add, x.lo, y.lo);
        int carry = rrr(MOp::Sltu, lo, y.lo);
        int hi = rrr(MOp::Add, rrr(MOp::Add, x.hi, y.hi), carry);
        return {lo, hi};
    }

    static bool
    alignOverflows(const Type &t, int sh)
    {
        int w = t.width;
        if (!t.isSigned() && w < 64)
            ++w;
        return sh > 0 && w + sh > 64;
    }

    Quad
    widenV(Val v)
    {
        int s = rri(MOp::Srai, v.hi, 31);
        return {v.lo, v.hi, s, s};
    }

    /** Arithmetic shift of a 128-bit quad by constant sh. */
    Quad
    shiftQuadV(Quad w, int sh)
    {
        if (sh == 0)
            return w;
        Quad out;
        if (sh > 0) {
            int words = sh / 32, bits = sh % 32;
            auto src = [&](int j) { return j >= 0 ? w[j] : Z; };
            for (int i = 0; i < 4; ++i) {
                int b = src(i - words);
                if (bits == 0)
                    out[i] = b;
                else
                    out[i] = rrr(MOp::Or, rri(MOp::Slli, b, bits),
                                 rri(MOp::Srli, src(i - words - 1),
                                     32 - bits));
            }
        } else {
            int s = -sh, words = s / 32, bits = s % 32;
            int sign = rri(MOp::Srai, w[3], 31);
            auto src = [&](int j) { return j <= 3 ? w[j] : sign; };
            for (int i = 0; i < 3; ++i) {
                int b = src(i + words);
                if (bits == 0)
                    out[i] = b;
                else
                    out[i] = rrr(MOp::Or, rri(MOp::Srli, b, bits),
                                 rri(MOp::Slli, src(i + words + 1),
                                     32 - bits));
            }
            int top = src(3 + words);
            out[3] = bits == 0 ? top : rri(MOp::Srai, top, bits);
        }
        return out;
    }

    Quad
    addQuadV(Quad x, Quad y, bool subtract)
    {
        Quad out;
        int c;
        if (subtract) {
            c = rrr(MOp::Sltu, x[0], y[0]);
            out[0] = rrr(MOp::Sub, x[0], y[0]);
            for (int i = 1; i < 4; ++i) {
                int c1 = rrr(MOp::Sltu, x[i], y[i]);
                int t2 = rrr(MOp::Sub, x[i], y[i]);
                int c2 = rrr(MOp::Sltu, t2, c);
                out[i] = rrr(MOp::Sub, t2, c);
                c = rrr(MOp::Or, c1, c2);
            }
        } else {
            out[0] = rrr(MOp::Add, x[0], y[0]);
            c = rrr(MOp::Sltu, out[0], y[0]);
            for (int i = 1; i < 4; ++i) {
                int t2 = rrr(MOp::Add, x[i], y[i]);
                int c1 = rrr(MOp::Sltu, t2, y[i]);
                int t3 = rrr(MOp::Add, t2, c);
                int c2 = rrr(MOp::Sltu, t3, c);
                out[i] = t3;
                c = rrr(MOp::Or, c1, c2);
            }
        }
        return out;
    }

    /** eq01 = (a == b) as 0/1. */
    int
    eqBit(int a, int b)
    {
        return rri(MOp::Sltiu, rrr(MOp::Xor, a, b), 1);
    }

    /** Branchless signed 64-bit compare -> {0,1} value pair. */
    Val
    compareV(Val a, Val b, ExprKind k)
    {
        bool swap = (k == ExprKind::Gt || k == ExprKind::Le);
        bool invert = (k == ExprKind::Le || k == ExprKind::Ge ||
                       k == ExprKind::Ne);
        if (swap)
            std::swap(a, b);
        int r;
        if (k == ExprKind::Eq || k == ExprKind::Ne) {
            int d = rrr(MOp::Or, rrr(MOp::Xor, a.lo, b.lo),
                        rrr(MOp::Xor, a.hi, b.hi));
            r = rri(MOp::Sltiu, d, 1);
        } else {
            int lt = rrr(MOp::Slt, a.hi, b.hi);
            int eq = eqBit(a.hi, b.hi);
            int ltu = rrr(MOp::Sltu, a.lo, b.lo);
            r = rrr(MOp::Or, lt, rrr(MOp::And, eq, ltu));
        }
        if (invert)
            r = rri(MOp::Xori, r, 1);
        return {r, Z};
    }

    /** Branchless signed 128-bit compare -> {0,1} value pair. */
    Val
    compareWideV(Quad x, Quad y, ExprKind k)
    {
        bool swap = (k == ExprKind::Gt || k == ExprKind::Le);
        bool invert = (k == ExprKind::Le || k == ExprKind::Ge ||
                       k == ExprKind::Ne);
        if (swap)
            std::swap(x, y);
        int r;
        if (k == ExprKind::Eq || k == ExprKind::Ne) {
            int d = rrr(MOp::Xor, x[0], y[0]);
            for (int i = 1; i < 4; ++i)
                d = rrr(MOp::Or, d, rrr(MOp::Xor, x[i], y[i]));
            r = rri(MOp::Sltiu, d, 1);
        } else {
            // Unsigned cascade below a signed top-word compare.
            r = rrr(MOp::Sltu, x[0], y[0]);
            for (int i = 1; i < 3; ++i)
                r = rrr(MOp::Or, rrr(MOp::Sltu, x[i], y[i]),
                        rrr(MOp::And, eqBit(x[i], y[i]), r));
            r = rrr(MOp::Or, rrr(MOp::Slt, x[3], y[3]),
                    rrr(MOp::And, eqBit(x[3], y[3]), r));
        }
        if (invert)
            r = rri(MOp::Xori, r, 1);
        return {r, Z};
    }

    // --- interpreter-exact constant folding --------------------------

    /**
     * Evaluate a subtree exactly as interp::OperatorExec::evalExpr
     * would, iff it is entirely constant (no reads, no variable or
     * array references). Each case below transcribes the interpreter
     * case for that kind; keep them in lockstep.
     */
    std::optional<int64_t>
    fold(const ExprPtr &e)
    {
        const Type &t = e->type;
        switch (e->kind) {
        case ExprKind::Const:
            return e->imm;
        case ExprKind::VarRef:
        case ExprKind::ArrayRef:
        case ExprKind::StreamRead:
            return std::nullopt;
        case ExprKind::Cast: {
            auto a = fold(e->args[0]);
            if (!a)
                return std::nullopt;
            return quantizeConst(*a, e->args[0]->type.fracBits(), t);
        }
        case ExprKind::BitCast: {
            auto a = fold(e->args[0]);
            if (!a)
                return std::nullopt;
            uint64_t raw = static_cast<uint64_t>(*a) &
                           maskBits(e->args[0]->type.width);
            return canonicalRaw(raw, t);
        }
        case ExprKind::Neg: {
            auto a = fold(e->args[0]);
            if (!a)
                return std::nullopt;
            return quantizeConst(-*a, e->args[0]->type.fracBits(),
                                 t);
        }
        case ExprKind::Not: {
            auto a = fold(e->args[0]);
            if (!a)
                return std::nullopt;
            return quantizeConst(~*a, e->args[0]->type.fracBits(),
                                 t);
        }
        case ExprKind::LNot: {
            auto a = fold(e->args[0]);
            if (!a)
                return std::nullopt;
            return *a == 0 ? 1 : 0;
        }
        case ExprKind::Select: {
            auto c = fold(e->args[0]);
            if (!c)
                return std::nullopt;
            return fold(*c != 0 ? e->args[1] : e->args[2]);
        }
        default:
            break;
        }
        if (!ir::isBinary(e->kind))
            return std::nullopt;
        const ExprPtr &lhs = e->args[0];
        const ExprPtr &rhs = e->args[1];
        auto a = fold(lhs);
        auto b = fold(rhs);
        if (!a || !b)
            return std::nullopt;
        int fa = lhs->type.fracBits();
        int fb = rhs->type.fracBits();
        switch (e->kind) {
        case ExprKind::Shl:
        case ExprKind::Shr: {
            int sh = static_cast<int>(*b);
            Wide v = e->kind == ExprKind::Shl
                         ? (static_cast<Wide>(*a) << sh)
                         : shiftWide(static_cast<Wide>(*a), -sh);
            Wide q = shiftWide(v, t.fracBits() - fa);
            return canonicalRaw(static_cast<uint64_t>(q), t);
        }
        case ExprKind::Add:
        case ExprKind::Sub: {
            int fc = std::max(fa, fb);
            Wide A = shiftWide(*a, fc - fa);
            Wide B = shiftWide(*b, fc - fb);
            Wide r = e->kind == ExprKind::Add ? A + B : A - B;
            Wide q = shiftWide(r, t.fracBits() - fc);
            return canonicalRaw(static_cast<uint64_t>(q), t);
        }
        case ExprKind::Mul: {
            Wide r = static_cast<Wide>(*a) * static_cast<Wide>(*b);
            Wide q = shiftWide(r, t.fracBits() - (fa + fb));
            return canonicalRaw(static_cast<uint64_t>(q), t);
        }
        case ExprKind::Div: {
            if (*b == 0)
                return 0;
            Wide num = shiftWide(*a, t.fracBits() - fa + fb);
            Wide q = num / static_cast<Wide>(*b);
            return canonicalRaw(static_cast<uint64_t>(q), t);
        }
        case ExprKind::Mod: {
            if (*b == 0)
                return 0;
            Wide q = static_cast<Wide>(*a) % static_cast<Wide>(*b);
            return canonicalRaw(static_cast<uint64_t>(q), t);
        }
        case ExprKind::And:
        case ExprKind::Or:
        case ExprKind::Xor: {
            int fc = std::max(fa, fb);
            uint64_t A = static_cast<uint64_t>(shiftWide(*a, fc - fa));
            uint64_t B = static_cast<uint64_t>(shiftWide(*b, fc - fb));
            uint64_t r = e->kind == ExprKind::And  ? (A & B)
                         : e->kind == ExprKind::Or ? (A | B)
                                                   : (A ^ B);
            return quantizeConst(static_cast<int64_t>(r), fc, t);
        }
        case ExprKind::Lt:
        case ExprKind::Le:
        case ExprKind::Gt:
        case ExprKind::Ge:
        case ExprKind::Eq:
        case ExprKind::Ne: {
            int fc = std::max(fa, fb);
            Wide A = shiftWide(*a, fc - fa);
            Wide B = shiftWide(*b, fc - fb);
            bool r = false;
            switch (e->kind) {
            case ExprKind::Lt: r = A < B; break;
            case ExprKind::Le: r = A <= B; break;
            case ExprKind::Gt: r = A > B; break;
            case ExprKind::Ge: r = A >= B; break;
            case ExprKind::Eq: r = A == B; break;
            case ExprKind::Ne: r = A != B; break;
            default: break;
            }
            return r ? 1 : 0;
        }
        case ExprKind::LAnd:
            return (*a != 0 && *b != 0) ? 1 : 0;
        case ExprKind::LOr:
            return (*a != 0 || *b != 0) ? 1 : 0;
        default:
            return std::nullopt;
        }
    }

    // --- expression lowering -----------------------------------------

    Val
    eval(const ExprPtr &e)
    {
        const Type &t = e->type;
        if (e->kind == ExprKind::Const)
            return materialize(e->imm);
        if (auto c = fold(e)) {
            ++res.constantsFolded;
            return materialize(*c);
        }
        switch (e->kind) {
        case ExprKind::VarRef: {
            const Type &vt = fn.vars[e->imm].type;
            int lo = varReg[e->imm];
            int hi = vt.isSigned() ? rri(MOp::Srai, lo, 31) : Z;
            return {lo, hi};
        }
        case ExprKind::ArrayRef: {
            Val idx = eval(e->args[0]);
            const auto &arr = fn.arrays[e->imm];
            int eb = elemBytes(arr.elemType);
            int off = eb > 1
                          ? rri(MOp::Slli, idx.lo, eb == 2 ? 1 : 2)
                          : idx.lo;
            int addr = rrr(
                MOp::Add,
                liConst(static_cast<int32_t>(arrOff[e->imm])), off);
            bool sgn = arr.elemType.isSigned();
            MOp lop = eb == 1   ? (sgn ? MOp::Lb : MOp::Lbu)
                      : eb == 2 ? (sgn ? MOp::Lh : MOp::Lhu)
                                : MOp::Lw;
            int lo = emitLoad(lop, addr, 0);
            int hi = sgn ? rri(MOp::Srai, lo, 31) : Z;
            return {lo, hi};
        }
        case ExprKind::StreamRead: {
            int base = liConst(static_cast<int32_t>(
                rv32::Mmio::kStreamBase +
                static_cast<uint32_t>(e->imm) *
                    rv32::Mmio::kStreamStride));
            // ISS blocks here when empty; u32 canonical.
            int lo = emitLoad(MOp::Lw, base, 0, /*vol=*/true);
            return {lo, Z};
        }
        case ExprKind::Cast:
            return quantizeV(eval(e->args[0]),
                             e->args[0]->type.fracBits(), t);
        case ExprKind::BitCast: {
            Val v = eval(e->args[0]);
            Val raw = wrapToV(v, Type::u(e->args[0]->type.width));
            return wrapToV(raw, t);
        }
        case ExprKind::Neg: {
            Val v = eval(e->args[0]);
            int nl = rri(MOp::Xori, v.lo, -1);
            int nh = rri(MOp::Xori, v.hi, -1);
            int lo = rri(MOp::Addi, nl, 1);
            int hi = rrr(MOp::Add, nh, rri(MOp::Sltiu, lo, 1));
            return quantizeV({lo, hi},
                             e->args[0]->type.fracBits(), t);
        }
        case ExprKind::Not: {
            Val v = eval(e->args[0]);
            return quantizeV({rri(MOp::Xori, v.lo, -1),
                              rri(MOp::Xori, v.hi, -1)},
                             e->args[0]->type.fracBits(), t);
        }
        case ExprKind::LNot: {
            Val v = eval(e->args[0]);
            int r = rri(MOp::Sltiu, rrr(MOp::Or, v.lo, v.hi), 1);
            return {r, Z};
        }
        case ExprKind::Select: {
            // A constant condition folds to the live arm only; no
            // backend ever executes the dead arm.
            if (auto c = fold(e->args[0])) {
                ++res.constantsFolded;
                return eval(*c != 0 ? e->args[1] : e->args[2]);
            }
            Val cond = eval(e->args[0]);
            int o = rrr(MOp::Or, cond.lo, cond.hi);
            int rl = f().newVreg(), rh = f().newVreg();
            // Trampoline discipline (like If): the conditional
            // branch only hops one instruction, so arm size never
            // exceeds the +-4 KB conditional-branch reach.
            std::string l_then = f().genLabel("sel_then");
            std::string l_else = f().genLabel("sel_else");
            std::string l_end = f().genLabel("sel_end");
            emitBranch(MOp::Bne, o, Z, l_then);
            emitJump(l_else);
            emitLabel(l_then);
            Val tv = eval(e->args[1]);
            emitCopy(rl, tv.lo);
            emitCopy(rh, tv.hi);
            emitJump(l_end);
            emitLabel(l_else);
            Val fv = eval(e->args[2]);
            emitCopy(rl, fv.lo);
            emitCopy(rh, fv.hi);
            emitLabel(l_end);
            return {rl, rh};
        }
        default:
            break;
        }

        pld_assert(ir::isBinary(e->kind),
                   "unhandled expr in -Os isel");
        const ExprPtr &lhs = e->args[0];
        const ExprPtr &rhs = e->args[1];
        int fa = lhs->type.fracBits();
        int fb = rhs->type.fracBits();

        if (e->kind == ExprKind::Shl || e->kind == ExprKind::Shr) {
            pld_assert(rhs->kind == ExprKind::Const,
                       "shift amount must be constant");
            int sh = static_cast<int>(rhs->imm);
            Val v = eval(lhs);
            Val s = shiftPairV(v, e->kind == ExprKind::Shl ? sh
                                                           : -sh);
            return quantizeV(s, fa, t);
        }

        if (e->kind == ExprKind::Mul)
            return evalMul(e, lhs, rhs, fa, fb, t);

        Val x = eval(lhs);
        Val y = eval(rhs);

        switch (e->kind) {
        case ExprKind::Add:
        case ExprKind::Sub: {
            int fc = std::max(fa, fb);
            int d = fc - t.fracBits();
            // Same pair-vs-quad window as -O0: the 64-bit path is
            // only exact when alignment cannot push value bits past
            // bit 63 and no down-quantize pulls them back into view.
            if (alignOverflows(lhs->type, fc - fa) ||
                alignOverflows(rhs->type, fc - fb) || d > 0) {
                Quad xq = shiftQuadV(widenV(x), fc - fa);
                Quad yq = shiftQuadV(widenV(y), fc - fb);
                Quad r =
                    addQuadV(xq, yq, e->kind == ExprKind::Sub);
                r = shiftQuadV(r, -d);
                return wrapToV({r[0], r[1]}, t);
            }
            Val A = shiftPairV(x, fc - fa);
            Val B = shiftPairV(y, fc - fb);
            return quantizeV(addPairV(A, B, e->kind == ExprKind::Sub),
                             fc, t);
        }
        case ExprKind::Div: {
            pld_assert(lhs->type.width <= 32 &&
                           rhs->type.width <= 32,
                       "%s: division operands must be <= 32 bits "
                       "(insert casts)",
                       fn.name.c_str());
            int sh = t.fracBits() - fa + fb;
            pld_assert(sh >= 0, "div shift must be non-negative");
            Val num = shiftPairV(x, sh);
            return wrapToV(callFw("__pld_sdiv64", num, y), t);
        }
        case ExprKind::Mod:
            return wrapToV(callFw("__pld_mod64", x, y), t);
        case ExprKind::And:
        case ExprKind::Or:
        case ExprKind::Xor: {
            int fc = std::max(fa, fb);
            Val A = shiftPairV(x, fc - fa);
            Val B = shiftPairV(y, fc - fb);
            MOp op = e->kind == ExprKind::And  ? MOp::And
                     : e->kind == ExprKind::Or ? MOp::Or
                                               : MOp::Xor;
            return quantizeV(
                {rrr(op, A.lo, B.lo), rrr(op, A.hi, B.hi)}, fc, t);
        }
        case ExprKind::Lt:
        case ExprKind::Le:
        case ExprKind::Gt:
        case ExprKind::Ge:
        case ExprKind::Eq:
        case ExprKind::Ne: {
            int fc = std::max(fa, fb);
            if (alignOverflows(lhs->type, fc - fa) ||
                alignOverflows(rhs->type, fc - fb)) {
                Quad xq = shiftQuadV(widenV(x), fc - fa);
                Quad yq = shiftQuadV(widenV(y), fc - fb);
                return compareWideV(xq, yq, e->kind);
            }
            return compareV(shiftPairV(x, fc - fa),
                            shiftPairV(y, fc - fb), e->kind);
        }
        case ExprKind::LAnd:
        case ExprKind::LOr: {
            int ta = rrr(MOp::Sltu, Z, rrr(MOp::Or, x.lo, x.hi));
            int tb = rrr(MOp::Sltu, Z, rrr(MOp::Or, y.lo, y.hi));
            int r = rrr(e->kind == ExprKind::LAnd ? MOp::And
                                                  : MOp::Or,
                        ta, tb);
            return {r, Z};
        }
        default:
            pld_panic("unhandled binary kind in -Os isel");
        }
    }

    /**
     * Multiply lowering with strength reduction:
     *  - power-of-two constant operand -> constant pair shift
     *    (exact: low64((a * 2^k) >> sh) == pair-shift by k - sh);
     *  - both operands <= 32 bits wide -> inline mul + mulh[s]u
     *    (their canonical values are sign/zero-extensions of the low
     *    word, so one 32x32->64 product is the full 128-bit product
     *    up to extension);
     *  - otherwise the -O0 firmware call.
     * The constant operand, when present, folded entirely, so the
     * non-constant side is always still evaluated (stream reads!).
     */
    Val
    evalMul(const ExprPtr &e, const ExprPtr &lhs, const ExprPtr &rhs,
            int fa, int fb, const Type &t)
    {
        int sh = (fa + fb) - t.fracBits();
        pld_assert(sh >= 0, "mul shift must be non-negative");

        auto pow2 = [](int64_t v) -> int {
            if (v > 0 && (v & (v - 1)) == 0) {
                int k = 0;
                while ((v >> k) != 1)
                    ++k;
                return k;
            }
            return -1;
        };
        auto cl = fold(lhs);
        auto cr = fold(rhs);
        const ExprPtr &varSide = cl ? rhs : lhs;
        if (auto c = cl ? cl : cr) {
            Val v = eval(varSide);
            if (*c == 0)
                return {Z, Z}; // exact: 0 quantizes and wraps to 0
            int k = pow2(*c);
            if (k >= 0) {
                ++res.strengthReduced;
                return wrapToV(shiftPairV(v, k - sh), t);
            }
            // Non-pow2 constant: fall through with the constant
            // materialized on its original side.
            Val cv = materialize(*c);
            Val x = cl ? cv : v;
            Val y = cl ? v : cv;
            return mulPair(x, y, lhs->type, rhs->type, sh, t);
        }
        Val x = eval(lhs);
        Val y = eval(rhs);
        return mulPair(x, y, lhs->type, rhs->type, sh, t);
    }

    Val
    mulPair(Val x, Val y, const Type &ta, const Type &tb, int sh,
            const Type &t)
    {
        if (ta.width <= 32 && tb.width <= 32) {
            ++res.inlinedMuls;
            bool ua = !ta.isSigned() && ta.width == 32;
            bool ub = !tb.isSigned() && tb.width == 32;
            int lo = rrr(MOp::Mul, x.lo, y.lo);
            Val p;
            if (ua && ub) {
                // zext * zext: product is a non-negative uint64;
                // shift logically.
                p = {lo, rrr(MOp::Mulhu, x.lo, y.lo)};
                return wrapToV(shiftPairLogicalV(p, sh), t);
            }
            if (!ua && !ub) {
                p = {lo, rrr(MOp::Mulh, x.lo, y.lo)};
            } else {
                // mulhsu wants (signed, unsigned) operand order.
                int s = ua ? y.lo : x.lo;
                int u = ua ? x.lo : y.lo;
                p = {lo, rrr(MOp::Mulhsu, s, u)};
            }
            return wrapToV(shiftPairV(p, -sh), t);
        }
        return wrapToV(callFw("__pld_mulshift", x, y, sh), t);
    }

    // --- statement lowering ------------------------------------------

    void
    stmts(const std::vector<StmtPtr> &body)
    {
        for (const auto &s : body)
            stmt(s);
    }

    void
    stmt(const StmtPtr &s)
    {
        switch (s->kind) {
        case StmtKind::Assign: {
            Val v = eval(s->args[0]);
            emitCopy(varReg[s->imm], v.lo);
            break;
        }
        case StmtKind::ArrayStore: {
            // Value first, then index: the order the (fuzz-proven)
            // -O0 tier uses when both contain stream reads.
            Val val = eval(s->args[1]);
            Val idx = eval(s->args[0]);
            const auto &arr = fn.arrays[s->imm];
            int eb = elemBytes(arr.elemType);
            int off = eb > 1
                          ? rri(MOp::Slli, idx.lo, eb == 2 ? 1 : 2)
                          : idx.lo;
            int addr = rrr(
                MOp::Add,
                liConst(static_cast<int32_t>(arrOff[s->imm])), off);
            MOp sop = eb == 1 ? MOp::Sb : eb == 2 ? MOp::Sh : MOp::Sw;
            emitStore(sop, val.lo, addr, 0);
            break;
        }
        case StmtKind::StreamWrite: {
            Val v = eval(s->args[0]);
            int base = liConst(static_cast<int32_t>(
                rv32::Mmio::kStreamBase +
                static_cast<uint32_t>(s->imm) *
                    rv32::Mmio::kStreamStride));
            // ISS blocks here when full.
            emitStore(MOp::Sw, v.lo, base, 0, /*vol=*/true);
            break;
        }
        case StmtKind::For: {
            // var = lo; while (var < hi) { body; var += step; }
            // 32-bit signed bound check, same as -O0.
            int iv = varReg[s->imm];
            emitLi(iv, static_cast<int32_t>(s->immLo));
            int bound = liConst(static_cast<int32_t>(s->immHi));
            std::string l_loop = f().genLabel("for");
            std::string l_body = f().genLabel("for_body");
            std::string l_exit = f().genLabel("for_exit");
            emitLabel(l_loop);
            emitBranch(MOp::Blt, iv, bound, l_body);
            emitJump(l_exit);
            emitLabel(l_body);
            stmts(s->body);
            MInst step{MOp::Addi};
            step.rd = iv;
            step.rs1 = iv;
            step.imm = static_cast<int32_t>(s->immStep);
            f().code.push_back(step);
            emitJump(l_loop);
            emitLabel(l_exit);
            break;
        }
        case StmtKind::While: {
            std::string l_loop = f().genLabel("wh");
            std::string l_body = f().genLabel("wh_body");
            std::string l_exit = f().genLabel("wh_exit");
            emitLabel(l_loop);
            Val c = eval(s->args[0]);
            emitBranch(MOp::Bne, rrr(MOp::Or, c.lo, c.hi), Z,
                       l_body);
            emitJump(l_exit);
            emitLabel(l_body);
            stmts(s->body);
            emitJump(l_loop);
            emitLabel(l_exit);
            break;
        }
        case StmtKind::If: {
            std::string l_else = f().genLabel("if_else");
            std::string l_then = f().genLabel("if_then");
            std::string l_end = f().genLabel("if_end");
            Val c = eval(s->args[0]);
            emitBranch(MOp::Bne, rrr(MOp::Or, c.lo, c.hi), Z,
                       l_then);
            emitJump(l_else);
            emitLabel(l_then);
            stmts(s->body);
            emitJump(l_end);
            emitLabel(l_else);
            stmts(s->elseBody);
            emitLabel(l_end);
            break;
        }
        case StmtKind::Print: {
            int base = liConst(
                static_cast<int32_t>(rv32::Mmio::kConsolePutc));
            for (char ch : s->text)
                emitStore(MOp::Sw, liConst(ch), base, 0,
                          /*vol=*/true);
            for (const auto &arg : s->args) {
                emitStore(MOp::Sw, liConst(' '), base, 0,
                          /*vol=*/true);
                Val v = eval(arg);
                emitCopy(PhysA0, v.lo);
                MInst c{MOp::Call};
                c.label = "__pld_puthex";
                f().code.push_back(c);
            }
            emitStore(MOp::Sw, liConst('\n'), base, 0,
                      /*vol=*/true);
            break;
        }
        case StmtKind::Block:
            stmts(s->body);
            break;
        }
    }

    const ir::OperatorFn &fn;
    IselResult res;
    std::vector<uint32_t> arrOff;
    std::vector<int> varReg;
};

} // namespace

IselResult
selectInstructions(const ir::OperatorFn &fn)
{
    Isel sel(fn);
    return sel.run();
}

// --- peephole --------------------------------------------------------

namespace {

/** LVN key: opcode + canonical operands. */
struct LvnKey
{
    MOp op;
    int a, b;
    int32_t imm;

    bool
    operator<(const LvnKey &o) const
    {
        if (op != o.op)
            return op < o.op;
        if (a != o.a)
            return a < o.a;
        if (b != o.b)
            return b < o.b;
        return imm < o.imm;
    }
};

} // namespace

int
peephole(MFunction &f)
{
    int removed = 0;

    // Pass 1 (per basic block): copy propagation through a leader
    // table, redundant sign-extension rewrites, and local value
    // numbering that turns recomputations of pure ops into copies.
    std::unordered_map<int, int> leader;     // vreg -> equal vreg
    std::map<LvnKey, int> table;             // expression -> vreg
    std::unordered_map<int, size_t> defIdx;  // vreg -> defining inst
    auto resetBlock = [&]() {
        leader.clear();
        table.clear();
        defIdx.clear();
    };
    auto resolve = [&](int r) {
        while (true) {
            auto it = leader.find(r);
            if (it == leader.end())
                return r;
            r = it->second;
        }
    };
    auto invalidate = [&](int rd) {
        leader.erase(rd);
        for (auto it = leader.begin(); it != leader.end();)
            it = it->second == rd ? leader.erase(it) : std::next(it);
        for (auto it = table.begin(); it != table.end();)
            it = (it->second == rd || it->first.a == rd ||
                  it->first.b == rd)
                     ? table.erase(it)
                     : std::next(it);
        defIdx.erase(rd);
    };

    for (size_t i = 0; i < f.code.size(); ++i) {
        MInst &m = f.code[i];
        if (m.op == MOp::Label) {
            // Join point: facts from the fall-through path need not
            // hold on other incoming edges.
            resetBlock();
            continue;
        }
        // Rewrite virtual operands through the leader table.
        DefUse du = instDefUse(m);
        auto remap = [&](int r) {
            return isVreg(r) ? resolve(r) : r;
        };
        if (du.nuse > 0) {
            switch (m.op) {
            case MOp::Sb:
            case MOp::Sh:
            case MOp::Sw:
                m.rs1 = remap(m.rs1);
                m.rs2 = remap(m.rs2);
                break;
            default:
                if (m.rs1 >= 0)
                    m.rs1 = remap(m.rs1);
                if (m.rs2 >= 0)
                    m.rs2 = remap(m.rs2);
                break;
            }
        }
        if (du.def < 0)
            continue;
        int rd = m.rd;
        if (!isVreg(rd)) {
            // Physical defs (firmware ABI setup) are never renamed.
            continue;
        }
        invalidate(rd);
        // srai rd, x, 31 of something already 0/1-or-sign-extended
        // is redundant: sext(sext(v)) and sext(bool) fold.
        if (m.op == MOp::Srai && m.imm == 31 && isVreg(m.rs1)) {
            auto dit = defIdx.find(m.rs1);
            if (dit != defIdx.end()) {
                const MInst &d = f.code[dit->second];
                bool isBool = d.op == MOp::Slt ||
                              d.op == MOp::Sltu ||
                              d.op == MOp::Slti ||
                              d.op == MOp::Sltiu;
                bool isSext = d.op == MOp::Srai && d.imm == 31;
                if (isBool) {
                    m.op = MOp::Copy;
                    m.rs1 = 0; // x0: sign of a 0/1 value is 0
                    m.imm = 0;
                } else if (isSext) {
                    m.op = MOp::Copy;
                    m.rs1 = d.rd;
                    m.imm = 0;
                }
            }
        }
        if (m.op == MOp::Copy) {
            if (isVreg(m.rs1) || m.rs1 == 0) {
                // Later uses in this block read the source directly;
                // the copy itself dies in the DCE pass if nothing
                // outside the block needs rd.
                if (m.rs1 != rd)
                    leader[rd] = m.rs1;
            }
            defIdx[rd] = i;
            continue;
        }
        // CSE pure ops whose operands are vregs/x0 (physical
        // registers are mutated by firmware calls; never number
        // them).
        bool operandsOk = (m.rs1 < 0 || isVreg(m.rs1) || m.rs1 == 0) &&
                          (m.rs2 < 0 || isVreg(m.rs2) || m.rs2 == 0);
        if (mopIsPure(m.op) && operandsOk) {
            LvnKey key{m.op, m.rs1, m.rs2, m.imm};
            auto it = table.find(key);
            if (it != table.end()) {
                m.op = MOp::Copy;
                m.rs1 = it->second;
                m.rs2 = -1;
                m.imm = 0;
                if (m.rs1 != rd)
                    leader[rd] = m.rs1;
                defIdx[rd] = i;
                continue;
            }
            table[key] = rd;
        }
        defIdx[rd] = i;
    }

    // Pass 2: global dead-code elimination to a fixed point. An
    // instruction is dead when it writes an unused vreg and has no
    // side effects (volatile loads keep MMIO ordering alive).
    while (true) {
        std::unordered_map<int, int> uses;
        for (const MInst &m : f.code) {
            DefUse du = instDefUse(m);
            for (int u = 0; u < du.nuse; ++u)
                if (isVreg(du.use[u]))
                    ++uses[du.use[u]];
        }
        std::vector<MInst> kept;
        kept.reserve(f.code.size());
        bool changed = false;
        for (const MInst &m : f.code) {
            bool dead = false;
            if (isVreg(m.rd) && !m.vol &&
                (mopIsPure(m.op) || mopIsLoad(m.op))) {
                if (m.op == MOp::Copy && m.rs1 == m.rd)
                    dead = true; // self-copy
                else if (uses[m.rd] == 0)
                    dead = true;
            }
            if (dead) {
                ++removed;
                changed = true;
            } else {
                kept.push_back(m);
            }
        }
        f.code = std::move(kept);
        if (!changed)
            break;
    }
    return removed;
}

} // namespace rvgen
} // namespace pld
