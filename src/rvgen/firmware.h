/**
 * @file
 * Softcore firmware library shared by the -O0 and -Os tiers.
 *
 * Both code generators link the same 64-bit helper routines
 * (__pld_mulshift, __pld_sdiv64, __pld_mod64, __pld_puthex) into the
 * image after the operator body. The routines clobber only t0-t6 and
 * a2-a5 (plus the a0/a1 result pair), which is what lets the -Os
 * allocator keep values live in callee-saved s-registers across
 * calls without spilling.
 *
 * Also hosts the two data-layout helpers both tiers must agree on
 * with the interpreter: element sizing and canonical raw encoding.
 */

#ifndef PLD_RVGEN_FIRMWARE_H
#define PLD_RVGEN_FIRMWARE_H

#include <cstdint>

#include "ir/type.h"

namespace pld {
namespace rv32 {
class Assembler;
}
namespace rvgen {

/** Array element storage size: 1, 2, or 4 bytes by width. */
int elemBytes(const ir::Type &t);

/** Wrap @p bits to @p t's width with its signedness (the
    interpreter's canonical form). */
int64_t canonicalRaw(uint64_t bits, const ir::Type &t);

/**
 * Append the firmware routines at the assembler's current position.
 *
 * __pld_mulshift: a0:a1 (signed 64) * a2:a3 (signed 64), 128-bit
 *   product arithmetic-shifted right by a4 (0..127); low 64 bits in
 *   a0:a1.
 * __pld_sdiv64: signed a0:a1 / signed a2 (32-bit value,
 *   sign-extended in a3); truncating quotient, /0 -> 0.
 * __pld_mod64: signed a0:a1 % signed a2:a3 (full 64-bit operands);
 *   truncating remainder with the dividend's sign, %0 -> 0.
 * __pld_puthex: print a0 as 8 hex digits to the console.
 */
void emitFirmware(rv32::Assembler &a);

} // namespace rvgen
} // namespace pld

#endif // PLD_RVGEN_FIRMWARE_H
