#include "rvgen/mir.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "rv32/asm.h"

namespace pld {
namespace rvgen {

namespace {

struct MopInfo
{
    const char *name;
    // Operand shape, used by the printer/parser and instDefUse.
    enum Shape {
        RRR,   // op rd, rs1, rs2
        RRI,   // op rd, rs1, imm
        LOAD,  // op rd, imm(rs1)
        STORE, // op rs2, imm(rs1)
        LI,    // li rd, imm
        COPY,  // mv rd, rs1
        BRANCH,// op rs1, rs2, label
        JUMP,  // j label
        LABEL, // label:
        CALL,  // call label
        NULLARY,
    } shape;
};

const MopInfo &
info(MOp op)
{
    static const MopInfo kTable[] = {
        {"add", MopInfo::RRR},    {"sub", MopInfo::RRR},
        {"sll", MopInfo::RRR},    {"slt", MopInfo::RRR},
        {"sltu", MopInfo::RRR},   {"xor", MopInfo::RRR},
        {"srl", MopInfo::RRR},    {"sra", MopInfo::RRR},
        {"or", MopInfo::RRR},     {"and", MopInfo::RRR},
        {"mul", MopInfo::RRR},    {"mulh", MopInfo::RRR},
        {"mulhsu", MopInfo::RRR}, {"mulhu", MopInfo::RRR},
        {"div", MopInfo::RRR},    {"divu", MopInfo::RRR},
        {"rem", MopInfo::RRR},    {"remu", MopInfo::RRR},
        {"addi", MopInfo::RRI},   {"slti", MopInfo::RRI},
        {"sltiu", MopInfo::RRI},  {"xori", MopInfo::RRI},
        {"ori", MopInfo::RRI},    {"andi", MopInfo::RRI},
        {"slli", MopInfo::RRI},   {"srli", MopInfo::RRI},
        {"srai", MopInfo::RRI},
        {"lb", MopInfo::LOAD},    {"lh", MopInfo::LOAD},
        {"lw", MopInfo::LOAD},    {"lbu", MopInfo::LOAD},
        {"lhu", MopInfo::LOAD},
        {"sb", MopInfo::STORE},   {"sh", MopInfo::STORE},
        {"sw", MopInfo::STORE},
        {"li", MopInfo::LI},      {"mv", MopInfo::COPY},
        {"beq", MopInfo::BRANCH}, {"bne", MopInfo::BRANCH},
        {"blt", MopInfo::BRANCH}, {"bge", MopInfo::BRANCH},
        {"bltu", MopInfo::BRANCH},{"bgeu", MopInfo::BRANCH},
        {"j", MopInfo::JUMP},     {"label", MopInfo::LABEL},
        {"call", MopInfo::CALL},  {"ebreak", MopInfo::NULLARY},
    };
    return kTable[static_cast<int>(op)];
}

const char *kAbiNames[32] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

std::string
regName(int r)
{
    if (r >= 0 && r < 32)
        return kAbiNames[r];
    return "%" + std::to_string(r);
}

bool
parseReg(const std::string &tok, int *out)
{
    if (!tok.empty() && tok[0] == '%') {
        *out = std::atoi(tok.c_str() + 1);
        return *out >= kVregBase;
    }
    for (int i = 0; i < 32; ++i)
        if (tok == kAbiNames[i]) {
            *out = i;
            return true;
        }
    return false;
}

} // namespace

const char *
mopName(MOp op)
{
    return info(op).name;
}

bool
mopHasDst(MOp op)
{
    switch (info(op).shape) {
    case MopInfo::RRR:
    case MopInfo::RRI:
    case MopInfo::LOAD:
    case MopInfo::LI:
    case MopInfo::COPY:
        return true;
    default:
        return false;
    }
}

bool
mopIsPure(MOp op)
{
    switch (info(op).shape) {
    case MopInfo::RRR:
    case MopInfo::RRI:
    case MopInfo::LI:
    case MopInfo::COPY:
        return true;
    default:
        return false;
    }
}

bool
mopIsLoad(MOp op)
{
    return info(op).shape == MopInfo::LOAD;
}

bool
mopIsStore(MOp op)
{
    return info(op).shape == MopInfo::STORE;
}

bool
mopIsBranch(MOp op)
{
    return info(op).shape == MopInfo::BRANCH;
}

DefUse
instDefUse(const MInst &inst)
{
    DefUse du;
    auto use = [&](int r) {
        if (r >= 0)
            du.use[du.nuse++] = r;
    };
    switch (info(inst.op).shape) {
    case MopInfo::RRR:
        du.def = inst.rd;
        use(inst.rs1);
        use(inst.rs2);
        break;
    case MopInfo::RRI:
    case MopInfo::LOAD:
    case MopInfo::COPY:
        du.def = inst.rd;
        use(inst.rs1);
        break;
    case MopInfo::LI:
        du.def = inst.rd;
        break;
    case MopInfo::STORE:
    case MopInfo::BRANCH:
        use(inst.rs1);
        use(inst.rs2);
        break;
    default:
        break;
    }
    return du;
}

std::string
printMir(const MFunction &f)
{
    std::ostringstream os;
    for (const MInst &m : f.code) {
        const MopInfo &mi = info(m.op);
        if (mi.shape == MopInfo::LABEL) {
            os << m.label << ":\n";
            continue;
        }
        os << "  " << mi.name;
        if (m.vol)
            os << ".v";
        switch (mi.shape) {
        case MopInfo::RRR:
            os << ' ' << regName(m.rd) << ", " << regName(m.rs1)
               << ", " << regName(m.rs2);
            break;
        case MopInfo::RRI:
            os << ' ' << regName(m.rd) << ", " << regName(m.rs1)
               << ", " << m.imm;
            break;
        case MopInfo::LOAD:
            os << ' ' << regName(m.rd) << ", " << m.imm << '('
               << regName(m.rs1) << ')';
            break;
        case MopInfo::STORE:
            os << ' ' << regName(m.rs2) << ", " << m.imm << '('
               << regName(m.rs1) << ')';
            break;
        case MopInfo::LI:
            os << ' ' << regName(m.rd) << ", " << m.imm;
            break;
        case MopInfo::COPY:
            os << ' ' << regName(m.rd) << ", " << regName(m.rs1);
            break;
        case MopInfo::BRANCH:
            os << ' ' << regName(m.rs1) << ", " << regName(m.rs2)
               << ", " << m.label;
            break;
        case MopInfo::JUMP:
        case MopInfo::CALL:
            os << ' ' << m.label;
            break;
        default:
            break;
        }
        os << '\n';
    }
    return os.str();
}

bool
parseMir(const std::string &text, MFunction *out, std::string *err)
{
    out->code.clear();
    out->nextVreg = kVregBase;
    out->labelCounter = 0;
    auto fail = [&](int lineNo, const std::string &msg) {
        if (err)
            *err = "line " + std::to_string(lineNo) + ": " + msg;
        return false;
    };
    std::istringstream is(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        // Strip comments and whitespace.
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        // Split the mnemonic at the first whitespace BEFORE
        // de-spacing the operands, so bare-label forms like
        // "j entry_0" don't fuse into one token.
        size_t lead = 0;
        while (lead < line.size() &&
               std::isspace(static_cast<unsigned char>(line[lead])))
            ++lead;
        size_t mnEnd = lead;
        while (mnEnd < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[mnEnd])))
            ++mnEnd;
        std::string mn = line.substr(lead, mnEnd - lead);
        std::string s;
        for (size_t ci = mnEnd; ci < line.size(); ++ci)
            if (!std::isspace(static_cast<unsigned char>(line[ci])))
                s.push_back(line[ci]);
        if (mn.empty())
            continue;
        if (mn.back() == ':' && s.empty()) {
            MInst m{MOp::Label};
            m.label = mn.substr(0, mn.size() - 1);
            out->code.push_back(m);
            continue;
        }
        // Tolerate "add a0,a1" written without the space: split the
        // fused token at the first non-mnemonic character.
        size_t cut = 0;
        while (cut < mn.size() &&
               (std::isalnum(static_cast<unsigned char>(mn[cut])) ||
                mn[cut] == '.'))
            ++cut;
        if (cut < mn.size()) {
            s = mn.substr(cut) + s;
            mn = mn.substr(0, cut);
        }
        size_t p = 0;
        bool vol = false;
        if (mn.size() > 2 && mn.substr(mn.size() - 2) == ".v") {
            vol = true;
            mn = mn.substr(0, mn.size() - 2);
        }
        int opIdx = -1;
        for (int i = 0; i <= static_cast<int>(MOp::Ebreak); ++i)
            if (mn == info(static_cast<MOp>(i)).name &&
                static_cast<MOp>(i) != MOp::Label) {
                opIdx = i;
                break;
            }
        if (opIdx < 0)
            return fail(lineNo, "unknown mnemonic '" + mn + "'");
        MInst m{static_cast<MOp>(opIdx)};
        m.vol = vol;
        std::vector<std::string> ops;
        std::string cur;
        for (; p < s.size(); ++p) {
            if (s[p] == ',' || s[p] == '(' || s[p] == ')') {
                if (!cur.empty())
                    ops.push_back(cur);
                cur.clear();
            } else {
                cur.push_back(s[p]);
            }
        }
        if (!cur.empty())
            ops.push_back(cur);
        auto reg = [&](size_t i, int *dst) {
            return i < ops.size() && parseReg(ops[i], dst);
        };
        auto imm = [&](size_t i, int32_t *dst) {
            if (i >= ops.size())
                return false;
            char *end = nullptr;
            long long v = std::strtoll(ops[i].c_str(), &end, 0);
            if (end == ops[i].c_str() || *end)
                return false;
            *dst = static_cast<int32_t>(v);
            return true;
        };
        bool ok = true;
        switch (info(m.op).shape) {
        case MopInfo::RRR:
            ok = ops.size() == 3 && reg(0, &m.rd) &&
                 reg(1, &m.rs1) && reg(2, &m.rs2);
            break;
        case MopInfo::RRI:
            ok = ops.size() == 3 && reg(0, &m.rd) &&
                 reg(1, &m.rs1) && imm(2, &m.imm);
            break;
        case MopInfo::LOAD: // ops: rd, imm, base
            ok = ops.size() == 3 && reg(0, &m.rd) &&
                 imm(1, &m.imm) && reg(2, &m.rs1);
            break;
        case MopInfo::STORE: // ops: rs2, imm, base
            ok = ops.size() == 3 && reg(0, &m.rs2) &&
                 imm(1, &m.imm) && reg(2, &m.rs1);
            break;
        case MopInfo::LI:
            ok = ops.size() == 2 && reg(0, &m.rd) && imm(1, &m.imm);
            break;
        case MopInfo::COPY:
            ok = ops.size() == 2 && reg(0, &m.rd) && reg(1, &m.rs1);
            break;
        case MopInfo::BRANCH:
            ok = ops.size() == 3 && reg(0, &m.rs1) &&
                 reg(1, &m.rs2) && !ops[2].empty();
            if (ok)
                m.label = ops[2];
            break;
        case MopInfo::JUMP:
        case MopInfo::CALL:
            ok = ops.size() == 1 && !ops[0].empty();
            if (ok)
                m.label = ops[0];
            break;
        case MopInfo::NULLARY:
            ok = ops.empty();
            break;
        default:
            ok = false;
            break;
        }
        if (!ok)
            return fail(lineNo, "bad operands for '" + mn + "'");
        out->code.push_back(m);
    }
    // Restore allocator state so the parsed function can keep
    // growing (newVreg / genLabel stay collision-free).
    for (const MInst &m : out->code) {
        DefUse du = instDefUse(m);
        int regs[3] = {du.def, du.use[0], du.use[1]};
        for (int r : regs)
            if (r >= out->nextVreg)
                out->nextVreg = r + 1;
        if (!m.label.empty()) {
            auto us = m.label.rfind('_');
            if (us != std::string::npos) {
                char *end = nullptr;
                long n = std::strtol(m.label.c_str() + us + 1, &end, 10);
                if (end && !*end && n >= out->labelCounter)
                    out->labelCounter = static_cast<int>(n) + 1;
            }
        }
    }
    return true;
}

void
emitMir(rv32::Assembler &a, const MFunction &f)
{
    using rv32::Reg;
    auto R = [](int r) {
        pld_assert(r >= 0 && r < 32,
                   "emitMir: virtual register survived allocation");
        return static_cast<Reg>(r);
    };
    for (const MInst &m : f.code) {
        switch (m.op) {
        case MOp::Add: a.add(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Sub: a.sub(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Sll: a.sll(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Slt: a.slt(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Sltu: a.sltu(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Xor: a.xor_(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Srl: a.srl(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Sra: a.sra(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Or: a.or_(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::And: a.and_(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Mul: a.mul(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Mulh: a.mulh(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Mulhsu: a.mulhsu(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Mulhu: a.mulhu(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Div: a.div(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Divu: a.divu(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Rem: a.rem(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Remu: a.remu(R(m.rd), R(m.rs1), R(m.rs2)); break;
        case MOp::Addi: a.addi(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Slti: a.slti(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Sltiu: a.sltiu(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Xori: a.xori(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Ori: a.ori(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Andi: a.andi(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Slli: a.slli(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Srli: a.srli(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Srai: a.srai(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Lb: a.lb(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Lh: a.lh(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Lw: a.lw(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Lbu: a.lbu(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Lhu: a.lhu(R(m.rd), R(m.rs1), m.imm); break;
        case MOp::Sb: a.sb(R(m.rs2), R(m.rs1), m.imm); break;
        case MOp::Sh: a.sh(R(m.rs2), R(m.rs1), m.imm); break;
        case MOp::Sw: a.sw(R(m.rs2), R(m.rs1), m.imm); break;
        case MOp::Li: a.li(R(m.rd), m.imm); break;
        case MOp::Copy: a.mv(R(m.rd), R(m.rs1)); break;
        case MOp::Beq: a.beq(R(m.rs1), R(m.rs2), m.label); break;
        case MOp::Bne: a.bne(R(m.rs1), R(m.rs2), m.label); break;
        case MOp::Blt: a.blt(R(m.rs1), R(m.rs2), m.label); break;
        case MOp::Bge: a.bge(R(m.rs1), R(m.rs2), m.label); break;
        case MOp::Bltu: a.bltu(R(m.rs1), R(m.rs2), m.label); break;
        case MOp::Bgeu: a.bgeu(R(m.rs1), R(m.rs2), m.label); break;
        case MOp::J: a.j(m.label); break;
        case MOp::Label: a.label(m.label); break;
        case MOp::Call: a.call(m.label); break;
        case MOp::Ebreak: a.ebreak(); break;
        }
    }
}

} // namespace rvgen
} // namespace pld
