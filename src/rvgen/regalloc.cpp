#include "rvgen/regalloc.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <string>

#include "common/logging.h"

namespace pld {
namespace rvgen {

namespace {

// The allocatable pool: callee-saved s0..s11 (rv32::Reg numbers).
const int kPool[12] = {8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27};

constexpr int kSpillScratch0 = 3; // gp
constexpr int kSpillScratch1 = 4; // tp
constexpr int kSp = 2;

struct Block
{
    size_t first; // index of first instruction
    size_t last;  // index of last instruction (inclusive)
    std::vector<size_t> succ;
};

std::vector<Block>
buildBlocks(const MFunction &f)
{
    std::vector<Block> blocks;
    if (f.code.empty())
        return blocks;
    // Leaders: 0, every label, every instruction after a
    // branch/jump/ebreak.
    std::set<size_t> leaders{0};
    for (size_t i = 0; i < f.code.size(); ++i) {
        const MInst &m = f.code[i];
        if (m.op == MOp::Label)
            leaders.insert(i);
        if ((mopIsBranch(m.op) || m.op == MOp::J ||
             m.op == MOp::Ebreak) &&
            i + 1 < f.code.size())
            leaders.insert(i + 1);
    }
    std::map<size_t, size_t> blockAt; // leader index -> block id
    for (size_t lead : leaders) {
        blockAt[lead] = blocks.size();
        blocks.push_back({lead, lead, {}});
    }
    for (size_t b = 0; b < blocks.size(); ++b) {
        size_t end = b + 1 < blocks.size() ? blocks[b + 1].first
                                           : f.code.size();
        blocks[b].last = end - 1;
    }
    std::map<std::string, size_t> labelBlock;
    for (size_t b = 0; b < blocks.size(); ++b) {
        const MInst &m = f.code[blocks[b].first];
        if (m.op == MOp::Label)
            labelBlock[m.label] = b;
    }
    for (size_t b = 0; b < blocks.size(); ++b) {
        const MInst &t = f.code[blocks[b].last];
        bool fallsThrough = t.op != MOp::J && t.op != MOp::Ebreak;
        if (mopIsBranch(t.op) || t.op == MOp::J) {
            auto it = labelBlock.find(t.label);
            pld_assert(it != labelBlock.end(),
                       "regalloc: branch to unknown label %s",
                       t.label.c_str());
            blocks[b].succ.push_back(it->second);
        }
        if (fallsThrough && b + 1 < blocks.size())
            blocks[b].succ.push_back(b + 1);
    }
    return blocks;
}

} // namespace

std::vector<LiveInterval>
computeLiveIntervals(const MFunction &f)
{
    int nv = f.nextVreg - kVregBase;
    std::vector<LiveInterval> out;
    if (nv <= 0 || f.code.empty())
        return out;
    std::vector<Block> blocks = buildBlocks(f);

    auto bit = [&](std::vector<char> &v, int r) -> char & {
        return v[static_cast<size_t>(r - kVregBase)];
    };

    // Per-block upward-exposed uses and defs.
    size_t nb = blocks.size();
    std::vector<std::vector<char>> use(nb, std::vector<char>(nv, 0));
    std::vector<std::vector<char>> def(nb, std::vector<char>(nv, 0));
    for (size_t b = 0; b < nb; ++b) {
        for (size_t i = blocks[b].first; i <= blocks[b].last; ++i) {
            DefUse du = instDefUse(f.code[i]);
            for (int u = 0; u < du.nuse; ++u)
                if (isVreg(du.use[u]) &&
                    !bit(def[b], du.use[u]))
                    bit(use[b], du.use[u]) = 1;
            if (isVreg(du.def))
                bit(def[b], du.def) = 1;
        }
    }

    // Iterate liveIn = use + (liveOut - def) to a fixed point.
    std::vector<std::vector<char>> liveIn(nb,
                                          std::vector<char>(nv, 0));
    std::vector<std::vector<char>> liveOut(nb,
                                           std::vector<char>(nv, 0));
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = nb; b-- > 0;) {
            for (int v = 0; v < nv; ++v) {
                char o = 0;
                for (size_t s : blocks[b].succ)
                    o |= liveIn[s][v];
                if (o != liveOut[b][v]) {
                    liveOut[b][v] = o;
                    changed = true;
                }
                char in = use[b][v] | (o & !def[b][v]);
                if (in != liveIn[b][v]) {
                    liveIn[b][v] = in;
                    changed = true;
                }
            }
        }
    }

    // Conservative intervals: every occurrence, widened to block
    // bounds where the vreg is live across the boundary.
    std::vector<int> start(nv, -1), end(nv, -1);
    auto extend = [&](int vreg, int pos) {
        int v = vreg - kVregBase;
        if (start[v] < 0 || pos < start[v])
            start[v] = pos;
        if (pos > end[v])
            end[v] = pos;
    };
    for (size_t i = 0; i < f.code.size(); ++i) {
        DefUse du = instDefUse(f.code[i]);
        if (isVreg(du.def))
            extend(du.def, static_cast<int>(i));
        for (int u = 0; u < du.nuse; ++u)
            if (isVreg(du.use[u]))
                extend(du.use[u], static_cast<int>(i));
    }
    for (size_t b = 0; b < nb; ++b)
        for (int v = 0; v < nv; ++v) {
            if (liveIn[b][v])
                extend(v + kVregBase,
                       static_cast<int>(blocks[b].first));
            if (liveOut[b][v])
                extend(v + kVregBase,
                       static_cast<int>(blocks[b].last));
        }

    for (int v = 0; v < nv; ++v)
        if (start[v] >= 0)
            out.push_back({v + kVregBase, start[v], end[v]});
    std::sort(out.begin(), out.end(),
              [](const LiveInterval &a, const LiveInterval &b) {
                  if (a.start != b.start)
                      return a.start < b.start;
                  return a.vreg < b.vreg;
              });
    return out;
}

std::vector<int>
allocateIntervals(const std::vector<LiveInterval> &intervals,
                  int numRegs)
{
    std::vector<int> assign(intervals.size(), -1);
    if (numRegs <= 0)
        return assign;
    // Free registers, smallest index first for determinism.
    std::priority_queue<int, std::vector<int>, std::greater<int>>
        freeRegs;
    for (int r = 0; r < numRegs; ++r)
        freeRegs.push(r);
    // Active intervals ordered by end point.
    std::set<std::pair<int, size_t>> active; // (end, interval idx)

    for (size_t i = 0; i < intervals.size(); ++i) {
        const LiveInterval &cur = intervals[i];
        // Expire intervals that ended strictly before cur.start.
        while (!active.empty() &&
               active.begin()->first < cur.start) {
            freeRegs.push(assign[active.begin()->second]);
            active.erase(active.begin());
        }
        if (!freeRegs.empty()) {
            assign[i] = freeRegs.top();
            freeRegs.pop();
            active.insert({cur.end, i});
            continue;
        }
        // Pressure: evict the furthest-ending active interval when
        // it outlives the current one; otherwise spill the current.
        auto furthest = std::prev(active.end());
        if (furthest->first > cur.end) {
            size_t victim = furthest->second;
            assign[i] = assign[victim];
            assign[victim] = -1;
            active.erase(furthest);
            active.insert({cur.end, i});
        }
        // else: assign[i] stays -1 (spilled).
    }
    return assign;
}

RegAllocStats
allocateRegisters(MFunction &f, const RegAllocOptions &opts)
{
    RegAllocStats stats;
    std::vector<LiveInterval> intervals = computeLiveIntervals(f);
    stats.vregs = static_cast<int>(intervals.size());
    int budget = std::min(opts.regBudget, 12);
    std::vector<int> assign = allocateIntervals(intervals, budget);

    std::map<int, int> phys;  // vreg -> physical register
    std::map<int, int> slot;  // vreg -> frame slot offset
    int nextSlot = 0;
    for (size_t i = 0; i < intervals.size(); ++i) {
        int v = intervals[i].vreg;
        if (assign[i] >= 0) {
            phys[v] = kPool[assign[i]];
        } else {
            slot[v] = nextSlot;
            nextSlot += 4;
            ++stats.spilledVregs;
        }
    }
    stats.frameBytes = (nextSlot + 15) & ~15;

    std::vector<MInst> out;
    out.reserve(f.code.size() + 8);
    if (stats.frameBytes > 0) {
        // sp stays put for the rest of the program (the -Os body
        // has no other stack traffic), so one adjustment suffices.
        if (stats.frameBytes <= 2048) {
            MInst adj{MOp::Addi};
            adj.rd = kSp;
            adj.rs1 = kSp;
            adj.imm = -stats.frameBytes;
            out.push_back(adj);
        } else {
            MInst li{MOp::Li};
            li.rd = kSpillScratch0;
            li.imm = -stats.frameBytes;
            out.push_back(li);
            MInst adj{MOp::Add};
            adj.rd = kSp;
            adj.rs1 = kSp;
            adj.rs2 = kSpillScratch0;
            out.push_back(adj);
        }
    }

    // Spill-slot access helpers; offsets beyond the 12-bit
    // immediate range compute the address into the scratch itself.
    auto emitSlotLoad = [&](int scratch, int off) {
        if (off <= 2047) {
            MInst l{MOp::Lw};
            l.rd = scratch;
            l.rs1 = kSp;
            l.imm = off;
            out.push_back(l);
        } else {
            MInst li{MOp::Li};
            li.rd = scratch;
            li.imm = off;
            out.push_back(li);
            MInst add{MOp::Add};
            add.rd = scratch;
            add.rs1 = scratch;
            add.rs2 = kSp;
            out.push_back(add);
            MInst l{MOp::Lw};
            l.rd = scratch;
            l.rs1 = scratch;
            l.imm = 0;
            out.push_back(l);
        }
        ++stats.spillLoads;
    };
    auto emitSlotStore = [&](int valueReg, int addrScratch,
                             int off) {
        if (off <= 2047) {
            MInst s{MOp::Sw};
            s.rs2 = valueReg;
            s.rs1 = kSp;
            s.imm = off;
            out.push_back(s);
        } else {
            MInst li{MOp::Li};
            li.rd = addrScratch;
            li.imm = off;
            out.push_back(li);
            MInst add{MOp::Add};
            add.rd = addrScratch;
            add.rs1 = addrScratch;
            add.rs2 = kSp;
            out.push_back(add);
            MInst s{MOp::Sw};
            s.rs2 = valueReg;
            s.rs1 = addrScratch;
            s.imm = 0;
            out.push_back(s);
        }
        ++stats.spillStores;
    };

    for (const MInst &inst : f.code) {
        MInst m = inst;
        DefUse du = instDefUse(m);
        // Map the (up to two) source operands.
        int scratch = kSpillScratch0;
        auto mapUse = [&](int r) {
            if (!isVreg(r))
                return r;
            auto p = phys.find(r);
            if (p != phys.end())
                return p->second;
            int sreg = scratch;
            scratch = kSpillScratch1;
            emitSlotLoad(sreg, slot.at(r));
            return sreg;
        };
        bool defSpilled = false;
        if (du.nuse > 0) {
            if (m.rs1 >= 0)
                m.rs1 = mapUse(m.rs1);
            if (m.rs2 >= 0)
                m.rs2 = mapUse(m.rs2);
        }
        if (isVreg(m.rd)) {
            auto p = phys.find(m.rd);
            if (p != phys.end()) {
                m.rd = p->second;
            } else {
                defSpilled = true;
                // Write through gp; safe as a destination even when
                // it carried a source (read happens first).
                int target = slot.at(m.rd);
                m.rd = kSpillScratch0;
                out.push_back(m);
                emitSlotStore(kSpillScratch0, kSpillScratch1,
                              target);
            }
        }
        if (!defSpilled)
            out.push_back(m);
    }
    f.code = std::move(out);
    return stats;
}

} // namespace rvgen
} // namespace pld
