#include "rvgen/codegen.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "rv32/asm.h"
#include "rv32/iss.h"
#include "rvgen/firmware.h"
#include "rvgen/isel.h"
#include "rvgen/mir.h"
#include "rvgen/regalloc.h"

namespace pld {
namespace rvgen {

using namespace pld::rv32;
using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;
using ir::Type;

// Code is emitted from address 0; data lives above this bound. Both
// tiers share it (-Os code is smaller, -O0 stays well below).
static constexpr uint32_t kTextReserve = 48 * 1024;

namespace {

class Codegen
{
  public:
    explicit Codegen(const ir::OperatorFn &fn) : fn(fn) {}

    PldElf
    compile()
    {
        layoutData();
        emitBody();
        emitFirmware(a);

        PldElf elf;
        elf.text = a.assemble();
        uint32_t text_bytes =
            static_cast<uint32_t>(elf.text.size()) * 4;
        // Data segment begins after text; patch the layout base in.
        pld_assert(text_bytes <= dataBase,
                   "text (%u bytes) overran the reserved code region "
                   "(%u bytes); enlarge kTextReserve",
                   text_bytes, dataBase);
        elf.dataBase = dataBase;
        elf.data = dataImage;
        uint32_t need = dataBase +
                        static_cast<uint32_t>(dataImage.size()) +
                        4096 /* stack */;
        uint32_t mem = 16 * 1024;
        while (mem < need)
            mem *= 2;
        pld_assert(mem <= 192 * 1024,
                   "%s: softcore image needs %u bytes but pages offer "
                   "at most 192 KB (Sec 5.1)",
                   fn.name.c_str(), need);
        elf.memBytes = mem;
        elf.entry = 0;
        return elf;
    }

  private:
    void
    layoutData()
    {
        dataBase = kTextReserve;
        uint32_t off = 0;
        varOff.resize(fn.vars.size());
        for (size_t i = 0; i < fn.vars.size(); ++i) {
            varOff[i] = dataBase + off;
            off += 4;
        }
        arrOff.resize(fn.arrays.size());
        for (size_t i = 0; i < fn.arrays.size(); ++i) {
            const auto &arr = fn.arrays[i];
            int eb = elemBytes(arr.elemType);
            // Align.
            off = (off + eb - 1) & ~uint32_t(eb - 1);
            arrOff[i] = dataBase + off;
            off += static_cast<uint32_t>(arr.size) * eb;
        }
        dataImage.assign(off, 0);
        // ROM initialization images.
        for (size_t i = 0; i < fn.arrays.size(); ++i) {
            const auto &arr = fn.arrays[i];
            int eb = elemBytes(arr.elemType);
            uint32_t base = arrOff[i] - dataBase;
            for (size_t e = 0; e < arr.init.size(); ++e) {
                // Store the canonical bit pattern so a typed load
                // (lb/lh/lw) reproduces exactly what the interpreter
                // reads back — non-canonical init raws must not
                // survive into the image (pldfuzz repro
                // rom_init_canonical).
                uint64_t raw = static_cast<uint64_t>(
                    canonicalRaw(static_cast<uint64_t>(arr.init[e]),
                                 arr.elemType));
                for (int b = 0; b < eb; ++b) {
                    dataImage[base + e * eb + b] =
                        static_cast<uint8_t>(raw >> (8 * b));
                }
            }
        }
    }

    // --- small emission helpers ------------------------------------

    /** Load a 32-bit absolute address into @p r. */
    void
    loadAddr(Reg r, uint32_t addr)
    {
        a.li(r, static_cast<int32_t>(addr));
    }

    /** Push a0:a1 onto the runtime stack. */
    void
    push()
    {
        a.addi(sp, sp, -8);
        a.sw(a0, sp, 0);
        a.sw(a1, sp, 4);
    }

    /** Pop into a2:a3. */
    void
    popA2()
    {
        a.lw(a2, sp, 0);
        a.lw(a3, sp, 4);
        a.addi(sp, sp, 8);
    }

    /**
     * Arithmetic shift of the pair (lo,hi) by compile-time constant
     * @p sh (positive = left). Clobbers t0.
     */
    void
    shiftPair(Reg lo, Reg hi, int sh)
    {
        if (sh == 0)
            return;
        if (sh >= 64) {
            a.li(lo, 0);
            a.li(hi, 0);
            return;
        }
        if (sh <= -64) {
            a.srai(hi, hi, 31);
            a.mv(lo, hi);
            return;
        }
        if (sh > 0) {
            if (sh >= 32) {
                if (sh == 32)
                    a.mv(hi, lo);
                else
                    a.slli(hi, lo, sh - 32);
                a.li(lo, 0);
            } else {
                a.slli(hi, hi, sh);
                a.srli(t0, lo, 32 - sh);
                a.or_(hi, hi, t0);
                a.slli(lo, lo, sh);
            }
        } else {
            int s = -sh;
            if (s >= 32) {
                if (s == 32)
                    a.mv(lo, hi);
                else
                    a.srai(lo, hi, s - 32);
                a.srai(hi, hi, 31);
            } else {
                a.srli(lo, lo, s);
                a.slli(t0, hi, 32 - s);
                a.or_(lo, lo, t0);
                a.srai(hi, hi, s);
            }
        }
    }

    /** Wrap a0:a1 to @p t's width with its signedness. */
    void
    wrapTo(const Type &t)
    {
        int w = t.width;
        if (w <= 32) {
            if (w < 32) {
                a.slli(a0, a0, 32 - w);
                if (t.isSigned())
                    a.srai(a0, a0, 32 - w);
                else
                    a.srli(a0, a0, 32 - w);
            }
            if (t.isSigned())
                a.srai(a1, a0, 31);
            else
                a.li(a1, 0);
        } else if (w < 64) {
            a.slli(a1, a1, 64 - w);
            if (t.isSigned())
                a.srai(a1, a1, 64 - w);
            else
                a.srli(a1, a1, 64 - w);
        }
        // w == 64: nothing.
    }

    /** shift then wrap: the interpreter's quantizeTo. */
    void
    quantize(int src_frac, const Type &t)
    {
        shiftPair(a0, a1, t.fracBits() - src_frac);
        wrapTo(t);
    }

    /** a0:a1 += a2:a3 (or -=). Clobbers t0. */
    void
    addPair(bool subtract)
    {
        if (subtract) {
            a.sltu(t0, a0, a2); // borrow
            a.sub(a0, a0, a2);
            a.sub(a1, a1, a3);
            a.sub(a1, a1, t0);
        } else {
            a.add(a0, a0, a2);
            a.sltu(t0, a0, a2); // carry
            a.add(a1, a1, a3);
            a.add(a1, a1, t0);
        }
    }

    // --- 128-bit quad arithmetic -------------------------------------
    //
    // The interpreter evaluates binary nodes at __int128 precision:
    // it aligns both operands to the larger binary point, combines,
    // and only then quantizes to the (possibly frac-clamped) result
    // type. Aligning in the 64-bit pair wraps bits past bit 63 that a
    // later down-quantize shifts back into view — pldfuzz repro
    // addshift_wrap. These quads cover the exact window: one aligned
    // operand spans < 2^126, so sums and compares fit in 128 bits.

    /** lhs quad, low to high word. */
    const Reg xq[4] = {a0, a1, a4, a5};
    /** rhs quad, low to high word. */
    const Reg yq[4] = {a2, a3, a6, a7};

    /** True when (canonical value of @p t) << @p sh can overflow the
        64-bit pair. Unsigned values below 64 wide carry one extra
        magnitude bit once sign-extended. */
    static bool
    alignOverflows(const Type &t, int sh)
    {
        int w = t.width;
        if (!t.isSigned() && w < 64)
            ++w;
        return sh > 0 && w + sh > 64;
    }

    /** Sign-extend both pairs into the xq/yq quads. */
    void
    widenPairs()
    {
        a.srai(a4, a1, 31);
        a.mv(a5, a4);
        a.srai(a6, a3, 31);
        a.mv(a7, a6);
    }

    /**
     * Arithmetic shift of a quad (w[0] lo .. w[3] hi) by compile-time
     * constant @p sh (positive = left). Clobbers t0, t1.
     */
    void
    shiftQuad(const Reg w[4], int sh)
    {
        if (sh == 0)
            return;
        if (sh > 0) {
            int words = sh / 32, bits = sh % 32;
            for (int i = 3; i >= 0; --i) {
                int src = i - words;
                if (src < 0)
                    a.li(w[i], 0);
                else if (src != i)
                    a.mv(w[i], w[src]);
            }
            if (bits) {
                for (int i = 3; i > words; --i) {
                    a.slli(w[i], w[i], bits);
                    a.srli(t0, w[i - 1], 32 - bits);
                    a.or_(w[i], w[i], t0);
                }
                a.slli(w[words], w[words], bits);
            }
        } else {
            int s = -sh, words = s / 32, bits = s % 32;
            a.srai(t1, w[3], 31); // sign fill for vacated words
            for (int i = 0; i < 4; ++i) {
                int src = i + words;
                if (src <= 3) {
                    if (src != i)
                        a.mv(w[i], w[src]);
                } else {
                    a.mv(w[i], t1);
                }
            }
            if (bits) {
                for (int i = 0; i < 3; ++i) {
                    a.srli(w[i], w[i], bits);
                    a.slli(t0, w[i + 1], 32 - bits);
                    a.or_(w[i], w[i], t0);
                }
                a.srai(w[3], w[3], bits);
            }
        }
    }

    /** xq += yq (or -=), full 128-bit carry chain. Clobbers t0-t2. */
    void
    addQuad(bool subtract)
    {
        if (subtract) {
            a.sltu(t0, a0, a2);
            a.sub(a0, a0, a2);
            for (int i = 1; i < 4; ++i) {
                a.sltu(t1, xq[i], yq[i]);
                a.sub(t2, xq[i], yq[i]);
                a.sltu(xq[i], t2, t0);
                a.sub(t2, t2, t0);
                a.or_(t0, t1, xq[i]);
                a.mv(xq[i], t2);
            }
        } else {
            a.add(a0, a0, a2);
            a.sltu(t0, a0, a2);
            for (int i = 1; i < 4; ++i) {
                a.add(t2, xq[i], yq[i]);
                a.sltu(t1, t2, yq[i]);
                a.add(t2, t2, t0);
                a.sltu(xq[i], t2, t0);
                a.or_(t0, t1, xq[i]);
                a.mv(xq[i], t2);
            }
        }
    }

    /** Exact signed 128-bit compare of xq vs yq -> a0 in {0,1}. */
    void
    emitCompareWide(ExprKind k)
    {
        bool swap = (k == ExprKind::Gt || k == ExprKind::Le);
        bool invert = (k == ExprKind::Le || k == ExprKind::Ge ||
                       k == ExprKind::Ne);
        const Reg *x = swap ? yq : xq;
        const Reg *y = swap ? xq : yq;
        if (k == ExprKind::Eq || k == ExprKind::Ne) {
            a.xor_(t0, x[0], y[0]);
            for (int i = 1; i < 4; ++i) {
                a.xor_(t1, x[i], y[i]);
                a.or_(t0, t0, t1);
            }
            a.seqz(a0, t0);
        } else {
            // Top word signed, lower words unsigned cascade.
            std::string l_true = a.genLabel("cmpw_t");
            std::string l_false = a.genLabel("cmpw_f");
            std::string l_end = a.genLabel("cmpw_e");
            a.blt(x[3], y[3], l_true);
            a.bne(x[3], y[3], l_false);
            for (int i = 2; i >= 1; --i) {
                a.bltu(x[i], y[i], l_true);
                a.bne(x[i], y[i], l_false);
            }
            a.bltu(x[0], y[0], l_true);
            a.label(l_false);
            a.li(a0, 0);
            a.j(l_end);
            a.label(l_true);
            a.li(a0, 1);
            a.label(l_end);
        }
        if (invert)
            a.xori(a0, a0, 1);
        a.li(a1, 0);
    }

    // --- expressions -------------------------------------------------

    /** Emit code leaving the canonical 64-bit value in a0:a1. */
    void
    evalExpr(const ExprPtr &e)
    {
        const Type &t = e->type;
        switch (e->kind) {
          case ExprKind::Const: {
            int64_t v = e->imm;
            a.li(a0, static_cast<int32_t>(v & 0xFFFFFFFF));
            a.li(a1, static_cast<int32_t>(v >> 32));
            return;
          }
          case ExprKind::VarRef: {
            const Type &vt = fn.vars[e->imm].type;
            loadAddr(t0, varOff[e->imm]);
            a.lw(a0, t0, 0);
            if (vt.isSigned())
                a.srai(a1, a0, 31);
            else
                a.li(a1, 0);
            return;
          }
          case ExprKind::ArrayRef: {
            evalExpr(e->args[0]); // index in a0
            const auto &arr = fn.arrays[e->imm];
            int eb = elemBytes(arr.elemType);
            if (eb > 1)
                a.slli(a0, a0, eb == 2 ? 1 : 2);
            loadAddr(t0, arrOff[e->imm]);
            a.add(t0, t0, a0);
            bool sgn = arr.elemType.isSigned();
            if (eb == 1)
                sgn ? a.lb(a0, t0, 0) : a.lbu(a0, t0, 0);
            else if (eb == 2)
                sgn ? a.lh(a0, t0, 0) : a.lhu(a0, t0, 0);
            else
                a.lw(a0, t0, 0);
            if (sgn)
                a.srai(a1, a0, 31);
            else
                a.li(a1, 0);
            if (eb == 4 && arr.elemType.width < 32) {
                // Narrow value stored in 4 bytes is already
                // canonical; high word set above.
            }
            return;
          }
          case ExprKind::StreamRead: {
            loadAddr(t0, Mmio::kStreamBase +
                             static_cast<uint32_t>(e->imm) *
                                 Mmio::kStreamStride);
            a.lw(a0, t0, 0); // ISS blocks here when empty
            a.li(a1, 0);     // u32 canonical: zero-extended
            return;
          }
          case ExprKind::Cast:
            evalExpr(e->args[0]);
            quantize(e->args[0]->type.fracBits(), t);
            return;
          case ExprKind::BitCast: {
            evalExpr(e->args[0]);
            // Take raw low bits of the source, re-canonicalize.
            Type raw_t = Type::u(e->args[0]->type.width);
            wrapTo(raw_t);
            wrapTo(t);
            return;
          }
          case ExprKind::Neg: {
            evalExpr(e->args[0]);
            a.not_(a0, a0);
            a.not_(a1, a1);
            a.addi(a0, a0, 1);
            a.seqz(t0, a0);
            a.add(a1, a1, t0);
            quantize(e->args[0]->type.fracBits(), t);
            return;
          }
          case ExprKind::Not:
            evalExpr(e->args[0]);
            a.not_(a0, a0);
            a.not_(a1, a1);
            quantize(e->args[0]->type.fracBits(), t);
            return;
          case ExprKind::LNot:
            evalExpr(e->args[0]);
            a.or_(t0, a0, a1);
            a.seqz(a0, t0);
            a.li(a1, 0);
            return;
          case ExprKind::Select: {
            std::string l_else = a.genLabel("sel_else");
            std::string l_end = a.genLabel("sel_end");
            evalExpr(e->args[0]);
            a.or_(t0, a0, a1);
            a.beq(t0, x0, l_else);
            evalExpr(e->args[1]);
            a.j(l_end);
            a.label(l_else);
            evalExpr(e->args[2]);
            a.label(l_end);
            return;
          }
          default:
            break;
        }

        pld_assert(ir::isBinary(e->kind), "unhandled expr in codegen");
        const ExprPtr &lhs = e->args[0];
        const ExprPtr &rhs = e->args[1];
        int fa = lhs->type.fracBits();
        int fb = rhs->type.fracBits();

        if (e->kind == ExprKind::Shl || e->kind == ExprKind::Shr) {
            pld_assert(rhs->kind == ExprKind::Const,
                       "shift amount must be constant");
            int sh = static_cast<int>(rhs->imm);
            evalExpr(lhs);
            shiftPair(a0, a1, e->kind == ExprKind::Shl ? sh : -sh);
            quantize(fa, t);
            return;
        }

        evalExpr(lhs);
        push();
        evalExpr(rhs);
        a.mv(a2, a0);
        a.mv(a3, a1);
        popA2Into(a0, a1);

        switch (e->kind) {
          case ExprKind::Add:
          case ExprKind::Sub: {
            int f = std::max(fa, fb);
            int d = f - t.fracBits();
            // The pair path wraps at 64 bits during alignment and
            // again before the down-quantize; it is only exact when
            // no shift pushes value bits past bit 63 and no
            // down-shift (d > 0) pulls a carry bit back into view.
            if (alignOverflows(lhs->type, f - fa) ||
                alignOverflows(rhs->type, f - fb) || d > 0) {
                widenPairs();
                shiftQuad(xq, f - fa);
                shiftQuad(yq, f - fb);
                addQuad(e->kind == ExprKind::Sub);
                shiftQuad(xq, -d);
                wrapTo(t);
            } else {
                shiftPair(a0, a1, f - fa);
                shiftPair(a2, a3, f - fb);
                addPair(e->kind == ExprKind::Sub);
                quantize(f, t);
            }
            return;
          }
          case ExprKind::Mul: {
            int sh = (fa + fb) - t.fracBits();
            pld_assert(sh >= 0, "mul shift must be non-negative");
            a.li(a4, sh);
            a.call("__pld_mulshift");
            wrapTo(t);
            return;
          }
          case ExprKind::Div: {
            pld_assert(lhs->type.width <= 32 &&
                           rhs->type.width <= 32,
                       "%s: division operands must be <= 32 bits "
                       "(insert casts)",
                       fn.name.c_str());
            int sh = t.fracBits() - fa + fb;
            pld_assert(sh >= 0, "div shift must be non-negative");
            shiftPair(a0, a1, sh);
            a.call("__pld_sdiv64");
            wrapTo(t);
            return;
          }
          case ExprKind::Mod: {
            // Canonical operands are 64-bit (wide Mul intermediates
            // reach them unquantized), so a low-word rem/remu
            // silently diverges from the interpreter's wide
            // remainder — pldfuzz repro mod64_wide. Unsigned
            // canonicals are non-negative in 64 bits, so one signed
            // 64x64 firmware remainder covers both signednesses.
            a.call("__pld_mod64");
            wrapTo(t);
            return;
          }
          case ExprKind::And:
          case ExprKind::Or:
          case ExprKind::Xor: {
            int f = std::max(fa, fb);
            shiftPair(a0, a1, f - fa);
            shiftPair(a2, a3, f - fb);
            if (e->kind == ExprKind::And) {
                a.and_(a0, a0, a2);
                a.and_(a1, a1, a3);
            } else if (e->kind == ExprKind::Or) {
                a.or_(a0, a0, a2);
                a.or_(a1, a1, a3);
            } else {
                a.xor_(a0, a0, a2);
                a.xor_(a1, a1, a3);
            }
            quantize(f, t);
            return;
          }
          case ExprKind::Lt: case ExprKind::Le: case ExprKind::Gt:
          case ExprKind::Ge: case ExprKind::Eq: case ExprKind::Ne: {
            int f = std::max(fa, fb);
            // The interpreter compares aligned operands at full
            // __int128 precision; fall back to the quad compare when
            // alignment could wrap the 64-bit pair.
            if (alignOverflows(lhs->type, f - fa) ||
                alignOverflows(rhs->type, f - fb)) {
                widenPairs();
                shiftQuad(xq, f - fa);
                shiftQuad(yq, f - fb);
                emitCompareWide(e->kind);
            } else {
                shiftPair(a0, a1, f - fa);
                shiftPair(a2, a3, f - fb);
                emitCompare(e->kind);
            }
            return;
          }
          case ExprKind::LAnd:
          case ExprKind::LOr: {
            a.or_(t0, a0, a1);
            a.snez(t0, t0);
            a.or_(t1, a2, a3);
            a.snez(t1, t1);
            if (e->kind == ExprKind::LAnd)
                a.and_(a0, t0, t1);
            else
                a.or_(a0, t0, t1);
            a.li(a1, 0);
            return;
          }
          default:
            pld_panic("unhandled binary kind in codegen");
        }
    }

    void
    popA2Into(Reg lo, Reg hi)
    {
        // Operand order: stack holds lhs; a0:a1 currently rhs.
        // Move rhs to a2:a3 happened before the call; now pop lhs.
        a.lw(lo, sp, 0);
        a.lw(hi, sp, 4);
        a.addi(sp, sp, 8);
    }

    /** Signed 64-bit compare of a0:a1 vs a2:a3 -> a0 in {0,1}. */
    void
    emitCompare(ExprKind k)
    {
        // gt(a,b) = lt(b,a); le(a,b) = !lt(b,a); ge(a,b) = !lt(a,b).
        bool swap = (k == ExprKind::Gt || k == ExprKind::Le);
        bool invert = (k == ExprKind::Le || k == ExprKind::Ge ||
                       k == ExprKind::Ne);
        if (swap) {
            a.mv(t2, a0); a.mv(a0, a2); a.mv(a2, t2);
            a.mv(t2, a1); a.mv(a1, a3); a.mv(a3, t2);
        }
        if (k == ExprKind::Eq || k == ExprKind::Ne) {
            a.xor_(t0, a0, a2);
            a.xor_(t1, a1, a3);
            a.or_(t0, t0, t1);
            a.seqz(a0, t0);
        } else {
            // lt / (le computed as !lt(swapped)).
            std::string l_true = a.genLabel("cmp_t");
            std::string l_false = a.genLabel("cmp_f");
            std::string l_end = a.genLabel("cmp_e");
            a.blt(a1, a3, l_true);
            a.bne(a1, a3, l_false);
            a.bltu(a0, a2, l_true);
            a.label(l_false);
            a.li(a0, 0);
            a.j(l_end);
            a.label(l_true);
            a.li(a0, 1);
            a.label(l_end);
        }
        if (invert)
            a.xori(a0, a0, 1);
        a.li(a1, 0);
    }

    // --- statements --------------------------------------------------

    void
    emitStmts(const std::vector<StmtPtr> &stmts)
    {
        for (const auto &s : stmts)
            emitStmt(s);
    }

    void
    emitStmt(const StmtPtr &s)
    {
        switch (s->kind) {
          case StmtKind::Assign: {
            evalExpr(s->args[0]);
            loadAddr(t0, varOff[s->imm]);
            a.sw(a0, t0, 0);
            break;
          }
          case StmtKind::ArrayStore: {
            evalExpr(s->args[1]); // value first
            push();
            evalExpr(s->args[0]); // index in a0
            const auto &arr = fn.arrays[s->imm];
            int eb = elemBytes(arr.elemType);
            if (eb > 1)
                a.slli(a0, a0, eb == 2 ? 1 : 2);
            loadAddr(t0, arrOff[s->imm]);
            a.add(t0, t0, a0);
            popA2Into(a2, a3);
            if (eb == 1)
                a.sb(a2, t0, 0);
            else if (eb == 2)
                a.sh(a2, t0, 0);
            else
                a.sw(a2, t0, 0);
            break;
          }
          case StmtKind::StreamWrite: {
            evalExpr(s->args[0]);
            loadAddr(t0, Mmio::kStreamBase +
                             static_cast<uint32_t>(s->imm) *
                                 Mmio::kStreamStride);
            a.sw(a0, t0, 0); // ISS blocks here when full
            break;
          }
          case StmtKind::For: {
            // var = lo; while (var < hi) { body; var += step; }
            std::string l_loop = a.genLabel("for");
            std::string l_body = a.genLabel("for_body");
            std::string l_exit = a.genLabel("for_exit");
            a.li(t0, static_cast<int32_t>(s->immLo));
            loadAddr(t1, varOff[s->imm]);
            a.sw(t0, t1, 0);
            a.label(l_loop);
            loadAddr(t1, varOff[s->imm]);
            a.lw(t0, t1, 0);
            a.li(t2, static_cast<int32_t>(s->immHi));
            a.blt(t0, t2, l_body);
            a.j(l_exit);
            a.label(l_body);
            emitStmts(s->body);
            loadAddr(t1, varOff[s->imm]);
            a.lw(t0, t1, 0);
            a.addi(t0, t0, static_cast<int32_t>(s->immStep));
            a.sw(t0, t1, 0);
            a.j(l_loop);
            a.label(l_exit);
            break;
          }
          case StmtKind::While: {
            std::string l_loop = a.genLabel("wh");
            std::string l_body = a.genLabel("wh_body");
            std::string l_exit = a.genLabel("wh_exit");
            a.label(l_loop);
            evalExpr(s->args[0]);
            a.or_(t0, a0, a1);
            a.bne(t0, x0, l_body);
            a.j(l_exit);
            a.label(l_body);
            emitStmts(s->body);
            a.j(l_loop);
            a.label(l_exit);
            break;
          }
          case StmtKind::If: {
            std::string l_else = a.genLabel("if_else");
            std::string l_then = a.genLabel("if_then");
            std::string l_end = a.genLabel("if_end");
            evalExpr(s->args[0]);
            a.or_(t0, a0, a1);
            a.bne(t0, x0, l_then);
            a.j(l_else);
            a.label(l_then);
            emitStmts(s->body);
            a.j(l_end);
            a.label(l_else);
            emitStmts(s->elseBody);
            a.label(l_end);
            break;
          }
          case StmtKind::Print: {
            // printf lives naturally on the processor target
            // (Fig 2d lines 8-10).
            loadAddr(t1, Mmio::kConsolePutc);
            for (char ch : s->text) {
                a.li(t0, ch);
                a.sw(t0, t1, 0);
            }
            for (const auto &arg : s->args) {
                a.li(t0, ' ');
                a.sw(t0, t1, 0);
                evalExpr(arg);
                a.call("__pld_puthex");
            }
            a.li(t0, '\n');
            loadAddr(t1, Mmio::kConsolePutc);
            a.sw(t0, t1, 0);
            break;
          }
          case StmtKind::Block:
            emitStmts(s->body);
            break;
        }
    }

    void
    emitBody()
    {
        emitStmts(fn.body);
        // Operator complete: halt the core.
        loadAddr(t0, Mmio::kHalt);
        a.sw(x0, t0, 0);
        a.ebreak();
    }

    const ir::OperatorFn &fn;
    Assembler a;
    std::vector<uint32_t> varOff;
    std::vector<uint32_t> arrOff;
    uint32_t dataBase = 0;
    std::vector<uint8_t> dataImage;
};

/**
 * -Os pipeline: isel -> peephole -> linear scan -> assemble. Unlike
 * the -O0 path, capacity overruns throw (the retry ladder catches and
 * falls back to the -O0 rung instead of dying).
 */
PldElf
compileOs(const ir::OperatorFn &fn, const RvOptions &opt, RvResult &r)
{
    IselResult sel = selectInstructions(fn);
    r.constantsFolded =
        sel.constantsFolded + sel.strengthReduced + sel.inlinedMuls;
    r.peepholeRemoved = peephole(sel.mir);
    RegAllocOptions rao;
    rao.regBudget = opt.regBudget;
    RegAllocStats ra = allocateRegisters(sel.mir, rao);
    r.spills = ra.spilledVregs;
    r.mirInstructions = static_cast<int>(sel.mir.code.size());

    Assembler a;
    emitMir(a, sel.mir);
    emitFirmware(a);

    PldElf elf;
    elf.text = a.assemble();
    uint32_t text_bytes = static_cast<uint32_t>(elf.text.size()) * 4;
    if (text_bytes > sel.dataBase)
        throw std::runtime_error(
            fn.name + ": -Os text (" + std::to_string(text_bytes) +
            " bytes) overran the reserved code region");
    elf.dataBase = sel.dataBase;
    elf.data = sel.dataImage;
    // The spill frame sits below the initial sp; leave it headroom on
    // top of the usual 4 KB stack reserve.
    uint32_t stack = std::max(
        4096u, static_cast<uint32_t>(ra.frameBytes) + 256);
    uint32_t need = sel.dataBase +
                    static_cast<uint32_t>(sel.dataImage.size()) +
                    stack;
    uint32_t mem = 16 * 1024;
    while (mem < need)
        mem *= 2;
    if (mem > 192 * 1024)
        throw std::runtime_error(
            fn.name + ": -Os softcore image needs " +
            std::to_string(need) +
            " bytes but pages offer at most 192 KB");
    elf.memBytes = mem;
    elf.entry = 0;
    return elf;
}

} // namespace

const char *
tierName(Tier t)
{
    return t == Tier::Os ? "Os" : "O0";
}

RvResult
compileToRiscv(const ir::OperatorFn &fn)
{
    Stopwatch sw;
    Codegen cg(fn);
    RvResult r;
    r.elf = cg.compile();
    r.elf.pageNum = fn.pragma.pageNum;
    r.instructions = static_cast<int>(r.elf.text.size());
    r.seconds = sw.seconds();
    return r;
}

RvResult
compileToRiscv(const ir::OperatorFn &fn, const RvOptions &opt)
{
    if (opt.tier == Tier::O0)
        return compileToRiscv(fn);
    Stopwatch sw;
    RvResult r;
    r.tier = Tier::Os;
    r.elf = compileOs(fn, opt, r);
    r.elf.pageNum = fn.pragma.pageNum;
    r.instructions = static_cast<int>(r.elf.text.size());
    r.seconds = sw.seconds();
    return r;
}

} // namespace rvgen
} // namespace pld
