/**
 * @file
 * Virtual-register machine IR for the optimizing (-Os) softcore tier.
 *
 * The -Os pipeline lowers operator IR to this MIR (isel), optimizes
 * it (peephole), assigns physical registers (regalloc), and finally
 * emits RV32IM through the same rv32::Assembler the -O0 tier uses.
 *
 * Shape: a flat instruction list over an unbounded set of 32-bit
 * virtual registers. 64-bit canonical values travel as (lo, hi)
 * vreg pairs; control flow is labels + short-range conditional
 * branches + long-range jumps, exactly the discipline the -O0 tier
 * already uses so the assembler's branch reach is never exceeded.
 *
 * Register operands are plain ints: 0..31 name physical RV32
 * registers (rv32::Reg numbering), kVregBase and above are virtual.
 * Instruction selection only ever emits physical registers for the
 * firmware-call ABI (a0..a4), x0, and the MMIO/halt stores; the
 * allocator assigns virtuals to callee-saved s-registers (which the
 * firmware routines never clobber) and uses gp/tp as spill scratch.
 *
 * The textual form printed by printMir() parses back via parseMir()
 * (round-trip tested), which is also how the peephole golden tests
 * state their expectations.
 */

#ifndef PLD_RVGEN_MIR_H
#define PLD_RVGEN_MIR_H

#include <cstdint>
#include <string>
#include <vector>

namespace pld {
namespace rv32 {
class Assembler;
}
namespace rvgen {

/** First virtual register number; 0..31 are physical. */
constexpr int kVregBase = 32;

inline bool
isVreg(int r)
{
    return r >= kVregBase;
}

/** MIR opcodes: RV32IM operations plus structural pseudo-ops. */
enum class MOp : uint8_t {
    // rd, rs1, rs2
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    // rd, rs1, imm
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    // rd, imm(rs1)
    Lb, Lh, Lw, Lbu, Lhu,
    // rs2, imm(rs1) — value, offset(base)
    Sb, Sh, Sw,
    // rd, imm (any 32-bit constant; expands to lui+addi)
    Li,
    // rd, rs1
    Copy,
    // rs1, rs2, label
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    J,      ///< label
    Label,  ///< label definition
    Call,   ///< label = firmware symbol; fixed physical-reg ABI
    Ebreak, ///< trap (end of program, after the halt MMIO store)
};

const char *mopName(MOp op);

/** One MIR instruction. Unused register fields stay -1. */
struct MInst
{
    MOp op;
    int rd = -1;
    int rs1 = -1;
    int rs2 = -1;
    int32_t imm = 0;
    std::string label;
    /** MMIO access (stream/console/halt): never CSE'd or removed. */
    bool vol = false;
};

/** Def/use sets of one instruction (virtual or physical regs). */
struct DefUse
{
    int def = -1;
    int use[2] = {-1, -1};
    int nuse = 0;
};

DefUse instDefUse(const MInst &inst);

/** True for ops that write a destination register. */
bool mopHasDst(MOp op);
/** True for register-only ops with no memory/control side effects
    (Li, Copy, ALU): safe to CSE and to dead-code eliminate. */
bool mopIsPure(MOp op);
bool mopIsLoad(MOp op);
bool mopIsStore(MOp op);
/** Conditional branches only (not J). */
bool mopIsBranch(MOp op);

/** A MIR function under construction. */
struct MFunction
{
    std::vector<MInst> code;
    int nextVreg = kVregBase;
    int labelCounter = 0;

    int
    newVreg()
    {
        return nextVreg++;
    }

    std::string
    genLabel(const std::string &stem)
    {
        return stem + "_" + std::to_string(labelCounter++);
    }
};

/** Textual form: one instruction per line, labels unindented. */
std::string printMir(const MFunction &f);

/** Parse printMir() output back. False (with *err set) on garbage. */
bool parseMir(const std::string &text, MFunction *out,
              std::string *err);

/**
 * Emit a fully physical MIR function (post-regalloc) through the
 * two-pass assembler. Asserts no virtual registers remain.
 */
void emitMir(rv32::Assembler &a, const MFunction &f);

} // namespace rvgen
} // namespace pld

#endif // PLD_RVGEN_MIR_H
