#include "rvgen/firmware.h"

#include <string>

#include "rv32/asm.h"
#include "rv32/iss.h"

namespace pld {
namespace rvgen {

using namespace pld::rv32;
using ir::Type;

int
elemBytes(const Type &t)
{
    if (t.width <= 8)
        return 1;
    if (t.width <= 16)
        return 2;
    return 4;
}

int64_t
canonicalRaw(uint64_t bits, const Type &t)
{
    if (t.width < 64)
        bits &= (1ull << t.width) - 1;
    if (t.isSigned() && t.width < 64) {
        uint64_t m = 1ull << (t.width - 1);
        return static_cast<int64_t>((bits ^ m) - m);
    }
    return static_cast<int64_t>(bits);
}

namespace {

void
emitMulshift(Assembler &a)
{
    a.label("__pld_mulshift");
    // Unsigned 128-bit product into t0..t3.
    a.mul(t0, a0, a2);   // w0
    a.mulhu(t1, a0, a2); // w1 acc
    a.li(t2, 0);
    a.li(t3, 0);
    // + alo*bhi << 32
    a.mul(t4, a0, a3);
    a.add(t1, t1, t4);
    a.sltu(t5, t1, t4);
    a.add(t2, t2, t5);
    a.mulhu(t4, a0, a3);
    a.add(t2, t2, t4);
    a.sltu(t5, t2, t4);
    a.add(t3, t3, t5);
    // + ahi*blo << 32
    a.mul(t4, a1, a2);
    a.add(t1, t1, t4);
    a.sltu(t5, t1, t4);
    a.add(t2, t2, t5);
    a.sltu(t6, t2, t5);
    a.add(t3, t3, t6);
    a.mulhu(t4, a1, a2);
    a.add(t2, t2, t4);
    a.sltu(t5, t2, t4);
    a.add(t3, t3, t5);
    // + ahi*bhi << 64
    a.mul(t4, a1, a3);
    a.add(t2, t2, t4);
    a.sltu(t5, t2, t4);
    a.add(t3, t3, t5);
    a.mulhu(t4, a1, a3);
    a.add(t3, t3, t4);
    // Sign corrections: if A < 0, upper64 -= B; if B < 0,
    // upper64 -= A.
    std::string skip_a = a.genLabel("ms_skipa");
    std::string skip_b = a.genLabel("ms_skipb");
    a.bge(a1, x0, skip_a);
    a.sltu(t5, t2, a2);
    a.sub(t2, t2, a2);
    a.sub(t3, t3, a3);
    a.sub(t3, t3, t5);
    a.label(skip_a);
    a.bge(a3, x0, skip_b);
    a.sltu(t5, t2, a0);
    a.sub(t2, t2, a0);
    a.sub(t3, t3, a1);
    a.sub(t3, t3, t5);
    a.label(skip_b);
    // Arithmetic shift right of t0..t3 by a4.
    std::string word_loop = a.genLabel("ms_words");
    std::string fine = a.genLabel("ms_fine");
    std::string done = a.genLabel("ms_done");
    a.label(word_loop);
    a.li(t4, 32);
    a.blt(a4, t4, fine);
    a.mv(t0, t1);
    a.mv(t1, t2);
    a.mv(t2, t3);
    a.srai(t3, t3, 31);
    a.addi(a4, a4, -32);
    a.j(word_loop);
    a.label(fine);
    a.beq(a4, x0, done);
    a.li(t4, 32);
    a.sub(t4, t4, a4); // 32 - s
    a.srl(t0, t0, a4);
    a.sll(t5, t1, t4);
    a.or_(t0, t0, t5);
    a.srl(t1, t1, a4);
    a.sll(t5, t2, t4);
    a.or_(t1, t1, t5);
    a.label(done);
    a.mv(a0, t0);
    a.mv(a1, t1);
    a.ret();
}

void
emitSdiv64(Assembler &a)
{
    a.label("__pld_sdiv64");
    std::string nz = a.genLabel("dv_nz");
    std::string na = a.genLabel("dv_na");
    std::string nb = a.genLabel("dv_nb");
    std::string loop = a.genLabel("dv_loop");
    std::string skip = a.genLabel("dv_skip");
    std::string dosub = a.genLabel("dv_sub");
    std::string pos = a.genLabel("dv_pos");

    a.or_(t0, a2, a3);
    a.bne(t0, x0, nz);
    a.li(a0, 0);
    a.li(a1, 0);
    a.ret();
    a.label(nz);

    // a5 = result sign (0/1).
    a.srli(t0, a1, 31);
    a.srli(t1, a3, 31);
    a.xor_(a5, t0, t1);
    // |A|
    a.bge(a1, x0, na);
    a.not_(a0, a0);
    a.not_(a1, a1);
    a.addi(a0, a0, 1);
    a.seqz(t0, a0);
    a.add(a1, a1, t0);
    a.label(na);
    // |d| (fits 32 unsigned).
    a.bge(a3, x0, nb);
    a.neg(a2, a2);
    a.label(nb);

    // Long division: quotient t0:t1, remainder t2:t3, counter t4.
    a.li(t0, 0);
    a.li(t1, 0);
    a.li(t2, 0);
    a.li(t3, 0);
    a.li(t4, 64);
    a.label(loop);
    // bit = msb of A; A <<= 1.
    a.srli(t5, a1, 31);
    a.slli(a1, a1, 1);
    a.srli(t6, a0, 31);
    a.or_(a1, a1, t6);
    a.slli(a0, a0, 1);
    // rem = rem<<1 | bit.
    a.slli(t3, t3, 1);
    a.srli(t6, t2, 31);
    a.or_(t3, t3, t6);
    a.slli(t2, t2, 1);
    a.or_(t2, t2, t5);
    // q <<= 1.
    a.slli(t1, t1, 1);
    a.srli(t6, t0, 31);
    a.or_(t1, t1, t6);
    a.slli(t0, t0, 1);
    // if rem >= d: rem -= d; q |= 1.
    a.bne(t3, x0, dosub);
    a.bltu(t2, a2, skip);
    a.label(dosub);
    a.sltu(t6, t2, a2);
    a.sub(t2, t2, a2);
    a.sub(t3, t3, t6);
    a.ori(t0, t0, 1);
    a.label(skip);
    a.addi(t4, t4, -1);
    a.bne(t4, x0, loop);

    // Apply sign.
    a.mv(a0, t0);
    a.mv(a1, t1);
    a.beq(a5, x0, pos);
    a.not_(a0, a0);
    a.not_(a1, a1);
    a.addi(a0, a0, 1);
    a.seqz(t0, a0);
    a.add(a1, a1, t0);
    a.label(pos);
    a.ret();
}

void
emitMod64(Assembler &a)
{
    a.label("__pld_mod64");
    std::string nz = a.genLabel("md_nz");
    std::string na = a.genLabel("md_na");
    std::string nb = a.genLabel("md_nb");
    std::string loop = a.genLabel("md_loop");
    std::string dosub = a.genLabel("md_sub");
    std::string skip = a.genLabel("md_skip");
    std::string pos = a.genLabel("md_pos");

    a.or_(t0, a2, a3);
    a.bne(t0, x0, nz);
    a.li(a0, 0);
    a.li(a1, 0);
    a.ret();
    a.label(nz);

    // a5 = result sign = sign of the dividend.
    a.srli(a5, a1, 31);
    // |A|
    a.bge(a1, x0, na);
    a.not_(a0, a0);
    a.not_(a1, a1);
    a.addi(a0, a0, 1);
    a.seqz(t0, a0);
    a.add(a1, a1, t0);
    a.label(na);
    // |B|
    a.bge(a3, x0, nb);
    a.not_(a2, a2);
    a.not_(a3, a3);
    a.addi(a2, a2, 1);
    a.seqz(t0, a2);
    a.add(a3, a3, t0);
    a.label(nb);

    // Shift-subtract with a 64-bit remainder in t2:t3 and a
    // 64-bit divisor in a2:a3; the quotient is not kept.
    a.li(t2, 0);
    a.li(t3, 0);
    a.li(t4, 64);
    a.label(loop);
    // bit = msb of A; A <<= 1.
    a.srli(t5, a1, 31);
    a.slli(a1, a1, 1);
    a.srli(t6, a0, 31);
    a.or_(a1, a1, t6);
    a.slli(a0, a0, 1);
    // rem = rem<<1 | bit.
    a.slli(t3, t3, 1);
    a.srli(t6, t2, 31);
    a.or_(t3, t3, t6);
    a.slli(t2, t2, 1);
    a.or_(t2, t2, t5);
    // if rem >= d (unsigned 64-bit): rem -= d.
    a.bltu(t3, a3, skip);
    a.bne(t3, a3, dosub);
    a.bltu(t2, a2, skip);
    a.label(dosub);
    a.sltu(t6, t2, a2);
    a.sub(t2, t2, a2);
    a.sub(t3, t3, a3);
    a.sub(t3, t3, t6);
    a.label(skip);
    a.addi(t4, t4, -1);
    a.bne(t4, x0, loop);

    // Apply the dividend's sign.
    a.mv(a0, t2);
    a.mv(a1, t3);
    a.beq(a5, x0, pos);
    a.not_(a0, a0);
    a.not_(a1, a1);
    a.addi(a0, a0, 1);
    a.seqz(t0, a0);
    a.add(a1, a1, t0);
    a.label(pos);
    a.ret();
}

void
emitPuthex(Assembler &a)
{
    a.label("__pld_puthex");
    std::string loop = a.genLabel("ph_loop");
    std::string digit = a.genLabel("ph_digit");
    a.li(t1, static_cast<int32_t>(Mmio::kConsolePutc));
    a.li(t2, 8);
    a.label(loop);
    a.srli(t0, a0, 28);
    a.li(t3, 10);
    a.blt(t0, t3, digit);
    a.addi(t0, t0, 'a' - 10 - '0');
    a.label(digit);
    a.addi(t0, t0, '0');
    a.sw(t0, t1, 0);
    a.slli(a0, a0, 4);
    a.addi(t2, t2, -1);
    a.bne(t2, x0, loop);
    a.ret();
}

} // namespace

void
emitFirmware(Assembler &a)
{
    emitMulshift(a);
    emitSdiv64(a);
    emitMod64(a);
    emitPuthex(a);
}

} // namespace rvgen
} // namespace pld
