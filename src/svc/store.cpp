#include "svc/store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace pld {
namespace svc {

namespace {

constexpr uint32_t kStoreMagic = 0x504C4453; // "PLDS"
constexpr uint32_t kStoreVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;

std::string
keyHex(uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

uint64_t
payloadChecksum(const std::vector<uint8_t> &payload)
{
    Hasher h;
    h.bytes(payload.data(), payload.size());
    return h.digest();
}

void
putLe32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putLe64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getLe32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getLe64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Parse one "hex seq" index line; false on any damage (short
 * line, bad hex, bad number, trailing junk). */
bool
parseIndexLine(const std::string &line, uint64_t *key,
               uint64_t *seq)
{
    std::istringstream ls(line);
    std::string hex, num, extra;
    if (!(ls >> hex >> num) || (ls >> extra))
        return false;
    char *endp = nullptr;
    *key = std::strtoull(hex.c_str(), &endp, 16);
    if (hex.empty() || endp != hex.c_str() + hex.size())
        return false;
    *seq = std::strtoull(num.c_str(), &endp, 10);
    if (num.empty() || endp != num.c_str() + num.size())
        return false;
    return true;
}

} // namespace

ArtifactStore::ArtifactStore(std::string dir, uint64_t budget_bytes,
                             std::shared_ptr<Vfs> vfs)
    : dir_(std::move(dir)), budget_(budget_bytes),
      vfs_(vfs ? std::move(vfs) : systemVfs())
{
    IoStatus st = vfs_->mkdirs(dir_);
    if (!st.ok())
        pld_fatal("artifact store: cannot create %s: %s",
                  dir_.c_str(), st.message().c_str());
    std::lock_guard<std::mutex> lk(mtx_);
    loadIndexLocked();
    vfs_->crashPoint("store.open.recovered");
}

ArtifactStore::~ArtifactStore()
{
    std::lock_guard<std::mutex> lk(mtx_);
    persistIndexLocked();
}

std::string
ArtifactStore::entryPath(uint64_t key) const
{
    return dir_ + "/" + keyHex(key) + ".art";
}

void
ArtifactStore::noteIoError(const char *what, const std::string &path,
                           const IoStatus &st)
{
    ++stats_.ioErrors;
    obs::count("svc.store.io_errors");
    if (st.err == ENOSPC && !degraded_.exchange(true))
        pld_warn("artifact store: disk full; degraded mode — "
                 "serving cached entries and in-memory results "
                 "only until a write succeeds");
    pld_warn("artifact store: %s %s failed: %s", what, path.c_str(),
             st.message().c_str());
}

void
ArtifactStore::loadIndexLocked()
{
    // 1. Crash-recovery scan. A '*.tmp' is a put() or index write
    //    the previous process never renamed — by construction the
    //    entry files themselves are either whole or absent, so the
    //    tmp is the only torn shape a crash can leave. Quarantine
    //    rather than delete: postmortems want the bytes.
    std::vector<DirEntry> files;
    IoStatus st = vfs_->listDir(dir_, &files);
    if (!st.ok())
        pld_fatal("artifact store: cannot scan %s: %s",
                  dir_.c_str(), st.message().c_str());
    std::map<uint64_t, int64_t> mtimes;
    for (const auto &f : files) {
        if (endsWith(f.name, ".tmp")) {
            std::string qdir = dir_ + "/quarantine";
            vfs_->mkdirs(qdir);
            IoStatus mv = vfs_->rename(dir_ + "/" + f.name,
                                       qdir + "/" + f.name);
            if (!mv.ok())
                vfs_->remove(dir_ + "/" + f.name);
            ++stats_.quarantined;
            obs::count("svc.store.quarantined");
            pld_warn("artifact store: quarantined half-written %s",
                     f.name.c_str());
            continue;
        }
        if (!endsWith(f.name, ".art"))
            continue;
        std::vector<uint8_t> hdr;
        if (!vfs_->readFile(dir_ + "/" + f.name, &hdr, kHeaderBytes)
                 .ok() ||
            hdr.size() < kHeaderBytes)
            continue; // torn header: ignored; get() will miss it
        if (getLe32(hdr.data()) != kStoreMagic ||
            getLe32(hdr.data() + 4) != kStoreVersion)
            continue;
        uint64_t key = getLe64(hdr.data() + 8);
        Entry e;
        e.size = getLe64(hdr.data() + 16);
        entries_[key] = e;
        bytes_ += e.size;
        mtimes[key] = f.mtimeNs;
    }

    // 2. Recency from the persisted index, tolerating any damage a
    //    crash can inflict: a truncated final line, duplicated keys
    //    (last write wins), keys with no entry file (ignored), and
    //    outright garbage lines are all skipped — never a crash,
    //    never a full-store invalidation.
    std::map<uint64_t, uint64_t> indexed; // key -> seq
    std::vector<uint8_t> idx_bytes;
    if (vfs_->readFile(dir_ + "/lru.txt", &idx_bytes).ok()) {
        std::istringstream idx(std::string(idx_bytes.begin(),
                                           idx_bytes.end()));
        std::string line;
        while (std::getline(idx, line)) {
            if (line.empty())
                continue;
            uint64_t key = 0, seq = 0;
            if (!parseIndexLine(line, &key, &seq))
                continue;
            if (entries_.count(key))
                indexed[key] = seq;
        }
    }

    // 3. Entries the index does not cover rank oldest, ordered by
    //    file mtime (ties by key) — a rebuilt recency, not a guess
    //    that punishes every survivor of a lost index equally.
    std::vector<std::pair<int64_t, uint64_t>> unindexed;
    for (const auto &[key, e] : entries_) {
        if (!indexed.count(key)) {
            unindexed.emplace_back(mtimes[key], key);
            ++stats_.recencyRebuilt;
            obs::count("svc.store.recency_rebuilt");
        }
    }
    std::sort(unindexed.begin(), unindexed.end());
    std::vector<std::pair<uint64_t, uint64_t>> by_seq; // (seq, key)
    for (const auto &[key, seq] : indexed)
        by_seq.emplace_back(seq, key);
    std::sort(by_seq.begin(), by_seq.end());

    // Renumber everything 1..N: unindexed (oldest) first, then the
    // indexed entries in their persisted order.
    uint64_t next = 0;
    for (const auto &[mtime, key] : unindexed)
        entries_[key].seq = ++next;
    for (const auto &[seq, key] : by_seq)
        entries_[key].seq = ++next;
    seqCounter_ = next;
}

void
ArtifactStore::persistIndexLocked()
{
    std::ostringstream os;
    for (const auto &[key, e] : entries_)
        os << keyHex(key) << " " << e.seq << "\n";
    const std::string text = os.str();

    std::string tmp = dir_ + "/lru.txt.tmp";
    IoStatus st = vfs_->writeFile(
        tmp, reinterpret_cast<const uint8_t *>(text.data()),
        text.size(), /*sync=*/true);
    if (!st.ok()) {
        noteIoError("index write of", tmp, st);
        vfs_->remove(tmp);
        return; // stale lru.txt: recency degrades, data unaffected
    }
    vfs_->crashPoint("store.index.tmp_written");
    st = vfs_->rename(tmp, dir_ + "/lru.txt");
    if (!st.ok()) {
        noteIoError("index rename of", tmp, st);
        vfs_->remove(tmp);
        return;
    }
    vfs_->crashPoint("store.index.renamed");
}

std::optional<std::vector<uint8_t>>
ArtifactStore::get(uint64_t key)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        obs::count("svc.store.misses");
        return std::nullopt;
    }

    auto evict = [&](const char *why) {
        vfs_->remove(entryPath(key));
        bytes_ -= it->second.size;
        entries_.erase(it);
        ++stats_.corrupt;
        ++stats_.misses;
        obs::count("svc.store.corrupt");
        obs::count("svc.store.misses");
        vfs_->crashPoint("store.get.evicted");
        persistIndexLocked();
        pld_warn("artifact store: entry %s %s; evicted for "
                 "recompile",
                 keyHex(key).c_str(), why);
    };

    vfs_->crashPoint("store.get.before_read");
    std::vector<uint8_t> bytes;
    IoStatus st = vfs_->readFile(entryPath(key), &bytes);
    if (!st.ok()) {
        ++stats_.ioErrors;
        obs::count("svc.store.io_errors");
        evict("is unreadable");
        return std::nullopt;
    }
    if (bytes.size() < kHeaderBytes) {
        evict("lost its header");
        return std::nullopt;
    }
    if (getLe32(bytes.data()) != kStoreMagic ||
        getLe32(bytes.data() + 4) != kStoreVersion ||
        getLe64(bytes.data() + 8) != key) {
        evict("has a corrupt header");
        return std::nullopt;
    }
    uint64_t size = getLe64(bytes.data() + 16);
    uint64_t sum = getLe64(bytes.data() + 24);
    if (bytes.size() != kHeaderBytes + size) {
        evict("is truncated");
        return std::nullopt;
    }
    std::vector<uint8_t> payload(bytes.begin() + kHeaderBytes,
                                 bytes.end());
    if (payloadChecksum(payload) != sum) {
        evict("failed its checksum");
        return std::nullopt;
    }

    it->second.seq = ++seqCounter_;
    persistIndexLocked();
    ++stats_.hits;
    obs::count("svc.store.hits");
    return payload;
}

void
ArtifactStore::evictForLocked(uint64_t incoming_bytes)
{
    while (bytes_ + incoming_bytes > budget_ && !entries_.empty()) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (victim == entries_.end() ||
                it->second.seq < victim->second.seq)
                victim = it;
        }
        vfs_->remove(entryPath(victim->first));
        vfs_->crashPoint("store.evict.removed");
        bytes_ -= victim->second.size;
        entries_.erase(victim);
        ++stats_.evictions;
        obs::count("svc.store.evictions");
    }
}

bool
ArtifactStore::put(uint64_t key, const std::vector<uint8_t> &payload)
{
    std::lock_guard<std::mutex> lk(mtx_);
    vfs_->crashPoint("store.put.begin");
    if (payload.size() > budget_) {
        ++stats_.oversize;
        obs::count("svc.store.oversize");
        pld_warn("artifact store: payload of %zu bytes exceeds the "
                 "whole %llu-byte budget; not stored",
                 payload.size(),
                 static_cast<unsigned long long>(budget_));
        return false;
    }

    // Overwrite = remove then insert (budget math stays simple).
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        bytes_ -= it->second.size;
        entries_.erase(it);
    }
    evictForLocked(payload.size());

    std::vector<uint8_t> buf(kHeaderBytes + payload.size());
    putLe32(buf.data(), kStoreMagic);
    putLe32(buf.data() + 4, kStoreVersion);
    putLe64(buf.data() + 8, key);
    putLe64(buf.data() + 16, payload.size());
    putLe64(buf.data() + 24, payloadChecksum(payload));
    std::copy(payload.begin(), payload.end(),
              buf.begin() + kHeaderBytes);

    // Durability order: tmp written + fsynced, renamed over the
    // entry, directory fsynced, and only then the index — so a
    // crash at ANY point leaves either the old entry, no entry, or
    // the complete new entry, never a torn one (the tmp is
    // quarantined by the next open's recovery scan).
    std::string tmp = entryPath(key) + ".tmp";
    IoStatus st =
        vfs_->writeFile(tmp, buf.data(), buf.size(), /*sync=*/true);
    if (!st.ok()) {
        noteIoError("write of", tmp, st);
        vfs_->remove(tmp);
        return false;
    }
    vfs_->crashPoint("store.put.tmp_written");
    st = vfs_->rename(tmp, entryPath(key));
    if (!st.ok()) {
        noteIoError("rename of", tmp, st);
        vfs_->remove(tmp);
        return false;
    }
    vfs_->crashPoint("store.put.entry_renamed");
    st = vfs_->syncDir(dir_);
    if (!st.ok()) // entry is live; durability of the rename is at
        noteIoError("directory sync of", dir_, st); // risk, data ok
    vfs_->crashPoint("store.put.dir_synced");

    Entry e;
    e.size = payload.size();
    e.seq = ++seqCounter_;
    entries_[key] = e;
    bytes_ += e.size;
    ++stats_.puts;
    obs::count("svc.store.puts");
    persistIndexLocked();
    vfs_->crashPoint("store.put.done");
    degraded_.store(false); // a durable put ends ENOSPC degradation
    return true;
}

bool
ArtifactStore::contains(uint64_t key) const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return entries_.count(key) != 0;
}

uint64_t
ArtifactStore::bytesStored() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return bytes_;
}

size_t
ArtifactStore::entryCount() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return entries_.size();
}

std::vector<uint64_t>
ArtifactStore::keysByRecency() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    std::vector<std::pair<uint64_t, uint64_t>> order; // (seq, key)
    for (const auto &[key, e] : entries_)
        order.emplace_back(e.seq, key);
    std::sort(order.begin(), order.end());
    std::vector<uint64_t> keys;
    for (const auto &[seq, key] : order)
        keys.push_back(key);
    return keys;
}

} // namespace svc
} // namespace pld
