#include "svc/store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace fs = std::filesystem;

namespace pld {
namespace svc {

namespace {

constexpr uint32_t kStoreMagic = 0x504C4453; // "PLDS"
constexpr uint32_t kStoreVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;

std::string
keyHex(uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

uint64_t
payloadChecksum(const std::vector<uint8_t> &payload)
{
    Hasher h;
    h.bytes(payload.data(), payload.size());
    return h.digest();
}

void
putLe32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putLe64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t
getLe32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getLe64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

ArtifactStore::ArtifactStore(std::string dir, uint64_t budget_bytes)
    : dir_(std::move(dir)), budget_(budget_bytes)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        pld_fatal("artifact store: cannot create %s: %s",
                  dir_.c_str(), ec.message().c_str());
    std::lock_guard<std::mutex> lk(mtx_);
    loadIndexLocked();
}

ArtifactStore::~ArtifactStore()
{
    std::lock_guard<std::mutex> lk(mtx_);
    persistIndexLocked();
}

std::string
ArtifactStore::entryPath(uint64_t key) const
{
    return dir_ + "/" + keyHex(key) + ".art";
}

void
ArtifactStore::loadIndexLocked()
{
    // 1. Scan entry files for existence and payload size.
    for (const auto &de : fs::directory_iterator(dir_)) {
        if (!de.is_regular_file() ||
            de.path().extension() != ".art")
            continue;
        std::ifstream f(de.path(), std::ios::binary);
        uint8_t hdr[kHeaderBytes];
        if (!f.read(reinterpret_cast<char *>(hdr), kHeaderBytes))
            continue; // torn header: ignored; get() will miss it
        if (getLe32(hdr) != kStoreMagic ||
            getLe32(hdr + 4) != kStoreVersion)
            continue;
        uint64_t key = getLe64(hdr + 8);
        Entry e;
        e.size = getLe64(hdr + 16);
        entries_[key] = e; // seq 0: oldest until the index says more
        bytes_ += e.size;
    }

    // 2. Recency from the persisted index; unknown keys keep seq 0
    //    and therefore rank oldest, ordered among themselves by key
    //    (std::map iteration order — deterministic).
    std::ifstream idx(dir_ + "/lru.txt");
    std::string hex;
    uint64_t seq;
    while (idx >> hex >> seq) {
        uint64_t key = std::strtoull(hex.c_str(), nullptr, 16);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            it->second.seq = seq;
            seqCounter_ = std::max(seqCounter_, seq);
        }
    }
}

void
ArtifactStore::persistIndexLocked() const
{
    std::string tmp = dir_ + "/lru.txt.tmp";
    {
        std::ofstream f(tmp, std::ios::trunc);
        for (const auto &[key, e] : entries_)
            f << keyHex(key) << " " << e.seq << "\n";
    }
    std::error_code ec;
    fs::rename(tmp, dir_ + "/lru.txt", ec);
}

std::optional<std::vector<uint8_t>>
ArtifactStore::get(uint64_t key)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        obs::count("svc.store.misses");
        return std::nullopt;
    }

    auto evict = [&](const char *why) {
        std::error_code ec;
        fs::remove(entryPath(key), ec);
        bytes_ -= it->second.size;
        entries_.erase(it);
        ++stats_.corrupt;
        ++stats_.misses;
        obs::count("svc.store.corrupt");
        obs::count("svc.store.misses");
        persistIndexLocked();
        pld_warn("artifact store: entry %s %s; evicted for "
                 "recompile",
                 keyHex(key).c_str(), why);
    };

    std::ifstream f(entryPath(key), std::ios::binary);
    uint8_t hdr[kHeaderBytes];
    if (!f.read(reinterpret_cast<char *>(hdr), kHeaderBytes)) {
        evict("lost its header");
        return std::nullopt;
    }
    if (getLe32(hdr) != kStoreMagic ||
        getLe32(hdr + 4) != kStoreVersion ||
        getLe64(hdr + 8) != key) {
        evict("has a corrupt header");
        return std::nullopt;
    }
    uint64_t size = getLe64(hdr + 16);
    uint64_t sum = getLe64(hdr + 24);
    std::vector<uint8_t> payload(static_cast<size_t>(size));
    if (size > 0 &&
        !f.read(reinterpret_cast<char *>(payload.data()),
                static_cast<std::streamsize>(size))) {
        evict("is truncated");
        return std::nullopt;
    }
    if (payloadChecksum(payload) != sum) {
        evict("failed its checksum");
        return std::nullopt;
    }

    it->second.seq = ++seqCounter_;
    persistIndexLocked();
    ++stats_.hits;
    obs::count("svc.store.hits");
    return payload;
}

void
ArtifactStore::evictForLocked(uint64_t incoming_bytes)
{
    while (bytes_ + incoming_bytes > budget_ && !entries_.empty()) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (victim == entries_.end() ||
                it->second.seq < victim->second.seq)
                victim = it;
        }
        std::error_code ec;
        fs::remove(entryPath(victim->first), ec);
        bytes_ -= victim->second.size;
        entries_.erase(victim);
        ++stats_.evictions;
        obs::count("svc.store.evictions");
    }
}

void
ArtifactStore::put(uint64_t key, const std::vector<uint8_t> &payload)
{
    std::lock_guard<std::mutex> lk(mtx_);
    if (payload.size() > budget_) {
        ++stats_.oversize;
        obs::count("svc.store.oversize");
        pld_warn("artifact store: payload of %zu bytes exceeds the "
                 "whole %llu-byte budget; not stored",
                 payload.size(),
                 static_cast<unsigned long long>(budget_));
        return;
    }

    // Overwrite = remove then insert (budget math stays simple).
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        bytes_ -= it->second.size;
        entries_.erase(it);
    }
    evictForLocked(payload.size());

    std::string tmp = entryPath(key) + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        uint8_t hdr[kHeaderBytes];
        putLe32(hdr, kStoreMagic);
        putLe32(hdr + 4, kStoreVersion);
        putLe64(hdr + 8, key);
        putLe64(hdr + 16, payload.size());
        putLe64(hdr + 24, payloadChecksum(payload));
        f.write(reinterpret_cast<const char *>(hdr), kHeaderBytes);
        if (!payload.empty())
            f.write(reinterpret_cast<const char *>(payload.data()),
                    static_cast<std::streamsize>(payload.size()));
        if (!f) {
            pld_warn("artifact store: write of %s failed; entry "
                     "not stored",
                     tmp.c_str());
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, entryPath(key), ec);
    if (ec) {
        pld_warn("artifact store: rename of %s failed: %s",
                 tmp.c_str(), ec.message().c_str());
        fs::remove(tmp, ec);
        return;
    }

    Entry e;
    e.size = payload.size();
    e.seq = ++seqCounter_;
    entries_[key] = e;
    bytes_ += e.size;
    ++stats_.puts;
    obs::count("svc.store.puts");
    persistIndexLocked();
}

bool
ArtifactStore::contains(uint64_t key) const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return entries_.count(key) != 0;
}

uint64_t
ArtifactStore::bytesStored() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return bytes_;
}

size_t
ArtifactStore::entryCount() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return entries_.size();
}

std::vector<uint64_t>
ArtifactStore::keysByRecency() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    std::vector<std::pair<uint64_t, uint64_t>> order; // (seq, key)
    for (const auto &[key, e] : entries_)
        order.emplace_back(e.seq, key);
    std::sort(order.begin(), order.end());
    std::vector<uint64_t> keys;
    for (const auto &[seq, key] : order)
        keys.push_back(key);
    return keys;
}

} // namespace svc
} // namespace pld
