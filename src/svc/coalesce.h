/**
 * @file
 * Cross-client request coalescing: the PR-1/2 in-flight-dedup
 * sentinel machinery generalized from cache keys inside one build to
 * whole requests across daemon clients.
 *
 * N clients submitting the identical compile must trigger exactly
 * one backend compile; the other N-1 wait and share the result. The
 * failure discipline mirrors the artifact cache's RAII sentinel: if
 * the claimant cannot produce a result (an exception escaped between
 * claim and publish — including the claimant's handler dying with
 * its client), fail() wakes exactly one waiter, which *re-claims*
 * the request and compiles it itself. Waiters therefore never hang
 * on a dead claimant, and a result is compiled at most once per
 * failure generation.
 */

#ifndef PLD_SVC_COALESCE_H
#define PLD_SVC_COALESCE_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace pld {
namespace svc {

template <typename Result> class Coalescer
{
  public:
    enum class Role : uint8_t
    {
        Claimant, ///< first in: compile, then publish() or fail()
        Joined,   ///< identical request in flight: wait()
    };

    struct WaitOutcome
    {
        /** True: the claimant failed and *this* waiter re-claimed
         * the request — it must now compile and publish()/fail(). */
        bool reclaimed = false;
        std::shared_ptr<const Result> result;
    };

    /** Claim @p key or join its in-flight compile. */
    Role
    enter(uint64_t key)
    {
        std::lock_guard<std::mutex> lk(mtx);
        auto it = inflight.find(key);
        if (it == inflight.end()) {
            inflight.emplace(key, std::make_shared<Entry>());
            return Role::Claimant;
        }
        ++it->second->waiters;
        return Role::Joined;
    }

    /** Block until the claimant publishes or fails (Joined only). */
    WaitOutcome
    wait(uint64_t key)
    {
        std::unique_lock<std::mutex> lk(mtx);
        auto it = inflight.find(key);
        // Entry may already be erased by publish(); waiters keep it
        // alive through the shared_ptr they wait on.
        std::shared_ptr<Entry> e =
            it != inflight.end() ? it->second : nullptr;
        if (!e) {
            // No entry for a registered waiter would mean publish()
            // erased it early; the protocol forbids that (entries
            // persist while waiters > 0), but re-claim to stay safe.
            WaitOutcome out;
            out.reclaimed = true;
            return out;
        }
        cv.wait(lk, [&] { return e->done || e->failed; });
        --e->waiters;
        WaitOutcome out;
        if (e->done) {
            out.result = e->result;
            // Last consumer retires the completed entry so the next
            // identical request claims fresh (and hits the store).
            if (e->waiters == 0) {
                auto cur = inflight.find(key);
                if (cur != inflight.end() && cur->second == e)
                    inflight.erase(cur);
            }
            return out;
        }
        // Failure sentinel: exactly one woken waiter re-claims (we
        // reset the flag under the lock); the rest keep waiting on
        // the same entry for the re-claimant's outcome.
        e->failed = false;
        out.reclaimed = true;
        return out;
    }

    /** Complete @p key; all waiters receive @p result. */
    void
    publish(uint64_t key, std::shared_ptr<const Result> result)
    {
        std::lock_guard<std::mutex> lk(mtx);
        auto it = inflight.find(key);
        if (it == inflight.end())
            return;
        it->second->done = true;
        it->second->result = std::move(result);
        // Keep the entry while waiters remain: a waiter that has
        // enter()ed but not yet reached wait() must still find its
        // result here, not spuriously re-claim. The last consuming
        // waiter retires the entry in wait().
        if (it->second->waiters == 0)
            inflight.erase(it);
        cv.notify_all();
    }

    /**
     * The claimant could not produce a result. With waiters, wake
     * exactly one to re-claim; with none, retire the entry so the
     * next identical request claims fresh.
     */
    void
    fail(uint64_t key)
    {
        std::lock_guard<std::mutex> lk(mtx);
        auto it = inflight.find(key);
        if (it == inflight.end())
            return;
        if (it->second->waiters > 0) {
            it->second->failed = true;
            cv.notify_all();
        } else {
            inflight.erase(it);
        }
    }

    /** In-flight request count (tests / stats). */
    size_t
    inflightCount() const
    {
        std::lock_guard<std::mutex> lk(mtx);
        return inflight.size();
    }

    /**
     * RAII failure sentinel for the claimant path: unless disarm()ed
     * (after a successful publish), destruction calls fail(), so an
     * exception thrown anywhere between claim and publish wakes a
     * waiter instead of stranding all of them. The same discipline
     * as flow::PldCompiler's cache sentinel, one layer up.
     */
    class Sentinel
    {
      public:
        Sentinel(Coalescer &c, uint64_t key) : c(&c), key(key) {}
        ~Sentinel()
        {
            if (c)
                c->fail(key);
        }
        void disarm() { c = nullptr; }

        Sentinel(const Sentinel &) = delete;
        Sentinel &operator=(const Sentinel &) = delete;

      private:
        Coalescer *c;
        uint64_t key;
    };

  private:
    struct Entry
    {
        bool done = false;
        bool failed = false;
        int waiters = 0;
        std::shared_ptr<const Result> result;
    };

    mutable std::mutex mtx;
    std::condition_variable cv;
    std::map<uint64_t, std::shared_ptr<Entry>> inflight;
};

} // namespace svc
} // namespace pld

#endif // PLD_SVC_COALESCE_H
