/**
 * @file
 * Thin synchronous client for the compile daemon: one AF_UNIX
 * connection, one outstanding request at a time. `pldc` and the
 * service tests are the users; anything richer (pipelining, async)
 * belongs above this layer.
 *
 * Crash/restart resilience (PR 10): setDeadlineMs() bounds every
 * send/recv with a socket timeout — an expired deadline surfaces as
 * a retriable DeadlineExceeded CompileError, never a hang. The
 * *WithRetry entry points run the full retry discipline a CI client
 * wants against a daemon that may be restarting under it: connect
 * refused, a mid-request hangup, a deadline, and an
 * AdmissionRejected response all retry with bounded exponential
 * backoff; a compile *failure* is an answer and is returned as-is.
 * Backoff jitter is seeded and deterministic (same RetryPolicy, same
 * attempt → same sleep), keeping chaos-soak timing reproducible.
 */

#ifndef PLD_SVC_CLIENT_H
#define PLD_SVC_CLIENT_H

#include <string>

#include "svc/wire.h"

namespace pld {
namespace svc {

/** Bounded-exponential-backoff retry schedule for *WithRetry. */
struct RetryPolicy
{
    /** Total tries (first attempt included); 1 = no retry. */
    int maxAttempts = 5;
    /** Sleep before retry k (0-based) is roughly
     * baseMs * 2^k, capped at maxMs, scaled by a seeded jitter
     * factor in [0.5, 1.0). */
    int baseMs = 50;
    int maxMs = 2000;
    uint64_t seed = 1;
};

class Client
{
  public:
    explicit Client(std::string socket_path);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the daemon; false when it is not listening. */
    bool connect();
    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Bound every subsequent send/recv on this connection (applies
     * to the current fd and to future connect()s) to @p ms
     * milliseconds; 0 restores blocking forever. An expired
     * deadline throws CompileError{DeadlineExceeded, retriable}.
     */
    void setDeadlineMs(int ms);
    int deadlineMs() const { return deadlineMs_; }

    /** Round-trip a compile / swap. Throws CompileError on protocol
     * or transport failure (a Rejected/Failed *response* is returned
     * normally — it is an answer, not a transport error). */
    CompileResponse compile(const CompileRequest &req);
    CompileResponse swap(const SwapRequest &req);

    /**
     * compile()/swap() wrapped in the retry discipline above.
     * Reconnects as needed (the daemon may have restarted between
     * attempts). Throws the last transport error only after
     * maxAttempts tries; returns a Failed response without retrying
     * (compiles are deterministic — a retry would fail identically).
     */
    CompileResponse compileWithRetry(const CompileRequest &req,
                                     const RetryPolicy &policy);
    CompileResponse swapWithRetry(const SwapRequest &req,
                                  const RetryPolicy &policy);

    /** Health probe: true iff the daemon echoed @p nonce. */
    bool ping(uint64_t nonce);

    std::string stats();
    /** Ask the daemon to exit; true when it acked. */
    bool shutdownDaemon();

    /** Fire a compile request WITHOUT reading the response — the
     * kill-the-client regression test hangs up right after this and
     * asserts the daemon still completes and publishes the build. */
    void submitOnly(const CompileRequest &req);

    /** The deterministic pre-retry-k sleep (exposed for tests). */
    static int backoffMs(const RetryPolicy &policy, int attempt);

  private:
    CompileResponse roundTrip(const std::vector<uint8_t> &frame,
                              MsgType expect);
    CompileResponse withRetry(const std::vector<uint8_t> &frame,
                              MsgType expect,
                              const RetryPolicy &policy);
    void applyDeadline();

    std::string path_;
    int fd_ = -1;
    int deadlineMs_ = 0;
};

} // namespace svc
} // namespace pld

#endif // PLD_SVC_CLIENT_H
