/**
 * @file
 * Thin synchronous client for the compile daemon: one AF_UNIX
 * connection, one outstanding request at a time. `pldc` and the
 * service tests are the users; anything richer (pipelining, async)
 * belongs above this layer.
 */

#ifndef PLD_SVC_CLIENT_H
#define PLD_SVC_CLIENT_H

#include <string>

#include "svc/wire.h"

namespace pld {
namespace svc {

class Client
{
  public:
    explicit Client(std::string socket_path);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the daemon; false when it is not listening. */
    bool connect();
    bool connected() const { return fd_ >= 0; }
    void close();

    /** Round-trip a compile / swap. Throws CompileError on protocol
     * or transport failure (a Rejected/Failed *response* is returned
     * normally — it is an answer, not a transport error). */
    CompileResponse compile(const CompileRequest &req);
    CompileResponse swap(const SwapRequest &req);

    std::string stats();
    /** Ask the daemon to exit; true when it acked. */
    bool shutdownDaemon();

    /** Fire a compile request WITHOUT reading the response — the
     * kill-the-client regression test hangs up right after this and
     * asserts the daemon still completes and publishes the build. */
    void submitOnly(const CompileRequest &req);

  private:
    CompileResponse roundTrip(const std::vector<uint8_t> &frame,
                              MsgType expect);

    std::string path_;
    int fd_ = -1;
};

} // namespace svc
} // namespace pld

#endif // PLD_SVC_CLIENT_H
