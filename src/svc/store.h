/**
 * @file
 * The persistent, content-addressed artifact store behind the
 * compile service.
 *
 * The in-memory sharded cache from PRs 1–2 dies with the process; a
 * daemon that serves millions of incremental edits needs artifacts
 * that survive restarts. The ArtifactStore keeps one file per entry
 * under a directory:
 *
 *   <dir>/<16-hex-key>.art :
 *     magic "PLDS" | version | key | payload size | FNV-64 checksum
 *     | payload
 *
 * plus a tiny recency index (<dir>/lru.txt) persisted on every
 * mutation, so least-recently-used eviction order survives restarts
 * too. Properties the tests pin down:
 *
 *  - content addressing: get(k) returns exactly what put(k) stored;
 *  - checksums: a bit-flipped entry is detected on get, evicted, and
 *    reported — the caller recompiles exactly once and the next get
 *    hits again (never a corrupt artifact served);
 *  - LRU eviction by byte budget: put evicts least-recently-*used*
 *    entries (gets refresh recency) until the new entry fits; an
 *    entry larger than the whole budget is not stored at all;
 *  - cross-run reuse: a second ArtifactStore on the same directory
 *    serves hits for everything a first instance stored;
 *  - thread safety: concurrent get/put from any number of threads
 *    (one internal mutex; payload I/O is small and compile-bound).
 *
 * Crash safety (PR 10): all I/O goes through a Vfs (common/io.h),
 * so faults and crash points are injectable. put() is durable —
 * entry tmp is written and fsynced, renamed, and the directory
 * fsynced before the recency index is touched — and *reports*
 * failure instead of logging and claiming success. Opening a store
 * runs a crash-recovery scan: half-written '*.tmp' files are
 * quarantined into <dir>/quarantine/, a missing or damaged lru.txt
 * is tolerated line-by-line, and entries the index does not cover
 * get their recency rebuilt from file mtimes (oldest mtime = least
 * recent). An ENOSPC put flips the store into a degraded mode flag:
 * the daemon keeps serving from memory and already-cached entries
 * rather than failing requests; a later successful put clears it.
 *
 * One daemon per store directory: the store does not lock against
 * other *processes* (documented in DESIGN.md §14).
 */

#ifndef PLD_SVC_STORE_H
#define PLD_SVC_STORE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/io.h"

namespace pld {
namespace svc {

/** Store effectiveness counters (atomic; see flow::CacheStats). */
struct StoreStats
{
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> puts{0};
    /** Checksum-mismatch evictions (detected on get). */
    std::atomic<uint64_t> corrupt{0};
    /** Entries evicted to make room under the byte budget. */
    std::atomic<uint64_t> evictions{0};
    /** Payloads larger than the whole budget, never stored. */
    std::atomic<uint64_t> oversize{0};
    /** Failed writes/renames/reads (short write, ENOSPC, EIO) —
     * each one also makes the affected put() return false. */
    std::atomic<uint64_t> ioErrors{0};
    /** Half-written '*.tmp' files moved aside by the recovery
     * scan when the store was opened. */
    std::atomic<uint64_t> quarantined{0};
    /** Entries whose recency had to be rebuilt from file mtimes
     * (missing/damaged lru.txt line). */
    std::atomic<uint64_t> recencyRebuilt{0};
};

class ArtifactStore
{
  public:
    /**
     * Open (creating if needed) the store at @p dir with an LRU byte
     * budget of @p budget_bytes over entry payloads, doing all I/O
     * through @p vfs (the shared PosixVfs when null). Runs the
     * crash-recovery scan described above.
     */
    ArtifactStore(std::string dir, uint64_t budget_bytes,
                  std::shared_ptr<Vfs> vfs = nullptr);
    ~ArtifactStore();

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * Fetch the payload stored under @p key, refreshing its recency.
     * Returns nullopt on a miss — including when the entry exists
     * but fails its checksum or cannot be read, in which case it is
     * deleted and counted so the caller's recompile-and-put makes
     * the next get hit again.
     */
    std::optional<std::vector<uint8_t>> get(uint64_t key);

    /**
     * Store @p payload under @p key (overwriting any previous
     * entry), evicting least-recently-used entries until the budget
     * holds. Durable: the entry is fsynced and renamed into place
     * (a crash mid-put leaves the previous entry or a quarantinable
     * tmp, never a torn entry) before the index is updated.
     * Returns false — and counts svc.store.io_errors — when the
     * payload was NOT durably stored (oversize, short write,
     * ENOSPC, rename failure); the caller still holds the artifact
     * in memory and must not assume a later get will hit.
     */
    bool put(uint64_t key, const std::vector<uint8_t> &payload);

    /** Entry present without touching recency or stats (tests). */
    bool contains(uint64_t key) const;

    /** Total payload bytes currently stored. */
    uint64_t bytesStored() const;
    size_t entryCount() const;

    /** Keys ordered least- to most-recently used (tests). */
    std::vector<uint64_t> keysByRecency() const;

    const StoreStats &stats() const { return stats_; }
    const std::string &dir() const { return dir_; }
    uint64_t budgetBytes() const { return budget_; }

    /** True after a put failed with ENOSPC, until one succeeds:
     * the store is read-only-in-practice but still serving. */
    bool degraded() const { return degraded_.load(); }

    /** Path of @p key's entry file (tests corrupt entries with it). */
    std::string entryPath(uint64_t key) const;

  private:
    struct Entry
    {
        uint64_t size = 0; ///< payload bytes
        uint64_t seq = 0;  ///< recency (higher = more recent)
    };

    void loadIndexLocked();
    void persistIndexLocked();
    void evictForLocked(uint64_t incoming_bytes);
    void noteIoError(const char *what, const std::string &path,
                     const IoStatus &st);

    std::string dir_;
    uint64_t budget_;
    std::shared_ptr<Vfs> vfs_;
    mutable std::mutex mtx_;
    std::map<uint64_t, Entry> entries_;
    uint64_t bytes_ = 0;
    uint64_t seqCounter_ = 0;
    std::atomic<bool> degraded_{false};
    StoreStats stats_;
};

} // namespace svc
} // namespace pld

#endif // PLD_SVC_STORE_H
