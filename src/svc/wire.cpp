#include "svc/wire.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

#include "common/hash.h"
#include "common/logging.h"
#include "ir/printer.h"

namespace pld {
namespace svc {

namespace {

[[noreturn]] void
wireFail(CompileStage stage, const std::string &what)
{
    Diagnostic d;
    d.code = CompileCode::CacheCorrupt;
    d.stage = stage;
    d.severity = DiagSeverity::Error;
    d.detail = what;
    throw CompileError(std::move(d));
}

/** A transport-level failure (peer died mid-frame, ECONNRESET,
 * EPIPE): retriable — reconnecting reaches a fresh daemon. Decode
 * failures stay non-retriable wireFail()s: resending the same bytes
 * cannot fix a malformed frame. */
[[noreturn]] void
transportFail(const std::string &what)
{
    Diagnostic d;
    d.code = CompileCode::CompileException;
    d.stage = CompileStage::Link;
    d.severity = DiagSeverity::Error;
    d.retriable = true;
    d.detail = what;
    throw CompileError(std::move(d));
}

/** A recv/send deadline (SO_RCVTIMEO/SO_SNDTIMEO) expired: always
 * retriable — the peer may be hung, restarting, or just slow. */
[[noreturn]] void
deadlineFail(const char *what)
{
    Diagnostic d;
    d.code = CompileCode::DeadlineExceeded;
    d.stage = CompileStage::Link;
    d.severity = DiagSeverity::Error;
    d.retriable = true;
    d.detail = std::string(what) +
               " deadline expired waiting for the peer";
    throw CompileError(std::move(d));
}

} // namespace

// ---- byte codec --------------------------------------------------

void
ByteWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::f64(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(const std::string &s)
{
    u64(s.size());
    buf.insert(buf.end(), s.begin(), s.end());
}

void
ByteWriter::bytes(const std::vector<uint8_t> &b)
{
    u64(b.size());
    buf.insert(buf.end(), b.begin(), b.end());
}

void
ByteReader::fail(const std::string &what) const
{
    wireFail(CompileStage::Cache,
             "wire decode: " + what + " (offset " +
                 std::to_string(off) + " of " + std::to_string(n) +
                 ")");
}

uint8_t
ByteReader::u8()
{
    if (off + 1 > n)
        fail("truncated u8");
    return p[off++];
}

uint32_t
ByteReader::u32()
{
    if (off + 4 > n)
        fail("truncated u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[off + i]) << (8 * i);
    off += 4;
    return v;
}

uint64_t
ByteReader::u64()
{
    if (off + 8 > n)
        fail("truncated u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[off + i]) << (8 * i);
    off += 8;
    return v;
}

double
ByteReader::f64()
{
    uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::str()
{
    uint64_t len = u64();
    if (len > remaining())
        fail("string length " + std::to_string(len) +
             " exceeds remaining bytes");
    std::string s(reinterpret_cast<const char *>(p + off),
                  static_cast<size_t>(len));
    off += static_cast<size_t>(len);
    return s;
}

std::vector<uint8_t>
ByteReader::bytes()
{
    uint64_t len = u64();
    if (len > remaining())
        fail("blob length " + std::to_string(len) +
             " exceeds remaining bytes");
    std::vector<uint8_t> b(p + off, p + off + len);
    off += static_cast<size_t>(len);
    return b;
}

// ---- graph text container ---------------------------------------

std::string
encodeGraphText(const ir::Graph &g)
{
    std::ostringstream os;
    os << "pldapp " << g.name << "\n";
    for (const auto &s : g.extInputs)
        os << "extin " << s << "\n";
    for (const auto &s : g.extOutputs)
        os << "extout " << s << "\n";
    for (const auto &inst : g.ops) {
        std::string body = ir::printOperator(inst.fn);
        size_t lines = 0;
        for (char c : body)
            lines += (c == '\n');
        os << "op " << inst.instName << " " << lines << "\n" << body;
    }
    for (const auto &l : g.links) {
        os << "link " << l.src.op << " " << l.src.port << " "
           << l.dst.op << " " << l.dst.port << " " << l.depth
           << "\n";
    }
    os << "end\n";
    return os.str();
}

namespace {

[[noreturn]] void
graphFail(int line_no, const std::string &what)
{
    wireFail(CompileStage::Link,
             "graph text line " + std::to_string(line_no) + ": " +
                 what);
}

} // namespace

ir::Graph
decodeGraphText(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    int line_no = 0;
    auto next = [&]() -> bool {
        ++line_no;
        return static_cast<bool>(std::getline(is, line));
    };

    if (!next() || line.rfind("pldapp ", 0) != 0)
        graphFail(line_no, "expected 'pldapp <name>' header");
    ir::Graph g(line.substr(7));

    bool sawEnd = false;
    while (next()) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "extin") {
            std::string name;
            if (!(ls >> name))
                graphFail(line_no, "extin needs a stream name");
            g.addExtInput(name);
        } else if (kw == "extout") {
            std::string name;
            if (!(ls >> name))
                graphFail(line_no, "extout needs a stream name");
            g.addExtOutput(name);
        } else if (kw == "op") {
            std::string inst;
            long nlines = -1;
            if (!(ls >> inst >> nlines) || nlines < 1)
                graphFail(line_no, "expected 'op <inst> <numLines>'");
            std::string body;
            for (long i = 0; i < nlines; ++i) {
                if (!next())
                    graphFail(line_no,
                              "operator body truncated (wanted " +
                                  std::to_string(nlines) + " lines)");
                body += line;
                body += '\n';
            }
            g.addOperator(ir::parseOperator(body), inst);
        } else if (kw == "link") {
            ir::Link l;
            if (!(ls >> l.src.op >> l.src.port >> l.dst.op >>
                  l.dst.port >> l.depth))
                graphFail(line_no,
                          "expected 'link <srcOp> <srcPort> <dstOp> "
                          "<dstPort> <depth>'");
            int nops = static_cast<int>(g.ops.size());
            if (l.src.op < -1 || l.src.op >= nops || l.dst.op < -1 ||
                l.dst.op >= nops)
                graphFail(line_no, "link references unknown operator");
            g.links.push_back(l);
        } else if (kw == "end") {
            sawEnd = true;
            break;
        } else {
            graphFail(line_no, "unknown keyword '" + kw + "'");
        }
    }
    if (!sawEnd)
        graphFail(line_no, "missing 'end' terminator");
    return g;
}

// ---- canonical build artifact ------------------------------------

namespace {

void
encodeElf(ByteWriter &w, const rv32::PldElf &e)
{
    w.u32(e.entry);
    w.u32(e.memBytes);
    w.u64(e.text.size());
    for (uint32_t word : e.text)
        w.u32(word);
    w.u32(e.dataBase);
    w.bytes(e.data);
    w.i32(e.pageNum);
}

rv32::PldElf
decodeElf(ByteReader &r)
{
    rv32::PldElf e;
    e.entry = r.u32();
    e.memBytes = r.u32();
    uint64_t nwords = r.u64();
    if (nwords * 4 > r.remaining())
        wireFail(CompileStage::Cache, "elf text overruns blob");
    e.text.reserve(static_cast<size_t>(nwords));
    for (uint64_t i = 0; i < nwords; ++i)
        e.text.push_back(r.u32());
    e.dataBase = r.u32();
    e.data = r.bytes();
    e.pageNum = r.i32();
    return e;
}

void
encodeBinding(ByteWriter &w, const sys::PageBinding &b)
{
    w.i32(b.opIdx);
    w.i32(b.pageId);
    w.u8(static_cast<uint8_t>(b.impl));
    w.f64(b.cyclesPerOp);
    encodeElf(w, b.elf);
    w.u64(b.imageBytes);
    w.u64(b.imageHash);
    w.u8(b.hasFallback ? 1 : 0);
    encodeElf(w, b.fallbackElf);
}

sys::PageBinding
decodeBinding(ByteReader &r)
{
    sys::PageBinding b;
    b.opIdx = r.i32();
    b.pageId = r.i32();
    b.impl = static_cast<sys::PageImpl>(r.u8());
    b.cyclesPerOp = r.f64();
    b.elf = decodeElf(r);
    b.imageBytes = r.u64();
    b.imageHash = r.u64();
    b.hasFallback = r.u8() != 0;
    b.fallbackElf = decodeElf(r);
    return b;
}

constexpr uint32_t kArtifactMagic = 0x504C4441; // "PLDA"
constexpr uint32_t kArtifactVersion = 1;

} // namespace

BuildArtifact
BuildArtifact::fromAppBuild(const flow::AppBuild &b)
{
    BuildArtifact a;
    a.level = static_cast<uint8_t>(b.level);
    a.fmaxMHz = b.fmaxMHz;
    a.pagesUsed = b.pagesUsed;
    a.totalBitstreamBytes = b.totalBitstreamBytes;
    a.useNoc = b.sysCfg.useNoc;
    for (const auto &op : b.ops) {
        OpSummary s;
        s.name = op.name;
        s.irHash = op.irHash;
        s.target = static_cast<uint8_t>(op.target);
        s.page = op.page;
        s.softcoreTier = static_cast<uint8_t>(op.softcoreTier);
        s.finalCode = static_cast<uint8_t>(op.outcome.finalCode);
        s.degraded = op.outcome.degraded;
        s.failed = op.outcome.failed;
        a.ops.push_back(std::move(s));
    }
    a.bindings = b.bindings;
    return a;
}

flow::AppBuild
BuildArtifact::toSkeletonAppBuild() const
{
    flow::AppBuild b;
    b.level = static_cast<flow::OptLevel>(level);
    b.fmaxMHz = fmaxMHz;
    b.pagesUsed = pagesUsed;
    b.totalBitstreamBytes = totalBitstreamBytes;
    b.sysCfg.useNoc = useNoc;
    for (const auto &s : ops) {
        flow::OperatorArtifact op;
        op.name = s.name;
        op.irHash = s.irHash;
        op.target = static_cast<ir::Target>(s.target);
        op.page = s.page;
        b.ops.push_back(std::move(op));
    }
    b.bindings = bindings;
    return b;
}

std::vector<uint8_t>
BuildArtifact::encode() const
{
    ByteWriter w;
    w.u32(kArtifactMagic);
    w.u32(kArtifactVersion);
    w.u8(level);
    w.f64(fmaxMHz);
    w.i32(pagesUsed);
    w.u64(totalBitstreamBytes);
    w.u8(useNoc ? 1 : 0);
    w.u64(ops.size());
    for (const auto &s : ops) {
        w.str(s.name);
        w.u64(s.irHash);
        w.u8(s.target);
        w.i32(s.page);
        w.u8(s.softcoreTier);
        w.u8(s.finalCode);
        w.u8(s.degraded ? 1 : 0);
        w.u8(s.failed ? 1 : 0);
    }
    w.u64(bindings.size());
    for (const auto &b : bindings)
        encodeBinding(w, b);
    return w.take();
}

BuildArtifact
BuildArtifact::decode(const std::vector<uint8_t> &blob)
{
    ByteReader r(blob);
    if (r.u32() != kArtifactMagic)
        wireFail(CompileStage::Cache, "bad artifact magic");
    if (r.u32() != kArtifactVersion)
        wireFail(CompileStage::Cache, "unsupported artifact version");
    BuildArtifact a;
    a.level = r.u8();
    a.fmaxMHz = r.f64();
    a.pagesUsed = r.i32();
    a.totalBitstreamBytes = r.u64();
    a.useNoc = r.u8() != 0;
    uint64_t nops = r.u64();
    for (uint64_t i = 0; i < nops; ++i) {
        OpSummary s;
        s.name = r.str();
        s.irHash = r.u64();
        s.target = r.u8();
        s.page = r.i32();
        s.softcoreTier = r.u8();
        s.finalCode = r.u8();
        s.degraded = r.u8() != 0;
        s.failed = r.u8() != 0;
        a.ops.push_back(std::move(s));
    }
    uint64_t nbind = r.u64();
    for (uint64_t i = 0; i < nbind; ++i)
        a.bindings.push_back(decodeBinding(r));
    if (!r.done())
        wireFail(CompileStage::Cache,
                 "trailing bytes after artifact");
    return a;
}

std::vector<uint8_t>
SwapBlob::encode() const
{
    ByteWriter w;
    w.u32(kArtifactMagic);
    w.u32(kArtifactVersion);
    w.str(op);
    w.u8(fnChanged ? 1 : 0);
    encodeBinding(w, binding);
    return w.take();
}

SwapBlob
SwapBlob::decode(const std::vector<uint8_t> &blob)
{
    ByteReader r(blob);
    if (r.u32() != kArtifactMagic)
        wireFail(CompileStage::Cache, "bad swap-artifact magic");
    if (r.u32() != kArtifactVersion)
        wireFail(CompileStage::Cache,
                 "unsupported swap-artifact version");
    SwapBlob s;
    s.op = r.str();
    s.fnChanged = r.u8() != 0;
    s.binding = decodeBinding(r);
    return s;
}

// ---- framing -----------------------------------------------------

namespace {

bool
readExact(int fd, uint8_t *dst, size_t n, bool eof_ok)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, dst + got, n - got);
        if (r == 0) {
            if (eof_ok && got == 0)
                return false;
            transportFail("connection closed mid-frame");
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                deadlineFail("recv");
            transportFail(std::string("read: ") +
                          std::strerror(errno));
        }
        got += static_cast<size_t>(r);
    }
    return true;
}

} // namespace

bool
readFrame(int fd, std::vector<uint8_t> *payload)
{
    uint8_t hdr[4];
    if (!readExact(fd, hdr, 4, /*eof_ok=*/true))
        return false;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<uint32_t>(hdr[i]) << (8 * i);
    if (len > kMaxFrameBytes)
        wireFail(CompileStage::Link,
                 "frame length " + std::to_string(len) +
                     " exceeds cap");
    payload->resize(len);
    if (len > 0)
        readExact(fd, payload->data(), len, /*eof_ok=*/false);
    return true;
}

void
writeFrame(int fd, const std::vector<uint8_t> &payload)
{
    if (payload.size() > kMaxFrameBytes)
        wireFail(CompileStage::Link, "frame payload exceeds cap");
    uint32_t len = static_cast<uint32_t>(payload.size());
    std::vector<uint8_t> out;
    out.reserve(4 + payload.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(len >> (8 * i)));
    out.insert(out.end(), payload.begin(), payload.end());
    size_t sent = 0;
    while (sent < out.size()) {
        // MSG_NOSIGNAL: a dead client produces EPIPE, not SIGPIPE —
        // the daemon drops the response, never the process.
        ssize_t r = ::send(fd, out.data() + sent, out.size() - sent,
                           MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                deadlineFail("send");
            transportFail(std::string("send: ") +
                          std::strerror(errno));
        }
        sent += static_cast<size_t>(r);
    }
}

// ---- messages ----------------------------------------------------

void
RequestOptions::encodeInto(ByteWriter &w) const
{
    w.u8(level);
    w.u64(seed);
    w.f64(effort);
    w.u32(parallelJobs);
    w.u8(softcoreTier);
    w.str(faultSpec);
    w.str(traceFile);
}

RequestOptions
RequestOptions::decodeFrom(ByteReader &r)
{
    RequestOptions o;
    o.level = r.u8();
    o.seed = r.u64();
    o.effort = r.f64();
    o.parallelJobs = r.u32();
    o.softcoreTier = r.u8();
    o.faultSpec = r.str();
    o.traceFile = r.str();
    return o;
}

std::vector<uint8_t>
CompileRequest::encode() const
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(MsgType::CompileReq));
    opts.encodeInto(w);
    w.str(graphText);
    return w.take();
}

CompileRequest
CompileRequest::decode(ByteReader &r)
{
    CompileRequest req;
    req.opts = RequestOptions::decodeFrom(r);
    req.graphText = r.str();
    return req;
}

std::vector<uint8_t>
SwapRequest::encode() const
{
    ByteWriter w;
    w.u8(static_cast<uint8_t>(MsgType::SwapReq));
    opts.encodeInto(w);
    w.u64(baseBuild);
    w.str(opName);
    w.str(graphText);
    return w.take();
}

SwapRequest
SwapRequest::decode(ByteReader &r)
{
    SwapRequest req;
    req.opts = RequestOptions::decodeFrom(r);
    req.baseBuild = r.u64();
    req.opName = r.str();
    req.graphText = r.str();
    return req;
}

void
encodeDiags(ByteWriter &w, const CompileStatus &st)
{
    w.u64(st.diags.size());
    for (const auto &d : st.diags) {
        w.u8(static_cast<uint8_t>(d.code));
        w.u8(static_cast<uint8_t>(d.stage));
        w.u8(static_cast<uint8_t>(d.severity));
        w.str(d.op);
        w.i32(d.page);
        w.u8(d.retriable ? 1 : 0);
        w.str(d.detail);
    }
}

CompileStatus
decodeDiags(ByteReader &r)
{
    CompileStatus st;
    uint64_t n = r.u64();
    for (uint64_t i = 0; i < n; ++i) {
        Diagnostic d;
        d.code = static_cast<CompileCode>(r.u8());
        d.stage = static_cast<CompileStage>(r.u8());
        d.severity = static_cast<DiagSeverity>(r.u8());
        d.op = r.str();
        d.page = r.i32();
        d.retriable = r.u8() != 0;
        d.detail = r.str();
        st.diags.push_back(std::move(d));
    }
    return st;
}

std::vector<uint8_t>
CompileResponse::encode() const
{
    ByteWriter w;
    w.u8(msgType);
    w.u8(static_cast<uint8_t>(status));
    w.u64(key);
    w.u8(storeHit ? 1 : 0);
    w.u8(coalesced ? 1 : 0);
    w.f64(seconds);
    encodeDiags(w, diags);
    w.bytes(blob);
    return w.take();
}

CompileResponse
CompileResponse::decode(ByteReader &r, uint8_t msg_type)
{
    CompileResponse resp;
    resp.msgType = msg_type;
    resp.status = static_cast<RespStatus>(r.u8());
    resp.key = r.u64();
    resp.storeHit = r.u8() != 0;
    resp.coalesced = r.u8() != 0;
    resp.seconds = r.f64();
    resp.diags = decodeDiags(r);
    resp.blob = r.bytes();
    return resp;
}

} // namespace svc
} // namespace pld
