#include "svc/client.h"

#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace pld {
namespace svc {

namespace {

[[noreturn]] void
protocolError(const std::string &what)
{
    Diagnostic d;
    d.code = CompileCode::CompileException;
    d.stage = CompileStage::Link;
    d.severity = DiagSeverity::Error;
    d.detail = "pldc: " + what;
    throw CompileError(d);
}

} // namespace

Client::Client(std::string socket_path) : path_(std::move(socket_path))
{
}

Client::~Client() { close(); }

bool
Client::connect()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    close();
    fd_ = fd;
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

CompileResponse
Client::roundTrip(const std::vector<uint8_t> &frame, MsgType expect)
{
    if (fd_ < 0)
        protocolError("not connected");
    writeFrame(fd_, frame);
    std::vector<uint8_t> payload;
    if (!readFrame(fd_, &payload))
        protocolError("daemon hung up before responding");
    ByteReader r(payload);
    auto type = static_cast<MsgType>(r.u8());
    if (type != expect)
        protocolError("unexpected response type " +
                      std::to_string(int(type)));
    return CompileResponse::decode(r, static_cast<uint8_t>(type));
}

CompileResponse
Client::compile(const CompileRequest &req)
{
    return roundTrip(req.encode(), MsgType::CompileResp);
}

CompileResponse
Client::swap(const SwapRequest &req)
{
    return roundTrip(req.encode(), MsgType::SwapResp);
}

std::string
Client::stats()
{
    if (fd_ < 0)
        protocolError("not connected");
    ByteWriter w;
    w.u8(static_cast<uint8_t>(MsgType::StatsReq));
    writeFrame(fd_, w.take());
    std::vector<uint8_t> payload;
    if (!readFrame(fd_, &payload))
        protocolError("daemon hung up before responding");
    ByteReader r(payload);
    if (static_cast<MsgType>(r.u8()) != MsgType::StatsResp)
        protocolError("unexpected stats response");
    return r.str();
}

bool
Client::shutdownDaemon()
{
    if (fd_ < 0)
        return false;
    ByteWriter w;
    w.u8(static_cast<uint8_t>(MsgType::ShutdownReq));
    try {
        writeFrame(fd_, w.take());
        std::vector<uint8_t> payload;
        if (!readFrame(fd_, &payload))
            return false;
        ByteReader r(payload);
        return static_cast<MsgType>(r.u8()) == MsgType::ShutdownAck;
    } catch (const CompileError &) {
        return false;
    }
}

void
Client::submitOnly(const CompileRequest &req)
{
    if (fd_ < 0)
        protocolError("not connected");
    writeFrame(fd_, req.encode());
}

} // namespace svc
} // namespace pld
