#include "svc/client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/hash.h"
#include "common/logging.h"

namespace pld {
namespace svc {

namespace {

[[noreturn]] void
protocolError(const std::string &what)
{
    Diagnostic d;
    d.code = CompileCode::CompileException;
    d.stage = CompileStage::Link;
    d.severity = DiagSeverity::Error;
    // A protocol-level hangup usually means the daemon died (or was
    // kill -9'd) mid-request; reconnect-and-retry is the right move.
    d.retriable = true;
    d.detail = "pldc: " + what;
    throw CompileError(d);
}

} // namespace

Client::Client(std::string socket_path) : path_(std::move(socket_path))
{
}

Client::~Client() { close(); }

bool
Client::connect()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    close();
    fd_ = fd;
    applyDeadline();
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::setDeadlineMs(int ms)
{
    deadlineMs_ = ms < 0 ? 0 : ms;
    applyDeadline();
}

void
Client::applyDeadline()
{
    if (fd_ < 0)
        return;
    timeval tv{};
    tv.tv_sec = deadlineMs_ / 1000;
    tv.tv_usec = (deadlineMs_ % 1000) * 1000;
    // tv == {0,0} means "block forever" for both options — exactly
    // the semantics of deadlineMs_ == 0.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

CompileResponse
Client::roundTrip(const std::vector<uint8_t> &frame, MsgType expect)
{
    if (fd_ < 0)
        protocolError("not connected");
    writeFrame(fd_, frame);
    std::vector<uint8_t> payload;
    if (!readFrame(fd_, &payload))
        protocolError("daemon hung up before responding");
    ByteReader r(payload);
    auto type = static_cast<MsgType>(r.u8());
    if (type != expect)
        protocolError("unexpected response type " +
                      std::to_string(int(type)));
    return CompileResponse::decode(r, static_cast<uint8_t>(type));
}

CompileResponse
Client::compile(const CompileRequest &req)
{
    return roundTrip(req.encode(), MsgType::CompileResp);
}

CompileResponse
Client::swap(const SwapRequest &req)
{
    return roundTrip(req.encode(), MsgType::SwapResp);
}

int
Client::backoffMs(const RetryPolicy &policy, int attempt)
{
    int64_t ms = policy.baseMs;
    for (int i = 0; i < attempt && ms < policy.maxMs; ++i)
        ms *= 2;
    ms = std::min<int64_t>(ms, policy.maxMs);
    // Deterministic jitter in [0.5, 1.0): decorrelates clients that
    // share a seed-less default without making any run timing-random.
    Hasher h;
    h.str("pld.svc.backoff");
    h.u64(policy.seed);
    h.u64(static_cast<uint64_t>(attempt));
    double factor = 0.5 + 0.5 * (h.digest() % 1024) / 1024.0;
    return std::max(1, static_cast<int>(ms * factor));
}

CompileResponse
Client::withRetry(const std::vector<uint8_t> &frame, MsgType expect,
                  const RetryPolicy &policy)
{
    int attempts = std::max(1, policy.maxAttempts);
    for (int attempt = 0;; ++attempt) {
        bool last = attempt + 1 >= attempts;
        auto sleepAndRetry = [&] {
            close();
            std::this_thread::sleep_for(std::chrono::milliseconds(
                backoffMs(policy, attempt)));
        };
        try {
            if (fd_ < 0 && !connect()) {
                // Refused/missing socket: the daemon is down or
                // restarting — precisely what backoff is for.
                if (last)
                    protocolError("cannot connect to daemon at " +
                                  path_);
                sleepAndRetry();
                continue;
            }
            CompileResponse resp = roundTrip(frame, expect);
            if (resp.status == RespStatus::Rejected && !last) {
                // Bounded admission queue was full; it drains.
                sleepAndRetry();
                continue;
            }
            return resp;
        } catch (const CompileError &e) {
            if (last || !e.diag().retriable)
                throw;
            sleepAndRetry();
        }
    }
}

CompileResponse
Client::compileWithRetry(const CompileRequest &req,
                         const RetryPolicy &policy)
{
    return withRetry(req.encode(), MsgType::CompileResp, policy);
}

CompileResponse
Client::swapWithRetry(const SwapRequest &req,
                      const RetryPolicy &policy)
{
    return withRetry(req.encode(), MsgType::SwapResp, policy);
}

bool
Client::ping(uint64_t nonce)
{
    if (fd_ < 0)
        return false;
    try {
        ByteWriter w;
        w.u8(static_cast<uint8_t>(MsgType::PingReq));
        w.u64(nonce);
        writeFrame(fd_, w.take());
        std::vector<uint8_t> payload;
        if (!readFrame(fd_, &payload))
            return false;
        ByteReader r(payload);
        return static_cast<MsgType>(r.u8()) == MsgType::PingResp &&
               r.u64() == nonce;
    } catch (const CompileError &) {
        return false;
    }
}

std::string
Client::stats()
{
    if (fd_ < 0)
        protocolError("not connected");
    ByteWriter w;
    w.u8(static_cast<uint8_t>(MsgType::StatsReq));
    writeFrame(fd_, w.take());
    std::vector<uint8_t> payload;
    if (!readFrame(fd_, &payload))
        protocolError("daemon hung up before responding");
    ByteReader r(payload);
    if (static_cast<MsgType>(r.u8()) != MsgType::StatsResp)
        protocolError("unexpected stats response");
    return r.str();
}

bool
Client::shutdownDaemon()
{
    if (fd_ < 0)
        return false;
    ByteWriter w;
    w.u8(static_cast<uint8_t>(MsgType::ShutdownReq));
    try {
        writeFrame(fd_, w.take());
        std::vector<uint8_t> payload;
        if (!readFrame(fd_, &payload))
            return false;
        ByteReader r(payload);
        return static_cast<MsgType>(r.u8()) == MsgType::ShutdownAck;
    } catch (const CompileError &) {
        return false;
    }
}

void
Client::submitOnly(const CompileRequest &req)
{
    if (fd_ < 0)
        protocolError("not connected");
    writeFrame(fd_, req.encode());
}

} // namespace svc
} // namespace pld
