#include "svc/service.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace pld {
namespace svc {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Mix the key-relevant request options (everything but
 * parallelJobs and traceFile — see the header). */
void
hashKeyOptions(Hasher &h, const RequestOptions &o)
{
    h.u64(o.level);
    h.u64(o.seed);
    uint64_t effort_bits = 0;
    static_assert(sizeof(effort_bits) == sizeof(o.effort), "f64");
    std::memcpy(&effort_bits, &o.effort, sizeof(effort_bits));
    h.u64(effort_bits);
    h.u64(o.softcoreTier);
    h.str(o.faultSpec);
}

} // namespace

// ---- Admission ---------------------------------------------------

bool
Admission::acquire()
{
    std::unique_lock<std::mutex> lk(mtx);
    if (executing_ < maxExecuting) {
        ++executing_;
        return true;
    }
    if (queued_ >= maxQueued)
        return false;
    ++queued_;
    obs::gauge("svc.queue.depth", queued_);
    cv.wait(lk, [&] { return executing_ < maxExecuting; });
    --queued_;
    obs::gauge("svc.queue.depth", queued_);
    ++executing_;
    return true;
}

void
Admission::release()
{
    std::lock_guard<std::mutex> lk(mtx);
    --executing_;
    cv.notify_one();
}

int
Admission::executing() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return executing_;
}

int
Admission::queued() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return queued_;
}

// ---- CompileService ----------------------------------------------

CompileService::CompileService(const fabric::Device &dev,
                               ServiceConfig cfg)
    : dev_(dev), cfg_(std::move(cfg)),
      store_(cfg_.storeDir, cfg_.storeBudgetBytes, cfg_.vfs),
      admission_(cfg_.maxExecuting, cfg_.maxQueued)
{
}

uint64_t
CompileService::requestKey(const CompileRequest &req)
{
    Hasher h;
    h.str("pld.svc.compile");
    hashKeyOptions(h, req.opts);
    h.str(req.graphText);
    return h.digest();
}

uint64_t
CompileService::swapKey(const SwapRequest &req)
{
    Hasher h;
    h.str("pld.svc.swap");
    hashKeyOptions(h, req.opts);
    h.u64(req.baseBuild);
    h.str(req.opName);
    h.str(req.graphText);
    return h.digest();
}

void
CompileService::setExecuteHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lk(hookMtx_);
    executeHook_ = std::move(hook);
}

flow::PldCompiler &
CompileService::compilerFor(const RequestOptions &opts)
{
    // Constructor-time knobs only: per-request effort rides through
    // build()'s effort_override, but buildSwapArtifact reads the
    // configured effort, so effort is part of the pool key too.
    Hasher h;
    h.u64(opts.seed);
    h.u64(opts.parallelJobs);
    h.u64(opts.softcoreTier);
    uint64_t effort_bits = 0;
    std::memcpy(&effort_bits, &opts.effort, sizeof(effort_bits));
    h.u64(effort_bits);
    h.str(opts.faultSpec);
    uint64_t key = h.digest();

    std::lock_guard<std::mutex> lk(compilersMtx_);
    auto it = compilers_.find(key);
    if (it != compilers_.end())
        return *it->second;

    flow::CompileOptions co;
    co.effort = opts.effort > 0 ? opts.effort : 1.0;
    co.parallelJobs = opts.parallelJobs;
    co.seed = opts.seed;
    co.softcoreTier = static_cast<rvgen::Tier>(opts.softcoreTier);
    if (!opts.faultSpec.empty())
        co.faults = FaultPlan::parse(opts.faultSpec); // throws on bad
    auto pc = std::make_unique<flow::PldCompiler>(dev_, co);
    auto &ref = *pc;
    compilers_.emplace(key, std::move(pc));
    return ref;
}

void
CompileService::registerBuild(uint64_t key,
                              const std::vector<uint8_t> &blob)
{
    {
        std::lock_guard<std::mutex> lk(buildsMtx_);
        if (builds_.count(key))
            return;
    }
    // Decode outside the lock; a corrupt blob cannot reach here (the
    // store checksums entries, the backend just encoded it), but the
    // decoder still validates rather than trusting.
    auto skeleton = std::make_shared<flow::AppBuild>(
        BuildArtifact::decode(blob).toSkeletonAppBuild());
    std::lock_guard<std::mutex> lk(buildsMtx_);
    builds_.emplace(key, std::move(skeleton));
}

std::shared_ptr<const flow::AppBuild>
CompileService::findBuild(uint64_t id) const
{
    std::lock_guard<std::mutex> lk(buildsMtx_);
    auto it = builds_.find(id);
    return it == builds_.end() ? nullptr : it->second;
}

bool
CompileService::hasBuild(uint64_t id) const
{
    return findBuild(id) != nullptr;
}

CompileResponse
CompileService::serve(uint64_t key, const RequestOptions &opts,
                      const std::function<ServiceResult()> &execute)
{
    ++stats_.submitted;
    const auto t0 = std::chrono::steady_clock::now();
    {
        std::shared_lock<std::shared_mutex> lk(traceMtx_);
        obs::count("svc.request.submitted");
    }

    auto respond = [&](const ServiceResult &res, bool store_hit,
                       bool coalesced) {
        CompileResponse r;
        r.status = res.status;
        r.key = key;
        r.storeHit = store_hit;
        r.coalesced = coalesced;
        r.seconds = secondsSince(t0);
        r.diags = res.diags;
        r.blob = res.blob;
        obs::record("svc.request.seconds", r.seconds);
        return r;
    };

    // Coalesce first — and wait OUTSIDE the trace lock, so a traced
    // claimant (which needs the lock exclusively) can always finish
    // and wake its joiners.
    if (coalescer_.enter(key) ==
        Coalescer<ServiceResult>::Role::Joined) {
        auto out = coalescer_.wait(key);
        if (!out.reclaimed) {
            ++stats_.coalesced;
            std::shared_lock<std::shared_mutex> lk(traceMtx_);
            obs::count("svc.request.coalesced");
            return respond(*out.result, false, true);
        }
        // The claimant died mid-compile; this request re-claims and
        // runs the claimant path below (the in-flight entry is still
        // registered, so publish/fail land on the same waiters).
        ++stats_.reclaimed;
    }

    auto claimant = [&]() -> CompileResponse {
        Coalescer<ServiceResult>::Sentinel sentinel(coalescer_, key);

        if (auto blob = store_.get(key)) {
            ++stats_.storeHits;
            auto res = std::make_shared<ServiceResult>();
            res->blob = std::move(*blob);
            coalescer_.publish(key, res);
            sentinel.disarm();
            return respond(*res, true, false);
        }

        if (!admission_.acquire()) {
            ++stats_.rejected;
            obs::count("svc.request.rejected");
            auto res = std::make_shared<ServiceResult>();
            res->status = RespStatus::Rejected;
            Diagnostic d;
            d.code = CompileCode::AdmissionRejected;
            d.stage = CompileStage::Tenancy;
            d.severity = DiagSeverity::Error;
            d.retriable = true;
            std::ostringstream os;
            os << "compile service admission queue full ("
               << cfg_.maxExecuting << " executing, "
               << cfg_.maxQueued << " queued); resubmit later";
            d.detail = os.str();
            res->diags.add(d);
            // Joiners share the rejection: they added no load, but
            // the request they joined was refused.
            coalescer_.publish(key, res);
            sentinel.disarm();
            return respond(*res, false, false);
        }
        struct Release
        {
            Admission &a;
            ~Release() { a.release(); }
        } release{admission_};

        std::function<void()> hook;
        {
            std::lock_guard<std::mutex> lk(hookMtx_);
            hook = executeHook_;
        }
        if (hook)
            hook();

        auto res = std::make_shared<ServiceResult>();
        try {
            *res = execute();
        } catch (const CompileError &e) {
            res->status = RespStatus::Failed;
            res->diags.add(e.diag());
        }
        ++stats_.storeMisses;
        obs::count("svc.request.compiled");
        if (res->status == RespStatus::Ok) {
            // A failed put is survivable: the result is still
            // published from memory (this response and all coalesced
            // joiners are correct), only warm-restart reuse is lost.
            if (!store_.put(key, res->blob))
                pld_warn("svc: artifact %016llx not durably stored; "
                         "serving from memory%s",
                         static_cast<unsigned long long>(key),
                         store_.degraded() ? " (store degraded)"
                                           : "");
        } else {
            ++stats_.failed;
            obs::count("svc.request.failed");
        }
        coalescer_.publish(key, res);
        sentinel.disarm();
        return respond(*res, false, false);
    };

    if (!opts.traceFile.empty()) {
        // Tracer::install demands quiescence: exclude every other
        // request for the traced one's duration.
        std::unique_lock<std::shared_mutex> lk(traceMtx_);
        obs::ScopedTracer st;
        CompileResponse resp = claimant();
        std::ofstream f(opts.traceFile, std::ios::trunc);
        if (f)
            st.tracer().writeChromeTrace(f);
        else
            pld_warn("svc: cannot write trace file %s",
                     opts.traceFile.c_str());
        return resp;
    }
    std::shared_lock<std::shared_mutex> lk(traceMtx_);
    return claimant();
}

CompileResponse
CompileService::compile(const CompileRequest &req)
{
    uint64_t key = requestKey(req);
    auto execute = [&]() -> ServiceResult {
        if (req.opts.level >
            static_cast<uint8_t>(flow::OptLevel::Vitis)) {
            Diagnostic d;
            d.code = CompileCode::CompileException;
            d.stage = CompileStage::Link;
            d.severity = DiagSeverity::Error;
            d.detail = "unknown opt level " +
                       std::to_string(int(req.opts.level));
            throw CompileError(d);
        }
        ir::Graph g = decodeGraphText(req.graphText);
        flow::PldCompiler &pc = compilerFor(req.opts);
        flow::AppBuild b =
            pc.build(g, static_cast<flow::OptLevel>(req.opts.level),
                     req.opts.effort);
        ServiceResult r;
        r.diags.merge(b.report.buildStatus);
        for (const auto &op : b.report.ops)
            if (op.failed || op.degraded)
                r.diags.merge(op.status);
        if (b.report.failedCount() > 0 ||
            !b.report.buildStatus.ok())
            r.status = RespStatus::Failed;
        else
            r.blob = BuildArtifact::fromAppBuild(b).encode();
        return r;
    };
    CompileResponse resp = serve(key, req.opts, execute);
    resp.msgType = static_cast<uint8_t>(MsgType::CompileResp);
    if (resp.status == RespStatus::Ok && !resp.blob.empty())
        registerBuild(key, resp.blob);
    return resp;
}

CompileResponse
CompileService::swap(const SwapRequest &req)
{
    uint64_t key = swapKey(req);
    auto execute = [&]() -> ServiceResult {
        auto fail = [&](CompileCode code, const std::string &why) {
            ServiceResult r;
            r.status = RespStatus::Failed;
            Diagnostic d;
            d.code = code;
            d.stage = CompileStage::Swap;
            d.severity = DiagSeverity::Error;
            d.op = req.opName;
            d.detail = why;
            r.diags.add(d);
            return r;
        };

        auto base = findBuild(req.baseBuild);
        if (!base)
            return fail(CompileCode::SwapRejected,
                        "unknown base build; compile the app "
                        "through this daemon first");

        ir::Graph g = decodeGraphText(req.graphText);
        // Pre-validate everything buildSwapArtifact asserts on — a
        // daemon answers bad requests with diagnostics, it does not
        // abort.
        bool has_op = false;
        for (const auto &op : g.ops)
            has_op = has_op || op.fn.name == req.opName;
        if (!has_op)
            return fail(CompileCode::SwapRejected,
                        "edited graph has no operator named " +
                            req.opName);
        if (base->bindings.size() != g.ops.size())
            return fail(CompileCode::SwapRejected,
                        "edited graph shape does not match the base "
                        "build (hot swap may not add or remove "
                        "operators)");
        if (!base->sysCfg.useNoc)
            return fail(CompileCode::SwapRejected,
                        "base build is monolithic; only paged builds "
                        "hot-swap");

        flow::PldCompiler &pc = compilerFor(req.opts);
        flow::SwapArtifact sa =
            pc.buildSwapArtifact(g, req.opName, *base);
        ServiceResult r;
        r.diags.merge(sa.outcome.status);
        if (sa.outcome.failed) {
            r.status = RespStatus::Failed;
            return r;
        }
        SwapBlob sb;
        sb.op = sa.op;
        sb.fnChanged = sa.fnChanged;
        sb.binding = sa.binding;
        r.blob = sb.encode();
        return r;
    };
    CompileResponse resp = serve(key, req.opts, execute);
    resp.msgType = static_cast<uint8_t>(MsgType::SwapResp);
    return resp;
}

std::string
CompileService::statsText() const
{
    const auto &st = store_.stats();
    std::ostringstream os;
    os << "svc.submitted " << stats_.submitted.load() << "\n"
       << "svc.rejected " << stats_.rejected.load() << "\n"
       << "svc.coalesced " << stats_.coalesced.load() << "\n"
       << "svc.store_hits " << stats_.storeHits.load() << "\n"
       << "svc.store_misses " << stats_.storeMisses.load() << "\n"
       << "svc.failed " << stats_.failed.load() << "\n"
       << "svc.reclaimed " << stats_.reclaimed.load() << "\n"
       << "store.hits " << st.hits.load() << "\n"
       << "store.misses " << st.misses.load() << "\n"
       << "store.puts " << st.puts.load() << "\n"
       << "store.corrupt " << st.corrupt.load() << "\n"
       << "store.evictions " << st.evictions.load() << "\n"
       << "store.io_errors " << st.ioErrors.load() << "\n"
       << "store.quarantined " << st.quarantined.load() << "\n"
       << "store.recency_rebuilt " << st.recencyRebuilt.load()
       << "\n"
       << "store.degraded " << (store_.degraded() ? 1 : 0) << "\n"
       << "store.bytes " << store_.bytesStored() << "\n"
       << "store.entries " << store_.entryCount() << "\n";
    return os.str();
}

} // namespace svc
} // namespace pld
