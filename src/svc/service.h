/**
 * @file
 * The compile service: the library behind the `pldd` daemon.
 *
 * CompileService turns PldCompiler into a long-lived, multi-client
 * compile server. Every request — compile or swap — flows through the
 * same pipe:
 *
 *   key → coalesce → on-disk store → admission → backend → publish
 *
 *  - *key*: a content hash of (graph text, level, seed, effort,
 *    softcore tier, fault spec). parallelJobs is deliberately
 *    excluded — the determinism contract makes results bit-identical
 *    at any thread count, so requests differing only in job count
 *    coalesce and share artifacts.
 *  - *coalesce*: N clients submitting the identical edit trigger one
 *    backend compile (Coalescer); joiners bypass admission entirely —
 *    they add no load.
 *  - *store*: the persistent ArtifactStore serves warm-restart hits
 *    before the backend is consulted.
 *  - *admission*: at most maxExecuting requests compile concurrently;
 *    up to maxQueued wait; beyond that the request is *rejected* with
 *    a structured AdmissionRejected diagnostic — a bounded queue,
 *    never an unbounded pile-up or a hang.
 *  - *backend*: a pool of PldCompilers keyed by the constructor-time
 *    options (seed, tier, fault spec, jobs, effort); results are
 *    encoded to the canonical BuildArtifact/SwapBlob form, stored,
 *    and published to coalesced waiters.
 *
 * Accounting invariant (asserted by the stress test): at quiescence
 *   submitted == rejected + coalesced + storeHits + storeMisses
 * — every request is classified exactly once.
 */

#ifndef PLD_SVC_SERVICE_H
#define PLD_SVC_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "fabric/device.h"
#include "pld/compiler.h"
#include "svc/coalesce.h"
#include "svc/store.h"
#include "svc/wire.h"

namespace pld {
namespace svc {

struct ServiceConfig
{
    /** Artifact store directory (required). */
    std::string storeDir;
    uint64_t storeBudgetBytes = 256ull << 20;
    /** Concurrent backend compiles. */
    int maxExecuting = 4;
    /** Requests allowed to wait for an executing slot; one more is
     * rejected with AdmissionRejected. */
    int maxQueued = 8;
    /** Filesystem the artifact store runs on; null = the real one.
     * pldd wraps this in a FaultVfs when PLD_FAULT carries io_*
     * kinds, so chaos runs inject faults without recompiling. */
    std::shared_ptr<Vfs> vfs;
};

/** Request-classification counters (see the invariant above). */
struct ServiceStats
{
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> coalesced{0};
    std::atomic<uint64_t> storeHits{0};
    /** Requests that reached the backend (success or failure). */
    std::atomic<uint64_t> storeMisses{0};
    /** Backend executions that produced a Failed response (subset of
     * storeMisses; fault-injected compiles land here). */
    std::atomic<uint64_t> failed{0};
    /** Waiters that re-claimed after a claimant died mid-compile. */
    std::atomic<uint64_t> reclaimed{0};
};

/**
 * Bounded execute/wait admission control. acquire() returns false —
 * immediately, it never blocks for a rejection — when maxQueued
 * requests are already waiting.
 */
class Admission
{
  public:
    Admission(int max_executing, int max_queued)
        : maxExecuting(max_executing), maxQueued(max_queued)
    {
    }

    bool acquire();
    void release();

    int executing() const;
    int queued() const;

  private:
    const int maxExecuting;
    const int maxQueued;
    mutable std::mutex mtx;
    std::condition_variable cv;
    int executing_ = 0;
    int queued_ = 0;
};

/** The shared outcome one claimant publishes to all its joiners. */
struct ServiceResult
{
    RespStatus status = RespStatus::Ok;
    CompileStatus diags;
    std::vector<uint8_t> blob;
};

class CompileService
{
  public:
    CompileService(const fabric::Device &dev, ServiceConfig cfg);

    /** Serve one compile request (any thread). */
    CompileResponse compile(const CompileRequest &req);
    /** Serve one swap request against a previously served build. */
    CompileResponse swap(const SwapRequest &req);

    /** Human-readable "name value" stats lines (pldc stats). */
    std::string statsText() const;

    const ServiceStats &stats() const { return stats_; }
    ArtifactStore &store() { return store_; }

    /** The content key a request coalesces and stores under. */
    static uint64_t requestKey(const CompileRequest &req);
    static uint64_t swapKey(const SwapRequest &req);

    /** Is @p id a build this service can swap against? */
    bool hasBuild(uint64_t id) const;

    /**
     * Test hook, called in the requesting thread after admission is
     * granted and before the backend runs. Lets tests hold a request
     * "executing" to fill the admission queue deterministically.
     */
    void setExecuteHook(std::function<void()> hook);

  private:
    /** The coalesce → store → admission → backend pipeline shared by
     * compile() and swap(); @p execute runs the backend. */
    CompileResponse serve(uint64_t key, const RequestOptions &opts,
                          const std::function<ServiceResult()> &execute);

    flow::PldCompiler &compilerFor(const RequestOptions &opts);
    void registerBuild(uint64_t key, const std::vector<uint8_t> &blob);
    std::shared_ptr<const flow::AppBuild> findBuild(uint64_t id) const;

    const fabric::Device &dev_;
    ServiceConfig cfg_;
    ArtifactStore store_;
    Coalescer<ServiceResult> coalescer_;
    Admission admission_;
    ServiceStats stats_;

    /** Backend compilers by constructor-option hash. */
    std::mutex compilersMtx_;
    std::map<uint64_t, std::unique_ptr<flow::PldCompiler>> compilers_;

    /** Served builds by request key — swap bases. Skeletons decoded
     * from the canonical blob, so store-served and freshly compiled
     * builds swap identically. */
    mutable std::mutex buildsMtx_;
    std::map<uint64_t, std::shared_ptr<const flow::AppBuild>> builds_;

    /**
     * Per-request tracing quiesces the daemon: normal requests hold
     * this shared, a traced request holds it unique while it installs
     * a ScopedTracer (Tracer::install demands quiescence), runs, and
     * writes the Chrome trace. Coalescer waits happen *outside* the
     * lock so a traced claimant can always drain its joiners.
     */
    std::shared_mutex traceMtx_;

    std::mutex hookMtx_;
    std::function<void()> executeHook_;
};

} // namespace svc
} // namespace pld

#endif // PLD_SVC_SERVICE_H
