/**
 * @file
 * The daemon's socket front end: an AF_UNIX stream listener that
 * feeds frames into a CompileService.
 *
 * One handler thread per connected client; each handler loops
 * readFrame → dispatch → writeFrame until the client hangs up. A
 * client that dies mid-compile does NOT abort its request: the
 * handler finishes the compile, publishes the result to the
 * coalescer and the on-disk store, and only then discovers the dead
 * peer (EPIPE on the response write, surfaced as an exception by
 * writeFrame, never a SIGPIPE) — so a second client waiting on the
 * same request always gets the artifact.
 *
 * Shutdown protocol: a ShutdownReq frame acks, then wakes
 * waitForShutdownRequest(); `pldd` then calls stop(), which stops
 * accepting, shuts down every live client connection (so handlers
 * blocked in readFrame wake with EOF instead of waiting for clients
 * that may never hang up), joins the handlers, and removes the
 * socket.
 */

#ifndef PLD_SVC_SERVER_H
#define PLD_SVC_SERVER_H

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.h"

namespace pld {
namespace svc {

class DaemonServer
{
  public:
    /**
     * @p idle_timeout_ms, when nonzero, bounds how long a handler
     * waits in readFrame for a client's next request (SO_RCVTIMEO on
     * the accepted fd): a client that connected and went silent is
     * dropped with a warning instead of pinning a handler thread
     * forever. Responses get the same bound as a send timeout, so a
     * client that stopped draining cannot wedge a handler either.
     */
    DaemonServer(CompileService &svc, std::string socket_path,
                 int idle_timeout_ms = 0);
    ~DaemonServer();

    DaemonServer(const DaemonServer &) = delete;
    DaemonServer &operator=(const DaemonServer &) = delete;

    /** Bind + listen + start the accept thread. fatal()s if the
     * socket path is unusable (too long, bind refused). */
    void start();

    /** Stop accepting, join every handler, unlink the socket.
     * Idempotent. */
    void stop();

    /** Block until some client sends ShutdownReq (or stop() runs). */
    void waitForShutdownRequest();

    const std::string &socketPath() const { return path_; }

  private:
    void acceptLoop();
    void handleClient(int fd);

    CompileService &svc_;
    std::string path_;
    int idleTimeoutMs_ = 0;
    int listenFd_ = -1;

    std::thread acceptThread_;
    std::mutex mtx_;
    std::condition_variable cv_;
    std::vector<std::thread> handlers_;
    std::vector<int> clientFds_; ///< live connections (under mtx_)
    bool stopping_ = false;
    bool shutdownRequested_ = false;
};

} // namespace svc
} // namespace pld

#endif // PLD_SVC_SERVER_H
