/**
 * @file
 * Wire format of the compile service: length-prefixed frames, a
 * binary byte codec, the graph-text container, and the canonical
 * build-artifact encoding.
 *
 * The daemon (`pldd`) and its clients (`pldc`, tests) exchange
 * frames over a local AF_UNIX stream socket: a little-endian u32
 * payload length followed by the payload, whose first byte is the
 * message type. Everything inside a payload goes through ByteWriter/
 * ByteReader so the format is explicit and versioned, never
 * struct-memcpy'd.
 *
 * Two encodings matter beyond the envelope:
 *
 *  - the *graph text* container: app topology plus per-operator
 *    ir::printOperator() bodies, the request's portable source form
 *    (what an edit-refine client sends every iteration);
 *  - the *BuildArtifact* blob: the canonical, deterministic
 *    serialization of a compile result. It contains only fields that
 *    are pure functions of (graph, options) — so a daemon-built blob
 *    is bit-identical to a
 *    direct-library-build blob at any PLD_THREADS, and the on-disk
 *    store can be validated byte-for-byte against a fresh compile.
 *    Timings and cache provenance never enter the blob.
 */

#ifndef PLD_SVC_WIRE_H
#define PLD_SVC_WIRE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/diag.h"
#include "ir/graph.h"
#include "pld/compiler.h"
#include "sys/system.h"

namespace pld {
namespace svc {

// ---- byte codec --------------------------------------------------

/** Append-only little-endian encoder. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { buf.push_back(v); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    /** IEEE-754 bit pattern (deterministic, no text round-trip). */
    void f64(double v);
    void str(const std::string &s);
    void bytes(const std::vector<uint8_t> &b);

    const std::vector<uint8_t> &data() const { return buf; }
    std::vector<uint8_t> take() { return std::move(buf); }

  private:
    std::vector<uint8_t> buf;
};

/**
 * Bounds-checked decoder. Truncated or oversized reads throw
 * CompileError (stage Cache, code CacheCorrupt) instead of reading
 * garbage — a daemon must survive any byte stream a client or a
 * damaged store entry hands it.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : p(data), n(size)
    {
    }
    explicit ByteReader(const std::vector<uint8_t> &b)
        : ByteReader(b.data(), b.size())
    {
    }

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }
    double f64();
    std::string str();
    std::vector<uint8_t> bytes();

    size_t remaining() const { return n - off; }
    bool done() const { return off == n; }

  private:
    [[noreturn]] void fail(const std::string &what) const;
    const uint8_t *p;
    size_t n;
    size_t off = 0;
};

// ---- graph text container ---------------------------------------

/**
 * Serialize a graph (topology + operator bodies + pragmas) to the
 * .pld text container:
 *
 *   pldapp <name>
 *   extin <stream>            (one per external input)
 *   extout <stream>           (one per external output)
 *   op <instName> <numLines>  (then numLines of printOperator text)
 *   link <srcOp> <srcPort> <dstOp> <dstPort> <depth>
 *   end
 */
std::string encodeGraphText(const ir::Graph &g);

/**
 * Parse a .pld container. The container framing is validated with
 * structured errors (CompileError, stage Link); operator bodies are
 * handed to ir::parseOperator, which fatal()s on malformed input —
 * the daemon trusts its local clients exactly as far as the CLI
 * trusts its own process (see DESIGN.md §14 on the trust boundary).
 */
ir::Graph decodeGraphText(const std::string &text);

// ---- canonical build artifact ------------------------------------

/** Deterministic per-operator compile summary. */
struct OpSummary
{
    std::string name;
    uint64_t irHash = 0;
    uint8_t target = 0;       ///< ir::Target
    int32_t page = -1;
    uint8_t softcoreTier = 0; ///< rvgen::Tier actually built
    uint8_t finalCode = 0;    ///< CompileCode
    bool degraded = false;
    bool failed = false;
};

/**
 * The service-level compile artifact: everything a client needs to
 * run the app (bindings, images, fallbacks) plus the deterministic
 * outcome summary — and nothing scheduling- or cache-dependent, so
 * encode() is bit-identical for any thread count and for warm vs
 * cold caches.
 */
struct BuildArtifact
{
    uint8_t level = 0; ///< flow::OptLevel
    double fmaxMHz = 0;
    int32_t pagesUsed = 0;
    uint64_t totalBitstreamBytes = 0;
    bool useNoc = true;
    std::vector<OpSummary> ops;
    std::vector<sys::PageBinding> bindings;

    static BuildArtifact fromAppBuild(const flow::AppBuild &b);

    /**
     * Skeleton AppBuild sufficient to serve as the `base` of
     * PldCompiler::buildSwapArtifact: per-op irHash + page bindings +
     * level + sysCfg. Lets a warm-restarted daemon accept swap
     * requests against builds it served from the on-disk store.
     */
    flow::AppBuild toSkeletonAppBuild() const;

    std::vector<uint8_t> encode() const;
    /** Throws CompileError on malformed/truncated input. */
    static BuildArtifact decode(const std::vector<uint8_t> &blob);
};

/** Canonical swap-artifact blob (binding + metadata, no provenance). */
struct SwapBlob
{
    std::string op;
    bool fnChanged = false;
    sys::PageBinding binding;

    std::vector<uint8_t> encode() const;
    static SwapBlob decode(const std::vector<uint8_t> &blob);
};

// ---- message envelope --------------------------------------------

enum class MsgType : uint8_t
{
    CompileReq = 1,
    CompileResp = 2,
    SwapReq = 3,
    SwapResp = 4,
    StatsReq = 5,
    StatsResp = 6,
    ShutdownReq = 7,
    ShutdownAck = 8,
    /** Health probe: u64 nonce in, the same nonce back. Served
     * before any compile work, so it answers "is the daemon alive
     * and reading its socket" — the retry loop's restart detector. */
    PingReq = 9,
    PingResp = 10,
};

/** Hard cap on one frame (softcore images are tens of KB; a whole
 * response with every binding stays far below this). */
constexpr uint32_t kMaxFrameBytes = 256u << 20;

/**
 * Blocking framed I/O on a stream fd. readFrame returns false on a
 * clean EOF at a frame boundary; throws CompileError on a short
 * frame, an oversized length, or an I/O error. writeFrame throws on
 * error (EPIPE after a client died surfaces here; the daemon treats
 * it as an abandoned response, never a crash).
 */
bool readFrame(int fd, std::vector<uint8_t> *payload);
void writeFrame(int fd, const std::vector<uint8_t> &payload);

/** Per-request compile options (the wire subset of CompileOptions). */
struct RequestOptions
{
    uint8_t level = 1; ///< flow::OptLevel, default O1
    uint64_t seed = 1;
    double effort = 1.0;
    uint32_t parallelJobs = 0;
    uint8_t softcoreTier = 1; ///< rvgen::Tier, default Os
    /** PLD_FAULT-grammar plan applied to this request only. */
    std::string faultSpec;
    /** Daemon-side path for a per-request Chrome trace (debug). */
    std::string traceFile;

    void encodeInto(ByteWriter &w) const;
    static RequestOptions decodeFrom(ByteReader &r);
};

struct CompileRequest
{
    RequestOptions opts;
    std::string graphText;

    std::vector<uint8_t> encode() const;
    static CompileRequest decode(ByteReader &r);
};

struct SwapRequest
{
    RequestOptions opts;
    uint64_t baseBuild = 0; ///< buildId from a CompileResponse
    std::string opName;
    std::string graphText; ///< the edited graph

    std::vector<uint8_t> encode() const;
    static SwapRequest decode(ByteReader &r);
};

enum class RespStatus : uint8_t
{
    Ok = 0,
    /** Admission control refused the request (bounded queue full). */
    Rejected = 1,
    /** The compile ran but failed (diagnostics carry the story). */
    Failed = 2,
};

/** Response to CompileReq and SwapReq (blob meaning differs). */
struct CompileResponse
{
    uint8_t msgType = static_cast<uint8_t>(MsgType::CompileResp);
    RespStatus status = RespStatus::Ok;
    /** Request key == build id (compile) / swap key (swap). */
    uint64_t key = 0;
    bool storeHit = false;
    bool coalesced = false;
    double seconds = 0;
    CompileStatus diags;
    std::vector<uint8_t> blob;

    std::vector<uint8_t> encode() const;
    static CompileResponse decode(ByteReader &r, uint8_t msg_type);
};

/** Encode/decode a CompileStatus (diagnostics list). */
void encodeDiags(ByteWriter &w, const CompileStatus &st);
CompileStatus decodeDiags(ByteReader &r);

} // namespace svc
} // namespace pld

#endif // PLD_SVC_WIRE_H
