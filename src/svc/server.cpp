#include "svc/server.h"

#include <algorithm>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"

namespace pld {
namespace svc {

DaemonServer::DaemonServer(CompileService &svc,
                           std::string socket_path,
                           int idle_timeout_ms)
    : svc_(svc), path_(std::move(socket_path)),
      idleTimeoutMs_(idle_timeout_ms < 0 ? 0 : idle_timeout_ms)
{
}

DaemonServer::~DaemonServer() { stop(); }

void
DaemonServer::start()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path))
        pld_fatal("pldd: socket path too long (%zu bytes, max %zu): "
                  "%s",
                  path_.size(), sizeof(addr.sun_path) - 1,
                  path_.c_str());
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        pld_fatal("pldd: socket(): %s", std::strerror(errno));
    ::unlink(path_.c_str()); // stale socket from a previous run
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        pld_fatal("pldd: bind(%s): %s", path_.c_str(),
                  std::strerror(errno));
    if (::listen(listenFd_, 64) != 0)
        pld_fatal("pldd: listen(%s): %s", path_.c_str(),
                  std::strerror(errno));

    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
DaemonServer::stop()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        if (stopping_)
            return;
        stopping_ = true;
        cv_.notify_all();
    }
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR); // unblocks accept()
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Shut down every live connection: a handler blocked in
    // readFrame wakes with EOF instead of waiting for a client that
    // may never hang up. Handlers remove their fd under mtx_ before
    // closing it, so nothing here touches a recycled descriptor.
    {
        std::lock_guard<std::mutex> lk(mtx_);
        for (int fd : clientFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    // In-flight requests still run to completion (and publish to the
    // store/coalescer); new connections are already refused.
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        handlers.swap(handlers_);
    }
    for (auto &t : handlers)
        if (t.joinable())
            t.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(path_.c_str());
}

void
DaemonServer::waitForShutdownRequest()
{
    std::unique_lock<std::mutex> lk(mtx_);
    cv_.wait(lk, [&] { return shutdownRequested_ || stopping_; });
}

void
DaemonServer::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener shut down
        }
        if (idleTimeoutMs_ > 0) {
            timeval tv{};
            tv.tv_sec = idleTimeoutMs_ / 1000;
            tv.tv_usec = (idleTimeoutMs_ % 1000) * 1000;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof(tv));
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                         sizeof(tv));
        }
        std::lock_guard<std::mutex> lk(mtx_);
        if (stopping_) {
            ::close(fd);
            return;
        }
        clientFds_.push_back(fd);
        handlers_.emplace_back([this, fd] { handleClient(fd); });
    }
}

void
DaemonServer::handleClient(int fd)
{
    std::vector<uint8_t> payload;
    bool quit = false;
    while (!quit) {
        try {
            if (!readFrame(fd, &payload))
                break; // clean hang-up
        } catch (const CompileError &e) {
            if (e.diag().code == CompileCode::DeadlineExceeded)
                pld_warn("pldd: dropping idle client (no request "
                         "within %d ms)",
                         idleTimeoutMs_);
            else
                pld_warn("pldd: dropping client: %s",
                         e.diag().render().c_str());
            break;
        }
        if (payload.empty())
            break;

        try {
            ByteReader r(payload);
            auto type = static_cast<MsgType>(r.u8());
            switch (type) {
            case MsgType::CompileReq: {
                CompileResponse resp =
                    svc_.compile(CompileRequest::decode(r));
                writeFrame(fd, resp.encode());
                break;
            }
            case MsgType::SwapReq: {
                CompileResponse resp =
                    svc_.swap(SwapRequest::decode(r));
                writeFrame(fd, resp.encode());
                break;
            }
            case MsgType::PingReq: {
                uint64_t nonce = r.u64();
                ByteWriter w;
                w.u8(static_cast<uint8_t>(MsgType::PingResp));
                w.u64(nonce);
                writeFrame(fd, w.take());
                break;
            }
            case MsgType::StatsReq: {
                ByteWriter w;
                w.u8(static_cast<uint8_t>(MsgType::StatsResp));
                w.str(svc_.statsText());
                writeFrame(fd, w.take());
                break;
            }
            case MsgType::ShutdownReq: {
                ByteWriter w;
                w.u8(static_cast<uint8_t>(MsgType::ShutdownAck));
                writeFrame(fd, w.take());
                std::lock_guard<std::mutex> lk(mtx_);
                shutdownRequested_ = true;
                cv_.notify_all();
                quit = true;
                break;
            }
            default: {
                // Unknown type: answer with a structured failure so
                // a confused client is told, not hung up on.
                Diagnostic d;
                d.code = CompileCode::CompileException;
                d.stage = CompileStage::Link;
                d.severity = DiagSeverity::Error;
                d.detail = "unknown message type " +
                           std::to_string(int(type));
                CompileResponse resp;
                resp.status = RespStatus::Failed;
                resp.diags.add(d);
                writeFrame(fd, resp.encode());
                break;
            }
            }
        } catch (const CompileError &e) {
            // Malformed request payload, or the client died while we
            // were writing its response (EPIPE from writeFrame). The
            // compile itself — if any — already published its result
            // to the coalescer and the store, so waiters on the same
            // request are unaffected; only this connection ends.
            pld_warn("pldd: client request aborted: %s",
                     e.diag().render().c_str());
            break;
        }
    }
    // Deregister before closing so stop() never shutdown()s a
    // descriptor number the kernel has already recycled.
    {
        std::lock_guard<std::mutex> lk(mtx_);
        auto it =
            std::find(clientFds_.begin(), clientFds_.end(), fd);
        if (it != clientFds_.end())
            clientFds_.erase(it);
    }
    ::close(fd);
}

} // namespace svc
} // namespace pld
