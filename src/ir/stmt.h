/**
 * @file
 * Statement nodes of the PLD operator IR.
 *
 * The statement set matches the operator discipline (Sec 3.4): flat
 * structured control flow (for/while/if), scalar and array assignment,
 * stream writes, and a processor-only print (the paper's
 * `#ifdef RISCV printf` idiom, Fig 2(d) lines 8-10).
 */

#ifndef PLD_IR_STMT_H
#define PLD_IR_STMT_H

#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace pld {
namespace ir {

enum class StmtKind : uint8_t {
    Assign,      ///< var[imm] = rhs (args: rhs)
    ArrayStore,  ///< array[imm][index] = rhs (args: index, rhs)
    StreamWrite, ///< write port imm (args: value)
    For,         ///< imm = loop var; immLo/immHi/immStep const bounds
    If,          ///< args: cond; thenBody / elseBody
    While,       ///< args: cond; body
    Print,       ///< processor-only printf; text + args
    Block,       ///< body only
};

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;

/**
 * A single IR statement. Control statements own child statement lists;
 * expression operands live in `args`.
 */
struct Stmt
{
    StmtKind kind;
    int64_t imm = 0;      ///< var/array/port index or loop var index
    int64_t immLo = 0;    ///< For: inclusive start
    int64_t immHi = 0;    ///< For: exclusive end
    int64_t immStep = 1;  ///< For: step (positive)
    int64_t tripEstimate = 0; ///< While: scheduling hint
    std::string text;     ///< Print: format-ish message
    std::vector<ExprPtr> args;
    std::vector<StmtPtr> body;     ///< For/While/Block body, If-then
    std::vector<StmtPtr> elseBody; ///< If-else

    explicit Stmt(StmtKind k) : kind(k) {}

    /** Structural hash over the full subtree. */
    void hashInto(Hasher &h) const;
};

StmtPtr makeStmt(StmtKind k);

} // namespace ir
} // namespace pld

#endif // PLD_IR_STMT_H
