/**
 * @file
 * Scalar types for the PLD operator IR.
 *
 * The IR models the HLS-compatible subset the paper's operator
 * discipline requires (Sec 3.4): arbitrary-precision integers and
 * fixed-point values. Widths are restricted to 1..32 bits; binary
 * operations are computed exactly in 64-bit intermediates and then
 * quantized/wrapped to the result type — the same observable semantics
 * on every target (interpreter, HLS netlist, RV32 softcore).
 */

#ifndef PLD_IR_TYPE_H
#define PLD_IR_TYPE_H

#include <cstdint>
#include <string>

#include "common/hash.h"

namespace pld {
namespace ir {

/** Scalar type kinds. Fixed kinds carry a binary point. */
enum class TypeKind : uint8_t {
    UInt,   ///< unsigned integer, W bits
    Int,    ///< signed two's-complement integer, W bits
    UFixed, ///< unsigned fixed point, W bits, I integer bits
    Fixed,  ///< signed fixed point, W bits, I integer bits
};

/**
 * A scalar IR type. Value semantics; cheap to copy.
 *
 * For Fixed/UFixed, intBits counts the bits left of the binary point
 * (including sign for Fixed), so fracBits() == width - intBits.
 * Integer kinds behave as fixed-point with fracBits() == 0.
 *
 * Widths: declared storage (variables, arrays, stream elements) is
 * limited to 1..32 bits, but expression intermediates may grow to 64
 * bits under promotion — mirroring HLS, where `ap_fixed<32,17>`
 * products flow through `ap_fixed<64,40>` wires before being
 * quantized on assignment (paper Fig 2d).
 */
struct Type
{
    TypeKind kind = TypeKind::UInt;
    uint8_t width = 32;  ///< total bits, 1..64 (storage: 1..32)
    int8_t intBits = 32; ///< integer bits (== width for Int/UInt)

    constexpr Type() = default;
    constexpr Type(TypeKind k, int w, int i)
        : kind(k), width(static_cast<uint8_t>(w)),
          intBits(static_cast<int8_t>(i))
    {
    }

    /** Unsigned integer type of @p w bits. */
    static constexpr Type u(int w) { return {TypeKind::UInt, w, w}; }
    /** Signed integer type of @p w bits. */
    static constexpr Type s(int w) { return {TypeKind::Int, w, w}; }
    /** Signed fixed-point with @p w total and @p i integer bits. */
    static constexpr Type fx(int w, int i)
    {
        return {TypeKind::Fixed, w, i};
    }
    /** Unsigned fixed-point with @p w total and @p i integer bits. */
    static constexpr Type ufx(int w, int i)
    {
        return {TypeKind::UFixed, w, i};
    }
    /** The 1-bit boolean produced by comparisons. */
    static constexpr Type boolean() { return u(1); }
    /** The 32-bit raw stream word type (paper: ap_uint<32>). */
    static constexpr Type word() { return u(32); }

    bool
    isSigned() const
    {
        return kind == TypeKind::Int || kind == TypeKind::Fixed;
    }
    bool
    isFixed() const
    {
        return kind == TypeKind::Fixed || kind == TypeKind::UFixed;
    }
    /** Bits right of the binary point (0 for integers). */
    int fracBits() const { return width - intBits; }

    bool
    operator==(const Type &o) const
    {
        return kind == o.kind && width == o.width && intBits == o.intBits;
    }
    bool operator!=(const Type &o) const { return !(*this == o); }

    /** Debug/printer spelling, e.g. "fx<32,17>", "u8". */
    std::string toString() const;

    /** Mix into a structural hash. */
    void
    hashInto(Hasher &h) const
    {
        h.u64((uint64_t(kind) << 16) | (uint64_t(width) << 8) |
              uint8_t(intBits));
    }
};

/** Result type for add/sub under HLS-like promotion (capped at 32). */
Type promoteAdd(const Type &a, const Type &b);

/** Result type for multiply under HLS-like promotion (capped at 32). */
Type promoteMul(const Type &a, const Type &b);

/** Result type for divide (numerator's format, signedness merged). */
Type promoteDiv(const Type &a, const Type &b);

/** Result type for bitwise ops (max width, signed if either is). */
Type promoteBits(const Type &a, const Type &b);

} // namespace ir
} // namespace pld

#endif // PLD_IR_TYPE_H
