#include "ir/builder.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pld {
namespace ir {

namespace {

int64_t
signExtendBits(uint64_t v, int w)
{
    uint64_t m = 1ull << (w - 1);
    return static_cast<int64_t>((v ^ m) - m);
}

int64_t
quantize(double v, Type t)
{
    double scaled = std::ldexp(v, t.fracBits());
    int64_t raw = static_cast<int64_t>(std::floor(scaled));
    // Wrap to width like an assignment would.
    if (t.width < 64) {
        uint64_t m = (1ull << t.width) - 1;
        uint64_t bits = static_cast<uint64_t>(raw) & m;
        raw = t.isSigned() ? signExtendBits(bits, t.width)
                           : static_cast<int64_t>(bits);
    }
    return raw;
}

} // namespace

Ex
Ex::cast(Type to) const
{
    return Ex(makeExpr(ExprKind::Cast, to, {e}));
}

Ex
Ex::bitcast(Type to) const
{
    return Ex(makeExpr(ExprKind::BitCast, to, {e}));
}

Ex
Ex::rawWord() const
{
    return bitcast(Type::word());
}

Var::operator Ex() const
{
    pld_assert(owner, "unbound Var handle");
    return owner->refVar(idx);
}

Ex
Arr::operator[](const Ex &index) const
{
    pld_assert(owner, "unbound Arr handle");
    return owner->refArray(idx, index);
}

Ex
Arr::operator[](int64_t index) const
{
    return (*this)[lit(index)];
}

namespace {

Ex
bin(ExprKind k, const Ex &a, const Ex &b)
{
    pld_assert(a.valid() && b.valid(), "binop on empty Ex");
    std::vector<ExprPtr> args{a.node(), b.node()};
    Type rt = operatorResultType(k, args);
    return Ex(makeExpr(k, rt, std::move(args)));
}

} // namespace

Ex operator+(const Ex &a, const Ex &b) { return bin(ExprKind::Add, a, b); }
Ex operator-(const Ex &a, const Ex &b) { return bin(ExprKind::Sub, a, b); }
Ex operator*(const Ex &a, const Ex &b) { return bin(ExprKind::Mul, a, b); }
Ex operator/(const Ex &a, const Ex &b) { return bin(ExprKind::Div, a, b); }
Ex operator%(const Ex &a, const Ex &b) { return bin(ExprKind::Mod, a, b); }
Ex operator&(const Ex &a, const Ex &b) { return bin(ExprKind::And, a, b); }
Ex operator|(const Ex &a, const Ex &b) { return bin(ExprKind::Or, a, b); }
Ex operator^(const Ex &a, const Ex &b) { return bin(ExprKind::Xor, a, b); }
Ex operator<(const Ex &a, const Ex &b) { return bin(ExprKind::Lt, a, b); }
Ex operator<=(const Ex &a, const Ex &b) { return bin(ExprKind::Le, a, b); }
Ex operator>(const Ex &a, const Ex &b) { return bin(ExprKind::Gt, a, b); }
Ex operator>=(const Ex &a, const Ex &b) { return bin(ExprKind::Ge, a, b); }
Ex operator==(const Ex &a, const Ex &b) { return bin(ExprKind::Eq, a, b); }
Ex operator!=(const Ex &a, const Ex &b) { return bin(ExprKind::Ne, a, b); }
Ex operator&&(const Ex &a, const Ex &b) { return bin(ExprKind::LAnd, a, b); }
Ex operator||(const Ex &a, const Ex &b) { return bin(ExprKind::LOr, a, b); }

Ex
operator<<(const Ex &a, int sh)
{
    return Ex(makeExpr(ExprKind::Shl, a.type(),
                       {a.node(), makeConst(Type::s(32), sh)}));
}

Ex
operator>>(const Ex &a, int sh)
{
    return Ex(makeExpr(ExprKind::Shr, a.type(),
                       {a.node(), makeConst(Type::s(32), sh)}));
}

Ex
operator-(const Ex &a)
{
    std::vector<ExprPtr> args{a.node()};
    Type rt = operatorResultType(ExprKind::Neg, args);
    return Ex(makeExpr(ExprKind::Neg, rt, std::move(args)));
}

Ex
operator~(const Ex &a)
{
    return Ex(makeExpr(ExprKind::Not, a.type(), {a.node()}));
}

Ex
operator!(const Ex &a)
{
    return Ex(makeExpr(ExprKind::LNot, Type::boolean(), {a.node()}));
}

Ex
lit(int64_t v, Type t)
{
    return Ex(makeConst(t, v * (int64_t(1) << t.fracBits())));
}

Ex
litF(double v, Type t)
{
    return Ex(makeConst(t, quantize(v, t)));
}

namespace {

Ex
litLike(int64_t v, const Ex &like)
{
    return lit(v, like.type());
}

} // namespace

Ex operator+(const Ex &a, int64_t v) { return a + litLike(v, a); }
Ex operator+(int64_t v, const Ex &a) { return litLike(v, a) + a; }
Ex operator-(const Ex &a, int64_t v) { return a - litLike(v, a); }
Ex operator-(int64_t v, const Ex &a) { return litLike(v, a) - a; }
Ex operator*(const Ex &a, int64_t v) { return a * litLike(v, a); }
Ex operator*(int64_t v, const Ex &a) { return litLike(v, a) * a; }
Ex operator/(const Ex &a, int64_t v) { return a / litLike(v, a); }
Ex operator%(const Ex &a, int64_t v) { return a % litLike(v, a); }
Ex operator<(const Ex &a, int64_t v) { return a < litLike(v, a); }
Ex operator>(const Ex &a, int64_t v) { return a > litLike(v, a); }
Ex operator<=(const Ex &a, int64_t v) { return a <= litLike(v, a); }
Ex operator>=(const Ex &a, int64_t v) { return a >= litLike(v, a); }
Ex operator==(const Ex &a, int64_t v) { return a == litLike(v, a); }
Ex operator!=(const Ex &a, int64_t v) { return a != litLike(v, a); }

OpBuilder::OpBuilder(std::string op_name)
{
    fn.name = std::move(op_name);
    blockStack.push_back(&fn.body);
}

PortRef
OpBuilder::input(const std::string &port_name)
{
    fn.ports.push_back({port_name, PortDir::In});
    return {static_cast<int>(fn.ports.size()) - 1, PortDir::In};
}

PortRef
OpBuilder::output(const std::string &port_name)
{
    fn.ports.push_back({port_name, PortDir::Out});
    return {static_cast<int>(fn.ports.size()) - 1, PortDir::Out};
}

Var
OpBuilder::var(const std::string &var_name, Type t)
{
    fn.vars.push_back({var_name, t});
    return {static_cast<int>(fn.vars.size()) - 1, t, this};
}

Arr
OpBuilder::array(const std::string &arr_name, Type elem, int64_t size)
{
    pld_assert(size > 0, "array %s needs positive size",
               arr_name.c_str());
    fn.arrays.push_back({arr_name, elem, size, {}});
    return {static_cast<int>(fn.arrays.size()) - 1, elem, this};
}

Arr
OpBuilder::rom(const std::string &arr_name, Type elem,
               const std::vector<double> &values)
{
    std::vector<int64_t> raw;
    raw.reserve(values.size());
    for (double v : values)
        raw.push_back(quantize(v, elem));
    return romRaw(arr_name, elem, raw);
}

Arr
OpBuilder::romRaw(const std::string &arr_name, Type elem,
                  const std::vector<int64_t> &raw)
{
    pld_assert(!raw.empty(), "rom %s needs contents", arr_name.c_str());
    fn.arrays.push_back(
        {arr_name, elem, static_cast<int64_t>(raw.size()), raw});
    return {static_cast<int>(fn.arrays.size()) - 1, elem, this};
}

Ex
OpBuilder::read(PortRef port)
{
    pld_assert(port.dir == PortDir::In, "read from non-input port");
    return Ex(makeExpr(ExprKind::StreamRead, Type::word(), {},
                       port.idx));
}

Ex
OpBuilder::readAs(PortRef port, Type as)
{
    return read(port).bitcast(as);
}

void
OpBuilder::write(PortRef port, const Ex &value)
{
    pld_assert(port.dir == PortDir::Out, "write to non-output port");
    auto s = makeStmt(StmtKind::StreamWrite);
    s->imm = port.idx;
    s->args.push_back(value.rawWord().node());
    emit(std::move(s));
}

void
OpBuilder::set(Var v, const Ex &value)
{
    pld_assert(v.owner == this, "Var from another builder");
    auto s = makeStmt(StmtKind::Assign);
    s->imm = v.idx;
    s->args.push_back(value.cast(v.type).node());
    emit(std::move(s));
}

void
OpBuilder::store(Arr a, const Ex &index, const Ex &value)
{
    pld_assert(a.owner == this, "Arr from another builder");
    auto s = makeStmt(StmtKind::ArrayStore);
    s->imm = a.idx;
    s->args.push_back(index.node());
    s->args.push_back(value.cast(a.elemType).node());
    emit(std::move(s));
}

void
OpBuilder::store(Arr a, int64_t index, const Ex &value)
{
    store(a, lit(index), value);
}

void
OpBuilder::forLoop(int64_t lo, int64_t hi,
                   const std::function<void(Ex)> &body_fn)
{
    forLoopStep(lo, hi, 1, body_fn);
}

void
OpBuilder::forLoopStep(int64_t lo, int64_t hi, int64_t step,
                       const std::function<void(Ex)> &body_fn)
{
    pld_assert(step > 0, "forLoop needs positive step");
    Var iv = var("__i" + std::to_string(loopVarCounter++),
                 Type::s(32));
    auto s = makeStmt(StmtKind::For);
    s->imm = iv.idx;
    s->immLo = lo;
    s->immHi = hi;
    s->immStep = step;
    Stmt *raw = s.get();
    emit(std::move(s));
    blockStack.push_back(&raw->body);
    body_fn(refVar(iv.idx));
    blockStack.pop_back();
}

void
OpBuilder::ifThen(const Ex &cond, const std::function<void()> &then_fn)
{
    ifElse(cond, then_fn, nullptr);
}

void
OpBuilder::ifElse(const Ex &cond, const std::function<void()> &then_fn,
                  const std::function<void()> &else_fn)
{
    auto s = makeStmt(StmtKind::If);
    s->args.push_back(cond.node());
    Stmt *raw = s.get();
    emit(std::move(s));
    blockStack.push_back(&raw->body);
    then_fn();
    blockStack.pop_back();
    if (else_fn) {
        blockStack.push_back(&raw->elseBody);
        else_fn();
        blockStack.pop_back();
    }
}

void
OpBuilder::whileLoop(const Ex &cond,
                     const std::function<void()> &body_fn,
                     int64_t trip_estimate)
{
    auto s = makeStmt(StmtKind::While);
    s->args.push_back(cond.node());
    s->tripEstimate = trip_estimate;
    Stmt *raw = s.get();
    emit(std::move(s));
    blockStack.push_back(&raw->body);
    body_fn();
    blockStack.pop_back();
}

void
OpBuilder::print(const std::string &text, std::vector<Ex> values)
{
    auto s = makeStmt(StmtKind::Print);
    s->text = text;
    for (const auto &v : values)
        s->args.push_back(v.node());
    emit(std::move(s));
}

Ex
OpBuilder::select(const Ex &cond, const Ex &a, const Ex &b)
{
    return Ex(makeExpr(ExprKind::Select, a.type(),
                       {cond.node(), a.node(),
                        b.cast(a.type()).node()}));
}

void
OpBuilder::pragma(Target target, int page_num)
{
    fn.pragma.target = target;
    fn.pragma.pageNum = page_num;
}

OperatorFn
OpBuilder::finish()
{
    pld_assert(blockStack.size() == 1, "unbalanced control blocks");
    return std::move(fn);
}

Ex
OpBuilder::refVar(int idx) const
{
    return Ex(makeExpr(ExprKind::VarRef, fn.vars[idx].type, {}, idx));
}

Ex
OpBuilder::refArray(int idx, const Ex &index) const
{
    return Ex(makeExpr(ExprKind::ArrayRef, fn.arrays[idx].elemType,
                       {index.node()}, idx));
}

void
OpBuilder::emit(StmtPtr s)
{
    cur()->push_back(std::move(s));
}

std::vector<StmtPtr> *
OpBuilder::cur()
{
    return blockStack.back();
}

} // namespace ir
} // namespace pld
