#include "ir/operator_fn.h"

namespace pld {
namespace ir {

int
OperatorFn::findPort(const std::string &port_name) const
{
    for (size_t i = 0; i < ports.size(); ++i) {
        if (ports[i].name == port_name)
            return static_cast<int>(i);
    }
    return -1;
}

int
OperatorFn::numInputs() const
{
    int n = 0;
    for (const auto &p : ports)
        n += (p.dir == PortDir::In);
    return n;
}

int
OperatorFn::numOutputs() const
{
    int n = 0;
    for (const auto &p : ports)
        n += (p.dir == PortDir::Out);
    return n;
}

uint64_t
OperatorFn::contentHash() const
{
    Hasher h;
    h.str(name);
    h.u64(ports.size());
    for (const auto &p : ports)
        p.hashInto(h);
    h.u64(vars.size());
    for (const auto &v : vars)
        v.hashInto(h);
    h.u64(arrays.size());
    for (const auto &a : arrays)
        a.hashInto(h);
    h.u64(body.size());
    for (const auto &s : body)
        s->hashInto(h);
    return h.digest();
}

} // namespace ir
} // namespace pld
