#include "ir/graph.h"

#include "common/logging.h"

namespace pld {
namespace ir {

int
Graph::addOperator(OperatorFn fn, std::string inst_name)
{
    if (inst_name.empty())
        inst_name = fn.name;
    ops.push_back({std::move(inst_name), std::move(fn)});
    return static_cast<int>(ops.size()) - 1;
}

int
Graph::addExtInput(const std::string &stream_name)
{
    extInputs.push_back(stream_name);
    return static_cast<int>(extInputs.size()) - 1;
}

int
Graph::addExtOutput(const std::string &stream_name)
{
    extOutputs.push_back(stream_name);
    return static_cast<int>(extOutputs.size()) - 1;
}

void
Graph::connect(Endpoint src, Endpoint dst, int depth)
{
    links.push_back({src, dst, depth});
}

int
Graph::findOp(const std::string &inst_name) const
{
    for (size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].instName == inst_name)
            return static_cast<int>(i);
    }
    return -1;
}

int
Graph::linkInto(Endpoint dst) const
{
    for (size_t i = 0; i < links.size(); ++i) {
        if (links[i].dst == dst)
            return static_cast<int>(i);
    }
    return -1;
}

int
Graph::linkFrom(Endpoint src) const
{
    for (size_t i = 0; i < links.size(); ++i) {
        if (links[i].src == src)
            return static_cast<int>(i);
    }
    return -1;
}

std::vector<std::string>
Graph::check() const
{
    std::vector<std::string> problems;
    auto complain = [&](const std::string &msg) {
        problems.push_back(msg);
    };

    for (size_t oi = 0; oi < ops.size(); ++oi) {
        const auto &inst = ops[oi];
        for (size_t pi = 0; pi < inst.fn.ports.size(); ++pi) {
            const auto &port = inst.fn.ports[pi];
            Endpoint ep{static_cast<int>(oi), static_cast<int>(pi)};
            int fan = 0;
            for (const auto &l : links) {
                if (port.dir == PortDir::In && l.dst == ep)
                    ++fan;
                if (port.dir == PortDir::Out && l.src == ep)
                    ++fan;
            }
            if (fan != 1) {
                complain(inst.instName + "." + port.name + ": " +
                         (port.dir == PortDir::In ? "driven" :
                                                    "consumed") +
                         " " + std::to_string(fan) +
                         " times (want exactly 1)");
            }
        }
    }

    for (size_t i = 0; i < extInputs.size(); ++i) {
        Endpoint ep{Endpoint::kExternal, static_cast<int>(i)};
        int fan = 0;
        for (const auto &l : links)
            if (l.src == ep)
                ++fan;
        if (fan != 1)
            complain("external input " + extInputs[i] +
                     " feeds " + std::to_string(fan) + " links");
    }
    for (size_t i = 0; i < extOutputs.size(); ++i) {
        Endpoint ep{Endpoint::kExternal, static_cast<int>(i)};
        int fan = 0;
        for (const auto &l : links)
            if (l.dst == ep)
                ++fan;
        if (fan != 1)
            complain("external output " + extOutputs[i] +
                     " fed by " + std::to_string(fan) + " links");
    }

    for (const auto &l : links) {
        if (!l.src.isExternal()) {
            const auto &fn = ops[l.src.op].fn;
            if (l.src.port >= static_cast<int>(fn.ports.size()) ||
                fn.ports[l.src.port].dir != PortDir::Out) {
                complain("link source " + ops[l.src.op].instName +
                         " port " + std::to_string(l.src.port) +
                         " is not an output");
            }
        }
        if (!l.dst.isExternal()) {
            const auto &fn = ops[l.dst.op].fn;
            if (l.dst.port >= static_cast<int>(fn.ports.size()) ||
                fn.ports[l.dst.port].dir != PortDir::In) {
                complain("link dest " + ops[l.dst.op].instName +
                         " port " + std::to_string(l.dst.port) +
                         " is not an input");
            }
        }
    }

    return problems;
}

uint64_t
Graph::contentHash() const
{
    Hasher h;
    h.str(name);
    h.u64(ops.size());
    for (const auto &inst : ops) {
        h.str(inst.instName);
        h.u64(inst.fn.contentHash());
        inst.fn.pragma.hashInto(h);
    }
    for (const auto &s : extInputs)
        h.str(s);
    for (const auto &s : extOutputs)
        h.str(s);
    h.u64(links.size());
    for (const auto &l : links) {
        h.i64(l.src.op);
        h.i64(l.src.port);
        h.i64(l.dst.op);
        h.i64(l.dst.port);
        h.i64(l.depth);
    }
    return h.digest();
}

GraphBuilder::GraphBuilder(std::string app_name) : g(std::move(app_name))
{
}

GraphBuilder::WireId
GraphBuilder::wire(int depth)
{
    WireInfo w;
    w.depth = depth;
    wires.push_back(w);
    return {static_cast<int>(wires.size()) - 1};
}

GraphBuilder::WireId
GraphBuilder::extIn(const std::string &stream_name)
{
    WireId id = wire();
    wires[id.id].extInIdx = g.addExtInput(stream_name);
    wires[id.id].hasProducer = true;
    wires[id.id].producer = {Endpoint::kExternal,
                             wires[id.id].extInIdx};
    return id;
}

GraphBuilder::WireId
GraphBuilder::extOut(const std::string &stream_name)
{
    WireId id = wire();
    wires[id.id].extOutIdx = g.addExtOutput(stream_name);
    wires[id.id].hasConsumer = true;
    wires[id.id].consumer = {Endpoint::kExternal,
                             wires[id.id].extOutIdx};
    return id;
}

int
GraphBuilder::inst(const OperatorFn &fn, std::vector<WireId> inputs,
                   std::vector<WireId> outputs, std::string inst_name)
{
    pld_assert(static_cast<int>(inputs.size()) == fn.numInputs(),
               "%s: got %zu input wires, needs %d", fn.name.c_str(),
               inputs.size(), fn.numInputs());
    pld_assert(static_cast<int>(outputs.size()) == fn.numOutputs(),
               "%s: got %zu output wires, needs %d", fn.name.c_str(),
               outputs.size(), fn.numOutputs());

    int op = g.addOperator(fn, std::move(inst_name));
    size_t next_in = 0, next_out = 0;
    for (size_t pi = 0; pi < fn.ports.size(); ++pi) {
        Endpoint ep{op, static_cast<int>(pi)};
        if (fn.ports[pi].dir == PortDir::In) {
            WireInfo &w = wires[inputs[next_in++].id];
            pld_assert(!w.hasConsumer,
                       "wire already consumed (streams are "
                       "point-to-point)");
            w.hasConsumer = true;
            w.consumer = ep;
        } else {
            WireInfo &w = wires[outputs[next_out++].id];
            pld_assert(!w.hasProducer, "wire already driven");
            w.hasProducer = true;
            w.producer = ep;
        }
    }
    return op;
}

Graph
GraphBuilder::finish()
{
    for (size_t i = 0; i < wires.size(); ++i) {
        const WireInfo &w = wires[i];
        pld_assert(w.hasProducer && w.hasConsumer,
                   "wire %zu dangling (producer=%d consumer=%d)", i,
                   int(w.hasProducer), int(w.hasConsumer));
        g.connect(w.producer, w.consumer, w.depth);
    }
    auto problems = g.check();
    for (const auto &p : problems)
        pld_warn("graph %s: %s", g.name.c_str(), p.c_str());
    pld_assert(problems.empty(), "graph %s is malformed",
               g.name.c_str());
    return std::move(g);
}

} // namespace ir
} // namespace pld
