/**
 * @file
 * Application dataflow graphs: operators composed by stream links.
 *
 * A Graph is the IR of the paper's top-level kernel (Fig 2b/2c): a set
 * of operator instances whose stream ports are wired together by
 * latency-insensitive links, plus external input/output streams that
 * the DMA engine drives. The GraphBuilder mirrors the paper's
 * function-composition style of describing the graph in C.
 */

#ifndef PLD_IR_GRAPH_H
#define PLD_IR_GRAPH_H

#include <string>
#include <vector>

#include "ir/operator_fn.h"

namespace pld {
namespace ir {

/**
 * One end of a stream link. `op == kExternal` designates the
 * application boundary (DMA); then `port` indexes extInputs or
 * extOutputs depending on which side of the link it sits.
 */
struct Endpoint
{
    static constexpr int kExternal = -1;
    int op = kExternal;
    int port = 0;

    bool isExternal() const { return op == kExternal; }
    bool
    operator==(const Endpoint &o) const
    {
        return op == o.op && port == o.port;
    }
};

/** A latency-insensitive stream link (FIFO) between two endpoints. */
struct Link
{
    Endpoint src;
    Endpoint dst;
    /** FIFO capacity in 32-bit words for direct (non-NoC) transport. */
    int depth = 64;
};

/** An operator instance placed in a graph. */
struct OpInstance
{
    std::string instName;
    OperatorFn fn;
};

/**
 * The application dataflow graph: the in-memory form of dfg.ir.
 */
class Graph
{
  public:
    explicit Graph(std::string app_name = "app")
        : name(std::move(app_name))
    {
    }

    std::string name;
    std::vector<OpInstance> ops;
    std::vector<std::string> extInputs;
    std::vector<std::string> extOutputs;
    std::vector<Link> links;

    /** Add an operator instance; returns its index. */
    int addOperator(OperatorFn fn, std::string inst_name = "");

    /** Declare an external input stream; returns its index. */
    int addExtInput(const std::string &stream_name);

    /** Declare an external output stream; returns its index. */
    int addExtOutput(const std::string &stream_name);

    /** Wire src (op out-port) to dst (op in-port). */
    void connect(Endpoint src, Endpoint dst, int depth = 64);

    /** Find operator instance index by name, or -1. */
    int findOp(const std::string &inst_name) const;

    /** The single link driving @p dst, or -1 if absent. */
    int linkInto(Endpoint dst) const;

    /** The single link driven by @p src, or -1 if absent. */
    int linkFrom(Endpoint src) const;

    /**
     * Structural sanity: every operator input driven exactly once,
     * every output consumed exactly once, externals wired. Returns a
     * list of human-readable problems (empty when well formed).
     */
    std::vector<std::string> check() const;

    /** Combined content hash of all operators plus topology. */
    uint64_t contentHash() const;
};

/**
 * Wire-based composition helper mirroring the paper's top.cpp style:
 *
 *   GraphBuilder g("optical_flow");
 *   auto in  = g.extIn("Input_1");
 *   auto out = g.extOut("Output_1");
 *   auto up1 = g.wire(), up2 = g.wire(), gx = g.wire();
 *   g.inst(unpack, {in}, {up1, up2});
 *   g.inst(grad_xy, {up1}, {gx});
 *   ...
 *   Graph graph = g.finish();
 */
class GraphBuilder
{
  public:
    /** Opaque wire id connecting one producer to one consumer. */
    struct WireId
    {
        int id = -1;
    };

    explicit GraphBuilder(std::string app_name);

    /** New internal stream wire (optionally with FIFO depth). */
    WireId wire(int depth = 64);

    /** External input wire. */
    WireId extIn(const std::string &stream_name);

    /** External output wire. */
    WireId extOut(const std::string &stream_name);

    /**
     * Instantiate @p fn binding wires to its input ports then output
     * ports, in declaration order.
     */
    int inst(const OperatorFn &fn, std::vector<WireId> inputs,
             std::vector<WireId> outputs, std::string inst_name = "");

    /** Resolve wires into links; panics on dangling wires. */
    Graph finish();

  private:
    struct WireInfo
    {
        Endpoint producer{Endpoint::kExternal, -1};
        Endpoint consumer{Endpoint::kExternal, -1};
        bool hasProducer = false;
        bool hasConsumer = false;
        int extInIdx = -1;  ///< >=0 if this wire is an external input
        int extOutIdx = -1; ///< >=0 if this wire is an external output
        int depth = 64;
    };

    Graph g;
    std::vector<WireInfo> wires;
};

} // namespace ir
} // namespace pld

#endif // PLD_IR_GRAPH_H
