/**
 * @file
 * Operator functions: the unit of separate compilation.
 *
 * An OperatorFn corresponds to one C operator file in the paper (e.g.
 * flow_calc.cpp in Fig 2): stream ports, local scalars/arrays, a
 * structured body, and the mapping pragma (`#pragma target=HW p_num=8`
 * in Fig 2(a)) that selects the compile flow and physical page.
 */

#ifndef PLD_IR_OPERATOR_FN_H
#define PLD_IR_OPERATOR_FN_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace pld {
namespace ir {

/** Stream port direction, from the operator's point of view. */
enum class PortDir : uint8_t { In, Out };

/** A latency-insensitive stream port. Streams carry 32-bit words. */
struct Port
{
    std::string name;
    PortDir dir = PortDir::In;

    void
    hashInto(Hasher &h) const
    {
        h.str(name);
        h.u64(static_cast<uint64_t>(dir));
    }
};

/** A local scalar variable. */
struct VarDecl
{
    std::string name;
    Type type;

    void
    hashInto(Hasher &h) const
    {
        h.str(name);
        type.hashInto(h);
    }
};

/**
 * A local array. Arrays map to BRAM on FPGA pages and to data memory
 * on softcores. `init` (raw scaled element bits) turns the array into
 * a ROM — used for weights and training-set shards.
 */
struct ArrayDecl
{
    std::string name;
    Type elemType;
    int64_t size = 0;
    std::vector<int64_t> init;

    bool isRom() const { return !init.empty(); }

    void
    hashInto(Hasher &h) const
    {
        h.str(name);
        elemType.hashInto(h);
        h.i64(size);
        h.u64(init.size());
        for (int64_t v : init)
            h.i64(v);
    }
};

/** Compile-flow target selected by the operator's pragma (Fig 2a). */
enum class Target : uint8_t {
    HW,    ///< -O1: separate compile to an FPGA page
    RISCV, ///< -O0: compile to the page's softcore overlay
};

/** Mapping pragma attached to an operator. */
struct Pragma
{
    Target target = Target::HW;
    /** Requested physical page number; -1 lets the mapper choose. */
    int pageNum = -1;

    void
    hashInto(Hasher &h) const
    {
        h.u64(static_cast<uint64_t>(target));
        h.i64(pageNum);
    }
};

/**
 * One separately compiled operator: the IR equivalent of an HLS C
 * function whose arguments are all hls::streams.
 */
struct OperatorFn
{
    std::string name;
    std::vector<Port> ports;
    std::vector<VarDecl> vars;
    std::vector<ArrayDecl> arrays;
    std::vector<StmtPtr> body;
    Pragma pragma;

    /** Index of port @p port_name, or -1. */
    int findPort(const std::string &port_name) const;

    /** Count of input / output ports. */
    int numInputs() const;
    int numOutputs() const;

    /**
     * Structural content hash covering everything that affects
     * compiled artifacts (not the pragma: retargeting must not be
     * confused with editing — see CompileManager).
     */
    uint64_t contentHash() const;
};

} // namespace ir
} // namespace pld

#endif // PLD_IR_OPERATOR_FN_H
