#include "ir/printer.h"

#include <sstream>

#include "common/logging.h"

namespace pld {
namespace ir {

namespace {

std::string
pad(int indent)
{
    return std::string(static_cast<size_t>(indent) * 2, ' ');
}

} // namespace

std::string
printExpr(const ExprPtr &e)
{
    std::ostringstream os;
    switch (e->kind) {
      case ExprKind::Const:
        os << "c" << e->imm << ":" << e->type.toString();
        break;
      case ExprKind::VarRef:
        os << "v" << e->imm;
        break;
      case ExprKind::ArrayRef:
        os << "a" << e->imm << "[" << printExpr(e->args[0]) << "]";
        break;
      case ExprKind::StreamRead:
        os << "read(p" << e->imm << ")";
        break;
      default: {
        os << exprKindName(e->kind) << "(";
        for (size_t i = 0; i < e->args.size(); ++i) {
            if (i)
                os << ", ";
            os << printExpr(e->args[i]);
        }
        os << ")";
        if (e->kind == ExprKind::Cast || e->kind == ExprKind::BitCast)
            os << ":" << e->type.toString();
        break;
      }
    }
    return os.str();
}

std::string
printStmt(const StmtPtr &s, int indent)
{
    std::ostringstream os;
    switch (s->kind) {
      case StmtKind::Assign:
        os << pad(indent) << "v" << s->imm << " = "
           << printExpr(s->args[0]) << "\n";
        break;
      case StmtKind::ArrayStore:
        os << pad(indent) << "a" << s->imm << "["
           << printExpr(s->args[0]) << "] = " << printExpr(s->args[1])
           << "\n";
        break;
      case StmtKind::StreamWrite:
        os << pad(indent) << "write(p" << s->imm << ", "
           << printExpr(s->args[0]) << ")\n";
        break;
      case StmtKind::For:
        os << pad(indent) << "for v" << s->imm << " in [" << s->immLo
           << ", " << s->immHi << ") step " << s->immStep << "\n";
        for (const auto &c : s->body)
            os << printStmt(c, indent + 1);
        break;
      case StmtKind::While:
        os << pad(indent) << "while " << printExpr(s->args[0])
           << " (trip~" << s->tripEstimate << ")\n";
        for (const auto &c : s->body)
            os << printStmt(c, indent + 1);
        break;
      case StmtKind::If:
        os << pad(indent) << "if " << printExpr(s->args[0]) << "\n";
        for (const auto &c : s->body)
            os << printStmt(c, indent + 1);
        if (!s->elseBody.empty()) {
            os << pad(indent) << "else\n";
            for (const auto &c : s->elseBody)
                os << printStmt(c, indent + 1);
        }
        break;
      case StmtKind::Print:
        os << pad(indent) << "print \"" << s->text << "\"";
        for (const auto &a : s->args)
            os << " " << printExpr(a);
        os << "\n";
        break;
      case StmtKind::Block:
        for (const auto &c : s->body)
            os << printStmt(c, indent);
        break;
    }
    return os.str();
}

std::string
printOperator(const OperatorFn &fn)
{
    std::ostringstream os;
    os << "operator " << fn.name << " (target="
       << (fn.pragma.target == Target::HW ? "HW" : "RISCV")
       << " page=" << fn.pragma.pageNum << ")\n";
    for (size_t i = 0; i < fn.ports.size(); ++i) {
        os << "  port p" << i << " "
           << (fn.ports[i].dir == PortDir::In ? "in " : "out ")
           << fn.ports[i].name << "\n";
    }
    for (size_t i = 0; i < fn.vars.size(); ++i) {
        os << "  var v" << i << " " << fn.vars[i].type.toString()
           << " " << fn.vars[i].name << "\n";
    }
    for (size_t i = 0; i < fn.arrays.size(); ++i) {
        os << "  array a" << i << " "
           << fn.arrays[i].elemType.toString() << " "
           << fn.arrays[i].name << "[" << fn.arrays[i].size << "]"
           << (fn.arrays[i].isRom() ? " rom" : "") << "\n";
    }
    for (const auto &s : fn.body)
        os << printStmt(s, 1);
    return os.str();
}

DfgFile
extractDfg(const Graph &g)
{
    DfgFile dfg;
    dfg.appName = g.name;
    dfg.extInputs = g.extInputs;
    dfg.extOutputs = g.extOutputs;
    for (const auto &inst : g.ops) {
        DfgFile::OpEntry e;
        e.name = inst.instName;
        e.target = inst.fn.pragma.target;
        e.page = inst.fn.pragma.pageNum;
        e.hash = inst.fn.contentHash();
        e.numIn = inst.fn.numInputs();
        e.numOut = inst.fn.numOutputs();
        dfg.ops.push_back(std::move(e));
    }
    for (const auto &l : g.links) {
        dfg.links.push_back({l.src.op, l.src.port, l.dst.op,
                             l.dst.port, l.depth});
    }
    return dfg;
}

std::string
emitDfg(const DfgFile &dfg)
{
    std::ostringstream os;
    os << "dfg " << dfg.appName << "\n";
    for (const auto &s : dfg.extInputs)
        os << "extin " << s << "\n";
    for (const auto &s : dfg.extOutputs)
        os << "extout " << s << "\n";
    for (size_t i = 0; i < dfg.ops.size(); ++i) {
        const auto &o = dfg.ops[i];
        os << "op " << i << " " << o.name << " target="
           << (o.target == Target::HW ? "HW" : "RISCV")
           << " page=" << o.page << " hash=" << std::hex << o.hash
           << std::dec << " in=" << o.numIn << " out=" << o.numOut
           << "\n";
    }
    for (const auto &l : dfg.links) {
        os << "link " << l.srcOp << ":" << l.srcPort << " -> "
           << l.dstOp << ":" << l.dstPort << " depth=" << l.depth
           << "\n";
    }
    return os.str();
}

namespace {

std::vector<std::string>
splitWs(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

/** Parse "key=value" returning value, or fatal. */
std::string
kv(const std::string &tok, const char *key)
{
    auto eq = tok.find('=');
    if (eq == std::string::npos || tok.substr(0, eq) != key)
        pld_fatal("dfg.ir: expected %s=..., got '%s'", key,
                  tok.c_str());
    return tok.substr(eq + 1);
}

/** Parse "op:port" endpoint. */
void
parseEndpoint(const std::string &tok, int &op, int &port)
{
    auto colon = tok.find(':');
    if (colon == std::string::npos)
        pld_fatal("dfg.ir: bad endpoint '%s'", tok.c_str());
    op = std::stoi(tok.substr(0, colon));
    port = std::stoi(tok.substr(colon + 1));
}

} // namespace

DfgFile
parseDfg(const std::string &text)
{
    DfgFile dfg;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        auto toks = splitWs(line);
        if (toks.empty() || toks[0][0] == '#')
            continue;
        const std::string &cmd = toks[0];
        if (cmd == "dfg") {
            dfg.appName = toks.size() > 1 ? toks[1] : "app";
        } else if (cmd == "extin") {
            dfg.extInputs.push_back(toks.at(1));
        } else if (cmd == "extout") {
            dfg.extOutputs.push_back(toks.at(1));
        } else if (cmd == "op") {
            DfgFile::OpEntry e;
            e.name = toks.at(2);
            std::string tgt = kv(toks.at(3), "target");
            e.target = (tgt == "RISCV") ? Target::RISCV : Target::HW;
            e.page = std::stoi(kv(toks.at(4), "page"));
            e.hash = std::stoull(kv(toks.at(5), "hash"), nullptr, 16);
            e.numIn = std::stoi(kv(toks.at(6), "in"));
            e.numOut = std::stoi(kv(toks.at(7), "out"));
            dfg.ops.push_back(std::move(e));
        } else if (cmd == "link") {
            DfgFile::LinkEntry l;
            parseEndpoint(toks.at(1), l.srcOp, l.srcPort);
            if (toks.at(2) != "->")
                pld_fatal("dfg.ir: expected '->' in link line");
            parseEndpoint(toks.at(3), l.dstOp, l.dstPort);
            if (toks.size() > 4)
                l.depth = std::stoi(kv(toks[4], "depth"));
            dfg.links.push_back(l);
        } else {
            pld_fatal("dfg.ir: unknown directive '%s'", cmd.c_str());
        }
    }
    return dfg;
}

} // namespace ir
} // namespace pld
