#include "ir/printer.h"

#include <cctype>
#include <sstream>

#include "common/logging.h"

namespace pld {
namespace ir {

namespace {

std::string
pad(int indent)
{
    return std::string(static_cast<size_t>(indent) * 2, ' ');
}

} // namespace

std::string
printExpr(const ExprPtr &e)
{
    std::ostringstream os;
    switch (e->kind) {
      case ExprKind::Const:
        os << "c" << e->imm << ":" << e->type.toString();
        break;
      case ExprKind::VarRef:
        os << "v" << e->imm;
        break;
      case ExprKind::ArrayRef:
        os << "a" << e->imm << "[" << printExpr(e->args[0]) << "]";
        break;
      case ExprKind::StreamRead:
        os << "read(p" << e->imm << ")";
        break;
      default: {
        os << exprKindName(e->kind) << "(";
        for (size_t i = 0; i < e->args.size(); ++i) {
            if (i)
                os << ", ";
            os << printExpr(e->args[i]);
        }
        os << ")";
        if (e->kind == ExprKind::Cast || e->kind == ExprKind::BitCast)
            os << ":" << e->type.toString();
        break;
      }
    }
    return os.str();
}

std::string
printStmt(const StmtPtr &s, int indent)
{
    std::ostringstream os;
    switch (s->kind) {
      case StmtKind::Assign:
        os << pad(indent) << "v" << s->imm << " = "
           << printExpr(s->args[0]) << "\n";
        break;
      case StmtKind::ArrayStore:
        os << pad(indent) << "a" << s->imm << "["
           << printExpr(s->args[0]) << "] = " << printExpr(s->args[1])
           << "\n";
        break;
      case StmtKind::StreamWrite:
        os << pad(indent) << "write(p" << s->imm << ", "
           << printExpr(s->args[0]) << ")\n";
        break;
      case StmtKind::For:
        os << pad(indent) << "for v" << s->imm << " in [" << s->immLo
           << ", " << s->immHi << ") step " << s->immStep << "\n";
        for (const auto &c : s->body)
            os << printStmt(c, indent + 1);
        break;
      case StmtKind::While:
        os << pad(indent) << "while " << printExpr(s->args[0])
           << " (trip~" << s->tripEstimate << ")\n";
        for (const auto &c : s->body)
            os << printStmt(c, indent + 1);
        break;
      case StmtKind::If:
        os << pad(indent) << "if " << printExpr(s->args[0]) << "\n";
        for (const auto &c : s->body)
            os << printStmt(c, indent + 1);
        if (!s->elseBody.empty()) {
            os << pad(indent) << "else\n";
            for (const auto &c : s->elseBody)
                os << printStmt(c, indent + 1);
        }
        break;
      case StmtKind::Print:
        os << pad(indent) << "print \"" << s->text << "\"";
        for (const auto &a : s->args)
            os << " " << printExpr(a);
        os << "\n";
        break;
      case StmtKind::Block:
        for (const auto &c : s->body)
            os << printStmt(c, indent);
        break;
    }
    return os.str();
}

std::string
printOperator(const OperatorFn &fn)
{
    std::ostringstream os;
    os << "operator " << fn.name << " (target="
       << (fn.pragma.target == Target::HW ? "HW" : "RISCV")
       << " page=" << fn.pragma.pageNum << ")\n";
    for (size_t i = 0; i < fn.ports.size(); ++i) {
        os << "  port p" << i << " "
           << (fn.ports[i].dir == PortDir::In ? "in " : "out ")
           << fn.ports[i].name << "\n";
    }
    for (size_t i = 0; i < fn.vars.size(); ++i) {
        os << "  var v" << i << " " << fn.vars[i].type.toString()
           << " " << fn.vars[i].name << "\n";
    }
    for (size_t i = 0; i < fn.arrays.size(); ++i) {
        os << "  array a" << i << " "
           << fn.arrays[i].elemType.toString() << " "
           << fn.arrays[i].name << "[" << fn.arrays[i].size << "]";
        if (fn.arrays[i].isRom()) {
            os << " rom init";
            for (int64_t v : fn.arrays[i].init)
                os << " " << v;
        }
        os << "\n";
    }
    for (const auto &s : fn.body)
        os << printStmt(s, 1);
    return os.str();
}

DfgFile
extractDfg(const Graph &g)
{
    DfgFile dfg;
    dfg.appName = g.name;
    dfg.extInputs = g.extInputs;
    dfg.extOutputs = g.extOutputs;
    for (const auto &inst : g.ops) {
        DfgFile::OpEntry e;
        e.name = inst.instName;
        e.target = inst.fn.pragma.target;
        e.page = inst.fn.pragma.pageNum;
        e.hash = inst.fn.contentHash();
        e.numIn = inst.fn.numInputs();
        e.numOut = inst.fn.numOutputs();
        dfg.ops.push_back(std::move(e));
    }
    for (const auto &l : g.links) {
        dfg.links.push_back({l.src.op, l.src.port, l.dst.op,
                             l.dst.port, l.depth});
    }
    return dfg;
}

std::string
emitDfg(const DfgFile &dfg)
{
    std::ostringstream os;
    os << "dfg " << dfg.appName << "\n";
    for (const auto &s : dfg.extInputs)
        os << "extin " << s << "\n";
    for (const auto &s : dfg.extOutputs)
        os << "extout " << s << "\n";
    for (size_t i = 0; i < dfg.ops.size(); ++i) {
        const auto &o = dfg.ops[i];
        os << "op " << i << " " << o.name << " target="
           << (o.target == Target::HW ? "HW" : "RISCV")
           << " page=" << o.page << " hash=" << std::hex << o.hash
           << std::dec << " in=" << o.numIn << " out=" << o.numOut
           << "\n";
    }
    for (const auto &l : dfg.links) {
        os << "link " << l.srcOp << ":" << l.srcPort << " -> "
           << l.dstOp << ":" << l.dstPort << " depth=" << l.depth
           << "\n";
    }
    return os.str();
}

namespace {

std::vector<std::string>
splitWs(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

/** Parse "key=value" returning value, or fatal. */
std::string
kv(const std::string &tok, const char *key)
{
    auto eq = tok.find('=');
    if (eq == std::string::npos || tok.substr(0, eq) != key)
        pld_fatal("dfg.ir: expected %s=..., got '%s'", key,
                  tok.c_str());
    return tok.substr(eq + 1);
}

/** Parse "op:port" endpoint. */
void
parseEndpoint(const std::string &tok, int &op, int &port)
{
    auto colon = tok.find(':');
    if (colon == std::string::npos)
        pld_fatal("dfg.ir: bad endpoint '%s'", tok.c_str());
    op = std::stoi(tok.substr(0, colon));
    port = std::stoi(tok.substr(colon + 1));
}

} // namespace

DfgFile
parseDfg(const std::string &text)
{
    DfgFile dfg;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        auto toks = splitWs(line);
        if (toks.empty() || toks[0][0] == '#')
            continue;
        const std::string &cmd = toks[0];
        if (cmd == "dfg") {
            dfg.appName = toks.size() > 1 ? toks[1] : "app";
        } else if (cmd == "extin") {
            dfg.extInputs.push_back(toks.at(1));
        } else if (cmd == "extout") {
            dfg.extOutputs.push_back(toks.at(1));
        } else if (cmd == "op") {
            DfgFile::OpEntry e;
            e.name = toks.at(2);
            std::string tgt = kv(toks.at(3), "target");
            e.target = (tgt == "RISCV") ? Target::RISCV : Target::HW;
            e.page = std::stoi(kv(toks.at(4), "page"));
            e.hash = std::stoull(kv(toks.at(5), "hash"), nullptr, 16);
            e.numIn = std::stoi(kv(toks.at(6), "in"));
            e.numOut = std::stoi(kv(toks.at(7), "out"));
            dfg.ops.push_back(std::move(e));
        } else if (cmd == "link") {
            DfgFile::LinkEntry l;
            parseEndpoint(toks.at(1), l.srcOp, l.srcPort);
            if (toks.at(2) != "->")
                pld_fatal("dfg.ir: expected '->' in link line");
            parseEndpoint(toks.at(3), l.dstOp, l.dstPort);
            if (toks.size() > 4)
                l.depth = std::stoi(kv(toks[4], "depth"));
            dfg.links.push_back(l);
        } else {
            pld_fatal("dfg.ir: unknown directive '%s'", cmd.c_str());
        }
    }
    return dfg;
}

namespace {

/**
 * Recursive-descent parser for printOperator() dumps. Statement
 * nesting is carried by indentation (two spaces per level); expression
 * types are re-derived bottom-up, so the text never needs to spell the
 * type of anything except declarations, constants, and casts.
 */
class OperatorParser
{
  public:
    explicit OperatorParser(const std::string &text)
    {
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.find_first_not_of(' ') == std::string::npos)
                continue;
            if (line[line.find_first_not_of(' ')] == '#')
                continue;
            lines.push_back(line);
        }
    }

    OperatorFn
    parse()
    {
        pld_assert(!lines.empty(), "parseOperator: empty text");
        parseHeader(lines[pos++]);
        while (!atEnd() && indentOf(peek()) == 1 && isDecl(peek()))
            parseDecl(lines[pos++]);
        fn.body = parseStmts(1);
        pld_assert(atEnd(), "parseOperator: trailing line '%s'",
                   peek().c_str());
        return std::move(fn);
    }

  private:
    static int
    indentOf(const std::string &l)
    {
        size_t n = 0;
        while (n < l.size() && l[n] == ' ')
            ++n;
        return static_cast<int>(n / 2);
    }

    static bool
    isDecl(const std::string &l)
    {
        size_t n = l.find_first_not_of(' ');
        std::string rest = l.substr(n);
        return rest.rfind("port p", 0) == 0 ||
               rest.rfind("var v", 0) == 0 ||
               rest.rfind("array a", 0) == 0;
    }

    bool atEnd() const { return pos >= lines.size(); }
    const std::string &peek() const { return lines[pos]; }

    // --- cursor over the current line --------------------------------

    void
    setCursor(const std::string &s)
    {
        cur = s;
        cpos = 0;
    }

    char c() const { return cpos < cur.size() ? cur[cpos] : '\0'; }

    bool
    consume(const std::string &s)
    {
        if (cur.compare(cpos, s.size(), s) != 0)
            return false;
        cpos += s.size();
        return true;
    }

    void
    expect(const std::string &s)
    {
        pld_assert(consume(s),
                   "parseOperator: expected '%s' at '%s' in '%s'",
                   s.c_str(), cur.substr(cpos).c_str(), cur.c_str());
    }

    int64_t
    number()
    {
        size_t start = cpos;
        if (c() == '-')
            ++cpos;
        while (std::isdigit(static_cast<unsigned char>(c())))
            ++cpos;
        pld_assert(cpos > start && cur[cpos - 1] != '-',
                   "parseOperator: number expected at '%s'",
                   cur.substr(start).c_str());
        return std::stoll(cur.substr(start, cpos - start));
    }

    std::string
    word()
    {
        size_t start = cpos;
        while (std::isalpha(static_cast<unsigned char>(c())) ||
               c() == '_')
            ++cpos;
        return cur.substr(start, cpos - start);
    }

    Type
    parseType()
    {
        bool fixed = false, sgn = false;
        if (consume("ufx<")) {
            fixed = true;
        } else if (consume("fx<")) {
            fixed = true;
            sgn = true;
        } else if (consume("u")) {
            sgn = false;
        } else if (consume("s")) {
            sgn = true;
        } else {
            pld_fatal("parseOperator: type expected at '%s'",
                      cur.substr(cpos).c_str());
        }
        int w = static_cast<int>(number());
        if (!fixed)
            return sgn ? Type::s(w) : Type::u(w);
        expect(",");
        int ib = static_cast<int>(number());
        expect(">");
        return sgn ? Type::fx(w, ib) : Type::ufx(w, ib);
    }

    static ExprKind
    kindFromName(const std::string &name)
    {
        static const ExprKind kOps[] = {
            ExprKind::Add,  ExprKind::Sub,     ExprKind::Mul,
            ExprKind::Div,  ExprKind::Mod,     ExprKind::And,
            ExprKind::Or,   ExprKind::Xor,     ExprKind::Shl,
            ExprKind::Shr,  ExprKind::Lt,      ExprKind::Le,
            ExprKind::Gt,   ExprKind::Ge,      ExprKind::Eq,
            ExprKind::Ne,   ExprKind::LAnd,    ExprKind::LOr,
            ExprKind::Neg,  ExprKind::Not,     ExprKind::LNot,
            ExprKind::Cast, ExprKind::BitCast, ExprKind::Select,
        };
        for (ExprKind k : kOps)
            if (name == exprKindName(k))
                return k;
        pld_fatal("parseOperator: unknown operator '%s'", name.c_str());
    }

    ExprPtr
    parseExpr()
    {
        auto digitNext = [&] {
            return cpos + 1 < cur.size() &&
                   (std::isdigit(static_cast<unsigned char>(
                        cur[cpos + 1])) ||
                    cur[cpos + 1] == '-');
        };
        if (c() == 'c' && digitNext()) {
            ++cpos;
            int64_t imm = number();
            expect(":");
            return makeConst(parseType(), imm);
        }
        if (c() == 'v' && digitNext()) {
            ++cpos;
            auto idx = static_cast<size_t>(number());
            pld_assert(idx < fn.vars.size(),
                       "parseOperator: v%zu undeclared", idx);
            return makeExpr(ExprKind::VarRef, fn.vars[idx].type, {},
                            static_cast<int64_t>(idx));
        }
        if (c() == 'a' && digitNext()) {
            ++cpos;
            auto idx = static_cast<size_t>(number());
            pld_assert(idx < fn.arrays.size(),
                       "parseOperator: a%zu undeclared", idx);
            expect("[");
            ExprPtr ix = parseExpr();
            expect("]");
            return makeExpr(ExprKind::ArrayRef,
                            fn.arrays[idx].elemType, {ix},
                            static_cast<int64_t>(idx));
        }
        std::string name = word();
        if (name == "read") {
            expect("(p");
            int64_t port = number();
            expect(")");
            return makeExpr(ExprKind::StreamRead, Type::word(), {},
                            port);
        }
        ExprKind k = kindFromName(name);
        expect("(");
        std::vector<ExprPtr> args;
        args.push_back(parseExpr());
        while (consume(", "))
            args.push_back(parseExpr());
        expect(")");
        Type t;
        if (k == ExprKind::Cast || k == ExprKind::BitCast) {
            expect(":");
            t = parseType();
        } else {
            t = operatorResultType(k, args);
        }
        return makeExpr(k, t, std::move(args));
    }

    // --- header + declarations ---------------------------------------

    void
    parseHeader(const std::string &l)
    {
        setCursor(l);
        expect("operator ");
        size_t sp = cur.find(' ', cpos);
        pld_assert(sp != std::string::npos, "parseOperator: bad header");
        fn.name = cur.substr(cpos, sp - cpos);
        cpos = sp;
        expect(" (target=");
        std::string tgt = word();
        fn.pragma.target = (tgt == "RISCV") ? Target::RISCV : Target::HW;
        expect(" page=");
        fn.pragma.pageNum = static_cast<int>(number());
        expect(")");
    }

    void
    parseDecl(const std::string &l)
    {
        setCursor(l.substr(2));
        if (consume("port p")) {
            auto idx = static_cast<size_t>(number());
            pld_assert(idx == fn.ports.size(),
                       "parseOperator: ports out of order");
            expect(" ");
            std::string dir = word();
            expect(" ");
            fn.ports.push_back({cur.substr(cpos),
                                dir == "in" ? PortDir::In
                                            : PortDir::Out});
        } else if (consume("var v")) {
            auto idx = static_cast<size_t>(number());
            pld_assert(idx == fn.vars.size(),
                       "parseOperator: vars out of order");
            expect(" ");
            Type t = parseType();
            expect(" ");
            fn.vars.push_back({cur.substr(cpos), t});
        } else if (consume("array a")) {
            auto idx = static_cast<size_t>(number());
            pld_assert(idx == fn.arrays.size(),
                       "parseOperator: arrays out of order");
            expect(" ");
            Type t = parseType();
            expect(" ");
            size_t br = cur.find('[', cpos);
            pld_assert(br != std::string::npos,
                       "parseOperator: array decl needs [size]");
            ArrayDecl d;
            d.name = cur.substr(cpos, br - cpos);
            d.elemType = t;
            cpos = br;
            expect("[");
            d.size = number();
            expect("]");
            if (consume(" rom init")) {
                while (consume(" "))
                    d.init.push_back(number());
                pld_assert(static_cast<int64_t>(d.init.size()) ==
                               d.size,
                           "parseOperator: rom init size mismatch");
            }
            fn.arrays.push_back(std::move(d));
        } else {
            pld_fatal("parseOperator: bad declaration '%s'", l.c_str());
        }
    }

    // --- statements --------------------------------------------------

    std::vector<StmtPtr>
    parseStmts(int level)
    {
        std::vector<StmtPtr> out;
        while (!atEnd() && indentOf(peek()) == level) {
            std::string body =
                peek().substr(static_cast<size_t>(level) * 2);
            if (body == "else")
                break; // belongs to the enclosing If
            ++pos;
            out.push_back(parseStmt(body, level));
        }
        return out;
    }

    StmtPtr
    parseStmt(const std::string &text, int level)
    {
        setCursor(text);
        if (consume("for v")) {
            auto s = makeStmt(StmtKind::For);
            s->imm = number();
            expect(" in [");
            s->immLo = number();
            expect(", ");
            s->immHi = number();
            expect(") step ");
            s->immStep = number();
            s->body = parseStmts(level + 1);
            return s;
        }
        if (consume("while ")) {
            auto s = makeStmt(StmtKind::While);
            s->args.push_back(parseExpr());
            expect(" (trip~");
            s->tripEstimate = number();
            expect(")");
            s->body = parseStmts(level + 1);
            return s;
        }
        if (consume("if ")) {
            auto s = makeStmt(StmtKind::If);
            s->args.push_back(parseExpr());
            s->body = parseStmts(level + 1);
            if (!atEnd() && indentOf(peek()) == level &&
                peek().substr(static_cast<size_t>(level) * 2) ==
                    "else") {
                ++pos;
                s->elseBody = parseStmts(level + 1);
            }
            return s;
        }
        if (consume("write(p")) {
            auto s = makeStmt(StmtKind::StreamWrite);
            s->imm = number();
            expect(", ");
            s->args.push_back(parseExpr());
            expect(")");
            return s;
        }
        if (consume("print \"")) {
            auto s = makeStmt(StmtKind::Print);
            size_t q = cur.find('"', cpos);
            pld_assert(q != std::string::npos,
                       "parseOperator: unterminated print text");
            s->text = cur.substr(cpos, q - cpos);
            cpos = q + 1;
            while (consume(" "))
                s->args.push_back(parseExpr());
            return s;
        }
        if (consume("v")) {
            auto s = makeStmt(StmtKind::Assign);
            s->imm = number();
            expect(" = ");
            s->args.push_back(parseExpr());
            return s;
        }
        if (consume("a")) {
            auto s = makeStmt(StmtKind::ArrayStore);
            s->imm = number();
            expect("[");
            s->args.push_back(parseExpr());
            expect("] = ");
            s->args.push_back(parseExpr());
            // printStmt order is (index, value); Stmt stores the same.
            return s;
        }
        pld_fatal("parseOperator: bad statement '%s'", text.c_str());
    }

    OperatorFn fn;
    std::vector<std::string> lines;
    size_t pos = 0;
    std::string cur;
    size_t cpos = 0;
};

} // namespace

OperatorFn
parseOperator(const std::string &text)
{
    return OperatorParser(text).parse();
}

} // namespace ir
} // namespace pld
