/**
 * @file
 * Operator-discipline validator (paper Sec 3.4).
 *
 * C functions must be refined into a streaming form before they make
 * good dataflow operators. This linter enforces the PLD subset:
 *
 *  - all communication goes through declared stream ports;
 *  - at most one blocking stream read per statement, never inside
 *    select/short-circuit arms or while conditions (so blocking
 *    behaviour is identical on every target);
 *  - scalar widths are 1..32 bits;
 *  - array indices are integer-typed; loop bounds are sane;
 *  - no recursion or allocation (structurally impossible in the IR,
 *    checked for completeness);
 *  - processor-only constructs (Print) are flagged for HW targets as
 *    info, mirroring the paper's `#ifdef RISCV` guard requirement.
 */

#ifndef PLD_IR_VALIDATE_H
#define PLD_IR_VALIDATE_H

#include <string>
#include <vector>

#include "ir/graph.h"
#include "ir/operator_fn.h"

namespace pld {
namespace ir {

/** Severity of a discipline diagnostic. */
enum class DiagLevel { Error, Warning, Note };

/** One validator finding. */
struct Diagnostic
{
    DiagLevel level;
    std::string message;
};

/** Validate a single operator; returns all findings. */
std::vector<Diagnostic> validateOperator(const OperatorFn &fn);

/** Validate every operator in a graph plus graph topology. */
std::vector<Diagnostic> validateGraph(const Graph &g);

/** True if no Error-level diagnostics are present. */
bool isClean(const std::vector<Diagnostic> &diags);

/** Render diagnostics one per line. */
std::string renderDiagnostics(const std::vector<Diagnostic> &diags);

} // namespace ir
} // namespace pld

#endif // PLD_IR_VALIDATE_H
