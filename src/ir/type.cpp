#include "ir/type.h"

#include <algorithm>

#include "common/logging.h"

namespace pld {
namespace ir {

std::string
Type::toString() const
{
    switch (kind) {
      case TypeKind::UInt:
        return "u" + std::to_string(width);
      case TypeKind::Int:
        return "s" + std::to_string(width);
      case TypeKind::UFixed:
        return "ufx<" + std::to_string(width) + "," +
               std::to_string(intBits) + ">";
      case TypeKind::Fixed:
        return "fx<" + std::to_string(width) + "," +
               std::to_string(intBits) + ">";
    }
    return "?";
}

namespace {

Type
makeType(bool is_signed, bool is_fixed, int int_bits, int frac_bits)
{
    // Cap the total width at 64 by dropping fractional LSBs first,
    // then integer MSBs. Every target computes exactly at or above
    // this precision and quantizes identically, so results agree.
    if (int_bits > 64) {
        int_bits = 64;
        frac_bits = 0;
    }
    if (int_bits + frac_bits > 64)
        frac_bits = 64 - int_bits;
    int w = std::max(1, int_bits + frac_bits);
    if (is_fixed) {
        return is_signed ? Type::fx(w, int_bits)
                         : Type::ufx(w, int_bits);
    }
    return is_signed ? Type::s(w) : Type::u(w);
}

} // namespace

Type
promoteAdd(const Type &a, const Type &b)
{
    bool sgn = a.isSigned() || b.isSigned();
    bool fixed = a.isFixed() || b.isFixed();
    int ib = std::max(int(a.intBits), int(b.intBits)) + 1;
    int fb = std::max(a.fracBits(), b.fracBits());
    return makeType(sgn, fixed, ib, fb);
}

Type
promoteMul(const Type &a, const Type &b)
{
    bool sgn = a.isSigned() || b.isSigned();
    bool fixed = a.isFixed() || b.isFixed();
    int ib = int(a.intBits) + int(b.intBits);
    int fb = a.fracBits() + b.fracBits();
    return makeType(sgn, fixed, ib, fb);
}

Type
promoteDiv(const Type &a, const Type &b)
{
    bool sgn = a.isSigned() || b.isSigned();
    bool fixed = a.isFixed() || b.isFixed();
    return makeType(sgn, fixed, a.intBits, a.fracBits());
}

Type
promoteBits(const Type &a, const Type &b)
{
    bool sgn = a.isSigned() || b.isSigned();
    int w = std::max(a.width, b.width);
    return sgn ? Type::s(w) : Type::u(w);
}

} // namespace ir
} // namespace pld
