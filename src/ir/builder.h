/**
 * @file
 * Fluent builder for operator IR.
 *
 * This is the developer-facing "C dialect" of the reproduction: the
 * same role the HLS C subset plays in the paper. A kernel is written
 * once against this API and the resulting OperatorFn is compiled to
 * all targets. Example (the paper's flow_calc, Fig 2d):
 *
 *   OpBuilder b("flow_calc");
 *   auto in  = b.input("Input_1");
 *   auto out = b.output("Output_1");
 *   auto t   = b.array("t", Type::fx(32, 17), 6);
 *   b.forLoop(0, kHeight * kWidth, [&](Ex) {
 *       b.forLoop(0, 6, [&](Ex i) { b.store(t, i, b.readAs(in, fx)); });
 *       Ex denom = t[0] * t[1] - t[2] * t[2];
 *       ...
 *       b.write(out, buf0);
 *   });
 *   OperatorFn fn = b.finish();
 */

#ifndef PLD_IR_BUILDER_H
#define PLD_IR_BUILDER_H

#include <functional>
#include <string>
#include <vector>

#include "ir/operator_fn.h"

namespace pld {
namespace ir {

class OpBuilder;

/**
 * Expression wrapper enabling natural C-like arithmetic. Operators
 * apply HLS promotion rules; mixing with integer literals converts
 * the literal to the other operand's type (value-preserving).
 */
class Ex
{
  public:
    Ex() = default;
    explicit Ex(ExprPtr e) : e(std::move(e)) {}

    const ExprPtr &node() const { return e; }
    Type type() const { return e->type; }
    bool valid() const { return e != nullptr; }

    /** Value-preserving conversion (shifts binary point, wraps). */
    Ex cast(Type to) const;
    /** Raw-bit reinterpretation (paper's `t[i](31,0) = in.read()`). */
    Ex bitcast(Type to) const;
    /** Raw bits of this value as a u32 word (for stream writes). */
    Ex rawWord() const;

  private:
    ExprPtr e;
};

/** Handle to a local scalar variable. */
struct Var
{
    int idx = -1;
    Type type;
    OpBuilder *owner = nullptr;

    /** Reading a Var yields its current value. */
    operator Ex() const;
};

/** Handle to a local array; arr[i] reads an element. */
struct Arr
{
    int idx = -1;
    Type elemType;
    OpBuilder *owner = nullptr;

    Ex operator[](const Ex &index) const;
    Ex operator[](int64_t index) const;
};

/** Handle to a stream port. */
struct PortRef
{
    int idx = -1;
    PortDir dir = PortDir::In;
};

Ex operator+(const Ex &a, const Ex &b);
Ex operator-(const Ex &a, const Ex &b);
Ex operator*(const Ex &a, const Ex &b);
Ex operator/(const Ex &a, const Ex &b);
Ex operator%(const Ex &a, const Ex &b);
Ex operator&(const Ex &a, const Ex &b);
Ex operator|(const Ex &a, const Ex &b);
Ex operator^(const Ex &a, const Ex &b);
Ex operator<<(const Ex &a, int sh);
Ex operator>>(const Ex &a, int sh);
Ex operator<(const Ex &a, const Ex &b);
Ex operator<=(const Ex &a, const Ex &b);
Ex operator>(const Ex &a, const Ex &b);
Ex operator>=(const Ex &a, const Ex &b);
Ex operator==(const Ex &a, const Ex &b);
Ex operator!=(const Ex &a, const Ex &b);
Ex operator&&(const Ex &a, const Ex &b);
Ex operator||(const Ex &a, const Ex &b);
Ex operator-(const Ex &a);
Ex operator~(const Ex &a);
Ex operator!(const Ex &a);

/** Integer literal as a typed constant (value v, type t). */
Ex lit(int64_t v, Type t = Type::s(32));

/** Fixed-point literal: double value quantized onto t's grid. */
Ex litF(double v, Type t);

// Literal-on-either-side conveniences (literal adopts Ex's type).
Ex operator+(const Ex &a, int64_t v);
Ex operator+(int64_t v, const Ex &a);
Ex operator-(const Ex &a, int64_t v);
Ex operator-(int64_t v, const Ex &a);
Ex operator*(const Ex &a, int64_t v);
Ex operator*(int64_t v, const Ex &a);
Ex operator/(const Ex &a, int64_t v);
Ex operator%(const Ex &a, int64_t v);
Ex operator<(const Ex &a, int64_t v);
Ex operator>(const Ex &a, int64_t v);
Ex operator<=(const Ex &a, int64_t v);
Ex operator>=(const Ex &a, int64_t v);
Ex operator==(const Ex &a, int64_t v);
Ex operator!=(const Ex &a, int64_t v);

/**
 * Builds one OperatorFn. Statement-emitting calls append to the
 * innermost open control block (managed via callbacks).
 */
class OpBuilder
{
  public:
    explicit OpBuilder(std::string op_name);

    /** Declare an input stream port. */
    PortRef input(const std::string &port_name);
    /** Declare an output stream port. */
    PortRef output(const std::string &port_name);

    /** Declare a local scalar. */
    Var var(const std::string &var_name, Type t);
    /** Declare a local array (BRAM on HW, data memory on softcore). */
    Arr array(const std::string &arr_name, Type elem, int64_t size);
    /** Declare a ROM with contents given as doubles on elem's grid. */
    Arr rom(const std::string &arr_name, Type elem,
            const std::vector<double> &values);
    /** Declare a ROM with raw scaled initial values. */
    Arr romRaw(const std::string &arr_name, Type elem,
               const std::vector<int64_t> &raw);

    /** Blocking stream read as a raw u32 word. */
    Ex read(PortRef port);
    /** Blocking read reinterpreted as @p as (the t[i](31,0) idiom). */
    Ex readAs(PortRef port, Type as);
    /** Write the raw bits of @p value's low 32 bits to the stream. */
    void write(PortRef port, const Ex &value);

    /** var = value (value is cast to the var's type). */
    void set(Var v, const Ex &value);
    /** arr[index] = value (cast to element type). */
    void store(Arr a, const Ex &index, const Ex &value);
    void store(Arr a, int64_t index, const Ex &value);

    /** Counted loop [lo, hi) with unit step; body sees the index. */
    void forLoop(int64_t lo, int64_t hi,
                 const std::function<void(Ex)> &body_fn);
    /** Counted loop with explicit step. */
    void forLoopStep(int64_t lo, int64_t hi, int64_t step,
                     const std::function<void(Ex)> &body_fn);
    /** Two-way conditional. */
    void ifThen(const Ex &cond, const std::function<void()> &then_fn);
    void ifElse(const Ex &cond, const std::function<void()> &then_fn,
                const std::function<void()> &else_fn);
    /** Condition-controlled loop; trip_estimate guides the scheduler. */
    void whileLoop(const Ex &cond, const std::function<void()> &body_fn,
                   int64_t trip_estimate = 16);
    /** Processor-only debug print (ignored by the HW flows). */
    void print(const std::string &text, std::vector<Ex> values = {});

    /** Ternary select (b is cast to a's type). */
    Ex select(const Ex &cond, const Ex &a, const Ex &b);

    /** Set the mapping pragma (Fig 2a line 3). */
    void pragma(Target target, int page_num = -1);

    /** Finalize and return the operator. Builder must be balanced. */
    OperatorFn finish();

    /** @name Internal access for handle types. */
    /// @{
    Ex refVar(int idx) const;
    Ex refArray(int idx, const Ex &index) const;
    /// @}

  private:
    void emit(StmtPtr s);
    std::vector<StmtPtr> *cur();

    OperatorFn fn;
    std::vector<std::vector<StmtPtr> *> blockStack;
    int loopVarCounter = 0;
};

} // namespace ir
} // namespace pld

#endif // PLD_IR_BUILDER_H
