/**
 * @file
 * Expression nodes of the PLD operator IR.
 *
 * Expressions form trees owned by shared_ptr; every node carries the
 * result Type computed by the builder under HLS-like promotion rules.
 * Stream reads are expressions but the validator restricts them to the
 * top of an assignment's right-hand side so evaluation order (and thus
 * blocking behaviour) is unambiguous across targets.
 */

#ifndef PLD_IR_EXPR_H
#define PLD_IR_EXPR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/type.h"

namespace pld {
namespace ir {

/** Expression operator kinds. */
enum class ExprKind : uint8_t {
    Const,      ///< constant; payload = raw scaled bits of `type`
    VarRef,     ///< local scalar; payload = variable index
    ArrayRef,   ///< array element; payload = array index, arg0 = index
    StreamRead, ///< blocking read; payload = input port index
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor, Shl, Shr,
    Lt, Le, Gt, Ge, Eq, Ne,
    LAnd, LOr,
    Neg, Not, LNot,
    Cast,       ///< value-preserving conversion to `type`
    BitCast,    ///< reinterpret low bits as `type` (no shift)
    Select,     ///< arg0 ? arg1 : arg2
};

/** True for the two-operand arithmetic/compare/bitwise kinds. */
bool isBinary(ExprKind k);

/** True for single-operand kinds (Neg, Not, LNot, Cast, BitCast). */
bool isUnary(ExprKind k);

/** Printable operator mnemonic ("add", "mul", ...). */
const char *exprKindName(ExprKind k);

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/**
 * A single IR expression node. Children live in `args`; leaf payloads
 * (constants, variable/port/array indices) in `imm`.
 */
struct Expr
{
    ExprKind kind;
    Type type;
    int64_t imm = 0;
    std::vector<ExprPtr> args;

    Expr(ExprKind k, Type t) : kind(k), type(t) {}

    /** Structural hash (kind, type, payload, children). */
    void hashInto(Hasher &h) const;

    /** Number of compute operations in this subtree (for models). */
    int opCount() const;
};

/**
 * Result type of an operator node under the builder's HLS promotion
 * rules, derived from the argument types. Defined for the
 * arithmetic/bitwise/compare/logical/shift/select kinds whose type is
 * a function of their operands; leaf kinds and casts (whose types are
 * free) are rejected. The builder, the operator parser, and the fuzz
 * shrinker's retype pass all share this one definition.
 */
Type operatorResultType(ExprKind k, const std::vector<ExprPtr> &args);

/** Make a constant of @p type from raw scaled bits. */
ExprPtr makeConst(Type type, int64_t raw_scaled);

/** Make a node with children. */
ExprPtr makeExpr(ExprKind k, Type t, std::vector<ExprPtr> args,
                 int64_t imm = 0);

} // namespace ir
} // namespace pld

#endif // PLD_IR_EXPR_H
