#include "ir/expr.h"

#include <algorithm>

#include "common/logging.h"

namespace pld {
namespace ir {

bool
isBinary(ExprKind k)
{
    switch (k) {
      case ExprKind::Add: case ExprKind::Sub: case ExprKind::Mul:
      case ExprKind::Div: case ExprKind::Mod: case ExprKind::And:
      case ExprKind::Or: case ExprKind::Xor: case ExprKind::Shl:
      case ExprKind::Shr: case ExprKind::Lt: case ExprKind::Le:
      case ExprKind::Gt: case ExprKind::Ge: case ExprKind::Eq:
      case ExprKind::Ne: case ExprKind::LAnd: case ExprKind::LOr:
        return true;
      default:
        return false;
    }
}

bool
isUnary(ExprKind k)
{
    switch (k) {
      case ExprKind::Neg: case ExprKind::Not: case ExprKind::LNot:
      case ExprKind::Cast: case ExprKind::BitCast:
        return true;
      default:
        return false;
    }
}

const char *
exprKindName(ExprKind k)
{
    switch (k) {
      case ExprKind::Const: return "const";
      case ExprKind::VarRef: return "var";
      case ExprKind::ArrayRef: return "aref";
      case ExprKind::StreamRead: return "read";
      case ExprKind::Add: return "add";
      case ExprKind::Sub: return "sub";
      case ExprKind::Mul: return "mul";
      case ExprKind::Div: return "div";
      case ExprKind::Mod: return "mod";
      case ExprKind::And: return "and";
      case ExprKind::Or: return "or";
      case ExprKind::Xor: return "xor";
      case ExprKind::Shl: return "shl";
      case ExprKind::Shr: return "shr";
      case ExprKind::Lt: return "lt";
      case ExprKind::Le: return "le";
      case ExprKind::Gt: return "gt";
      case ExprKind::Ge: return "ge";
      case ExprKind::Eq: return "eq";
      case ExprKind::Ne: return "ne";
      case ExprKind::LAnd: return "land";
      case ExprKind::LOr: return "lor";
      case ExprKind::Neg: return "neg";
      case ExprKind::Not: return "not";
      case ExprKind::LNot: return "lnot";
      case ExprKind::Cast: return "cast";
      case ExprKind::BitCast: return "bitcast";
      case ExprKind::Select: return "select";
    }
    return "?";
}

Type
operatorResultType(ExprKind k, const std::vector<ExprPtr> &args)
{
    switch (k) {
      case ExprKind::Add:
      case ExprKind::Sub:
        return promoteAdd(args[0]->type, args[1]->type);
      case ExprKind::Mul:
        return promoteMul(args[0]->type, args[1]->type);
      case ExprKind::Div:
        return promoteDiv(args[0]->type, args[1]->type);
      case ExprKind::Mod:
      case ExprKind::And:
      case ExprKind::Or:
      case ExprKind::Xor:
        return promoteBits(args[0]->type, args[1]->type);
      case ExprKind::Lt: case ExprKind::Le: case ExprKind::Gt:
      case ExprKind::Ge: case ExprKind::Eq: case ExprKind::Ne:
      case ExprKind::LAnd: case ExprKind::LOr:
      case ExprKind::LNot:
        return Type::boolean();
      case ExprKind::Shl:
      case ExprKind::Shr:
      case ExprKind::Not:
        return args[0]->type;
      case ExprKind::Neg: {
        Type t = args[0]->type;
        return t.isSigned()
                   ? t
                   : promoteAdd(t, Type::s(std::min(32, t.width + 1)));
      }
      case ExprKind::Select:
        return args[1]->type;
      default:
        pld_panic("operatorResultType: %s has no derivable type",
                  exprKindName(k));
    }
}

void
Expr::hashInto(Hasher &h) const
{
    h.u64(static_cast<uint64_t>(kind));
    type.hashInto(h);
    h.i64(imm);
    h.u64(args.size());
    for (const auto &a : args)
        a->hashInto(h);
}

int
Expr::opCount() const
{
    int n = (isBinary(kind) || isUnary(kind) ||
             kind == ExprKind::Select) ? 1 : 0;
    for (const auto &a : args)
        n += a->opCount();
    return n;
}

ExprPtr
makeConst(Type type, int64_t raw_scaled)
{
    auto e = std::make_shared<Expr>(ExprKind::Const, type);
    e->imm = raw_scaled;
    return e;
}

ExprPtr
makeExpr(ExprKind k, Type t, std::vector<ExprPtr> args, int64_t imm)
{
    auto e = std::make_shared<Expr>(k, t);
    e->args = std::move(args);
    e->imm = imm;
    return e;
}

} // namespace ir
} // namespace pld
