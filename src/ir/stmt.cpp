#include "ir/stmt.h"

namespace pld {
namespace ir {

void
Stmt::hashInto(Hasher &h) const
{
    h.u64(static_cast<uint64_t>(kind));
    h.i64(imm);
    h.i64(immLo);
    h.i64(immHi);
    h.i64(immStep);
    h.str(text);
    h.u64(args.size());
    for (const auto &a : args)
        a->hashInto(h);
    h.u64(body.size());
    for (const auto &s : body)
        s->hashInto(h);
    h.u64(elseBody.size());
    for (const auto &s : elseBody)
        s->hashInto(h);
}

StmtPtr
makeStmt(StmtKind k)
{
    return std::make_shared<Stmt>(k);
}

} // namespace ir
} // namespace pld
