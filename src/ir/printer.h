/**
 * @file
 * Textual forms of the IR.
 *
 * Two outputs: (1) a human-readable operator dump for debugging, and
 * (2) the dfg.ir interchange format (paper Fig 5/6) — the dataflow
 * graph intermediate the dfg-extractor writes and the pre-linker
 * (pld) consumes. dfg.ir carries topology, pragmas, and content
 * hashes, not operator bodies, exactly like the paper's flow where
 * bodies live in separately compiled artifacts.
 */

#ifndef PLD_IR_PRINTER_H
#define PLD_IR_PRINTER_H

#include <string>
#include <vector>

#include "ir/graph.h"

namespace pld {
namespace ir {

/** Pretty-print one operator (ports, decls, body). */
std::string printOperator(const OperatorFn &fn);

/** Pretty-print a statement subtree (for tests/debug). */
std::string printStmt(const StmtPtr &s, int indent = 0);

/** Pretty-print an expression tree on one line. */
std::string printExpr(const ExprPtr &e);

/**
 * Parse printOperator() output back into an OperatorFn: the round
 * trip parse(print(fn)) reproduces fn structurally (equal contentHash)
 * for any Block-free operator — Block statements print transparently
 * and therefore collapse into their parent. Expression types are
 * re-derived from declarations plus operatorResultType(); Cast/
 * BitCast/Const carry explicit type suffixes in the text. fatal()s on
 * malformed input. This is what replays fuzz corpus repros.
 */
OperatorFn parseOperator(const std::string &text);

/** Parsed form of a dfg.ir file. */
struct DfgFile
{
    struct OpEntry
    {
        std::string name;
        Target target = Target::HW;
        int page = -1;
        uint64_t hash = 0;
        int numIn = 0;
        int numOut = 0;
    };
    struct LinkEntry
    {
        // op index or -1 for external; port index.
        int srcOp = -1, srcPort = 0;
        int dstOp = -1, dstPort = 0;
        int depth = 64;
    };

    std::string appName;
    std::vector<std::string> extInputs;
    std::vector<std::string> extOutputs;
    std::vector<OpEntry> ops;
    std::vector<LinkEntry> links;
};

/** Extract a dfg.ir description from a graph (the dfg extractor). */
DfgFile extractDfg(const Graph &g);

/** Serialize to the dfg.ir text format. */
std::string emitDfg(const DfgFile &dfg);

/** Parse dfg.ir text; fatal()s on malformed input. */
DfgFile parseDfg(const std::string &text);

} // namespace ir
} // namespace pld

#endif // PLD_IR_PRINTER_H
