#include "ir/validate.h"

#include <functional>
#include <set>

namespace pld {
namespace ir {

namespace {

class OperatorChecker
{
  public:
    explicit OperatorChecker(const OperatorFn &fn) : fn(fn) {}

    std::vector<Diagnostic>
    run()
    {
        checkDecls();
        checkStmts(fn.body);
        checkPortUsage();
        return std::move(diags);
    }

  private:
    void
    error(const std::string &msg)
    {
        diags.push_back({DiagLevel::Error, fn.name + ": " + msg});
    }
    void
    warning(const std::string &msg)
    {
        diags.push_back({DiagLevel::Warning, fn.name + ": " + msg});
    }
    void
    note(const std::string &msg)
    {
        diags.push_back({DiagLevel::Note, fn.name + ": " + msg});
    }

    void
    checkDecls()
    {
        if (fn.ports.empty())
            error("operator has no stream ports; it cannot "
                  "communicate");
        for (const auto &v : fn.vars)
            checkType(v.type, "variable " + v.name);
        for (const auto &a : fn.arrays) {
            checkType(a.elemType, "array " + a.name);
            if (a.size <= 0)
                error("array " + a.name + " has non-positive size");
            if (a.isRom() &&
                static_cast<int64_t>(a.init.size()) != a.size) {
                error("array " + a.name +
                      " init length does not match size");
            }
        }
    }

    void
    checkType(const Type &t, const std::string &what)
    {
        if (t.width < 1 || t.width > 32)
            error(what + ": width " + std::to_string(t.width) +
                  " outside supported 1..32");
        if (t.isFixed() && (t.intBits < 0 || t.intBits > t.width))
            error(what + ": fixed format has invalid integer bits");
    }

    /** Structural expression checks beyond stream reads. */
    void
    checkExprShape(const ExprPtr &e)
    {
        if (e->kind == ExprKind::Mod &&
            e->args[0]->type.isSigned() !=
                e->args[1]->type.isSigned()) {
            error("mod operands must share signedness (targets "
                  "disagree on mixed-sign remainders)");
        }
        if (e->kind == ExprKind::Div &&
            (e->args[0]->type.width > 32 ||
             e->args[1]->type.width > 32)) {
            error("division operands must be <= 32 bits; insert "
                  "casts before dividing (softcore divider limit)");
        }
        for (const auto &a : e->args)
            checkExprShape(a);
    }

    /** Count StreamRead nodes; flag reads in forbidden positions. */
    int
    countReads(const ExprPtr &e, bool forbidden)
    {
        int n = 0;
        if (e->kind == ExprKind::StreamRead) {
            n = 1;
            // A read node referenced from more than one statement (or
            // twice within one expression tree) re-executes per use —
            // the classic "Ex x = read()" footgun. Demand a variable.
            if (!seenReads.insert(e.get()).second) {
                error("stream read expression is reused; read into a "
                      "variable instead (each reference re-executes "
                      "the blocking read)");
            }
            if (forbidden) {
                error("stream read inside a conditionally evaluated "
                      "position (select/&&/||); blocking order would "
                      "be target-dependent");
            }
            int port = static_cast<int>(e->imm);
            if (port < 0 ||
                port >= static_cast<int>(fn.ports.size()) ||
                fn.ports[port].dir != PortDir::In) {
                error("stream read from invalid port index " +
                      std::to_string(port));
            } else {
                usedPorts.insert(usedPorts.end(), port);
            }
        }
        bool arm_forbidden = forbidden ||
                             e->kind == ExprKind::Select ||
                             e->kind == ExprKind::LAnd ||
                             e->kind == ExprKind::LOr;
        for (size_t i = 0; i < e->args.size(); ++i) {
            // Only the non-first args of select/&&/|| are
            // conditionally evaluated.
            bool f = (i == 0) ? forbidden : arm_forbidden;
            n += countReads(e->args[i], f);
        }
        return n;
    }

    void
    checkStmts(const std::vector<StmtPtr> &stmts)
    {
        for (const auto &s : stmts)
            checkStmt(s);
    }

    void
    checkStmt(const StmtPtr &s)
    {
        int reads = 0;
        for (const auto &e : s->args) {
            checkExprShape(e);
            reads += countReads(e, false);
        }
        if (reads > 1) {
            error("statement performs " + std::to_string(reads) +
                  " stream reads; at most one per statement keeps "
                  "blocking behaviour identical on all targets");
        }

        switch (s->kind) {
          case StmtKind::Assign:
            if (s->imm < 0 ||
                s->imm >= static_cast<int64_t>(fn.vars.size()))
                error("assignment to invalid variable index");
            break;
          case StmtKind::ArrayStore: {
            if (s->imm < 0 ||
                s->imm >= static_cast<int64_t>(fn.arrays.size())) {
                error("store to invalid array index");
            } else if (fn.arrays[s->imm].isRom()) {
                warning("store into ROM array " +
                        fn.arrays[s->imm].name +
                        " (contents will be overwritten on "
                        "processor targets only if supported)");
            }
            if (!s->args.empty() && s->args[0]->type.isFixed())
                error("array index must be an integer expression");
            break;
          }
          case StmtKind::StreamWrite: {
            int port = static_cast<int>(s->imm);
            if (port < 0 ||
                port >= static_cast<int>(fn.ports.size()) ||
                fn.ports[port].dir != PortDir::Out) {
                error("stream write to invalid port index " +
                      std::to_string(port));
            } else {
                usedPorts.insert(usedPorts.end(), port);
            }
            break;
          }
          case StmtKind::For:
            if (s->immStep <= 0)
                error("for-loop has non-positive step");
            if (s->immHi < s->immLo)
                warning("for-loop has empty range");
            checkStmts(s->body);
            break;
          case StmtKind::While: {
            if (!s->args.empty()) {
                int cond_reads = countReads(s->args[0], false);
                if (cond_reads > 0)
                    error("stream read inside while condition is "
                          "not allowed");
            }
            if (s->tripEstimate <= 0)
                warning("while-loop lacks a positive trip estimate; "
                        "scheduler assumes 16");
            checkStmts(s->body);
            break;
          }
          case StmtKind::If:
            checkStmts(s->body);
            checkStmts(s->elseBody);
            break;
          case StmtKind::Print:
            if (fn.pragma.target == Target::HW)
                note("print statement is processor-only and will be "
                     "elided by the HW flows (the paper's #ifdef "
                     "RISCV guard)");
            break;
          case StmtKind::Block:
            checkStmts(s->body);
            break;
        }
    }

    void
    checkPortUsage()
    {
        for (size_t pi = 0; pi < fn.ports.size(); ++pi) {
            bool used = false;
            for (int u : usedPorts)
                used |= (u == static_cast<int>(pi));
            if (!used)
                warning("port " + fn.ports[pi].name +
                        " is declared but never used");
        }
    }

    const OperatorFn &fn;
    std::vector<Diagnostic> diags;
    std::vector<int> usedPorts;
    std::set<const Expr *> seenReads;
};

} // namespace

std::vector<Diagnostic>
validateOperator(const OperatorFn &fn)
{
    return OperatorChecker(fn).run();
}

std::vector<Diagnostic>
validateGraph(const Graph &g)
{
    std::vector<Diagnostic> diags;
    for (const auto &problem : g.check())
        diags.push_back({DiagLevel::Error, g.name + ": " + problem});
    for (const auto &inst : g.ops) {
        auto sub = validateOperator(inst.fn);
        diags.insert(diags.end(), sub.begin(), sub.end());
    }
    return diags;
}

bool
isClean(const std::vector<Diagnostic> &diags)
{
    for (const auto &d : diags)
        if (d.level == DiagLevel::Error)
            return false;
    return true;
}

std::string
renderDiagnostics(const std::vector<Diagnostic> &diags)
{
    std::string out;
    for (const auto &d : diags) {
        switch (d.level) {
          case DiagLevel::Error: out += "error: "; break;
          case DiagLevel::Warning: out += "warning: "; break;
          case DiagLevel::Note: out += "note: "; break;
        }
        out += d.message;
        out += "\n";
    }
    return out;
}

} // namespace ir
} // namespace pld
