#include "pnr/router.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace pld {
namespace pnr {

using fabric::Device;
using netlist::Netlist;

namespace {

/** Demand units one net places on each tile it crosses. */
int
demandOf(int width)
{
    return std::max(1, (width + 7) / 8);
}

/**
 * Router working state: per-tile present demand and history cost.
 */
class PathFinder
{
  public:
    PathFinder(const Netlist &net, const Device &dev,
               const Placement &place, const RouterOptions &opts)
        : net(net), dev(dev), place(place), opts(opts),
          rng(opts.seed)
    {
        demand.assign(static_cast<size_t>(dev.width) * dev.height, 0);
        history.assign(demand.size(), 0.0f);
        routes.resize(net.nets.size());
    }

    RouteResult
    run()
    {
        Stopwatch sw;
        RouteResult res;

        // Initial route of every net.
        for (size_t ni = 0; ni < net.nets.size(); ++ni)
            routeNet(static_cast<int>(ni));

        int iter = 1;
        for (; iter <= opts.maxIters; ++iter) {
            int over = countOverused();
            if (over == 0)
                break;
            // Accumulate history on overused tiles, rip up and
            // reroute every net that crosses one.
            for (size_t t = 0; t < demand.size(); ++t) {
                if (demand[t] > opts.channelCapacity)
                    history[t] += 0.5f *
                                  (demand[t] - opts.channelCapacity);
            }
            for (size_t ni = 0; ni < net.nets.size(); ++ni) {
                if (crossesOveruse(static_cast<int>(ni))) {
                    ripUp(static_cast<int>(ni));
                    routeNet(static_cast<int>(ni));
                }
            }
        }

        res.iterations = iter;
        res.overusedTiles = countOverused();
        res.feasible = (res.overusedTiles == 0);
        int64_t wl = 0;
        int peak = 0;
        for (size_t ni = 0; ni < net.nets.size(); ++ni)
            wl += static_cast<int64_t>(routes[ni].size()) *
                  demandOf(net.nets[ni].width);
        for (size_t t = 0; t < demand.size(); ++t)
            peak = std::max(peak, demand[t]);
        res.totalWirelength = wl;
        res.maxUtilization =
            static_cast<double>(peak) / opts.channelCapacity;
        res.seconds = sw.seconds();
        return res;
    }

  private:
    size_t
    tileIdx(int c, int r) const
    {
        return static_cast<size_t>(r) * dev.width + c;
    }

    double
    tileCost(int c, int r) const
    {
        size_t t = tileIdx(c, r);
        double present =
            demand[t] >= opts.channelCapacity
                ? 4.0 * (demand[t] - opts.channelCapacity + 1)
                : 0.0;
        return 1.0 + history[t] + present;
    }

    /** Cost of an L path; fills @p out with tiles when not null. */
    double
    walkL(int c0, int r0, int c1, int r1, bool horizontal_first,
          std::vector<std::pair<int, int>> *out) const
    {
        double cost = 0;
        int c = c0, r = r0;
        auto step = [&](int dc, int dr) {
            c += dc;
            r += dr;
            cost += tileCost(c, r);
            if (out)
                out->emplace_back(c, r);
        };
        if (horizontal_first) {
            while (c != c1)
                step(c1 > c ? 1 : -1, 0);
            while (r != r1)
                step(0, r1 > r ? 1 : -1);
        } else {
            while (r != r1)
                step(0, r1 > r ? 1 : -1);
            while (c != c1)
                step(c1 > c ? 1 : -1, 0);
        }
        return cost;
    }

    void
    routeNet(int ni)
    {
        const auto &nn = net.nets[ni];
        if (nn.driver < 0 || nn.sinks.empty())
            return;
        auto [c0, r0] = place.pos[nn.driver];
        int dem = demandOf(nn.width);
        auto &path = routes[ni];
        for (int s : nn.sinks) {
            auto [c1, r1] = place.pos[s];
            if (c0 == c1 && r0 == r1)
                continue;
            double ch = walkL(c0, r0, c1, r1, true, nullptr);
            double cv = walkL(c0, r0, c1, r1, false, nullptr);
            std::vector<std::pair<int, int>> leg;
            walkL(c0, r0, c1, r1, ch <= cv, &leg);
            for (auto [c, r] : leg) {
                demand[tileIdx(c, r)] += dem;
                path.emplace_back(c, r);
            }
        }
    }

    void
    ripUp(int ni)
    {
        int dem = demandOf(net.nets[ni].width);
        for (auto [c, r] : routes[ni])
            demand[tileIdx(c, r)] -= dem;
        routes[ni].clear();
    }

    bool
    crossesOveruse(int ni) const
    {
        for (auto [c, r] : routes[ni]) {
            if (demand[tileIdx(c, r)] > opts.channelCapacity)
                return true;
        }
        return false;
    }

    int
    countOverused() const
    {
        int n = 0;
        for (size_t t = 0; t < demand.size(); ++t)
            n += (demand[t] > opts.channelCapacity);
        return n;
    }

    const Netlist &net;
    const Device &dev;
    const Placement &place;
    RouterOptions opts;
    Rng rng;

    std::vector<int> demand;
    std::vector<float> history;
    std::vector<std::vector<std::pair<int, int>>> routes;
};

} // namespace

RouteResult
route(const Netlist &net, const Device &dev, const Placement &place,
      const RouterOptions &opts)
{
    PathFinder pf(net, dev, place, opts);
    return pf.run();
}

} // namespace pnr
} // namespace pld
