#include "pnr/router.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace pld {
namespace pnr {

using fabric::Device;
using netlist::Netlist;

namespace {

/** Demand units one net places on each tile it crosses. */
int
demandOf(int width)
{
    return std::max(1, (width + 7) / 8);
}

/**
 * Router working state: per-tile present demand and history cost.
 *
 * Each negotiation iteration routes its whole worklist against the
 * demand/history arrays frozen at the iteration start; new demand
 * accumulates in per-lane delta arrays merged at the barrier. Merging
 * sums integers, so the final state is independent of how the
 * worklist was chunked across lanes.
 */
class PathFinder
{
  public:
    PathFinder(const Netlist &net, const Device &dev,
               const Placement &place, const RouterOptions &opts)
        : net(net), dev(dev), place(place), opts(opts)
    {
        demand.assign(static_cast<size_t>(dev.width) * dev.height, 0);
        history.assign(demand.size(), 0.0f);
        routes.resize(net.nets.size());
    }

    RouteResult
    run()
    {
        Stopwatch sw;
        RouteResult res;

        // Parallel lanes: the calling thread plus leased workers.
        unsigned want =
            opts.threads ? opts.threads : ThreadBudget::total();
        std::unique_ptr<BudgetLease> lease;
        std::unique_ptr<ThreadPool> pool;
        if (want > 1) {
            lease = std::make_unique<BudgetLease>(
                want - 1, /*exact=*/opts.threads > 0);
            if (lease->count() > 0)
                pool = std::make_unique<ThreadPool>(lease->count());
        }
        unsigned lanes = pool ? pool->workerCount() + 1 : 1;
        double cpu = 0;

        // Initial route of every net.
        std::vector<int> work(net.nets.size());
        for (size_t ni = 0; ni < net.nets.size(); ++ni)
            work[ni] = static_cast<int>(ni);
        {
            obs::Span init("pnr", "pnr.route.init");
            init.arg("nets", static_cast<int64_t>(work.size()));
            routeBatch(work, lanes, pool.get(), cpu);
        }

        int iter = 1;
        for (; iter <= opts.maxIters; ++iter) {
            int over = countOverused();
            if (over == 0)
                break;
            obs::Span ispan("pnr", "pnr.route.iter");
            ispan.arg("iter", static_cast<int64_t>(iter));
            ispan.arg("overused", static_cast<int64_t>(over));
            obs::count("pnr.route.iterations");
            // Accumulate history on overused tiles, rip up and
            // reroute every net that crosses one.
            for (size_t t = 0; t < demand.size(); ++t) {
                if (demand[t] > opts.channelCapacity)
                    history[t] += 0.5f *
                                  (demand[t] - opts.channelCapacity);
            }
            work.clear();
            for (size_t ni = 0; ni < net.nets.size(); ++ni) {
                if (crossesOveruse(static_cast<int>(ni)))
                    work.push_back(static_cast<int>(ni));
            }
            for (int ni : work)
                ripUp(ni);
            obs::count("pnr.route.ripups",
                       static_cast<int64_t>(work.size()));
            ispan.arg("rerouted", static_cast<int64_t>(work.size()));
            routeBatch(work, lanes, pool.get(), cpu);
        }

        res.iterations = iter;
        res.overusedTiles = countOverused();
        res.feasible = (res.overusedTiles == 0);
        int64_t wl = 0;
        int peak = 0;
        for (size_t ni = 0; ni < net.nets.size(); ++ni)
            wl += static_cast<int64_t>(routes[ni].size()) *
                  demandOf(net.nets[ni].width);
        for (size_t t = 0; t < demand.size(); ++t)
            peak = std::max(peak, demand[t]);
        res.totalWirelength = wl;
        res.maxUtilization =
            static_cast<double>(peak) / opts.channelCapacity;
        res.seconds = sw.seconds();
        res.cpuSeconds = cpu;
        res.threadsUsed = lanes;
        res.routes = std::move(routes);
        return res;
    }

  private:
    size_t
    tileIdx(int c, int r) const
    {
        return static_cast<size_t>(r) * dev.width + c;
    }

    double
    tileCost(int c, int r) const
    {
        size_t t = tileIdx(c, r);
        double present =
            demand[t] >= opts.channelCapacity
                ? 4.0 * (demand[t] - opts.channelCapacity + 1)
                : 0.0;
        return 1.0 + history[t] + present;
    }

    /** Cost of an L path; fills @p out with tiles when not null. */
    double
    walkL(int c0, int r0, int c1, int r1, bool horizontal_first,
          std::vector<std::pair<int, int>> *out) const
    {
        double cost = 0;
        int c = c0, r = r0;
        auto step = [&](int dc, int dr) {
            c += dc;
            r += dr;
            cost += tileCost(c, r);
            if (out)
                out->emplace_back(c, r);
        };
        if (horizontal_first) {
            while (c != c1)
                step(c1 > c ? 1 : -1, 0);
            while (r != r1)
                step(0, r1 > r ? 1 : -1);
        } else {
            while (r != r1)
                step(0, r1 > r ? 1 : -1);
            while (c != c1)
                step(c1 > c ? 1 : -1, 0);
        }
        return cost;
    }

    /**
     * Route one net against the frozen congestion state, adding its
     * demand to @p delta (merged at the iteration barrier).
     */
    void
    routeNet(int ni, std::vector<int> &delta)
    {
        const auto &nn = net.nets[ni];
        if (nn.driver < 0 || nn.sinks.empty())
            return;
        auto [c0, r0] = place.pos[nn.driver];
        int dem = demandOf(nn.width);
        auto &path = routes[ni];
        for (int s : nn.sinks) {
            auto [c1, r1] = place.pos[s];
            if (c0 == c1 && r0 == r1)
                continue;
            double ch = walkL(c0, r0, c1, r1, true, nullptr);
            double cv = walkL(c0, r0, c1, r1, false, nullptr);
            std::vector<std::pair<int, int>> leg;
            walkL(c0, r0, c1, r1, ch <= cv, &leg);
            for (auto [c, r] : leg) {
                delta[tileIdx(c, r)] += dem;
                path.emplace_back(c, r);
            }
        }
    }

    /**
     * Route @p work against the frozen state across up to @p lanes
     * chunks. Results are chunk-count independent: every net reads
     * only the frozen demand/history, writes only its own routes[ni]
     * slot, and the per-lane deltas merge by integer addition.
     */
    void
    routeBatch(const std::vector<int> &work, unsigned lanes,
               ThreadPool *pool, double &cpu)
    {
        if (work.empty())
            return;
        unsigned chunks = std::min<unsigned>(
            lanes, static_cast<unsigned>(work.size()));
        std::vector<std::vector<int>> deltas(chunks);
        std::vector<double> lane_seconds(chunks, 0.0);
        size_t per = (work.size() + chunks - 1) / chunks;
        // Lane count and chunk boundaries depend on PLD_THREADS, so
        // lane spans are scheduling telemetry, not structure.
        uint64_t parent_tok = obs::currentSpan();
        auto run_chunk = [&](unsigned c) {
            obs::Span lane_span("sched", "pnr.route.lane", parent_tok,
                                /*structural=*/false);
            lane_span.arg("lane", static_cast<int64_t>(c));
            // CPU clock, not wall: lane busy time must not count the
            // time a timeshared worker spends descheduled.
            ThreadCpuStopwatch lane;
            auto &d = deltas[c];
            d.assign(demand.size(), 0);
            size_t b = c * per;
            size_t e = std::min(work.size(), b + per);
            for (size_t i = b; i < e; ++i)
                routeNet(work[i], d);
            lane_seconds[c] = lane.seconds();
            lane_span.arg("nets", static_cast<int64_t>(e - b));
        };
        if (chunks > 1 && pool) {
            for (unsigned c = 1; c < chunks; ++c)
                pool->submit([&run_chunk, c] { run_chunk(c); });
            run_chunk(0);
            pool->wait();
        } else {
            for (unsigned c = 0; c < chunks; ++c)
                run_chunk(c);
        }
        for (unsigned c = 0; c < chunks; ++c) {
            const auto &d = deltas[c];
            for (size_t t = 0; t < demand.size(); ++t)
                demand[t] += d[t];
            cpu += lane_seconds[c];
        }
    }

    void
    ripUp(int ni)
    {
        int dem = demandOf(net.nets[ni].width);
        for (auto [c, r] : routes[ni])
            demand[tileIdx(c, r)] -= dem;
        routes[ni].clear();
    }

    bool
    crossesOveruse(int ni) const
    {
        for (auto [c, r] : routes[ni]) {
            if (demand[tileIdx(c, r)] > opts.channelCapacity)
                return true;
        }
        return false;
    }

    int
    countOverused() const
    {
        int n = 0;
        for (size_t t = 0; t < demand.size(); ++t)
            n += (demand[t] > opts.channelCapacity);
        return n;
    }

    const Netlist &net;
    const Device &dev;
    const Placement &place;
    RouterOptions opts;

    std::vector<int> demand;
    std::vector<float> history;
    std::vector<std::vector<std::pair<int, int>>> routes;
};

} // namespace

RouteResult
route(const Netlist &net, const Device &dev, const Placement &place,
      const RouterOptions &opts)
{
    PathFinder pf(net, dev, place, opts);
    return pf.run();
}

} // namespace pnr
} // namespace pld
