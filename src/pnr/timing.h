/**
 * @file
 * Static timing model: placement-aware Fmax estimation.
 *
 * Per-net path delay = logic delay (driver's combinational level) +
 * wire delay (manhattan distance) + an SLR-crossing penalty for
 * unpipelined nets (paper Sec 2.5: crossings need extra pipelining).
 * Fmax = 1 / worst path, capped at the fabric's 300 MHz practical
 * ceiling — matching the 150-300 MHz spread in Table 3.
 */

#ifndef PLD_PNR_TIMING_H
#define PLD_PNR_TIMING_H

#include <string>

#include "pnr/placer.h"

namespace pld {
namespace pnr {

struct TimingOptions
{
    double logicNsPerLevel = 0.22;
    double baseNs = 1.1;
    double wireNsPerTile = 0.012;
    double slrCrossNs = 1.6;
    double fmaxCapMHz = 300.0;
};

struct TimingResult
{
    double critPathNs = 0;
    double fmaxMHz = 0;
    std::string critNetName;
    bool critCrossesSlr = false;
};

/** Analyze the placed design. */
TimingResult analyzeTiming(const netlist::Netlist &net,
                           const fabric::Device &dev,
                           const Placement &place,
                           const TimingOptions &opts = {});

} // namespace pnr
} // namespace pld

#endif // PLD_PNR_TIMING_H
