/**
 * @file
 * Simulated-annealing placer (VPR-style).
 *
 * This is where the paper's compile-time physics lives: placement is
 * solved by a super-linear stochastic heuristic, so placing a small
 * page-sized netlist into an 18k-LUT page is dramatically cheaper
 * than placing a whole application into the full user region — the
 * mechanism behind PLD's separate-compilation speedup (Sec 4.1).
 *
 * Two levers keep the inner loop fast and the wall time scalable:
 * incremental bounding-box cost updates (a move only touches the
 * boxes of the nets on the two swapped cells, with a full recompute
 * only when a pin leaves a box boundary), and multi-seed restarts
 * that run concurrently and keep the best-cost placement. Restart
 * results are independent of the thread count, so placements are
 * bit-identical at threads=1 and threads=N for the same seed.
 */

#ifndef PLD_PNR_PLACER_H
#define PLD_PNR_PLACER_H

#include <cstdint>
#include <vector>

#include "fabric/device.h"
#include "netlist/netlist.h"

namespace pld {
namespace pnr {

/** Per-cell tile coordinates. */
struct Placement
{
    std::vector<std::pair<int, int>> pos; // (col,row) per cell
};

struct PlacerOptions
{
    /** Scales annealing moves; 1.0 is the default schedule. */
    double effort = 1.0;
    uint64_t seed = 1;
    /** Extra weight for nets crossing the SLR boundary. */
    double slrPenalty = 40.0;
    /**
     * Independent annealing runs (distinct derived seeds); the
     * best-cost result wins, ties broken by restart index so the
     * outcome never depends on scheduling.
     */
    int restarts = 1;
    /** Concurrent restarts: 0 = thread-budget auto, 1 = serial,
     * N = exactly N threads. */
    unsigned threads = 1;
};

struct PlaceResult
{
    Placement place;
    double finalCost = 0;
    double initialCost = 0;
    /** Summed over all restarts (total algorithmic work). */
    uint64_t movesAttempted = 0;
    uint64_t movesAccepted = 0;
    /** Wall-clock of the whole placement (restarts overlap). */
    double seconds = 0;
    /** Summed busy time across restarts (single-node cost). */
    double cpuSeconds = 0;
    int restartsRun = 1;
};

/**
 * Place @p net into @p region of @p dev. fatal()s if the region lacks
 * capacity for the netlist's site demands (the paper's "operator does
 * not fit the page" developer burden).
 */
PlaceResult place(const netlist::Netlist &net,
                  const fabric::Device &dev, const fabric::Rect &region,
                  const PlacerOptions &opts);

/** Wirelength cost of an existing placement (for tests/reports). */
double placementCost(const netlist::Netlist &net,
                     const fabric::Device &dev, const Placement &p,
                     double slr_penalty);

} // namespace pnr
} // namespace pld

#endif // PLD_PNR_PLACER_H
