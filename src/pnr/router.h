/**
 * @file
 * Negotiated-congestion router (PathFinder-style) over a coarse
 * channel model.
 *
 * Each fabric tile offers a fixed amount of routing capacity; nets
 * demand capacity proportional to bus width along an L-shaped path
 * from driver to each sink. Overused tiles accumulate history cost
 * and overused nets are ripped up and rerouted until the solution is
 * feasible — the second super-linear stage of FPGA compilation.
 *
 * The negotiation loop is batch-synchronous: every net in an
 * iteration routes against the congestion state frozen at the
 * iteration barrier, accumulating per-thread demand deltas that are
 * merged (integer sums, order-independent) before the next
 * iteration. Independent nets therefore route concurrently while the
 * result stays bit-identical for every thread count.
 */

#ifndef PLD_PNR_ROUTER_H
#define PLD_PNR_ROUTER_H

#include "pnr/placer.h"

namespace pld {
namespace pnr {

struct RouterOptions
{
    /** Routing capacity units per tile. */
    int channelCapacity = 64;
    /** Maximum rip-up/reroute iterations. */
    int maxIters = 8;
    uint64_t seed = 1;
    /** Concurrent net routing: 0 = thread-budget auto, 1 = serial,
     * N = exactly N threads. Never affects results. */
    unsigned threads = 1;
};

struct RouteResult
{
    bool feasible = false;
    int iterations = 0;
    int64_t totalWirelength = 0; ///< tile-segments used (width-scaled)
    int overusedTiles = 0;       ///< remaining after last iteration
    double maxUtilization = 0;   ///< peak tile demand / capacity
    /** Wall-clock of the routing run. */
    double seconds = 0;
    /** Summed busy time across routing lanes (single-node cost). */
    double cpuSeconds = 0;
    /** Parallel lanes used (1 = serial). */
    unsigned threadsUsed = 1;
    /** Tiles crossed by each net, in routing order (determinism
     * checks and downstream analysis). */
    std::vector<std::vector<std::pair<int, int>>> routes;
};

/** Route every net of @p net under placement @p place. */
RouteResult route(const netlist::Netlist &net,
                  const fabric::Device &dev, const Placement &place,
                  const RouterOptions &opts);

} // namespace pnr
} // namespace pld

#endif // PLD_PNR_ROUTER_H
