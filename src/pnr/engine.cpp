#include "pnr/engine.h"

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace pld {
namespace pnr {

using fabric::Device;
using fabric::Rect;
using netlist::Netlist;

Bitstream
generateBitstream(const Netlist &net, const Rect &region)
{
    // Frame data proportional to the reconfigured region plus cell
    // configuration — so partial bitstreams are small and full-chip
    // bitstreams are large (Sec 2.3: load time tracks bitstream
    // size). Bytes are actually produced and hashed so generation
    // time also tracks size.
    size_t frame_bytes = static_cast<size_t>(region.area()) * 48;
    size_t cell_bytes = net.cells.size() * 16;
    std::vector<uint8_t> image;
    image.reserve(frame_bytes + cell_bytes);
    uint32_t lcg = 0x1234567u;
    for (size_t i = 0; i < frame_bytes + cell_bytes; ++i) {
        lcg = lcg * 1664525u + 1013904223u;
        image.push_back(static_cast<uint8_t>(lcg >> 24));
    }
    Hasher h;
    h.bytes(image.data(), image.size());
    h.u64(net.contentHash());
    Bitstream b;
    b.bytes = image.size();
    b.hash = h.digest();
    return b;
}

PnrResult
placeAndRoute(const Netlist &net, const Device &dev,
              const Rect &region, const PnrOptions &opts)
{
    Stopwatch total;
    PnrResult res;
    obs::Span span("pnr", "pnr.pnr");
    span.arg("cells", static_cast<int64_t>(net.cells.size()));
    span.arg("nets", static_cast<int64_t>(net.nets.size()));
    span.arg("shell", opts.abstractShell ? "abstract" : "full");
    obs::count("pnr.runs");

    if (!opts.abstractShell) {
        // Without the abstract shell, Vitis loads and checks the
        // logic of the linking network and every other page before
        // touching the target region (Sec 4.1). Model that context
        // load as a full-device sweep with per-tile checks.
        Stopwatch ctx;
        obs::Span cspan("pnr", "pnr.context");
        volatile int64_t checked = 0;
        for (int pass = 0; pass < 6; ++pass) {
            for (int r = 0; r < dev.height; ++r) {
                for (int c = 0; c < dev.width; ++c) {
                    checked += static_cast<int>(dev.at(c, r)) + pass;
                }
            }
        }
        res.contextSeconds = ctx.seconds();
    }

    PlacerOptions popts;
    popts.effort = opts.effort;
    popts.seed = opts.seed;
    popts.restarts = opts.placeRestarts;
    popts.threads = opts.threads;
    PlaceResult pr;
    {
        obs::Span pspan("pnr", "pnr.place");
        pr = place(net, dev, region, popts);
        pspan.arg("restarts", static_cast<int64_t>(popts.restarts));
        pspan.arg("moves", static_cast<int64_t>(pr.movesAttempted));
    }
    res.place = pr.place;
    res.placeSeconds = pr.seconds;
    res.placeCpuSeconds = pr.cpuSeconds;
    res.placeMoves = pr.movesAttempted;
    obs::record("pnr.place.seconds", pr.seconds);

    RouterOptions ropts;
    ropts.channelCapacity = opts.channelCapacity;
    ropts.maxIters = opts.routeMaxIters;
    ropts.seed = opts.seed;
    ropts.threads = opts.threads;
    {
        obs::Span rspan("pnr", "pnr.route");
        res.routing = route(net, dev, res.place, ropts);
        rspan.arg("iterations",
                  static_cast<int64_t>(res.routing.iterations));
        rspan.arg("overused",
                  static_cast<int64_t>(res.routing.overusedTiles));
        rspan.arg("feasible",
                  static_cast<int64_t>(res.routing.feasible ? 1 : 0));
    }
    obs::record("pnr.route.seconds", res.routing.seconds);
    res.routeSeconds = res.routing.seconds;
    res.routeCpuSeconds = res.routing.cpuSeconds;
    res.threadsUsed = res.routing.threadsUsed;
    if (opts.injectRouteFail && res.routing.feasible) {
        // Injected congestion: report the run exactly as a real
        // infeasible route would, at the result boundary.
        res.routing.feasible = false;
        res.routing.overusedTiles =
            std::max(res.routing.overusedTiles, 1);
        res.routing.maxUtilization =
            std::max(res.routing.maxUtilization, 1.01);
    }
    if (!res.routing.feasible) {
        obs::count("pnr.route_fails");
        Diagnostic d;
        d.code = CompileCode::RouteInfeasible;
        d.stage = CompileStage::Route;
        d.severity = DiagSeverity::Error;
        d.retriable = true;
        d.detail = detail::format(
            "routing left %d overused tiles (util %.2f) after %d "
            "iterations%s",
            res.routing.overusedTiles, res.routing.maxUtilization,
            res.routing.iterations,
            opts.injectRouteFail ? " [injected]" : "");
        pld_warn("%s", d.detail.c_str());
        res.status.add(std::move(d));
    }

    {
        obs::Span tspan("pnr", "pnr.timing");
        res.timing = analyzeTiming(net, dev, res.place, opts.timing);
    }
    if (opts.injectFmaxDerate < 1.0) {
        res.timing.fmaxMHz *= opts.injectFmaxDerate;
        res.timing.critPathNs /= opts.injectFmaxDerate;
    }
    if (opts.requiredFmaxMHz > 0 &&
        res.timing.fmaxMHz < opts.requiredFmaxMHz) {
        Diagnostic d;
        d.code = CompileCode::TimingMiss;
        d.stage = CompileStage::Timing;
        d.severity = DiagSeverity::Error;
        d.retriable = true;
        d.detail = detail::format(
            "fmax %.1f MHz below required %.1f MHz (crit path "
            "%.2f ns on %s)%s",
            res.timing.fmaxMHz, opts.requiredFmaxMHz,
            res.timing.critPathNs, res.timing.critNetName.c_str(),
            opts.injectFmaxDerate < 1.0 ? " [injected]" : "");
        res.status.add(std::move(d));
        res.timingMet = false;
        obs::count("pnr.timing_misses");
    }

    Stopwatch bg;
    {
        obs::Span bspan("pnr", "pnr.bitgen");
        res.bits = generateBitstream(net, region);
        bspan.arg("bytes", static_cast<int64_t>(res.bits.bytes));
    }
    res.bitgenSeconds = bg.seconds();

    res.success = res.routing.feasible && res.timingMet;
    res.totalSeconds = total.seconds();
    return res;
}

} // namespace pnr
} // namespace pld
