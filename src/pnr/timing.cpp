#include "pnr/timing.h"

#include <algorithm>
#include <cmath>

namespace pld {
namespace pnr {

using fabric::Device;
using netlist::Netlist;

TimingResult
analyzeTiming(const Netlist &net, const Device &dev,
              const Placement &place, const TimingOptions &opts)
{
    TimingResult res;
    res.critPathNs = opts.baseNs;

    for (const auto &nn : net.nets) {
        if (nn.driver < 0 || nn.sinks.empty())
            continue;
        auto [c0, r0] = place.pos[nn.driver];
        int level = net.cells[nn.driver].level;
        for (int s : nn.sinks) {
            auto [c1, r1] = place.pos[s];
            double dist = std::abs(c1 - c0) + std::abs(r1 - r0);
            double ns = opts.baseNs +
                        opts.logicNsPerLevel * level +
                        opts.wireNsPerTile * dist;
            bool crosses = dev.slrOf(r0) != dev.slrOf(r1);
            if (crosses && !nn.pipelined)
                ns += opts.slrCrossNs;
            if (ns > res.critPathNs) {
                res.critPathNs = ns;
                res.critNetName = nn.name;
                res.critCrossesSlr = crosses && !nn.pipelined;
            }
        }
    }

    res.fmaxMHz = std::min(opts.fmaxCapMHz, 1000.0 / res.critPathNs);
    return res;
}

} // namespace pnr
} // namespace pld
