#include "pnr/placer.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace pld {
namespace pnr {

using fabric::Device;
using fabric::Rect;
using netlist::Netlist;
using netlist::SiteKind;

namespace {

double
widthFactor(int width)
{
    return 1.0 + width / 32.0;
}

/**
 * Incrementally maintained bounding box of one net, with pin counts
 * on each boundary (VPR-style): a pin moving off a boundary with
 * other pins still on it is O(1); only when the last boundary pin
 * leaves does the box need an O(pins) rescan.
 */
struct NetBox
{
    int minC = 1 << 30, maxC = -1, minR = 1 << 30, maxR = -1;
    int nMinC = 0, nMaxC = 0, nMinR = 0, nMaxR = 0;
    int pins = 0;
};

/** Working state of one annealing run. */
class Annealer
{
  public:
    Annealer(const Netlist &net, const Device &dev, const Rect &region,
             const PlacerOptions &opts)
        : net(net), dev(dev), opts(opts), rng(opts.seed)
    {
        // Enumerate candidate sites per kind.
        for (int k = 0; k < 3; ++k) {
            auto kind = static_cast<SiteKind>(k);
            sites[k] = dev.sitesIn(region, kind);
            occupant[k].assign(sites[k].size(), -1);
        }

        // Capacity check (the "fits the page" constraint).
        int demand[3] = {0, 0, 0};
        for (const auto &c : net.cells)
            demand[static_cast<int>(c.site)]++;
        const char *names[3] = {"CLB", "DSP", "BRAM"};
        for (int k = 0; k < 3; ++k) {
            if (demand[k] > static_cast<int>(sites[k].size())) {
                pld_fatal("netlist needs %d %s sites but region "
                          "offers only %zu — decompose the operator "
                          "into smaller pieces (paper Sec 4.1)",
                          demand[k], names[k], sites[k].size());
            }
        }

        // Initial placement: random legal assignment (VPR-style);
        // annealing does the real work from there.
        place_.pos.resize(net.cells.size());
        cellSiteIdx.resize(net.cells.size());
        std::vector<std::vector<int>> free_sites(3);
        for (int k = 0; k < 3; ++k) {
            free_sites[k].resize(sites[k].size());
            for (size_t s = 0; s < sites[k].size(); ++s)
                free_sites[k][s] = static_cast<int>(s);
            // Fisher-Yates with the seeded RNG.
            for (size_t s = sites[k].size(); s > 1; --s) {
                size_t j = rng.below(s);
                std::swap(free_sites[k][s - 1], free_sites[k][j]);
            }
        }
        int cursor[3] = {0, 0, 0};
        for (size_t ci = 0; ci < net.cells.size(); ++ci) {
            int k = static_cast<int>(net.cells[ci].site);
            int s = free_sites[k][cursor[k]++];
            occupant[k][s] = static_cast<int>(ci);
            cellSiteIdx[ci] = s;
            place_.pos[ci] = sites[k][s];
        }

        boxes.resize(net.nets.size());
        netCost.resize(net.nets.size());
        totalCost = 0;
        for (size_t ni = 0; ni < net.nets.size(); ++ni) {
            recomputeBox(static_cast<int>(ni));
            netCost[ni] = costFromBox(static_cast<int>(ni));
            totalCost += netCost[ni];
        }
    }

    PlaceResult
    run()
    {
        Stopwatch sw;
        // Busy time on this thread: immune to timesharing when
        // several restarts (or page compiles) share a core.
        ThreadCpuStopwatch cpu_sw;
        PlaceResult res;
        res.initialCost = totalCost;

        size_t n = net.cells.size();
        if (n == 0 || net.nets.empty()) {
            res.place = place_;
            res.seconds = sw.seconds();
            res.cpuSeconds = cpu_sw.seconds();
            return res;
        }

        // VPR-flavoured schedule: super-linear moves per temperature,
        // acceptance-keyed cooling, and a shrinking range window.
        auto moves_per_temp = static_cast<uint64_t>(
            std::max(64.0, opts.effort * std::pow(double(n), 1.2)));
        double t = initialTemperature();
        uint64_t attempted = 0, accepted = 0;

        size_t max_sites = 0;
        for (int k = 0; k < 3; ++k)
            max_sites = std::max(max_sites, sites[k].size());
        rangeLimit = static_cast<int>(max_sites);

        double best_cost = totalCost;
        std::vector<int> best_site_idx = cellSiteIdx;

        double exit_threshold =
            0.002 * std::max(1.0, totalCost) / net.nets.size();
        int temp_steps = 0;
        while (t > exit_threshold && temp_steps < 200) {
            uint64_t acc_this_temp = 0;
            for (uint64_t m = 0; m < moves_per_temp; ++m) {
                if (tryMove(t)) {
                    ++acc_this_temp;
                    ++accepted;
                }
                ++attempted;
            }
            double rate =
                double(acc_this_temp) / double(moves_per_temp);
            // The annealing schedule is a pure function of the seed,
            // so these instants are structural even under restarts
            // running on pool workers.
            obs::instant("pnr", "pnr.place.temp")
                .arg("step", static_cast<int64_t>(temp_steps))
                .arg("accepted",
                     static_cast<int64_t>(acc_this_temp));
            obs::count("pnr.place.temp_steps");
            // VPR temperature update keyed on acceptance rate.
            double alpha;
            if (rate > 0.96)
                alpha = 0.5;
            else if (rate > 0.8)
                alpha = 0.9;
            else if (rate > 0.15)
                alpha = 0.95;
            else
                alpha = 0.8;
            t *= alpha;
            // Keep acceptance near 0.44 by shrinking the window.
            rangeLimit = std::max(
                4, std::min(static_cast<int>(max_sites),
                            static_cast<int>(rangeLimit *
                                             (1.0 - 0.44 + rate))));
            if (totalCost < best_cost) {
                best_cost = totalCost;
                best_site_idx = cellSiteIdx;
            }
            ++temp_steps;
        }

        // Restore the best placement seen (annealing may drift after
        // its best point).
        if (best_cost < totalCost) {
            for (size_t ci = 0; ci < net.cells.size(); ++ci) {
                int k = static_cast<int>(net.cells[ci].site);
                place_.pos[ci] = sites[k][best_site_idx[ci]];
            }
        }
        // Report an exact cost for the final placement: the running
        // totalCost accumulates fp deltas over millions of moves;
        // one clean sum removes that drift.
        totalCost = 0;
        for (size_t ni = 0; ni < net.nets.size(); ++ni) {
            recomputeBox(static_cast<int>(ni));
            totalCost += costFromBox(static_cast<int>(ni));
        }

        res.place = place_;
        res.finalCost = totalCost;
        res.movesAttempted = attempted;
        res.movesAccepted = accepted;
        res.seconds = sw.seconds();
        res.cpuSeconds = cpu_sw.seconds();
        return res;
    }

  private:
    /** O(pins) rescan of one net's box from current positions. */
    void
    recomputeBox(int ni)
    {
        const auto &nn = net.nets[ni];
        NetBox b;
        auto touch = [&](int cell) {
            auto [c, r] = place_.pos[cell];
            if (c < b.minC) {
                b.minC = c;
                b.nMinC = 1;
            } else if (c == b.minC) {
                b.nMinC++;
            }
            if (c > b.maxC) {
                b.maxC = c;
                b.nMaxC = 1;
            } else if (c == b.maxC) {
                b.nMaxC++;
            }
            if (r < b.minR) {
                b.minR = r;
                b.nMinR = 1;
            } else if (r == b.minR) {
                b.nMinR++;
            }
            if (r > b.maxR) {
                b.maxR = r;
                b.nMaxR = 1;
            } else if (r == b.maxR) {
                b.nMaxR++;
            }
            b.pins++;
        };
        if (nn.driver >= 0)
            touch(nn.driver);
        for (int s : nn.sinks)
            touch(s);
        boxes[ni] = b;
    }

    double
    costFromBox(int ni) const
    {
        const NetBox &b = boxes[ni];
        if (b.maxC < 0)
            return 0;
        double hpwl = (b.maxC - b.minC) + (b.maxR - b.minR);
        double cost = hpwl * widthFactor(net.nets[ni].width);
        if (dev.slrOf(b.minR) != dev.slrOf(b.maxR))
            cost += opts.slrPenalty * widthFactor(net.nets[ni].width);
        return cost;
    }

    /**
     * One pin of net @p ni moved from (c0,r0) to (c1,r1). O(1) unless
     * the pin was the last one on a box boundary, in which case the
     * box is rescanned (positions are already up to date).
     */
    void
    pinMoved(int ni, int c0, int r0, int c1, int r1)
    {
        NetBox &b = boxes[ni];
        bool rescan = false;
        if (c0 == b.minC && --b.nMinC == 0)
            rescan = true;
        if (c0 == b.maxC && --b.nMaxC == 0)
            rescan = true;
        if (r0 == b.minR && --b.nMinR == 0)
            rescan = true;
        if (r0 == b.maxR && --b.nMaxR == 0)
            rescan = true;
        if (rescan) {
            recomputeBox(ni);
            return;
        }
        if (c1 < b.minC) {
            b.minC = c1;
            b.nMinC = 1;
        } else if (c1 == b.minC) {
            b.nMinC++;
        }
        if (c1 > b.maxC) {
            b.maxC = c1;
            b.nMaxC = 1;
        } else if (c1 == b.maxC) {
            b.nMaxC++;
        }
        if (r1 < b.minR) {
            b.minR = r1;
            b.nMinR = 1;
        } else if (r1 == b.minR) {
            b.nMinR++;
        }
        if (r1 > b.maxR) {
            b.maxR = r1;
            b.nMaxR = 1;
        } else if (r1 == b.maxR) {
            b.nMaxR++;
        }
    }

    /** Move @p cell to @p to, updating boxes and the running cost. */
    void
    moveCell(int cell, std::pair<int, int> to)
    {
        auto from = place_.pos[cell];
        if (from == to)
            return;
        place_.pos[cell] = to;
        for (int ni : net.cells[cell].pins) {
            pinMoved(ni, from.first, from.second, to.first, to.second);
            double fresh = costFromBox(ni);
            totalCost += fresh - netCost[ni];
            netCost[ni] = fresh;
        }
    }

    /** Swap cell ci with whatever occupies sites[k][target]. */
    void
    applySwap(int ci, int k, int target)
    {
        int old_site = cellSiteIdx[ci];
        if (old_site == target)
            return;
        int other = occupant[k][target];

        occupant[k][old_site] = other;
        occupant[k][target] = ci;
        cellSiteIdx[ci] = target;
        if (other >= 0)
            cellSiteIdx[other] = old_site;

        // Cells move one at a time so the incremental boxes always
        // describe the exact multiset of pin positions.
        moveCell(ci, sites[k][target]);
        if (other >= 0)
            moveCell(other, sites[k][old_site]);
    }

    double
    initialTemperature()
    {
        // Sample random swaps (applied then reverted) to estimate the
        // cost-delta scale without disturbing the placement.
        double sum = 0, sq = 0;
        const int samples = 64;
        for (int i = 0; i < samples; ++i) {
            int ci = static_cast<int>(rng.below(net.cells.size()));
            int k = static_cast<int>(net.cells[ci].site);
            if (sites[k].size() < 2)
                continue;
            int target =
                static_cast<int>(rng.below(sites[k].size()));
            int old_site = cellSiteIdx[ci];
            if (target == old_site)
                continue;
            double before = totalCost;
            applySwap(ci, k, target);
            double delta = totalCost - before;
            applySwap(ci, k, old_site);
            sum += delta;
            sq += delta * delta;
        }
        double mean = sum / samples;
        double var = std::max(1.0, sq / samples - mean * mean);
        return 20.0 * std::sqrt(var);
    }

    bool
    tryMove(double t)
    {
        int ci = static_cast<int>(rng.below(net.cells.size()));
        int k = static_cast<int>(net.cells[ci].site);
        if (sites[k].size() < 2)
            return false;
        int old_site = cellSiteIdx[ci];
        // Pick within the range window around the current site (the
        // site list is row-major, so index distance tracks physical
        // locality).
        int span = std::min<int>(rangeLimit,
                                 static_cast<int>(sites[k].size()) - 1);
        int lo = std::max(0, old_site - span);
        int hi = std::min(static_cast<int>(sites[k].size()) - 1,
                          old_site + span);
        int target =
            lo + static_cast<int>(rng.below(
                     static_cast<uint64_t>(hi - lo + 1)));
        if (target == old_site)
            return false;

        double before = totalCost;
        applySwap(ci, k, target);
        double delta = totalCost - before;
        if (delta <= 0)
            return true;
        if (rng.uniform() < std::exp(-delta / t))
            return true;
        applySwap(ci, k, old_site); // revert
        return false;
    }

    const Netlist &net;
    const Device &dev;
    PlacerOptions opts;
    Rng rng;

    std::vector<std::pair<int, int>> sites[3];
    std::vector<int> occupant[3];
    std::vector<int> cellSiteIdx;
    Placement place_;
    std::vector<NetBox> boxes;
    std::vector<double> netCost;
    double totalCost = 0;
    int rangeLimit = 1 << 20;
};

/** Seed for restart @p r; restart 0 keeps the caller's seed. */
uint64_t
restartSeed(uint64_t seed, int r)
{
    return seed + 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(r);
}

} // namespace

PlaceResult
place(const Netlist &net, const Device &dev, const Rect &region,
      const PlacerOptions &opts)
{
    Stopwatch wall;
    int restarts = std::max(1, opts.restarts);
    std::vector<PlaceResult> results(restarts);

    // Restarts may run on pool workers, whose span stacks belong to
    // whatever they last executed — parent each restart to the
    // logical caller instead.
    uint64_t parent_tok = obs::currentSpan();
    auto run_one = [&](int r) {
        obs::Span span("pnr", "pnr.place.restart", parent_tok);
        span.arg("restart", static_cast<int64_t>(r));
        PlacerOptions o = opts;
        o.seed = restartSeed(opts.seed, r);
        Annealer a(net, dev, region, o);
        results[r] = a.run();
        span.arg("moves",
                 static_cast<int64_t>(results[r].movesAttempted));
        obs::count("pnr.place.restarts");
    };

    unsigned want =
        opts.threads ? opts.threads : ThreadBudget::total();
    want = std::min<unsigned>(want, static_cast<unsigned>(restarts));
    if (restarts == 1 || want <= 1) {
        for (int r = 0; r < restarts; ++r)
            run_one(r);
    } else {
        // The calling thread runs restart 0; extra restarts go to
        // leased workers. Restart results never depend on where they
        // ran, so a smaller-than-requested grant only affects wall
        // time.
        BudgetLease lease(want - 1, /*exact=*/opts.threads > 0);
        if (lease.count() == 0) {
            for (int r = 0; r < restarts; ++r)
                run_one(r);
        } else {
            ThreadPool pool(lease.count());
            for (int r = 1; r < restarts; ++r)
                pool.submit([&, r] { run_one(r); });
            run_one(0);
            pool.wait();
        }
    }

    // Best cost wins; ties go to the lowest restart index so the
    // outcome is identical for every thread count.
    int best = 0;
    for (int r = 1; r < restarts; ++r) {
        if (results[r].finalCost < results[best].finalCost)
            best = r;
    }
    uint64_t attempted = 0, accepted = 0;
    double cpu = 0;
    for (int r = 0; r < restarts; ++r) {
        attempted += results[r].movesAttempted;
        accepted += results[r].movesAccepted;
        cpu += results[r].cpuSeconds;
    }
    obs::count("pnr.place.moves.attempted",
               static_cast<int64_t>(attempted));
    obs::count("pnr.place.moves.accepted",
               static_cast<int64_t>(accepted));
    PlaceResult res = std::move(results[best]);
    res.movesAttempted = attempted;
    res.movesAccepted = accepted;
    res.cpuSeconds = cpu;
    res.restartsRun = restarts;
    res.seconds = wall.seconds();
    return res;
}

double
placementCost(const Netlist &net, const Device &dev,
              const Placement &p, double slr_penalty)
{
    double total = 0;
    for (const auto &nn : net.nets) {
        int min_c = 1 << 30, max_c = -1, min_r = 1 << 30, max_r = -1;
        auto touch = [&](int cell) {
            auto [c, r] = p.pos[cell];
            min_c = std::min(min_c, c);
            max_c = std::max(max_c, c);
            min_r = std::min(min_r, r);
            max_r = std::max(max_r, r);
        };
        if (nn.driver >= 0)
            touch(nn.driver);
        for (int s : nn.sinks)
            touch(s);
        if (max_c < 0)
            continue;
        double hpwl = (max_c - min_c) + (max_r - min_r);
        total += hpwl * widthFactor(nn.width);
        if (dev.slrOf(min_r) != dev.slrOf(max_r))
            total += slr_penalty * widthFactor(nn.width);
    }
    return total;
}

} // namespace pnr
} // namespace pld
