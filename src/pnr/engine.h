/**
 * @file
 * Place-and-route engine: the backend "Vivado" of the reproduction.
 *
 * Orchestrates placement, routing, timing, and bitstream generation
 * for one region (a page under the abstract shell, or the whole user
 * area for monolithic compiles) and reports per-stage wall time —
 * the numbers Table 2 is built from.
 */

#ifndef PLD_PNR_ENGINE_H
#define PLD_PNR_ENGINE_H

#include "common/diag.h"
#include "pnr/placer.h"
#include "pnr/router.h"
#include "pnr/timing.h"

namespace pld {
namespace pnr {

/** A generated configuration image (xclbin stand-in). */
struct Bitstream
{
    size_t bytes = 0;
    uint64_t hash = 0;
};

struct PnrOptions
{
    double effort = 1.0;
    uint64_t seed = 1;
    /**
     * Use the Vitis abstract-shell mechanism (Sec 4.1): compile sees
     * only the target region. When false the engine additionally
     * loads and checks the full device context, slowing page
     * compiles exactly the way the paper describes.
     */
    bool abstractShell = true;
    int channelCapacity = 64;
    /**
     * Parallelism for the P&R inner loops (router lanes and
     * concurrent placement restarts): 0 = take whatever the shared
     * ThreadBudget has free (safe under nested page parallelism),
     * 1 = serial, N = exactly N threads. Results are bit-identical
     * for every value (see DESIGN.md "Parallel place-and-route").
     */
    unsigned threads = 0;
    /** Independent annealing restarts; best-cost placement wins. */
    int placeRestarts = 1;
    /** Rip-up/reroute negotiation iterations (retry ladders raise
     * this to push through congestion). */
    int routeMaxIters = 8;
    /**
     * Required clock in MHz; 0 disables the check. When set, an
     * achieved Fmax below it is a structured TimingMiss error in the
     * result status (paged -O1 compiles require the 200 MHz overlay
     * clock).
     */
    double requiredFmaxMHz = 0;
    /**
     * Fault-injection hooks, set by the compile manager (never
     * directly by users): force the routing result infeasible /
     * multiply the achieved Fmax by a derate < 1. They model the
     * failure at the reporting boundary so every downstream recovery
     * path sees exactly what a congested or slow design produces.
     */
    bool injectRouteFail = false;
    double injectFmaxDerate = 1.0;
    TimingOptions timing;
};

struct PnrResult
{
    Placement place;
    RouteResult routing;
    TimingResult timing;
    Bitstream bits;
    double placeSeconds = 0;   ///< wall (restarts overlap)
    double routeSeconds = 0;   ///< wall (lanes overlap)
    double bitgenSeconds = 0;
    double contextSeconds = 0; ///< full-context load when no shell
    double totalSeconds = 0;
    /** Summed busy time across threads (single-node CPU cost). */
    double placeCpuSeconds = 0;
    double routeCpuSeconds = 0;
    /** Annealing moves attempted across all restarts (deterministic
     * work proxy for compile-time scaling tests). */
    uint64_t placeMoves = 0;
    /** Router lanes actually used. */
    unsigned threadsUsed = 1;
    /** Achieved Fmax meets PnrOptions::requiredFmaxMHz (vacuously
     * true when no clock is required). */
    bool timingMet = true;
    /** Feasible routing AND timing met. */
    bool success = false;
    /**
     * Structured outcome: route infeasibility and timing misses are
     * Error diagnostics here, not log lines — status.ok() is false
     * whenever success is, so callers cannot silently ignore a
     * failed backend run.
     */
    CompileStatus status;
};

/**
 * Run the full backend on @p net targeted at @p region.
 */
PnrResult placeAndRoute(const netlist::Netlist &net,
                        const fabric::Device &dev,
                        const fabric::Rect &region,
                        const PnrOptions &opts);

/** Deterministic bitstream image for a routed design. */
Bitstream generateBitstream(const netlist::Netlist &net,
                            const fabric::Rect &region);

} // namespace pnr
} // namespace pld

#endif // PLD_PNR_ENGINE_H
