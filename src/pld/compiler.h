/**
 * @file
 * The PLD compiler driver: the paper's primary contribution (Sec 6).
 *
 * One Graph of operators compiles four ways from the same source:
 *
 *  - O0    (Fig 5): every operator -> RV32 binary for its page's
 *          softcore overlay; compiles in (milli)seconds.
 *  - O1    (Fig 6): every operator -> HLS -> synthesis -> abstract-
 *          shell place&route into its own page -> partial bitstream;
 *          operators compile independently and in parallel; the
 *          linking network connects them with config packets.
 *          Operators whose pragma says RISCV are -O0-mapped instead
 *          (any mix is legal, Sec 6.2).
 *  - O3    (Fig 7): operators are HLS-compiled then stitched with
 *          pipelined FIFO links at the netlist level and
 *          place-and-routed monolithically on the raw fabric.
 *  - Vitis: baseline monolithic compile of the fused design with
 *          direct (unpipelined) inter-operator nets — the vendor
 *          flow the paper compares against.
 *
 * The compiler owns a content-addressed artifact cache keyed by
 * operator IR hash + target + page, so unchanged operators are never
 * recompiled — separate compilation and linkage (Sec 1).
 */

#ifndef PLD_PLD_COMPILER_H
#define PLD_PLD_COMPILER_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/diag.h"
#include "common/fault.h"
#include "fabric/device.h"
#include "obs/metrics.h"
#include "hls/compiler.h"
#include "ir/graph.h"
#include "ir/printer.h"
#include "pnr/engine.h"
#include "rv32/elf.h"
#include "rvgen/codegen.h"
#include "sys/system.h"
#include "sys/tenancy.h"

namespace pld {
namespace flow {

/** Compile flows (Table 2 columns). */
enum class OptLevel { O0, O1, O3, Vitis };

const char *optLevelName(OptLevel level);

/** Per-stage compile seconds (Table 2 row format). */
struct StageTimes
{
    double hls = 0;
    double syn = 0;
    double pnr = 0;
    double bitgen = 0;

    double total() const { return hls + syn + pnr + bitgen; }

    StageTimes &
    operator+=(const StageTimes &o)
    {
        hls += o.hls;
        syn += o.syn;
        pnr += o.pnr;
        bitgen += o.bitgen;
        return *this;
    }

    /** Component-wise max (parallel-build wall time per stage). */
    void
    maxWith(const StageTimes &o)
    {
        hls = std::max(hls, o.hls);
        syn = std::max(syn, o.syn);
        pnr = std::max(pnr, o.pnr);
        bitgen = std::max(bitgen, o.bitgen);
    }
};

/**
 * Escalation rungs of the per-page retry ladder. A failed page
 * compile climbs them in order until one succeeds; the final rung is
 * the paper's mixed mode (Sec 6.2): any operator may be -O0-mapped
 * onto its page's softcore, so a build can always complete.
 */
enum class LadderStep : uint8_t
{
    Initial,          ///< first attempt, baseline options
    EscalateEffort,   ///< more router iterations + placement effort
    FreshSeed,        ///< re-place with a derived fresh seed
    PromotePage,      ///< move to the reserved larger page
    SoftcoreFallback, ///< -O0-map the operator (mixed mode)
};

const char *ladderStepName(LadderStep s);

/** One ladder rung as actually executed (build-report line). */
struct AttemptRecord
{
    LadderStep step = LadderStep::Initial;
    int page = -1;
    uint64_t seed = 0;
    double effort = 0;
    int routeIters = 0;
    CompileCode outcome = CompileCode::Ok;
    double fmaxMHz = 0;
    int overusedTiles = 0;

    std::string render() const;
};

/**
 * Per-operator compile outcome: what AppBuild carries instead of
 * pretending every compile succeeded. `degraded` means the softcore
 * fallback rung was taken; `failed` means no artifact exists at all
 * (an exception escaped the ladder). The attempt list is the full
 * ladder as executed — deterministic, so the same seed and the same
 * injected faults reproduce it bit-for-bit.
 */
struct OperatorOutcome
{
    std::string op;
    CompileCode finalCode = CompileCode::Ok;
    bool degraded = false;
    bool failed = false;
    bool fromCache = false;
    std::vector<AttemptRecord> attempts;
    CompileStatus status;
};

/** Whole-build failure/degradation summary. */
struct BuildReport
{
    std::vector<OperatorOutcome> ops;
    /** Build-level events (monolithic p&r failures, link issues). */
    CompileStatus buildStatus;
    /**
     * Telemetry delta for this build: counters, stage gauges, and
     * timing distributions recorded between build() entry and exit.
     * Empty (enabled == false) when no tracer is installed. Not part
     * of render() — counter totals are deterministic but stage times
     * are not, and render() is compared bit-for-bit in tests.
     */
    obs::MetricsSnapshot metrics;

    /** No operator failed outright and no build-level error. */
    bool allOk() const;
    int degradedCount() const;
    int failedCount() const;
    std::string render() const;
};

/** One operator's compiled artifact. */
struct OperatorArtifact
{
    std::string name;
    uint64_t irHash = 0;
    ir::Target target = ir::Target::HW;
    int page = -1;
    StageTimes times;
    bool fromCache = false;
    /** Effort the artifact was compiled at (degraded artifacts are
     * never served to a higher-effort build). */
    double effortUsed = 0;
    /** Ladder history + structured diagnostics for this artifact. */
    OperatorOutcome outcome;

    // HW flavour.
    netlist::Netlist net;
    hls::PerfEstimate perf;
    pnr::PnrResult pnr;

    // Softcore flavour.
    rv32::PldElf elf;
    /** Codegen tier the elf was actually produced at (a capacity
     * overflow at -Os silently retries at -O0). */
    rvgen::Tier softcoreTier = rvgen::Tier::O0;
};

struct CompileOptions
{
    /** Place-and-route effort multiplier. */
    double effort = 1.0;
    /** Worker threads for parallel page compiles (0 = thread-budget
     * auto). Leased from the shared ThreadBudget so page parallelism
     * and P&R-internal parallelism compose without oversubscribing. */
    unsigned parallelJobs = 0;
    /** Threads inside each place-and-route run (0 = budget auto). */
    unsigned pnrThreads = 0;
    /** Annealing restarts per placement (best-cost wins). */
    int pnrRestarts = 1;
    uint64_t seed = 1;
    /**
     * Overlay clock paged compiles must close timing against
     * (Sec 5: the 200 MHz linking-network clock). An achieved page
     * Fmax below it triggers the timing retry ladder.
     */
    double overlayClockMHz = 200.0;
    /**
     * Fault-injection plan for exercising recovery paths. When left
     * empty, PLD_FAULT / PLD_FAULT_SEED are consulted (see
     * common/fault.h for the grammar).
     */
    FaultPlan faults;
    /**
     * Softcore codegen tier for every -O0-mapped operator: the
     * ladder's SoftcoreFallback rung, forced-O0 builds, quarantine
     * fallback images, and tenant-pack fallbacks. Defaults to the
     * optimizing `Os` tier; a compile that exceeds the -Os capacity
     * limits transparently retries at the paper-faithful `O0`
     * baseline, so mixed mode can still always complete. The
     * PLD_RVGEN_TIER environment variable ("O0"/"Os") overrides this
     * at PldCompiler construction.
     */
    rvgen::Tier softcoreTier = rvgen::Tier::Os;
};

/**
 * Artifact-cache effectiveness counters. Atomic so concurrent
 * builds through one PldCompiler keep them consistent: every lookup
 * is exactly one hit or one miss, and compiles == misses (an
 * in-flight artifact is never compiled twice; late arrivals wait and
 * count as hits).
 */
struct CacheStats
{
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    /** Artifacts actually compiled (never exceeds misses). */
    std::atomic<uint64_t> compiles{0};
    /** In-flight compiles that threw; each published a failure
     * sentinel so waiters woke instead of hanging. At quiescence
     * compiles + failures == misses. */
    std::atomic<uint64_t> failures{0};
    /** Checksum-mismatch evictions; each corrupt entry is detected
     * on lookup and recompiled exactly once. */
    std::atomic<uint64_t> corrupt{0};
};

/** Result of building one application at one opt level. */
struct AppBuild
{
    OptLevel level = OptLevel::O1;
    /** Per-stage compile time assuming each operator compiles on its
     * own node (the paper's parallel Slurm cluster): per-stage max
     * over operators, plus shared monolithic work. Per-operator
     * stages are CPU-clocked so timesharing between parallel page
     * compiles on this machine does not inflate the estimate. */
    StageTimes wallTimes;
    /** Total CPU across all operators (single-node cost). */
    StageTimes cpuTimes;

    std::vector<OperatorArtifact> ops;

    /** Monolithic results (O3/Vitis only). */
    netlist::Netlist monoNet;
    pnr::PnrResult monoPnr;

    double fmaxMHz = 0;
    size_t totalBitstreamBytes = 0;
    netlist::ResourceCount area;
    int pagesUsed = 0;
    ir::DfgFile dfg;

    /** Ready-to-run system configuration. */
    std::vector<sys::PageBinding> bindings;
    sys::SystemConfig sysCfg;

    /** Per-operator outcomes + build-level diagnostics: which
     * operators degraded or failed, and the exact ladder each one
     * climbed. */
    BuildReport report;
};

/**
 * One operator's hot-swap package: the recompiled page image plus
 * everything the runtime needs to install it live — the binding
 * (image size/hash for the CRC-framed config stream, the quarantine
 * fallback binary) and the operator function the image implements.
 * Produced by PldCompiler::buildSwapArtifact; consumed by
 * sys::SystemSim::swapPage / requestSwap. This closes the paper's
 * edit→recompile→hot-swap loop: recompile one operator, swap its
 * page, keep the rest of the app running.
 */
struct SwapArtifact
{
    std::string op;
    /** New image binding; pageId is the page the operator already
     * occupies (a hot swap never relocates a page). */
    sys::PageBinding binding;
    /** The operator function the new image implements. */
    ir::OperatorFn fn;
    /** True when fn differs from the base build's version — the
     * runtime then restarts the operator instead of resuming it. */
    bool fnChanged = false;
    /** True when the image came out of the artifact cache. */
    bool fromCache = false;
    /** Ladder history + diagnostics of the recompile. */
    OperatorOutcome outcome;
};

/** One independently compiled app requesting a share of the fabric.
 * Graph and build are caller-owned and must outlive the returned
 * TenantSpecs (the scheduler references the graph). */
struct TenantAppRef
{
    std::string name;
    const ir::Graph *graph = nullptr;
    const AppBuild *build = nullptr;
};

/**
 * Admission-ready tenant bundles plus packing diagnostics. Apps that
 * fail validation are reported in `status` (stage Tenancy) and
 * omitted from `specs`; the valid ones still pack.
 */
struct TenantPack
{
    std::vector<sys::TenantSpec> specs;
    CompileStatus status;
    /** Largest single-app footprint in pages. */
    int maxPages = 0;
    /** Sum of footprints — may exceed the grid; the TenantScheduler
     * time-shares pages across tenants. */
    int totalPages = 0;
};

/**
 * Driver object; keeps the artifact cache across builds so the
 * edit-compile-debug loop only recompiles what changed.
 */
class PldCompiler
{
  public:
    PldCompiler(const fabric::Device &dev, CompileOptions opts = {});

    /**
     * Compile @p g at @p level. For O1, operator pragmas select HW
     * pages vs softcores per operator; O0 forces every operator to
     * the softcore overlay. @p effort_override (> 0) replaces the
     * configured effort for this build; degraded cache entries from
     * lower-effort builds are recompiled rather than served.
     */
    AppBuild build(const ir::Graph &g, OptLevel level,
                   double effort_override = 0);

    /**
     * Incrementally recompile the operator named @p op of the edited
     * graph @p g for the page it occupies in @p base, and package the
     * result for a live swap. Unchanged operators come straight out
     * of the artifact cache; edited ones climb the usual retry ladder
     * — pinned to their current page (no promotion; a swap may not
     * relocate a page), degrading to the softcore image when the
     * edit no longer routes. Always carries the softcore binary of
     * the same function (compiled at the configured softcoreTier) as
     * the quarantine fallback.
     */
    SwapArtifact buildSwapArtifact(const ir::Graph &g,
                                   const std::string &op,
                                   const AppBuild &base);

    /**
     * Package independently compiled apps for the multi-tenant
     * scheduler (sys::TenantScheduler): validate each app against
     * the shared fabric (paged build, footprint within the grid, no
     * failed operators, legal unique tenant name) and guarantee
     * every page binding carries a softcore quarantine fallback,
     * compiling the fallback binaries on demand through the artifact
     * cache. Invalid apps are diagnosed and skipped, never silently
     * admitted.
     */
    TenantPack packTenantApps(const std::vector<TenantAppRef> &apps);

    const CacheStats &cacheStats() const { return cache_stats; }

    /** Drop all cached artifacts (tests). */
    void clearCache();

  private:
    /**
     * One artifact slot. `art == nullptr` while the claiming thread
     * is still compiling; later arrivals wait on the shard's
     * condition variable instead of compiling the artifact again.
     * If the claimant throws, it publishes `failed = true` (via an
     * RAII sentinel) so exactly one waiter wakes, re-claims the
     * slot, and recompiles — waiters never hang on a dead compile.
     * `generation` counts claims, giving the fault injector a
     * deterministic per-key attempt coordinate; `checksum` detects
     * corrupted artifacts on lookup.
     */
    struct CacheEntry
    {
        std::shared_ptr<OperatorArtifact> art;
        bool failed = false;
        int generation = 0;
        uint64_t checksum = 0;
    };

    /**
     * RAII guard for every *claimed* cache slot: construction arms
     * it right after a lookup() miss, and unless disarmed after a
     * successful publish(), destruction publishes the failure
     * sentinel — so an exception anywhere between claim and publish
     * wakes exactly one waiter to re-claim instead of stranding them
     * all. Every compile-and-publish path must use it: build()'s
     * per-operator compiles, buildSwapArtifact()'s recompile and
     * fallback, and packTenantApps()'s on-demand fallback compiles.
     */
    struct FailureSentinel
    {
        PldCompiler *pc;
        uint64_t key;
        bool armed;
        ~FailureSentinel()
        {
            if (armed)
                pc->publishFailure(key);
        }
    };

    /**
     * The cache is sharded by key so concurrent builds (pages in
     * parallel, multiple builds through one compiler) do not
     * serialize on one coarse mutex; a shard lock covers only the
     * map lookup/insert, never a compile.
     */
    struct CacheShard
    {
        std::mutex mtx;
        std::condition_variable cv;
        std::map<uint64_t, CacheEntry> map;
    };
    static constexpr size_t kCacheShards = 16;

    /** Deterministic page plan: initial assignment plus a reserved
     * promotion target per operator (-1 when none is free). */
    struct PagePlan
    {
        std::vector<int> page;
        std::vector<int> promo;
    };

    /**
     * The fault-tolerant page compile: run the retry ladder until an
     * attempt succeeds or the softcore fallback completes. Throws
     * CompileError only for mid-compile exceptions (including
     * injected ones); every routing/timing failure is handled by
     * climbing the ladder.
     */
    std::shared_ptr<OperatorArtifact>
    compileHwLadder(const ir::OperatorFn &fn, int page_id,
                    int promo_page, double effort, int generation);

    /** One backend attempt with explicit knobs (a ladder rung). */
    std::shared_ptr<OperatorArtifact>
    attemptHw(const ir::OperatorFn &fn, int page_id, uint64_t seed,
              double effort, int route_iters, int fault_attempt);

    std::shared_ptr<OperatorArtifact>
    compileSoftcore(const ir::OperatorFn &fn, int page_id,
                    int generation);

    /** Cache lookup: returns the artifact (waiting out an in-flight
     * compile if needed) or nullptr when this caller must compile
     * and then publish() the result. Corrupt entries and degraded
     * entries below @p effort are evicted and re-claimed; a failure
     * sentinel is re-claimed by exactly one waiter. @p generation
     * receives this claim's per-key ordinal. */
    std::shared_ptr<OperatorArtifact>
    lookup(uint64_t key, double effort, int *generation);
    void publish(uint64_t key, std::shared_ptr<OperatorArtifact> art,
                 int generation);
    /** Publish a failure sentinel: wakes waiters so one re-claims
     * the compile and the rest keep waiting. */
    void publishFailure(uint64_t key);

    /** Deterministic first-fit page assignment + promotion reserves. */
    PagePlan assignPages(const ir::Graph &g, OptLevel level) const;

    const fabric::Device &dev;
    CompileOptions opts;
    FaultInjector injector;
    std::array<CacheShard, kCacheShards> shards;
    CacheStats cache_stats;
};

} // namespace flow
} // namespace pld

#endif // PLD_PLD_COMPILER_H
