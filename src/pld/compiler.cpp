#include "pld/compiler.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "hls/resource_model.h"
#include "hls/synthesis.h"
#include "rvgen/codegen.h"

namespace pld {
namespace flow {

using fabric::Device;
using fabric::Rect;
using netlist::Netlist;
using netlist::ResourceCount;

const char *
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::O0: return "-O0";
      case OptLevel::O1: return "-O1";
      case OptLevel::O3: return "-O3";
      case OptLevel::Vitis: return "vitis";
    }
    return "?";
}

PldCompiler::PldCompiler(const Device &dev, CompileOptions opts)
    : dev(dev), opts(opts)
{
}

void
PldCompiler::clearCache()
{
    for (auto &sh : shards) {
        std::lock_guard<std::mutex> lk(sh.mtx);
        sh.map.clear();
    }
    cache_stats.hits = 0;
    cache_stats.misses = 0;
    cache_stats.compiles = 0;
}

std::shared_ptr<OperatorArtifact>
PldCompiler::lookup(uint64_t key)
{
    CacheShard &sh = shards[key % kCacheShards];
    std::unique_lock<std::mutex> lk(sh.mtx);
    auto it = sh.map.find(key);
    if (it == sh.map.end()) {
        // First miss claims the slot; the caller compiles it.
        sh.map.emplace(key, CacheEntry{});
        ++cache_stats.misses;
        return nullptr;
    }
    ++cache_stats.hits;
    // A null artifact means another thread is compiling this key
    // right now; wait for it rather than compiling twice.
    std::shared_ptr<OperatorArtifact> art;
    sh.cv.wait(lk, [&] {
        auto i = sh.map.find(key);
        if (i == sh.map.end() || i->second.art == nullptr)
            return false;
        art = i->second.art;
        return true;
    });
    return art;
}

void
PldCompiler::publish(uint64_t key,
                     std::shared_ptr<OperatorArtifact> art)
{
    CacheShard &sh = shards[key % kCacheShards];
    {
        std::lock_guard<std::mutex> lk(sh.mtx);
        sh.map[key].art = std::move(art);
    }
    ++cache_stats.compiles;
    sh.cv.notify_all();
}

namespace {

uint64_t
cacheKey(const ir::OperatorFn &fn, ir::Target target, int page_id,
         bool leaf_iface)
{
    Hasher h;
    h.u64(fn.contentHash());
    h.u64(static_cast<uint64_t>(target));
    h.i64(page_id);
    h.u64(leaf_iface ? 1 : 0);
    return h.digest();
}

} // namespace

std::shared_ptr<OperatorArtifact>
PldCompiler::compileHwPage(const ir::OperatorFn &fn, int page_id)
{
    auto art = std::make_shared<OperatorArtifact>();
    art->name = fn.name;
    art->irHash = fn.contentHash();
    art->target = ir::Target::HW;
    art->page = page_id;

    // Stage times are this thread's CPU time: the own-node compile
    // cost Table 2 models. Wall clocks here would double-charge
    // operators whenever parallel page compiles timeshare cores.
    ThreadCpuStopwatch stage;

    // hls stage.
    auto hr = hls::compileOperator(fn, /*leaf_interface=*/true);
    art->net = std::move(hr.net);
    art->perf = hr.perf;
    art->times.hls = stage.seconds();

    // syn stage.
    stage.reset();
    hls::synthesize(art->net, opts.effort);
    art->times.syn = stage.seconds();

    // p&r into the page under the abstract shell.
    pnr::PnrOptions popts;
    popts.effort = opts.effort;
    popts.seed = opts.seed;
    popts.abstractShell = true;
    popts.threads = opts.pnrThreads;
    popts.placeRestarts = opts.pnrRestarts;
    const Rect &region = dev.pages[page_id].rect;
    art->pnr = pnr::placeAndRoute(art->net, dev, region, popts);
    // CPU split from the engine, for the same reason as above; the
    // abstract-shell context load is serial and tiny.
    art->times.pnr =
        art->pnr.placeCpuSeconds + art->pnr.routeCpuSeconds +
        art->pnr.contextSeconds;
    art->times.bitgen = art->pnr.bitgenSeconds;
    return art;
}

std::shared_ptr<OperatorArtifact>
PldCompiler::compileSoftcore(const ir::OperatorFn &fn, int page_id)
{
    auto art = std::make_shared<OperatorArtifact>();
    art->name = fn.name;
    art->irHash = fn.contentHash();
    art->target = ir::Target::RISCV;
    art->page = page_id;
    ThreadCpuStopwatch stage;
    auto rv = rvgen::compileToRiscv(fn);
    art->elf = std::move(rv.elf);
    art->elf.pageNum = page_id;
    // The whole -O0 path is the "riscv g++" column of Table 2;
    // CPU-clocked like the HW stages so parallel compiles don't
    // inflate it.
    art->times.hls = stage.seconds();
    return art;
}

std::vector<int>
PldCompiler::assignPages(const ir::Graph &g, OptLevel level) const
{
    std::vector<int> assignment(g.ops.size(), -1);
    if (level == OptLevel::O3 || level == OptLevel::Vitis) {
        // Monolithic flows ignore pages entirely.
        for (size_t oi = 0; oi < g.ops.size(); ++oi)
            assignment[oi] = static_cast<int>(oi);
        return assignment;
    }
    std::vector<bool> page_taken(dev.pages.size(), false);

    // Honour explicit pragma placements first (Fig 2a: p_num).
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        int want = g.ops[oi].fn.pragma.pageNum;
        if (want >= 0) {
            pld_assert(want < static_cast<int>(dev.pages.size()),
                       "%s: pragma requests page %d of %zu",
                       g.ops[oi].fn.name.c_str(), want,
                       dev.pages.size());
            pld_assert(!page_taken[want],
                       "page %d requested by two operators", want);
            assignment[oi] = want;
            page_taken[want] = true;
        }
    }

    // First-fit the rest by estimated resources.
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        if (assignment[oi] >= 0)
            continue;
        ResourceCount need;
        if (level != OptLevel::O0 &&
            g.ops[oi].fn.pragma.target == ir::Target::HW) {
            auto hr = hls::compileOperator(g.ops[oi].fn, true);
            need = hr.net.resources();
        }
        int chosen = -1;
        for (size_t pi = 0; pi < dev.pages.size(); ++pi) {
            if (page_taken[pi])
                continue;
            if (dev.pages[pi].res.covers(need)) {
                chosen = static_cast<int>(pi);
                break;
            }
        }
        pld_assert(chosen >= 0,
                   "%s does not fit any free page — decompose it "
                   "into smaller operators (Sec 4.1)",
                   g.ops[oi].fn.name.c_str());
        assignment[oi] = chosen;
        page_taken[chosen] = true;
    }
    return assignment;
}

AppBuild
PldCompiler::build(const ir::Graph &g, OptLevel level)
{
    AppBuild out;
    out.level = level;
    out.dfg = ir::extractDfg(g);

    std::vector<int> page_of = assignPages(g, level);

    bool monolithic =
        (level == OptLevel::O3 || level == OptLevel::Vitis);

    // ---- per-operator compilation (parallel, cached) -------------
    // Each operator writes only its own out.ops slot; cache traffic
    // goes through the sharded lookup/publish protocol, so there is
    // no coarse compile-section mutex and nested parallelism (pages
    // x P&R threads) composes through the shared ThreadBudget.
    out.ops.resize(g.ops.size());
    auto compile_one = [&](size_t oi) {
        const auto &fn = g.ops[oi].fn;
        ir::Target tgt;
        if (level == OptLevel::O0)
            tgt = ir::Target::RISCV;
        else if (monolithic)
            tgt = ir::Target::HW;
        else
            tgt = fn.pragma.target;

        std::shared_ptr<OperatorArtifact> art;
        uint64_t key = 0;
        if (!monolithic) {
            key = cacheKey(fn, tgt, page_of[oi], true);
            art = lookup(key);
        }

        bool cached = (art != nullptr);
        if (!art) {
            if (monolithic) {
                // Bare kernel netlist for stitching; the
                // monolithic p&r happens below.
                art = std::make_shared<OperatorArtifact>();
                art->name = fn.name;
                art->irHash = fn.contentHash();
                art->target = ir::Target::HW;
                ThreadCpuStopwatch stage;
                auto hr = hls::compileOperator(fn, false);
                art->net = std::move(hr.net);
                art->perf = hr.perf;
                art->times.hls = stage.seconds();
            } else if (tgt == ir::Target::HW) {
                art = compileHwPage(fn, page_of[oi]);
            } else {
                art = compileSoftcore(fn, page_of[oi]);
            }
            if (!monolithic)
                publish(key, art);
        }
        out.ops[oi] = *art;
        out.ops[oi].fromCache = cached;
        out.ops[oi].page = page_of[oi];
    };
    {
        unsigned want = opts.parallelJobs ? opts.parallelJobs
                                          : ThreadBudget::total();
        BudgetLease lease(want);
        if (lease.count() == 0 || g.ops.size() <= 1) {
            for (size_t oi = 0; oi < g.ops.size(); ++oi)
                compile_one(oi);
        } else {
            ThreadPool pool(lease.count());
            for (size_t oi = 0; oi < g.ops.size(); ++oi)
                pool.submit([&compile_one, oi] { compile_one(oi); });
            pool.wait();
        }
    }

    for (const auto &art : out.ops) {
        if (!art.fromCache)
            out.cpuTimes += art.times;
        StageTimes wall = art.fromCache ? StageTimes{} : art.times;
        out.wallTimes.maxWith(wall);
    }

    // ---- monolithic stitch + p&r (O3 / Vitis) ---------------------
    if (monolithic) {
        Stopwatch syn_sw;
        Netlist mono;
        std::vector<int> cell_off(g.ops.size(), 0);
        for (size_t oi = 0; oi < g.ops.size(); ++oi) {
            cell_off[oi] = mono.merge(out.ops[oi].net,
                                      g.ops[oi].instName + "/");
        }
        // Stitch links. O3 inserts pipelined FIFO glue (Sec 6.3);
        // Vitis wires operators directly (long unpipelined nets).
        for (size_t li = 0; li < g.links.size(); ++li) {
            const auto &l = g.links[li];
            if (l.src.isExternal() || l.dst.isExternal())
                continue;
            int src_cell = cell_off[l.src.op];
            int dst_cell = cell_off[l.dst.op];
            if (level == OptLevel::O3) {
                int brams = hls::bramsFor(l.depth, 32);
                int fifo_first = -1;
                for (int b = 0; b < brams; ++b) {
                    netlist::Cell c;
                    c.site = netlist::SiteKind::Bram;
                    c.name = "link" + std::to_string(li) + "_fifo" +
                             std::to_string(b);
                    c.level = 1;
                    int idx = mono.addCell(std::move(c));
                    if (fifo_first < 0)
                        fifo_first = idx;
                }
                netlist::Cell glue;
                glue.site = netlist::SiteKind::Clb;
                glue.name = "link" + std::to_string(li) + "_ctl";
                glue.luts = 6;
                glue.ffs = 12;
                glue.level = 1;
                int ctl = mono.addCell(std::move(glue));
                int n1 = mono.addNet(
                    "link" + std::to_string(li) + "_in", 32,
                    src_cell);
                mono.addSink(n1, fifo_first);
                mono.addSink(n1, ctl);
                int n2 = mono.addNet(
                    "link" + std::to_string(li) + "_out", 32,
                    fifo_first);
                mono.addSink(n2, dst_cell);
                mono.nets[n1].pipelined = true;
                mono.nets[n2].pipelined = true;
            } else {
                int n1 = mono.addNet(
                    "xlink" + std::to_string(li), 32, src_cell);
                mono.addSink(n1, dst_cell);
            }
        }
        auto sr = hls::synthesize(mono, opts.effort);
        out.wallTimes.syn += syn_sw.seconds();
        out.cpuTimes.syn += sr.seconds;

        pnr::PnrOptions popts;
        popts.effort = opts.effort;
        popts.seed = opts.seed;
        popts.abstractShell = false; // full-context monolithic run
        popts.threads = opts.pnrThreads;
        popts.placeRestarts = opts.pnrRestarts;
        Rect user{0, 0, 120, 576};
        out.monoPnr = pnr::placeAndRoute(mono, dev, user, popts);
        out.monoNet = std::move(mono);
        // The monolithic run happens after the page pool is done, so
        // its wall time is uncontended and honest; CPU totals use the
        // engine's per-thread busy split.
        out.wallTimes.pnr += out.monoPnr.placeSeconds +
                             out.monoPnr.routeSeconds +
                             out.monoPnr.contextSeconds;
        out.cpuTimes.pnr += out.monoPnr.placeCpuSeconds +
                            out.monoPnr.routeCpuSeconds +
                            out.monoPnr.contextSeconds;
        out.wallTimes.bitgen += out.monoPnr.bitgenSeconds;
        out.cpuTimes.bitgen += out.monoPnr.bitgenSeconds;
        out.totalBitstreamBytes = out.monoPnr.bits.bytes;
        out.area = out.monoNet.resources();
        out.fmaxMHz = out.monoPnr.timing.fmaxMHz;
    } else {
        // Overlay designs: area is the sum over pages; Fmax is the
        // 200 MHz overlay clock (never above page timing).
        double fmax = 200.0;
        for (auto &art : out.ops) {
            if (art.target == ir::Target::HW) {
                out.area += art.net.resources();
                out.totalBitstreamBytes += art.pnr.bits.bytes;
                fmax = std::min(fmax, art.pnr.timing.fmaxMHz);
            } else {
                // A softcore page occupies the full page's resources
                // (the one-size-fits-all processor, Sec 7.5).
                out.area += ResourceCount{
                    2000, 1500,
                    static_cast<int64_t>(
                        (art.elf.memBytes + 16 * 1024 - 1) /
                        (16 * 1024) * 8),
                    4};
                out.totalBitstreamBytes += art.elf.footprintBytes();
            }
        }
        out.fmaxMHz = fmax;
    }
    out.pagesUsed = static_cast<int>(g.ops.size());

    // ---- runtime bindings ----------------------------------------
    out.sysCfg = sys::SystemConfig{};
    out.sysCfg.useNoc = !monolithic;
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        sys::PageBinding b;
        b.opIdx = static_cast<int>(oi);
        b.pageId = monolithic ? static_cast<int>(oi) : page_of[oi];
        if (out.ops[oi].target == ir::Target::RISCV) {
            b.impl = sys::PageImpl::Softcore;
            b.elf = out.ops[oi].elf;
        } else {
            b.impl = sys::PageImpl::Hw;
            b.cyclesPerOp = out.ops[oi].perf.cyclesPerOp();
        }
        out.bindings.push_back(std::move(b));
    }
    return out;
}

} // namespace flow
} // namespace pld
