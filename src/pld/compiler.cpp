#include "pld/compiler.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "hls/resource_model.h"
#include "hls/synthesis.h"
#include "obs/trace.h"
#include "rvgen/codegen.h"

namespace pld {
namespace flow {

using fabric::Device;
using fabric::Rect;
using netlist::Netlist;
using netlist::ResourceCount;

const char *
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::O0: return "-O0";
      case OptLevel::O1: return "-O1";
      case OptLevel::O3: return "-O3";
      case OptLevel::Vitis: return "vitis";
    }
    return "?";
}

const char *
ladderStepName(LadderStep s)
{
    switch (s) {
      case LadderStep::Initial: return "initial";
      case LadderStep::EscalateEffort: return "escalate-effort";
      case LadderStep::FreshSeed: return "fresh-seed";
      case LadderStep::PromotePage: return "promote-page";
      case LadderStep::SoftcoreFallback: return "softcore-fallback";
    }
    return "?";
}

std::string
AttemptRecord::render() const
{
    std::ostringstream os;
    os << ladderStepName(step) << ": page " << page << " seed "
       << seed << " effort " << effort;
    if (routeIters > 0)
        os << " iters " << routeIters;
    os << " -> " << compileCodeName(outcome);
    if (fmaxMHz > 0)
        os << " (fmax " << fmaxMHz << " MHz";
    if (overusedTiles > 0)
        os << (fmaxMHz > 0 ? ", " : " (") << overusedTiles
           << " overused";
    if (fmaxMHz > 0 || overusedTiles > 0)
        os << ")";
    return os.str();
}

bool
BuildReport::allOk() const
{
    return failedCount() == 0 && buildStatus.ok();
}

int
BuildReport::degradedCount() const
{
    int n = 0;
    for (const auto &o : ops)
        n += o.degraded;
    return n;
}

int
BuildReport::failedCount() const
{
    int n = 0;
    for (const auto &o : ops)
        n += o.failed;
    return n;
}

std::string
BuildReport::render() const
{
    std::ostringstream os;
    os << "build report: " << ops.size() << " operators, "
       << degradedCount() << " degraded, " << failedCount()
       << " failed\n";
    for (const auto &o : ops) {
        os << "  " << o.op << ": ";
        if (o.failed)
            os << "FAILED (" << compileCodeName(o.finalCode) << ")";
        else if (o.degraded)
            os << "DEGRADED -> softcore fallback after "
               << o.attempts.size() - 1 << " failed attempts";
        else if (o.finalCode != CompileCode::Ok)
            os << "accepted with " << compileCodeName(o.finalCode);
        else
            os << "ok";
        if (o.fromCache)
            os << " (cached)";
        os << "\n";
        if (o.attempts.size() > 1 || o.degraded || o.failed) {
            for (const auto &a : o.attempts)
                os << "    " << a.render() << "\n";
        }
    }
    if (!buildStatus.diags.empty())
        os << buildStatus.render();
    return os.str();
}

PldCompiler::PldCompiler(const Device &dev, CompileOptions opts)
    : dev(dev), opts(std::move(opts))
{
    if (this->opts.faults.empty())
        this->opts.faults = FaultPlan::fromEnv();
    injector = FaultInjector(this->opts.faults);
    if (const char *t = std::getenv("PLD_RVGEN_TIER")) {
        std::string s(t);
        if (s == "O0" || s == "o0")
            this->opts.softcoreTier = rvgen::Tier::O0;
        else if (s == "Os" || s == "os" || s == "OS")
            this->opts.softcoreTier = rvgen::Tier::Os;
    }
}

void
PldCompiler::clearCache()
{
    for (auto &sh : shards) {
        std::lock_guard<std::mutex> lk(sh.mtx);
        sh.map.clear();
    }
    cache_stats.hits = 0;
    cache_stats.misses = 0;
    cache_stats.compiles = 0;
    cache_stats.failures = 0;
    cache_stats.corrupt = 0;
}

namespace {

uint64_t
cacheKey(const ir::OperatorFn &fn, ir::Target target, int page_id,
         bool leaf_iface)
{
    Hasher h;
    h.u64(fn.contentHash());
    h.u64(static_cast<uint64_t>(target));
    h.i64(page_id);
    h.u64(leaf_iface ? 1 : 0);
    return h.digest();
}

/**
 * Content checksum over everything a cache hit hands back. Stored at
 * publish time and re-verified on every hit, so a corrupted entry is
 * detected and recompiled instead of silently poisoning a build.
 */
uint64_t
artifactChecksum(const OperatorArtifact &a)
{
    Hasher h;
    h.str(a.name);
    h.u64(a.irHash);
    h.u64(static_cast<uint64_t>(a.target));
    h.i64(a.page);
    h.u64(a.net.contentHash());
    h.u64(a.pnr.bits.hash);
    h.u64(a.pnr.bits.bytes);
    h.u64(a.elf.entry);
    h.u64(a.elf.memBytes);
    h.i64(a.elf.pageNum);
    if (!a.elf.text.empty())
        h.bytes(a.elf.text.data(), a.elf.text.size() * 4);
    if (!a.elf.data.empty())
        h.bytes(a.elf.data.data(), a.elf.data.size());
    return h.digest();
}

/** splitmix64 step: derive the fresh-seed rung's seed. */
uint64_t
deriveSeed(uint64_t seed)
{
    uint64_t z = seed + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** True when the artifact must not satisfy a higher-effort lookup:
 * it took the softcore fallback or closed with a non-Ok code. */
bool
isDegraded(const OperatorArtifact &a)
{
    return a.outcome.degraded ||
           a.outcome.finalCode != CompileCode::Ok;
}

} // namespace

std::shared_ptr<OperatorArtifact>
PldCompiler::lookup(uint64_t key, double effort, int *generation)
{
    CacheShard &sh = shards[key % kCacheShards];
    std::unique_lock<std::mutex> lk(sh.mtx);
    auto it = sh.map.find(key);
    if (it == sh.map.end()) {
        // First miss claims the slot; the caller compiles it.
        *generation = sh.map[key].generation++;
        ++cache_stats.misses;
        obs::count("cache.misses");
        return nullptr;
    }
    // A null artifact means another thread is compiling this key
    // right now; wait for it rather than compiling twice. A failure
    // sentinel wakes exactly one waiter to re-claim the compile.
    std::shared_ptr<OperatorArtifact> art;
    bool claimed = false;
    bool waited = false;
    sh.cv.wait(lk, [&] {
        auto i = sh.map.find(key);
        if (i == sh.map.end()) {
            waited = true;
            return false;
        }
        CacheEntry &e = i->second;
        if (e.failed) {
            e.failed = false;
            *generation = e.generation++;
            claimed = true;
            return true;
        }
        if (e.art == nullptr) {
            waited = true;
            return false;
        }
        art = e.art;
        return true;
    });
    if (waited) {
        // Whether a lookup actually blocked on an in-flight compile
        // is pure scheduling, hence the sched. prefix.
        obs::count("sched.cache.waits");
    }
    if (claimed) {
        ++cache_stats.misses;
        obs::count("cache.misses");
        return nullptr;
    }
    CacheEntry &e = sh.map[key];
    if (artifactChecksum(*art) != e.checksum) {
        // Corrupt entry: evict and re-claim; waiters (if any) block
        // until our recompile publishes.
        pld_warn("cache: corrupt artifact for %s (checksum "
                 "mismatch); recompiling",
                 art->name.c_str());
        e.art = nullptr;
        *generation = e.generation++;
        ++cache_stats.corrupt;
        ++cache_stats.misses;
        obs::count("cache.corrupt");
        obs::count("cache.misses");
        obs::instant("cache", "cache.corrupt_recompile")
            .arg("op", art->name);
        return nullptr;
    }
    if (isDegraded(*art) && effort > art->effortUsed + 1e-12) {
        // Never serve a degraded/fallback artifact to a build asking
        // for more effort than it was compiled with: re-claim and
        // retry the full ladder at the higher effort.
        e.art = nullptr;
        *generation = e.generation++;
        ++cache_stats.misses;
        obs::count("cache.misses");
        obs::count("cache.degraded_evictions");
        return nullptr;
    }
    ++cache_stats.hits;
    obs::count("cache.hits");
    return art;
}

void
PldCompiler::publish(uint64_t key,
                     std::shared_ptr<OperatorArtifact> art,
                     int generation)
{
    uint64_t sum = artifactChecksum(*art);
    if (injector.fires(FaultKind::CacheCorrupt, art->name,
                       generation * kFaultAttemptStride)) {
        // Injected corruption: the stored checksum no longer matches
        // the artifact, exactly as a bit-rotted entry would look.
        sum ^= 0xC0FFEEBADC0DEull;
    }
    CacheShard &sh = shards[key % kCacheShards];
    {
        std::lock_guard<std::mutex> lk(sh.mtx);
        CacheEntry &e = sh.map[key];
        e.art = std::move(art);
        e.checksum = sum;
        e.failed = false;
    }
    ++cache_stats.compiles;
    obs::count("cache.compiles");
    sh.cv.notify_all();
}

void
PldCompiler::publishFailure(uint64_t key)
{
    CacheShard &sh = shards[key % kCacheShards];
    {
        std::lock_guard<std::mutex> lk(sh.mtx);
        sh.map[key].failed = true;
    }
    ++cache_stats.failures;
    obs::count("cache.failures");
    sh.cv.notify_all();
}

std::shared_ptr<OperatorArtifact>
PldCompiler::attemptHw(const ir::OperatorFn &fn, int page_id,
                       uint64_t seed, double effort, int route_iters,
                       int fault_attempt)
{
    auto art = std::make_shared<OperatorArtifact>();
    art->name = fn.name;
    art->irHash = fn.contentHash();
    art->target = ir::Target::HW;
    art->page = page_id;
    art->effortUsed = effort;

    // Stage times are this thread's CPU time: the own-node compile
    // cost Table 2 models. Wall clocks here would double-charge
    // operators whenever parallel page compiles timeshare cores.
    ThreadCpuStopwatch stage;

    // hls stage.
    auto hr = hls::compileOperator(fn, /*leaf_interface=*/true);
    art->net = std::move(hr.net);
    art->perf = hr.perf;
    art->outcome.status.merge(hr.status);
    art->times.hls = stage.seconds();
    obs::record("pld.stage.hls.seconds", art->times.hls);

    // syn stage.
    stage.reset();
    hls::synthesize(art->net, effort);
    art->times.syn = stage.seconds();
    obs::record("pld.stage.syn.seconds", art->times.syn);

    // p&r into the page under the abstract shell.
    pnr::PnrOptions popts;
    popts.effort = effort;
    popts.seed = seed;
    popts.abstractShell = true;
    popts.threads = opts.pnrThreads;
    popts.placeRestarts = opts.pnrRestarts;
    popts.routeMaxIters = route_iters;
    popts.requiredFmaxMHz = opts.overlayClockMHz;
    popts.injectRouteFail =
        injector.fires(FaultKind::RouteFail, fn.name, fault_attempt);
    popts.injectFmaxDerate =
        injector.fires(FaultKind::TimingMiss, fn.name, fault_attempt)
            ? 0.4
            : 1.0;
    const Rect &region = dev.pages[page_id].rect;
    art->pnr = pnr::placeAndRoute(art->net, dev, region, popts);
    // CPU split from the engine, for the same reason as above; the
    // abstract-shell context load is serial and tiny.
    art->times.pnr =
        art->pnr.placeCpuSeconds + art->pnr.routeCpuSeconds +
        art->pnr.contextSeconds;
    art->times.bitgen = art->pnr.bitgenSeconds;
    obs::record("pld.stage.pnr.seconds", art->times.pnr);
    obs::record("pld.stage.bitgen.seconds", art->times.bitgen);
    return art;
}

std::shared_ptr<OperatorArtifact>
PldCompiler::compileHwLadder(const ir::OperatorFn &fn, int page_id,
                             int promo_page, double effort,
                             int generation)
{
    const int base = generation * kFaultAttemptStride;
    if (injector.fires(FaultKind::CompileThrow, fn.name, base)) {
        Diagnostic d;
        d.code = CompileCode::CompileException;
        d.stage = CompileStage::Hls;
        d.severity = DiagSeverity::Error;
        d.op = fn.name;
        d.page = page_id;
        d.retriable = true;
        d.detail = "injected mid-compile exception";
        throw CompileError(std::move(d));
    }

    OperatorOutcome outcome;
    outcome.op = fn.name;

    LadderStep step = LadderStep::Initial;
    int page = page_id;
    uint64_t seed = opts.seed;
    double eff = effort;
    int iters = pnr::PnrOptions{}.routeMaxIters;
    StageTimes spent; // CPU burned on failed attempts

    for (int attempt = 0;; ++attempt) {
        obs::count(std::string("ladder.attempts.") +
                   ladderStepName(step));
        if (step == LadderStep::SoftcoreFallback) {
            obs::count("ladder.degraded");
            obs::count("ladder.healed_at.softcore-fallback");
            // The paper's mixed mode (Sec 6.2): softcore-map this
            // one operator onto its page's overlay core; the rest of
            // the app stays on hardware pages.
            auto art = compileSoftcore(fn, page_id, generation);
            art->effortUsed = effort;
            AttemptRecord rec;
            rec.step = step;
            rec.page = page_id;
            rec.seed = seed;
            rec.effort = eff;
            rec.outcome = CompileCode::Ok;
            outcome.attempts.push_back(rec);
            outcome.degraded = true;
            outcome.finalCode = CompileCode::Ok;
            Diagnostic d;
            d.code = outcome.status.firstError();
            d.stage = CompileStage::Route;
            d.severity = DiagSeverity::Warning;
            d.op = fn.name;
            d.page = page_id;
            d.detail = detail::format(
                "degraded to softcore (-%s mixed mode) after %zu "
                "failed hardware attempts",
                rvgen::tierName(art->softcoreTier),
                outcome.attempts.size() - 1);
            pld_warn("%s: %s", fn.name.c_str(), d.detail.c_str());
            outcome.status.add(std::move(d));
            art->outcome = std::move(outcome);
            art->times += spent;
            return art;
        }

        obs::Span att("pld", "pld.attempt");
        att.arg("step", ladderStepName(step));
        att.arg("page", static_cast<int64_t>(page));
        auto art = attemptHw(fn, page, seed, eff, iters,
                             base + attempt);
        att.arg("outcome",
                compileCodeName(art->pnr.status.firstError()));
        // HLS warnings are identical across attempts; keep one copy.
        if (attempt == 0)
            outcome.status.merge(art->outcome.status);
        AttemptRecord rec;
        rec.step = step;
        rec.page = page;
        rec.seed = seed;
        rec.effort = eff;
        rec.routeIters = iters;
        rec.outcome = art->pnr.status.firstError();
        rec.fmaxMHz = art->pnr.timing.fmaxMHz;
        rec.overusedTiles = art->pnr.routing.overusedTiles;
        outcome.attempts.push_back(rec);
        outcome.status.merge(art->pnr.status);

        if (art->pnr.success) {
            obs::count(std::string("ladder.healed_at.") +
                       ladderStepName(step));
            outcome.finalCode = CompileCode::Ok;
            art->outcome = std::move(outcome);
            art->times += spent;
            return art;
        }
        spent += art->times;

        CompileCode failure = art->pnr.status.firstError();
        if (failure == CompileCode::TimingMiss &&
            art->pnr.routing.feasible) {
            // Timing ladder: escalate effort, then a fresh seed,
            // then accept the slow page with a warning — the overlay
            // clock simply derates to the achieved Fmax. A softcore
            // would be slower still, so it is never the answer to a
            // timing miss.
            switch (step) {
              case LadderStep::Initial:
                step = LadderStep::EscalateEffort;
                eff *= 2;
                break;
              case LadderStep::EscalateEffort:
                step = LadderStep::FreshSeed;
                seed = deriveSeed(seed);
                break;
              default: {
                obs::count("ladder.timing_accepted");
                outcome.finalCode = CompileCode::TimingMiss;
                Diagnostic d;
                d.code = CompileCode::TimingMiss;
                d.stage = CompileStage::Timing;
                d.severity = DiagSeverity::Warning;
                d.op = fn.name;
                d.page = page;
                d.detail = detail::format(
                    "accepted at %.1f MHz below the %.1f MHz "
                    "overlay clock after %zu attempts; overlay "
                    "clock derated",
                    art->pnr.timing.fmaxMHz, opts.overlayClockMHz,
                    outcome.attempts.size());
                pld_warn("%s: %s", fn.name.c_str(),
                         d.detail.c_str());
                outcome.status.add(std::move(d));
                art->outcome = std::move(outcome);
                art->times += spent;
                return art;
              }
            }
        } else {
            // Routing (or combined) ladder: more negotiation
            // iterations and effort, a fresh placement seed, the
            // reserved larger page, and finally the softcore.
            switch (step) {
              case LadderStep::Initial:
                step = LadderStep::EscalateEffort;
                eff *= 2;
                iters *= 4;
                break;
              case LadderStep::EscalateEffort:
                step = LadderStep::FreshSeed;
                seed = deriveSeed(seed);
                break;
              case LadderStep::FreshSeed:
                if (promo_page >= 0) {
                    step = LadderStep::PromotePage;
                    page = promo_page;
                } else {
                    step = LadderStep::SoftcoreFallback;
                }
                break;
              default:
                step = LadderStep::SoftcoreFallback;
                break;
            }
        }
    }
}

std::shared_ptr<OperatorArtifact>
PldCompiler::compileSoftcore(const ir::OperatorFn &fn, int page_id,
                             int generation)
{
    if (injector.fires(FaultKind::CompileThrow, fn.name,
                       generation * kFaultAttemptStride)) {
        Diagnostic d;
        d.code = CompileCode::CompileException;
        d.stage = CompileStage::Hls;
        d.severity = DiagSeverity::Error;
        d.op = fn.name;
        d.page = page_id;
        d.retriable = true;
        d.detail = "injected mid-compile exception";
        throw CompileError(std::move(d));
    }
    auto art = std::make_shared<OperatorArtifact>();
    art->name = fn.name;
    art->irHash = fn.contentHash();
    art->target = ir::Target::RISCV;
    art->page = page_id;
    art->effortUsed = opts.effort;
    art->outcome.op = fn.name;
    art->outcome.attempts.push_back(
        AttemptRecord{LadderStep::Initial, page_id, opts.seed, 0, 0,
                      CompileCode::Ok, 0, 0});
    ThreadCpuStopwatch stage;
    obs::Span span("pld", "rvgen.compile");
    span.arg("op", fn.name);
    obs::count("rvgen.compiles");
    rvgen::RvOptions ro;
    ro.tier = opts.softcoreTier;
    rvgen::RvResult rv;
    if (ro.tier == rvgen::Tier::Os) {
        try {
            rv = rvgen::compileToRiscv(fn, ro);
        } catch (const std::runtime_error &) {
            // -Os capacity limit (text or memory budget): retry at
            // the paper-faithful baseline so mixed mode still always
            // completes.
            obs::count("rvgen.tier.fallback");
            ro.tier = rvgen::Tier::O0;
            rv = rvgen::compileToRiscv(fn, ro);
        }
    } else {
        rv = rvgen::compileToRiscv(fn, ro);
    }
    obs::count(std::string("rvgen.tier.") + rvgen::tierName(rv.tier));
    obs::record("rvgen.instructions", double(rv.instructions));
    if (rv.tier == rvgen::Tier::Os)
        obs::record("rvgen.spills", double(rv.spills));
    span.arg("tier", rvgen::tierName(rv.tier));
    art->softcoreTier = rv.tier;
    art->elf = std::move(rv.elf);
    art->elf.pageNum = page_id;
    // The whole -O0 path is the "riscv g++" column of Table 2;
    // CPU-clocked like the HW stages so parallel compiles don't
    // inflate it.
    art->times.hls = stage.seconds();
    return art;
}

PldCompiler::PagePlan
PldCompiler::assignPages(const ir::Graph &g, OptLevel level) const
{
    PagePlan plan;
    plan.page.assign(g.ops.size(), -1);
    plan.promo.assign(g.ops.size(), -1);
    if (level == OptLevel::O3 || level == OptLevel::Vitis) {
        // Monolithic flows ignore pages entirely.
        for (size_t oi = 0; oi < g.ops.size(); ++oi)
            plan.page[oi] = static_cast<int>(oi);
        return plan;
    }
    std::vector<int> &assignment = plan.page;
    std::vector<bool> page_taken(dev.pages.size(), false);

    // Lazily estimated per-operator resources, shared between the
    // first-fit pass and promotion reservation below.
    std::vector<ResourceCount> need(g.ops.size());
    std::vector<bool> have_need(g.ops.size(), false);
    auto needOf = [&](size_t oi) -> const ResourceCount & {
        if (!have_need[oi]) {
            auto hr = hls::compileOperator(g.ops[oi].fn, true);
            need[oi] = hr.net.resources();
            have_need[oi] = true;
        }
        return need[oi];
    };

    // Honour explicit pragma placements first (Fig 2a: p_num).
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        int want = g.ops[oi].fn.pragma.pageNum;
        if (want >= 0) {
            pld_assert(want < static_cast<int>(dev.pages.size()),
                       "%s: pragma requests page %d of %zu",
                       g.ops[oi].fn.name.c_str(), want,
                       dev.pages.size());
            pld_assert(!page_taken[want],
                       "page %d requested by two operators", want);
            assignment[oi] = want;
            page_taken[want] = true;
        }
    }

    // First-fit the rest by estimated resources.
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        if (assignment[oi] >= 0)
            continue;
        ResourceCount est;
        if (level != OptLevel::O0 &&
            g.ops[oi].fn.pragma.target == ir::Target::HW) {
            est = needOf(oi);
        }
        int chosen = -1;
        for (size_t pi = 0; pi < dev.pages.size(); ++pi) {
            if (page_taken[pi])
                continue;
            if (dev.pages[pi].res.covers(est)) {
                chosen = static_cast<int>(pi);
                break;
            }
        }
        pld_assert(chosen >= 0,
                   "%s does not fit any free page — decompose it "
                   "into smaller operators (Sec 4.1)",
                   g.ops[oi].fn.name.c_str());
        assignment[oi] = chosen;
        page_taken[chosen] = true;
    }

    // Reserve a promotion target per HW operator: the first free
    // page with strictly more LUTs than the assigned page that still
    // covers the operator's estimated resources. Reservations happen
    // here, in operator index order, before any compile starts — so
    // the PromotePage rung is a pure function of the graph and
    // device, never of which operator happens to fail first under
    // parallel compilation. Unused reservations cost nothing.
    if (level == OptLevel::O1) {
        for (size_t oi = 0; oi < g.ops.size(); ++oi) {
            if (g.ops[oi].fn.pragma.target != ir::Target::HW)
                continue;
            const ResourceCount &cur =
                dev.pages[assignment[oi]].res;
            for (size_t pi = 0; pi < dev.pages.size(); ++pi) {
                if (page_taken[pi])
                    continue;
                const ResourceCount &cand = dev.pages[pi].res;
                if (cand.luts > cur.luts &&
                    cand.covers(needOf(oi))) {
                    plan.promo[oi] = static_cast<int>(pi);
                    page_taken[pi] = true;
                    break;
                }
            }
        }
    }
    return plan;
}

AppBuild
PldCompiler::build(const ir::Graph &g, OptLevel level,
                   double effort_override)
{
    AppBuild out;
    out.level = level;
    out.dfg = ir::extractDfg(g);
    const double eff =
        effort_override > 0 ? effort_override : opts.effort;

    auto window = obs::beginWindow();
    obs::Span build_span("pld", "pld.build");
    build_span.arg("level", optLevelName(level));
    build_span.arg("ops", static_cast<int64_t>(g.ops.size()));
    obs::count("pld.builds");

    PagePlan plan = assignPages(g, level);
    const std::vector<int> &page_of = plan.page;

    bool monolithic =
        (level == OptLevel::O3 || level == OptLevel::Vitis);

    // ---- per-operator compilation (parallel, cached) -------------
    // Each operator writes only its own out.ops slot; cache traffic
    // goes through the sharded lookup/publish protocol, so there is
    // no coarse compile-section mutex and nested parallelism (pages
    // x P&R threads) composes through the shared ThreadBudget.
    //
    // A compile that throws must never strand cache waiters: the
    // FailureSentinel guard publishes a failure marker on the way
    // out of scope unless the compile completed, and the catch
    // blocks turn the exception into a failed OperatorOutcome
    // instead of letting it escape into the thread pool.
    out.ops.resize(g.ops.size());
    // Per-op spans parent to the build span by token: pool workers'
    // own span stacks are empty (or stale), and lease grants vary
    // with load, so auto-parenting would be scheduling-dependent.
    uint64_t build_tok = obs::currentSpan();
    auto compile_one = [&](size_t oi) {
        const auto &fn = g.ops[oi].fn;
        obs::Span op_span("pld", "pld.op", build_tok);
        op_span.arg("op", fn.name);
        op_span.arg("page", static_cast<int64_t>(page_of[oi]));
        ir::Target tgt;
        if (level == OptLevel::O0)
            tgt = ir::Target::RISCV;
        else if (monolithic)
            tgt = ir::Target::HW;
        else
            tgt = fn.pragma.target;

        try {
            std::shared_ptr<OperatorArtifact> art;
            uint64_t key = 0;
            int gen = 0;
            if (!monolithic) {
                key = cacheKey(fn, tgt, page_of[oi], true);
                art = lookup(key, eff, &gen);
            }

            bool cached = (art != nullptr);
            if (!art) {
                if (monolithic) {
                    // Bare kernel netlist for stitching; the
                    // monolithic p&r happens below.
                    art = std::make_shared<OperatorArtifact>();
                    art->name = fn.name;
                    art->irHash = fn.contentHash();
                    art->target = ir::Target::HW;
                    ThreadCpuStopwatch stage;
                    auto hr = hls::compileOperator(fn, false);
                    art->net = std::move(hr.net);
                    art->perf = hr.perf;
                    art->outcome.status.merge(hr.status);
                    art->times.hls = stage.seconds();
                } else {
                    FailureSentinel guard{this, key, true};
                    if (tgt == ir::Target::HW) {
                        art = compileHwLadder(fn, page_of[oi],
                                              plan.promo[oi], eff,
                                              gen);
                    } else {
                        art = compileSoftcore(fn, page_of[oi], gen);
                    }
                    guard.armed = false;
                    publish(key, art, gen);
                }
            }
            out.ops[oi] = *art;
            out.ops[oi].fromCache = cached;
            if (cached) {
                // Which thread wins the compile-vs-wait race for a
                // shared key is scheduling, so the per-op hit marker
                // is non-structural; the counter totals above are
                // still deterministic.
                obs::instant("sched", "cache.hit",
                             /*structural=*/false)
                    .arg("op", fn.name);
            }
            if (monolithic)
                out.ops[oi].page = page_of[oi];
        } catch (const CompileError &ce) {
            OperatorOutcome bad;
            bad.op = fn.name;
            bad.failed = true;
            bad.finalCode = ce.diag().code;
            bad.status.add(ce.diag());
            out.ops[oi] = OperatorArtifact{};
            out.ops[oi].name = fn.name;
            out.ops[oi].page = page_of[oi];
            out.ops[oi].outcome = std::move(bad);
        } catch (const std::exception &e) {
            Diagnostic d;
            d.code = CompileCode::CompileException;
            d.stage = CompileStage::Hls;
            d.severity = DiagSeverity::Error;
            d.op = fn.name;
            d.page = page_of[oi];
            d.retriable = true;
            d.detail = e.what();
            OperatorOutcome bad;
            bad.op = fn.name;
            bad.failed = true;
            bad.finalCode = CompileCode::CompileException;
            bad.status.add(std::move(d));
            out.ops[oi] = OperatorArtifact{};
            out.ops[oi].name = fn.name;
            out.ops[oi].page = page_of[oi];
            out.ops[oi].outcome = std::move(bad);
        }
    };
    {
        unsigned want = opts.parallelJobs ? opts.parallelJobs
                                          : ThreadBudget::total();
        BudgetLease lease(want);
        if (lease.count() == 0 || g.ops.size() <= 1) {
            for (size_t oi = 0; oi < g.ops.size(); ++oi)
                compile_one(oi);
        } else {
            ThreadPool pool(lease.count());
            for (size_t oi = 0; oi < g.ops.size(); ++oi)
                pool.submit([&compile_one, oi] { compile_one(oi); });
            pool.wait();
        }
    }

    for (const auto &art : out.ops) {
        if (!art.fromCache && !art.outcome.failed)
            obs::record("pld.page.seconds", art.times.total());
        if (!art.fromCache)
            out.cpuTimes += art.times;
        StageTimes wall = art.fromCache ? StageTimes{} : art.times;
        out.wallTimes.maxWith(wall);
        OperatorOutcome oc = art.outcome;
        if (oc.op.empty())
            oc.op = art.name;
        oc.fromCache = art.fromCache;
        out.report.ops.push_back(std::move(oc));
    }

    // ---- monolithic stitch + p&r (O3 / Vitis) ---------------------
    if (monolithic) {
        obs::Span stitch_span("pld", "pld.stitch");
        Stopwatch syn_sw;
        Netlist mono;
        std::vector<int> cell_off(g.ops.size(), 0);
        for (size_t oi = 0; oi < g.ops.size(); ++oi) {
            cell_off[oi] = mono.merge(out.ops[oi].net,
                                      g.ops[oi].instName + "/");
        }
        // Stitch links. O3 inserts pipelined FIFO glue (Sec 6.3);
        // Vitis wires operators directly (long unpipelined nets).
        for (size_t li = 0; li < g.links.size(); ++li) {
            const auto &l = g.links[li];
            if (l.src.isExternal() || l.dst.isExternal())
                continue;
            int src_cell = cell_off[l.src.op];
            int dst_cell = cell_off[l.dst.op];
            if (level == OptLevel::O3) {
                int brams = hls::bramsFor(l.depth, 32);
                int fifo_first = -1;
                for (int b = 0; b < brams; ++b) {
                    netlist::Cell c;
                    c.site = netlist::SiteKind::Bram;
                    c.name = "link" + std::to_string(li) + "_fifo" +
                             std::to_string(b);
                    c.level = 1;
                    int idx = mono.addCell(std::move(c));
                    if (fifo_first < 0)
                        fifo_first = idx;
                }
                netlist::Cell glue;
                glue.site = netlist::SiteKind::Clb;
                glue.name = "link" + std::to_string(li) + "_ctl";
                glue.luts = 6;
                glue.ffs = 12;
                glue.level = 1;
                int ctl = mono.addCell(std::move(glue));
                int n1 = mono.addNet(
                    "link" + std::to_string(li) + "_in", 32,
                    src_cell);
                mono.addSink(n1, fifo_first);
                mono.addSink(n1, ctl);
                int n2 = mono.addNet(
                    "link" + std::to_string(li) + "_out", 32,
                    fifo_first);
                mono.addSink(n2, dst_cell);
                mono.nets[n1].pipelined = true;
                mono.nets[n2].pipelined = true;
            } else {
                int n1 = mono.addNet(
                    "xlink" + std::to_string(li), 32, src_cell);
                mono.addSink(n1, dst_cell);
            }
        }
        auto sr = hls::synthesize(mono, eff);
        stitch_span.arg("cells",
                        static_cast<int64_t>(mono.cells.size()));
        out.wallTimes.syn += syn_sw.seconds();
        out.cpuTimes.syn += sr.seconds;

        pnr::PnrOptions popts;
        popts.effort = eff;
        popts.seed = opts.seed;
        popts.abstractShell = false; // full-context monolithic run
        popts.threads = opts.pnrThreads;
        popts.placeRestarts = opts.pnrRestarts;
        Rect user{0, 0, 120, 576};
        out.monoPnr = pnr::placeAndRoute(mono, dev, user, popts);
        // Monolithic failures have no page ladder to climb; surface
        // them as build-level diagnostics nobody can miss.
        out.report.buildStatus.merge(out.monoPnr.status);
        out.monoNet = std::move(mono);
        // The monolithic run happens after the page pool is done, so
        // its wall time is uncontended and honest; CPU totals use the
        // engine's per-thread busy split.
        out.wallTimes.pnr += out.monoPnr.placeSeconds +
                             out.monoPnr.routeSeconds +
                             out.monoPnr.contextSeconds;
        out.cpuTimes.pnr += out.monoPnr.placeCpuSeconds +
                            out.monoPnr.routeCpuSeconds +
                            out.monoPnr.contextSeconds;
        out.wallTimes.bitgen += out.monoPnr.bitgenSeconds;
        out.cpuTimes.bitgen += out.monoPnr.bitgenSeconds;
        out.totalBitstreamBytes = out.monoPnr.bits.bytes;
        out.area = out.monoNet.resources();
        out.fmaxMHz = out.monoPnr.timing.fmaxMHz;
    } else {
        // Overlay designs: area is the sum over pages; Fmax is the
        // 200 MHz overlay clock (never above page timing).
        double fmax = opts.overlayClockMHz;
        for (auto &art : out.ops) {
            if (art.outcome.failed)
                continue;
            if (art.target == ir::Target::HW) {
                out.area += art.net.resources();
                out.totalBitstreamBytes += art.pnr.bits.bytes;
                fmax = std::min(fmax, art.pnr.timing.fmaxMHz);
            } else {
                // A softcore page occupies the full page's resources
                // (the one-size-fits-all processor, Sec 7.5).
                out.area += ResourceCount{
                    2000, 1500,
                    static_cast<int64_t>(
                        (art.elf.memBytes + 16 * 1024 - 1) /
                        (16 * 1024) * 8),
                    4};
                out.totalBitstreamBytes += art.elf.footprintBytes();
            }
        }
        out.fmaxMHz = fmax;
    }
    out.pagesUsed = static_cast<int>(g.ops.size());

    // ---- runtime bindings ----------------------------------------
    out.sysCfg = sys::SystemConfig{};
    out.sysCfg.useNoc = !monolithic;
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        sys::PageBinding b;
        b.opIdx = static_cast<int>(oi);
        // Non-monolithic bindings follow the artifact's actual page:
        // a promoted operator runs on its promotion target, not the
        // page the first-fit plan chose.
        b.pageId = monolithic ? static_cast<int>(oi)
                              : out.ops[oi].page;
        if (out.ops[oi].target == ir::Target::RISCV) {
            b.impl = sys::PageImpl::Softcore;
            b.elf = out.ops[oi].elf;
        } else {
            b.impl = sys::PageImpl::Hw;
            b.cyclesPerOp = out.ops[oi].perf.cyclesPerOp();
        }
        if (!monolithic) {
            // Partial-image metadata for the hot-swap runtime: how
            // many CRC-framed config packets a reconfiguration of
            // this page streams, and the content hash seeding them.
            b.imageBytes = b.impl == sys::PageImpl::Softcore
                               ? out.ops[oi].elf.footprintBytes()
                               : out.ops[oi].pnr.bits.bytes;
            b.imageHash = artifactChecksum(out.ops[oi]);
        }
        out.bindings.push_back(std::move(b));
    }

    // Stage-time gauges for the benches, then the per-build snapshot
    // AppBuild::report carries. Gauges describe the *latest* build;
    // the snapshot is this build's delta.
    obs::gauge("pld.wall.hls", out.wallTimes.hls);
    obs::gauge("pld.wall.syn", out.wallTimes.syn);
    obs::gauge("pld.wall.pnr", out.wallTimes.pnr);
    obs::gauge("pld.wall.bitgen", out.wallTimes.bitgen);
    obs::gauge("pld.cpu.hls", out.cpuTimes.hls);
    obs::gauge("pld.cpu.syn", out.cpuTimes.syn);
    obs::gauge("pld.cpu.pnr", out.cpuTimes.pnr);
    obs::gauge("pld.cpu.bitgen", out.cpuTimes.bitgen);
    out.report.metrics = obs::endWindow(window);
    return out;
}

SwapArtifact
PldCompiler::buildSwapArtifact(const ir::Graph &g,
                               const std::string &op,
                               const AppBuild &base)
{
    obs::Span span("pld", "pld.swap_artifact");
    span.arg("op", op);
    obs::count("pld.swap_artifacts");

    int oi = -1;
    for (size_t i = 0; i < g.ops.size(); ++i) {
        if (g.ops[i].fn.name == op) {
            oi = static_cast<int>(i);
            break;
        }
    }
    pld_assert(oi >= 0, "buildSwapArtifact: no operator named %s",
               op.c_str());
    pld_assert(base.bindings.size() == g.ops.size(),
               "buildSwapArtifact: base build has %zu operators, the "
               "edited graph %zu — hot swap needs a matching shape",
               base.bindings.size(), g.ops.size());
    pld_assert(base.sysCfg.useNoc,
               "buildSwapArtifact: monolithic builds have no pages "
               "to swap");
    const auto &fn = g.ops[static_cast<size_t>(oi)].fn;
    const sys::PageBinding &cur =
        base.bindings[static_cast<size_t>(oi)];

    SwapArtifact sa;
    sa.op = op;
    sa.fn = fn;
    sa.fnChanged =
        base.ops[static_cast<size_t>(oi)].irHash != fn.contentHash();

    ir::Target tgt = base.level == OptLevel::O0 ? ir::Target::RISCV
                                                : fn.pragma.target;
    // The page the operator currently occupies in the running system
    // (which may be its promotion target, not the planned page).
    int page_id = cur.pageId;

    // Recompile — or cache-hit, for an unchanged operator — pinned
    // to the current page: promo = -1, because a hot swap must not
    // relocate the page out from under the running system.
    uint64_t key = cacheKey(fn, tgt, page_id, true);
    int gen = 0;
    auto art = lookup(key, opts.effort, &gen);
    sa.fromCache = art != nullptr;
    if (!art) {
        FailureSentinel guard{this, key, true};
        if (tgt == ir::Target::HW)
            art = compileHwLadder(fn, page_id, /*promo_page=*/-1,
                                  opts.effort, gen);
        else
            art = compileSoftcore(fn, page_id, gen);
        guard.armed = false;
        publish(key, art, gen);
    }
    sa.outcome = art->outcome;

    sys::PageBinding nb;
    nb.opIdx = oi;
    nb.pageId = page_id;
    if (art->target == ir::Target::RISCV) {
        nb.impl = sys::PageImpl::Softcore;
        nb.elf = art->elf;
        nb.imageBytes = art->elf.footprintBytes();
    } else {
        nb.impl = sys::PageImpl::Hw;
        nb.cyclesPerOp = art->perf.cyclesPerOp();
        nb.imageBytes = art->pnr.bits.bytes;
    }
    nb.imageHash = artifactChecksum(*art);

    // Quarantine fallback: the -O0 softcore image of the same
    // function, cached like any other artifact.
    std::shared_ptr<OperatorArtifact> fb;
    if (art->target == ir::Target::RISCV) {
        fb = art;
    } else {
        uint64_t fkey = cacheKey(fn, ir::Target::RISCV, page_id, true);
        int fgen = 0;
        fb = lookup(fkey, opts.effort, &fgen);
        if (!fb) {
            FailureSentinel guard{this, fkey, true};
            fb = compileSoftcore(fn, page_id, fgen);
            guard.armed = false;
            publish(fkey, fb, fgen);
        }
    }
    nb.hasFallback = true;
    nb.fallbackElf = fb->elf;
    sa.binding = std::move(nb);
    return sa;
}

TenantPack
PldCompiler::packTenantApps(const std::vector<TenantAppRef> &apps)
{
    obs::Span span("pld", "pld.pack_tenants");
    span.arg("apps", static_cast<int64_t>(apps.size()));
    TenantPack pack;
    const int grid = static_cast<int>(dev.pages.size());

    for (const auto &app : apps) {
        const auto reject = [&](std::string why) {
            Diagnostic d;
            d.code = CompileCode::AdmissionRejected;
            d.stage = CompileStage::Tenancy;
            d.severity = DiagSeverity::Error;
            d.op = app.name;
            d.detail = std::move(why);
            obs::count("pld.pack.rejected");
            pack.status.diags.push_back(std::move(d));
        };

        if (app.name.empty()) {
            reject("tenant name is empty");
            continue;
        }
        if (app.name.find('/') != std::string::npos ||
            app.name.find('*') != std::string::npos) {
            reject("tenant name '" + app.name +
                   "' may not contain '/' or '*' (it scopes fault "
                   "sites)");
            continue;
        }
        bool dup = false;
        for (const auto &s : pack.specs)
            dup |= s.name == app.name;
        if (dup) {
            reject("duplicate tenant name '" + app.name + "'");
            continue;
        }
        if (!app.graph || !app.build) {
            reject("tenant '" + app.name +
                   "' is missing its graph or build");
            continue;
        }
        if (!app.build->sysCfg.useNoc) {
            reject("tenant '" + app.name +
                   "' is a monolithic build (-O3/Vitis): no pages "
                   "to time-share; compile at -O0/-O1");
            continue;
        }
        if (app.build->bindings.empty()) {
            reject("tenant '" + app.name + "' has no page bindings");
            continue;
        }
        if (app.build->bindings.size() > static_cast<size_t>(grid)) {
            reject("tenant '" + app.name + "' needs " +
                   std::to_string(app.build->bindings.size()) +
                   " pages but the fabric has " +
                   std::to_string(grid));
            continue;
        }
        if (app.build->report.failedCount() > 0) {
            reject("tenant '" + app.name + "' has " +
                   std::to_string(app.build->report.failedCount()) +
                   " failed operator compile(s)");
            continue;
        }

        sys::TenantSpec spec;
        spec.name = app.name;
        spec.graph = app.graph;
        spec.bindings = app.build->bindings;
        spec.sysCfg = app.build->sysCfg;

        // Guarantee a quarantine fallback on every binding: the
        // fault-contained scheduler depends on a hostile page being
        // pinnable to a softcore image of the same function. The
        // on-demand compile claims a cache slot like any other, so
        // it carries the same FailureSentinel — concurrent builds
        // waiting on the key must wake even if this compile throws
        // (it rejects the tenant instead of propagating).
        bool fallbacks_ok = true;
        for (auto &b : spec.bindings) {
            if (b.hasFallback)
                continue;
            if (b.impl == sys::PageImpl::Softcore) {
                // The page image already IS the -O0 binary.
                b.hasFallback = true;
                b.fallbackElf = b.elf;
                continue;
            }
            const ir::OperatorFn &fn =
                app.graph->ops[static_cast<size_t>(b.opIdx)].fn;
            uint64_t fkey =
                cacheKey(fn, ir::Target::RISCV, b.pageId, true);
            int fgen = 0;
            auto fb = lookup(fkey, opts.effort, &fgen);
            if (!fb) {
                FailureSentinel guard{this, fkey, true};
                try {
                    fb = compileSoftcore(fn, b.pageId, fgen);
                } catch (const CompileError &ce) {
                    // guard publishes the failure marker on unwind.
                    reject("tenant '" + app.name +
                           "' fallback compile failed for operator "
                           "'" +
                           fn.name + "': " + ce.diag().render());
                    fallbacks_ok = false;
                    break;
                }
                guard.armed = false;
                publish(fkey, fb, fgen);
            }
            b.hasFallback = true;
            b.fallbackElf = fb->elf;
        }
        if (!fallbacks_ok)
            continue;

        int npages = static_cast<int>(spec.bindings.size());
        pack.maxPages = std::max(pack.maxPages, npages);
        pack.totalPages += npages;
        pack.specs.push_back(std::move(spec));
        obs::count("pld.pack.tenants");
    }
    span.arg("packed", static_cast<int64_t>(pack.specs.size()));
    return pack;
}

} // namespace flow
} // namespace pld
