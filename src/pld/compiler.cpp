#include "pld/compiler.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "hls/resource_model.h"
#include "hls/synthesis.h"
#include "rvgen/codegen.h"

namespace pld {
namespace flow {

using fabric::Device;
using fabric::Rect;
using netlist::Netlist;
using netlist::ResourceCount;

const char *
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::O0: return "-O0";
      case OptLevel::O1: return "-O1";
      case OptLevel::O3: return "-O3";
      case OptLevel::Vitis: return "vitis";
    }
    return "?";
}

PldCompiler::PldCompiler(const Device &dev, CompileOptions opts)
    : dev(dev), opts(opts)
{
}

void
PldCompiler::clearCache()
{
    cache.clear();
    cache_stats = CacheStats{};
}

namespace {

uint64_t
cacheKey(const ir::OperatorFn &fn, ir::Target target, int page_id,
         bool leaf_iface)
{
    Hasher h;
    h.u64(fn.contentHash());
    h.u64(static_cast<uint64_t>(target));
    h.i64(page_id);
    h.u64(leaf_iface ? 1 : 0);
    return h.digest();
}

} // namespace

std::shared_ptr<OperatorArtifact>
PldCompiler::compileHwPage(const ir::OperatorFn &fn, int page_id)
{
    auto art = std::make_shared<OperatorArtifact>();
    art->name = fn.name;
    art->irHash = fn.contentHash();
    art->target = ir::Target::HW;
    art->page = page_id;

    // hls stage.
    auto hr = hls::compileOperator(fn, /*leaf_interface=*/true);
    art->net = std::move(hr.net);
    art->perf = hr.perf;
    art->times.hls = hr.seconds;

    // syn stage.
    auto sr = hls::synthesize(art->net, opts.effort);
    art->times.syn = sr.seconds;

    // p&r into the page under the abstract shell.
    pnr::PnrOptions popts;
    popts.effort = opts.effort;
    popts.seed = opts.seed;
    popts.abstractShell = true;
    const Rect &region = dev.pages[page_id].rect;
    art->pnr = pnr::placeAndRoute(art->net, dev, region, popts);
    art->times.pnr =
        art->pnr.placeSeconds + art->pnr.routeSeconds +
        art->pnr.contextSeconds;
    art->times.bitgen = art->pnr.bitgenSeconds;
    return art;
}

std::shared_ptr<OperatorArtifact>
PldCompiler::compileSoftcore(const ir::OperatorFn &fn, int page_id)
{
    auto art = std::make_shared<OperatorArtifact>();
    art->name = fn.name;
    art->irHash = fn.contentHash();
    art->target = ir::Target::RISCV;
    art->page = page_id;
    auto rv = rvgen::compileToRiscv(fn);
    art->elf = std::move(rv.elf);
    art->elf.pageNum = page_id;
    // The whole -O0 path is the "riscv g++" column of Table 2.
    art->times.hls = rv.seconds;
    return art;
}

std::vector<int>
PldCompiler::assignPages(const ir::Graph &g, OptLevel level) const
{
    std::vector<int> assignment(g.ops.size(), -1);
    if (level == OptLevel::O3 || level == OptLevel::Vitis) {
        // Monolithic flows ignore pages entirely.
        for (size_t oi = 0; oi < g.ops.size(); ++oi)
            assignment[oi] = static_cast<int>(oi);
        return assignment;
    }
    std::vector<bool> page_taken(dev.pages.size(), false);

    // Honour explicit pragma placements first (Fig 2a: p_num).
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        int want = g.ops[oi].fn.pragma.pageNum;
        if (want >= 0) {
            pld_assert(want < static_cast<int>(dev.pages.size()),
                       "%s: pragma requests page %d of %zu",
                       g.ops[oi].fn.name.c_str(), want,
                       dev.pages.size());
            pld_assert(!page_taken[want],
                       "page %d requested by two operators", want);
            assignment[oi] = want;
            page_taken[want] = true;
        }
    }

    // First-fit the rest by estimated resources.
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        if (assignment[oi] >= 0)
            continue;
        ResourceCount need;
        if (level != OptLevel::O0 &&
            g.ops[oi].fn.pragma.target == ir::Target::HW) {
            auto hr = hls::compileOperator(g.ops[oi].fn, true);
            need = hr.net.resources();
        }
        int chosen = -1;
        for (size_t pi = 0; pi < dev.pages.size(); ++pi) {
            if (page_taken[pi])
                continue;
            if (dev.pages[pi].res.covers(need)) {
                chosen = static_cast<int>(pi);
                break;
            }
        }
        pld_assert(chosen >= 0,
                   "%s does not fit any free page — decompose it "
                   "into smaller operators (Sec 4.1)",
                   g.ops[oi].fn.name.c_str());
        assignment[oi] = chosen;
        page_taken[chosen] = true;
    }
    return assignment;
}

AppBuild
PldCompiler::build(const ir::Graph &g, OptLevel level)
{
    AppBuild out;
    out.level = level;
    out.dfg = ir::extractDfg(g);

    std::vector<int> page_of = assignPages(g, level);

    bool monolithic =
        (level == OptLevel::O3 || level == OptLevel::Vitis);

    // ---- per-operator compilation (parallel, cached) -------------
    out.ops.resize(g.ops.size());
    {
        ThreadPool pool(opts.parallelJobs);
        std::mutex mtx;
        for (size_t oi = 0; oi < g.ops.size(); ++oi) {
            pool.submit([&, oi] {
                const auto &fn = g.ops[oi].fn;
                ir::Target tgt;
                if (level == OptLevel::O0)
                    tgt = ir::Target::RISCV;
                else if (monolithic)
                    tgt = ir::Target::HW;
                else
                    tgt = fn.pragma.target;

                std::shared_ptr<OperatorArtifact> art;
                uint64_t key = 0;
                if (!monolithic) {
                    key = cacheKey(fn, tgt, page_of[oi], true);
                    std::lock_guard<std::mutex> lk(mtx);
                    auto it = cache.find(key);
                    if (it != cache.end()) {
                        art = it->second.art;
                        ++cache_stats.hits;
                    } else {
                        ++cache_stats.misses;
                    }
                }

                bool cached = (art != nullptr);
                if (!art) {
                    if (monolithic) {
                        // Bare kernel netlist for stitching; the
                        // monolithic p&r happens below.
                        art = std::make_shared<OperatorArtifact>();
                        art->name = fn.name;
                        art->irHash = fn.contentHash();
                        art->target = ir::Target::HW;
                        auto hr = hls::compileOperator(fn, false);
                        art->net = std::move(hr.net);
                        art->perf = hr.perf;
                        art->times.hls = hr.seconds;
                    } else if (tgt == ir::Target::HW) {
                        art = compileHwPage(fn, page_of[oi]);
                    } else {
                        art = compileSoftcore(fn, page_of[oi]);
                    }
                }
                {
                    std::lock_guard<std::mutex> lk(mtx);
                    if (!monolithic && !cached)
                        cache[key] = {art};
                    out.ops[oi] = *art;
                    out.ops[oi].fromCache = cached;
                    out.ops[oi].page = page_of[oi];
                }
            });
        }
        pool.wait();
    }

    for (const auto &art : out.ops) {
        if (!art.fromCache)
            out.cpuTimes += art.times;
        StageTimes wall = art.fromCache ? StageTimes{} : art.times;
        out.wallTimes.maxWith(wall);
    }

    // ---- monolithic stitch + p&r (O3 / Vitis) ---------------------
    if (monolithic) {
        Stopwatch syn_sw;
        Netlist mono;
        std::vector<int> cell_off(g.ops.size(), 0);
        for (size_t oi = 0; oi < g.ops.size(); ++oi) {
            cell_off[oi] = mono.merge(out.ops[oi].net,
                                      g.ops[oi].instName + "/");
        }
        // Stitch links. O3 inserts pipelined FIFO glue (Sec 6.3);
        // Vitis wires operators directly (long unpipelined nets).
        for (size_t li = 0; li < g.links.size(); ++li) {
            const auto &l = g.links[li];
            if (l.src.isExternal() || l.dst.isExternal())
                continue;
            int src_cell = cell_off[l.src.op];
            int dst_cell = cell_off[l.dst.op];
            if (level == OptLevel::O3) {
                int brams = hls::bramsFor(l.depth, 32);
                int fifo_first = -1;
                for (int b = 0; b < brams; ++b) {
                    netlist::Cell c;
                    c.site = netlist::SiteKind::Bram;
                    c.name = "link" + std::to_string(li) + "_fifo" +
                             std::to_string(b);
                    c.level = 1;
                    int idx = mono.addCell(std::move(c));
                    if (fifo_first < 0)
                        fifo_first = idx;
                }
                netlist::Cell glue;
                glue.site = netlist::SiteKind::Clb;
                glue.name = "link" + std::to_string(li) + "_ctl";
                glue.luts = 6;
                glue.ffs = 12;
                glue.level = 1;
                int ctl = mono.addCell(std::move(glue));
                int n1 = mono.addNet(
                    "link" + std::to_string(li) + "_in", 32,
                    src_cell);
                mono.addSink(n1, fifo_first);
                mono.addSink(n1, ctl);
                int n2 = mono.addNet(
                    "link" + std::to_string(li) + "_out", 32,
                    fifo_first);
                mono.addSink(n2, dst_cell);
                mono.nets[n1].pipelined = true;
                mono.nets[n2].pipelined = true;
            } else {
                int n1 = mono.addNet(
                    "xlink" + std::to_string(li), 32, src_cell);
                mono.addSink(n1, dst_cell);
            }
        }
        auto sr = hls::synthesize(mono, opts.effort);
        out.wallTimes.syn += syn_sw.seconds();
        out.cpuTimes.syn += sr.seconds;

        pnr::PnrOptions popts;
        popts.effort = opts.effort;
        popts.seed = opts.seed;
        popts.abstractShell = false; // full-context monolithic run
        Rect user{0, 0, 120, 576};
        out.monoPnr = pnr::placeAndRoute(mono, dev, user, popts);
        out.monoNet = std::move(mono);
        double pnr_s = out.monoPnr.placeSeconds +
                       out.monoPnr.routeSeconds +
                       out.monoPnr.contextSeconds;
        out.wallTimes.pnr += pnr_s;
        out.cpuTimes.pnr += pnr_s;
        out.wallTimes.bitgen += out.monoPnr.bitgenSeconds;
        out.cpuTimes.bitgen += out.monoPnr.bitgenSeconds;
        out.totalBitstreamBytes = out.monoPnr.bits.bytes;
        out.area = out.monoNet.resources();
        out.fmaxMHz = out.monoPnr.timing.fmaxMHz;
    } else {
        // Overlay designs: area is the sum over pages; Fmax is the
        // 200 MHz overlay clock (never above page timing).
        double fmax = 200.0;
        for (auto &art : out.ops) {
            if (art.target == ir::Target::HW) {
                out.area += art.net.resources();
                out.totalBitstreamBytes += art.pnr.bits.bytes;
                fmax = std::min(fmax, art.pnr.timing.fmaxMHz);
            } else {
                // A softcore page occupies the full page's resources
                // (the one-size-fits-all processor, Sec 7.5).
                out.area += ResourceCount{
                    2000, 1500,
                    static_cast<int64_t>(
                        (art.elf.memBytes + 16 * 1024 - 1) /
                        (16 * 1024) * 8),
                    4};
                out.totalBitstreamBytes += art.elf.footprintBytes();
            }
        }
        out.fmaxMHz = fmax;
    }
    out.pagesUsed = static_cast<int>(g.ops.size());

    // ---- runtime bindings ----------------------------------------
    out.sysCfg = sys::SystemConfig{};
    out.sysCfg.useNoc = !monolithic;
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        sys::PageBinding b;
        b.opIdx = static_cast<int>(oi);
        b.pageId = monolithic ? static_cast<int>(oi) : page_of[oi];
        if (out.ops[oi].target == ir::Target::RISCV) {
            b.impl = sys::PageImpl::Softcore;
            b.elf = out.ops[oi].elf;
        } else {
            b.impl = sys::PageImpl::Hw;
            b.cyclesPerOp = out.ops[oi].perf.cyclesPerOp();
        }
        out.bindings.push_back(std::move(b));
    }
    return out;
}

} // namespace flow
} // namespace pld
