#include "fabric/device.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <sstream>

#include "common/logging.h"

namespace pld {
namespace fabric {

TileKind
Device::at(int col, int row) const
{
    pld_assert(col >= 0 && col < width && row >= 0 && row < height,
               "tile (%d,%d) outside %dx%d grid", col, row, width,
               height);
    return grid[static_cast<size_t>(row) * width + col];
}

ResourceCount
Device::resourcesIn(const Rect &r) const
{
    ResourceCount rc;
    for (int row = r.row0; row < r.row0 + r.h; ++row) {
        for (int col = r.col0; col < r.col0 + r.w; ++col) {
            switch (at(col, row)) {
              case TileKind::Clb:
                rc.luts += 8;
                rc.ffs += 16;
                break;
              case TileKind::Bram:
                rc.bram18 += 1;
                break;
              case TileKind::Dsp:
                rc.dsps += 1;
                break;
              default:
                break;
            }
        }
    }
    return rc;
}

ResourceCount
Device::userResources() const
{
    ResourceCount rc;
    for (const auto &p : pages)
        rc += p.res;
    return rc;
}

int
Device::pageAt(int col, int row) const
{
    for (const auto &p : pages) {
        if (p.rect.contains(col, row))
            return p.id;
    }
    return -1;
}

std::vector<std::pair<int, int>>
Device::sitesIn(const Rect &region, SiteKind kind) const
{
    TileKind want = tileFor(kind);
    std::vector<std::pair<int, int>> sites;
    for (int row = region.row0; row < region.row0 + region.h; ++row) {
        for (int col = region.col0; col < region.col0 + region.w;
             ++col) {
            if (at(col, row) == want)
                sites.emplace_back(col, row);
        }
    }
    return sites;
}

TileKind
Device::tileFor(SiteKind k)
{
    switch (k) {
      case SiteKind::Clb: return TileKind::Clb;
      case SiteKind::Dsp: return TileKind::Dsp;
      case SiteKind::Bram: return TileKind::Bram;
    }
    return TileKind::Clb;
}

std::string
Device::renderFloorplan() const
{
    // One character per 4x24 tile block.
    std::ostringstream os;
    os << "Floorplan (" << width << "x" << height
       << " tiles; P=page digit, S=static shell, N=linking spine, "
          ". = unassigned)\n";
    for (int row = height - 24; row >= 0; row -= 24) {
        for (int col = 0; col < width; col += 4) {
            TileKind k = at(col, row);
            int pg = pageAt(col, row);
            char ch = '.';
            if (k == TileKind::Shell)
                ch = 'S';
            else if (k == TileKind::Spine)
                ch = 'N';
            else if (pg >= 0)
                ch = static_cast<char>('0' + (pg % 10));
            os << ch;
        }
        if (row == slrBoundary)
            os << "   <-- SLR boundary";
        os << "\n";
    }
    return os.str();
}

Device
makeU50()
{
    Device d;
    d.width = 132;
    d.height = 576;
    d.slrBoundary = 288;
    d.grid.assign(static_cast<size_t>(d.width) * d.height,
                  TileKind::Clb);

    // Static shell: right-hand 12 columns, full height (the vendor
    // firmware region holding PCIe; Sec 2.5).
    d.staticShell = {120, 0, 12, 576};
    // Linking network + DMA spine: vertical strip in the middle
    // (Fig 3 block 7 and the interface module).
    d.spine = {56, 0, 8, 576};

    auto set = [&](int col, int row, TileKind k) {
        d.grid[static_cast<size_t>(row) * d.width + col] = k;
    };

    for (int row = 0; row < d.height; ++row) {
        for (int col = 0; col < d.width; ++col) {
            if (d.staticShell.contains(col, row)) {
                set(col, row, TileKind::Shell);
                continue;
            }
            if (d.spine.contains(col, row)) {
                set(col, row, TileKind::Spine);
                continue;
            }
            // Heterogeneous columns: BRAM at col%12==4 (one BRAM18
            // per 3 rows), DSP at col%12==10 (one DSP per 2 rows).
            if (col % 12 == 4)
                set(col, row,
                    row % 3 == 0 ? TileKind::Bram : TileKind::Empty);
            else if (col % 12 == 10)
                set(col, row,
                    row % 2 == 0 ? TileKind::Dsp : TileKind::Empty);
            else
                set(col, row, TileKind::Clb);
        }
    }

    // Pages: two blocks of columns flank the spine; each block holds
    // two page-columns; six page-rows of 96 tiles. The two slots at
    // the top-right are reserved for the DMA interface module and the
    // debug & profile logic (Fig 3), leaving 22 user pages.
    const int page_cols[4][2] = {{0, 28}, {28, 28}, {64, 28}, {92, 28}};
    int id = 0;
    for (int prow = 0; prow < 6; ++prow) {
        for (int pcol = 0; pcol < 4; ++pcol) {
            bool reserved = (prow == 5) && (pcol >= 2);
            if (reserved)
                continue;
            PageInfo p;
            p.id = id++;
            p.rect = {page_cols[pcol][0], prow * 96,
                      page_cols[pcol][1], 96};
            p.res = d.resourcesIn(p.rect);
            d.pages.push_back(p);
        }
    }
    pld_assert(d.pages.size() == 22, "expected 22 pages, got %zu",
               d.pages.size());

    // Group pages into types by resource signature (Table 1).
    std::map<std::tuple<int64_t, int64_t, int64_t>, int> sig_to_type;
    for (auto &p : d.pages) {
        auto sig = std::make_tuple(p.res.luts, p.res.bram18,
                                   p.res.dsps);
        auto it = sig_to_type.find(sig);
        if (it == sig_to_type.end()) {
            PageType t;
            t.res = p.res;
            t.count = 0;
            d.pageTypes.push_back(t);
            it = sig_to_type
                     .emplace(sig,
                              static_cast<int>(d.pageTypes.size()) - 1)
                     .first;
        }
        p.typeId = it->second;
        d.pageTypes[it->second].count += 1;
    }
    // Order types by descending LUT count for stable Table 1 output.
    // (Types are few; simple selection re-map.)
    std::vector<int> order(d.pageTypes.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (d.pageTypes[a].res.luts != d.pageTypes[b].res.luts)
            return d.pageTypes[a].res.luts > d.pageTypes[b].res.luts;
        return d.pageTypes[a].res.dsps > d.pageTypes[b].res.dsps;
    });
    std::vector<int> inverse(order.size());
    for (size_t i = 0; i < order.size(); ++i)
        inverse[order[i]] = static_cast<int>(i);
    std::vector<PageType> sorted;
    for (int idx : order)
        sorted.push_back(d.pageTypes[idx]);
    d.pageTypes = std::move(sorted);
    for (auto &p : d.pages)
        p.typeId = inverse[p.typeId];

    return d;
}

} // namespace fabric
} // namespace pld
