/**
 * @file
 * Scaled model of the Alveo U50 (Virtex UltraScale+ XCU50) fabric.
 *
 * The device is a grid of heterogeneous tiles: CLB columns broken up
 * by BRAM and DSP columns at irregular intervals (Sec 4.1: "today's
 * commercial FPGA fabrics are not completely regular"), split into two
 * SLRs. A static-shell region holds the PCIe/firmware logic (Sec 2.5),
 * a vertical spine hosts the linking network + DMA interface, and the
 * remaining area is tiled into 22 partial-reconfiguration pages of
 * four resource types (Table 1, Fig 8).
 */

#ifndef PLD_FABRIC_DEVICE_H
#define PLD_FABRIC_DEVICE_H

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace pld {
namespace fabric {

using netlist::ResourceCount;
using netlist::SiteKind;

/** Tile categories on the fabric grid. */
enum class TileKind : uint8_t {
    Clb,    ///< 8 LUTs + 16 FFs
    Bram,   ///< one BRAM18
    Dsp,    ///< one DSP slice
    Empty,  ///< gap in a BRAM/DSP column
    Shell,  ///< static region (PCIe shell) — never user-placeable
    Spine,  ///< linking network / DMA interface strip (L1 overlay)
};

/** Axis-aligned tile rectangle [col0, col0+w) x [row0, row0+h). */
struct Rect
{
    int col0 = 0, row0 = 0, w = 0, h = 0;

    bool
    contains(int c, int r) const
    {
        return c >= col0 && c < col0 + w && r >= row0 && r < row0 + h;
    }
    int area() const { return w * h; }
};

/** One partial-reconfiguration page (an L2 DFX region). */
struct PageInfo
{
    int id = -1;
    Rect rect;
    int typeId = -1; ///< index into Device::pageTypes
    ResourceCount res;
};

/** A page resource signature shared by several pages (Table 1 rows). */
struct PageType
{
    ResourceCount res;
    int count = 0;
};

/**
 * The fabric model. Construction is procedural (makeU50()) so page
 * geometry, column patterns, and SLR split stay consistent.
 */
class Device
{
  public:
    /** Grid extents in tiles. */
    int width = 0, height = 0;

    /** Two SLRs: rows [0, slrBoundary) are SLR0, the rest SLR1. */
    int slrBoundary = 0;

    Rect staticShell;
    Rect spine;

    std::vector<PageInfo> pages;
    std::vector<PageType> pageTypes;

    /** Tile kind at (col,row). */
    TileKind at(int col, int row) const;

    /** SLR index (0/1) of a row. */
    int slrOf(int row) const { return row < slrBoundary ? 0 : 1; }

    /** Resources inside an arbitrary rectangle. */
    ResourceCount resourcesIn(const Rect &r) const;

    /** Resources of the whole user-mappable area (all pages). */
    ResourceCount userResources() const;

    /** Page whose rectangle contains (col,row), or -1. */
    int pageAt(int col, int row) const;

    /**
     * Candidate tile positions of @p kind inside @p region, row-major.
     * This is what the placer enumerates; with the abstract shell the
     * region is a single page, without it the whole user area.
     */
    std::vector<std::pair<int, int>> sitesIn(const Rect &region,
                                             SiteKind kind) const;

    /** Tile-kind a netlist SiteKind maps onto. */
    static TileKind tileFor(SiteKind k);

    /** ASCII rendering of the floorplan (Fig 8). */
    std::string renderFloorplan() const;

  private:
    friend Device makeU50();
    std::vector<TileKind> grid; // row-major
};

/**
 * Build the scaled U50 model: 132 x 576 tiles, two SLRs, 22 pages of
 * ~18-21k LUTs plus interface/debug slots, BRAM columns every 12
 * columns (1 BRAM18 per 3 rows), DSP columns every 12 (1 per 2 rows).
 */
Device makeU50();

} // namespace fabric
} // namespace pld

#endif // PLD_FABRIC_DEVICE_H
