/**
 * @file
 * Seeded random program generator for pldfuzz.
 *
 * Emits well-typed OperatorFns over the full expression/statement/type
 * grammar (ap_int/ap_fixed widths, arrays and ROMs, nested control
 * flow) wired into single-operator, chain, or fork/join graphs, plus
 * matching random input streams. Programs are validator-clean by
 * construction: the generator applies exactly the OpBuilder typing
 * discipline (promotion rules, assignment casts, rawWord stream
 * writes, masked array indices, reads only as dedicated assignment
 * statements), because the single-source-semantics property under test
 * is only promised for programs the operator discipline accepts.
 *
 * Everything is a pure function of the seed, so `pldfuzz --seed S`
 * reproduces a case exactly and corpus entries can name the seed they
 * were minimized from.
 */

#ifndef PLD_FUZZ_GEN_H
#define PLD_FUZZ_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ir/graph.h"

namespace pld {
namespace fuzz {

/** Knobs bounding generated programs (defaults suit CI smoke runs). */
struct GenConfig
{
    /** Outer streaming rounds; every port moves one word per round. */
    int maxRounds = 8;
    /** Random statements per round (on top of reads/writes). */
    int maxStmtsPerRound = 5;
    /** Maximum expression tree depth. */
    int maxExprDepth = 3;
    /** Extra scratch variables per operator. */
    int maxVars = 3;
    /** Arrays per operator (sizes are powers of two, some ROMs). */
    int maxArrays = 2;
    /** Maximum nested control depth below the streaming loop. */
    int maxControlDepth = 2;
    /** Allow chain / fork-join graphs (vs single operators only). */
    bool allowMultiOp = true;
    /** Allow fixed-point types (vs integers only). */
    bool allowFixed = true;
    /** Allow While statements (counter-bounded, always terminate). */
    bool allowWhile = true;
    /** Allow processor-only Print statements. */
    bool allowPrint = true;
};

/** One generated differential-test case. */
struct GenCase
{
    ir::Graph graph;
    /** Input words per external input stream (rounds words each). */
    std::vector<std::vector<uint32_t>> inputs;
    uint64_t seed = 0;
    int rounds = 0;

    /** Printable form: seed, operators, inputs (repro report). */
    std::string dump() const;
};

/** Generate the complete case for @p seed. */
GenCase generateCase(uint64_t seed, const GenConfig &cfg = {});

/**
 * Generate one operator with @p num_in/@p num_out stream ports that
 * reads one word from every input and writes one word to every output
 * per round, for @p rounds rounds (rate-matched composition).
 */
ir::OperatorFn generateOperator(Rng &rng, const GenConfig &cfg,
                                const std::string &name, int num_in,
                                int num_out, int rounds);

/** Random input words biased toward boundary values. */
std::vector<uint32_t> generateInputWords(Rng &rng, size_t count);

/**
 * Wrap raw bits to @p t's width and sign-extend: the canonical
 * in-register form shared by the interpreter and the softcore.
 */
int64_t canonicalRaw(uint64_t bits, const ir::Type &t);

} // namespace fuzz
} // namespace pld

#endif // PLD_FUZZ_GEN_H
