/**
 * @file
 * Differential executor for pldfuzz: one generated case, four
 * backends, word-for-word comparison.
 *
 * The golden model is the functional Kahn runtime (interpreter per
 * operator, plain FIFOs, no timing). Against it we check:
 *
 *  - the HLS page path: SystemSim with HW bindings whose cyclesPerOp
 *    comes from the real HLS schedule (-O1 timed model, NoC or direct
 *    links),
 *  - the softcore -O0 path: rvgen -O0 binaries on the RV32 ISS,
 *    either a bare Core for single-operator cases or SystemSim
 *    softcore pages for multi-operator graphs, and
 *  - the softcore -Os path: the same graph through the optimizing
 *    rvgen tier (isel + peephole + linear-scan regalloc), run the
 *    same way — so every fuzz iteration cross-checks both codegen
 *    tiers word-for-word against the interpreter and each other.
 *
 * Beyond plain output equality, the harness checks two compiler-level
 * properties from the paper's fault-tolerance story: build
 * determinism (parallelJobs 1 vs N with the same seed produce
 * identical reports and identical run results) and fault-ladder
 * equivalence (artifacts produced at every retry-ladder rung — extra
 * effort, fresh seed, page promotion, softcore fallback — all compute
 * the same outputs).
 */

#ifndef PLD_FUZZ_DIFF_H
#define PLD_FUZZ_DIFF_H

#include <string>
#include <vector>

#include "fuzz/gen.h"
#include "fuzz/mutate.h"

namespace pld {
namespace fuzz {

enum class DiffStatus
{
    Pass,
    Mismatch, ///< a backend's outputs differ from the golden model
    Hang,     ///< deadlock / budget exhausted on some backend
    Invalid,  ///< generated case failed validation (generator bug)
};

const char *diffStatusName(DiffStatus s);

struct DiffOptions
{
    /** Run the timed system simulator (HW pages) backend. */
    bool runSys = true;
    /** Run the softcore -O0 (rvgen + ISS) backend. */
    bool runIss = true;
    /** Run the softcore -Os (optimizing rvgen tier + ISS) backend. */
    bool runOsIss = true;
    /** Route the system simulator through the NoC overlay. */
    bool sysUseNoc = true;
    uint64_t sysMaxCycles = 20000000ull;
    uint64_t issInstrBudget = 400000000ull;
    /** Intentional bug applied to the softcore path only. */
    InjectedBug bug = InjectedBug::None;
};

struct DiffResult
{
    DiffStatus status = DiffStatus::Pass;
    /** Which backend / stream / word diverged, for repro reports. */
    std::string detail;
    /** Golden outputs, one vector per external output stream. */
    std::vector<std::vector<uint32_t>> golden;

    bool pass() const { return status == DiffStatus::Pass; }
};

/** Run the golden model only. False on validation failure/deadlock. */
bool goldenOutputs(const GenCase &c,
                   std::vector<std::vector<uint32_t>> *out,
                   std::string *why);

/** Full differential run of one case. */
DiffResult diffCase(const GenCase &c, const DiffOptions &opts = {});

/**
 * Compile the case at -O1 under injected fault plans that force the
 * page retry ladder through its rungs (reroute, reseed, promotion,
 * softcore fallback) and check every resulting build still computes
 * the golden outputs. @p seed feeds the compiler, not the case.
 */
DiffResult checkFaultLadder(const GenCase &c, uint64_t seed);

/**
 * Build the case twice with the same seed at parallelJobs 1 and 4 and
 * require identical build reports, identical Fmax, and identical run
 * results (deterministic parallel compilation).
 */
DiffResult checkBuildDeterminism(const GenCase &c, uint64_t seed);

} // namespace fuzz
} // namespace pld

#endif // PLD_FUZZ_DIFF_H
