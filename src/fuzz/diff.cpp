#include "fuzz/diff.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "common/logging.h"
#include "dataflow/runtime.h"
#include "fabric/device.h"
#include "hls/schedule.h"
#include "ir/validate.h"
#include "pld/compiler.h"
#include "rv32/iss.h"
#include "rvgen/codegen.h"
#include "sys/system.h"

namespace pld {
namespace fuzz {

namespace {

std::string
hex(uint32_t w)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", w);
    return buf;
}

/** Word-for-word comparison of one backend's streams vs golden. */
bool
compareOutputs(const std::string &backend, const GenCase &c,
               const std::vector<std::vector<uint32_t>> &golden,
               const std::vector<std::vector<uint32_t>> &got,
               std::string *detail)
{
    for (size_t s = 0; s < golden.size(); ++s) {
        const std::string &name = c.graph.extOutputs[s];
        if (got[s].size() != golden[s].size()) {
            *detail = backend + ": stream " + name + " produced " +
                      std::to_string(got[s].size()) + " words, want " +
                      std::to_string(golden[s].size());
            return false;
        }
        for (size_t i = 0; i < golden[s].size(); ++i) {
            if (got[s][i] != golden[s][i]) {
                *detail = backend + ": stream " + name + " word " +
                          std::to_string(i) + ": got " +
                          hex(got[s][i]) + " want " +
                          hex(golden[s][i]);
                return false;
            }
        }
    }
    return true;
}

/** Shared device model for compiler-level checks. */
const fabric::Device &
fuzzDevice()
{
    static fabric::Device dev = fabric::makeU50();
    return dev;
}

/** Run SystemSim with explicit bindings; false on non-completion. */
bool
runSystem(const GenCase &c, const std::vector<sys::PageBinding> &b,
          const sys::SystemConfig &scfg, uint64_t max_cycles,
          std::vector<std::vector<uint32_t>> *out, std::string *why)
{
    sys::SystemSim sim(c.graph, b, scfg);
    for (size_t i = 0; i < c.inputs.size(); ++i)
        sim.loadInput(static_cast<int>(i), c.inputs[i]);
    sys::RunStats rs = sim.run(max_cycles);
    if (!rs.completed) {
        *why = "system simulator hit the " +
               std::to_string(max_cycles) + "-cycle budget";
        return false;
    }
    out->clear();
    for (size_t i = 0; i < c.graph.extOutputs.size(); ++i)
        out->push_back(sim.takeOutput(static_cast<int>(i)));
    return true;
}

/** HW-page bindings: cycle charge from the real HLS schedule. */
std::vector<sys::PageBinding>
hwBindings(const ir::Graph &g)
{
    static const int kPages[] = {0, 5, 9, 13, 17, 20};
    std::vector<sys::PageBinding> bindings;
    for (size_t i = 0; i < g.ops.size(); ++i) {
        pld_assert(i < sizeof(kPages) / sizeof(int),
                   "fuzz graphs use at most 6 operators");
        sys::PageBinding b;
        b.opIdx = static_cast<int>(i);
        b.pageId = kPages[i];
        b.impl = sys::PageImpl::Hw;
        b.cyclesPerOp =
            hls::analyzeOperator(g.ops[i].fn).cyclesPerOp();
        bindings.push_back(std::move(b));
    }
    return bindings;
}

/** Softcore bindings with per-operator binaries at @p tier. */
std::vector<sys::PageBinding>
softcoreBindings(const ir::Graph &g, InjectedBug bug,
                 rvgen::Tier tier)
{
    static const int kPages[] = {0, 5, 9, 13, 17, 20};
    rvgen::RvOptions ro;
    ro.tier = tier;
    std::vector<sys::PageBinding> bindings;
    for (size_t i = 0; i < g.ops.size(); ++i) {
        sys::PageBinding b;
        b.opIdx = static_cast<int>(i);
        b.pageId = kPages[i];
        b.impl = sys::PageImpl::Softcore;
        b.elf =
            rvgen::compileToRiscv(applyBug(g.ops[i].fn, bug), ro).elf;
        bindings.push_back(std::move(b));
    }
    return bindings;
}

/**
 * Bare-metal ISS run for single-operator cases: one Core with plain
 * FIFO ports, inputs preloaded, outputs drained afterwards. Exercises
 * the MMIO stream path directly without the system model.
 */
bool
runBareIss(const GenCase &c, InjectedBug bug, uint64_t budget,
           rvgen::Tier tier,
           std::vector<std::vector<uint32_t>> *out, std::string *why)
{
    const ir::Graph &g = c.graph;
    const ir::OperatorFn fn = applyBug(g.ops[0].fn, bug);
    rvgen::RvOptions ro;
    ro.tier = tier;
    rv32::PldElf elf = rvgen::compileToRiscv(fn, ro).elf;

    std::vector<std::unique_ptr<dataflow::WordFifo>> fifos;
    std::vector<std::unique_ptr<dataflow::StreamPort>> portStore;
    std::vector<dataflow::StreamPort *> ports;
    std::vector<int> outFifoOfExt(g.extOutputs.size(), -1);

    for (size_t p = 0; p < fn.ports.size(); ++p) {
        fifos.push_back(std::make_unique<dataflow::WordFifo>(0));
        dataflow::WordFifo &f = *fifos.back();
        ir::Endpoint ep{0, static_cast<int>(p)};
        if (fn.ports[p].dir == ir::PortDir::In) {
            int li = g.linkInto(ep);
            pld_assert(li >= 0 && g.links[li].src.isExternal(),
                       "bare ISS runs need external inputs");
            for (uint32_t w : c.inputs[g.links[li].src.port])
                f.push(w);
            portStore.push_back(
                std::make_unique<dataflow::FifoReadPort>(f));
        } else {
            int li = g.linkFrom(ep);
            pld_assert(li >= 0 && g.links[li].dst.isExternal(),
                       "bare ISS runs need external outputs");
            outFifoOfExt[g.links[li].dst.port] =
                static_cast<int>(p);
            portStore.push_back(
                std::make_unique<dataflow::FifoWritePort>(f));
        }
        ports.push_back(portStore.back().get());
    }

    rv32::Core core(elf, ports);
    rv32::CoreStatus st = core.step(budget);
    if (st == rv32::CoreStatus::Trapped) {
        *why = "softcore trapped: " + core.trapReason();
        return false;
    }
    if (st != rv32::CoreStatus::Halted) {
        *why = "softcore did not halt (blocked or out of budget)";
        return false;
    }

    out->clear();
    for (size_t i = 0; i < g.extOutputs.size(); ++i) {
        std::vector<uint32_t> words;
        dataflow::WordFifo &f = *fifos[outFifoOfExt[i]];
        while (f.canPop())
            words.push_back(f.pop());
        out->push_back(std::move(words));
    }
    return true;
}

} // namespace

const char *
diffStatusName(DiffStatus s)
{
    switch (s) {
      case DiffStatus::Pass: return "pass";
      case DiffStatus::Mismatch: return "mismatch";
      case DiffStatus::Hang: return "hang";
      case DiffStatus::Invalid: return "invalid";
    }
    return "?";
}

bool
goldenOutputs(const GenCase &c,
              std::vector<std::vector<uint32_t>> *out,
              std::string *why)
{
    auto diags = ir::validateGraph(c.graph);
    if (!ir::isClean(diags)) {
        *why = "validation: " + ir::renderDiagnostics(diags);
        return false;
    }
    dataflow::GraphRuntime rt(c.graph, 0);
    for (size_t i = 0; i < c.inputs.size(); ++i)
        rt.pushInput(static_cast<int>(i), c.inputs[i]);
    if (!rt.run()) {
        *why = "golden runtime deadlock: " + rt.deadlockReport();
        return false;
    }
    out->clear();
    for (size_t i = 0; i < c.graph.extOutputs.size(); ++i)
        out->push_back(rt.takeOutput(static_cast<int>(i)));
    return true;
}

DiffResult
diffCase(const GenCase &c, const DiffOptions &opts)
{
    DiffResult r;

    auto diags = ir::validateGraph(c.graph);
    if (!ir::isClean(diags)) {
        r.status = DiffStatus::Invalid;
        r.detail = ir::renderDiagnostics(diags);
        return r;
    }

    std::string why;
    if (!goldenOutputs(c, &r.golden, &why)) {
        r.status = DiffStatus::Hang;
        r.detail = why;
        return r;
    }

    std::vector<std::vector<uint32_t>> got;
    if (opts.runSys) {
        sys::SystemConfig scfg;
        scfg.useNoc = opts.sysUseNoc;
        if (!runSystem(c, hwBindings(c.graph), scfg,
                       opts.sysMaxCycles, &got, &why)) {
            r.status = DiffStatus::Hang;
            r.detail = "sys: " + why;
            return r;
        }
        if (!compareOutputs("sys", c, r.golden, got, &r.detail)) {
            r.status = DiffStatus::Mismatch;
            return r;
        }
    }

    // Both softcore legs are run the same way; only the codegen tier
    // differs. A divergence between them (or against golden) is a
    // codegen bug, never a case property.
    auto issLeg = [&](const char *backend,
                      rvgen::Tier tier) -> bool {
        bool ok;
        try {
            if (c.graph.ops.size() == 1) {
                ok = runBareIss(c, opts.bug, opts.issInstrBudget,
                                tier, &got, &why);
            } else {
                sys::SystemConfig scfg;
                scfg.useNoc = opts.sysUseNoc;
                ok = runSystem(
                    c, softcoreBindings(c.graph, opts.bug, tier),
                    scfg, opts.sysMaxCycles, &got, &why);
            }
        } catch (const std::runtime_error &e) {
            // -Os capacity limits never fire on fuzz-sized graphs;
            // reaching one here is a compiler bug worth a repro.
            r.status = DiffStatus::Mismatch;
            r.detail =
                std::string(backend) + ": compile threw: " + e.what();
            return false;
        }
        if (!ok) {
            r.status = DiffStatus::Hang;
            r.detail = std::string(backend) + ": " + why;
            return false;
        }
        if (!compareOutputs(backend, c, r.golden, got, &r.detail)) {
            r.status = DiffStatus::Mismatch;
            return false;
        }
        return true;
    };

    if (opts.runIss && !issLeg("iss", rvgen::Tier::O0))
        return r;
    if (opts.runOsIss && !issLeg("iss-Os", rvgen::Tier::Os))
        return r;

    return r;
}

DiffResult
checkFaultLadder(const GenCase &c, uint64_t seed)
{
    DiffResult r;
    std::string why;
    if (!goldenOutputs(c, &r.golden, &why)) {
        r.status = DiffStatus::Hang;
        r.detail = why;
        return r;
    }

    // Each plan pushes the first operator's compile further up the
    // retry ladder; four consecutive route failures reach the
    // softcore-fallback rung. Equivalence must hold at every rung.
    const std::string target = c.graph.ops[0].fn.name;
    const std::string plans[] = {
        "",
        "route_fail:" + target + "*1",
        "route_fail:" + target + "*2",
        "route_fail:" + target + "*3",
        "route_fail:" + target + "*4",
        "timing_miss:" + target + "*2",
    };

    for (const std::string &plan : plans) {
        flow::CompileOptions co;
        co.effort = 0.25;
        co.parallelJobs = 2;
        co.seed = seed;
        if (!plan.empty())
            co.faults = FaultPlan::parse(plan);
        flow::PldCompiler pc(fuzzDevice(), co);
        flow::AppBuild build =
            pc.build(c.graph, flow::OptLevel::O1);
        if (build.report.failedCount() > 0) {
            r.status = DiffStatus::Mismatch;
            r.detail = "ladder[" + plan + "]: build failed:\n" +
                       build.report.render();
            return r;
        }
        std::vector<std::vector<uint32_t>> got;
        if (!runSystem(c, build.bindings, build.sysCfg, 40000000ull,
                       &got, &why)) {
            r.status = DiffStatus::Hang;
            r.detail = "ladder[" + plan + "]: " + why;
            return r;
        }
        if (!compareOutputs("ladder[" + plan + "]", c, r.golden, got,
                            &r.detail)) {
            r.status = DiffStatus::Mismatch;
            return r;
        }
    }
    return r;
}

DiffResult
checkBuildDeterminism(const GenCase &c, uint64_t seed)
{
    DiffResult r;
    std::string why;
    if (!goldenOutputs(c, &r.golden, &why)) {
        r.status = DiffStatus::Hang;
        r.detail = why;
        return r;
    }

    flow::AppBuild builds[2];
    for (int i = 0; i < 2; ++i) {
        flow::CompileOptions co;
        co.effort = 0.25;
        co.parallelJobs = (i == 0) ? 1 : 4;
        co.seed = seed;
        flow::PldCompiler pc(fuzzDevice(), co);
        builds[i] = pc.build(c.graph, flow::OptLevel::O1);
    }

    if (builds[0].fmaxMHz != builds[1].fmaxMHz) {
        r.status = DiffStatus::Mismatch;
        r.detail = "determinism: fmax " +
                   std::to_string(builds[0].fmaxMHz) + " vs " +
                   std::to_string(builds[1].fmaxMHz) +
                   " across parallelJobs 1 vs 4";
        return r;
    }
    if (builds[0].report.render() != builds[1].report.render()) {
        r.status = DiffStatus::Mismatch;
        r.detail = "determinism: build reports differ across "
                   "parallelJobs 1 vs 4";
        return r;
    }

    for (int i = 0; i < 2; ++i) {
        std::vector<std::vector<uint32_t>> got;
        if (!runSystem(c, builds[i].bindings, builds[i].sysCfg,
                       40000000ull, &got, &why)) {
            r.status = DiffStatus::Hang;
            r.detail = "determinism run " + std::to_string(i) +
                       ": " + why;
            return r;
        }
        std::string backend =
            "determinism(jobs=" + std::to_string(i == 0 ? 1 : 4) +
            ")";
        if (!compareOutputs(backend, c, r.golden, got, &r.detail)) {
            r.status = DiffStatus::Mismatch;
            return r;
        }
    }
    return r;
}

} // namespace fuzz
} // namespace pld
