#include "fuzz/shrink.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "fuzz/mutate.h"
#include "interp/exec.h"
#include "ir/validate.h"

namespace pld {
namespace fuzz {

namespace {

using ir::ExprKind;
using ir::ExprPtr;
using ir::StmtKind;
using ir::StmtPtr;

bool
exprHasStream(const ExprPtr &e)
{
    if (e->kind == ExprKind::StreamRead)
        return true;
    for (const auto &a : e->args)
        if (exprHasStream(a))
            return true;
    return false;
}

bool
stmtHasStream(const StmtPtr &s)
{
    if (s->kind == StmtKind::StreamWrite)
        return true;
    for (const auto &e : s->args)
        if (exprHasStream(e))
            return true;
    for (const auto &b : s->body)
        if (stmtHasStream(b))
            return true;
    for (const auto &b : s->elseBody)
        if (stmtHasStream(b))
            return true;
    return false;
}

GenCase
cloneCase(const GenCase &c)
{
    GenCase copy;
    copy.graph = cloneGraph(c.graph);
    copy.inputs = c.inputs;
    copy.seed = c.seed;
    copy.rounds = c.rounds;
    return copy;
}

struct Budget
{
    int remaining = 0;
    ShrinkStats stats;
};

/** Validate + evaluate one candidate; adopt it into @p best if the
 *  failure reproduces. */
bool
tryCandidate(GenCase &best, GenCase cand,
             const FailPredicate &still_fails, Budget &b)
{
    if (b.remaining <= 0)
        return false;
    if (!ir::isClean(ir::validateGraph(cand.graph)))
        return false;
    --b.remaining;
    ++b.stats.evals;
    if (!still_fails(cand))
        return false;
    ++b.stats.accepted;
    best = std::move(cand);
    return true;
}

// ---- site enumeration (over a candidate clone) ------------------

/** A deletable statement slot: owning list + index. */
struct StmtSite
{
    std::vector<StmtPtr> *list;
    size_t idx;
};

void
collectStmtSites(std::vector<StmtPtr> &list, bool deletable_only,
                 std::vector<StmtSite> &out)
{
    for (size_t i = 0; i < list.size(); ++i) {
        const StmtPtr &s = list[i];
        bool streamy = stmtHasStream(s);
        if (deletable_only) {
            if (!streamy)
                out.push_back({&list, i});
        } else {
            // Hoistable: control statement whose own subtree carries
            // no stream ops (round loops stay intact).
            bool control = s->kind == StmtKind::For ||
                           s->kind == StmtKind::While ||
                           s->kind == StmtKind::If;
            if (control && !streamy)
                out.push_back({&list, i});
        }
        collectStmtSites(s->body, deletable_only, out);
        collectStmtSites(s->elseBody, deletable_only, out);
    }
}

std::vector<StmtSite>
stmtSites(ir::Graph &g, bool deletable_only)
{
    std::vector<StmtSite> out;
    for (auto &inst : g.ops)
        collectStmtSites(inst.fn.body, deletable_only, out);
    return out;
}

/** An expression slot that can be replaced by a zero constant. */
void
collectExprSlots(ExprPtr &slot, std::vector<ExprPtr *> &out)
{
    bool zero_const =
        slot->kind == ExprKind::Const && slot->imm == 0;
    if (!exprHasStream(slot) && !zero_const)
        out.push_back(&slot);
    for (auto &a : slot->args)
        collectExprSlots(a, out);
}

void
collectExprSlotsStmts(std::vector<StmtPtr> &list,
                      std::vector<ExprPtr *> &out)
{
    for (auto &s : list) {
        for (auto &e : s->args)
            collectExprSlots(e, out);
        collectExprSlotsStmts(s->body, out);
        collectExprSlotsStmts(s->elseBody, out);
    }
}

std::vector<ExprPtr *>
exprSlots(ir::Graph &g)
{
    std::vector<ExprPtr *> out;
    for (auto &inst : g.ops)
        collectExprSlotsStmts(inst.fn.body, out);
    return out;
}

/** Variables whose width must not change: loop counters and while
 *  condition variables (loop-control semantics are width-sensitive
 *  across targets). */
void
collectProtectedVars(const std::vector<StmtPtr> &list,
                     std::vector<bool> &protect)
{
    for (const auto &s : list) {
        if (s->kind == StmtKind::For &&
            s->imm < static_cast<int64_t>(protect.size()))
            protect[s->imm] = true;
        if (s->kind == StmtKind::While && !s->args.empty()) {
            // Conservatively protect every variable in the condition.
            std::vector<const ir::Expr *> stack{s->args[0].get()};
            while (!stack.empty()) {
                const ir::Expr *e = stack.back();
                stack.pop_back();
                if (e->kind == ExprKind::VarRef &&
                    e->imm < static_cast<int64_t>(protect.size()))
                    protect[e->imm] = true;
                for (const auto &a : e->args)
                    stack.push_back(a.get());
            }
        }
        collectProtectedVars(s->body, protect);
        collectProtectedVars(s->elseBody, protect);
    }
}

// ---- passes -----------------------------------------------------

bool
passIsolateOperator(GenCase &best, const FailPredicate &still_fails,
                    Budget &b)
{
    const ir::Graph &g = best.graph;
    if (g.ops.size() <= 1)
        return false;

    // Replay operators in topological order to recover the words on
    // every internal link.
    std::vector<std::vector<std::vector<uint32_t>>> opIn(
        g.ops.size());
    std::vector<std::vector<std::vector<uint32_t>>> opOut(
        g.ops.size());
    std::vector<bool> done(g.ops.size(), false);
    for (size_t pass = 0; pass < g.ops.size(); ++pass) {
        for (size_t oi = 0; oi < g.ops.size(); ++oi) {
            if (done[oi])
                continue;
            const ir::OperatorFn &fn = g.ops[oi].fn;
            std::vector<std::vector<uint32_t>> ins;
            bool ready = true;
            for (size_t p = 0; p < fn.ports.size() && ready; ++p) {
                if (fn.ports[p].dir != ir::PortDir::In)
                    continue;
                int li = g.linkInto(
                    {static_cast<int>(oi), static_cast<int>(p)});
                pld_assert(li >= 0, "shrink: unwired input");
                const ir::Endpoint &src = g.links[li].src;
                if (src.isExternal()) {
                    ins.push_back(best.inputs[src.port]);
                } else if (done[src.op]) {
                    // Map the producer's overall port index to its
                    // output ordinal.
                    const ir::OperatorFn &sf = g.ops[src.op].fn;
                    int ord = 0;
                    for (int q = 0; q < src.port; ++q)
                        if (sf.ports[q].dir == ir::PortDir::Out)
                            ++ord;
                    ins.push_back(opOut[src.op][ord]);
                } else {
                    ready = false;
                }
            }
            if (!ready)
                continue;
            opIn[oi] = ins;
            opOut[oi] = runOperatorStandalone(fn, ins);
            done[oi] = opOut[oi].size() ==
                       static_cast<size_t>(fn.numOutputs());
        }
    }

    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        if (!done[oi])
            continue;
        const ir::OperatorFn &fn = g.ops[oi].fn;
        GenCase cand;
        cand.seed = best.seed;
        cand.rounds = best.rounds;
        ir::GraphBuilder gb(g.name);
        std::vector<ir::GraphBuilder::WireId> ins, outs;
        for (int p = 0; p < fn.numInputs(); ++p)
            ins.push_back(gb.extIn("src" + std::to_string(p)));
        for (int p = 0; p < fn.numOutputs(); ++p)
            outs.push_back(gb.extOut("dst" + std::to_string(p)));
        gb.inst(cloneOperator(fn), ins, outs);
        cand.graph = gb.finish();
        cand.inputs = opIn[oi];
        if (tryCandidate(best, std::move(cand), still_fails, b))
            return true;
    }
    return false;
}

bool
passReduceRounds(GenCase &best, const FailPredicate &still_fails,
                 Budget &b)
{
    bool any = false;
    while (best.rounds > 1 && b.remaining > 0) {
        std::vector<int> targets{1};
        if (best.rounds / 2 > 1)
            targets.push_back(best.rounds / 2);
        bool reduced = false;
        for (int r : targets) {
            if (r >= best.rounds)
                continue;
            GenCase cand = cloneCase(best);
            bool shaped = true;
            for (auto &inst : cand.graph.ops) {
                if (inst.fn.body.size() == 1 &&
                    inst.fn.body[0]->kind == StmtKind::For &&
                    inst.fn.body[0]->immHi == best.rounds) {
                    inst.fn.body[0]->immHi = r;
                } else {
                    shaped = false;
                }
            }
            if (!shaped)
                return any;
            cand.rounds = r;
            for (auto &words : cand.inputs)
                words.resize(static_cast<size_t>(r));
            if (tryCandidate(best, std::move(cand), still_fails,
                             b)) {
                any = reduced = true;
                break;
            }
        }
        if (!reduced)
            break;
    }
    return any;
}

bool
passDeleteStmts(GenCase &best, const FailPredicate &still_fails,
                Budget &b)
{
    bool any = false;
    size_t n = 0;
    while (b.remaining > 0) {
        GenCase cand = cloneCase(best);
        auto sites = stmtSites(cand.graph, /*deletable_only=*/true);
        if (n >= sites.size())
            break;
        sites[n].list->erase(sites[n].list->begin() +
                             static_cast<long>(sites[n].idx));
        if (tryCandidate(best, std::move(cand), still_fails, b))
            any = true; // sites shifted; retry same ordinal
        else
            ++n;
    }
    return any;
}

bool
passHoistBodies(GenCase &best, const FailPredicate &still_fails,
                Budget &b)
{
    bool any = false;
    size_t n = 0;
    while (b.remaining > 0) {
        GenCase cand = cloneCase(best);
        auto sites = stmtSites(cand.graph, /*deletable_only=*/false);
        if (n >= sites.size())
            break;
        std::vector<StmtPtr> &list = *sites[n].list;
        size_t i = sites[n].idx;
        StmtPtr s = list[i];
        list.erase(list.begin() + static_cast<long>(i));
        list.insert(list.begin() + static_cast<long>(i),
                    s->body.begin(), s->body.end());
        list.insert(list.begin() +
                        static_cast<long>(i + s->body.size()),
                    s->elseBody.begin(), s->elseBody.end());
        if (tryCandidate(best, std::move(cand), still_fails, b))
            any = true;
        else
            ++n;
    }
    return any;
}

bool
passZeroExprs(GenCase &best, const FailPredicate &still_fails,
              Budget &b)
{
    bool any = false;
    size_t n = 0;
    while (b.remaining > 0) {
        GenCase cand = cloneCase(best);
        auto slots = exprSlots(cand.graph);
        if (n >= slots.size())
            break;
        ir::Type t = (*slots[n])->type;
        *slots[n] = ir::makeConst(t, 0);
        if (tryCandidate(best, std::move(cand), still_fails, b))
            any = true;
        else
            ++n;
    }
    return any;
}

bool
passNarrowWidths(GenCase &best, const FailPredicate &still_fails,
                 Budget &b)
{
    bool any = false;
    size_t n = 0; // (op, var) flattened ordinal
    while (b.remaining > 0) {
        GenCase cand = cloneCase(best);
        // Find the n-th narrowable variable across all operators.
        size_t seen = 0;
        bool applied = false, exhausted = true;
        for (auto &inst : cand.graph.ops) {
            std::vector<bool> protect(inst.fn.vars.size(), false);
            collectProtectedVars(inst.fn.body, protect);
            for (size_t v = 0; v < inst.fn.vars.size(); ++v) {
                ir::Type &t = inst.fn.vars[v].type;
                if (protect[v] || t.width <= 1)
                    continue;
                exhausted = false;
                if (seen++ != n)
                    continue;
                int w = (t.width + 1) / 2;
                t.width = static_cast<uint8_t>(w);
                if (t.isFixed())
                    t.intBits = static_cast<int8_t>(
                        std::min<int>(t.intBits, w));
                else
                    t.intBits = static_cast<int8_t>(w);
                retypeOperator(inst.fn);
                applied = true;
                break;
            }
            if (applied)
                break;
        }
        (void)exhausted;
        if (!applied)
            break;
        if (tryCandidate(best, std::move(cand), still_fails, b))
            any = true; // same ordinal may narrow further
        else
            ++n;
    }
    return any;
}

bool
passZeroInputs(GenCase &best, const FailPredicate &still_fails,
               Budget &b)
{
    bool any = false;
    size_t n = 0;
    while (b.remaining > 0) {
        GenCase cand = cloneCase(best);
        size_t seen = 0;
        bool applied = false;
        for (auto &words : cand.inputs) {
            for (auto &w : words) {
                if (w == 0)
                    continue;
                if (seen++ != n)
                    continue;
                w = 0;
                applied = true;
                break;
            }
            if (applied)
                break;
        }
        if (!applied)
            break;
        if (tryCandidate(best, std::move(cand), still_fails, b))
            any = true; // word now zero; ordinal n indexes the next
        else
            ++n;
    }
    return any;
}

} // namespace

int
stmtCount(const ir::OperatorFn &fn)
{
    std::function<int(const std::vector<StmtPtr> &)> count =
        [&](const std::vector<StmtPtr> &list) {
            int n = 0;
            for (const auto &s : list) {
                ++n;
                n += count(s->body);
                n += count(s->elseBody);
            }
            return n;
        };
    return count(fn.body);
}

std::vector<std::vector<uint32_t>>
runOperatorStandalone(const ir::OperatorFn &fn,
                      const std::vector<std::vector<uint32_t>> &inputs)
{
    std::vector<std::unique_ptr<dataflow::WordFifo>> fifos;
    std::vector<std::unique_ptr<dataflow::StreamPort>> storage;
    std::vector<dataflow::StreamPort *> ports;
    std::vector<dataflow::WordFifo *> outFifos;

    size_t in_ord = 0;
    for (const auto &p : fn.ports) {
        fifos.push_back(std::make_unique<dataflow::WordFifo>(0));
        dataflow::WordFifo &f = *fifos.back();
        if (p.dir == ir::PortDir::In) {
            pld_assert(in_ord < inputs.size(),
                       "standalone run: missing input words");
            for (uint32_t w : inputs[in_ord++])
                f.push(w);
            storage.push_back(
                std::make_unique<dataflow::FifoReadPort>(f));
        } else {
            outFifos.push_back(&f);
            storage.push_back(
                std::make_unique<dataflow::FifoWritePort>(f));
        }
        ports.push_back(storage.back().get());
    }

    interp::OperatorExec exec(fn, ports);
    if (exec.run(100000000ull) != interp::RunStatus::Done)
        return {};

    std::vector<std::vector<uint32_t>> out;
    for (dataflow::WordFifo *f : outFifos) {
        std::vector<uint32_t> words;
        while (f->canPop())
            words.push_back(f->pop());
        out.push_back(std::move(words));
    }
    return out;
}

GenCase
shrinkCase(const GenCase &c, const FailPredicate &still_fails,
           int max_evals, ShrinkStats *stats)
{
    GenCase best = cloneCase(c);
    Budget b;
    b.remaining = max_evals;

    bool progress = true;
    while (progress && b.remaining > 0) {
        progress = false;
        progress |= passIsolateOperator(best, still_fails, b);
        progress |= passReduceRounds(best, still_fails, b);
        progress |= passDeleteStmts(best, still_fails, b);
        progress |= passHoistBodies(best, still_fails, b);
        progress |= passZeroExprs(best, still_fails, b);
        progress |= passNarrowWidths(best, still_fails, b);
        progress |= passZeroInputs(best, still_fails, b);
    }

    if (stats)
        *stats = b.stats;
    return best;
}

} // namespace fuzz
} // namespace pld
