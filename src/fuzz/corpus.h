/**
 * @file
 * On-disk corpus of minimized pldfuzz repros.
 *
 * Every divergence the fuzzer finds is shrunk and serialized into a
 * small text file: comment lines carrying provenance (seed, injected
 * bug, mismatch detail), the operator in the IR printer's textual
 * form, and one `inputs` line of hex words per input stream. The
 * files are committed under tests/fuzz/corpus/ and replayed as
 * ordinary gtest cases, so a once-found miscompile is a regression
 * test forever — the paper's incremental-refinement story applied to
 * the compiler itself.
 *
 * Corpus entries are single-operator by construction (the shrinker
 * isolates the failing operator before serialization).
 */

#ifndef PLD_FUZZ_CORPUS_H
#define PLD_FUZZ_CORPUS_H

#include <string>
#include <vector>

#include "fuzz/gen.h"

namespace pld {
namespace fuzz {

/**
 * Serialize a single-operator case. @p comment (may be multi-line)
 * is embedded as `#` lines. fatal()s on multi-operator cases.
 */
std::string serializeCase(const GenCase &c,
                          const std::string &comment);

/** Parse serializeCase() output back into a runnable case. */
GenCase parseCaseText(const std::string &text);

/** Load one corpus file. fatal()s if unreadable. */
GenCase loadCorpusFile(const std::string &path);

/** Write one corpus file (creates parent directories). */
void saveCorpusFile(const std::string &path, const GenCase &c,
                    const std::string &comment);

/** Sorted list of *.pldfuzz files under @p dir (empty if absent). */
std::vector<std::string> listCorpusFiles(const std::string &dir);

} // namespace fuzz
} // namespace pld

#endif // PLD_FUZZ_CORPUS_H
