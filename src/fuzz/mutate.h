/**
 * @file
 * IR cloning, retyping, and intentional-bug injection for pldfuzz.
 *
 * Expression and statement nodes are shared_ptr-owned and freely
 * shared between trees, so any transformation (the shrinker's passes,
 * bug injection) must deep-copy first. retypeOperator() re-derives
 * operator-node result types bottom-up through the shared
 * operatorResultType() rules after a pass changes declaration widths —
 * the same discipline the builder applies during construction.
 *
 * InjectedBug exists to prove the harness can actually catch and
 * shrink real divergences: each variant is a classic compiler bug
 * (missed sign extension, wrong opcode) applied to the softcore path
 * only, so the interpreter golden model disagrees.
 */

#ifndef PLD_FUZZ_MUTATE_H
#define PLD_FUZZ_MUTATE_H

#include "ir/graph.h"

namespace pld {
namespace fuzz {

/** Deep copy of an expression tree. */
ir::ExprPtr cloneExpr(const ir::ExprPtr &e);

/** Deep copy of a statement subtree. */
ir::StmtPtr cloneStmt(const ir::StmtPtr &s);

/** Deep copy of an operator (decls + body). */
ir::OperatorFn cloneOperator(const ir::OperatorFn &fn);

/** Deep copy of a graph (topology + all operator bodies). */
ir::Graph cloneGraph(const ir::Graph &g);

/**
 * Recompute expression result types bottom-up: VarRef/ArrayRef types
 * are refreshed from the declarations, operator nodes re-derive
 * through operatorResultType(), and the builder's structural casts
 * (assignment rhs to the variable type, array-store values to the
 * element type, select arms to a common type) are re-targeted. Call
 * after changing declaration types in place. The body must be
 * exclusively owned (clone first).
 */
void retypeOperator(ir::OperatorFn &fn);

/** Intentional semantic bugs for harness self-tests. */
enum class InjectedBug
{
    None,
    /**
     * Declare every signed variable unsigned without touching the
     * body: the softcore re-extends variables by declaration
     * signedness on every load, so negative values silently
     * zero-extend — the classic missed-sign-extension codegen bug.
     */
    DropSignExtend,
    /** Turn the first subtraction in the body into an addition. */
    SubToAdd,
};

const char *injectedBugName(InjectedBug b);

/**
 * Return a deep copy of @p fn with @p bug applied. Returns the plain
 * clone when the bug's pattern does not occur in @p fn (callers can
 * detect this via contentHash equality).
 */
ir::OperatorFn applyBug(const ir::OperatorFn &fn, InjectedBug bug);

} // namespace fuzz
} // namespace pld

#endif // PLD_FUZZ_MUTATE_H
