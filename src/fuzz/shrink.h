/**
 * @file
 * Greedy test-case shrinker for pldfuzz.
 *
 * Given a failing case and a predicate "does it still fail?", the
 * shrinker repeatedly applies reduction passes and keeps every
 * candidate the predicate accepts, iterating to a fixpoint:
 *
 *   1. isolate one operator out of a multi-operator graph (its input
 *      words are recovered by replaying the upstream operators in
 *      topological order on the interpreter),
 *   2. cut the streaming rounds (and input words) down,
 *   3. delete statements and hoist control-statement bodies,
 *   4. replace expression subtrees with typed zero constants,
 *   5. narrow declaration widths (re-deriving expression types), and
 *   6. zero input words.
 *
 * Candidates are validated before the predicate runs, so the shrinker
 * never leaves the disciplined-program space the generator promises.
 * Shrinking is deterministic: passes visit sites in a fixed order.
 */

#ifndef PLD_FUZZ_SHRINK_H
#define PLD_FUZZ_SHRINK_H

#include <functional>

#include "fuzz/gen.h"

namespace pld {
namespace fuzz {

/** Returns true when the candidate still exhibits the failure. */
using FailPredicate = std::function<bool(const GenCase &)>;

struct ShrinkStats
{
    int evals = 0;    ///< predicate invocations
    int accepted = 0; ///< candidates kept
};

/**
 * Shrink @p c while @p still_fails holds, evaluating the predicate at
 * most @p max_evals times. Returns the smallest accepted case.
 */
GenCase shrinkCase(const GenCase &c, const FailPredicate &still_fails,
                   int max_evals = 2000,
                   ShrinkStats *stats = nullptr);

/** Total statement count of an operator body (repro-size metric). */
int stmtCount(const ir::OperatorFn &fn);

/**
 * Replay @p fn standalone on the interpreter with @p inputs preloaded
 * per input port. Returns one word vector per output port; empty
 * result on deadlock.
 */
std::vector<std::vector<uint32_t>>
runOperatorStandalone(const ir::OperatorFn &fn,
                      const std::vector<std::vector<uint32_t>> &inputs);

} // namespace fuzz
} // namespace pld

#endif // PLD_FUZZ_SHRINK_H
