#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "fuzz/mutate.h"
#include "ir/printer.h"

namespace pld {
namespace fuzz {

std::string
serializeCase(const GenCase &c, const std::string &comment)
{
    pld_assert(c.graph.ops.size() == 1,
               "corpus entries are single-operator");
    std::ostringstream os;
    std::istringstream cs(comment);
    std::string line;
    while (std::getline(cs, line))
        os << "# " << line << "\n";
    os << "# seed=" << c.seed << "\n";
    os << ir::printOperator(c.graph.ops[0].fn);
    char buf[16];
    for (size_t i = 0; i < c.inputs.size(); ++i) {
        os << "inputs " << c.graph.extInputs[i] << ":";
        for (uint32_t w : c.inputs[i]) {
            std::snprintf(buf, sizeof buf, " %08x", w);
            os << buf;
        }
        os << "\n";
    }
    return os.str();
}

GenCase
parseCaseText(const std::string &text)
{
    // Split the `inputs` trailer from the operator body; remember the
    // seed comment if present.
    std::istringstream is(text);
    std::string line, opText;
    std::vector<std::vector<uint32_t>> inputs;
    uint64_t seed = 0;
    while (std::getline(is, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.rfind("# seed=", 0) == 0) {
            seed = std::strtoull(line.c_str() + 7, nullptr, 10);
            continue;
        }
        if (line.rfind("inputs ", 0) == 0) {
            size_t colon = line.find(':');
            pld_assert(colon != std::string::npos,
                       "corpus: malformed inputs line '%s'",
                       line.c_str());
            std::istringstream ws(line.substr(colon + 1));
            std::vector<uint32_t> words;
            std::string tok;
            while (ws >> tok)
                words.push_back(static_cast<uint32_t>(
                    std::strtoul(tok.c_str(), nullptr, 16)));
            inputs.push_back(std::move(words));
            continue;
        }
        opText += line;
        opText += "\n";
    }

    ir::OperatorFn fn = ir::parseOperator(opText);
    pld_assert(static_cast<int>(inputs.size()) == fn.numInputs(),
               "corpus: %zu inputs lines for %d input ports",
               inputs.size(), fn.numInputs());

    GenCase c;
    c.seed = seed;
    c.rounds = inputs.empty()
                   ? 1
                   : static_cast<int>(inputs[0].size());
    ir::GraphBuilder gb("fuzz_corpus");
    std::vector<ir::GraphBuilder::WireId> ins, outs;
    for (int p = 0; p < fn.numInputs(); ++p)
        ins.push_back(gb.extIn("src" + std::to_string(p)));
    for (int p = 0; p < fn.numOutputs(); ++p)
        outs.push_back(gb.extOut("dst" + std::to_string(p)));
    gb.inst(fn, ins, outs);
    c.graph = gb.finish();
    c.inputs = std::move(inputs);
    return c;
}

GenCase
loadCorpusFile(const std::string &path)
{
    std::ifstream f(path);
    pld_assert(f.good(), "corpus: cannot read '%s'", path.c_str());
    std::ostringstream os;
    os << f.rdbuf();
    return parseCaseText(os.str());
}

void
saveCorpusFile(const std::string &path, const GenCase &c,
               const std::string &comment)
{
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    std::ofstream f(path);
    pld_assert(f.good(), "corpus: cannot write '%s'", path.c_str());
    f << serializeCase(c, comment);
}

std::vector<std::string>
listCorpusFiles(const std::string &dir)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".pldfuzz")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace fuzz
} // namespace pld
