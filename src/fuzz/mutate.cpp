#include "fuzz/mutate.h"

#include "common/logging.h"

namespace pld {
namespace fuzz {

using ir::ExprKind;
using ir::ExprPtr;
using ir::StmtKind;
using ir::StmtPtr;
using ir::Type;

ExprPtr
cloneExpr(const ExprPtr &e)
{
    ExprPtr c = ir::makeExpr(e->kind, e->type, {}, e->imm);
    c->args.reserve(e->args.size());
    for (const auto &a : e->args)
        c->args.push_back(cloneExpr(a));
    return c;
}

StmtPtr
cloneStmt(const StmtPtr &s)
{
    StmtPtr c = ir::makeStmt(s->kind);
    c->imm = s->imm;
    c->immLo = s->immLo;
    c->immHi = s->immHi;
    c->immStep = s->immStep;
    c->tripEstimate = s->tripEstimate;
    c->text = s->text;
    for (const auto &e : s->args)
        c->args.push_back(cloneExpr(e));
    for (const auto &b : s->body)
        c->body.push_back(cloneStmt(b));
    for (const auto &b : s->elseBody)
        c->elseBody.push_back(cloneStmt(b));
    return c;
}

ir::OperatorFn
cloneOperator(const ir::OperatorFn &fn)
{
    ir::OperatorFn c;
    c.name = fn.name;
    c.ports = fn.ports;
    c.vars = fn.vars;
    c.arrays = fn.arrays;
    c.pragma = fn.pragma;
    for (const auto &s : fn.body)
        c.body.push_back(cloneStmt(s));
    return c;
}

ir::Graph
cloneGraph(const ir::Graph &g)
{
    ir::Graph c(g.name);
    c.extInputs = g.extInputs;
    c.extOutputs = g.extOutputs;
    c.links = g.links;
    for (const auto &inst : g.ops)
        c.ops.push_back({inst.instName, cloneOperator(inst.fn)});
    return c;
}

namespace {

/** Bottom-up retype of one tree against @p fn's declarations. */
void
retypeExpr(const ir::OperatorFn &fn, const ExprPtr &e)
{
    for (const auto &a : e->args)
        retypeExpr(fn, a);

    switch (e->kind) {
      case ExprKind::Const:
      case ExprKind::Cast:
      case ExprKind::BitCast:
        return; // explicit types survive retyping
      case ExprKind::VarRef:
        pld_assert(e->imm >= 0 &&
                       e->imm < static_cast<int64_t>(fn.vars.size()),
                   "retype: bad var index");
        e->type = fn.vars[e->imm].type;
        return;
      case ExprKind::ArrayRef:
        pld_assert(e->imm >= 0 &&
                       e->imm <
                           static_cast<int64_t>(fn.arrays.size()),
                   "retype: bad array index");
        e->type = fn.arrays[e->imm].elemType;
        return;
      case ExprKind::StreamRead: e->type = Type::word(); return;
      case ExprKind::Select:
        // The builder casts the else-arm to the then-arm's type.
        if (e->args[2]->kind == ExprKind::Cast)
            e->args[2]->type = e->args[1]->type;
        e->type = ir::operatorResultType(e->kind, e->args);
        return;
      default:
        e->type = ir::operatorResultType(e->kind, e->args);
        return;
    }
}

void
retypeStmts(ir::OperatorFn &fn, const std::vector<StmtPtr> &stmts)
{
    for (const auto &s : stmts) {
        for (const auto &e : s->args)
            retypeExpr(fn, e);
        switch (s->kind) {
          case StmtKind::Assign:
            // set() always casts the rhs to the variable's type.
            if (!s->args.empty() &&
                s->args[0]->kind == ExprKind::Cast)
                s->args[0]->type = fn.vars[s->imm].type;
            break;
          case StmtKind::ArrayStore:
            if (s->args.size() > 1 &&
                s->args[1]->kind == ExprKind::Cast)
                s->args[1]->type = fn.arrays[s->imm].elemType;
            break;
          default: break;
        }
        retypeStmts(fn, s->body);
        retypeStmts(fn, s->elseBody);
    }
}

/** Flip the first Sub found in the subtree to Add; true on success. */
bool
flipFirstSub(const ExprPtr &e)
{
    if (e->kind == ExprKind::Sub) {
        e->kind = ExprKind::Add;
        return true;
    }
    for (const auto &a : e->args)
        if (flipFirstSub(a))
            return true;
    return false;
}

bool
flipFirstSubInStmts(const std::vector<StmtPtr> &stmts)
{
    for (const auto &s : stmts) {
        for (const auto &e : s->args)
            if (flipFirstSub(e))
                return true;
        if (flipFirstSubInStmts(s->body))
            return true;
        if (flipFirstSubInStmts(s->elseBody))
            return true;
    }
    return false;
}

} // namespace

void
retypeOperator(ir::OperatorFn &fn)
{
    retypeStmts(fn, fn.body);
}

const char *
injectedBugName(InjectedBug b)
{
    switch (b) {
      case InjectedBug::None: return "none";
      case InjectedBug::DropSignExtend: return "drop-sign-extend";
      case InjectedBug::SubToAdd: return "sub-to-add";
    }
    return "?";
}

ir::OperatorFn
applyBug(const ir::OperatorFn &fn, InjectedBug bug)
{
    ir::OperatorFn c = cloneOperator(fn);
    switch (bug) {
      case InjectedBug::None:
        break;
      case InjectedBug::DropSignExtend:
        // Deliberately do NOT retype the body: the bug models a
        // codegen that loses the sign-extension on variable loads,
        // which is exactly what unsigned declarations cause on the
        // softcore while the interpreter keeps using the (unchanged)
        // expression types.
        for (auto &v : c.vars) {
            if (v.type.kind == ir::TypeKind::Int)
                v.type.kind = ir::TypeKind::UInt;
            else if (v.type.kind == ir::TypeKind::Fixed)
                v.type.kind = ir::TypeKind::UFixed;
        }
        break;
      case InjectedBug::SubToAdd:
        flipFirstSubInStmts(c.body);
        break;
    }
    return c;
}

} // namespace fuzz
} // namespace pld
