/**
 * @file
 * Seeded random program generator for pldfuzz (see gen.h).
 *
 * The generator is deliberately conservative about *which* programs it
 * emits — it mirrors the OpBuilder typing discipline exactly — but
 * aggressive about the values flowing through them: odd widths, mixed
 * signedness, fixed-point formats with zero integer bits, boundary
 * constants, and inputs biased toward sign/overflow edges. The
 * cross-target contract only covers disciplined programs, so anything
 * outside the discipline would just produce noise mismatches.
 */

#include "fuzz/gen.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "ir/printer.h"

namespace pld {
namespace fuzz {

int64_t
canonicalRaw(uint64_t bits, const ir::Type &t)
{
    uint64_t mask =
        (t.width >= 64) ? ~0ull : ((1ull << t.width) - 1ull);
    uint64_t v = bits & mask;
    if (t.isSigned() && t.width < 64 && ((v >> (t.width - 1)) & 1))
        v |= ~mask;
    return static_cast<int64_t>(v);
}

namespace {

using ir::ExprKind;
using ir::ExprPtr;
using ir::OperatorFn;
using ir::StmtKind;
using ir::StmtPtr;
using ir::Type;

int
log2exact(int64_t size)
{
    int k = 0;
    while ((int64_t(1) << k) < size)
        ++k;
    pld_assert((int64_t(1) << k) == size,
               "fuzz arrays must be power-of-two sized");
    return k;
}

/** One operator body under construction. */
class OpGen
{
  public:
    OpGen(Rng &rng, const GenConfig &cfg) : rng(rng), cfg(cfg) {}

    OperatorFn
    run(const std::string &name, int num_in, int num_out, int rounds)
    {
        fn = OperatorFn{};
        fn.name = name;
        readable.clear();
        assignable.clear();

        for (int i = 0; i < num_in; ++i)
            fn.ports.push_back(
                {"in" + std::to_string(i), ir::PortDir::In});
        for (int i = 0; i < num_out; ++i)
            fn.ports.push_back(
                {"out" + std::to_string(i), ir::PortDir::Out});

        genArrays();

        // One landing variable per input port (reads are dedicated
        // assignment statements; the validator demands it).
        std::vector<int> readVars;
        for (int i = 0; i < num_in; ++i)
            readVars.push_back(
                newVar("r" + std::to_string(i), storageType(), true));

        int scratch = static_cast<int>(rng.below(cfg.maxVars + 1));
        for (int i = 0; i < scratch; ++i)
            newVar("x" + std::to_string(i), storageType(), true);

        // The streaming round loop: every port moves one word per
        // iteration so arbitrary compositions stay rate-matched.
        int loopVar = newVar("i", Type::s(32), false);
        auto loop = ir::makeStmt(StmtKind::For);
        loop->imm = loopVar;
        loop->immLo = 0;
        loop->immHi = rounds;
        loop->immStep = 1;

        for (int i = 0; i < num_in; ++i) {
            const Type &vt = fn.vars[readVars[i]].type;
            ExprPtr rd = ir::makeExpr(ExprKind::StreamRead,
                                      Type::word(), {}, i);
            ExprPtr as_t = ir::makeExpr(ExprKind::BitCast, vt, {rd});
            auto st = ir::makeStmt(StmtKind::Assign);
            st->imm = readVars[i];
            st->args = {ir::makeExpr(ExprKind::Cast, vt, {as_t})};
            loop->body.push_back(st);
        }

        int n = 1 + static_cast<int>(rng.below(cfg.maxStmtsPerRound));
        genStmts(loop->body, /*depth=*/0, n);

        for (int i = 0; i < num_out; ++i) {
            auto st = ir::makeStmt(StmtKind::StreamWrite);
            st->imm = num_in + i;
            st->args = {ir::makeExpr(ExprKind::BitCast, Type::word(),
                                     {genExpr(0)})};
            loop->body.push_back(st);
        }

        fn.body.push_back(loop);
        return fn;
    }

  private:
    // ---- declarations -------------------------------------------

    int
    newVar(const std::string &name, Type t, bool can_assign)
    {
        int idx = static_cast<int>(fn.vars.size());
        fn.vars.push_back({name, t});
        readable.push_back(idx);
        if (can_assign)
            assignable.push_back(idx);
        return idx;
    }

    void
    genArrays()
    {
        int n = static_cast<int>(rng.below(cfg.maxArrays + 1));
        for (int i = 0; i < n; ++i) {
            ir::ArrayDecl a;
            a.name = "m" + std::to_string(i);
            a.elemType = storageType();
            a.size = int64_t(1) << (1 + rng.below(3)); // 2, 4, 8
            if (rng.chance(0.4)) {
                for (int64_t j = 0; j < a.size; ++j)
                    a.init.push_back(constRaw(a.elemType));
            }
            fn.arrays.push_back(std::move(a));
        }
    }

    /** Random declared-storage type (width 1..32). */
    Type
    storageType()
    {
        static const int kWidths[] = {1,  2,  3,  4,  5,  7,  8, 12,
                                      16, 17, 20, 24, 27, 31, 32};
        int w = kWidths[rng.below(sizeof(kWidths) / sizeof(int))];
        bool sign = rng.chance(0.5);
        if (cfg.allowFixed && w >= 2 && rng.chance(0.35)) {
            int ib = static_cast<int>(rng.range(0, w));
            return sign ? Type::fx(w, ib) : Type::ufx(w, ib);
        }
        return sign ? Type::s(w) : Type::u(w);
    }

    // ---- statements ---------------------------------------------

    void
    genStmts(std::vector<StmtPtr> &out, int depth, int count)
    {
        for (int i = 0; i < count; ++i)
            genStmt(out, depth);
    }

    void
    genStmt(std::vector<StmtPtr> &out, int depth)
    {
        bool control_ok = depth < cfg.maxControlDepth;
        int roll = static_cast<int>(rng.below(12));
        if (roll < 4) {
            out.push_back(genAssign());
        } else if (roll < 6 && haveRwArray()) {
            out.push_back(genArrayStore());
        } else if (roll < 8 && control_ok) {
            out.push_back(genIf(depth));
        } else if (roll < 9 && control_ok) {
            out.push_back(genFor(depth));
        } else if (roll < 10 && control_ok && cfg.allowWhile) {
            genWhile(out, depth);
        } else if (roll < 11 && cfg.allowPrint && rng.chance(0.3)) {
            out.push_back(genPrint());
        } else {
            out.push_back(genAssign());
        }
    }

    StmtPtr
    genAssign()
    {
        int v = assignable[rng.below(assignable.size())];
        const Type &vt = fn.vars[v].type;
        auto st = ir::makeStmt(StmtKind::Assign);
        st->imm = v;
        // The builder's set() always casts the rhs to the variable
        // type; the interpreter stores rhs verbatim, so this cast is
        // what makes stores agree with softcore re-extension.
        st->args = {ir::makeExpr(ExprKind::Cast, vt, {genExpr(0)})};
        return st;
    }

    bool
    haveRwArray() const
    {
        for (const auto &a : fn.arrays)
            if (!a.isRom())
                return true;
        return false;
    }

    StmtPtr
    genArrayStore()
    {
        std::vector<int> rw;
        for (size_t i = 0; i < fn.arrays.size(); ++i)
            if (!fn.arrays[i].isRom())
                rw.push_back(static_cast<int>(i));
        int a = rw[rng.below(rw.size())];
        const ir::ArrayDecl &decl = fn.arrays[a];
        auto st = ir::makeStmt(StmtKind::ArrayStore);
        st->imm = a;
        st->args = {maskedIndex(decl),
                    ir::makeExpr(ExprKind::Cast, decl.elemType,
                                 {genExpr(0)})};
        return st;
    }

    StmtPtr
    genIf(int depth)
    {
        auto st = ir::makeStmt(StmtKind::If);
        st->args = {genCond(0)};
        genStmts(st->body, depth + 1,
                 1 + static_cast<int>(rng.below(2)));
        if (rng.chance(0.5))
            genStmts(st->elseBody, depth + 1,
                     1 + static_cast<int>(rng.below(2)));
        return st;
    }

    StmtPtr
    genFor(int depth)
    {
        // Fresh counter per loop: the post-loop counter value is not
        // part of the cross-target contract, so it is only readable
        // inside its own body.
        int v = newVar("j" + std::to_string(fn.vars.size()),
                       Type::s(32), false);
        auto st = ir::makeStmt(StmtKind::For);
        st->imm = v;
        st->immLo = rng.below(3);
        st->immHi = st->immLo + 1 + rng.below(3);
        st->immStep = 1 + rng.below(2);
        genStmts(st->body, depth + 1,
                 1 + static_cast<int>(rng.below(2)));
        readable.pop_back();
        return st;
    }

    void
    genWhile(std::vector<StmtPtr> &out, int depth)
    {
        // Counter-bounded pattern so every generated while
        // terminates: c = N; while (c > 0) { ...; c = c - 1; }
        int c = newVar("w" + std::to_string(fn.vars.size()),
                       Type::s(32), false);
        int n = 1 + static_cast<int>(rng.below(3));

        auto init = ir::makeStmt(StmtKind::Assign);
        init->imm = c;
        init->args = {ir::makeExpr(
            ExprKind::Cast, Type::s(32),
            {ir::makeConst(Type::s(32), n)})};
        out.push_back(init);

        auto st = ir::makeStmt(StmtKind::While);
        ExprPtr cv = ir::makeExpr(ExprKind::VarRef, Type::s(32), {}, c);
        st->args = {ir::makeExpr(ExprKind::Gt, Type::boolean(),
                                 {cv, ir::makeConst(Type::s(32), 0)})};
        st->tripEstimate = n;
        genStmts(st->body, depth + 1,
                 1 + static_cast<int>(rng.below(2)));
        auto dec = ir::makeStmt(StmtKind::Assign);
        dec->imm = c;
        dec->args = {ir::makeExpr(
            ExprKind::Cast, Type::s(32),
            {typedOp(ExprKind::Sub,
                     {cv, ir::makeConst(Type::s(32), 1)})})};
        st->body.push_back(dec);
        out.push_back(st);
        readable.pop_back();
    }

    StmtPtr
    genPrint()
    {
        auto st = ir::makeStmt(StmtKind::Print);
        st->text = "trace";
        int n = static_cast<int>(rng.below(3));
        for (int i = 0; i < n && !readable.empty(); ++i) {
            int v = readable[rng.below(readable.size())];
            st->args.push_back(ir::makeExpr(
                ExprKind::VarRef, fn.vars[v].type, {}, v));
        }
        return st;
    }

    // ---- expressions --------------------------------------------

    ExprPtr
    genExpr(int depth)
    {
        if (depth >= cfg.maxExprDepth || rng.chance(0.3))
            return genLeaf();

        int roll = static_cast<int>(rng.below(26));
        if (roll < 3)
            return binOp(ExprKind::Add, depth);
        if (roll < 6)
            return binOp(ExprKind::Sub, depth);
        if (roll < 8)
            return binOp(ExprKind::Mul, depth);
        if (roll < 9)
            return genDiv(depth);
        if (roll < 10)
            return genMod(depth);
        if (roll < 11)
            return binOp(ExprKind::And, depth);
        if (roll < 12)
            return binOp(ExprKind::Or, depth);
        if (roll < 13)
            return binOp(ExprKind::Xor, depth);
        if (roll < 15)
            return genShift(depth);
        if (roll < 17)
            return genCond(depth);
        if (roll < 18)
            return unOp(ExprKind::Neg, depth);
        if (roll < 19)
            return unOp(ExprKind::Not, depth);
        if (roll < 20)
            return unOp(ExprKind::LNot, depth);
        if (roll < 22)
            return ir::makeExpr(ExprKind::Cast, storageType(),
                                {genExpr(depth + 1)});
        if (roll < 23)
            return ir::makeExpr(ExprKind::BitCast, storageType(),
                                {genExpr(depth + 1)});
        return genSelect(depth);
    }

    ExprPtr
    typedOp(ExprKind k, std::vector<ExprPtr> args)
    {
        Type t = ir::operatorResultType(k, args);
        return ir::makeExpr(k, t, std::move(args));
    }

    ExprPtr
    binOp(ExprKind k, int depth)
    {
        return typedOp(k, {genExpr(depth + 1), genExpr(depth + 1)});
    }

    ExprPtr
    unOp(ExprKind k, int depth)
    {
        return typedOp(k, {genExpr(depth + 1)});
    }

    /** Division operands must be <= 32 bits (softcore divider). */
    ExprPtr
    narrow32(ExprPtr e)
    {
        if (e->type.width <= 32)
            return e;
        return ir::makeExpr(ExprKind::Cast, storageType(), {e});
    }

    ExprPtr
    genDiv(int depth)
    {
        return typedOp(ExprKind::Div, {narrow32(genExpr(depth + 1)),
                                       narrow32(genExpr(depth + 1))});
    }

    ExprPtr
    genMod(int depth)
    {
        ExprPtr a = genExpr(depth + 1);
        ExprPtr b = genExpr(depth + 1);
        if (a->type.isSigned() != b->type.isSigned()) {
            // Flip b's signedness in place (targets disagree on
            // mixed-sign remainders, so the validator forbids them).
            Type t = b->type;
            switch (t.kind) {
              case ir::TypeKind::UInt: t.kind = ir::TypeKind::Int; break;
              case ir::TypeKind::Int: t.kind = ir::TypeKind::UInt; break;
              case ir::TypeKind::UFixed:
                t.kind = ir::TypeKind::Fixed;
                break;
              case ir::TypeKind::Fixed:
                t.kind = ir::TypeKind::UFixed;
                break;
            }
            b = ir::makeExpr(ExprKind::Cast, t, {b});
        }
        return typedOp(ExprKind::Mod, {a, b});
    }

    ExprPtr
    genShift(int depth)
    {
        ExprKind k = rng.chance(0.5) ? ExprKind::Shl : ExprKind::Shr;
        // Shift amounts are compile-time constants on every target.
        ExprPtr amt = ir::makeConst(
            Type::s(32), static_cast<int64_t>(rng.below(32)));
        return typedOp(k, {genExpr(depth + 1), amt});
    }

    ExprPtr
    genSelect(int depth)
    {
        ExprPtr a = genExpr(depth + 1);
        ExprPtr b = ir::makeExpr(ExprKind::Cast, a->type,
                                 {genExpr(depth + 1)});
        return typedOp(ExprKind::Select, {genCond(depth + 1), a, b});
    }

    /** Boolean-ish expression for if/while/select conditions. */
    ExprPtr
    genCond(int depth)
    {
        static const ExprKind kCmp[] = {ExprKind::Lt, ExprKind::Le,
                                        ExprKind::Gt, ExprKind::Ge,
                                        ExprKind::Eq, ExprKind::Ne};
        int roll = static_cast<int>(rng.below(9));
        if (roll < 6)
            return typedOp(kCmp[roll],
                           {genExpr(depth + 1), genExpr(depth + 1)});
        if (roll < 7 && depth + 1 < cfg.maxExprDepth)
            return typedOp(ExprKind::LAnd,
                           {genCond(depth + 1), genCond(depth + 1)});
        if (roll < 8 && depth + 1 < cfg.maxExprDepth)
            return typedOp(ExprKind::LOr,
                           {genCond(depth + 1), genCond(depth + 1)});
        return typedOp(ExprKind::LNot, {genExpr(depth + 1)});
    }

    ExprPtr
    genLeaf()
    {
        int roll = static_cast<int>(rng.below(9));
        if (roll < 2 && !fn.arrays.empty()) {
            int a = static_cast<int>(rng.below(fn.arrays.size()));
            const ir::ArrayDecl &decl = fn.arrays[a];
            return ir::makeExpr(ExprKind::ArrayRef, decl.elemType,
                                {maskedIndex(decl)}, a);
        }
        if (roll < 6 && !readable.empty()) {
            int v = readable[rng.below(readable.size())];
            return ir::makeExpr(ExprKind::VarRef, fn.vars[v].type, {},
                                v);
        }
        Type t = storageType();
        return ir::makeConst(t, constRaw(t));
    }

    /** Array indices are masked to the (power-of-two) size so every
     *  access is in bounds on every target. */
    ExprPtr
    maskedIndex(const ir::ArrayDecl &decl)
    {
        int k = log2exact(decl.size);
        ExprPtr inner;
        if (!readable.empty() && rng.chance(0.6)) {
            int v = readable[rng.below(readable.size())];
            inner = ir::makeExpr(ExprKind::VarRef, fn.vars[v].type,
                                 {}, v);
        } else {
            inner = ir::makeConst(
                Type::u(8), static_cast<int64_t>(rng.below(256)));
        }
        return ir::makeExpr(ExprKind::Cast, Type::u(k), {inner});
    }

    /** Canonical constant raw bits, biased toward boundary values. */
    int64_t
    constRaw(const Type &t)
    {
        int roll = static_cast<int>(rng.below(8));
        uint64_t bits;
        switch (roll) {
          case 0: bits = 0; break;
          case 1: bits = 1ull << t.fracBits(); break; // value 1
          case 2: bits = ~0ull; break;                // all ones
          case 3:
            bits = 1ull << (t.width - 1); // sign/overflow edge
            break;
          case 4:
          case 5:
            // Small scaled value in [-4, 4].
            bits = static_cast<uint64_t>(rng.range(-4, 4))
                   << t.fracBits();
            break;
          default: bits = rng.next(); break;
        }
        return canonicalRaw(bits, t);
    }

    Rng &rng;
    const GenConfig &cfg;
    OperatorFn fn;
    std::vector<int> readable;
    std::vector<int> assignable;
};

} // namespace

OperatorFn
generateOperator(Rng &rng, const GenConfig &cfg,
                 const std::string &name, int num_in, int num_out,
                 int rounds)
{
    return OpGen(rng, cfg).run(name, num_in, num_out, rounds);
}

std::vector<uint32_t>
generateInputWords(Rng &rng, size_t count)
{
    std::vector<uint32_t> words;
    words.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        switch (rng.below(8)) {
          case 0: words.push_back(0); break;
          case 1: words.push_back(0xFFFFFFFFu); break;
          case 2: words.push_back(0x80000000u); break;
          case 3: words.push_back(0x7FFFFFFFu); break;
          case 4:
          case 5:
            words.push_back(static_cast<uint32_t>(rng.below(16)));
            break;
          default:
            words.push_back(static_cast<uint32_t>(rng.next()));
            break;
        }
    }
    return words;
}

GenCase
generateCase(uint64_t seed, const GenConfig &cfg)
{
    Rng rng(seed);
    GenCase c;
    c.seed = seed;
    c.rounds = 1 + static_cast<int>(rng.below(cfg.maxRounds));

    ir::GraphBuilder gb("fuzz_app");
    int shape = cfg.allowMultiOp ? static_cast<int>(rng.below(10)) : 0;
    if (shape < 5) {
        // Single operator, 1-2 inputs and outputs.
        int nin = 1 + static_cast<int>(rng.below(2));
        int nout = 1 + static_cast<int>(rng.below(2));
        std::vector<ir::GraphBuilder::WireId> ins, outs;
        for (int i = 0; i < nin; ++i)
            ins.push_back(gb.extIn("src" + std::to_string(i)));
        for (int i = 0; i < nout; ++i)
            outs.push_back(gb.extOut("dst" + std::to_string(i)));
        gb.inst(generateOperator(rng, cfg, "fz0", nin, nout,
                                 c.rounds),
                ins, outs);
    } else if (shape < 8) {
        // Chain of 2-3 single-stream operators.
        int len = 2 + static_cast<int>(rng.below(2));
        auto w = gb.extIn("src0");
        for (int i = 0; i < len; ++i) {
            auto next = (i == len - 1) ? gb.extOut("dst0") : gb.wire();
            gb.inst(generateOperator(rng, cfg,
                                     "fz" + std::to_string(i), 1, 1,
                                     c.rounds),
                    {w}, {next});
            w = next;
        }
    } else {
        // Fork/join diamond: split -> two mids -> join.
        auto in = gb.extIn("src0");
        auto out = gb.extOut("dst0");
        auto u1 = gb.wire(), u2 = gb.wire();
        auto d1 = gb.wire(), d2 = gb.wire();
        gb.inst(generateOperator(rng, cfg, "fz0", 1, 2, c.rounds),
                {in}, {u1, u2});
        gb.inst(generateOperator(rng, cfg, "fz1", 1, 1, c.rounds),
                {u1}, {d1});
        gb.inst(generateOperator(rng, cfg, "fz2", 1, 1, c.rounds),
                {u2}, {d2});
        gb.inst(generateOperator(rng, cfg, "fz3", 2, 1, c.rounds),
                {d1, d2}, {out});
    }
    c.graph = gb.finish();

    for (size_t i = 0; i < c.graph.extInputs.size(); ++i)
        c.inputs.push_back(
            generateInputWords(rng, static_cast<size_t>(c.rounds)));
    return c;
}

std::string
GenCase::dump() const
{
    std::ostringstream os;
    os << "# pldfuzz case seed=" << seed << " rounds=" << rounds
       << "\n";
    for (const auto &op : graph.ops)
        os << ir::printOperator(op.fn);
    for (size_t i = 0; i < inputs.size(); ++i) {
        os << "inputs " << graph.extInputs[i] << ":";
        char buf[16];
        for (uint32_t w : inputs[i]) {
            std::snprintf(buf, sizeof buf, " %08x", w);
            os << buf;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace fuzz
} // namespace pld
