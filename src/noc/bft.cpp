#include "noc/bft.h"

#include "common/logging.h"

namespace pld {
namespace noc {

using dataflow::FifoReadPort;
using dataflow::FifoWritePort;

namespace {

int
roundUpPow2(int v)
{
    int p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

BftNoc::BftNoc(int num_leaves, int ports_per_leaf, size_t fifo_depth)
    : nLeaves(roundUpPow2(std::max(2, num_leaves))),
      nPorts(ports_per_leaf), fifoDepth(fifo_depth)
{
    leaves.resize(nLeaves);
    for (auto &leaf : leaves) {
        for (int p = 0; p < nPorts; ++p) {
            leaf.inFifos.emplace_back(fifoDepth);
            leaf.outFifos.emplace_back(fifoDepth);
        }
        leaf.destReg.assign(nPorts, {-1, -1});
        leaf.inflight.assign(nPorts, 0);
        leaf.skid.assign(nPorts, Flit{});
    }

    // Heap-shaped binary tree: switch 0 is the root over [0, L).
    int num_switches = nLeaves - 1;
    switches.resize(num_switches);
    // Build ranges breadth-first.
    switches[0].lo = 0;
    switches[0].hi = nLeaves;
    switches[0].parent = -1;
    for (int i = 0; i < num_switches; ++i) {
        Switch &s = switches[i];
        int span = s.hi - s.lo;
        if (span > 2) {
            s.left = 2 * i + 1;
            s.right = 2 * i + 2;
            switches[s.left].lo = s.lo;
            switches[s.left].hi = s.lo + span / 2;
            switches[s.left].parent = i;
            switches[s.right].lo = s.lo + span / 2;
            switches[s.right].hi = s.hi;
            switches[s.right].parent = i;
        } else {
            s.left = -1; // children are leaves lo and lo+1
            s.right = -1;
        }
    }
}

int
BftNoc::leafParent(int leaf) const
{
    // Bottom-level switches are the last nLeaves/2 heap entries.
    return (nLeaves - 1) - nLeaves / 2 + leaf / 2;
}

void
BftNoc::setRoute(int leaf, int out_port, int dst_leaf, int dst_port)
{
    leaves[leaf].destReg[out_port] = {dst_leaf, dst_port};
}

void
BftNoc::sendConfig(int src_leaf, int dst_leaf, int out_port,
                   int route_leaf, int route_port)
{
    Flit f;
    f.valid = true;
    f.config = true;
    f.dstLeaf = static_cast<uint16_t>(dst_leaf);
    f.dstPort = static_cast<uint8_t>(out_port);
    f.data = (static_cast<uint32_t>(route_leaf) << 8) |
             static_cast<uint32_t>(route_port & 0xFF);
    leaves[src_leaf].pendingConfig.push_back(f);
}

dataflow::StreamPort *
BftNoc::inPort(int leaf, int port)
{
    portWrappers.push_back(
        std::make_unique<FifoReadPort>(leaves[leaf].inFifos[port]));
    return portWrappers.back().get();
}

dataflow::StreamPort *
BftNoc::outPort(int leaf, int port)
{
    portWrappers.push_back(
        std::make_unique<FifoWritePort>(leaves[leaf].outFifos[port]));
    return portWrappers.back().get();
}

void
BftNoc::stepCycle()
{
    // Snapshot last cycle's link registers without reallocating:
    // static topology fields are identical in both buffers, so a
    // swap is a valid snapshot.
    scratch.swap(switches);
    if (switches.size() != scratch.size())
        switches = scratch; // first cycle: clone topology
    const std::vector<Switch> &old = scratch;

    // Leaf injection slots for this cycle.
    if (injectScratch.size() != static_cast<size_t>(nLeaves))
        injectScratch.assign(nLeaves, Flit{});
    std::vector<Flit> &inject = injectScratch;
    for (auto &f : inject)
        f.valid = false;

    for (int li = 0; li < nLeaves; ++li) {
        Leaf &leaf = leaves[li];

        // Drain skid buffers into input FIFOs, returning credits.
        for (int p = 0; p < nPorts; ++p) {
            Flit &held = leaf.skid[p];
            if (held.valid && leaf.inFifos[p].canPush()) {
                leaf.inFifos[p].push(held.data);
                ++stats_.delivered;
                stats_.totalHops += held.age;
                leaves[held.srcLeaf].inflight[held.srcPort] = 0;
                held.valid = false;
            }
        }

        // Injection priority: deflected flit, config, then data
        // (round-robin over output ports).
        if (leaf.reinsert.valid) {
            inject[li] = leaf.reinsert;
            leaf.reinsert.valid = false;
        } else if (!leaf.pendingConfig.empty() &&
                   leaf.configInflight == 0) {
            inject[li] = leaf.pendingConfig.front();
            inject[li].srcLeaf = static_cast<uint16_t>(li);
            leaf.pendingConfig.erase(leaf.pendingConfig.begin());
            leaf.configInflight = 1;
            ++stats_.injected;
        } else {
            for (int k = 0; k < nPorts; ++k) {
                int p = (leaf.rrNext + k) % nPorts;
                if (leaf.outFifos[p].canPop() &&
                    leaf.destReg[p].first >= 0 &&
                    leaf.inflight[p] == 0) {
                    Flit f;
                    f.valid = true;
                    f.dstLeaf = static_cast<uint16_t>(
                        leaf.destReg[p].first);
                    f.dstPort = static_cast<uint8_t>(
                        leaf.destReg[p].second);
                    f.srcLeaf = static_cast<uint16_t>(li);
                    f.srcPort = static_cast<uint8_t>(p);
                    f.data = leaf.outFifos[p].pop();
                    leaf.inflight[p] = 1;
                    inject[li] = f;
                    leaf.rrNext = (p + 1) % nPorts;
                    ++stats_.injected;
                    break;
                }
            }
        }

        // Ejection: flit arriving from the parent switch's down port.
        const Switch &ps = old[leafParent(li)];
        const Flit &arriving = ps.downOut[li % 2];
        if (arriving.valid) {
            pld_assert(arriving.dstLeaf == li || true, "routing");
            if (arriving.dstLeaf != static_cast<uint16_t>(li)) {
                // Deflected into the wrong leaf: bounce it back.
                Flit f = arriving;
                ++f.age;
                leaf.reinsert = f;
                ++stats_.deflections;
            } else if (arriving.config) {
                leaf.destReg[arriving.dstPort] = {
                    static_cast<int>(arriving.data >> 8),
                    static_cast<int>(arriving.data & 0xFF)};
                ++stats_.configApplied;
                ++stats_.delivered;
                stats_.totalHops += arriving.age;
                leaves[arriving.srcLeaf].configInflight = 0;
            } else if (leaf.inFifos[arriving.dstPort].canPush()) {
                leaf.inFifos[arriving.dstPort].push(arriving.data);
                ++stats_.delivered;
                stats_.totalHops += arriving.age;
                leaves[arriving.srcLeaf]
                    .inflight[arriving.srcPort] = 0;
            } else {
                // Destination FIFO full: park in the skid buffer
                // (streams are point-to-point, so the slot is free).
                pld_assert(!leaf.skid[arriving.dstPort].valid,
                           "two producers on one stream port");
                leaf.skid[arriving.dstPort] = arriving;
            }
        }
    }

    // Switch update: compute new link registers from old ones.
    for (size_t si = 0; si < switches.size(); ++si) {
        Switch &s = switches[si];
        const Switch &os = old[si];
        s.upOut = Flit{};
        s.downOut[0] = Flit{};
        s.downOut[1] = Flit{};

        // Gather inputs: parent-down first (oldest traffic), then the
        // two child-up inputs.
        Flit inputs[3];
        int n = 0;
        if (s.parent >= 0) {
            const Switch &pp = old[s.parent];
            int side = (si == static_cast<size_t>(
                                  switches[s.parent].left))
                           ? 0
                           : 1;
            if (pp.downOut[side].valid)
                inputs[n++] = pp.downOut[side];
        }
        if (os.left >= 0) {
            if (old[os.left].upOut.valid)
                inputs[n++] = old[os.left].upOut;
            if (old[os.right].upOut.valid)
                inputs[n++] = old[os.right].upOut;
        } else {
            if (inject[s.lo].valid)
                inputs[n++] = inject[s.lo];
            if (inject[s.lo + 1].valid)
                inputs[n++] = inject[s.lo + 1];
        }

        int mid = (s.lo + s.hi) / 2;
        for (int i = 0; i < n; ++i) {
            Flit f = inputs[i];
            ++f.age;
            Flit *want;
            if (f.dstLeaf >= s.lo && f.dstLeaf < mid)
                want = &s.downOut[0];
            else if (f.dstLeaf >= mid && f.dstLeaf < s.hi)
                want = &s.downOut[1];
            else
                want = &s.upOut;
            if (!want->valid) {
                *want = f;
                continue;
            }
            // Deflect to any free output.
            ++stats_.deflections;
            if (s.parent >= 0 && !s.upOut.valid)
                s.upOut = f;
            else if (!s.downOut[0].valid)
                s.downOut[0] = f;
            else if (!s.downOut[1].valid)
                s.downOut[1] = f;
            else
                pld_panic("deflection invariant violated");
        }
    }

    ++cycle_;
}

bool
BftNoc::idle() const
{
    for (const auto &s : switches) {
        if (s.upOut.valid || s.downOut[0].valid || s.downOut[1].valid)
            return false;
    }
    for (const auto &leaf : leaves) {
        if (leaf.reinsert.valid || !leaf.pendingConfig.empty())
            return false;
        for (const auto &f : leaf.skid) {
            if (f.valid)
                return false;
        }
        for (const auto &f : leaf.outFifos) {
            if (f.canPop())
                return false;
        }
    }
    return true;
}

bool
BftNoc::transitIdle() const
{
    for (const auto &s : switches) {
        if (s.upOut.valid || s.downOut[0].valid || s.downOut[1].valid)
            return false;
    }
    for (const auto &leaf : leaves) {
        if (leaf.reinsert.valid || !leaf.pendingConfig.empty() ||
            leaf.configInflight != 0)
            return false;
    }
    return true;
}

bool
BftNoc::leafTransitQuiet(int leaf) const
{
    const Leaf &l = leaves[static_cast<size_t>(leaf)];
    return !l.reinsert.valid && l.pendingConfig.empty() &&
           l.configInflight == 0;
}

uint64_t
BftNoc::inFlightFlits() const
{
    uint64_t n = 0;
    for (const auto &s : switches) {
        n += s.upOut.valid ? 1 : 0;
        n += s.downOut[0].valid ? 1 : 0;
        n += s.downOut[1].valid ? 1 : 0;
    }
    for (const auto &leaf : leaves) {
        n += leaf.reinsert.valid ? 1 : 0;
        n += leaf.pendingConfig.size();
        for (const auto &f : leaf.skid)
            n += f.valid ? 1 : 0;
        for (const auto &f : leaf.outFifos)
            n += f.size();
    }
    return n;
}

bool
BftNoc::leafQuiet(int leaf) const
{
    const Leaf &l = leaves[static_cast<size_t>(leaf)];
    if (l.reinsert.valid || !l.pendingConfig.empty() ||
        l.configInflight != 0)
        return false;
    for (uint8_t c : l.inflight) {
        if (c != 0)
            return false;
    }
    for (const auto &f : l.outFifos) {
        if (f.canPop())
            return false;
    }
    return true;
}

} // namespace noc
} // namespace pld
