/**
 * @file
 * Deflection-routed butterfly-fat-tree linking network (Sec 4.3).
 *
 * The linking network is PLD's software-linker analogue: it carries
 * latency-insensitive stream traffic between separately compiled
 * pages. Following Hoplite-style lightweight NoCs, flits are single
 * words, switches are bufferless, and contention is resolved by
 * deflection (the losing flit is misrouted and keeps circulating
 * instead of being buffered).
 *
 * Each leaf owns a standard leaf interface: per-output-port
 * destination registers that prepend the packet header. The registers
 * are themselves set by config packets sent through the network, so
 * re-linking operators "only [needs] a few packets per page" and no
 * recompilation (Sec 4.3).
 */

#ifndef PLD_NOC_BFT_H
#define PLD_NOC_BFT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "dataflow/stream.h"

namespace pld {
namespace noc {

/** Single-word network flit. */
struct Flit
{
    bool valid = false;
    uint16_t dstLeaf = 0;
    uint8_t dstPort = 0;
    uint16_t srcLeaf = 0; ///< for the delivery ack (credit return)
    uint8_t srcPort = 0;
    bool config = false;
    uint32_t data = 0;
    uint32_t age = 0; ///< hop count (deflection diagnostics)
};

/** Aggregate network statistics. */
struct NocStats
{
    uint64_t injected = 0;
    uint64_t delivered = 0;
    uint64_t deflections = 0;
    uint64_t configApplied = 0;
    uint64_t totalHops = 0;
};

/**
 * The network. Leaves are numbered 0..numLeaves-1; each has
 * `portsPerLeaf` logical stream ports in each direction.
 *
 * Usage per cycle: operators push words into outPort()s and pop from
 * inPort()s; stepCycle() moves flits one hop.
 */
class BftNoc
{
  public:
    BftNoc(int num_leaves, int ports_per_leaf = 4,
           size_t fifo_depth = 16);

    int numLeaves() const { return nLeaves; }
    int portsPerLeaf() const { return nPorts; }

    /** Directly program a leaf's destination register (tests). */
    void setRoute(int leaf, int out_port, int dst_leaf, int dst_port);

    /**
     * Queue a config packet from the DMA leaf: when it arrives at
     * @p dst_leaf it programs register @p out_port with
     * (@p route_leaf, @p route_port). This is how the linker links.
     */
    void sendConfig(int src_leaf, int dst_leaf, int out_port,
                    int route_leaf, int route_port);

    /** Operator-facing ports (stable pointers). */
    dataflow::StreamPort *inPort(int leaf, int port);
    dataflow::StreamPort *outPort(int leaf, int port);

    /** Advance the network one clock cycle. */
    void stepCycle();

    /** True when no flit is in flight and no config is pending. */
    bool idle() const;

    /**
     * True when leaf @p leaf has no outbound traffic anywhere in the
     * system: nothing queued for injection, no outstanding stream
     * credit (every injected flit acked), no config packet pending or
     * in flight, and no deflected flit awaiting re-entry. This is the
     * quiesce condition a hot-swap waits for before reconfiguring the
     * page behind the leaf — inbound words parked in the leaf's input
     * FIFOs are deliberately NOT part of it (they belong to the leaf
     * interface, survive reconfiguration, and may keep arriving from
     * still-running producers).
     */
    bool leafQuiet(int leaf) const;

    /**
     * True when no flit is moving through the network fabric itself:
     * switch link registers, deflected-flit re-entry slots, and the
     * config path are all empty. Words parked inside leaf interfaces
     * (input FIFOs, injection FIFOs, skid buffers, and their credit
     * bits) do NOT count — that state lives outside the reconfigured
     * region and survives partial reconfiguration in place, which is
     * exactly why a frozen fabric can be checkpointed: with every
     * consumer paused, full idle() may be unreachable (a producer's
     * queued words cannot inject into a full peer FIFO), but
     * transitIdle() always is, because stream credits bound each
     * port to one in-flight flit with a guaranteed skid slot.
     */
    bool transitIdle() const;

    /**
     * Per-leaf form of transitIdle(): no deflected flit awaiting
     * re-entry and no config packet pending or in flight at leaf
     * @p leaf. The quiesce condition for reconfiguring a page on a
     * FROZEN fabric (checkpoint reinstatement), where leafQuiet()'s
     * empty-injection-FIFO requirement could never be met.
     */
    bool leafTransitQuiet(int leaf) const;

    /**
     * Flits currently in flight: valid flits held in switch
     * registers, leaf skid buffers, re-insertion slots, and
     * injection FIFOs, plus pending config packets. Zero iff
     * idle(). The tenant scheduler's checkpoint drain reports this
     * as its remaining-work gauge.
     */
    uint64_t inFlightFlits() const;

    const NocStats &stats() const { return stats_; }

    /** Cycles stepped so far. */
    uint64_t cycle() const { return cycle_; }

  private:
    struct Leaf
    {
        std::vector<dataflow::WordFifo> inFifos;
        std::vector<dataflow::WordFifo> outFifos;
        std::vector<std::pair<int, int>> destReg; // per out port
        std::vector<Flit> pendingConfig;
        /**
         * Credit-based stream flow control: one outstanding flit per
         * output port. Deflection routing can reorder flits taking
         * different paths, so the leaf interface serializes each
         * stream (inject the next word only after the previous one
         * was delivered) — the ack protocol real stream clients use
         * on deflection NoCs. This is also the single-port bandwidth
         * bottleneck behind Table 3's -O1 slowdown.
         */
        std::vector<uint8_t> inflight;
        /**
         * Skid buffer per input port: a flit arriving to a full FIFO
         * waits here (holding its stream credit) instead of bouncing
         * back into the network, which would congest shared switches.
         * Streams are point-to-point, so one slot per port suffices.
         */
        std::vector<Flit> skid;
        uint8_t configInflight = 0;
        int rrNext = 0;   ///< round-robin injection pointer
        Flit reinsert;    ///< deflected-at-leaf flit awaiting re-entry
    };

    /**
     * One internal switch of the binary fat tree. Node i covers the
     * leaf range [lo, hi); children are nodes or leaves.
     */
    struct Switch
    {
        int lo = 0, hi = 0;
        int parent = -1;   // -1 = root
        int left = -1, right = -1; // child switch ids; -1 = leaf level
        // Link registers (current cycle contents).
        Flit upIn[2];   // from children
        Flit downIn;    // from parent
        Flit upOut;     // to parent
        Flit downOut[2];// to children
    };

    int leafParent(int leaf) const; ///< switch above a leaf
    void stepSwitches();
    void stepLeaves();

    int nLeaves;
    int nPorts;
    size_t fifoDepth;
    std::vector<Leaf> leaves;
    std::vector<Switch> switches;
    std::vector<Switch> scratch;       ///< double buffer for stepCycle
    std::vector<Flit> injectScratch;
    std::vector<std::unique_ptr<dataflow::StreamPort>> portWrappers;
    NocStats stats_;
    uint64_t cycle_ = 0;
};

} // namespace noc
} // namespace pld

#endif // PLD_NOC_BFT_H
