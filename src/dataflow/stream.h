/**
 * @file
 * Latency-insensitive stream links (paper Sec 3.2).
 *
 * Streams act like FIFOs with data presence: reads from empty streams
 * block, writes to full streams stall the producer (backpressure).
 * Every execution substrate (interpreter, HLS page model, RV32
 * softcore, NoC leaf interface, DMA engine) talks to the same
 * StreamPort interface, which is what makes operators free to migrate
 * between implementations without functional change.
 */

#ifndef PLD_DATAFLOW_STREAM_H
#define PLD_DATAFLOW_STREAM_H

#include <cstdint>
#include <deque>
#include <limits>

#include "common/logging.h"

namespace pld {
namespace dataflow {

/** Occupancy and stall statistics for one FIFO. */
struct FifoStats
{
    uint64_t pushes = 0;
    uint64_t pops = 0;
    uint64_t maxOccupancy = 0;
};

/**
 * A bounded FIFO of 32-bit words: the physical embodiment of one
 * latency-insensitive link. Capacity 0 means unbounded (used by the
 * pure-functional runtime where buffering is immaterial).
 */
class WordFifo
{
  public:
    explicit WordFifo(size_t capacity = 0) : cap(capacity) {}

    bool
    canPush() const
    {
        return cap == 0 || q.size() < cap;
    }
    bool canPop() const { return !q.empty(); }
    size_t size() const { return q.size(); }
    size_t capacity() const { return cap; }

    void
    push(uint32_t w)
    {
        pld_assert(canPush(), "push to full FIFO");
        q.push_back(w);
        ++stats_.pushes;
        if (q.size() > stats_.maxOccupancy)
            stats_.maxOccupancy = q.size();
    }

    uint32_t
    pop()
    {
        pld_assert(canPop(), "pop from empty FIFO");
        uint32_t w = q.front();
        q.pop_front();
        ++stats_.pops;
        return w;
    }

    uint32_t
    front() const
    {
        pld_assert(canPop(), "front of empty FIFO");
        return q.front();
    }

    const FifoStats &stats() const { return stats_; }

  private:
    std::deque<uint32_t> q;
    size_t cap;
    FifoStats stats_;
};

/**
 * Abstract stream endpoint as seen by an operator implementation.
 * Concrete ports wrap a FIFO directly (monolithic/-O3 designs), a NoC
 * leaf interface (-O1 overlay), or softcore MMIO registers (-O0).
 */
class StreamPort
{
  public:
    virtual ~StreamPort() = default;

    /** Data available to read this instant? */
    virtual bool canRead() const = 0;
    /** Space available to write this instant? */
    virtual bool canWrite() const = 0;
    /** Pop one word; only legal when canRead(). */
    virtual uint32_t read() = 0;
    /** Push one word; only legal when canWrite(). */
    virtual void write(uint32_t w) = 0;
};

/** StreamPort reading the downstream end of a FIFO. */
class FifoReadPort : public StreamPort
{
  public:
    explicit FifoReadPort(WordFifo &fifo) : fifo(fifo) {}

    bool canRead() const override { return fifo.canPop(); }
    bool canWrite() const override { return false; }
    uint32_t read() override { return fifo.pop(); }
    void write(uint32_t) override { pld_panic("write to read port"); }

  private:
    WordFifo &fifo;
};

/** StreamPort writing the upstream end of a FIFO. */
class FifoWritePort : public StreamPort
{
  public:
    explicit FifoWritePort(WordFifo &fifo) : fifo(fifo) {}

    bool canRead() const override { return false; }
    bool canWrite() const override { return fifo.canPush(); }
    uint32_t read() override { pld_panic("read from write port"); }
    void write(uint32_t w) override { fifo.push(w); }

  private:
    WordFifo &fifo;
};

} // namespace dataflow
} // namespace pld

#endif // PLD_DATAFLOW_STREAM_H
