/**
 * @file
 * Functional Kahn-network runtime for application graphs.
 *
 * This is the behavioural gold model: it executes a Graph with plain
 * FIFO links and the IR interpreter, independent of any mapping
 * decisions. It also serves as the "X86 g++" native-execution column
 * of Table 3 (wall-clock of this runtime) and as the reference the
 * timed system simulator is checked against.
 */

#ifndef PLD_DATAFLOW_RUNTIME_H
#define PLD_DATAFLOW_RUNTIME_H

#include <memory>
#include <string>
#include <vector>

#include "dataflow/stream.h"
#include "interp/exec.h"
#include "ir/graph.h"

namespace pld {
namespace dataflow {

/**
 * Executes a dataflow graph to completion with cooperative
 * round-robin scheduling of resumable operator interpreters.
 */
class GraphRuntime
{
  public:
    /**
     * @param g           the application graph (referenced, not copied)
     * @param fifo_capacity link FIFO capacity in words; 0 = unbounded
     */
    explicit GraphRuntime(const ir::Graph &g, size_t fifo_capacity = 0);

    /** Queue input words on external input stream @p ext_idx. */
    void pushInput(int ext_idx, const std::vector<uint32_t> &words);

    /**
     * Run until every operator finishes. Returns false on deadlock
     * (every unfinished operator blocked with no data in flight
     * movement possible).
     */
    bool run();

    /** Words produced on external output @p ext_idx so far. */
    std::vector<uint32_t> takeOutput(int ext_idx);

    /** Access an operator's execution context (stats, prints). */
    interp::OperatorExec &exec(int op_idx) { return *execs[op_idx]; }

    /** Total interpreter statements across all operators. */
    uint64_t totalStatements() const;

    /** Human-readable description of a deadlock, if run() failed. */
    const std::string &deadlockReport() const { return deadlockInfo; }

    /** Enable Print statements on all operators. */
    void setPrintsEnabled(bool on);

  private:
    const ir::Graph &g;
    std::vector<std::unique_ptr<WordFifo>> fifos; // one per link
    std::vector<std::unique_ptr<StreamPort>> portStorage;
    std::vector<std::unique_ptr<interp::OperatorExec>> execs;
    std::vector<int> extInLink;  // ext input idx -> link idx
    std::vector<int> extOutLink; // ext output idx -> link idx
    std::string deadlockInfo;
};

} // namespace dataflow
} // namespace pld

#endif // PLD_DATAFLOW_RUNTIME_H
