#include "dataflow/runtime.h"

namespace pld {
namespace dataflow {

using interp::OperatorExec;
using interp::RunStatus;

GraphRuntime::GraphRuntime(const ir::Graph &g, size_t fifo_capacity)
    : g(g)
{
    fifos.reserve(g.links.size());
    for (size_t i = 0; i < g.links.size(); ++i) {
        // External links model host DMA buffers and stay unbounded;
        // internal links take the requested capacity (0 = unbounded).
        const auto &l = g.links[i];
        bool external = l.src.isExternal() || l.dst.isExternal();
        size_t cap = external ? 0 : fifo_capacity;
        fifos.push_back(std::make_unique<WordFifo>(cap));
    }

    extInLink.assign(g.extInputs.size(), -1);
    extOutLink.assign(g.extOutputs.size(), -1);
    for (size_t li = 0; li < g.links.size(); ++li) {
        const auto &l = g.links[li];
        if (l.src.isExternal())
            extInLink[l.src.port] = static_cast<int>(li);
        if (l.dst.isExternal())
            extOutLink[l.dst.port] = static_cast<int>(li);
    }

    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        const auto &fn = g.ops[oi].fn;
        std::vector<StreamPort *> ports;
        for (size_t pi = 0; pi < fn.ports.size(); ++pi) {
            ir::Endpoint ep{static_cast<int>(oi),
                            static_cast<int>(pi)};
            if (fn.ports[pi].dir == ir::PortDir::In) {
                int li = g.linkInto(ep);
                pld_assert(li >= 0, "%s input port %zu undriven",
                           fn.name.c_str(), pi);
                portStorage.push_back(
                    std::make_unique<FifoReadPort>(*fifos[li]));
            } else {
                int li = g.linkFrom(ep);
                pld_assert(li >= 0, "%s output port %zu unconsumed",
                           fn.name.c_str(), pi);
                portStorage.push_back(
                    std::make_unique<FifoWritePort>(*fifos[li]));
            }
            ports.push_back(portStorage.back().get());
        }
        execs.push_back(std::make_unique<OperatorExec>(fn, ports));
    }
}

void
GraphRuntime::pushInput(int ext_idx, const std::vector<uint32_t> &words)
{
    int li = extInLink.at(static_cast<size_t>(ext_idx));
    pld_assert(li >= 0, "external input %d not wired", ext_idx);
    for (uint32_t w : words)
        fifos[li]->push(w);
}

std::vector<uint32_t>
GraphRuntime::takeOutput(int ext_idx)
{
    int li = extOutLink.at(static_cast<size_t>(ext_idx));
    pld_assert(li >= 0, "external output %d not wired", ext_idx);
    std::vector<uint32_t> out;
    while (fifos[li]->canPop())
        out.push_back(fifos[li]->pop());
    return out;
}

bool
GraphRuntime::run()
{
    constexpr uint64_t kSlice = 100000;
    for (;;) {
        bool all_done = true;
        bool progress = false;
        for (auto &e : execs) {
            if (e->done())
                continue;
            uint64_t before = e->stats().statements;
            RunStatus st = e->run(kSlice);
            progress |= (e->stats().statements != before);
            if (st != RunStatus::Done || !e->done())
                all_done = false;
            else
                progress = true;
        }
        if (all_done)
            return true;
        if (!progress) {
            deadlockInfo = "deadlock in graph '" + g.name + "':";
            for (size_t oi = 0; oi < execs.size(); ++oi) {
                if (!execs[oi]->done())
                    deadlockInfo += " " + g.ops[oi].instName;
            }
            pld_warn("%s", deadlockInfo.c_str());
            return false;
        }
    }
}

uint64_t
GraphRuntime::totalStatements() const
{
    uint64_t n = 0;
    for (const auto &e : execs)
        n += e->stats().statements;
    return n;
}

void
GraphRuntime::setPrintsEnabled(bool on)
{
    for (auto &e : execs)
        e->setPrintsEnabled(on);
}

} // namespace dataflow
} // namespace pld
