/**
 * @file
 * Cycle-level system simulator: the "board" the linked design runs on.
 *
 * Models the runtime half of the paper: a set of physical pages (each
 * implementing one operator either as HLS hardware or as a softcore
 * running its -O0 binary), the linking network connecting them, and a
 * DMA engine streaming host buffers in and out (Fig 3). The same
 * simulator also runs monolithic (-O3 / Vitis) designs by replacing
 * the NoC with direct FIFO links.
 *
 * Timing:
 *  - HW pages charge cycles per interpreter compute-op using the HLS
 *    schedule's cyclesPerOp (so an II=1 loop streams ~1 word/cycle).
 *  - Softcore pages execute their RV32 binary on the ISS; the ISS's
 *    PicoRV32 cycle counter is synchronized to the global clock.
 *  - The NoC moves one flit per link per cycle with deflection.
 * Wall-clock seconds per input are cycles / Fmax, reported by the
 * benchmark harness (Table 3).
 */

#ifndef PLD_SYS_SYSTEM_H
#define PLD_SYS_SYSTEM_H

#include <memory>
#include <vector>

#include "interp/exec.h"
#include "ir/graph.h"
#include "noc/bft.h"
#include "rv32/iss.h"

namespace pld {
namespace sys {

/** How one operator is realized on its page. */
enum class PageImpl { Hw, Softcore };

/** Binding of a graph operator to a physical page. */
struct PageBinding
{
    int opIdx = -1;
    int pageId = -1; ///< physical page == NoC leaf id
    PageImpl impl = PageImpl::Hw;
    /** HW: cycle charge per interpreter compute op. */
    double cyclesPerOp = 1.0;
    /** Softcore: the packed -O0 binary. */
    rv32::PldElf elf;
};

struct SystemConfig
{
    /** Overlay (true, -O1/-O0) vs direct FIFO links (-O3/Vitis). */
    bool useNoc = true;
    int nocPortsPerLeaf = 6;
    size_t nocFifoDepth = 16;
    /** Direct-link FIFO depth for monolithic designs. */
    size_t directFifoDepth = 64;
    /** DMA words moved per cycle per external stream. */
    int dmaWordsPerCycle = 1;
    /** First NoC leaf used for DMA endpoints. */
    int dmaLeafBase = 24;
};

/** Per-run result summary. */
struct RunStats
{
    uint64_t cycles = 0;
    uint64_t configCycles = 0; ///< linking (config packets) phase
    bool completed = false;
    noc::NocStats noc;
};

/**
 * One loaded application ready to execute.
 */
class SystemSim
{
  public:
    SystemSim(const ir::Graph &g,
              const std::vector<PageBinding> &bindings,
              const SystemConfig &cfg);

    /** Queue host input words on external stream @p ext_idx. */
    void loadInput(int ext_idx, const std::vector<uint32_t> &words);

    /**
     * Link (config packets through the network) and run to
     * completion or @p max_cycles.
     */
    RunStats run(uint64_t max_cycles = 500000000ull);

    /** Words the DMA engine collected from external output. */
    std::vector<uint32_t> takeOutput(int ext_idx);

  private:
    struct Page
    {
        PageBinding binding;
        std::unique_ptr<interp::OperatorExec> exec; // HW
        std::unique_ptr<rv32::Core> core;           // softcore
        double budget = 0;
        bool done = false;
    };

    void buildNocSystem();
    void buildDirectSystem();
    bool stepPages(uint64_t cycle);

    /** Telemetry accumulated across the run (one counter add at the
     * end instead of per-cycle registry traffic). */
    uint64_t statStalls = 0;
    std::vector<bool> pageDoneMarked;

    const ir::Graph &g;
    SystemConfig cfg;
    std::vector<Page> pages;
    std::unique_ptr<noc::BftNoc> net;

    // Direct-link mode storage.
    std::vector<std::unique_ptr<dataflow::WordFifo>> directFifos;
    std::vector<std::unique_ptr<dataflow::StreamPort>> portStorage;

    // DMA buffers.
    std::vector<std::vector<uint32_t>> hostIn;   // per ext input
    std::vector<size_t> hostInPos;
    std::vector<std::vector<uint32_t>> hostOut;  // per ext output
    std::vector<dataflow::StreamPort *> extInPorts;
    std::vector<dataflow::StreamPort *> extOutPorts;
};

} // namespace sys
} // namespace pld

#endif // PLD_SYS_SYSTEM_H
