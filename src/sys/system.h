/**
 * @file
 * Cycle-level system simulator: the "board" the linked design runs on.
 *
 * Models the runtime half of the paper: a set of physical pages (each
 * implementing one operator either as HLS hardware or as a softcore
 * running its -O0 binary), the linking network connecting them, and a
 * DMA engine streaming host buffers in and out (Fig 3). The same
 * simulator also runs monolithic (-O3 / Vitis) designs by replacing
 * the NoC with direct FIFO links.
 *
 * Timing:
 *  - HW pages charge cycles per interpreter compute-op using the HLS
 *    schedule's cyclesPerOp (so an II=1 loop streams ~1 word/cycle).
 *  - Softcore pages execute their RV32 binary on the ISS; the ISS's
 *    PicoRV32 cycle counter is synchronized to the global clock.
 *  - The NoC moves one flit per link per cycle with deflection.
 * Wall-clock seconds per input are cycles / Fmax, reported by the
 * benchmark harness (Table 3).
 *
 * Live reconfiguration (hot swap): swapPage() / requestSwap() replace
 * one page's image while the rest of the system keeps executing — the
 * paper's edit→recompile→hot-swap loop. The swap engine drains the
 * target's NoC traffic, streams the new image as CRC-framed config
 * packets over a dedicated ICAP-style config channel (sized from the
 * image footprint, mirroring partial-bitstream size), and activates.
 * It is fault tolerant end to end: per-packet CRC with bounded
 * retransmit and exponential backoff, a reconfiguration watchdog, a
 * rollback to the previous image on an aborted attempt, and a
 * quarantine policy that pins a page to its softcore fallback after
 * repeated failures (the runtime continuation of the compile-time
 * retry ladder). All fault decisions come from the deterministic
 * FaultInjector, so every scenario is bit-reproducible under any
 * PLD_THREADS.
 */

#ifndef PLD_SYS_SYSTEM_H
#define PLD_SYS_SYSTEM_H

#include <memory>
#include <vector>

#include "common/fault.h"
#include "interp/exec.h"
#include "ir/graph.h"
#include "noc/bft.h"
#include "obs/trace.h"
#include "rv32/iss.h"

namespace pld {
namespace sys {

/** How one operator is realized on its page. */
enum class PageImpl { Hw, Softcore };

/** Binding of a graph operator to a physical page. */
struct PageBinding
{
    int opIdx = -1;
    int pageId = -1; ///< physical page == NoC leaf id
    PageImpl impl = PageImpl::Hw;
    /** HW: cycle charge per interpreter compute op. */
    double cyclesPerOp = 1.0;
    /** Softcore: the packed -O0 binary. */
    rv32::PldElf elf;
    /**
     * Partial-image size in bytes (drives how many config packets a
     * hot swap streams). 0 = unknown; the swap engine then assumes
     * one packet. The compiler fills this from the page's resource
     * footprint (HW) or the binary footprint (softcore).
     */
    uint64_t imageBytes = 0;
    /** Content hash of the image (seeds the CRC-framed packets). */
    uint64_t imageHash = 0;
    /** Quarantine fallback: pin the operator to this -O0 softcore
     * binary after repeated swap failures. */
    bool hasFallback = false;
    rv32::PldElf fallbackElf;
};

struct SystemConfig
{
    /** Overlay (true, -O1/-O0) vs direct FIFO links (-O3/Vitis). */
    bool useNoc = true;
    int nocPortsPerLeaf = 6;
    size_t nocFifoDepth = 16;
    /** Direct-link FIFO depth for monolithic designs. */
    size_t directFifoDepth = 64;
    /** DMA words moved per cycle per external stream. */
    int dmaWordsPerCycle = 1;
    /** First NoC leaf used for DMA endpoints. */
    int dmaLeafBase = 24;

    // --- Hot-swap / runtime fault tolerance knobs -----------------
    /** Payload bytes per CRC-framed config packet. */
    size_t swapPacketBytes = 128;
    /** Retransmissions allowed per packet before the attempt aborts. */
    int swapMaxRetransmits = 4;
    /** Swap attempts (stream + activate) before quarantine. */
    int swapMaxAttempts = 2;
    /**
     * Cycle budget per swap attempt before the watchdog aborts it.
     * 0 = auto: sized so a fault-free (even fully retransmitted)
     * stream never trips it, but a hung activation always does.
     */
    uint64_t swapWatchdogCycles = 0;
    /** Cycles the sender waits for an ack before declaring a drop. */
    uint64_t swapAckTimeoutCycles = 16;
    /** Base retransmit backoff in cycles (doubles per retry). */
    uint64_t swapBackoffBase = 2;
    /** Cycles to wait for the target leaf to quiesce before abort. */
    uint64_t swapDrainTimeoutCycles = 100000;
    /** Cycles a dma_stall fault freezes the config channel for. */
    uint64_t swapDmaStallCycles = 64;
    /** Cycles from last packet accepted to the page reporting up. */
    uint64_t swapActivationCycles = 8;
    /** Pending requestSwap() queue bound; further requests are
     * rejected with a structured diagnostic instead of piling up. */
    size_t swapQueueDepth = 8;
    /**
     * Runtime fault plan (config_drop / config_corrupt / page_hang /
     * dma_stall). Empty = inherit PLD_FAULT from the environment.
     */
    FaultPlan faults;
    /**
     * Fault-coordinate scope: when non-empty, every fault query this
     * sim makes uses the site name "<faultScope>/<op>" instead of the
     * bare operator name. The multi-tenant scheduler sets it to the
     * tenant name so a PLD_FAULT spec scoped to "t1/" targets one
     * tenant's pages without leaking into any other tenant (see
     * common/fault.h).
     */
    std::string faultScope;
};

/** Per-run result summary. */
struct RunStats
{
    uint64_t cycles = 0;
    uint64_t configCycles = 0; ///< linking (config packets) phase
    bool completed = false;
    noc::NocStats noc;
};

/** Terminal state of one swapPage()/requestSwap(). */
enum class SwapOutcome {
    /** New image streamed, verified, and activated. */
    Swapped,
    /** Aborted before any image bits were committed (drain never
     * quiesced); the old image was never touched. */
    RolledBack,
    /** All attempts failed; the page is pinned to its fallback
     * softcore (or the old image when no fallback exists) and
     * further swaps are rejected. */
    Quarantined,
    /** Target page is quarantined (or unknown); nothing happened. */
    Rejected,
};

const char *swapOutcomeName(SwapOutcome o);

/**
 * Outcome of *queueing* a requestSwap() — distinct from SwapResult,
 * which describes an executed swap. A rejected request never enters
 * the queue and never appears in swapHistory(); the diagnostic says
 * why (queue full, duplicate page target, unknown or quarantined
 * page).
 */
struct SwapRequestResult
{
    bool accepted = false;
    Diagnostic diag;
};

/** What one swap did and what it cost. */
struct SwapResult
{
    SwapOutcome outcome = SwapOutcome::Rejected;
    /** Total swap duration in sim cycles (drain → terminal). */
    uint64_t cycles = 0;
    /** New-image packets accepted by the page's CRC check. */
    uint64_t packets = 0;
    uint64_t retransmits = 0;
    uint64_t crcErrors = 0;
    uint64_t drops = 0;
    uint64_t dmaStalls = 0;
    int attempts = 0;
    int rollbacks = 0;
    bool watchdogFired = false;
};

/**
 * One loaded application ready to execute.
 */
class SystemSim
{
  public:
    SystemSim(const ir::Graph &g,
              const std::vector<PageBinding> &bindings,
              const SystemConfig &cfg);

    /** Queue host input words on external stream @p ext_idx. */
    void loadInput(int ext_idx, const std::vector<uint32_t> &words);

    /**
     * Link (config packets through the network) and run to
     * completion or @p max_cycles. Pages that completed a previous
     * run are re-armed (reset to their entry state) when new host
     * input is queued, so one SystemSim can process many batches.
     */
    RunStats run(uint64_t max_cycles = 500000000ull);

    /**
     * Run at most @p cycles further cycles as one scheduler time
     * slice. Identical to run() except that exhausting the budget is
     * a yield, not a failure: no sys.run.timeout telemetry is
     * emitted, because the tenant scheduler preempting a tenant
     * mid-batch is the normal case, not a stall.
     */
    RunStats runSlice(uint64_t cycles);

    /** Words the DMA engine collected from external output. */
    std::vector<uint32_t> takeOutput(int ext_idx);

    /**
     * Hot-swap the page at NoC leaf @p page_id to @p nb, synchronously
     * (between runs): drain, stream CRC-framed packets, activate —
     * with retransmit / watchdog / rollback / quarantine handling.
     * @p new_fn, when non-null, is the edited operator function the
     * new image implements (the sim keeps its own copy); null means
     * the function is unchanged (a re-timed/re-placed image) and the
     * operator's execution state survives the swap — architectural
     * stream state lives in the leaf interface, which DFX does not
     * reconfigure. A function-changing swap restarts the operator.
     */
    SwapResult swapPage(int page_id, const PageBinding &nb,
                        const ir::OperatorFn *new_fn = nullptr);

    /**
     * Queue a hot swap to start once run() reaches @p at_cycle
     * (run-local clock): the rest of the system keeps executing
     * while the swap engine drains and streams. Results are appended
     * to swapHistory() in start order. The request is validated at
     * queueing time: a full queue (swapQueueDepth), a second request
     * targeting an already-queued or in-flight page, or an unknown /
     * quarantined target page is rejected with a structured
     * diagnostic instead of silently queueing a conflicting swap.
     */
    SwapRequestResult requestSwap(int page_id, const PageBinding &nb,
                                  uint64_t at_cycle,
                                  const ir::OperatorFn *new_fn =
                                      nullptr);

    const std::vector<SwapResult> &swapHistory() const
    {
        return swapLog;
    }

    /**
     * Checkpoint drain: step only the network (pages frozen, no DMA)
     * until every flit has landed in a leaf-interface FIFO and no
     * config packet is pending, so the fabric can be handed to
     * another tenant. Words parked in leaf FIFOs survive — the DFX
     * model: partial reconfiguration does not touch the leaf
     * interface, so an evicted tenant's stream state is preserved
     * in place and re-instating the same images resumes execution
     * exactly where the drain left it. An active swap is first run
     * to completion (mid-reconfiguration state cannot be
     * checkpointed; the swap watchdog bounds it). Returns cycles
     * spent (the fabric-quiesce part is bounded by
     * swapDrainTimeoutCycles).
     */
    uint64_t drainForCheckpoint();

    /** Pending requestSwap() entries not yet started. */
    size_t pendingSwapRequests() const { return swapQueue.size(); }

    /** True when the page at leaf @p page_id is quarantined. */
    bool pageQuarantined(int page_id) const;

    /** Current implementation of the page at leaf @p page_id. */
    PageImpl pageImpl(int page_id) const;

    /**
     * Current binding of the page at leaf @p page_id — reflects any
     * completed swaps (including a quarantine rewrite). The tenant
     * scheduler re-streams exactly this image at reinstatement.
     */
    const PageBinding &pageBinding(int page_id) const;

  private:
    struct Page
    {
        PageBinding binding;
        /** Function currently on the page (graph's or ownedFn). */
        const ir::OperatorFn *fn = nullptr;
        /** Owns a swapped-in edited function. */
        std::unique_ptr<ir::OperatorFn> ownedFn;
        /** Leaf-interface ports, indexed like fn->ports. */
        std::vector<dataflow::StreamPort *> ports;
        std::unique_ptr<interp::OperatorExec> exec; // HW
        std::unique_ptr<rv32::Core> core;           // softcore
        double budget = 0;
        bool done = false;
        /** Frozen by the swap engine (drain → terminal). */
        bool paused = false;
        /** Repeated swap failures pinned this page; swaps Rejected. */
        bool quarantined = false;
        /**
         * Installed fresh mid-stream by a function-changing swap:
         * the page counts as quiescent (for completion) while it is
         * blocked on read with no input available, instead of
         * requiring an explicit done state.
         */
        bool restartable = false;
        /** Set with restartable when the page last blocked starved. */
        bool starved = false;
        /**
         * Softcore clock sync point: the core is stepped while
         * (cycles() - coreSyncCycles) < (run cycle - coreSyncRun).
         * Re-based at every run() start and whenever a core is
         * installed mid-run, so neither a fresh core (cycles()==0 at
         * a large run clock) nor a carried-over core (large cycles()
         * at run clock 0) bursts or freezes.
         */
        uint64_t coreSyncRun = 0;
        uint64_t coreSyncCycles = 0;
    };

    /** Swap engine phases (see DESIGN.md §11). */
    enum class SwapPhase {
        Idle,
        Draining,
        Streaming,
        Activating,
        RollingBack,
    };

    /** In-flight swap state machine. */
    struct SwapState
    {
        SwapPhase phase = SwapPhase::Idle;
        size_t pageIdx = 0;
        PageBinding nb;
        std::unique_ptr<ir::OperatorFn> newFn;
        bool inRun = false;        ///< driven by run() (vs synchronous)
        uint64_t elapsed = 0;      ///< cycles since the swap started
        int attempt = 0;
        uint64_t packetsTotal = 0;
        uint64_t packetIdx = 0;
        int txCur = 0;             ///< transmissions of current packet
        uint64_t packetCycleLeft = 0;
        uint64_t ackWaitLeft = 0;  ///< drop detection countdown
        uint64_t backoffLeft = 0;
        uint64_t stallLeft = 0;    ///< dma_stall freeze countdown
        bool stalledThisAttempt = false;
        bool hung = false;         ///< page_hang fired; await watchdog
        uint64_t activateLeft = 0;
        uint64_t watchdogDeadline = 0; ///< in elapsed-cycles space
        uint64_t rollbackLeft = 0;
        SwapResult result;
        std::unique_ptr<obs::Span> span;
    };

    /** Queued requestSwap() entry. */
    struct SwapRequest
    {
        int pageId = 0;
        PageBinding nb;
        std::unique_ptr<ir::OperatorFn> newFn;
        uint64_t atCycle = 0;
    };

    void buildNocSystem();
    void buildDirectSystem();
    RunStats runInternal(uint64_t max_cycles, bool slice);
    bool stepPages(uint64_t cycle);
    bool anyInputReadable(const Page &page) const;
    void rearmPages();
    /** Fault-injection site name for @p page: the operator name,
     * prefixed with cfg.faultScope (tenant) when one is set. */
    std::string faultSite(const Page &page) const;

    // Swap engine.
    int findPage(int page_id) const;
    void beginSwap(int page_id, const PageBinding &nb,
                   std::unique_ptr<ir::OperatorFn> new_fn, bool in_run);
    void stepSwap(uint64_t run_cycle);
    void startAttempt();
    void transmissionResolved();
    void scheduleRetransmit();
    void attemptFailed();
    void finishSwap(SwapOutcome outcome, uint64_t run_cycle);
    void installImage(uint64_t run_cycle);
    void installFallback(uint64_t run_cycle);
    uint64_t packetCycles() const;
    uint64_t watchdogBudget() const;
    bool swapActive() const
    {
        return swap.phase != SwapPhase::Idle;
    }

    /** Telemetry accumulated across the run (one counter add at the
     * end instead of per-cycle registry traffic). */
    uint64_t statStalls = 0;
    std::vector<bool> pageDoneMarked;

    const ir::Graph &g;
    SystemConfig cfg;
    FaultInjector injector;
    std::vector<Page> pages;
    std::unique_ptr<noc::BftNoc> net;

    SwapState swap;
    std::vector<SwapRequest> swapQueue;
    std::vector<SwapResult> swapLog;

    // Direct-link mode storage.
    std::vector<std::unique_ptr<dataflow::WordFifo>> directFifos;
    std::vector<std::unique_ptr<dataflow::StreamPort>> portStorage;

    // DMA buffers.
    std::vector<std::vector<uint32_t>> hostIn;   // per ext input
    std::vector<size_t> hostInPos;
    std::vector<std::vector<uint32_t>> hostOut;  // per ext output
    std::vector<dataflow::StreamPort *> extInPorts;
    std::vector<dataflow::StreamPort *> extOutPorts;
};

} // namespace sys
} // namespace pld

#endif // PLD_SYS_SYSTEM_H
