/**
 * @file
 * Multi-tenant fabric scheduler: time-shares one page grid across
 * many independently compiled applications.
 *
 * The paper's fast-compile loop makes the fabric feel like a CPU to
 * one developer; this layer makes it feel like a CPU to many. Each
 * tenant is one compiled AppBuild (graph + page bindings + system
 * config) with its own SystemSim — the sim object IS the tenant's
 * checkpoint. The physical page grid is a scheduler-level ledger:
 * a tenant must hold one fabric page per binding to execute, and
 * when the grid is oversubscribed the scheduler evicts a resident
 * tenant (checkpoint drain: every in-flight flit lands in a
 * leaf-interface FIFO, which partial reconfiguration does not touch,
 * so stream state survives in place — the DFX model) and re-instates
 * it later by re-streaming its page images through the CRC-framed
 * hot-swap path. Re-instating an identical image resumes execution
 * exactly where the drain left it (HW pages keep their interpreter
 * state; softcores take the identical-image restore path in
 * SystemSim::installImage).
 *
 * Page numbering is virtual: each tenant's bindings address its own
 * private leaf space, and the ledger allocates physical page slots
 * at instatement (recorded for observability, invisible to the sim)
 * — the relocation a config stream applies when loading a partial
 * image into a different but shape-identical page.
 *
 * Fairness is deficit round-robin over PAGE-CYCLES (slice cycles x
 * pages held), so a wide tenant burns its budget faster than a
 * narrow one and a faulty tenant's retransmit/rollback/reinstate
 * cycles come out of its own allowance, never a neighbour's.
 *
 * Fault domains are per tenant, two-level:
 *  - Page-level faults (CRC-corrupt config streams, dropped packets,
 *    post-swap hangs) are contained by the PR-5 swap engine: bounded
 *    retransmit, watchdog, rollback, quarantine onto the softcore
 *    fallback — which computes the same function, so the tenant's
 *    outputs stay correct, just slower. Fault sites are scoped
 *    "tenant/op" (SystemConfig::faultScope), so a hostile fault plan
 *    cannot leak into a tenant it does not name.
 *  - Tenant-level hangs (no output words, no NoC delivery, and no
 *    completion for hangSliceLimit consecutive full slices) trip the
 *    scheduler's own watchdog: the tenant is evicted, excluded by
 *    exponential backoff, and retried until its retry budget is
 *    exhausted, then failed terminally (CompileCode::TenantFaulted)
 *    and its pages returned to the grid. Other tenants' outputs and
 *    schedules are never perturbed.
 *
 * The scheduler is strictly serial and deterministic: one tenant's
 * sim executes at a time, rotation order is by tenant id, and every
 * decision derives from sim results — so all tenant.* counters and
 * per-tenant output words are bit-identical under any PLD_THREADS.
 */

#ifndef PLD_SYS_TENANCY_H
#define PLD_SYS_TENANCY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sys/system.h"

namespace pld {
namespace sys {

/** Scheduler-wide policy knobs. */
struct TenantLimits
{
    /** Physical pages in the grid (XCU50 model: 22). */
    int fabricPages = 22;
    /** Admission bound on concurrently admitted tenants. */
    size_t maxTenants = 8;
    /** Per-tenant pending-request queue bound. */
    size_t requestQueueDepth = 4;
    /** Execution cycles per scheduler time slice. */
    uint64_t sliceCycles = 4000;
    /** Page-cycles credited to each runnable tenant per round. */
    uint64_t drrQuantum = 16000;
    /** Tenant-level fault events tolerated before terminal failure. */
    int retryBudget = 3;
    /** Backoff after a fault event, in rounds (doubles per event). */
    uint64_t backoffBaseRounds = 2;
    /** Consecutive zero-progress slices before a tenant counts as
     * hung (a full slice with no output words, no NoC deliveries,
     * and no completion). */
    int hangSliceLimit = 6;
    /** Scheduler-round bound for run() (a liveness backstop, not a
     * tuning knob; run() returns allWorkDone=false when hit). */
    uint64_t maxRounds = 1000000;
};

/** One application requesting fabric time. The graph must outlive
 * the scheduler (it is referenced, not copied — same contract as
 * SystemSim). */
struct TenantSpec
{
    /** Unique tenant name; becomes the fault-site scope prefix, so
     * it may not contain '/' or '*'. */
    std::string name;
    const ir::Graph *graph = nullptr;
    std::vector<PageBinding> bindings;
    SystemConfig sysCfg;
};

enum class TenantState {
    /** Admitted and schedulable (possibly backing off or evicted). */
    Active,
    /** Retry budget exhausted; terminally removed from the rotation,
     * pages returned, queued requests dropped. */
    Failed,
};

const char *tenantStateName(TenantState s);

/** Outcome of admit(): a rejected tenant was never registered. */
struct AdmitResult
{
    int tenantId = -1;
    bool accepted = false;
    Diagnostic diag;
};

/** Outcome of queueing one submit(). */
struct SubmitResult
{
    bool accepted = false;
    Diagnostic diag;
};

/** One completed request: per-external-output word streams, plus
 * the submit-to-completion latency in fabric cycles. */
struct BatchOutput
{
    std::vector<std::vector<uint32_t>> streams;
    uint64_t latencyCycles = 0;
};

/** Per-tenant accounting (all cycle figures are fabric cycles). */
struct TenantStats
{
    std::string name;
    TenantState state = TenantState::Active;
    uint64_t slices = 0;
    uint64_t servedCycles = 0;
    /** servedCycles x pages held: the DRR cost unit. */
    uint64_t servedPageCycles = 0;
    uint64_t batchesDone = 0;
    uint64_t wordsOut = 0;
    uint64_t evictions = 0;
    uint64_t instatements = 0;
    uint64_t checkpointCycles = 0;
    uint64_t reinstateCycles = 0;
    /** Tenant-level watchdog trips (hung-slice detections). */
    uint64_t hangs = 0;
    /** Tenant-level fault events (each consumed a retry). */
    uint64_t faultEvents = 0;
    /** Page-level containment, accumulated from swap results. */
    uint64_t rollbacks = 0;
    uint64_t retransmits = 0;
    uint64_t quarantinedPages = 0;
    uint64_t rejectedSubmits = 0;
    /** Requests dropped when the tenant failed terminally. */
    uint64_t droppedRequests = 0;
    int retriesLeft = 0;
    /** Nearest-rank percentiles over completed-batch latencies. */
    uint64_t latencyP50 = 0;
    uint64_t latencyP95 = 0;
    /** Terminal diagnostic when state == Failed. */
    Diagnostic failure;
};

/** Whole-run summary returned by run(). */
struct SchedStats
{
    uint64_t rounds = 0;
    uint64_t slices = 0;
    /** Fabric clock: execution + drain + reinstate cycles, summed
     * serially (tenants time-share one physical fabric). */
    uint64_t virtualCycles = 0;
    uint64_t evictions = 0;
    uint64_t instatements = 0;
    /** False only when maxRounds stopped the run early. */
    bool allWorkDone = false;
    /** Jain index over per-tenant served page-cycles (tenants that
     * received any service); 1.0 = perfectly fair. */
    double jainFairness = 0;
    std::vector<TenantStats> tenants;
};

/**
 * The scheduler. Admit tenants, submit input batches, run() to
 * completion, then collect each tenant's outputs with takeOutput().
 * All methods are meant for one thread; determinism comes from the
 * strictly serial schedule, not from locking.
 */
class TenantScheduler
{
  public:
    explicit TenantScheduler(TenantLimits limits = {});
    ~TenantScheduler();

    /**
     * Register a tenant. Rejected (CompileCode::AdmissionRejected)
     * when: the name is empty, contains '/' or '*', or duplicates an
     * admitted tenant; the graph is null; the bindings are empty,
     * exceed the fabric page count (such a tenant could never become
     * resident), or bind one page twice; or maxTenants is reached
     * (the only retriable rejection — re-admit after a tenant
     * fails or the scheduler is torn down).
     */
    AdmitResult admit(const TenantSpec &spec);

    /**
     * Queue one input batch: words per external input stream, in
     * graph extInputs order. Rejected when the tenant is unknown or
     * failed, the batch shape mismatches the graph, or the tenant's
     * request queue is full (retriable — resubmit after run()
     * drains it).
     */
    SubmitResult submit(int tenant_id,
                        std::vector<std::vector<uint32_t>> inputs);

    /**
     * Forward a hot-swap to a tenant's page (virtual page id, i.e.
     * the binding's pageId). Queued on the tenant's sim immediately
     * — residency only matters for execution — and performed during
     * the tenant's next slice. Validation (queue depth, duplicate
     * target, quarantined page) is SystemSim::requestSwap's.
     */
    SwapRequestResult requestTenantSwap(
        int tenant_id, int page_id, const PageBinding &nb,
        const ir::OperatorFn *new_fn = nullptr);

    /**
     * Run until every active tenant's queue is empty (or every
     * tenant with work has failed), then return the accounting.
     * Callable repeatedly: submit more batches and run again; stats
     * accumulate across calls.
     */
    SchedStats run();

    /** Completed batches since the last call, in completion order. */
    std::vector<BatchOutput> takeOutput(int tenant_id);

    TenantState tenantState(int tenant_id) const;
    TenantStats tenantStats(int tenant_id) const;
    size_t tenantCount() const { return tenants.size(); }
    /** Pages currently allocated to resident tenants. */
    int residentPages() const;

  private:
    struct Request
    {
        std::vector<std::vector<uint32_t>> inputs;
        uint64_t submittedAt = 0; ///< fabric clock at submit()
    };

    struct Tenant
    {
        std::string name;
        const ir::Graph *graph = nullptr;
        std::vector<PageBinding> bindings;
        std::unique_ptr<SystemSim> sim; ///< the checkpoint object
        TenantState state = TenantState::Active;

        std::vector<Request> queue; ///< front = index 0
        bool batchInProgress = false;
        std::vector<std::vector<uint32_t>> batchAccum;
        std::vector<BatchOutput> completed;
        std::vector<uint64_t> latencies;

        bool resident = false;
        bool everResident = false;
        std::vector<int> heldSlots; ///< physical page slots
        uint64_t lastScheduledRound = 0;

        int64_t deficit = 0; ///< page-cycles (may overdraft)
        uint64_t backoffUntilRound = 0;
        int retriesLeft = 0;
        int zeroProgressSlices = 0;
        uint64_t lastNocDelivered = 0;
        size_t swapLogSeen = 0; ///< swapHistory() delta cursor

        TenantStats stats;
    };

    bool hasWork(const Tenant &t) const;
    void ensureResident(Tenant &t);
    void evict(Tenant &t);
    void reinstate(Tenant &t);
    /** Run one slice; returns false when the tenant must leave the
     * inner DRR loop (fault event, failure, or no more work). */
    bool runOneSlice(Tenant &t);
    void absorbSwapResults(Tenant &t);
    void finishBatch(Tenant &t);
    void faultEvent(Tenant &t, const std::string &why);
    void failTenant(Tenant &t, const std::string &why);
    std::string counter(const Tenant &t, const char *suffix) const;

    TenantLimits limits;
    std::vector<std::unique_ptr<Tenant>> tenants;
    std::vector<int> freeSlots; ///< ascending physical page ids
    uint64_t fabricClock = 0;
    uint64_t round = 0;
    uint64_t totalSlices = 0;
    uint64_t totalEvictions = 0;
    uint64_t totalInstatements = 0;
};

} // namespace sys
} // namespace pld

#endif // PLD_SYS_TENANCY_H
