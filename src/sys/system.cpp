#include "sys/system.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace pld {
namespace sys {

using dataflow::FifoReadPort;
using dataflow::FifoWritePort;
using dataflow::WordFifo;
using interp::RunStatus;

SystemSim::SystemSim(const ir::Graph &g,
                     const std::vector<PageBinding> &bindings,
                     const SystemConfig &cfg)
    : g(g), cfg(cfg)
{
    pld_assert(bindings.size() == g.ops.size(),
               "need one page binding per operator");
    pages.resize(bindings.size());
    for (size_t i = 0; i < bindings.size(); ++i)
        pages[bindings[i].opIdx].binding = bindings[i];

    hostIn.resize(g.extInputs.size());
    hostInPos.assign(g.extInputs.size(), 0);
    hostOut.resize(g.extOutputs.size());

    if (cfg.useNoc)
        buildNocSystem();
    else
        buildDirectSystem();

    // Instantiate execution contexts now that ports exist.
}

void
SystemSim::buildNocSystem()
{
    int needed = cfg.dmaLeafBase +
                 static_cast<int>(g.extInputs.size() +
                                  g.extOutputs.size());
    net = std::make_unique<noc::BftNoc>(std::max(32, needed),
                                        cfg.nocPortsPerLeaf,
                                        cfg.nocFifoDepth);

    // Operator ports hang off their page's leaf interface.
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        const auto &fn = g.ops[oi].fn;
        int leaf = pages[oi].binding.pageId;
        pld_assert(static_cast<int>(fn.ports.size()) <=
                       cfg.nocPortsPerLeaf,
                   "%s has more ports than the leaf interface",
                   fn.name.c_str());
        std::vector<dataflow::StreamPort *> ports;
        for (size_t pi = 0; pi < fn.ports.size(); ++pi) {
            if (fn.ports[pi].dir == ir::PortDir::In)
                ports.push_back(net->inPort(leaf, int(pi)));
            else
                ports.push_back(net->outPort(leaf, int(pi)));
        }
        if (pages[oi].binding.impl == PageImpl::Hw) {
            pages[oi].exec = std::make_unique<interp::OperatorExec>(
                fn, ports);
        } else {
            pages[oi].core = std::make_unique<rv32::Core>(
                pages[oi].binding.elf, ports);
        }
    }

    // DMA endpoints.
    for (size_t i = 0; i < g.extInputs.size(); ++i) {
        int leaf = cfg.dmaLeafBase + static_cast<int>(i);
        extInPorts.push_back(net->outPort(leaf, 0));
    }
    for (size_t j = 0; j < g.extOutputs.size(); ++j) {
        int leaf = cfg.dmaLeafBase +
                   static_cast<int>(g.extInputs.size() + j);
        extOutPorts.push_back(net->inPort(leaf, 0));
    }

    // Linking: the loader sends config packets from the DMA leaf
    // programming every producer's destination register (Sec 4.3).
    int linker_leaf = cfg.dmaLeafBase;
    int link_idx = 0;
    for (const auto &l : g.links) {
        int src_leaf, src_port;
        if (l.src.isExternal()) {
            src_leaf = cfg.dmaLeafBase + l.src.port;
            src_port = 0;
        } else {
            src_leaf = pages[l.src.op].binding.pageId;
            src_port = l.src.port;
        }
        int dst_leaf, dst_port;
        if (l.dst.isExternal()) {
            dst_leaf = cfg.dmaLeafBase +
                       static_cast<int>(g.extInputs.size()) +
                       l.dst.port;
            dst_port = 0;
        } else {
            dst_leaf = pages[l.dst.op].binding.pageId;
            dst_port = l.dst.port;
        }
        net->sendConfig(linker_leaf, src_leaf, src_port, dst_leaf,
                        dst_port);
        // Each config packet is one reconfiguration event (Sec 4.3).
        obs::instant("sys", "sys.link.cfg")
            .arg("link", static_cast<int64_t>(link_idx++))
            .arg("dst_leaf", static_cast<int64_t>(dst_leaf));
        obs::count("sys.config_packets");
    }
}

void
SystemSim::buildDirectSystem()
{
    // Monolithic designs: dedicated FIFO per link (Sec 6.3 kernel
    // generator), no network.
    directFifos.reserve(g.links.size());
    for (const auto &l : g.links) {
        bool external = l.src.isExternal() || l.dst.isExternal();
        directFifos.push_back(std::make_unique<WordFifo>(
            external ? 0 : cfg.directFifoDepth));
    }

    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        const auto &fn = g.ops[oi].fn;
        std::vector<dataflow::StreamPort *> ports;
        for (size_t pi = 0; pi < fn.ports.size(); ++pi) {
            ir::Endpoint ep{static_cast<int>(oi),
                            static_cast<int>(pi)};
            if (fn.ports[pi].dir == ir::PortDir::In) {
                int li = g.linkInto(ep);
                portStorage.push_back(std::make_unique<FifoReadPort>(
                    *directFifos[li]));
            } else {
                int li = g.linkFrom(ep);
                portStorage.push_back(std::make_unique<FifoWritePort>(
                    *directFifos[li]));
            }
            ports.push_back(portStorage.back().get());
        }
        if (pages[oi].binding.impl == PageImpl::Hw) {
            pages[oi].exec = std::make_unique<interp::OperatorExec>(
                fn, ports);
        } else {
            pages[oi].core = std::make_unique<rv32::Core>(
                pages[oi].binding.elf, ports);
        }
    }

    for (size_t i = 0; i < g.extInputs.size(); ++i) {
        int li = g.linkFrom({ir::Endpoint::kExternal,
                             static_cast<int>(i)});
        portStorage.push_back(
            std::make_unique<FifoWritePort>(*directFifos[li]));
        extInPorts.push_back(portStorage.back().get());
    }
    for (size_t j = 0; j < g.extOutputs.size(); ++j) {
        int li = g.linkInto({ir::Endpoint::kExternal,
                             static_cast<int>(j)});
        portStorage.push_back(
            std::make_unique<FifoReadPort>(*directFifos[li]));
        extOutPorts.push_back(portStorage.back().get());
    }
}

void
SystemSim::loadInput(int ext_idx, const std::vector<uint32_t> &words)
{
    auto &buf = hostIn[static_cast<size_t>(ext_idx)];
    buf.insert(buf.end(), words.begin(), words.end());
}

bool
SystemSim::stepPages(uint64_t cycle)
{
    bool all_done = true;
    if (pageDoneMarked.size() != pages.size())
        pageDoneMarked.assign(pages.size(), false);
    size_t page_idx = static_cast<size_t>(-1);
    for (auto &page : pages) {
        ++page_idx;
        if (page.done)
            continue;
        if (page.binding.impl == PageImpl::Hw) {
            page.budget = std::min(page.budget + 1.0, 8.0);
            while (page.budget > 0 && !page.done) {
                const auto &st = page.exec->stats();
                uint64_t before = st.computeOps + st.memOps;
                RunStatus rs = page.exec->run(1);
                uint64_t delta =
                    (st.computeOps + st.memOps) - before;
                page.budget -=
                    std::max<double>(double(delta), 0.25) *
                    page.binding.cyclesPerOp;
                if (rs == RunStatus::BlockedOnRead ||
                    rs == RunStatus::BlockedOnWrite) {
                    ++statStalls;
                    break;
                }
                if (page.exec->done()) {
                    page.done = true;
                }
            }
        } else {
            while (!page.done && page.core->cycles() < cycle) {
                rv32::CoreStatus st = page.core->step(16);
                if (st == rv32::CoreStatus::Halted) {
                    page.done = true;
                } else if (st == rv32::CoreStatus::Trapped) {
                    pld_fatal("softcore trapped: %s (pc=0x%x)",
                              page.core->trapReason().c_str(),
                              page.core->pc());
                } else if (st != rv32::CoreStatus::Running) {
                    ++statStalls;
                    break; // blocked on a stream
                }
            }
        }
        if (page.done && !pageDoneMarked[page_idx]) {
            pageDoneMarked[page_idx] = true;
            obs::instant("sys", "sys.page.done")
                .arg("op", static_cast<int64_t>(page_idx))
                .arg("cycle", static_cast<int64_t>(cycle));
        }
        all_done &= page.done;
    }
    return all_done;
}

RunStats
SystemSim::run(uint64_t max_cycles)
{
    RunStats rs;
    obs::Span run_span("sys", "sys.run");
    statStalls = 0;

    // Linking phase: drain config packets (counts separately; this is
    // the seconds-scale "linking" cost the paper contrasts with
    // recompilation).
    if (net) {
        obs::Span link_span("sys", "sys.link");
        while (!net->idle()) {
            net->stepCycle();
            ++rs.configCycles;
            pld_assert(rs.configCycles < 1000000,
                       "linking never converged");
        }
        link_span.arg("config_cycles",
                      static_cast<int64_t>(rs.configCycles));
    }

    // One flow arrow per external stream: DMA start at cycle 0,
    // finish when the stream's last word moves. The sim is
    // single-threaded and cycle-deterministic, so cycle args are
    // structural.
    uint64_t words_in = 0, words_out = 0;
    std::vector<bool> in_flow_open(extInPorts.size(), false);
    for (size_t i = 0; i < extInPorts.size(); ++i) {
        if (hostInPos[i] < hostIn[i].size()) {
            obs::flowStart("sys", "sys.dma.in", i + 1)
                .arg("stream", static_cast<int64_t>(i))
                .arg("words",
                     static_cast<int64_t>(hostIn[i].size() -
                                          hostInPos[i]));
            in_flow_open[i] = true;
        }
    }

    uint64_t cycle = 0;
    for (; cycle < max_cycles; ++cycle) {
        // DMA: move host words.
        for (size_t i = 0; i < extInPorts.size(); ++i) {
            for (int w = 0; w < cfg.dmaWordsPerCycle; ++w) {
                if (hostInPos[i] < hostIn[i].size() &&
                    extInPorts[i]->canWrite()) {
                    extInPorts[i]->write(hostIn[i][hostInPos[i]++]);
                    ++words_in;
                }
            }
            if (in_flow_open[i] &&
                hostInPos[i] == hostIn[i].size()) {
                in_flow_open[i] = false;
                obs::flowFinish("sys", "sys.dma.in", i + 1)
                    .arg("stream", static_cast<int64_t>(i))
                    .arg("cycle", static_cast<int64_t>(cycle));
            }
        }
        for (size_t j = 0; j < extOutPorts.size(); ++j) {
            while (extOutPorts[j]->canRead()) {
                hostOut[j].push_back(extOutPorts[j]->read());
                ++words_out;
            }
        }

        bool pages_done = stepPages(cycle);
        if (net)
            net->stepCycle();

        if (pages_done) {
            bool inputs_done = true;
            for (size_t i = 0; i < hostIn.size(); ++i)
                inputs_done &= (hostInPos[i] == hostIn[i].size());
            bool drained = !net || net->idle();
            for (size_t j = 0; j < extOutPorts.size() && drained;
                 ++j) {
                drained &= !extOutPorts[j]->canRead();
            }
            if (inputs_done && drained) {
                ++cycle;
                rs.completed = true;
                break;
            }
        }
    }

    rs.cycles = cycle;
    if (net)
        rs.noc = net->stats();
    run_span.arg("cycles", static_cast<int64_t>(rs.cycles));
    run_span.arg("completed",
                 static_cast<int64_t>(rs.completed ? 1 : 0));
    obs::count("sys.runs");
    obs::count("sys.cycles", static_cast<int64_t>(rs.cycles));
    obs::count("sys.config_cycles",
               static_cast<int64_t>(rs.configCycles));
    obs::count("sys.dma.words.in", static_cast<int64_t>(words_in));
    obs::count("sys.dma.words.out", static_cast<int64_t>(words_out));
    obs::count("sys.page.stalls",
               static_cast<int64_t>(statStalls));
    return rs;
}

std::vector<uint32_t>
SystemSim::takeOutput(int ext_idx)
{
    return std::move(hostOut[static_cast<size_t>(ext_idx)]);
}

} // namespace sys
} // namespace pld
