#include "sys/system.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace pld {
namespace sys {

using dataflow::FifoReadPort;
using dataflow::FifoWritePort;
using dataflow::WordFifo;
using interp::RunStatus;

const char *
swapOutcomeName(SwapOutcome o)
{
    switch (o) {
      case SwapOutcome::Swapped: return "swapped";
      case SwapOutcome::RolledBack: return "rolled_back";
      case SwapOutcome::Quarantined: return "quarantined";
      case SwapOutcome::Rejected: return "rejected";
    }
    return "?";
}

SystemSim::SystemSim(const ir::Graph &g,
                     const std::vector<PageBinding> &bindings,
                     const SystemConfig &cfg)
    : g(g), cfg(cfg),
      injector(cfg.faults.empty() ? FaultPlan::fromEnv() : cfg.faults)
{
    pld_assert(bindings.size() == g.ops.size(),
               "need one page binding per operator");
    pages.resize(bindings.size());
    for (size_t i = 0; i < bindings.size(); ++i)
        pages[bindings[i].opIdx].binding = bindings[i];
    for (size_t oi = 0; oi < g.ops.size(); ++oi)
        pages[oi].fn = &g.ops[oi].fn;

    hostIn.resize(g.extInputs.size());
    hostInPos.assign(g.extInputs.size(), 0);
    hostOut.resize(g.extOutputs.size());

    if (cfg.useNoc)
        buildNocSystem();
    else
        buildDirectSystem();

    // Instantiate execution contexts now that ports exist.
}

void
SystemSim::buildNocSystem()
{
    int needed = cfg.dmaLeafBase +
                 static_cast<int>(g.extInputs.size() +
                                  g.extOutputs.size());
    net = std::make_unique<noc::BftNoc>(std::max(32, needed),
                                        cfg.nocPortsPerLeaf,
                                        cfg.nocFifoDepth);

    // Operator ports hang off their page's leaf interface.
    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        const auto &fn = g.ops[oi].fn;
        int leaf = pages[oi].binding.pageId;
        pld_assert(static_cast<int>(fn.ports.size()) <=
                       cfg.nocPortsPerLeaf,
                   "%s has more ports than the leaf interface",
                   fn.name.c_str());
        std::vector<dataflow::StreamPort *> ports;
        for (size_t pi = 0; pi < fn.ports.size(); ++pi) {
            if (fn.ports[pi].dir == ir::PortDir::In)
                ports.push_back(net->inPort(leaf, int(pi)));
            else
                ports.push_back(net->outPort(leaf, int(pi)));
        }
        pages[oi].ports = ports;
        if (pages[oi].binding.impl == PageImpl::Hw) {
            pages[oi].exec = std::make_unique<interp::OperatorExec>(
                fn, ports);
        } else {
            pages[oi].core = std::make_unique<rv32::Core>(
                pages[oi].binding.elf, ports);
        }
    }

    // DMA endpoints.
    for (size_t i = 0; i < g.extInputs.size(); ++i) {
        int leaf = cfg.dmaLeafBase + static_cast<int>(i);
        extInPorts.push_back(net->outPort(leaf, 0));
    }
    for (size_t j = 0; j < g.extOutputs.size(); ++j) {
        int leaf = cfg.dmaLeafBase +
                   static_cast<int>(g.extInputs.size() + j);
        extOutPorts.push_back(net->inPort(leaf, 0));
    }

    // Linking: the loader sends config packets from the DMA leaf
    // programming every producer's destination register (Sec 4.3).
    int linker_leaf = cfg.dmaLeafBase;
    int link_idx = 0;
    for (const auto &l : g.links) {
        int src_leaf, src_port;
        if (l.src.isExternal()) {
            src_leaf = cfg.dmaLeafBase + l.src.port;
            src_port = 0;
        } else {
            src_leaf = pages[l.src.op].binding.pageId;
            src_port = l.src.port;
        }
        int dst_leaf, dst_port;
        if (l.dst.isExternal()) {
            dst_leaf = cfg.dmaLeafBase +
                       static_cast<int>(g.extInputs.size()) +
                       l.dst.port;
            dst_port = 0;
        } else {
            dst_leaf = pages[l.dst.op].binding.pageId;
            dst_port = l.dst.port;
        }
        net->sendConfig(linker_leaf, src_leaf, src_port, dst_leaf,
                        dst_port);
        // Each config packet is one reconfiguration event (Sec 4.3).
        obs::instant("sys", "sys.link.cfg")
            .arg("link", static_cast<int64_t>(link_idx++))
            .arg("dst_leaf", static_cast<int64_t>(dst_leaf));
        obs::count("sys.config_packets");
    }
}

void
SystemSim::buildDirectSystem()
{
    // Monolithic designs: dedicated FIFO per link (Sec 6.3 kernel
    // generator), no network.
    directFifos.reserve(g.links.size());
    for (const auto &l : g.links) {
        bool external = l.src.isExternal() || l.dst.isExternal();
        directFifos.push_back(std::make_unique<WordFifo>(
            external ? 0 : cfg.directFifoDepth));
    }

    for (size_t oi = 0; oi < g.ops.size(); ++oi) {
        const auto &fn = g.ops[oi].fn;
        std::vector<dataflow::StreamPort *> ports;
        for (size_t pi = 0; pi < fn.ports.size(); ++pi) {
            ir::Endpoint ep{static_cast<int>(oi),
                            static_cast<int>(pi)};
            if (fn.ports[pi].dir == ir::PortDir::In) {
                int li = g.linkInto(ep);
                portStorage.push_back(std::make_unique<FifoReadPort>(
                    *directFifos[li]));
            } else {
                int li = g.linkFrom(ep);
                portStorage.push_back(std::make_unique<FifoWritePort>(
                    *directFifos[li]));
            }
            ports.push_back(portStorage.back().get());
        }
        pages[oi].ports = ports;
        if (pages[oi].binding.impl == PageImpl::Hw) {
            pages[oi].exec = std::make_unique<interp::OperatorExec>(
                fn, ports);
        } else {
            pages[oi].core = std::make_unique<rv32::Core>(
                pages[oi].binding.elf, ports);
        }
    }

    for (size_t i = 0; i < g.extInputs.size(); ++i) {
        int li = g.linkFrom({ir::Endpoint::kExternal,
                             static_cast<int>(i)});
        portStorage.push_back(
            std::make_unique<FifoWritePort>(*directFifos[li]));
        extInPorts.push_back(portStorage.back().get());
    }
    for (size_t j = 0; j < g.extOutputs.size(); ++j) {
        int li = g.linkInto({ir::Endpoint::kExternal,
                             static_cast<int>(j)});
        portStorage.push_back(
            std::make_unique<FifoReadPort>(*directFifos[li]));
        extOutPorts.push_back(portStorage.back().get());
    }
}

void
SystemSim::loadInput(int ext_idx, const std::vector<uint32_t> &words)
{
    auto &buf = hostIn[static_cast<size_t>(ext_idx)];
    buf.insert(buf.end(), words.begin(), words.end());
}

bool
SystemSim::anyInputReadable(const Page &page) const
{
    for (size_t pi = 0; pi < page.fn->ports.size(); ++pi) {
        if (page.fn->ports[pi].dir == ir::PortDir::In &&
            page.ports[pi]->canRead())
            return true;
    }
    return false;
}

void
SystemSim::rearmPages()
{
    bool new_input = false;
    for (size_t i = 0; i < hostIn.size(); ++i)
        new_input |= hostInPos[i] < hostIn[i].size();
    if (!new_input)
        return;
    // A completed page is reset to its entry state so the next batch
    // re-runs it; pages that never finished keep their progress.
    // A restartable page that starved out (a function-changing swap
    // or a quarantine landed mid-stream) counted as quiescent for
    // run() completion and must equally restart from entry: without
    // this, a quarantined page carries a half-executed fallback core
    // into the next batch and consumes the wrong number of words.
    // Re-arming from page.binding keeps a quarantined page pinned to
    // its softcore image — the binding was rewritten at quarantine.
    for (size_t i = 0; i < pages.size(); ++i) {
        auto &page = pages[i];
        if (!page.done && !(page.restartable && page.starved))
            continue;
        page.done = false;
        page.budget = 0;
        page.starved = false;
        if (i < pageDoneMarked.size())
            pageDoneMarked[i] = false;
        if (page.exec)
            page.exec->reset();
        if (page.core)
            page.core = std::make_unique<rv32::Core>(page.binding.elf,
                                                     page.ports);
    }
}

bool
SystemSim::stepPages(uint64_t cycle)
{
    bool all_done = true;
    if (pageDoneMarked.size() != pages.size())
        pageDoneMarked.assign(pages.size(), false);
    size_t page_idx = static_cast<size_t>(-1);
    for (auto &page : pages) {
        ++page_idx;
        if (page.done)
            continue;
        if (page.paused) {
            // Frozen by an in-flight swap; the system cannot complete
            // while the swap engine holds the page.
            all_done = false;
            continue;
        }
        if (page.restartable && page.starved) {
            if (!anyInputReadable(page))
                continue; // quiescent: restarted page with no work
            page.starved = false;
        }
        if (page.binding.impl == PageImpl::Hw) {
            page.budget = std::min(page.budget + 1.0, 8.0);
            while (page.budget > 0 && !page.done) {
                const auto &st = page.exec->stats();
                uint64_t before = st.computeOps + st.memOps;
                RunStatus rs = page.exec->run(1);
                uint64_t delta =
                    (st.computeOps + st.memOps) - before;
                page.budget -=
                    std::max<double>(double(delta), 0.25) *
                    page.binding.cyclesPerOp;
                if (rs == RunStatus::BlockedOnRead ||
                    rs == RunStatus::BlockedOnWrite) {
                    ++statStalls;
                    if (page.restartable &&
                        rs == RunStatus::BlockedOnRead &&
                        !anyInputReadable(page))
                        page.starved = true;
                    break;
                }
                if (page.exec->done()) {
                    page.done = true;
                }
            }
        } else {
            while (!page.done &&
                   page.core->cycles() - page.coreSyncCycles <
                       cycle - page.coreSyncRun) {
                rv32::CoreStatus st = page.core->step(16);
                if (st == rv32::CoreStatus::Halted) {
                    page.done = true;
                } else if (st == rv32::CoreStatus::Trapped) {
                    pld_fatal("softcore trapped: %s (pc=0x%x)",
                              page.core->trapReason().c_str(),
                              page.core->pc());
                } else if (st != rv32::CoreStatus::Running) {
                    ++statStalls;
                    if (page.restartable &&
                        st == rv32::CoreStatus::BlockedOnRead &&
                        !anyInputReadable(page))
                        page.starved = true;
                    break; // blocked on a stream
                }
            }
        }
        if (page.done && !pageDoneMarked[page_idx]) {
            pageDoneMarked[page_idx] = true;
            obs::instant("sys", "sys.page.done")
                .arg("op", static_cast<int64_t>(page_idx))
                .arg("cycle", static_cast<int64_t>(cycle));
        }
        all_done &= page.done || (page.restartable && page.starved);
    }
    return all_done;
}

std::string
SystemSim::faultSite(const Page &page) const
{
    if (cfg.faultScope.empty())
        return page.fn->name;
    return cfg.faultScope + "/" + page.fn->name;
}

RunStats
SystemSim::run(uint64_t max_cycles)
{
    return runInternal(max_cycles, /*slice=*/false);
}

RunStats
SystemSim::runSlice(uint64_t cycles)
{
    return runInternal(cycles, /*slice=*/true);
}

RunStats
SystemSim::runInternal(uint64_t max_cycles, bool slice)
{
    RunStats rs;
    obs::Span run_span("sys", slice ? "sys.slice" : "sys.run");
    statStalls = 0;

    rearmPages();
    // Re-base every softcore's clock sync so carried-over cores
    // (batch 2+, quarantine fallbacks) track this run's cycle 0.
    for (auto &page : pages) {
        if (page.core) {
            page.coreSyncRun = 0;
            page.coreSyncCycles = page.core->cycles();
        }
    }

    // Linking phase: drain config packets (counts separately; this is
    // the seconds-scale "linking" cost the paper contrasts with
    // recompilation).
    if (net) {
        obs::Span link_span("sys", "sys.link");
        // Transit-idle, not full idle: a checkpointed tenant resumes
        // with words parked in leaf FIFOs, which only drain once the
        // pages below start executing.
        while (!net->transitIdle()) {
            net->stepCycle();
            ++rs.configCycles;
            pld_assert(rs.configCycles < 1000000,
                       "linking never converged");
        }
        link_span.arg("config_cycles",
                      static_cast<int64_t>(rs.configCycles));
    }

    // One flow arrow per external stream: DMA start at cycle 0,
    // finish when the stream's last word moves. The sim is
    // single-threaded and cycle-deterministic, so cycle args are
    // structural.
    uint64_t words_in = 0, words_out = 0;
    std::vector<bool> in_flow_open(extInPorts.size(), false);
    for (size_t i = 0; i < extInPorts.size(); ++i) {
        if (hostInPos[i] < hostIn[i].size()) {
            obs::flowStart("sys", "sys.dma.in", i + 1)
                .arg("stream", static_cast<int64_t>(i))
                .arg("words",
                     static_cast<int64_t>(hostIn[i].size() -
                                          hostInPos[i]));
            in_flow_open[i] = true;
        }
    }

    uint64_t cycle = 0;
    for (; cycle < max_cycles; ++cycle) {
        // Swap engine: start any due queued swap, then advance it.
        if (!swapActive() && !swapQueue.empty() &&
            swapQueue.front().atCycle <= cycle) {
            SwapRequest req = std::move(swapQueue.front());
            swapQueue.erase(swapQueue.begin());
            beginSwap(req.pageId, req.nb, std::move(req.newFn), true);
        }
        if (swapActive())
            stepSwap(cycle);

        // DMA: move host words.
        for (size_t i = 0; i < extInPorts.size(); ++i) {
            for (int w = 0; w < cfg.dmaWordsPerCycle; ++w) {
                if (hostInPos[i] < hostIn[i].size() &&
                    extInPorts[i]->canWrite()) {
                    extInPorts[i]->write(hostIn[i][hostInPos[i]++]);
                    ++words_in;
                }
            }
            if (in_flow_open[i] &&
                hostInPos[i] == hostIn[i].size()) {
                in_flow_open[i] = false;
                obs::flowFinish("sys", "sys.dma.in", i + 1)
                    .arg("stream", static_cast<int64_t>(i))
                    .arg("cycle", static_cast<int64_t>(cycle));
            }
        }
        for (size_t j = 0; j < extOutPorts.size(); ++j) {
            while (extOutPorts[j]->canRead()) {
                hostOut[j].push_back(extOutPorts[j]->read());
                ++words_out;
            }
        }

        bool pages_done = stepPages(cycle);
        if (net)
            net->stepCycle();

        if (pages_done && !swapActive()) {
            if (!swapQueue.empty()) {
                // Work ran out before the requested start cycle:
                // start the swap now rather than stranding it.
                SwapRequest req = std::move(swapQueue.front());
                swapQueue.erase(swapQueue.begin());
                beginSwap(req.pageId, req.nb, std::move(req.newFn),
                          true);
                continue;
            }
            bool inputs_done = true;
            for (size_t i = 0; i < hostIn.size(); ++i)
                inputs_done &= (hostInPos[i] == hostIn[i].size());
            bool drained = !net || net->idle();
            for (size_t j = 0; j < extOutPorts.size() && drained;
                 ++j) {
                drained &= !extOutPorts[j]->canRead();
            }
            if (inputs_done && drained) {
                ++cycle;
                rs.completed = true;
                break;
            }
        }
    }

    rs.cycles = cycle;
    if (net)
        rs.noc = net->stats();
    run_span.arg("cycles", static_cast<int64_t>(rs.cycles));
    run_span.arg("completed",
                 static_cast<int64_t>(rs.completed ? 1 : 0));
    if (!rs.completed && !slice) {
        // A run that hit max_cycles stalled; make that loud in the
        // trace instead of a silent completed=false. A slice that
        // hit its budget merely yielded back to the scheduler.
        obs::instant("sys", "sys.run.timeout")
            .arg("cycles", static_cast<int64_t>(rs.cycles))
            .arg("max_cycles", static_cast<int64_t>(max_cycles));
        obs::count("sys.run.timeouts");
    }
    obs::count(slice ? "sys.slices" : "sys.runs");
    obs::count("sys.cycles", static_cast<int64_t>(rs.cycles));
    obs::count("sys.config_cycles",
               static_cast<int64_t>(rs.configCycles));
    obs::count("sys.dma.words.in", static_cast<int64_t>(words_in));
    obs::count("sys.dma.words.out", static_cast<int64_t>(words_out));
    obs::count("sys.page.stalls",
               static_cast<int64_t>(statStalls));
    return rs;
}

std::vector<uint32_t>
SystemSim::takeOutput(int ext_idx)
{
    return std::move(hostOut[static_cast<size_t>(ext_idx)]);
}

// ---------------------------------------------------------------------
// Hot-swap engine
// ---------------------------------------------------------------------

int
SystemSim::findPage(int page_id) const
{
    for (size_t i = 0; i < pages.size(); ++i) {
        if (pages[i].binding.pageId == page_id)
            return static_cast<int>(i);
    }
    return -1;
}

bool
SystemSim::pageQuarantined(int page_id) const
{
    int idx = findPage(page_id);
    pld_assert(idx >= 0, "no page at leaf %d", page_id);
    return pages[static_cast<size_t>(idx)].quarantined;
}

PageImpl
SystemSim::pageImpl(int page_id) const
{
    int idx = findPage(page_id);
    pld_assert(idx >= 0, "no page at leaf %d", page_id);
    return pages[static_cast<size_t>(idx)].binding.impl;
}

const PageBinding &
SystemSim::pageBinding(int page_id) const
{
    int idx = findPage(page_id);
    pld_assert(idx >= 0, "no page at leaf %d", page_id);
    return pages[static_cast<size_t>(idx)].binding;
}

uint64_t
SystemSim::packetCycles() const
{
    // One 32-bit config word per cycle over the ICAP-style channel.
    return std::max<uint64_t>(1, cfg.swapPacketBytes / 4);
}

uint64_t
SystemSim::watchdogBudget() const
{
    if (cfg.swapWatchdogCycles)
        return cfg.swapWatchdogCycles;
    // Auto: generous enough that a fault-free stream — even one that
    // retransmits every packet to the limit — never trips it, so the
    // watchdog only ever reports genuine hangs.
    uint64_t max_backoff =
        cfg.swapBackoffBase
        << std::min<uint64_t>(
               static_cast<uint64_t>(cfg.swapMaxRetransmits), 10);
    uint64_t per_tx = 1 + packetCycles() + cfg.swapAckTimeoutCycles +
                      max_backoff;
    uint64_t per_packet =
        per_tx * static_cast<uint64_t>(cfg.swapMaxRetransmits + 1);
    return swap.packetsTotal * per_packet + cfg.swapDmaStallCycles +
           cfg.swapActivationCycles + 256;
}

SwapResult
SystemSim::swapPage(int page_id, const PageBinding &nb,
                    const ir::OperatorFn *new_fn)
{
    std::unique_ptr<ir::OperatorFn> fn_copy;
    if (new_fn)
        fn_copy = std::make_unique<ir::OperatorFn>(*new_fn);
    beginSwap(page_id, nb, std::move(fn_copy), false);
    uint64_t guard = 0;
    while (swapActive()) {
        stepSwap(0);
        if (net)
            net->stepCycle();
        pld_assert(++guard < 100000000ull, "swap never terminated");
    }
    return swapLog.back();
}

SwapRequestResult
SystemSim::requestSwap(int page_id, const PageBinding &nb,
                       uint64_t at_cycle, const ir::OperatorFn *new_fn)
{
    // Validate at queueing time: a conflicting or doomed request is
    // rejected with a structured diagnostic instead of being queued
    // and failing long after the caller stopped looking.
    const auto reject = [&](CompileCode code, bool retriable,
                            std::string why) {
        SwapRequestResult rr;
        rr.diag.code = code;
        rr.diag.stage = CompileStage::Swap;
        rr.diag.severity = DiagSeverity::Error;
        rr.diag.page = page_id;
        rr.diag.retriable = retriable;
        rr.diag.detail = std::move(why);
        obs::count("sys.swap.request_rejected");
        obs::instant("sys", "sys.swap.request_rejected")
            .arg("page", static_cast<int64_t>(page_id))
            .arg("why", rr.diag.detail);
        return rr;
    };

    if (swapQueue.size() >= cfg.swapQueueDepth)
        return reject(CompileCode::SwapRejected, /*retriable=*/true,
                      "pending-swap queue full (" +
                          std::to_string(cfg.swapQueueDepth) +
                          " entries); retry after a queued swap "
                          "completes");
    int idx = findPage(page_id);
    if (idx < 0)
        return reject(CompileCode::SwapRejected, /*retriable=*/false,
                      "no page at leaf " + std::to_string(page_id));
    if (pages[static_cast<size_t>(idx)].quarantined)
        return reject(CompileCode::SwapRejected, /*retriable=*/false,
                      "page is quarantined (pinned to its softcore "
                      "fallback); swaps are rejected");
    for (const auto &q : swapQueue) {
        if (q.pageId == page_id)
            return reject(
                CompileCode::SwapRejected, /*retriable=*/true,
                "a queued swap already targets this page; "
                "conflicting images cannot be queued");
    }
    if (swapActive() &&
        pages[swap.pageIdx].binding.pageId == page_id)
        return reject(CompileCode::SwapRejected, /*retriable=*/true,
                      "a swap of this page is in flight");

    SwapRequest req;
    req.pageId = page_id;
    req.nb = nb;
    if (new_fn)
        req.newFn = std::make_unique<ir::OperatorFn>(*new_fn);
    req.atCycle = at_cycle;
    swapQueue.push_back(std::move(req));
    SwapRequestResult rr;
    rr.accepted = true;
    rr.diag.stage = CompileStage::Swap;
    return rr;
}

uint64_t
SystemSim::drainForCheckpoint()
{
    if (!net)
        return 0;
    uint64_t spent = 0;
    // A partial reconfiguration caught mid-stream cannot be
    // checkpointed — run the active swap to completion first (the
    // engine's own watchdog bounds this: it retries, rolls back, or
    // quarantines, but always terminates).
    while (swapActive()) {
        stepSwap(0);
        net->stepCycle();
        ++spent;
        pld_assert(spent < 100000000ull,
                   "checkpoint swap completion never terminated");
    }
    // Then quiesce the network fabric, not the leaf interfaces: with
    // every page frozen, words queued in leaf FIFOs cannot move (and
    // do not need to — that state survives reconfiguration in
    // place), but flits in switch registers must land before the
    // grid can be handed to another tenant.
    while (!net->transitIdle() && spent < cfg.swapDrainTimeoutCycles) {
        net->stepCycle();
        ++spent;
    }
    obs::count("sys.checkpoint.drain_cycles",
               static_cast<int64_t>(spent));
    return spent;
}

void
SystemSim::beginSwap(int page_id, const PageBinding &nb,
                     std::unique_ptr<ir::OperatorFn> new_fn,
                     bool in_run)
{
    pld_assert(net, "hot swap requires the NoC overlay (useNoc)");
    pld_assert(!swapActive(), "one swap at a time");
    swap = SwapState{};
    swap.inRun = in_run;
    swap.nb = nb;
    swap.newFn = std::move(new_fn);
    obs::count("sys.swap.requests");

    int idx = findPage(page_id);
    if (idx < 0 || pages[static_cast<size_t>(idx)].quarantined) {
        swap.result.outcome = SwapOutcome::Rejected;
        obs::count("sys.swap.rejected");
        obs::instant("sys", "sys.swap.rejected")
            .arg("page", static_cast<int64_t>(page_id));
        swapLog.push_back(swap.result);
        return;
    }
    swap.pageIdx = static_cast<size_t>(idx);
    Page &page = pages[swap.pageIdx];
    page.paused = true;
    swap.packetsTotal = std::max<uint64_t>(
        1, (nb.imageBytes + cfg.swapPacketBytes - 1) /
               cfg.swapPacketBytes);
    swap.phase = SwapPhase::Draining;
    swap.span = std::make_unique<obs::Span>("sys", "sys.swap");
    swap.span->arg("op", page.fn->name)
        .arg("page", static_cast<int64_t>(page_id))
        .arg("packets", static_cast<int64_t>(swap.packetsTotal));
    obs::instant("sys", "sys.swap.begin")
        .arg("op", page.fn->name)
        .arg("page", static_cast<int64_t>(page_id))
        .arg("packets", static_cast<int64_t>(swap.packetsTotal));
}

void
SystemSim::startAttempt()
{
    Page &page = pages[swap.pageIdx];
    swap.phase = SwapPhase::Streaming;
    swap.packetIdx = 0;
    swap.txCur = 0;
    swap.packetCycleLeft = 0;
    swap.ackWaitLeft = 0;
    swap.backoffLeft = 0;
    swap.stallLeft = 0;
    swap.stalledThisAttempt = false;
    swap.hung = false;
    swap.activateLeft = 0;
    swap.result.attempts = swap.attempt + 1;
    swap.watchdogDeadline = swap.elapsed + watchdogBudget();
    obs::instant("sys", "sys.swap.attempt")
        .arg("op", page.fn->name)
        .arg("attempt", static_cast<int64_t>(swap.attempt));
    if (injector.fires(FaultKind::DmaStall, faultSite(page),
                       swap.attempt * kFaultAttemptStride)) {
        swap.stallLeft = cfg.swapDmaStallCycles;
        swap.stalledThisAttempt = true;
        ++swap.result.dmaStalls;
        obs::count("sys.swap.dma_stalls");
    }
}

void
SystemSim::scheduleRetransmit()
{
    ++swap.txCur;
    if (swap.txCur > cfg.swapMaxRetransmits) {
        attemptFailed();
        return;
    }
    ++swap.result.retransmits;
    obs::count("sys.swap.retransmits");
    swap.backoffLeft = cfg.swapBackoffBase
                       << std::min(swap.txCur - 1, 10);
}

void
SystemSim::transmissionResolved()
{
    Page &page = pages[swap.pageIdx];
    const std::string op = faultSite(page);
    // Fault coordinate: swap attempt in the high bits, transmission
    // index in the low bits (clamped to the stride), packet ordinal
    // as the salt — the runtime mirror of the compile-ladder scheme.
    int coord = swap.attempt * kFaultAttemptStride +
                std::min(swap.txCur, kFaultAttemptStride - 1);
    uint64_t salt = swap.packetIdx;

    // Frame the packet: payload derived from the image content hash,
    // CRC-32 over the payload (the real check, not a modelled one).
    std::vector<uint8_t> payload(cfg.swapPacketBytes);
    for (size_t i = 0; i < payload.size(); i += 8) {
        Hasher h;
        h.u64(swap.nb.imageHash);
        h.u64(swap.packetIdx);
        h.u64(i);
        uint64_t w = h.digest();
        for (size_t b = 0; b < 8 && i + b < payload.size(); ++b)
            payload[i + b] = static_cast<uint8_t>(w >> (8 * b));
    }
    uint32_t frame_crc = crc32(payload.data(), payload.size());

    if (injector.fires(FaultKind::ConfigDrop, op, coord, salt)) {
        // Packet lost in flight: the sender only learns via ack
        // timeout, then retransmits.
        ++swap.result.drops;
        obs::count("sys.swap.drops");
        swap.ackWaitLeft = std::max<uint64_t>(1,
                                              cfg.swapAckTimeoutCycles);
        return;
    }
    if (injector.fires(FaultKind::ConfigCorrupt, op, coord, salt)) {
        // Bit flip in flight; the page's CRC check catches it and
        // NAKs immediately.
        payload[static_cast<size_t>(coord) % payload.size()] ^=
            static_cast<uint8_t>(1u << (salt % 8));
        pld_assert(crc32(payload.data(), payload.size()) != frame_crc,
                   "CRC-32 failed to detect a single-bit corruption");
        ++swap.result.crcErrors;
        obs::count("sys.swap.crc_errors");
        scheduleRetransmit();
        return;
    }
    // Accepted: CRC verified, commit and move to the next packet.
    pld_assert(crc32(payload.data(), payload.size()) == frame_crc,
               "clean packet failed its own CRC");
    ++swap.result.packets;
    obs::count("sys.swap.packets");
    swap.txCur = 0;
    ++swap.packetIdx;
    if (swap.packetIdx == swap.packetsTotal) {
        swap.phase = SwapPhase::Activating;
        swap.activateLeft = std::max<uint64_t>(
            1, cfg.swapActivationCycles);
    }
}

void
SystemSim::attemptFailed()
{
    Page &page = pages[swap.pageIdx];
    // Roll back: re-stream the previous image fault-free (its frames
    // are known-good and the config channel fault window has passed);
    // the page's execution context was never torn down, so only the
    // streaming time is charged.
    ++swap.result.rollbacks;
    obs::count("sys.swap.rollbacks");
    obs::instant("sys", "sys.swap.rollback")
        .arg("op", page.fn->name)
        .arg("attempt", static_cast<int64_t>(swap.attempt));
    uint64_t old_packets = std::max<uint64_t>(
        1, (page.binding.imageBytes + cfg.swapPacketBytes - 1) /
               cfg.swapPacketBytes);
    swap.phase = SwapPhase::RollingBack;
    swap.rollbackLeft = old_packets * (packetCycles() + 1);
}

void
SystemSim::stepSwap(uint64_t run_cycle)
{
    Page &page = pages[swap.pageIdx];
    ++swap.elapsed;
    switch (swap.phase) {
      case SwapPhase::Idle:
        return;
      case SwapPhase::Draining:
        // A live (in-run) swap waits for the page's outbound traffic
        // to drain — the page keeps executing and empties its own
        // queues. A synchronous swap runs against a frozen fabric
        // (checkpoint reinstatement): queued words can never drain
        // and never need to, so only in-transit traffic gates it.
        if (swap.inRun ? net->leafQuiet(page.binding.pageId)
                       : net->leafTransitQuiet(page.binding.pageId)) {
            startAttempt();
            return;
        }
        if (swap.elapsed > cfg.swapDrainTimeoutCycles) {
            // The leaf never quiesced: abort before any image bits
            // were committed. The old page was never touched.
            swap.result.watchdogFired = true;
            obs::count("sys.swap.watchdog_fired");
            finishSwap(SwapOutcome::RolledBack, run_cycle);
        }
        return;
      case SwapPhase::Streaming:
        if (swap.elapsed >= swap.watchdogDeadline) {
            swap.result.watchdogFired = true;
            obs::count("sys.swap.watchdog_fired");
            attemptFailed();
            return;
        }
        if (swap.stallLeft) {
            --swap.stallLeft;
            return;
        }
        if (swap.backoffLeft) {
            --swap.backoffLeft;
            return;
        }
        if (swap.ackWaitLeft) {
            if (--swap.ackWaitLeft == 0)
                scheduleRetransmit(); // drop confirmed by timeout
            return;
        }
        if (swap.packetCycleLeft) {
            if (--swap.packetCycleLeft == 0)
                transmissionResolved();
            return;
        }
        // Begin the next transmission of the current packet.
        swap.packetCycleLeft = packetCycles();
        return;
      case SwapPhase::Activating:
        if (swap.elapsed >= swap.watchdogDeadline) {
            swap.result.watchdogFired = true;
            obs::count("sys.swap.watchdog_fired");
            attemptFailed();
            return;
        }
        if (swap.hung)
            return; // page never reports up; watchdog will fire
        if (swap.activateLeft && --swap.activateLeft == 0) {
            if (injector.fires(FaultKind::PageHang, faultSite(page),
                               swap.attempt * kFaultAttemptStride)) {
                swap.hung = true;
                obs::instant("sys", "sys.swap.hang")
                    .arg("op", page.fn->name)
                    .arg("attempt",
                         static_cast<int64_t>(swap.attempt));
                return;
            }
            finishSwap(SwapOutcome::Swapped, run_cycle);
        }
        return;
      case SwapPhase::RollingBack:
        if (swap.rollbackLeft) {
            --swap.rollbackLeft;
            return;
        }
        if (swap.attempt + 1 < cfg.swapMaxAttempts) {
            ++swap.attempt;
            startAttempt();
        } else {
            finishSwap(SwapOutcome::Quarantined, run_cycle);
        }
        return;
    }
}

void
SystemSim::installImage(uint64_t run_cycle)
{
    Page &page = pages[swap.pageIdx];
    PageBinding nb = swap.nb;
    nb.opIdx = page.binding.opIdx;
    nb.pageId = page.binding.pageId; // swaps never relocate a page
    bool fn_changed = swap.newFn != nullptr;
    if (fn_changed) {
        page.ownedFn = std::move(swap.newFn);
        page.fn = page.ownedFn.get();
    }
    bool restart = fn_changed || nb.impl != page.binding.impl;
    if (nb.impl == PageImpl::Hw) {
        if (restart || !page.exec) {
            page.core.reset();
            page.exec = std::make_unique<interp::OperatorExec>(
                *page.fn, page.ports);
            page.restartable = true;
            page.starved = false;
            page.done = false;
            page.budget = 0;
            if (swap.pageIdx < pageDoneMarked.size())
                pageDoneMarked[swap.pageIdx] = false;
        }
        // else: same function, re-timed/re-placed image — the
        // operator's architectural stream state lives in the leaf
        // interface (not reconfigured), so execution resumes where
        // the drain left it; only cyclesPerOp changes.
    } else if (!restart && page.core && nb.imageHash != 0 &&
               nb.imageHash == page.binding.imageHash) {
        // Checkpoint/restore: re-instating the *identical* softcore
        // image (same content hash — the eviction/reinstate path of
        // the tenant scheduler) restores the read-back core state
        // instead of resetting to the entry point, so an evicted
        // tenant resumes mid-batch exactly where its drain left it.
        // Only the clock sync is re-based; the streaming cost was
        // already charged by the swap engine.
        page.coreSyncRun = run_cycle;
        page.coreSyncCycles = page.core->cycles();
    } else {
        page.exec.reset();
        page.core = std::make_unique<rv32::Core>(nb.elf, page.ports);
        page.coreSyncRun = run_cycle;
        page.coreSyncCycles = 0;
        page.restartable = true;
        page.starved = false;
        page.done = false;
        page.budget = 0;
        if (swap.pageIdx < pageDoneMarked.size())
            pageDoneMarked[swap.pageIdx] = false;
    }
    page.binding = nb;
}

void
SystemSim::installFallback(uint64_t run_cycle)
{
    Page &page = pages[swap.pageIdx];
    page.quarantined = true;
    obs::count("sys.swap.quarantined");
    // Prefer the new image's fallback binary (it implements the
    // edited function); fall back to the old binding's; with neither,
    // pin the old image in place.
    const PageBinding *src = nullptr;
    if (swap.nb.hasFallback)
        src = &swap.nb;
    else if (page.binding.hasFallback)
        src = &page.binding;
    obs::instant("sys", "sys.swap.quarantine")
        .arg("op", page.fn->name)
        .arg("fallback", static_cast<int64_t>(src ? 1 : 0));
    if (!src)
        return; // old image stays; future swaps are rejected
    if (src == &swap.nb && swap.newFn) {
        page.ownedFn = std::move(swap.newFn);
        page.fn = page.ownedFn.get();
    }
    page.exec.reset();
    page.core =
        std::make_unique<rv32::Core>(src->fallbackElf, page.ports);
    page.coreSyncRun = run_cycle;
    page.coreSyncCycles = 0;
    page.binding.impl = PageImpl::Softcore;
    page.binding.elf = src->fallbackElf;
    page.binding.imageBytes = src->fallbackElf.footprintBytes();
    page.binding.imageHash = 0; // fallback image, not the failed one
    page.binding.hasFallback = true;
    page.binding.fallbackElf = src->fallbackElf;
    page.restartable = true;
    page.starved = false;
    page.done = false;
    page.budget = 0;
    if (swap.pageIdx < pageDoneMarked.size())
        pageDoneMarked[swap.pageIdx] = false;
}

void
SystemSim::finishSwap(SwapOutcome outcome, uint64_t run_cycle)
{
    Page &page = pages[swap.pageIdx];
    if (outcome == SwapOutcome::Swapped) {
        installImage(run_cycle);
        obs::count("sys.swap.completed");
    } else if (outcome == SwapOutcome::Quarantined) {
        installFallback(run_cycle);
    }
    page.paused = false;
    swap.result.outcome = outcome;
    swap.result.cycles = swap.elapsed;
    obs::record("sys.swap.cycles",
                static_cast<double>(swap.result.cycles));
    obs::instant("sys", "sys.swap.done")
        .arg("op", page.fn->name)
        .arg("outcome", swapOutcomeName(outcome))
        .arg("cycles", static_cast<int64_t>(swap.result.cycles))
        .arg("retransmits",
             static_cast<int64_t>(swap.result.retransmits));
    if (swap.span) {
        swap.span->arg("outcome", swapOutcomeName(outcome))
            .arg("cycles", static_cast<int64_t>(swap.result.cycles))
            .arg("packets", static_cast<int64_t>(swap.result.packets))
            .arg("retransmits",
                 static_cast<int64_t>(swap.result.retransmits))
            .arg("rollbacks",
                 static_cast<int64_t>(swap.result.rollbacks));
        swap.span.reset();
    }
    swapLog.push_back(swap.result);
    swap.newFn.reset();
    swap.phase = SwapPhase::Idle;
}

} // namespace sys
} // namespace pld
