#include "sys/tenancy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pld {
namespace sys {

const char *
tenantStateName(TenantState s)
{
    switch (s) {
      case TenantState::Active: return "active";
      case TenantState::Failed: return "failed";
    }
    return "?";
}

namespace {

/** Nearest-rank percentile over an unsorted sample set. */
uint64_t
nearestRank(std::vector<uint64_t> samples, double q)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    size_t rank = static_cast<size_t>(
        std::max(1.0, std::ceil(q * double(samples.size()))));
    return samples[std::min(rank, samples.size()) - 1];
}

Diagnostic
tenancyDiag(CompileCode code, bool retriable, std::string why)
{
    Diagnostic d;
    d.code = code;
    d.stage = CompileStage::Tenancy;
    d.severity = DiagSeverity::Error;
    d.retriable = retriable;
    d.detail = std::move(why);
    return d;
}

} // namespace

TenantScheduler::TenantScheduler(TenantLimits lim) : limits(lim)
{
    pld_assert(limits.fabricPages > 0, "empty fabric");
    freeSlots.resize(static_cast<size_t>(limits.fabricPages));
    for (int i = 0; i < limits.fabricPages; ++i)
        freeSlots[static_cast<size_t>(i)] = i;
}

TenantScheduler::~TenantScheduler() = default;

std::string
TenantScheduler::counter(const Tenant &t, const char *suffix) const
{
    return "tenant." + t.name + "." + suffix;
}

AdmitResult
TenantScheduler::admit(const TenantSpec &spec)
{
    const auto reject = [&](bool retriable, std::string why) {
        AdmitResult r;
        r.diag = tenancyDiag(CompileCode::AdmissionRejected,
                             retriable, std::move(why));
        obs::count("tenant.admission_rejected");
        obs::instant("sys", "tenant.admission_rejected")
            .arg("tenant", spec.name)
            .arg("why", r.diag.detail);
        return r;
    };

    if (spec.name.empty())
        return reject(false, "tenant name is empty");
    if (spec.name.find('/') != std::string::npos ||
        spec.name.find('*') != std::string::npos)
        return reject(false,
                      "tenant name '" + spec.name +
                          "' may not contain '/' or '*' (it scopes "
                          "fault sites)");
    if (!spec.graph)
        return reject(false, "tenant graph is null");
    for (const auto &t : tenants) {
        if (t->name == spec.name)
            return reject(false, "tenant name '" + spec.name +
                                     "' already admitted");
    }
    if (tenants.size() >= limits.maxTenants)
        return reject(true,
                      "tenant limit reached (" +
                          std::to_string(limits.maxTenants) +
                          "); retry after a tenant completes");
    if (spec.bindings.empty())
        return reject(false, "tenant has no page bindings");
    if (spec.bindings.size() >
        static_cast<size_t>(limits.fabricPages))
        return reject(
            false, "tenant needs " +
                       std::to_string(spec.bindings.size()) +
                       " pages but the fabric has " +
                       std::to_string(limits.fabricPages) +
                       "; it could never become resident");
    for (size_t i = 0; i < spec.bindings.size(); ++i) {
        for (size_t j = i + 1; j < spec.bindings.size(); ++j) {
            if (spec.bindings[i].pageId == spec.bindings[j].pageId)
                return reject(
                    false,
                    "bindings bind page " +
                        std::to_string(spec.bindings[i].pageId) +
                        " twice");
        }
    }

    auto t = std::make_unique<Tenant>();
    t->name = spec.name;
    t->graph = spec.graph;
    t->bindings = spec.bindings;
    SystemConfig cfg = spec.sysCfg;
    cfg.faultScope = spec.name;
    t->sim =
        std::make_unique<SystemSim>(*spec.graph, spec.bindings, cfg);
    t->retriesLeft = limits.retryBudget;
    t->batchAccum.resize(spec.graph->extOutputs.size());
    t->stats.name = spec.name;

    AdmitResult r;
    r.tenantId = static_cast<int>(tenants.size());
    r.accepted = true;
    r.diag.stage = CompileStage::Tenancy;
    tenants.push_back(std::move(t));
    obs::count("tenant.admitted");
    obs::instant("sys", "tenant.admitted")
        .arg("tenant", spec.name)
        .arg("pages",
             static_cast<int64_t>(spec.bindings.size()));
    return r;
}

SubmitResult
TenantScheduler::submit(int tenant_id,
                        std::vector<std::vector<uint32_t>> inputs)
{
    const auto reject = [&](CompileCode code, bool retriable,
                            std::string why) {
        SubmitResult r;
        r.diag = tenancyDiag(code, retriable, std::move(why));
        obs::count("tenant.submit_rejected");
        return r;
    };

    if (tenant_id < 0 ||
        static_cast<size_t>(tenant_id) >= tenants.size())
        return reject(CompileCode::AdmissionRejected, false,
                      "unknown tenant id " +
                          std::to_string(tenant_id));
    Tenant &t = *tenants[static_cast<size_t>(tenant_id)];
    if (t.state == TenantState::Failed)
        return reject(CompileCode::TenantFaulted, false,
                      "tenant '" + t.name +
                          "' failed terminally: " +
                          t.stats.failure.detail);
    if (inputs.size() != t.graph->extInputs.size())
        return reject(CompileCode::AdmissionRejected, false,
                      "batch has " + std::to_string(inputs.size()) +
                          " input streams, graph declares " +
                          std::to_string(t.graph->extInputs.size()));
    if (t.queue.size() >= limits.requestQueueDepth) {
        ++t.stats.rejectedSubmits;
        return reject(CompileCode::AdmissionRejected, true,
                      "tenant '" + t.name +
                          "' request queue full (" +
                          std::to_string(limits.requestQueueDepth) +
                          "); resubmit after run() drains it");
    }

    Request req;
    req.inputs = std::move(inputs);
    req.submittedAt = fabricClock;
    t.queue.push_back(std::move(req));
    obs::count("tenant.requests");
    SubmitResult r;
    r.accepted = true;
    r.diag.stage = CompileStage::Tenancy;
    return r;
}

SwapRequestResult
TenantScheduler::requestTenantSwap(int tenant_id, int page_id,
                                   const PageBinding &nb,
                                   const ir::OperatorFn *new_fn)
{
    if (tenant_id < 0 ||
        static_cast<size_t>(tenant_id) >= tenants.size()) {
        SwapRequestResult r;
        r.diag = tenancyDiag(CompileCode::SwapRejected, false,
                             "unknown tenant id " +
                                 std::to_string(tenant_id));
        return r;
    }
    Tenant &t = *tenants[static_cast<size_t>(tenant_id)];
    if (t.state == TenantState::Failed) {
        SwapRequestResult r;
        r.diag = tenancyDiag(CompileCode::TenantFaulted, false,
                             "tenant '" + t.name +
                                 "' failed terminally");
        return r;
    }
    // Queue on the tenant's sim now (residency only gates execution);
    // the swap runs during the tenant's next slice.
    return t.sim->requestSwap(page_id, nb, 0, new_fn);
}

bool
TenantScheduler::hasWork(const Tenant &t) const
{
    return t.state == TenantState::Active &&
           (!t.queue.empty() || t.batchInProgress ||
            t.sim->pendingSwapRequests() > 0);
}

int
TenantScheduler::residentPages() const
{
    return limits.fabricPages - static_cast<int>(freeSlots.size());
}

void
TenantScheduler::evict(Tenant &t)
{
    if (!t.resident)
        return;
    uint64_t drained = t.sim->drainForCheckpoint();
    t.stats.checkpointCycles += drained;
    fabricClock += drained;
    // The drain may have run an in-flight swap to completion —
    // charge its rollbacks/quarantines to this tenant now.
    absorbSwapResults(t);
    freeSlots.insert(freeSlots.end(), t.heldSlots.begin(),
                     t.heldSlots.end());
    std::sort(freeSlots.begin(), freeSlots.end());
    t.heldSlots.clear();
    t.resident = false;
    ++t.stats.evictions;
    ++totalEvictions;
    obs::count("tenant.evictions");
    obs::instant("sys", "tenant.evict")
        .arg("tenant", t.name)
        .arg("drain_cycles", static_cast<int64_t>(drained));
}

void
TenantScheduler::reinstate(Tenant &t)
{
    // Re-stream every page's CURRENT image through the CRC-framed
    // swap path. Identical images restore execution state (see
    // SystemSim::installImage); quarantined pages stay pinned to
    // their fallback and are skipped (their image is re-loaded
    // outside the swap engine — swaps on them are rejected by
    // design). Faults here are the tenant's own, charged to its
    // deficit below via reinstateCycles.
    uint64_t cost = 0;
    for (const auto &b : t.bindings) {
        if (t.sim->pageQuarantined(b.pageId))
            continue;
        const PageBinding &cur = t.sim->pageBinding(b.pageId);
        SwapResult r = t.sim->swapPage(b.pageId, cur);
        cost += r.cycles;
    }
    t.stats.reinstateCycles += cost;
    fabricClock += cost;
    t.deficit -=
        static_cast<int64_t>(cost * t.bindings.size());
    absorbSwapResults(t);
    obs::count("tenant.reinstate_cycles",
               static_cast<int64_t>(cost));
}

void
TenantScheduler::ensureResident(Tenant &t)
{
    t.lastScheduledRound = round;
    if (t.resident)
        return;
    size_t need = t.bindings.size();
    while (freeSlots.size() < need) {
        // Victim: the least-recently scheduled resident tenant
        // (ties by id order). One always exists — residency totals
        // the fabric and `need` fits it (checked at admission).
        Tenant *victim = nullptr;
        for (auto &cand : tenants) {
            if (!cand->resident || cand.get() == &t)
                continue;
            if (!victim ||
                cand->lastScheduledRound <
                    victim->lastScheduledRound)
                victim = cand.get();
        }
        pld_assert(victim, "oversubscribed grid with no victim");
        evict(*victim);
    }
    t.heldSlots.assign(freeSlots.begin(),
                       freeSlots.begin() +
                           static_cast<long>(need));
    freeSlots.erase(freeSlots.begin(),
                    freeSlots.begin() + static_cast<long>(need));
    t.resident = true;
    ++t.stats.instatements;
    ++totalInstatements;
    obs::count("tenant.instatements");
    obs::instant("sys", "tenant.instate")
        .arg("tenant", t.name)
        .arg("pages", static_cast<int64_t>(need))
        .arg("first_slot",
             static_cast<int64_t>(t.heldSlots.front()));
    if (t.everResident)
        reinstate(t);
    else
        t.everResident = true;
}

void
TenantScheduler::absorbSwapResults(Tenant &t)
{
    const auto &log = t.sim->swapHistory();
    for (; t.swapLogSeen < log.size(); ++t.swapLogSeen) {
        const SwapResult &e = log[t.swapLogSeen];
        t.stats.rollbacks += static_cast<uint64_t>(e.rollbacks);
        t.stats.retransmits += e.retransmits;
        if (e.outcome == SwapOutcome::Quarantined) {
            ++t.stats.quarantinedPages;
            obs::count("tenant.page_quarantines");
        }
    }
}

void
TenantScheduler::finishBatch(Tenant &t)
{
    pld_assert(t.batchInProgress && !t.queue.empty(),
               "batch completion without a batch");
    BatchOutput out;
    out.streams = std::move(t.batchAccum);
    t.batchAccum.assign(t.graph->extOutputs.size(), {});
    uint64_t lat = fabricClock - t.queue.front().submittedAt;
    out.latencyCycles = lat;
    t.latencies.push_back(lat);
    t.completed.push_back(std::move(out));
    t.queue.erase(t.queue.begin());
    t.batchInProgress = false;
    ++t.stats.batchesDone;
    obs::count("tenant.batches");
    obs::record("tenant.latency_cycles", static_cast<double>(lat));
    obs::record(counter(t, "latency_cycles"),
                static_cast<double>(lat));
    obs::instant("sys", "tenant.batch_done")
        .arg("tenant", t.name)
        .arg("latency", static_cast<int64_t>(lat));
}

void
TenantScheduler::failTenant(Tenant &t, const std::string &why)
{
    t.state = TenantState::Failed;
    t.stats.state = TenantState::Failed;
    t.stats.failure = tenancyDiag(CompileCode::TenantFaulted,
                                  false, why);
    // The in-progress batch (if any) is still queue.front(), so the
    // queue length alone counts every dropped request exactly once.
    t.stats.droppedRequests += t.queue.size();
    t.queue.clear();
    t.batchInProgress = false;
    evict(t);
    obs::count("tenant.failed");
    obs::instant("sys", "tenant.failed")
        .arg("tenant", t.name)
        .arg("why", why);
}

void
TenantScheduler::faultEvent(Tenant &t, const std::string &why)
{
    ++t.stats.faultEvents;
    t.zeroProgressSlices = 0;
    obs::count("tenant.faults");
    obs::instant("sys", "tenant.fault")
        .arg("tenant", t.name)
        .arg("why", why)
        .arg("retries_left",
             static_cast<int64_t>(t.retriesLeft));
    if (t.retriesLeft == 0) {
        failTenant(t, "retry budget exhausted: " + why);
        return;
    }
    --t.retriesLeft;
    t.stats.retriesLeft = t.retriesLeft;
    evict(t);
    uint64_t backoff =
        limits.backoffBaseRounds
        << std::min<uint64_t>(t.stats.faultEvents - 1, 10);
    t.backoffUntilRound = round + backoff;
    obs::count("tenant.backoffs");
}

bool
TenantScheduler::runOneSlice(Tenant &t)
{
    ensureResident(t);
    if (t.state == TenantState::Failed)
        return false;

    if (!t.batchInProgress && !t.queue.empty()) {
        const Request &req = t.queue.front();
        for (size_t i = 0; i < req.inputs.size(); ++i)
            t.sim->loadInput(static_cast<int>(i), req.inputs[i]);
        t.batchInProgress = true;
    }

    RunStats rs = t.sim->runSlice(limits.sliceCycles);
    uint64_t served = rs.cycles + rs.configCycles;
    uint64_t cost = served * t.bindings.size();
    fabricClock += served;
    t.deficit -= static_cast<int64_t>(cost);
    ++t.stats.slices;
    ++totalSlices;
    t.stats.servedCycles += served;
    t.stats.servedPageCycles += cost;
    obs::count("tenant.slices");
    obs::count("tenant.cycles", static_cast<int64_t>(served));
    obs::count(counter(t, "page_cycles"),
               static_cast<int64_t>(cost));

    // Drain this slice's output words into the batch accumulator.
    uint64_t words = 0;
    for (size_t j = 0; j < t.batchAccum.size(); ++j) {
        std::vector<uint32_t> v =
            t.sim->takeOutput(static_cast<int>(j));
        words += v.size();
        t.batchAccum[j].insert(t.batchAccum[j].end(), v.begin(),
                               v.end());
    }
    t.stats.wordsOut += words;
    obs::count("tenant.words_out", static_cast<int64_t>(words));

    size_t swaps_before = t.swapLogSeen;
    absorbSwapResults(t);
    bool swap_activity = t.swapLogSeen != swaps_before;

    uint64_t delivered = rs.noc.delivered;
    bool noc_progress = delivered != t.lastNocDelivered;
    t.lastNocDelivered = delivered;

    if (rs.completed) {
        t.zeroProgressSlices = 0;
        if (t.batchInProgress)
            finishBatch(t);
        return hasWork(t);
    }
    if (words > 0 || noc_progress || swap_activity) {
        t.zeroProgressSlices = 0;
        return true;
    }
    if (++t.zeroProgressSlices >= limits.hangSliceLimit) {
        ++t.stats.hangs;
        obs::count("tenant.hangs");
        faultEvent(t, "hung: " +
                          std::to_string(t.zeroProgressSlices) +
                          " consecutive slices with no progress");
        return false; // evicted (or failed); leave the DRR loop
    }
    return true;
}

SchedStats
TenantScheduler::run()
{
    obs::Span span("sys", "tenant.schedule");
    uint64_t start_round = round;
    bool all_done = false;

    while (round - start_round < limits.maxRounds) {
        // Who still wants the fabric?
        std::vector<Tenant *> waiting, runnable;
        for (auto &t : tenants) {
            if (!hasWork(*t))
                continue;
            if (t->backoffUntilRound > round)
                waiting.push_back(t.get());
            else
                runnable.push_back(t.get());
        }
        if (runnable.empty() && waiting.empty()) {
            all_done = true;
            break;
        }
        if (runnable.empty()) {
            // Everyone with work is backing off: fast-forward the
            // round clock to the earliest re-entry.
            uint64_t next = waiting.front()->backoffUntilRound;
            for (Tenant *t : waiting)
                next = std::min(next, t->backoffUntilRound);
            round = next;
            continue;
        }
        ++round;
        for (Tenant *t : runnable) {
            t->deficit += static_cast<int64_t>(limits.drrQuantum);
            while (t->deficit > 0 && hasWork(*t) &&
                   t->backoffUntilRound <= round) {
                if (!runOneSlice(*t))
                    break;
            }
        }
    }

    SchedStats out;
    out.rounds = round;
    out.slices = totalSlices;
    out.virtualCycles = fabricClock;
    out.evictions = totalEvictions;
    out.instatements = totalInstatements;
    out.allWorkDone = all_done;

    double sum = 0, sumsq = 0;
    int n = 0;
    for (const auto &t : tenants) {
        if (t->stats.servedPageCycles == 0)
            continue;
        double x = static_cast<double>(t->stats.servedPageCycles);
        sum += x;
        sumsq += x * x;
        ++n;
    }
    out.jainFairness =
        n ? (sum * sum) / (double(n) * sumsq) : 0.0;
    obs::gauge("tenant.jain_fairness", out.jainFairness);

    for (size_t i = 0; i < tenants.size(); ++i)
        out.tenants.push_back(
            tenantStats(static_cast<int>(i)));
    span.arg("rounds", static_cast<int64_t>(out.rounds))
        .arg("slices", static_cast<int64_t>(out.slices))
        .arg("cycles", static_cast<int64_t>(out.virtualCycles));
    return out;
}

std::vector<BatchOutput>
TenantScheduler::takeOutput(int tenant_id)
{
    pld_assert(tenant_id >= 0 && static_cast<size_t>(tenant_id) <
                                     tenants.size(),
               "unknown tenant id %d", tenant_id);
    return std::move(
        tenants[static_cast<size_t>(tenant_id)]->completed);
}

TenantState
TenantScheduler::tenantState(int tenant_id) const
{
    pld_assert(tenant_id >= 0 && static_cast<size_t>(tenant_id) <
                                     tenants.size(),
               "unknown tenant id %d", tenant_id);
    return tenants[static_cast<size_t>(tenant_id)]->state;
}

TenantStats
TenantScheduler::tenantStats(int tenant_id) const
{
    pld_assert(tenant_id >= 0 && static_cast<size_t>(tenant_id) <
                                     tenants.size(),
               "unknown tenant id %d", tenant_id);
    const Tenant &t = *tenants[static_cast<size_t>(tenant_id)];
    TenantStats s = t.stats;
    s.name = t.name;
    s.state = t.state;
    s.retriesLeft = t.retriesLeft;
    s.latencyP50 = nearestRank(t.latencies, 0.50);
    s.latencyP95 = nearestRank(t.latencies, 0.95);
    return s;
}

} // namespace sys
} // namespace pld
