/**
 * @file
 * Logic synthesis / packing pass over a structural netlist.
 *
 * Plays the role of the "syn" stage in Table 2: it performs real,
 * netlist-size-proportional optimization work — repacking
 * under-utilized CLB cells that share nets into denser CLBs — which
 * both reduces the placement problem and gives the stage genuine
 * super-linear cost, so compile-time ratios behave like the vendor
 * flow's.
 */

#ifndef PLD_HLS_SYNTHESIS_H
#define PLD_HLS_SYNTHESIS_H

#include "netlist/netlist.h"

namespace pld {
namespace hls {

/** Outcome of the synthesis pass. */
struct SynReport
{
    int cellsBefore = 0;
    int cellsAfter = 0;
    int mergesApplied = 0;
    double seconds = 0;
};

/**
 * Optimize @p net in place.
 *
 * @param effort pass-count multiplier (1.0 = default two sweeps)
 */
SynReport synthesize(netlist::Netlist &net, double effort = 1.0);

} // namespace hls
} // namespace pld

#endif // PLD_HLS_SYNTHESIS_H
