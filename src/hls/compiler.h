/**
 * @file
 * The HLS compiler: operator IR -> packed structural netlist.
 *
 * Stands in for Vitis_HLS (paper Sec 6: hls_caller + operator
 * packer). Every arithmetic/logic node instantiates a hardware macro
 * sized by the resource model; arrays become BRAM banks; stream ports
 * become FIFO interfaces; a control FSM ties it together. With
 * `add_leaf_interface` the operator is wrapped with the standard leaf
 * interface used to join the linking network (-O1 flow); without it
 * the bare kernel is produced for monolithic (-O3 / Vitis) linking.
 */

#ifndef PLD_HLS_COMPILER_H
#define PLD_HLS_COMPILER_H

#include <string>

#include "common/diag.h"
#include "hls/schedule.h"
#include "ir/operator_fn.h"
#include "netlist/netlist.h"

namespace pld {
namespace hls {

/** Everything the HLS stage produces for one operator. */
struct HlsResult
{
    netlist::Netlist net;
    PerfEstimate perf;
    double seconds = 0;  ///< measured wall time of this stage
    std::string report;  ///< human-readable schedule summary
    /**
     * Structured outcome. HLS emission itself is deterministic and
     * total, so today this carries Warnings (an operator whose
     * estimated resources exceed the smallest page type and will
     * need a large page — or decomposition, Sec 4.1), but the
     * compile manager treats it as the stage's authoritative status.
     */
    CompileStatus status;
};

/**
 * Compile one operator. Deterministic: same IR -> same netlist.
 *
 * @param fn operator IR
 * @param add_leaf_interface wrap with the linking-network leaf logic
 */
HlsResult compileOperator(const ir::OperatorFn &fn,
                          bool add_leaf_interface);

} // namespace hls
} // namespace pld

#endif // PLD_HLS_COMPILER_H
