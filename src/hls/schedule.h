/**
 * @file
 * HLS scheduling analysis: initiation intervals, pipeline depths, and
 * whole-operator cycle estimates.
 *
 * Innermost loops are pipelined (the streaming style the operator
 * discipline produces): their cost is trips * II + depth, where II is
 * bounded below by BRAM port conflicts and loop-carried recurrences
 * (accumulators, read-modify-write arrays) and division latencies.
 * Outer loops and while-loops run sequentially. The resulting
 * PerfEstimate drives the timed HW page model: the system simulator
 * charges cyclesPerOp() per interpreter compute op, reproducing the
 * throughput the schedule predicts.
 */

#ifndef PLD_HLS_SCHEDULE_H
#define PLD_HLS_SCHEDULE_H

#include <string>
#include <vector>

#include "ir/operator_fn.h"

namespace pld {
namespace hls {

/** Per-loop scheduling facts for reports and tests. */
struct LoopReport
{
    std::string label;
    int64_t trips = 0;
    int ii = 1;       ///< initiation interval (innermost loops)
    int depth = 1;    ///< pipeline fill latency
    int opsPerIter = 0;
    bool pipelined = false;
};

/** Whole-operator static performance estimate. */
struct PerfEstimate
{
    double totalCycles = 0;
    double totalOps = 0;

    /** Cycle charge per interpreter compute op (timed HW model). */
    double
    cyclesPerOp() const
    {
        return totalOps > 0.5 ? totalCycles / totalOps : 1.0;
    }

    std::vector<LoopReport> loops;
};

/** Analyze one operator (does not touch the netlist). */
PerfEstimate analyzeOperator(const ir::OperatorFn &fn);

/** Latency (cycles) of an expression tree's critical path. */
int exprLatency(const ir::ExprPtr &e);

} // namespace hls
} // namespace pld

#endif // PLD_HLS_SCHEDULE_H
