#include "hls/resource_model.h"

#include <algorithm>

namespace pld {
namespace hls {

using ir::ExprKind;
using netlist::ResourceCount;

OpCost
opCost(ExprKind kind, int w)
{
    OpCost c;
    switch (kind) {
      case ExprKind::Add:
      case ExprKind::Sub:
      case ExprKind::Neg:
        c.res.luts = w;
        c.res.ffs = w;
        c.latency = 1;
        break;
      case ExprKind::Mul: {
        // DSP48-style slices: 27x18 multipliers tiled over the
        // operand width, plus glue.
        int tiles = std::max(1, ((w / 2 + 26) / 27) *
                                    ((w / 2 + 17) / 18));
        c.res.dsps = tiles;
        c.res.luts = w / 2;
        c.res.ffs = w;
        c.latency = 3;
        break;
      }
      case ExprKind::Div:
      case ExprKind::Mod:
        // Iterative restoring divider array: quadratic in width.
        c.res.luts = (w * w) / 3;
        c.res.ffs = w * 3;
        c.latency = w + 3;
        break;
      case ExprKind::Lt: case ExprKind::Le: case ExprKind::Gt:
      case ExprKind::Ge: case ExprKind::Eq: case ExprKind::Ne:
        c.res.luts = (w + 1) / 2;
        c.res.ffs = 1;
        c.latency = 1;
        break;
      case ExprKind::And: case ExprKind::Or: case ExprKind::Xor:
      case ExprKind::Not:
        c.res.luts = (w + 1) / 2;
        c.res.ffs = w / 2;
        c.latency = 1;
        break;
      case ExprKind::Shl:
      case ExprKind::Shr:
        // Constant shifts are wiring; small LUT cost for trimming.
        c.res.luts = w / 8 + 1;
        c.latency = 0;
        break;
      case ExprKind::Select:
        c.res.luts = w;
        c.res.ffs = w / 2;
        c.latency = 1;
        break;
      case ExprKind::LAnd: case ExprKind::LOr: case ExprKind::LNot:
        c.res.luts = 1;
        c.latency = 1;
        break;
      case ExprKind::Cast:
        // Binary-point alignment: wiring plus sign extension.
        c.res.luts = w / 8 + 1;
        c.latency = 0;
        break;
      case ExprKind::BitCast:
        c.latency = 0;
        break;
      default:
        break;
    }
    return c;
}

int
bramsFor(int64_t elems, int bits)
{
    // BRAM18 = 18 Kb. HLS packs element bits into the 18/36-wide
    // physical ports; model as ceil(total bits / 18Kb), width-padded
    // to the next power of two as real tools do.
    int padded = 1;
    while (padded < bits)
        padded <<= 1;
    int64_t total_bits = elems * padded;
    int64_t brams = (total_bits + 18 * 1024 - 1) / (18 * 1024);
    return static_cast<int>(std::max<int64_t>(1, brams));
}

ResourceCount
fsmOverhead(int num_statements)
{
    ResourceCount r;
    r.luts = 90 + 4 * num_statements;
    r.ffs = 60 + 2 * num_statements;
    return r;
}

ResourceCount
streamPortOverhead()
{
    ResourceCount r;
    r.luts = 55;
    r.ffs = 70;
    return r;
}

ResourceCount
leafInterfaceOverhead()
{
    // Paper Sec 4.1: "Our network interfaces run about 500 LUTs".
    ResourceCount r;
    r.luts = 500;
    r.ffs = 650;
    return r;
}

} // namespace hls
} // namespace pld
