#include "hls/compiler.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "hls/resource_model.h"
#include "obs/trace.h"

namespace pld {
namespace hls {

using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;
using netlist::Cell;
using netlist::Netlist;
using netlist::ResourceCount;
using netlist::SiteKind;

namespace {

/**
 * Netlist emission context. Walks the operator body creating one
 * hardware macro per op node and wiring macros bus-level.
 */
class Emitter
{
  public:
    explicit Emitter(const ir::OperatorFn &fn) : fn(fn)
    {
        varNet.assign(fn.vars.size(), -1);
    }

    Netlist
    emit(bool add_leaf_interface)
    {
        // Stream port interfaces.
        portNet.resize(fn.ports.size());
        for (size_t pi = 0; pi < fn.ports.size(); ++pi) {
            int c = emitGroup("port_" + fn.ports[pi].name,
                              streamPortOverhead(), 0, 0);
            portNet[pi] = net.addNet("n_port_" + fn.ports[pi].name,
                                     32, c);
        }

        // Array BRAM banks.
        arrayCell.resize(fn.arrays.size());
        arrayNet.resize(fn.arrays.size());
        for (size_t ai = 0; ai < fn.arrays.size(); ++ai) {
            const auto &a = fn.arrays[ai];
            int brams = bramsFor(a.size, a.elemType.width);
            int first = -1;
            for (int b = 0; b < brams; ++b) {
                Cell c;
                c.site = SiteKind::Bram;
                c.name = "bram_" + a.name + "_" + std::to_string(b);
                c.level = 2;
                c.stage = stage;
                int idx = net.addCell(std::move(c));
                if (first < 0)
                    first = idx;
                else
                    net.addSink(net.addNet("n_" + a.name + "_casc" +
                                               std::to_string(b),
                                           a.elemType.width, idx - 1),
                                idx);
            }
            arrayCell[ai] = first;
            arrayNet[ai] = net.addNet("n_" + a.name + "_q",
                                      a.elemType.width, first);
        }

        // Control FSM.
        int stmt_count = countStatements(fn.body);
        fsmCell = emitGroup("fsm", fsmOverhead(stmt_count), 0, 0);
        fsmNet = net.addNet("n_fsm_ctrl", 4, fsmCell);

        emitStmts(fn.body);

        if (add_leaf_interface) {
            int leaf = emitGroup("leaf_iface",
                                 leafInterfaceOverhead(), 0, 0);
            int leaf_net = net.addNet("n_leaf", 32, leaf);
            // The leaf interface fronts every stream port.
            for (size_t pi = 0; pi < fn.ports.size(); ++pi) {
                int sink = net.nets[portNet[pi]].driver;
                if (sink >= 0)
                    net.addSink(leaf_net, sink);
            }
        }

        return std::move(net);
    }

  private:
    static int
    countStatements(const std::vector<StmtPtr> &stmts)
    {
        int n = 0;
        for (const auto &s : stmts) {
            n += 1 + countStatements(s->body) +
                 countStatements(s->elseBody);
        }
        return n;
    }

    /**
     * Create a group of cells realizing @p res, chained internally.
     * Returns the index of the group's last cell (its output stage).
     */
    int
    emitGroup(const std::string &group_name, ResourceCount res,
              int level, int extra_dsps)
    {
        int last = -1;
        int64_t luts = res.luts;
        int64_t ffs = res.ffs;
        int part = 0;
        while (luts > 0 || ffs > 0 || last < 0) {
            Cell c;
            c.site = SiteKind::Clb;
            c.name = group_name + "_c" + std::to_string(part++);
            c.luts = static_cast<int>(std::min<int64_t>(8, luts));
            c.ffs = static_cast<int>(std::min<int64_t>(16, ffs));
            luts -= c.luts;
            ffs -= c.ffs;
            c.level = level;
            c.stage = stage;
            int idx = net.addCell(std::move(c));
            if (last >= 0) {
                int chain = net.addNet(group_name + "_chain" +
                                           std::to_string(part),
                                       8, last);
                net.addSink(chain, idx);
            }
            last = idx;
            if (luts <= 0 && ffs <= 0)
                break;
        }
        for (int d = 0; d < res.dsps + extra_dsps; ++d) {
            Cell c;
            c.site = SiteKind::Dsp;
            c.name = group_name + "_dsp" + std::to_string(d);
            c.level = level;
            c.stage = stage;
            int idx = net.addCell(std::move(c));
            int chain = net.addNet(group_name + "_dchain" +
                                       std::to_string(d),
                                   18, last);
            net.addSink(chain, idx);
            last = idx;
        }
        // Sparse control fanout keeps the FSM realistic without one
        // gigantic net distorting placement.
        if (fsmNet >= 0 && (groupCounter++ % 4 == 0))
            net.addSink(fsmNet, last);
        return last;
    }

    /** Emit expression tree; returns driving net index (or -1). */
    int
    emitExpr(const ExprPtr &e)
    {
        switch (e->kind) {
          case ExprKind::Const:
            return -1; // folded into the consuming macro
          case ExprKind::VarRef:
            return varNet[static_cast<size_t>(e->imm)];
          case ExprKind::StreamRead:
            return portNet[static_cast<size_t>(e->imm)];
          case ExprKind::ArrayRef: {
            int addr = emitExpr(e->args[0]);
            int bank = arrayCell[static_cast<size_t>(e->imm)];
            if (addr >= 0)
                net.addSink(addr, bank);
            return arrayNet[static_cast<size_t>(e->imm)];
          }
          default:
            break;
        }

        // Operation macro.
        std::vector<int> in_nets;
        int w = e->type.width;
        for (const auto &a : e->args) {
            in_nets.push_back(emitExpr(a));
            w = std::max(w, static_cast<int>(a->type.width));
        }
        OpCost cost = opCost(e->kind, w);
        if (cost.res.luts == 0 && cost.res.ffs == 0 &&
            cost.res.dsps == 0) {
            // Pure wiring (bitcast): forward the input net.
            return in_nets.empty() ? -1 : in_nets[0];
        }
        int out_cell = emitGroup(
            "op" + std::to_string(opCounter++) + "_" +
                ir::exprKindName(e->kind),
            cost.res, ++levelCounter % 8, 0);
        for (int n : in_nets) {
            if (n >= 0)
                net.addSink(n, firstCellOfLastGroup(out_cell));
        }
        return net.addNet("n_op" + std::to_string(opCounter), w,
                          out_cell);
    }

    /**
     * For sink attachment we approximate "the macro's input stage" by
     * the group's last cell (already chained); good enough for
     * placement locality.
     */
    int firstCellOfLastGroup(int last_cell) const { return last_cell; }

    void
    emitStmts(const std::vector<StmtPtr> &stmts)
    {
        for (const auto &s : stmts) {
            switch (s->kind) {
              case StmtKind::Assign: {
                int n = emitExpr(s->args[0]);
                varNet[static_cast<size_t>(s->imm)] = n;
                break;
              }
              case StmtKind::ArrayStore: {
                int addr = emitExpr(s->args[0]);
                int val = emitExpr(s->args[1]);
                int bank = arrayCell[static_cast<size_t>(s->imm)];
                if (addr >= 0)
                    net.addSink(addr, bank);
                if (val >= 0)
                    net.addSink(val, bank);
                break;
              }
              case StmtKind::StreamWrite: {
                int val = emitExpr(s->args[0]);
                int port_cell =
                    net.nets[portNet[static_cast<size_t>(s->imm)]]
                        .driver;
                if (val >= 0 && port_cell >= 0)
                    net.addSink(val, port_cell);
                break;
              }
              case StmtKind::For:
                ++stage;
                emitStmts(s->body);
                break;
              case StmtKind::While: {
                int c = emitExpr(s->args[0]);
                if (c >= 0)
                    net.addSink(c, fsmCell);
                ++stage;
                emitStmts(s->body);
                break;
              }
              case StmtKind::If: {
                int c = emitExpr(s->args[0]);
                if (c >= 0)
                    net.addSink(c, fsmCell);
                emitStmts(s->body);
                emitStmts(s->elseBody);
                break;
              }
              case StmtKind::Print:
                // Processor-only; elided by HW flows (the paper's
                // #ifdef RISCV guard).
                break;
              case StmtKind::Block:
                emitStmts(s->body);
                break;
            }
        }
    }

    const ir::OperatorFn &fn;
    Netlist net;
    std::vector<int> varNet;
    std::vector<int> portNet;
    std::vector<int> arrayCell;
    std::vector<int> arrayNet;
    int fsmCell = -1;
    int fsmNet = -1;
    int stage = 0;
    int opCounter = 0;
    int levelCounter = 0;
    int groupCounter = 0;
};

} // namespace

HlsResult
compileOperator(const ir::OperatorFn &fn, bool add_leaf_interface)
{
    Stopwatch sw;
    obs::Span span("hls", "hls.compile");
    span.arg("op", fn.name);
    obs::count("hls.operators");
    HlsResult r;
    {
        obs::Span sched("hls", "hls.schedule");
        r.perf = analyzeOperator(fn);
        sched.arg("est_cycles",
                  static_cast<int64_t>(r.perf.totalCycles));
        sched.arg("loops", static_cast<int64_t>(r.perf.loops.size()));
    }
    {
        obs::Span emit("hls", "hls.emit");
        Emitter em(fn);
        r.net = em.emit(add_leaf_interface);
        emit.arg("cells", static_cast<int64_t>(r.net.cells.size()));
        emit.arg("nets", static_cast<int64_t>(r.net.nets.size()));
    }

    std::string problem;
    pld_assert(r.net.checkConsistent(&problem),
               "%s: emitted inconsistent netlist: %s",
               fn.name.c_str(), problem.c_str());

    std::ostringstream os;
    ResourceCount res = r.net.resources();
    os << "operator " << fn.name << ": " << res.toString()
       << " cells=" << r.net.cells.size()
       << " nets=" << r.net.nets.size()
       << " estCycles=" << static_cast<int64_t>(r.perf.totalCycles)
       << "\n";
    for (const auto &l : r.perf.loops) {
        os << "  " << l.label << " trips=" << l.trips
           << (l.pipelined ? " II=" : " seq_iter_cycles=") << l.ii
           << " depth=" << l.depth << " ops/iter=" << l.opsPerIter
           << "\n";
    }
    r.report = os.str();

    // The smallest page type offers ~18k LUTs (Table 1). An operator
    // above that will need one of the scarce large pages — or
    // decomposition (Sec 4.1) — so flag it here at the HLS boundary
    // instead of surfacing it later as a mysterious placement
    // failure.
    constexpr int64_t kSmallestPageLuts = 18000;
    if (res.luts > kSmallestPageLuts) {
        Diagnostic d;
        d.code = CompileCode::DoesNotFit;
        d.stage = CompileStage::Hls;
        d.severity = DiagSeverity::Warning;
        d.op = fn.name;
        d.detail = detail::format(
            "estimated %lld LUTs exceeds the smallest page type "
            "(~%lld)",
            static_cast<long long>(res.luts),
            static_cast<long long>(kSmallestPageLuts));
        r.status.add(std::move(d));
    }
    r.seconds = sw.seconds();
    obs::record("hls.seconds", r.seconds);
    return r;
}

} // namespace hls
} // namespace pld
