#include "hls/schedule.h"

#include <algorithm>
#include <map>
#include <set>

#include "hls/resource_model.h"

namespace pld {
namespace hls {

using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;

int
exprLatency(const ExprPtr &e)
{
    int worst_child = 0;
    for (const auto &a : e->args)
        worst_child = std::max(worst_child, exprLatency(a));
    int w = e->type.width;
    for (const auto &a : e->args)
        w = std::max(w, static_cast<int>(a->type.width));
    int own = 0;
    if (ir::isBinary(e->kind) || ir::isUnary(e->kind) ||
        e->kind == ExprKind::Select) {
        own = opCost(e->kind, w).latency;
    } else if (e->kind == ExprKind::ArrayRef) {
        own = 2; // BRAM read
    } else if (e->kind == ExprKind::StreamRead) {
        own = 1;
    }
    return worst_child + own;
}

namespace {

int
countOps(const ExprPtr &e)
{
    int n = (ir::isBinary(e->kind) || ir::isUnary(e->kind) ||
             e->kind == ExprKind::Select)
                ? 1
                : 0;
    for (const auto &a : e->args)
        n += countOps(a);
    return n;
}

void
collectVarReads(const ExprPtr &e, std::set<int> &vars)
{
    if (e->kind == ExprKind::VarRef)
        vars.insert(static_cast<int>(e->imm));
    for (const auto &a : e->args)
        collectVarReads(a, vars);
}

void
countArrayAccesses(const ExprPtr &e, std::map<int, int> &counts)
{
    if (e->kind == ExprKind::ArrayRef)
        counts[static_cast<int>(e->imm)] += 1;
    for (const auto &a : e->args)
        countArrayAccesses(a, counts);
}

bool
containsLoop(const std::vector<StmtPtr> &stmts)
{
    for (const auto &s : stmts) {
        switch (s->kind) {
          case StmtKind::For:
          case StmtKind::While:
            return true;
          case StmtKind::If:
            if (containsLoop(s->body) || containsLoop(s->elseBody))
                return true;
            break;
          case StmtKind::Block:
            if (containsLoop(s->body))
                return true;
            break;
          default:
            break;
        }
    }
    return false;
}

struct BodyStats
{
    int ops = 0;
    int depth = 0;          ///< critical path latency of one iteration
    int recurrenceII = 1;   ///< loop-carried dependence bound
    std::map<int, int> arrayAccesses;
    std::set<int> varsRead;
    std::set<int> varsWritten;
};

void
scanBody(const std::vector<StmtPtr> &stmts, BodyStats &st)
{
    for (const auto &s : stmts) {
        for (const auto &e : s->args) {
            st.ops += countOps(e);
            st.depth = std::max(st.depth, exprLatency(e));
            collectVarReads(e, st.varsRead);
            countArrayAccesses(e, st.arrayAccesses);
        }
        switch (s->kind) {
          case StmtKind::Assign: {
            int v = static_cast<int>(s->imm);
            std::set<int> rhs_vars;
            collectVarReads(s->args[0], rhs_vars);
            if (rhs_vars.count(v) || st.varsWritten.count(v)) {
                // Accumulation (x = f(x, ...)): the update chain
                // bounds II.
                st.recurrenceII = std::max(
                    st.recurrenceII, exprLatency(s->args[0]));
            }
            st.varsWritten.insert(v);
            break;
          }
          case StmtKind::ArrayStore: {
            int a = static_cast<int>(s->imm);
            st.arrayAccesses[a] += 1;
            break;
          }
          case StmtKind::If:
            scanBody(s->body, st);
            scanBody(s->elseBody, st);
            break;
          case StmtKind::Block:
            scanBody(s->body, st);
            break;
          default:
            break;
        }
    }
}

struct Walker
{
    PerfEstimate est;
    int loopCounter = 0;

    /** Returns {cycles, ops} for one execution of the list. */
    std::pair<double, double>
    walk(const std::vector<StmtPtr> &stmts)
    {
        double cycles = 0, ops = 0;
        for (const auto &s : stmts) {
            double sc = 0, so = 0;
            for (const auto &e : s->args)
                so += countOps(e);
            switch (s->kind) {
              case StmtKind::Assign:
              case StmtKind::ArrayStore:
              case StmtKind::StreamWrite:
                // Sequential statement outside a pipelined loop:
                // costs its expression latency.
                sc = std::max(
                    1, s->args.empty() ? 1
                                       : exprLatency(s->args[0]));
                break;
              case StmtKind::Print:
                sc = 0; // elided in hardware
                break;
              case StmtKind::For: {
                int64_t trips =
                    std::max<int64_t>(0, (s->immHi - s->immLo +
                                          s->immStep - 1) /
                                             s->immStep);
                if (!containsLoop(s->body)) {
                    BodyStats bs;
                    scanBody(s->body, bs);
                    int ii = bs.recurrenceII;
                    for (const auto &[arr, n] : bs.arrayAccesses)
                        ii = std::max(ii, (n + 1) / 2);
                    int depth = bs.depth + 2;
                    sc = static_cast<double>(trips) * ii + depth;
                    so += static_cast<double>(trips) * bs.ops;

                    LoopReport lr;
                    lr.label = "L" + std::to_string(loopCounter++);
                    lr.trips = trips;
                    lr.ii = ii;
                    lr.depth = depth;
                    lr.opsPerIter = bs.ops;
                    lr.pipelined = true;
                    est.loops.push_back(lr);
                } else {
                    auto [bc, bo] = walk(s->body);
                    sc = static_cast<double>(trips) * (bc + 2) + 2;
                    so += static_cast<double>(trips) * bo;

                    LoopReport lr;
                    lr.label = "L" + std::to_string(loopCounter++);
                    lr.trips = trips;
                    lr.ii = static_cast<int>(bc + 2);
                    lr.depth = 0;
                    lr.opsPerIter = static_cast<int>(bo);
                    lr.pipelined = false;
                    est.loops.push_back(lr);
                }
                break;
              }
              case StmtKind::While: {
                int64_t trips = std::max<int64_t>(
                    1, s->tripEstimate > 0 ? s->tripEstimate : 16);
                auto [bc, bo] = walk(s->body);
                double cond_lat =
                    s->args.empty() ? 1 : exprLatency(s->args[0]);
                sc = static_cast<double>(trips) * (bc + cond_lat + 1);
                so += static_cast<double>(trips) * bo;
                break;
              }
              case StmtKind::If: {
                auto [tc, to] = walk(s->body);
                auto [ec, eo] = walk(s->elseBody);
                sc = 1 + std::max(tc, ec);
                // Area exists for both branches but only one set of
                // ops executes; charge the max for cycle/op balance.
                so += std::max(to, eo);
                break;
              }
              case StmtKind::Block: {
                auto [bc, bo] = walk(s->body);
                sc = bc;
                so += bo;
                break;
              }
            }
            cycles += sc;
            ops += so;
        }
        return {cycles, ops};
    }
};

} // namespace

PerfEstimate
analyzeOperator(const ir::OperatorFn &fn)
{
    Walker w;
    auto [cycles, ops] = w.walk(fn.body);
    w.est.totalCycles = std::max(1.0, cycles);
    w.est.totalOps = std::max(1.0, ops);
    return std::move(w.est);
}

} // namespace hls
} // namespace pld
