/**
 * @file
 * Hardware cost model for IR operations.
 *
 * Maps each IR operation to FPGA resources (LUT/FF/DSP) and latency,
 * calibrated against typical Vitis_HLS results so operator areas land
 * in the ranges Table 4 reports. Division is deliberately expensive
 * (iterative array divider), multiplication maps to DSP slices, and
 * arrays map to BRAM18s by capacity.
 */

#ifndef PLD_HLS_RESOURCE_MODEL_H
#define PLD_HLS_RESOURCE_MODEL_H

#include "ir/expr.h"
#include "ir/operator_fn.h"
#include "netlist/netlist.h"

namespace pld {
namespace hls {

/** Cost of one hardware operator instance. */
struct OpCost
{
    netlist::ResourceCount res;
    int latency = 1; ///< pipeline stages through the unit
};

/** Cost of instantiating @p kind on operands of width @p w bits. */
OpCost opCost(ir::ExprKind kind, int w);

/** BRAM18s needed for an array of @p elems elements of @p bits each. */
int bramsFor(int64_t elems, int bits);

/** Fixed overhead of the operator's control FSM. */
netlist::ResourceCount fsmOverhead(int num_statements);

/** One stream port's FIFO/handshake logic. */
netlist::ResourceCount streamPortOverhead();

/**
 * The standard leaf interface joining a page to the linking network
 * (paper Sec 4.1: "Our network interfaces run about 500 LUTs").
 */
netlist::ResourceCount leafInterfaceOverhead();

} // namespace hls
} // namespace pld

#endif // PLD_HLS_RESOURCE_MODEL_H
