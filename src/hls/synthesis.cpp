#include "hls/synthesis.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace pld {
namespace hls {

using netlist::Cell;
using netlist::Net;
using netlist::Netlist;
using netlist::SiteKind;

namespace {

/**
 * One packing sweep: for every net, try to merge connected CLB cells
 * whose combined utilization still fits one CLB. Union-find tracks
 * merged groups; a rebuild pass materializes the packed netlist.
 */
struct UnionFind
{
    std::vector<int> parent;

    explicit UnionFind(size_t n) : parent(n)
    {
        for (size_t i = 0; i < n; ++i)
            parent[i] = static_cast<int>(i);
    }

    int
    find(int x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void unite(int a, int b) { parent[find(a)] = find(b); }
};

} // namespace

SynReport
synthesize(Netlist &net, double effort)
{
    Stopwatch sw;
    obs::Span span("syn", "syn.synthesize");
    obs::count("syn.runs");
    SynReport rep;
    rep.cellsBefore = static_cast<int>(net.cells.size());
    span.arg("cells_before", static_cast<int64_t>(rep.cellsBefore));

    int sweeps = std::max(1, static_cast<int>(2 * effort));
    for (int pass = 0; pass < sweeps; ++pass) {
        UnionFind uf(net.cells.size());
        std::vector<int> luts(net.cells.size());
        std::vector<int> ffs(net.cells.size());
        for (size_t i = 0; i < net.cells.size(); ++i) {
            luts[i] = net.cells[i].luts;
            ffs[i] = net.cells[i].ffs;
        }

        int merges = 0;
        for (const auto &n : net.nets) {
            if (n.driver < 0)
                continue;
            const Cell &drv = net.cells[n.driver];
            if (drv.site != SiteKind::Clb)
                continue;
            for (int s : n.sinks) {
                if (net.cells[s].site != SiteKind::Clb)
                    continue;
                int ra = uf.find(n.driver);
                int rb = uf.find(s);
                if (ra == rb)
                    continue;
                if (luts[ra] + luts[rb] <= 8 &&
                    ffs[ra] + ffs[rb] <= 16 &&
                    net.cells[n.driver].stage == net.cells[s].stage) {
                    uf.unite(ra, rb);
                    int root = uf.find(ra);
                    int other = (root == ra) ? rb : ra;
                    luts[root] = luts[ra] + luts[rb];
                    ffs[root] = ffs[ra] + ffs[rb];
                    luts[other] = 0;
                    ffs[other] = 0;
                    ++merges;
                }
            }
        }
        rep.mergesApplied += merges;
        if (merges == 0)
            break;

        // Rebuild: one cell per union-find root.
        std::vector<int> new_index(net.cells.size(), -1);
        Netlist packed;
        for (size_t i = 0; i < net.cells.size(); ++i) {
            int root = uf.find(static_cast<int>(i));
            if (new_index[root] < 0) {
                Cell c = net.cells[root];
                c.pins.clear();
                c.luts = luts[root];
                c.ffs = ffs[root];
                new_index[root] = packed.addCell(std::move(c));
            }
            new_index[i] = new_index[root];
        }
        for (const auto &n : net.nets) {
            int drv = n.driver >= 0 ? new_index[n.driver] : -1;
            bool internal_only = true;
            for (int s : n.sinks) {
                if (new_index[s] != drv)
                    internal_only = false;
            }
            if (internal_only && drv >= 0)
                continue; // net fully absorbed into one CLB
            int ni = packed.addNet(n.name, n.width, drv);
            for (int s : n.sinks) {
                if (new_index[s] != drv)
                    packed.addSink(ni, new_index[s]);
            }
        }
        net = std::move(packed);
    }

    std::string problem;
    pld_assert(net.checkConsistent(&problem),
               "synthesis broke the netlist: %s", problem.c_str());

    rep.cellsAfter = static_cast<int>(net.cells.size());
    rep.seconds = sw.seconds();
    span.arg("cells_after", static_cast<int64_t>(rep.cellsAfter));
    span.arg("merges", static_cast<int64_t>(rep.mergesApplied));
    obs::record("syn.seconds", rep.seconds);
    return rep;
}

} // namespace hls
} // namespace pld
