/**
 * @file
 * Face detection: cascaded window classification, "decomposed [into]
 * the two main stages of the computation (strong and weak filtering),
 * then ... the strong filtering by image region and the weak
 * filtering by filter sets" (paper Sec 7.2).
 *
 * Haar-like integer features over 8x8 sliding windows: two strong
 * filter operators each score half of every window's rows, two weak
 * filter operators each apply a threshold set, and a merge stage
 * emits a binary detection per window.
 */

#include "rosetta/benchmark.h"

#include "common/rng.h"
#include "ir/builder.h"

namespace pld {
namespace rosetta {

using namespace pld::ir;

namespace {

constexpr int kImg = 24;       // kImg x kImg image
constexpr int kWin = 8;        // window side
constexpr int kStride = 4;
constexpr int kGrid = (kImg - kWin) / kStride + 1; // windows per axis
constexpr int kWindows = kGrid * kGrid;
constexpr int kWinPix = kWin * kWin;

/** window_gen: emits the pixels of every sliding window, twice (for
 * the two strong-filter regions). */
OperatorFn
makeWindowGen()
{
    OpBuilder b("window_gen");
    auto in = b.input("Input_1");
    auto top = b.output("win_top");
    auto bot = b.output("win_bot");
    auto img = b.array("img", Type::s(16), kImg * kImg);
    b.forLoop(0, kImg * kImg, [&](Ex p) {
        b.store(img, p, b.read(in).bitcast(Type::s(16)));
    });
    b.forLoop(0, kGrid, [&](Ex wy) {
        b.forLoop(0, kGrid, [&](Ex wx) {
            b.forLoop(0, kWin, [&](Ex r) {
                b.forLoop(0, kWin, [&](Ex c) {
                    Ex pix = img[(wy * kStride + r) * lit(kImg) +
                                 wx * kStride + c];
                    b.write(top, pix.cast(Type::s(32)));
                    b.write(bot, pix.cast(Type::s(32)));
                });
            });
        });
    });
    return b.finish();
}

/**
 * Strong filter over rows [r0, r1) of each window: computes two
 * Haar-like features (left-right and top-bottom halves) over its
 * region and emits their sum.
 */
OperatorFn
makeStrong(const std::string &name, int r0, int r1)
{
    OpBuilder b(name);
    auto in = b.input("win");
    auto out = b.output("feat");
    auto px = b.var("px", Type::s(32));
    auto lr = b.var("lr", Type::s(32));
    auto tb = b.var("tb", Type::s(32));
    b.forLoop(0, kWindows, [&](Ex) {
        b.set(lr, lit(0));
        b.set(tb, lit(0));
        b.forLoop(0, kWin, [&](Ex r) {
            b.forLoop(0, kWin, [&](Ex c) {
                b.set(px, b.read(in).bitcast(Type::s(32)));
                Ex in_rows = (r >= lit(r0)) && (r < lit(r1));
                Ex lr_sign = b.select(c < lit(kWin / 2), Ex(px),
                                      -Ex(px));
                Ex tb_sign = b.select(r < lit(kWin / 2), Ex(px),
                                      -Ex(px));
                b.set(lr, Ex(lr) + b.select(in_rows, lr_sign,
                                            lit(0)));
                b.set(tb, Ex(tb) + b.select(in_rows, tb_sign,
                                            lit(0)));
            });
        });
        b.write(out, (Ex(lr) + Ex(tb)).cast(Type::s(32)));
    });
    return b.finish();
}

/** Merge the two strong features into one score per window. */
OperatorFn
makeCombine()
{
    OpBuilder b("combine");
    auto top = b.input("ftop");
    auto bot = b.input("fbot");
    auto out = b.output("score");
    auto t = b.var("t", Type::s(32));
    b.forLoop(0, kWindows, [&](Ex) {
        b.set(t, b.read(top).bitcast(Type::s(32)));
        b.write(out,
                (Ex(t) + b.read(bot).bitcast(Type::s(32)))
                    .cast(Type::s(32)));
    });
    return b.finish();
}

/** Weak filter: pass the score plus a pass/fail bit for its
 * threshold set; the next stage combines. */
OperatorFn
makeWeak(const std::string &name, int lo_thresh, int hi_thresh)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto s = b.var("s", Type::s(32));
    b.forLoop(0, kWindows, [&](Ex) {
        b.set(s, b.read(in).bitcast(Type::s(32)));
        Ex pass = (Ex(s) > lit(lo_thresh)) && (Ex(s) < lit(hi_thresh));
        // Encode: keep score in high bits, accumulate pass bits low.
        b.write(out,
                ((Ex(s) << 1) | pass.cast(Type::s(32)))
                    .cast(Type::s(32)));
    });
    return b.finish();
}

/** Final merge: window is a detection iff both weak sets passed. */
OperatorFn
makeMerge()
{
    OpBuilder b("merge");
    auto in = b.input("in");
    auto out = b.output("Output_1");
    auto v = b.var("v", Type::s(32));
    b.forLoop(0, kWindows, [&](Ex) {
        b.set(v, b.read(in).bitcast(Type::s(32)));
        b.write(out, (Ex(v) & lit(3)) == 3);
    });
    return b.finish();
}

} // namespace

Benchmark
makeFaceDetect()
{
    Benchmark bm;
    bm.name = "Face Detection";
    bm.itemsPerRun = kWindows;

    GraphBuilder gb("face_detect");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto w_top = gb.wire(), w_bot = gb.wire();
    auto f_top = gb.wire(), f_bot = gb.wire();
    auto score = gb.wire(), weak1 = gb.wire(), weak2 = gb.wire();
    gb.inst(makeWindowGen(), {in}, {w_top, w_bot});
    gb.inst(makeStrong("strong_top", 0, kWin / 2), {w_top}, {f_top});
    gb.inst(makeStrong("strong_bot", kWin / 2, kWin), {w_bot},
            {f_bot});
    gb.inst(makeCombine(), {f_top, f_bot}, {score});
    gb.inst(makeWeak("weak_set1", -4000, 4000), {score}, {weak1});
    gb.inst(makeWeak("weak_set2", -100000, 100000), {weak1}, {weak2});
    gb.inst(makeMerge(), {weak2}, {out});
    bm.graph = gb.finish();

    // Workload: noise plus a few bright blobs.
    Rng rng(0xFACE);
    std::vector<int32_t> img(kImg * kImg);
    for (auto &p : img)
        p = static_cast<int32_t>(rng.range(0, 60));
    for (int blob = 0; blob < 3; ++blob) {
        int cx = static_cast<int>(rng.below(kImg - 4));
        int cy = static_cast<int>(rng.below(kImg - 4));
        for (int dy = 0; dy < 4; ++dy)
            for (int dx = 0; dx < 4; ++dx)
                img[(cy + dy) * kImg + cx + dx] += 120;
    }
    for (int32_t p : img)
        bm.input.push_back(static_cast<uint32_t>(p));

    // Golden cascade.
    for (int wy = 0; wy < kGrid; ++wy) {
        for (int wx = 0; wx < kGrid; ++wx) {
            auto region_score = [&](int r0, int r1) {
                int32_t lr = 0, tb = 0;
                for (int r = 0; r < kWin; ++r) {
                    for (int c = 0; c < kWin; ++c) {
                        if (r < r0 || r >= r1)
                            continue;
                        int32_t px =
                            img[(wy * kStride + r) * kImg +
                                wx * kStride + c];
                        lr += (c < kWin / 2) ? px : -px;
                        tb += (r < kWin / 2) ? px : -px;
                    }
                }
                return lr + tb;
            };
            int32_t score =
                region_score(0, kWin / 2) + region_score(kWin / 2,
                                                         kWin);
            int32_t v1 = (score << 1) |
                         ((score > -4000 && score < 4000) ? 1 : 0);
            int32_t v2 = (v1 << 1) |
                         ((v1 > -100000 && v1 < 100000) ? 1 : 0);
            bm.expected.push_back(((v2 & 3) == 3) ? 1u : 0u);
        }
    }
    return bm;
}

} // namespace rosetta
} // namespace pld
