/**
 * @file
 * Digit recognition: 1-NN classification of bitmap digits against a
 * training set, refactored as a systolic pipeline "with each pipe
 * stage operating on a subset of the training set" (paper Sec 7.2).
 *
 * Digits are 32-bit bitmaps; distance is Hamming (popcount of XOR).
 * Four knn stages each hold one training-set shard in on-chip ROM; a
 * (digit, best_dist, best_label) triple flows through the pipeline
 * and the vote stage emits the winning label.
 */

#include "rosetta/benchmark.h"

#include "common/rng.h"
#include "ir/builder.h"

namespace pld {
namespace rosetta {

using namespace pld::ir;

namespace {

constexpr int kTests = 32;
constexpr int kShards = 4;
constexpr int kShardSize = 16;

/** Deterministic training set: one noisy prototype per label. */
struct TrainingSet
{
    std::vector<uint32_t> bitmap;
    std::vector<int32_t> label;
};

const TrainingSet &
trainingSet()
{
    static TrainingSet ts = [] {
        TrainingSet t;
        Rng rng(0xD161);
        uint32_t proto[10];
        for (int d = 0; d < 10; ++d)
            proto[d] = static_cast<uint32_t>(rng.next());
        for (int i = 0; i < kShards * kShardSize; ++i) {
            int lbl = static_cast<int>(rng.below(10));
            uint32_t bm = proto[lbl];
            // Flip up to two random bits of noise.
            bm ^= 1u << rng.below(32);
            bm ^= 1u << rng.below(32);
            t.bitmap.push_back(bm);
            t.label.push_back(lbl);
        }
        return t;
    }();
    return ts;
}

/** unpack: forwards digits, attaching the initial best triple. */
OperatorFn
makeUnpack()
{
    OpBuilder b("unpack");
    auto in = b.input("in");
    auto out = b.output("out");
    auto d = b.var("d", Type::u(32));
    b.forLoop(0, kTests, [&](Ex) {
        b.set(d, b.read(in));
        b.write(out, d);
        b.write(out, lit(999, Type::s(32))); // best distance
        b.write(out, lit(-1, Type::s(32)));  // best label
    });
    return b.finish();
}

/** One systolic stage: scans its shard, improving the best triple. */
OperatorFn
makeKnnStage(int shard)
{
    const auto &ts = trainingSet();
    std::vector<int64_t> bitmaps, labels;
    for (int i = 0; i < kShardSize; ++i) {
        bitmaps.push_back(static_cast<int64_t>(
            ts.bitmap[shard * kShardSize + i]));
        labels.push_back(ts.label[shard * kShardSize + i]);
    }

    OpBuilder b("knn" + std::to_string(shard));
    auto in = b.input("in");
    auto out = b.output("out");
    auto train = b.romRaw("train", Type::u(32), bitmaps);
    auto lbl = b.romRaw("lbl", Type::s(8), labels);
    auto digit = b.var("digit", Type::u(32));
    auto best_d = b.var("best_d", Type::s(32));
    auto best_l = b.var("best_l", Type::s(32));
    auto x = b.var("x", Type::u(32));
    auto dist = b.var("dist", Type::s(32));
    b.forLoop(0, kTests, [&](Ex) {
        b.set(digit, b.read(in));
        b.set(best_d, b.read(in).bitcast(Type::s(32)));
        b.set(best_l, b.read(in).bitcast(Type::s(32)));
        b.forLoop(0, kShardSize, [&](Ex i) {
            b.set(x, Ex(digit) ^ train[i]);
            // Hamming weight via nibble loop.
            b.set(dist, lit(0));
            b.forLoop(0, 32, [&](Ex) {
                b.set(dist, Ex(dist) +
                                (Ex(x) & lit(1, Type::u(32)))
                                    .cast(Type::s(32)));
                b.set(x, Ex(x) >> 1);
            });
            Ex better = Ex(dist) < Ex(best_d);
            b.set(best_l,
                  b.select(better, lbl[i].cast(Type::s(32)),
                           Ex(best_l)));
            b.set(best_d, b.select(better, Ex(dist), Ex(best_d)));
        });
        b.write(out, digit);
        b.write(out, best_d);
        b.write(out, best_l);
    });
    return b.finish();
}

/** vote: strips the triple down to the winning label. */
OperatorFn
makeVote()
{
    OpBuilder b("vote");
    auto in = b.input("in");
    auto out = b.output("out");
    auto lab = b.var("lab", Type::s(32));
    auto scratch = b.var("scratch", Type::u(32));
    b.forLoop(0, kTests, [&](Ex) {
        b.set(scratch, b.read(in)); // digit (discarded)
        b.set(scratch, b.read(in)); // distance (discarded)
        b.set(lab, b.read(in).bitcast(Type::s(32)));
        b.write(out, lab);
    });
    return b.finish();
}

} // namespace

Benchmark
makeDigitRec()
{
    Benchmark bm;
    bm.name = "Digit Recognition";
    bm.itemsPerRun = kTests;

    GraphBuilder gb("digitrec");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    GraphBuilder::WireId prev = gb.wire();
    gb.inst(makeUnpack(), {in}, {prev});
    for (int s = 0; s < kShards; ++s) {
        auto next = gb.wire();
        gb.inst(makeKnnStage(s), {prev}, {next});
        prev = next;
    }
    gb.inst(makeVote(), {prev}, {out});
    bm.graph = gb.finish();

    // Workload: noisy copies of the prototypes.
    const auto &ts = trainingSet();
    Rng rng(0x7E57);
    std::vector<uint32_t> tests;
    for (int i = 0; i < kTests; ++i) {
        uint32_t bm_bits = ts.bitmap[rng.below(ts.bitmap.size())];
        bm_bits ^= 1u << rng.below(32);
        tests.push_back(bm_bits);
    }
    bm.input = tests;

    // Golden 1-NN.
    for (uint32_t digit : tests) {
        int best_d = 999, best_l = -1;
        for (size_t i = 0; i < ts.bitmap.size(); ++i) {
            int d = __builtin_popcount(digit ^ ts.bitmap[i]);
            if (d < best_d) {
                best_d = d;
                best_l = ts.label[i];
            }
        }
        bm.expected.push_back(static_cast<uint32_t>(best_l));
    }
    return bm;
}

} // namespace rosetta
} // namespace pld
