/**
 * @file
 * The Rosetta benchmark suite, decomposed into PLD operators.
 *
 * Re-implementations of the six Rosetta applications (paper Sec 7.2)
 * at reduced input resolutions, each decomposed into streaming
 * operators exactly the way the paper describes:
 *
 *  - rendering:  pipeline stages, large stages split by image region
 *  - digit rec:  systolic pipeline over training-set shards
 *  - spam:       data-parallel dot products + decompose/reduce
 *  - optical:    the dataflow task graph of Fig 2(c)
 *  - face:       strong filtering by region, weak filtering by set
 *  - bnn:        per-layer operators with on-chip weights
 *
 * Every benchmark carries an input generator and a golden output
 * computed by an independent plain-C++ model (not by executing the
 * IR), so all compile flows can be checked for bit-exactness.
 */

#ifndef PLD_ROSETTA_BENCHMARK_H
#define PLD_ROSETTA_BENCHMARK_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.h"

namespace pld {
namespace rosetta {

/** One benchmark instance: graph + workload + golden reference. */
struct Benchmark
{
    std::string name;
    ir::Graph graph;
    std::vector<uint32_t> input;    ///< words for external input 0
    std::vector<uint32_t> expected; ///< golden words for output 0
    /** Logical inputs per run (frames/digits/samples) for per-input
     * normalization in Table 3. */
    int64_t itemsPerRun = 1;
};

Benchmark makeRendering();
Benchmark makeDigitRec();
Benchmark makeSpamFilter();
Benchmark makeOpticalFlow();
Benchmark makeFaceDetect();
Benchmark makeBnn();

/** All six, in the paper's Table order. */
std::vector<Benchmark> allBenchmarks();

} // namespace rosetta
} // namespace pld

#endif // PLD_ROSETTA_BENCHMARK_H
