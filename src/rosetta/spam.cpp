/**
 * @file
 * SPAM filtering: logistic-regression scoring of feature vectors,
 * with "the data-parallel feature vectors [decomposed] into separate
 * dot product operators and ... operators for decomposition and data
 * reduce" (paper Sec 7.2).
 *
 * Each sample has kFeatures fixed-point features; four dot-product
 * operators each own a quarter of the weight vector in ROM; a reduce
 * stage sums the partials and a classifier thresholds a piecewise
 * sigmoid.
 */

#include "rosetta/benchmark.h"

#include <cmath>

#include "common/rng.h"
#include "ir/builder.h"

namespace pld {
namespace rosetta {

using namespace pld::ir;

namespace {

constexpr int kSamples = 24;
constexpr int kFeatures = 16;
constexpr int kLanes = 4;
constexpr int kPerLane = kFeatures / kLanes;
constexpr Type kFx = Type::fx(32, 17); // 15 fractional bits

/** Deterministic weight vector on the fx<32,17> grid. */
const std::vector<double> &
weights()
{
    static std::vector<double> w = [] {
        Rng rng(0x5BA4);
        std::vector<double> v;
        for (int i = 0; i < kFeatures; ++i)
            v.push_back((rng.uniform() - 0.5) * 4.0);
        return v;
    }();
    return w;
}

/** Scatter features round-robin to the four dot-product lanes. */
OperatorFn
makeDecompose()
{
    OpBuilder b("decompose");
    auto in = b.input("in");
    PortRef lanes[kLanes];
    for (int l = 0; l < kLanes; ++l)
        lanes[l] = b.output("lane" + std::to_string(l));
    auto v = b.var("v", Type::u(32));
    b.forLoop(0, kSamples, [&](Ex) {
        for (int l = 0; l < kLanes; ++l) {
            b.forLoop(0, kPerLane, [&](Ex) {
                b.set(v, b.read(in));
                b.write(lanes[l], v);
            });
        }
    });
    return b.finish();
}

/** One dot-product lane over its quarter of the weights. */
OperatorFn
makeDot(int lane)
{
    std::vector<double> w(weights().begin() + lane * kPerLane,
                          weights().begin() + (lane + 1) * kPerLane);
    OpBuilder b("dot" + std::to_string(lane));
    auto in = b.input("in");
    auto out = b.output("out");
    auto wrom = b.rom("w", kFx, w);
    auto acc = b.var("acc", kFx);
    auto x = b.var("x", kFx);
    b.forLoop(0, kSamples, [&](Ex) {
        b.set(acc, litF(0.0, kFx));
        b.forLoop(0, kPerLane, [&](Ex i) {
            b.set(x, b.read(in).bitcast(kFx));
            b.set(acc, (Ex(acc) + Ex(x) * wrom[i]).cast(kFx));
        });
        b.write(out, acc);
    });
    return b.finish();
}

/** Sum the four lane partials per sample. */
OperatorFn
makeReduce()
{
    OpBuilder b("reduce");
    PortRef lanes[kLanes];
    for (int l = 0; l < kLanes; ++l)
        lanes[l] = b.input("lane" + std::to_string(l));
    auto out = b.output("out");
    auto acc = b.var("acc", kFx);
    b.forLoop(0, kSamples, [&](Ex) {
        b.set(acc, b.read(lanes[0]).bitcast(kFx));
        for (int l = 1; l < kLanes; ++l) {
            b.set(acc,
                  (Ex(acc) + b.read(lanes[l]).bitcast(kFx))
                      .cast(kFx));
        }
        b.write(out, acc);
    });
    return b.finish();
}

/** Piecewise sigmoid + threshold: emits 1 for spam, 0 for ham. */
OperatorFn
makeClassify()
{
    OpBuilder b("classify");
    auto in = b.input("in");
    auto out = b.output("out");
    auto s = b.var("s", kFx);
    b.forLoop(0, kSamples, [&](Ex) {
        b.set(s, b.read(in).bitcast(kFx));
        // sigmoid(s) > 0.5 <=> s > 0.
        b.write(out, (Ex(s) > litF(0.0, kFx)).cast(Type::u(32)));
    });
    return b.finish();
}

} // namespace

Benchmark
makeSpamFilter()
{
    Benchmark bm;
    bm.name = "Spam Filter";
    bm.itemsPerRun = kSamples;

    GraphBuilder gb("spam");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    std::vector<GraphBuilder::WireId> lane_w, part_w;
    for (int l = 0; l < kLanes; ++l) {
        lane_w.push_back(gb.wire());
        part_w.push_back(gb.wire());
    }
    auto sum_w = gb.wire();
    gb.inst(makeDecompose(), {in}, lane_w);
    for (int l = 0; l < kLanes; ++l)
        gb.inst(makeDot(l), {lane_w[l]}, {part_w[l]});
    gb.inst(makeReduce(), part_w, {sum_w});
    gb.inst(makeClassify(), {sum_w}, {out});
    bm.graph = gb.finish();

    // Workload: random feature vectors on the fixed-point grid.
    Rng rng(0xF00D);
    std::vector<int32_t> raw;
    for (int s = 0; s < kSamples; ++s) {
        for (int f = 0; f < kFeatures; ++f) {
            raw.push_back(
                static_cast<int32_t>(rng.range(-(3 << 15), 3 << 15)));
        }
    }
    for (int32_t v : raw)
        bm.input.push_back(static_cast<uint32_t>(v));

    // Golden model with exact fx<32,17> truncation semantics.
    auto quant = [](double v) {
        return static_cast<int64_t>(std::floor(v * 32768.0));
    };
    std::vector<int64_t> wq;
    for (double w : weights())
        wq.push_back(quant(w));
    for (int s = 0; s < kSamples; ++s) {
        int64_t lane_sum[kLanes];
        for (int l = 0; l < kLanes; ++l) {
            int64_t acc = 0;
            for (int i = 0; i < kPerLane; ++i) {
                int64_t x = raw[s * kFeatures + l * kPerLane + i];
                // (x*w) at 30 frac bits -> cast to 15: >> 15 (trunc
                // toward -inf), then acc add wraps to 32 bits.
                int64_t prod = (x * wq[i + l * kPerLane]) >> 15;
                acc = static_cast<int32_t>(acc + prod);
            }
            lane_sum[l] = acc;
        }
        int64_t total = 0;
        for (int l = 0; l < kLanes; ++l)
            total = static_cast<int32_t>(total + lane_sum[l]);
        bm.expected.push_back(total > 0 ? 1u : 0u);
    }
    return bm;
}

} // namespace rosetta
} // namespace pld
