/**
 * @file
 * Optical flow: the paper's own running example (Fig 2). The
 * computation "already had the shape of a dataflow task graph"
 * (Sec 7.2): unpack -> {grad_xy, grad_z} -> tensor_y -> weight_y ->
 * tensor_x -> flow_calc, with flow_calc being exactly the Fig 2(d)
 * kernel (6 tensor words in, u/v flow pair out, guarded division).
 *
 * Workload: two kW x kH frames; output is a (u, v) fixed-point flow
 * vector per pixel.
 */

#include "rosetta/benchmark.h"

#include "common/rng.h"
#include "ir/builder.h"

namespace pld {
namespace rosetta {

using namespace pld::ir;

namespace {

constexpr int kW = 12;
constexpr int kH = 12;
constexpr int kPixels = kW * kH;
constexpr Type kFx = Type::fx(32, 17); // 15 fractional bits

/** unpack: interleaved (frame1, frame2) pixels -> two streams. */
OperatorFn
makeUnpack()
{
    OpBuilder b("unpack");
    auto in = b.input("Input_1");
    auto up1 = b.output("up1"); // frame1 pixels for spatial grads
    auto up2 = b.output("up2"); // (p1, p2) pairs for temporal grad
    auto p1 = b.var("p1", Type::s(32));
    auto p2 = b.var("p2", Type::s(32));
    b.forLoop(0, kPixels, [&](Ex) {
        b.set(p1, b.read(in).bitcast(Type::s(32)));
        b.set(p2, b.read(in).bitcast(Type::s(32)));
        b.write(up1, p1);
        b.write(up2, p1);
        b.write(up2, p2);
    });
    return b.finish();
}

/** grad_xy: spatial gradients via row/line buffers. 2 words/pixel. */
OperatorFn
makeGradXy()
{
    OpBuilder b("grad_xy");
    auto in = b.input("up1");
    auto out = b.output("gxy");
    auto line = b.array("line", Type::s(32), kW);
    auto prev = b.var("prev", Type::s(32));
    auto cur = b.var("cur", Type::s(32));
    b.forLoop(0, kH, [&](Ex y) {
        b.forLoop(0, kW, [&](Ex x) {
            b.set(cur, b.read(in).bitcast(Type::s(32)));
            Ex gx = b.select(x == 0, lit(0), Ex(cur) - Ex(prev));
            Ex gy = b.select(y == 0, lit(0), Ex(cur) - line[x]);
            b.write(out, gx.cast(Type::s(32)));
            b.write(out, gy.cast(Type::s(32)));
            b.store(line, x, cur);
            b.set(prev, cur);
        });
    });
    return b.finish();
}

/** grad_z: temporal gradient, 1 word/pixel. */
OperatorFn
makeGradZ()
{
    OpBuilder b("grad_z");
    auto in = b.input("up2");
    auto out = b.output("gz");
    auto p1 = b.var("p1", Type::s(32));
    b.forLoop(0, kPixels, [&](Ex) {
        b.set(p1, b.read(in).bitcast(Type::s(32)));
        b.write(out,
                (b.read(in).bitcast(Type::s(32)) - Ex(p1))
                    .cast(Type::s(32)));
    });
    return b.finish();
}

/**
 * tensor_y: builds the 6-word structure tensor per pixel:
 * t0=gx*gz, t1=gx*gx, t2=gy*gy, t4=gx*gy, t5=gy*gz, t3=gz*gz.
 * Pixel gradients are small integers; tensor entries are fx words.
 */
OperatorFn
makeTensorY()
{
    OpBuilder b("tensor_y");
    auto gxy = b.input("gxy");
    auto gzi = b.input("gz");
    auto out = b.output("ty");
    auto gx = b.var("gx", kFx);
    auto gy = b.var("gy", kFx);
    auto gz = b.var("gz", kFx);
    b.forLoop(0, kPixels, [&](Ex) {
        b.set(gx, b.read(gxy).bitcast(Type::s(32)).cast(kFx));
        b.set(gy, b.read(gxy).bitcast(Type::s(32)).cast(kFx));
        b.set(gz, b.read(gzi).bitcast(Type::s(32)).cast(kFx));
        b.write(out, (Ex(gx) * Ex(gz)).cast(kFx)); // t0
        b.write(out, (Ex(gx) * Ex(gx)).cast(kFx)); // t1
        b.write(out, (Ex(gy) * Ex(gy)).cast(kFx)); // t2
        b.write(out, (Ex(gz) * Ex(gz)).cast(kFx)); // t3
        b.write(out, (Ex(gx) * Ex(gy)).cast(kFx)); // t4
        b.write(out, (Ex(gy) * Ex(gz)).cast(kFx)); // t5
    });
    return b.finish();
}

/** weight_y: temporal smoothing — running average of consecutive
 * tensors (w/2 + w/2 on the fixed grid). */
OperatorFn
makeWeightY()
{
    OpBuilder b("weight_y");
    auto in = b.input("ty");
    auto out = b.output("wy");
    auto prev = b.array("prev", kFx, 6);
    auto cur = b.var("cur", kFx);
    b.forLoop(0, kPixels, [&](Ex p) {
        b.forLoop(0, 6, [&](Ex i) {
            b.set(cur, b.read(in).bitcast(kFx));
            Ex smoothed = ((Ex(cur) + prev[i]).cast(kFx) >> 1);
            b.write(out,
                    b.select(p == 0, Ex(cur), smoothed).cast(kFx));
            b.store(prev, i, cur);
        });
    });
    return b.finish();
}

/** tensor_x: second smoothing pass (same structure). */
OperatorFn
makeTensorX()
{
    OpBuilder b("tensor_x");
    auto in = b.input("wy");
    auto out = b.output("tx");
    auto prev = b.array("prev", kFx, 6);
    auto cur = b.var("cur", kFx);
    b.forLoop(0, kPixels, [&](Ex p) {
        b.forLoop(0, 6, [&](Ex i) {
            b.set(cur, b.read(in).bitcast(kFx));
            Ex smoothed = ((Ex(cur) + prev[i]).cast(kFx) >> 1);
            b.write(out,
                    b.select(p == 0, Ex(cur), smoothed).cast(kFx));
            b.store(prev, i, cur);
        });
    });
    return b.finish();
}

/** flow_calc: the paper's Fig 2(d) kernel. */
OperatorFn
makeFlowCalc()
{
    OpBuilder b("flow_calc");
    auto in = b.input("tx");
    auto out = b.output("Output_1");
    auto t = b.array("t", kFx, 6);
    auto buf0 = b.var("buf0", kFx);
    auto buf1 = b.var("buf1", kFx);
    auto denom = b.var("denom", kFx);
    b.forLoop(0, kPixels, [&](Ex) {
        b.forLoop(0, 6, [&](Ex i) {
            b.store(t, i, b.readAs(in, kFx));
        });
        b.set(denom, (t[1] * t[2] - t[4] * t[4]).cast(kFx));
        b.ifElse(
            Ex(denom) == litF(0.0, kFx),
            [&] {
                b.set(buf0, litF(0.0, kFx));
                b.set(buf1, litF(0.0, kFx));
            },
            [&] {
                b.set(buf0,
                      (t[0] * t[4] - t[5] * t[2]).cast(kFx) /
                          Ex(denom));
                b.set(buf1,
                      (t[5] * t[4] - t[0] * t[1]).cast(kFx) /
                          Ex(denom));
            });
        b.write(out, buf0);
        b.write(out, buf1);
    });
    return b.finish();
}

// ---- golden model (independent, exact fixed-point semantics) ------

int64_t
wrap32(int64_t v)
{
    return static_cast<int32_t>(static_cast<uint32_t>(v));
}

/** (a*b) as fx<32,17> values (f15 raws): exact mul then >>15. */
int64_t
fxMul(int64_t a, int64_t b)
{
    return wrap32((a * b) >> 15);
}

int64_t
fxDiv(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    __int128 num = static_cast<__int128>(a) << 15;
    return wrap32(static_cast<int64_t>(num / b));
}

} // namespace

Benchmark
makeOpticalFlow()
{
    Benchmark bm;
    bm.name = "Optical Flow";
    bm.itemsPerRun = kPixels;

    GraphBuilder gb("optical_flow");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto up1 = gb.wire(), up2 = gb.wire(), gxy = gb.wire(),
         gz = gb.wire(), ty = gb.wire(), wy = gb.wire(),
         tx = gb.wire();
    gb.inst(makeUnpack(), {in}, {up1, up2});
    gb.inst(makeGradXy(), {up1}, {gxy});
    gb.inst(makeGradZ(), {up2}, {gz});
    gb.inst(makeTensorY(), {gxy, gz}, {ty});
    gb.inst(makeWeightY(), {ty}, {wy});
    gb.inst(makeTensorX(), {wy}, {tx});
    gb.inst(makeFlowCalc(), {tx}, {out});
    bm.graph = gb.finish();

    // Workload: two frames of a drifting gradient pattern + noise.
    Rng rng(0xF10A);
    std::vector<int32_t> f1(kPixels), f2(kPixels);
    for (int y = 0; y < kH; ++y) {
        for (int x = 0; x < kW; ++x) {
            int32_t base = 8 * x + 5 * y;
            f1[y * kW + x] =
                base + static_cast<int32_t>(rng.range(0, 3));
            f2[y * kW + x] =
                base + 7 + static_cast<int32_t>(rng.range(0, 3));
        }
    }
    for (int p = 0; p < kPixels; ++p) {
        bm.input.push_back(static_cast<uint32_t>(f1[p]));
        bm.input.push_back(static_cast<uint32_t>(f2[p]));
    }

    // Golden pipeline.
    std::vector<int64_t> prev_w(6, 0), prev_x(6, 0);
    std::vector<int32_t> line(kW, 0);
    int32_t prev_px = 0;
    for (int y = 0; y < kH; ++y) {
        for (int x = 0; x < kW; ++x) {
            int p = y * kW + x;
            int32_t cur = f1[p];
            int32_t gx = (x == 0) ? 0 : cur - prev_px;
            int32_t gy = (y == 0) ? 0 : cur - line[x];
            line[x] = cur;
            prev_px = cur;
            int32_t gz = f2[p] - f1[p];

            // Tensor entries at f15 (gradient integers << 15).
            int64_t G[3] = {int64_t(gx) << 15, int64_t(gy) << 15,
                            int64_t(gz) << 15};
            int64_t t6[6] = {fxMul(G[0], G[2]), fxMul(G[0], G[0]),
                             fxMul(G[1], G[1]), fxMul(G[2], G[2]),
                             fxMul(G[0], G[1]), fxMul(G[1], G[2])};
            int64_t w6[6], x6[6];
            for (int i = 0; i < 6; ++i) {
                w6[i] = (p == 0)
                            ? t6[i]
                            : wrap32(wrap32(t6[i] + prev_w[i]) >> 1);
                prev_w[i] = t6[i];
            }
            for (int i = 0; i < 6; ++i) {
                x6[i] = (p == 0)
                            ? w6[i]
                            : wrap32(wrap32(w6[i] + prev_x[i]) >> 1);
                prev_x[i] = w6[i];
            }
            // Matches the kernel's (a*b - c*d).cast(kFx): products
            // stay exact at f30, the difference is truncated once.
            auto mulsub = [](int64_t a, int64_t b, int64_t c,
                             int64_t d) {
                return wrap32((a * b - c * d) >> 15);
            };
            int64_t denom = mulsub(x6[1], x6[2], x6[4], x6[4]);
            int64_t u = 0, v = 0;
            if (denom != 0) {
                int64_t numer0 = mulsub(x6[0], x6[4], x6[5], x6[2]);
                int64_t numer1 = mulsub(x6[5], x6[4], x6[0], x6[1]);
                u = fxDiv(numer0, denom);
                v = fxDiv(numer1, denom);
            }
            bm.expected.push_back(
                static_cast<uint32_t>(static_cast<int32_t>(u)));
            bm.expected.push_back(
                static_cast<uint32_t>(static_cast<int32_t>(v)));
        }
    }
    return bm;
}

} // namespace rosetta
} // namespace pld
