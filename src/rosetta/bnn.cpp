/**
 * @file
 * BNN: binarized neural network classifier with "the weight
 * coefficients [moved] to on-chip memory and ... each stage and
 * operation its own operator" (paper Sec 7.2). First convolution
 * consumes fixed-point pixels and produces binary activations; the
 * binary layers are XNOR-popcount convolutions; three fully
 * connected layers finish with an argmax over 10 classes.
 *
 * Scaled instance: 8x8 input, 2 feature channels, 10 classes.
 */

#include "rosetta/benchmark.h"

#include "common/rng.h"
#include "ir/builder.h"

namespace pld {
namespace rosetta {

using namespace pld::ir;

namespace {

constexpr int kImgs = 4;   // images classified per run
constexpr int kS = 8;      // input spatial size
constexpr int kC = 2;      // feature channels
constexpr int kS2 = kS / 2;  // after pool1
constexpr int kS4 = kS / 4;  // after pool2
constexpr int kFcIn = kS4 * kS4 * kC; // 8
constexpr int kHidden = 8;
constexpr int kClasses = 10;

/** Deterministic ±1 weights. */
std::vector<int64_t>
signWeights(uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<int64_t> w;
    for (int i = 0; i < n; ++i)
        w.push_back(rng.chance(0.5) ? 1 : -1);
    return w;
}

/** conv1: fixed-point input, 3x3 ±1 kernels, binarized output. */
OperatorFn
makeConv1(const std::vector<int64_t> &w)
{
    OpBuilder b("conv1");
    auto in = b.input("Input_1");
    auto out = b.output("out");
    auto img = b.array("img", Type::s(32), kS * kS);
    auto wrom = b.romRaw("w", Type::s(8), w); // [ch][3][3]
    auto acc = b.var("acc", Type::s(32));
    b.forLoop(0, kImgs, [&](Ex) {
        b.forLoop(0, kS * kS, [&](Ex p) {
            b.store(img, p, b.read(in).bitcast(Type::s(32)));
        });
        b.forLoop(0, kC, [&](Ex ch) {
            b.forLoop(0, kS, [&](Ex y) {
                b.forLoop(0, kS, [&](Ex x) {
                    b.set(acc, lit(0));
                    b.forLoop(0, 3, [&](Ex ky) {
                        b.forLoop(0, 3, [&](Ex kx) {
                            Ex yy = y + ky - 1;
                            Ex xx = x + kx - 1;
                            Ex valid = (yy >= 0) && (yy < kS) &&
                                       (xx >= 0) && (xx < kS);
                            Ex pix = b.select(
                                valid, img[yy * kS + xx], lit(0));
                            Ex wv = wrom[ch * 9 + ky * 3 + kx]
                                        .cast(Type::s(32));
                            b.set(acc, Ex(acc) + pix * wv);
                        });
                    });
                    b.write(out, (Ex(acc) > 0).cast(Type::u(32)));
                });
            });
        });
    });
    return b.finish();
}

/** Binary conv: 3x3 XNOR-style over all input channels. */
OperatorFn
makeBconv(const std::string &name, int size,
          const std::vector<int64_t> &w)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto act = b.array("act", Type::u(1), kC * size * size);
    auto wrom = b.romRaw("w", Type::s(8), w); // [oc][ic][3][3]
    auto acc = b.var("acc", Type::s(32));
    b.forLoop(0, kImgs, [&](Ex) {
        b.forLoop(0, kC * size * size, [&](Ex p) {
            b.store(act, p, b.read(in).bitcast(Type::u(1)));
        });
        b.forLoop(0, kC, [&](Ex oc) {
            b.forLoop(0, size, [&](Ex y) {
                b.forLoop(0, size, [&](Ex x) {
                    b.set(acc, lit(0));
                    b.forLoop(0, kC, [&](Ex ic) {
                        b.forLoop(0, 3, [&](Ex ky) {
                            b.forLoop(0, 3, [&](Ex kx) {
                                Ex yy = y + ky - 1;
                                Ex xx = x + kx - 1;
                                Ex valid = (yy >= 0) &&
                                           (yy < lit(size)) &&
                                           (xx >= 0) &&
                                           (xx < lit(size));
                                Ex bit = b.select(
                                    valid,
                                    act[ic * lit(size * size) +
                                        yy * lit(size) + xx]
                                        .cast(Type::s(32)),
                                    lit(0));
                                // +1 where bit matches weight sign.
                                Ex bip = bit * 2 - 1;
                                Ex wv = wrom[((oc * kC + ic) * 9) +
                                             ky * 3 + kx]
                                            .cast(Type::s(32));
                                b.set(acc,
                                      Ex(acc) +
                                          b.select(valid, bip * wv,
                                                   lit(0)));
                            });
                        });
                    });
                    b.write(out, (Ex(acc) > 0).cast(Type::u(32)));
                });
            });
        });
    });
    return b.finish();
}

/** 2x2 max pool (OR for binary activations). */
OperatorFn
makePool(const std::string &name, int size)
{
    int half = size / 2;
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto act = b.array("act", Type::u(1), kC * size * size);
    b.forLoop(0, kImgs, [&](Ex) {
        b.forLoop(0, kC * size * size, [&](Ex p) {
            b.store(act, p, b.read(in).bitcast(Type::u(1)));
        });
        b.forLoop(0, kC, [&](Ex ch) {
            b.forLoop(0, half, [&](Ex y) {
                b.forLoop(0, half, [&](Ex x) {
                    Ex base = ch * lit(size * size) +
                              (y * 2) * lit(size) + x * 2;
                    Ex m = act[base].cast(Type::u(32)) |
                           act[base + 1].cast(Type::u(32)) |
                           act[base + lit(size)].cast(Type::u(32)) |
                           act[base + lit(size + 1)]
                               .cast(Type::u(32));
                    b.write(out, m);
                });
            });
        });
    });
    return b.finish();
}

/** Fully connected ±1 layer with binary output. */
OperatorFn
makeFcBinary(const std::string &name, int n_in, int n_out,
             const std::vector<int64_t> &w)
{
    OpBuilder b(name);
    auto in = b.input("in");
    auto out = b.output("out");
    auto act = b.array("act", Type::u(1), n_in);
    auto wrom = b.romRaw("w", Type::s(8), w); // [out][in]
    auto acc = b.var("acc", Type::s(32));
    b.forLoop(0, kImgs, [&](Ex) {
        b.forLoop(0, n_in, [&](Ex i) {
            b.store(act, i, b.read(in).bitcast(Type::u(1)));
        });
        b.forLoop(0, n_out, [&](Ex o) {
            b.set(acc, lit(0));
            b.forLoop(0, n_in, [&](Ex i) {
                Ex bip = act[i].cast(Type::s(32)) * 2 - 1;
                b.set(acc,
                      Ex(acc) + bip * wrom[o * lit(n_in) + i]
                                    .cast(Type::s(32)));
            });
            b.write(out, (Ex(acc) > 0).cast(Type::u(32)));
        });
    });
    return b.finish();
}

/** Final layer: integer scores + argmax. */
OperatorFn
makeFcScores(const std::vector<int64_t> &w)
{
    OpBuilder b("fc_argmax");
    auto in = b.input("in");
    auto out = b.output("Output_1");
    auto act = b.array("act", Type::u(1), kHidden);
    auto wrom = b.romRaw("w", Type::s(8), w);
    auto acc = b.var("acc", Type::s(32));
    auto best = b.var("best", Type::s(32));
    auto best_i = b.var("best_i", Type::s(32));
    b.forLoop(0, kImgs, [&](Ex) {
        b.forLoop(0, kHidden, [&](Ex i) {
            b.store(act, i, b.read(in).bitcast(Type::u(1)));
        });
        b.set(best, lit(-1000000));
        b.set(best_i, lit(0));
        b.forLoop(0, kClasses, [&](Ex o) {
            b.set(acc, lit(0));
            b.forLoop(0, kHidden, [&](Ex i) {
                Ex bip = act[i].cast(Type::s(32)) * 2 - 1;
                b.set(acc,
                      Ex(acc) + bip * wrom[o * lit(kHidden) + i]
                                    .cast(Type::s(32)));
            });
            Ex better = Ex(acc) > Ex(best);
            b.set(best_i, b.select(better, o, Ex(best_i)));
            b.set(best, b.select(better, Ex(acc), Ex(best)));
        });
        b.write(out, best_i);
    });
    return b.finish();
}

} // namespace

Benchmark
makeBnn()
{
    Benchmark bm;
    bm.name = "Binary NN";
    bm.itemsPerRun = kImgs;

    auto w1 = signWeights(0xB001, kC * 9);
    auto w2 = signWeights(0xB002, kC * kC * 9);
    auto w3 = signWeights(0xB003, kC * kC * 9);
    auto wf1 = signWeights(0xB004, kHidden * kFcIn);
    auto wf2 = signWeights(0xB005, kHidden * kHidden);
    auto wf3 = signWeights(0xB006, kClasses * kHidden);

    GraphBuilder gb("bnn");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto a = gb.wire(), b2 = gb.wire(), c = gb.wire(),
         d = gb.wire(), e = gb.wire(), f = gb.wire(), g = gb.wire();
    gb.inst(makeConv1(w1), {in}, {a});
    gb.inst(makeBconv("bconv2", kS, w2), {a}, {b2});
    gb.inst(makePool("pool1", kS), {b2}, {c});
    gb.inst(makeBconv("bconv3", kS2, w3), {c}, {d});
    gb.inst(makePool("pool2", kS2), {d}, {e});
    gb.inst(makeFcBinary("fc1", kFcIn, kHidden, wf1), {e}, {f});
    gb.inst(makeFcBinary("fc2", kHidden, kHidden, wf2), {f}, {g});
    gb.inst(makeFcScores(wf3), {g}, {out});
    bm.graph = gb.finish();

    // Workload: random small images.
    Rng rng(0xC1FA);
    std::vector<int32_t> pixels;
    for (int i = 0; i < kImgs * kS * kS; ++i)
        pixels.push_back(static_cast<int32_t>(rng.range(-32, 96)));
    for (int32_t p : pixels)
        bm.input.push_back(static_cast<uint32_t>(p));

    // ---- golden model --------------------------------------------
    auto conv_bin = [&](const std::vector<int>& act, int size,
                        const std::vector<int64_t> &w) {
        std::vector<int> o(kC * size * size);
        for (int oc = 0; oc < kC; ++oc)
            for (int y = 0; y < size; ++y)
                for (int x = 0; x < size; ++x) {
                    int acc = 0;
                    for (int ic = 0; ic < kC; ++ic)
                        for (int ky = 0; ky < 3; ++ky)
                            for (int kx = 0; kx < 3; ++kx) {
                                int yy = y + ky - 1, xx = x + kx - 1;
                                if (yy < 0 || yy >= size || xx < 0 ||
                                    xx >= size)
                                    continue;
                                int bip =
                                    act[ic * size * size +
                                        yy * size + xx] * 2 - 1;
                                acc += bip *
                                       static_cast<int>(
                                           w[(oc * kC + ic) * 9 +
                                             ky * 3 + kx]);
                            }
                    o[oc * size * size + y * size + x] =
                        acc > 0 ? 1 : 0;
                }
        return o;
    };
    auto pool_bin = [&](const std::vector<int> &act, int size) {
        int half = size / 2;
        std::vector<int> o(kC * half * half);
        for (int ch = 0; ch < kC; ++ch)
            for (int y = 0; y < half; ++y)
                for (int x = 0; x < half; ++x) {
                    int base = ch * size * size + 2 * y * size + 2 * x;
                    o[ch * half * half + y * half + x] =
                        act[base] | act[base + 1] |
                        act[base + size] | act[base + size + 1];
                }
        return o;
    };
    auto fc_bin = [&](const std::vector<int> &act, int n_in,
                      int n_out, const std::vector<int64_t> &w) {
        std::vector<int> o(n_out);
        for (int j = 0; j < n_out; ++j) {
            int acc = 0;
            for (int i = 0; i < n_in; ++i)
                acc += (act[i] * 2 - 1) *
                       static_cast<int>(w[j * n_in + i]);
            o[j] = acc > 0 ? 1 : 0;
        }
        return o;
    };

    for (int im = 0; im < kImgs; ++im) {
        const int32_t *img = &pixels[im * kS * kS];
        std::vector<int> l1(kC * kS * kS);
        for (int ch = 0; ch < kC; ++ch)
            for (int y = 0; y < kS; ++y)
                for (int x = 0; x < kS; ++x) {
                    int acc = 0;
                    for (int ky = 0; ky < 3; ++ky)
                        for (int kx = 0; kx < 3; ++kx) {
                            int yy = y + ky - 1, xx = x + kx - 1;
                            if (yy < 0 || yy >= kS || xx < 0 ||
                                xx >= kS)
                                continue;
                            acc += img[yy * kS + xx] *
                                   static_cast<int>(
                                       w1[ch * 9 + ky * 3 + kx]);
                        }
                    l1[ch * kS * kS + y * kS + x] = acc > 0 ? 1 : 0;
                }
        auto l2 = conv_bin(l1, kS, w2);
        auto l3 = pool_bin(l2, kS);
        auto l4 = conv_bin(l3, kS2, w3);
        auto l5 = pool_bin(l4, kS2);
        auto l6 = fc_bin(l5, kFcIn, kHidden, wf1);
        auto l7 = fc_bin(l6, kHidden, kHidden, wf2);
        int best = -1000000, best_i = 0;
        for (int j = 0; j < kClasses; ++j) {
            int acc = 0;
            for (int i = 0; i < kHidden; ++i)
                acc += (l7[i] * 2 - 1) *
                       static_cast<int>(wf3[j * kHidden + i]);
            if (acc > best) {
                best = acc;
                best_i = j;
            }
        }
        bm.expected.push_back(static_cast<uint32_t>(best_i));
    }
    return bm;
}

std::vector<Benchmark>
allBenchmarks()
{
    return {makeRendering(), makeDigitRec(), makeSpamFilter(),
            makeOpticalFlow(), makeFaceDetect(), makeBnn()};
}

} // namespace rosetta
} // namespace pld
