/**
 * @file
 * 3D rendering: projection -> rasterization (split by image region)
 * -> z-buffering -> frame assembly (paper Sec 7.2: "decomposed by the
 * pipeline stages, then decomposed large pipeline stages by image
 * region").
 *
 * Workload: kTris triangles with integer screen coordinates and
 * depth; output is the kSize x kSize depth buffer.
 */

#include "rosetta/benchmark.h"

#include <algorithm>

#include "common/rng.h"
#include "ir/builder.h"

namespace pld {
namespace rosetta {

using namespace pld::ir;

namespace {

constexpr int kSize = 16;  // frame is kSize x kSize
constexpr int kHalf = kSize / 2;
constexpr int kTris = 24;

/** project: screen-space transform; broadcasts triangles to the two
 * region rasterizers. 9 words in, 9 words out to each region. */
OperatorFn
makeProject()
{
    OpBuilder b("project");
    auto in = b.input("tri_in");
    auto top = b.output("tri_top");
    auto bot = b.output("tri_bot");
    auto v = b.var("v", Type::s(32));
    b.forLoop(0, kTris, [&](Ex) {
        b.forLoop(0, 9, [&](Ex i) {
            b.set(v, b.read(in).bitcast(Type::s(32)));
            // Simple perspective-ish shear on x coordinates
            // (indices 0,3,6), pass-through otherwise.
            Ex is_x = (i % lit(3)) == 0;
            Ex shifted = (Ex(v) + (Ex(v) >> 4)).cast(Type::s(32));
            Ex proj = b.select(is_x, shifted, Ex(v));
            b.write(top, proj);
            b.write(bot, proj);
        });
    });
    return b.finish();
}

/**
 * Rasterizer for rows [row0, row1): per triangle, per pixel of its
 * half-frame, emits a depth word (0 when outside the triangle).
 */
OperatorFn
makeRast(const std::string &name, int row0, int row1)
{
    OpBuilder b(name);
    auto in = b.input("tri");
    auto out = b.output("frags");
    auto c = b.array("c", Type::s(32), 9);
    auto e0 = b.var("e0", Type::s(32));
    auto e1 = b.var("e1", Type::s(32));
    auto e2 = b.var("e2", Type::s(32));
    b.forLoop(0, kTris, [&](Ex) {
        b.forLoop(0, 9, [&](Ex i) {
            b.store(c, i, b.read(in).bitcast(Type::s(32)));
        });
        b.forLoop(row0, row1, [&](Ex y) {
            b.forLoop(0, kSize, [&](Ex x) {
                // Edge functions of the triangle (x0,y0)-(x1,y1)-
                // (x2,y2) with vertex layout c = {x0,y0,z0,x1,...}.
                b.set(e0, (c[3] - c[0]) * (y - c[1]) -
                              (c[4] - c[1]) * (x - c[0]));
                b.set(e1, (c[6] - c[3]) * (y - c[4]) -
                              (c[7] - c[4]) * (x - c[3]));
                b.set(e2, (c[0] - c[6]) * (y - c[7]) -
                              (c[1] - c[7]) * (x - c[6]));
                Ex inside =
                    ((Ex(e0) >= 0) && (Ex(e1) >= 0) && (Ex(e2) >= 0)) ||
                    ((Ex(e0) <= 0) && (Ex(e1) <= 0) && (Ex(e2) <= 0));
                // Flat depth per triangle: z0.
                b.write(out,
                        b.select(inside, c[2], lit(0))
                            .cast(Type::s(32)));
            });
        });
    });
    return b.finish();
}

/** Z-buffer for one half-frame: keep nearest nonzero depth. */
OperatorFn
makeZbuf(const std::string &name)
{
    OpBuilder b(name);
    auto in = b.input("frags");
    auto out = b.output("half");
    auto zb = b.array("zb", Type::s(32), kHalf * kSize);
    auto d = b.var("d", Type::s(32));
    b.forLoop(0, kTris, [&](Ex) {
        b.forLoop(0, kHalf * kSize, [&](Ex p) {
            b.set(d, b.read(in).bitcast(Type::s(32)));
            Ex cur = zb[p];
            Ex better =
                (Ex(d) != 0) && ((cur == 0) || (Ex(d) < cur));
            b.store(zb, p, b.select(better, Ex(d), cur));
        });
    });
    b.forLoop(0, kHalf * kSize, [&](Ex p) { b.write(out, zb[p]); });
    return b.finish();
}

/** Frame assembler: concatenate the two halves. */
OperatorFn
makeFrameGen()
{
    OpBuilder b("framegen");
    auto top = b.input("top");
    auto bot = b.input("bot");
    auto out = b.output("frame");
    b.forLoop(0, kHalf * kSize, [&](Ex) {
        b.write(out, b.read(top));
    });
    b.forLoop(0, kHalf * kSize, [&](Ex) {
        b.write(out, b.read(bot));
    });
    return b.finish();
}

} // namespace

Benchmark
makeRendering()
{
    Benchmark bm;
    bm.name = "3D Rendering";
    bm.itemsPerRun = kTris;

    GraphBuilder gb("rendering");
    auto in = gb.extIn("Input_1");
    auto out = gb.extOut("Output_1");
    auto w_top = gb.wire(), w_bot = gb.wire();
    auto f_top = gb.wire(), f_bot = gb.wire();
    auto h_top = gb.wire(), h_bot = gb.wire();
    gb.inst(makeProject(), {in}, {w_top, w_bot});
    gb.inst(makeRast("rast_top", 0, kHalf), {w_top}, {f_top});
    gb.inst(makeRast("rast_bot", kHalf, kSize), {w_bot}, {f_bot});
    gb.inst(makeZbuf("zbuf_top"), {f_top}, {h_top});
    gb.inst(makeZbuf("zbuf_bot"), {f_bot}, {h_bot});
    gb.inst(makeFrameGen(), {h_top, h_bot}, {out});
    bm.graph = gb.finish();

    // Workload: deterministic random triangles.
    Rng rng(0xD1CE);
    std::vector<int32_t> tris;
    for (int t = 0; t < kTris; ++t) {
        int32_t z = static_cast<int32_t>(rng.range(1, 250));
        for (int v = 0; v < 3; ++v) {
            tris.push_back(
                static_cast<int32_t>(rng.range(0, kSize - 1))); // x
            tris.push_back(
                static_cast<int32_t>(rng.range(0, kSize - 1))); // y
            tris.push_back(z);
        }
    }
    for (int32_t w : tris)
        bm.input.push_back(static_cast<uint32_t>(w));

    // Golden model (independent C++).
    std::vector<int32_t> zbuf(kSize * kSize, 0);
    for (int t = 0; t < kTris; ++t) {
        int32_t c[9];
        for (int i = 0; i < 9; ++i) {
            int32_t v = tris[t * 9 + i];
            c[i] = (i % 3 == 0) ? v + (v >> 4) : v;
        }
        for (int y = 0; y < kSize; ++y) {
            for (int x = 0; x < kSize; ++x) {
                int64_t e0 = int64_t(c[3] - c[0]) * (y - c[1]) -
                             int64_t(c[4] - c[1]) * (x - c[0]);
                int64_t e1 = int64_t(c[6] - c[3]) * (y - c[4]) -
                             int64_t(c[7] - c[4]) * (x - c[3]);
                int64_t e2 = int64_t(c[0] - c[6]) * (y - c[7]) -
                             int64_t(c[1] - c[7]) * (x - c[6]);
                bool inside = (e0 >= 0 && e1 >= 0 && e2 >= 0) ||
                              (e0 <= 0 && e1 <= 0 && e2 <= 0);
                int32_t d = inside ? c[2] : 0;
                int32_t &cur = zbuf[y * kSize + x];
                if (d != 0 && (cur == 0 || d < cur))
                    cur = d;
            }
        }
    }
    for (int32_t v : zbuf)
        bm.expected.push_back(static_cast<uint32_t>(v));
    return bm;
}

} // namespace rosetta
} // namespace pld
