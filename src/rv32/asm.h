/**
 * @file
 * RV32IM instruction encoder and two-pass assembler.
 *
 * The -O0 flow compiles operator IR to real RV32IM machine code that
 * the PicoRV32-timed ISS executes (paper Sec 5/6.1). This assembler
 * provides labels, the usual pseudo-instructions, and binary emission
 * into the PLD-ELF image.
 */

#ifndef PLD_RV32_ASM_H
#define PLD_RV32_ASM_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pld {
namespace rv32 {

/** ABI register numbers. */
enum Reg : uint8_t {
    x0 = 0, ra = 1, sp = 2, gp = 3, tp = 4,
    t0 = 5, t1 = 6, t2 = 7,
    s0 = 8, s1 = 9,
    a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15,
    a6 = 16, a7 = 17,
    s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23,
    s8 = 24, s9 = 25, s10 = 26, s11 = 27,
    t3 = 28, t4 = 29, t5 = 30, t6 = 31,
};

/**
 * Two-pass assembler: emit instructions referencing named labels;
 * assemble() resolves them and returns the code image.
 */
class Assembler
{
  public:
    /** Current emission address (bytes from text base). */
    uint32_t pc() const { return static_cast<uint32_t>(words.size()) * 4; }

    /** Define a label at the current position. */
    void label(const std::string &name);

    /** Fresh unique label name. */
    std::string genLabel(const std::string &stem);

    // R-type ALU.
    void add(Reg rd, Reg rs1, Reg rs2);
    void sub(Reg rd, Reg rs1, Reg rs2);
    void sll(Reg rd, Reg rs1, Reg rs2);
    void slt(Reg rd, Reg rs1, Reg rs2);
    void sltu(Reg rd, Reg rs1, Reg rs2);
    void xor_(Reg rd, Reg rs1, Reg rs2);
    void srl(Reg rd, Reg rs1, Reg rs2);
    void sra(Reg rd, Reg rs1, Reg rs2);
    void or_(Reg rd, Reg rs1, Reg rs2);
    void and_(Reg rd, Reg rs1, Reg rs2);
    // M extension.
    void mul(Reg rd, Reg rs1, Reg rs2);
    void mulh(Reg rd, Reg rs1, Reg rs2);
    void mulhsu(Reg rd, Reg rs1, Reg rs2);
    void mulhu(Reg rd, Reg rs1, Reg rs2);
    void div(Reg rd, Reg rs1, Reg rs2);
    void divu(Reg rd, Reg rs1, Reg rs2);
    void rem(Reg rd, Reg rs1, Reg rs2);
    void remu(Reg rd, Reg rs1, Reg rs2);
    // I-type.
    void addi(Reg rd, Reg rs1, int32_t imm);
    void slti(Reg rd, Reg rs1, int32_t imm);
    void sltiu(Reg rd, Reg rs1, int32_t imm);
    void xori(Reg rd, Reg rs1, int32_t imm);
    void ori(Reg rd, Reg rs1, int32_t imm);
    void andi(Reg rd, Reg rs1, int32_t imm);
    void slli(Reg rd, Reg rs1, int shamt);
    void srli(Reg rd, Reg rs1, int shamt);
    void srai(Reg rd, Reg rs1, int shamt);
    // Loads/stores.
    void lb(Reg rd, Reg rs1, int32_t imm);
    void lh(Reg rd, Reg rs1, int32_t imm);
    void lw(Reg rd, Reg rs1, int32_t imm);
    void lbu(Reg rd, Reg rs1, int32_t imm);
    void lhu(Reg rd, Reg rs1, int32_t imm);
    void sb(Reg rs2, Reg rs1, int32_t imm);
    void sh(Reg rs2, Reg rs1, int32_t imm);
    void sw(Reg rs2, Reg rs1, int32_t imm);
    // Upper immediates / jumps.
    void lui(Reg rd, uint32_t imm20);
    void auipc(Reg rd, uint32_t imm20);
    void jal(Reg rd, const std::string &target);
    void jalr(Reg rd, Reg rs1, int32_t imm);
    // Branches (to labels).
    void beq(Reg rs1, Reg rs2, const std::string &target);
    void bne(Reg rs1, Reg rs2, const std::string &target);
    void blt(Reg rs1, Reg rs2, const std::string &target);
    void bge(Reg rs1, Reg rs2, const std::string &target);
    void bltu(Reg rs1, Reg rs2, const std::string &target);
    void bgeu(Reg rs1, Reg rs2, const std::string &target);
    // System.
    void ebreak();

    // Pseudo-instructions.
    void li(Reg rd, int32_t value);
    void mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
    void j(const std::string &target) { jal(x0, target); }
    void call(const std::string &target) { jal(ra, target); }
    void ret() { jalr(x0, ra, 0); }
    void nop() { addi(x0, x0, 0); }
    void seqz(Reg rd, Reg rs) { sltiu(rd, rs, 1); }
    void snez(Reg rd, Reg rs) { sltu(rd, x0, rs); }
    void neg(Reg rd, Reg rs) { sub(rd, x0, rs); }
    void not_(Reg rd, Reg rs) { xori(rd, rs, -1); }

    /** Resolve labels and return the instruction words. */
    std::vector<uint32_t> assemble();

    /** Address of a defined label (valid after assemble()). */
    uint32_t labelAddr(const std::string &name) const;

  private:
    struct Fixup
    {
        size_t index;        // word to patch
        std::string target;  // label
        bool isJal;          // J-type vs B-type immediate
    };

    void emit(uint32_t word) { words.push_back(word); }
    void emitBranch(int funct3, Reg rs1, Reg rs2,
                    const std::string &target);

    std::vector<uint32_t> words;
    std::map<std::string, uint32_t> labels;
    std::vector<Fixup> fixups;
    int genCounter = 0;
};

} // namespace rv32
} // namespace pld

#endif // PLD_RV32_ASM_H
