#include "rv32/asm.h"

#include "common/logging.h"

namespace pld {
namespace rv32 {

namespace {

uint32_t
rtype(int funct7, Reg rs2, Reg rs1, int funct3, Reg rd, int opcode)
{
    return (uint32_t(funct7) << 25) | (uint32_t(rs2) << 20) |
           (uint32_t(rs1) << 15) | (uint32_t(funct3) << 12) |
           (uint32_t(rd) << 7) | uint32_t(opcode);
}

uint32_t
itype(int32_t imm, Reg rs1, int funct3, Reg rd, int opcode)
{
    pld_assert(imm >= -2048 && imm <= 2047,
               "I-type immediate %d out of range", imm);
    return (uint32_t(imm & 0xFFF) << 20) | (uint32_t(rs1) << 15) |
           (uint32_t(funct3) << 12) | (uint32_t(rd) << 7) |
           uint32_t(opcode);
}

uint32_t
stype(int32_t imm, Reg rs2, Reg rs1, int funct3, int opcode)
{
    pld_assert(imm >= -2048 && imm <= 2047,
               "S-type immediate %d out of range", imm);
    uint32_t u = uint32_t(imm & 0xFFF);
    return ((u >> 5) << 25) | (uint32_t(rs2) << 20) |
           (uint32_t(rs1) << 15) | (uint32_t(funct3) << 12) |
           ((u & 0x1F) << 7) | uint32_t(opcode);
}

uint32_t
btypeImm(int32_t offset)
{
    pld_assert(offset >= -4096 && offset <= 4095 && (offset & 1) == 0,
               "branch offset %d out of range", offset);
    uint32_t u = uint32_t(offset);
    uint32_t imm12 = (u >> 12) & 1;
    uint32_t imm10_5 = (u >> 5) & 0x3F;
    uint32_t imm4_1 = (u >> 1) & 0xF;
    uint32_t imm11 = (u >> 11) & 1;
    return (imm12 << 31) | (imm10_5 << 25) | (imm4_1 << 8) |
           (imm11 << 7);
}

uint32_t
jtypeImm(int32_t offset)
{
    pld_assert(offset >= -(1 << 20) && offset < (1 << 20) &&
                   (offset & 1) == 0,
               "jal offset %d out of range", offset);
    uint32_t u = uint32_t(offset);
    uint32_t imm20 = (u >> 20) & 1;
    uint32_t imm10_1 = (u >> 1) & 0x3FF;
    uint32_t imm11 = (u >> 11) & 1;
    uint32_t imm19_12 = (u >> 12) & 0xFF;
    return (imm20 << 31) | (imm10_1 << 21) | (imm11 << 20) |
           (imm19_12 << 12);
}

} // namespace

void
Assembler::label(const std::string &name)
{
    pld_assert(!labels.count(name), "duplicate label %s",
               name.c_str());
    labels[name] = pc();
}

std::string
Assembler::genLabel(const std::string &stem)
{
    return "." + stem + "_" + std::to_string(genCounter++);
}

// --- R-type ------------------------------------------------------------
void Assembler::add(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x00, rs2, rs1, 0x0, rd, 0x33)); }
void Assembler::sub(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x20, rs2, rs1, 0x0, rd, 0x33)); }
void Assembler::sll(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x00, rs2, rs1, 0x1, rd, 0x33)); }
void Assembler::slt(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x00, rs2, rs1, 0x2, rd, 0x33)); }
void Assembler::sltu(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x00, rs2, rs1, 0x3, rd, 0x33)); }
void Assembler::xor_(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x00, rs2, rs1, 0x4, rd, 0x33)); }
void Assembler::srl(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x00, rs2, rs1, 0x5, rd, 0x33)); }
void Assembler::sra(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x20, rs2, rs1, 0x5, rd, 0x33)); }
void Assembler::or_(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x00, rs2, rs1, 0x6, rd, 0x33)); }
void Assembler::and_(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x00, rs2, rs1, 0x7, rd, 0x33)); }
void Assembler::mul(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x01, rs2, rs1, 0x0, rd, 0x33)); }
void Assembler::mulh(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x01, rs2, rs1, 0x1, rd, 0x33)); }
void Assembler::mulhsu(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x01, rs2, rs1, 0x2, rd, 0x33)); }
void Assembler::mulhu(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x01, rs2, rs1, 0x3, rd, 0x33)); }
void Assembler::div(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x01, rs2, rs1, 0x4, rd, 0x33)); }
void Assembler::divu(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x01, rs2, rs1, 0x5, rd, 0x33)); }
void Assembler::rem(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x01, rs2, rs1, 0x6, rd, 0x33)); }
void Assembler::remu(Reg rd, Reg rs1, Reg rs2)
{ emit(rtype(0x01, rs2, rs1, 0x7, rd, 0x33)); }

// --- I-type ------------------------------------------------------------
void Assembler::addi(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x0, rd, 0x13)); }
void Assembler::slti(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x2, rd, 0x13)); }
void Assembler::sltiu(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x3, rd, 0x13)); }
void Assembler::xori(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x4, rd, 0x13)); }
void Assembler::ori(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x6, rd, 0x13)); }
void Assembler::andi(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x7, rd, 0x13)); }

void
Assembler::slli(Reg rd, Reg rs1, int shamt)
{
    pld_assert(shamt >= 0 && shamt < 32, "bad shamt %d", shamt);
    emit(itype(shamt, rs1, 0x1, rd, 0x13));
}
void
Assembler::srli(Reg rd, Reg rs1, int shamt)
{
    pld_assert(shamt >= 0 && shamt < 32, "bad shamt %d", shamt);
    emit(itype(shamt, rs1, 0x5, rd, 0x13));
}
void
Assembler::srai(Reg rd, Reg rs1, int shamt)
{
    pld_assert(shamt >= 0 && shamt < 32, "bad shamt %d", shamt);
    emit(itype(shamt | 0x400, rs1, 0x5, rd, 0x13));
}

// --- Memory ------------------------------------------------------------
void Assembler::lb(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x0, rd, 0x03)); }
void Assembler::lh(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x1, rd, 0x03)); }
void Assembler::lw(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x2, rd, 0x03)); }
void Assembler::lbu(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x4, rd, 0x03)); }
void Assembler::lhu(Reg rd, Reg rs1, int32_t imm)
{ emit(itype(imm, rs1, 0x5, rd, 0x03)); }
void Assembler::sb(Reg rs2, Reg rs1, int32_t imm)
{ emit(stype(imm, rs2, rs1, 0x0, 0x23)); }
void Assembler::sh(Reg rs2, Reg rs1, int32_t imm)
{ emit(stype(imm, rs2, rs1, 0x1, 0x23)); }
void Assembler::sw(Reg rs2, Reg rs1, int32_t imm)
{ emit(stype(imm, rs2, rs1, 0x2, 0x23)); }

// --- Upper/jumps -------------------------------------------------------
void
Assembler::lui(Reg rd, uint32_t imm20)
{
    emit((imm20 << 12) | (uint32_t(rd) << 7) | 0x37);
}
void
Assembler::auipc(Reg rd, uint32_t imm20)
{
    emit((imm20 << 12) | (uint32_t(rd) << 7) | 0x17);
}

void
Assembler::jal(Reg rd, const std::string &target)
{
    fixups.push_back({words.size(), target, true});
    emit((uint32_t(rd) << 7) | 0x6F);
}

void
Assembler::jalr(Reg rd, Reg rs1, int32_t imm)
{
    emit(itype(imm, rs1, 0x0, rd, 0x67));
}

void
Assembler::emitBranch(int funct3, Reg rs1, Reg rs2,
                      const std::string &target)
{
    fixups.push_back({words.size(), target, false});
    emit((uint32_t(rs2) << 20) | (uint32_t(rs1) << 15) |
         (uint32_t(funct3) << 12) | 0x63);
}

void Assembler::beq(Reg a, Reg b, const std::string &t)
{ emitBranch(0x0, a, b, t); }
void Assembler::bne(Reg a, Reg b, const std::string &t)
{ emitBranch(0x1, a, b, t); }
void Assembler::blt(Reg a, Reg b, const std::string &t)
{ emitBranch(0x4, a, b, t); }
void Assembler::bge(Reg a, Reg b, const std::string &t)
{ emitBranch(0x5, a, b, t); }
void Assembler::bltu(Reg a, Reg b, const std::string &t)
{ emitBranch(0x6, a, b, t); }
void Assembler::bgeu(Reg a, Reg b, const std::string &t)
{ emitBranch(0x7, a, b, t); }

void
Assembler::ebreak()
{
    emit(0x00100073);
}

void
Assembler::li(Reg rd, int32_t value)
{
    if (value >= -2048 && value <= 2047) {
        addi(rd, x0, value);
        return;
    }
    uint32_t u = static_cast<uint32_t>(value);
    uint32_t hi = (u + 0x800) >> 12;
    int32_t lo = static_cast<int32_t>(u - (hi << 12));
    lui(rd, hi & 0xFFFFF);
    if (lo != 0)
        addi(rd, rd, lo);
}

std::vector<uint32_t>
Assembler::assemble()
{
    for (const auto &f : fixups) {
        auto it = labels.find(f.target);
        pld_assert(it != labels.end(), "undefined label %s",
                   f.target.c_str());
        int32_t offset = static_cast<int32_t>(it->second) -
                         static_cast<int32_t>(f.index * 4);
        if (f.isJal)
            words[f.index] |= jtypeImm(offset);
        else
            words[f.index] |= btypeImm(offset);
    }
    fixups.clear();
    return words;
}

uint32_t
Assembler::labelAddr(const std::string &name) const
{
    auto it = labels.find(name);
    pld_assert(it != labels.end(), "unknown label %s", name.c_str());
    return it->second;
}

} // namespace rv32
} // namespace pld
