/**
 * @file
 * PLD-ELF: the packed softcore binary format.
 *
 * The paper's pre-linker/loader (pld) packs each operator's compiled
 * RISC-V binary "with headers that indicate the final page number and
 * the memory address for each binary byte" (Sec 6.1). PldElf is that
 * container: text at address 0, an initialized data segment (ROMs,
 * variables), the unified memory size, and the target page number.
 */

#ifndef PLD_RV32_ELF_H
#define PLD_RV32_ELF_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pld {
namespace rv32 {

/** One softcore program image. */
struct PldElf
{
    static constexpr uint32_t kMagic = 0x504C4445; // "PLDE"

    uint32_t entry = 0;
    uint32_t memBytes = 64 * 1024; ///< unified I+D memory (<=192 KB)
    std::vector<uint32_t> text;    ///< instructions, loaded at 0
    uint32_t dataBase = 0;         ///< data segment load address
    std::vector<uint8_t> data;     ///< initialized data image
    int32_t pageNum = -1;          ///< pre-linker header field

    /** Code + data footprint in bytes (the paper's 30-60 KB claim). */
    size_t
    footprintBytes() const
    {
        return text.size() * 4 + data.size();
    }

    /** Serialize with header (magic, page, sizes). */
    std::vector<uint8_t> pack() const;

    /** Parse a packed image; fatal()s on corruption. */
    static PldElf unpack(const std::vector<uint8_t> &bytes);
};

} // namespace rv32
} // namespace pld

#endif // PLD_RV32_ELF_H
