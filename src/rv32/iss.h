/**
 * @file
 * PicoRV32-timed RV32IM instruction-set simulator.
 *
 * Models the paper's per-page softcore (Sec 5.1): a small,
 * unpipelined RV32IM core with a unified instruction/data memory (at
 * most 192 KB) and memory-mapped stream ports wired to the page's
 * leaf interface. Loads from an empty stream and stores to a full
 * stream stall the core without side effects, which implements the
 * blocking latency-insensitive semantics in hardware-equivalent form.
 *
 * Cycle costs approximate PicoRV32 (a slow, unpipelined core — the
 * paper notes performance "can easily be improved by replacing it
 * with a higher frequency, pipelined softcore").
 */

#ifndef PLD_RV32_ISS_H
#define PLD_RV32_ISS_H

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/stream.h"
#include "rv32/elf.h"

namespace pld {
namespace rv32 {

/** Why step() returned. */
enum class CoreStatus {
    Running,        ///< instruction budget exhausted
    BlockedOnRead,  ///< stalled on an empty input stream
    BlockedOnWrite, ///< stalled on a full output stream
    Halted,         ///< ebreak / halt MMIO
    Trapped,        ///< illegal instruction or bad access
};

/** Memory map constants. */
struct Mmio
{
    static constexpr uint32_t kStreamBase = 0x10000000;
    static constexpr uint32_t kStreamStride = 16;
    static constexpr uint32_t kStatusOffset = 4;
    static constexpr uint32_t kConsolePutc = 0x20000000;
    static constexpr uint32_t kHalt = 0x20000008;
};

/**
 * One softcore instance. Stream ports are indexed like the operator's
 * ports and accessed at kStreamBase + idx*kStreamStride.
 */
class Core
{
  public:
    Core(const PldElf &image,
         std::vector<dataflow::StreamPort *> ports);

    /** Execute up to @p max_instrs instructions. */
    CoreStatus step(uint64_t max_instrs);

    /** Reset to the image's entry point (memory reloaded). */
    void reset();

    uint64_t cycles() const { return cycles_; }
    uint64_t instret() const { return instret_; }
    uint32_t pc() const { return pc_; }
    uint32_t reg(int idx) const { return regs[idx]; }
    bool halted() const { return halted_; }

    /** Text accumulated through the console MMIO. */
    const std::string &consoleOut() const { return console; }

    /** Trap description when status was Trapped. */
    const std::string &trapReason() const { return trap; }

  private:
    CoreStatus execOne();

    bool loadWord(uint32_t addr, uint32_t &value, int size,
                  bool sign_extend, CoreStatus &blocked);
    bool storeWord(uint32_t addr, uint32_t value, int size,
                   CoreStatus &blocked);

    PldElf image;
    std::vector<dataflow::StreamPort *> ports;
    std::vector<uint8_t> mem;
    uint32_t regs[32] = {};
    uint32_t pc_ = 0;
    uint64_t cycles_ = 0;
    uint64_t instret_ = 0;
    bool halted_ = false;
    std::string console;
    std::string trap;
};

} // namespace rv32
} // namespace pld

#endif // PLD_RV32_ISS_H
