#include "rv32/iss.h"

#include <cstring>

#include "common/logging.h"

namespace pld {
namespace rv32 {

namespace {

int32_t
signExtendField(uint32_t v, int bits)
{
    uint32_t m = 1u << (bits - 1);
    return static_cast<int32_t>((v ^ m) - m);
}

} // namespace

Core::Core(const PldElf &image_in,
           std::vector<dataflow::StreamPort *> ports_in)
    : image(image_in), ports(std::move(ports_in))
{
    pld_assert(image.memBytes <= 192 * 1024,
               "softcore memory limited to 192 KB (Sec 5.1), got %u",
               image.memBytes);
    reset();
}

void
Core::reset()
{
    mem.assign(image.memBytes, 0);
    size_t text_bytes = image.text.size() * 4;
    pld_assert(text_bytes <= mem.size(), "text exceeds memory");
    std::memcpy(mem.data(), image.text.data(), text_bytes);
    pld_assert(image.dataBase + image.data.size() <= mem.size(),
               "data segment exceeds memory");
    if (!image.data.empty()) {
        std::memcpy(mem.data() + image.dataBase, image.data.data(),
                    image.data.size());
    }
    std::memset(regs, 0, sizeof(regs));
    regs[2] = image.memBytes - 16; // sp at top of memory
    pc_ = image.entry;
    cycles_ = 0;
    instret_ = 0;
    halted_ = false;
    console.clear();
    trap.clear();
}

bool
Core::loadWord(uint32_t addr, uint32_t &value, int size,
               bool sign_extend, CoreStatus &blocked)
{
    if (addr >= Mmio::kStreamBase && addr < Mmio::kConsolePutc) {
        uint32_t off = addr - Mmio::kStreamBase;
        uint32_t port = off / Mmio::kStreamStride;
        uint32_t field = off % Mmio::kStreamStride;
        if (port >= ports.size()) {
            trap = "load from unmapped stream port";
            blocked = CoreStatus::Trapped;
            return false;
        }
        if (field == 0) {
            if (!ports[port]->canRead()) {
                blocked = CoreStatus::BlockedOnRead;
                return false;
            }
            value = ports[port]->read();
            return true;
        }
        if (field == Mmio::kStatusOffset) {
            value = (ports[port]->canRead() ? 1u : 0u) |
                    (ports[port]->canWrite() ? 2u : 0u);
            return true;
        }
        trap = "load from bad stream register";
        blocked = CoreStatus::Trapped;
        return false;
    }

    if (addr + size > mem.size()) {
        trap = "load beyond memory at 0x" + std::to_string(addr);
        blocked = CoreStatus::Trapped;
        return false;
    }
    uint32_t v = 0;
    for (int i = 0; i < size; ++i)
        v |= uint32_t(mem[addr + i]) << (8 * i);
    if (sign_extend && size < 4)
        v = static_cast<uint32_t>(signExtendField(v, size * 8));
    value = v;
    return true;
}

bool
Core::storeWord(uint32_t addr, uint32_t value, int size,
                CoreStatus &blocked)
{
    if (addr >= Mmio::kStreamBase && addr < Mmio::kConsolePutc) {
        uint32_t off = addr - Mmio::kStreamBase;
        uint32_t port = off / Mmio::kStreamStride;
        uint32_t field = off % Mmio::kStreamStride;
        if (port >= ports.size() || field != 0) {
            trap = "store to bad stream register";
            blocked = CoreStatus::Trapped;
            return false;
        }
        if (!ports[port]->canWrite()) {
            blocked = CoreStatus::BlockedOnWrite;
            return false;
        }
        ports[port]->write(value);
        return true;
    }
    if (addr == Mmio::kConsolePutc) {
        console.push_back(static_cast<char>(value & 0xFF));
        return true;
    }
    if (addr == Mmio::kHalt) {
        halted_ = true;
        return true;
    }

    if (addr + size > mem.size()) {
        trap = "store beyond memory at 0x" + std::to_string(addr);
        blocked = CoreStatus::Trapped;
        return false;
    }
    for (int i = 0; i < size; ++i)
        mem[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    return true;
}

CoreStatus
Core::execOne()
{
    if (pc_ + 4 > mem.size() || (pc_ & 3)) {
        trap = "pc out of range";
        return CoreStatus::Trapped;
    }
    uint32_t inst;
    std::memcpy(&inst, mem.data() + pc_, 4);

    uint32_t opcode = inst & 0x7F;
    uint32_t rd = (inst >> 7) & 0x1F;
    uint32_t funct3 = (inst >> 12) & 0x7;
    uint32_t rs1 = (inst >> 15) & 0x1F;
    uint32_t rs2 = (inst >> 20) & 0x1F;
    uint32_t funct7 = inst >> 25;

    uint32_t v1 = regs[rs1];
    uint32_t v2 = regs[rs2];
    uint32_t next_pc = pc_ + 4;
    uint32_t result = 0;
    bool write_rd = false;
    uint64_t cost = 3; // PicoRV32-ish base

    switch (opcode) {
      case 0x33: { // R-type
        write_rd = true;
        if (funct7 == 0x01) { // M extension
            int32_t s1 = static_cast<int32_t>(v1);
            int32_t s2 = static_cast<int32_t>(v2);
            switch (funct3) {
              case 0x0: result = v1 * v2; cost = 5; break;
              case 0x1:
                result = static_cast<uint32_t>(
                    (int64_t(s1) * int64_t(s2)) >> 32);
                cost = 5;
                break;
              case 0x2:
                result = static_cast<uint32_t>(
                    (int64_t(s1) * uint64_t(v2)) >> 32);
                cost = 5;
                break;
              case 0x3:
                result = static_cast<uint32_t>(
                    (uint64_t(v1) * uint64_t(v2)) >> 32);
                cost = 5;
                break;
              case 0x4: // div
                result = (v2 == 0) ? 0xFFFFFFFFu
                         : (s1 == INT32_MIN && s2 == -1)
                             ? uint32_t(INT32_MIN)
                             : uint32_t(s1 / s2);
                cost = 40;
                break;
              case 0x5:
                result = (v2 == 0) ? 0xFFFFFFFFu : (v1 / v2);
                cost = 40;
                break;
              case 0x6:
                result = (v2 == 0) ? v1
                         : (s1 == INT32_MIN && s2 == -1)
                             ? 0
                             : uint32_t(s1 % s2);
                cost = 40;
                break;
              case 0x7:
                result = (v2 == 0) ? v1 : (v1 % v2);
                cost = 40;
                break;
            }
        } else {
            switch (funct3) {
              case 0x0:
                result = (funct7 == 0x20) ? v1 - v2 : v1 + v2;
                break;
              case 0x1: result = v1 << (v2 & 31); break;
              case 0x2:
                result = (int32_t(v1) < int32_t(v2)) ? 1 : 0;
                break;
              case 0x3: result = (v1 < v2) ? 1 : 0; break;
              case 0x4: result = v1 ^ v2; break;
              case 0x5:
                result = (funct7 == 0x20)
                             ? uint32_t(int32_t(v1) >> (v2 & 31))
                             : (v1 >> (v2 & 31));
                break;
              case 0x6: result = v1 | v2; break;
              case 0x7: result = v1 & v2; break;
            }
        }
        break;
      }
      case 0x13: { // I-type ALU
        write_rd = true;
        int32_t imm = signExtendField(inst >> 20, 12);
        switch (funct3) {
          case 0x0: result = v1 + uint32_t(imm); break;
          case 0x1: result = v1 << (imm & 31); break;
          case 0x2: result = (int32_t(v1) < imm) ? 1 : 0; break;
          case 0x3: result = (v1 < uint32_t(imm)) ? 1 : 0; break;
          case 0x4: result = v1 ^ uint32_t(imm); break;
          case 0x5:
            result = (inst & 0x40000000)
                         ? uint32_t(int32_t(v1) >> (imm & 31))
                         : (v1 >> (imm & 31));
            break;
          case 0x6: result = v1 | uint32_t(imm); break;
          case 0x7: result = v1 & uint32_t(imm); break;
        }
        break;
      }
      case 0x03: { // loads
        int32_t imm = signExtendField(inst >> 20, 12);
        uint32_t addr = v1 + uint32_t(imm);
        int size = 1 << (funct3 & 3);
        bool sign = (funct3 & 4) == 0;
        CoreStatus blocked = CoreStatus::Running;
        uint32_t value;
        if (!loadWord(addr, value, size, sign, blocked))
            return blocked;
        result = value;
        write_rd = true;
        cost = 5;
        break;
      }
      case 0x23: { // stores
        int32_t imm = signExtendField(
            ((inst >> 25) << 5) | ((inst >> 7) & 0x1F), 12);
        uint32_t addr = v1 + uint32_t(imm);
        int size = 1 << (funct3 & 3);
        CoreStatus blocked = CoreStatus::Running;
        if (!storeWord(addr, v2, size, blocked))
            return blocked;
        cost = 5;
        break;
      }
      case 0x63: { // branches
        uint32_t u = inst;
        int32_t imm = signExtendField(
            (((u >> 31) & 1) << 12) | (((u >> 7) & 1) << 11) |
                (((u >> 25) & 0x3F) << 5) | (((u >> 8) & 0xF) << 1),
            13);
        bool take = false;
        switch (funct3) {
          case 0x0: take = (v1 == v2); break;
          case 0x1: take = (v1 != v2); break;
          case 0x4: take = (int32_t(v1) < int32_t(v2)); break;
          case 0x5: take = (int32_t(v1) >= int32_t(v2)); break;
          case 0x6: take = (v1 < v2); break;
          case 0x7: take = (v1 >= v2); break;
          default:
            trap = "bad branch funct3";
            return CoreStatus::Trapped;
        }
        if (take) {
            next_pc = pc_ + uint32_t(imm);
            cost = 5;
        }
        break;
      }
      case 0x37: // lui
        result = inst & 0xFFFFF000;
        write_rd = true;
        break;
      case 0x17: // auipc
        result = pc_ + (inst & 0xFFFFF000);
        write_rd = true;
        break;
      case 0x6F: { // jal
        uint32_t u = inst;
        int32_t imm = signExtendField(
            (((u >> 31) & 1) << 20) | (((u >> 12) & 0xFF) << 12) |
                (((u >> 20) & 1) << 11) | (((u >> 21) & 0x3FF) << 1),
            21);
        result = pc_ + 4;
        write_rd = true;
        next_pc = pc_ + uint32_t(imm);
        cost = 5;
        break;
      }
      case 0x67: { // jalr
        int32_t imm = signExtendField(inst >> 20, 12);
        result = pc_ + 4;
        write_rd = true;
        next_pc = (v1 + uint32_t(imm)) & ~1u;
        cost = 5;
        break;
      }
      case 0x73: // system: treat ebreak/ecall as halt
        halted_ = true;
        ++instret_;
        cycles_ += cost;
        return CoreStatus::Halted;
      default:
        trap = "illegal opcode 0x" + std::to_string(opcode);
        return CoreStatus::Trapped;
    }

    if (write_rd && rd != 0)
        regs[rd] = result;
    pc_ = next_pc;
    ++instret_;
    cycles_ += cost;
    if (halted_)
        return CoreStatus::Halted;
    return CoreStatus::Running;
}

CoreStatus
Core::step(uint64_t max_instrs)
{
    if (halted_)
        return CoreStatus::Halted;
    for (uint64_t i = 0; i < max_instrs; ++i) {
        CoreStatus st = execOne();
        if (st != CoreStatus::Running)
            return st;
    }
    return CoreStatus::Running;
}

} // namespace rv32
} // namespace pld
