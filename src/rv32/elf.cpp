#include "rv32/elf.h"

#include <cstring>

#include "common/logging.h"

namespace pld {
namespace rv32 {

namespace {

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
get32(const std::vector<uint8_t> &in, size_t &off)
{
    pld_assert(off + 4 <= in.size(), "truncated PLD-ELF");
    uint32_t v = in[off] | (uint32_t(in[off + 1]) << 8) |
                 (uint32_t(in[off + 2]) << 16) |
                 (uint32_t(in[off + 3]) << 24);
    off += 4;
    return v;
}

} // namespace

std::vector<uint8_t>
PldElf::pack() const
{
    std::vector<uint8_t> out;
    put32(out, kMagic);
    put32(out, entry);
    put32(out, memBytes);
    put32(out, static_cast<uint32_t>(pageNum));
    put32(out, static_cast<uint32_t>(text.size()));
    put32(out, dataBase);
    put32(out, static_cast<uint32_t>(data.size()));
    for (uint32_t w : text)
        put32(out, w);
    out.insert(out.end(), data.begin(), data.end());
    return out;
}

PldElf
PldElf::unpack(const std::vector<uint8_t> &bytes)
{
    size_t off = 0;
    PldElf e;
    uint32_t magic = get32(bytes, off);
    if (magic != kMagic)
        pld_fatal("bad PLD-ELF magic 0x%08x", magic);
    e.entry = get32(bytes, off);
    e.memBytes = get32(bytes, off);
    e.pageNum = static_cast<int32_t>(get32(bytes, off));
    uint32_t text_words = get32(bytes, off);
    e.dataBase = get32(bytes, off);
    uint32_t data_bytes = get32(bytes, off);
    e.text.reserve(text_words);
    for (uint32_t i = 0; i < text_words; ++i)
        e.text.push_back(get32(bytes, off));
    pld_assert(off + data_bytes <= bytes.size(),
               "PLD-ELF data truncated");
    e.data.assign(bytes.begin() + off,
                  bytes.begin() + off + data_bytes);
    return e;
}

} // namespace rv32
} // namespace pld
