/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 discipline: fatal() is for user error (bad
 * configuration, impossible request) and exits cleanly; panic() is for
 * internal invariant violations and aborts. inform()/warn() report
 * status without stopping the program.
 */

#ifndef PLD_COMMON_LOGGING_H
#define PLD_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pld {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global log verbosity; messages above this level are suppressed. */
LogLevel logLevel();

/** Set the global log verbosity. */
void setLogLevel(LogLevel level);

namespace detail {

std::string vformat(const char *fmt, va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void informImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

} // namespace pld

/** Report an unrecoverable user-level error and exit(1). */
#define pld_fatal(...) \
    ::pld::detail::fatalImpl(__FILE__, __LINE__, \
                             ::pld::detail::format(__VA_ARGS__))

/** Report an internal invariant violation and abort(). */
#define pld_panic(...) \
    ::pld::detail::panicImpl(__FILE__, __LINE__, \
                             ::pld::detail::format(__VA_ARGS__))

/** Abort unless a condition holds; condition text is included. */
#define pld_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::pld::detail::panicImpl(__FILE__, __LINE__, \
                std::string("assertion failed: ") + #cond + ": " + \
                ::pld::detail::format(__VA_ARGS__)); \
        } \
    } while (0)

/** Informative status message (suppressed below Info verbosity). */
#define pld_inform(...) \
    ::pld::detail::informImpl(::pld::detail::format(__VA_ARGS__))

/** Warning about questionable but survivable conditions. */
#define pld_warn(...) \
    ::pld::detail::warnImpl(::pld::detail::format(__VA_ARGS__))

/** Debug chatter (suppressed below Debug verbosity). */
#define pld_debug(...) \
    ::pld::detail::debugImpl(::pld::detail::format(__VA_ARGS__))

#endif // PLD_COMMON_LOGGING_H
