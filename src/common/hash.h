/**
 * @file
 * Content hashing for the incremental-compile artifact cache.
 *
 * The compile manager keys cached page bitstreams and softcore binaries
 * by a structural hash of the operator IR plus target parameters, so
 * unchanged operators are never recompiled (the paper's separate
 * compilation + linkage discipline, Sec 6).
 */

#ifndef PLD_COMMON_HASH_H
#define PLD_COMMON_HASH_H

#include <cstdint>
#include <string>

namespace pld {

/** Incremental FNV-1a 64-bit hasher. */
class Hasher
{
  public:
    /** Mix raw bytes into the hash. */
    void
    bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < n; ++i) {
            state ^= p[i];
            state *= 0x100000001B3ull;
        }
    }

    /** Mix a string (length-prefixed so concatenations differ). */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /** Mix a 64-bit integer. */
    void u64(uint64_t v) { bytes(&v, sizeof(v)); }

    /** Mix a signed integer. */
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    /** Current digest. */
    uint64_t digest() const { return state; }

  private:
    uint64_t state = 0xCBF29CE484222325ull;
};

/** One-shot hash of a string. */
inline uint64_t
hashString(const std::string &s)
{
    Hasher h;
    h.str(s);
    return h.digest();
}

/**
 * CRC-32 (IEEE 802.3, reflected poly 0xEDB88320), bitwise — the
 * frame check the runtime puts on every reconfiguration config
 * packet. Table-free: config framing is cycles-scale work in a
 * simulator, not a hot path.
 */
inline uint32_t
crc32(const void *data, size_t n, uint32_t crc = 0)
{
    const auto *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    for (size_t i = 0; i < n; ++i) {
        crc ^= p[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1) + 1));
    }
    return ~crc;
}

} // namespace pld

#endif // PLD_COMMON_HASH_H
