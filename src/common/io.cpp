#include "common/io.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.h"

namespace fs = std::filesystem;

namespace pld {

std::string
IoStatus::message() const
{
    return err == 0 ? "ok" : std::strerror(err);
}

std::string
ioBasename(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path
                                      : path.substr(slash + 1);
}

// ---- PosixVfs ----------------------------------------------------

IoStatus
PosixVfs::writeFile(const std::string &path, const uint8_t *data,
                    size_t size, bool sync)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd < 0)
        return IoStatus::fail(errno);
    size_t off = 0;
    while (off < size) {
        ssize_t w = ::write(fd, data + off, size - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            int e = errno;
            ::close(fd);
            return IoStatus::fail(e);
        }
        off += static_cast<size_t>(w);
    }
    if (sync && ::fsync(fd) != 0) {
        int e = errno;
        ::close(fd);
        return IoStatus::fail(e);
    }
    if (::close(fd) != 0)
        return IoStatus::fail(errno);
    return IoStatus::good();
}

IoStatus
PosixVfs::readFile(const std::string &path,
                   std::vector<uint8_t> *out, size_t max_bytes)
{
    out->clear();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return IoStatus::fail(errno);
    uint8_t buf[64 * 1024];
    while (out->size() < max_bytes) {
        size_t want = std::min(sizeof(buf),
                               max_bytes - out->size());
        ssize_t r = ::read(fd, buf, want);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            int e = errno;
            ::close(fd);
            return IoStatus::fail(e);
        }
        if (r == 0)
            break;
        out->insert(out->end(), buf, buf + r);
    }
    ::close(fd);
    return IoStatus::good();
}

IoStatus
PosixVfs::rename(const std::string &from, const std::string &to)
{
    if (::rename(from.c_str(), to.c_str()) != 0)
        return IoStatus::fail(errno);
    return IoStatus::good();
}

IoStatus
PosixVfs::remove(const std::string &path)
{
    if (::unlink(path.c_str()) != 0 && errno != ENOENT)
        return IoStatus::fail(errno);
    return IoStatus::good();
}

IoStatus
PosixVfs::syncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return IoStatus::fail(errno);
    int rc = ::fsync(fd);
    int e = errno;
    ::close(fd);
    return rc == 0 ? IoStatus::good() : IoStatus::fail(e);
}

IoStatus
PosixVfs::listDir(const std::string &dir,
                  std::vector<DirEntry> *out)
{
    out->clear();
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return IoStatus::fail(ec.value());
    for (const auto &de : it) {
        std::error_code sec;
        if (!de.is_regular_file(sec) || sec)
            continue;
        DirEntry e;
        e.name = de.path().filename().string();
        struct stat st{};
        if (::stat(de.path().c_str(), &st) == 0)
            e.mtimeNs = static_cast<int64_t>(st.st_mtim.tv_sec) *
                            1000000000ll +
                        st.st_mtim.tv_nsec;
        out->push_back(std::move(e));
    }
    return IoStatus::good();
}

IoStatus
PosixVfs::mkdirs(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    return ec ? IoStatus::fail(ec.value()) : IoStatus::good();
}

std::shared_ptr<Vfs>
systemVfs()
{
    static std::shared_ptr<Vfs> vfs = std::make_shared<PosixVfs>();
    return vfs;
}

// ---- FaultVfs ----------------------------------------------------

bool
planHasIoFaults(const FaultPlan &plan)
{
    for (const auto &s : plan.specs) {
        switch (s.kind) {
          case FaultKind::IoShortWrite:
          case FaultKind::IoEnospc:
          case FaultKind::IoEio:
          case FaultKind::IoTornRename:
          case FaultKind::IoCrashPoint:
            return true;
          default:
            break;
        }
    }
    return false;
}

FaultVfs::FaultVfs(std::shared_ptr<Vfs> base, FaultPlan plan)
    : base_(std::move(base)), inj_(std::move(plan))
{
}

bool
FaultVfs::fires(FaultKind k, const std::string &site)
{
    int attempt;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        attempt = arrivals_[std::string(faultKindName(k)) + ":" +
                            site]++;
    }
    return inj_.fires(k, site, attempt);
}

IoStatus
FaultVfs::writeFile(const std::string &path, const uint8_t *data,
                    size_t size, bool sync)
{
    const std::string site = ioBasename(path);
    if (fires(FaultKind::IoEio, site))
        return IoStatus::fail(EIO);
    // Short write and ENOSPC persist a prefix before failing — the
    // torn state a real full/flaky disk leaves behind.
    if (fires(FaultKind::IoShortWrite, site)) {
        base_->writeFile(path, data, size / 2, sync);
        return IoStatus::fail(EIO);
    }
    if (fires(FaultKind::IoEnospc, site)) {
        base_->writeFile(path, data, size / 2, sync);
        return IoStatus::fail(ENOSPC);
    }
    return base_->writeFile(path, data, size, sync);
}

IoStatus
FaultVfs::readFile(const std::string &path,
                   std::vector<uint8_t> *out, size_t max_bytes)
{
    if (fires(FaultKind::IoEio, ioBasename(path)))
        return IoStatus::fail(EIO);
    return base_->readFile(path, out, max_bytes);
}

IoStatus
FaultVfs::rename(const std::string &from, const std::string &to)
{
    // Sites by destination basename: that's the name a spec knows
    // ("lru.txt", "<key>.art"), not the transient ".tmp".
    const std::string site = ioBasename(to);
    if (fires(FaultKind::IoEio, site))
        return IoStatus::fail(EIO);
    if (fires(FaultKind::IoTornRename, site)) {
        // Simulate the classic rename-without-fsync crash: the
        // rename itself is durable but the source's data never all
        // reached disk, so the destination appears torn.
        std::vector<uint8_t> bytes;
        if (base_->readFile(from, &bytes).ok())
            base_->writeFile(from, bytes.data(), bytes.size() / 2,
                             false);
        return base_->rename(from, to);
    }
    return base_->rename(from, to);
}

IoStatus
FaultVfs::remove(const std::string &path)
{
    if (fires(FaultKind::IoEio, ioBasename(path)))
        return IoStatus::fail(EIO);
    return base_->remove(path);
}

IoStatus
FaultVfs::syncDir(const std::string &dir)
{
    if (fires(FaultKind::IoEio, ioBasename(dir)))
        return IoStatus::fail(EIO);
    return base_->syncDir(dir);
}

IoStatus
FaultVfs::listDir(const std::string &dir,
                  std::vector<DirEntry> *out)
{
    return base_->listDir(dir, out);
}

IoStatus
FaultVfs::mkdirs(const std::string &dir)
{
    return base_->mkdirs(dir);
}

void
FaultVfs::crashPoint(const std::string &site)
{
    // A '*N' count means "die on the Nth arrival", not "die on the
    // first N" (the process only dies once). fires() consumes this
    // arrival's ordinal; a counted spec that fires now but not on
    // the next ordinal is exactly at its Nth arrival. An uncounted
    // spec (count = INT_MAX) fires forever, so it kills on the
    // first arrival.
    int attempt;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        attempt = arrivals_[std::string(faultKindName(
                                FaultKind::IoCrashPoint)) +
                            ":" + site]++;
    }
    if (!inj_.fires(FaultKind::IoCrashPoint, site, attempt))
        return;
    bool uncounted = inj_.fires(FaultKind::IoCrashPoint, site,
                                std::numeric_limits<int>::max() - 1);
    bool last_of_count =
        !inj_.fires(FaultKind::IoCrashPoint, site, attempt + 1);
    if (uncounted ? attempt == 0 : last_of_count) {
        pld_warn("fault: io_crash_point at %s (arrival %d); "
                 "exiting without unwinding",
                 site.c_str(), attempt + 1);
        std::_Exit(kCrashExitCode);
    }
}

} // namespace pld
