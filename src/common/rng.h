/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic components (placer moves, workload generators, NoC
 * tie-breaking) draw from explicitly seeded Rng instances so that every
 * experiment in the harness is reproducible bit-for-bit.
 */

#ifndef PLD_COMMON_RNG_H
#define PLD_COMMON_RNG_H

#include <cstdint>

namespace pld {

/**
 * xoshiro256** generator. Small, fast, and good enough statistical
 * quality for annealing schedules and synthetic workloads.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Gaussian sample via Box-Muller (mean 0, sigma 1). */
    double gaussian();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    uint64_t s[4];
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace pld

#endif // PLD_COMMON_RNG_H
