/**
 * @file
 * Wall-clock stopwatch for compile-time measurement.
 *
 * Model code never reads the wall clock; only the compile-time tables
 * (Table 2, Fig 9, Fig 11) measure how long our own compiler engines
 * take, which is exactly what the paper measures.
 */

#ifndef PLD_COMMON_STOPWATCH_H
#define PLD_COMMON_STOPWATCH_H

#include <chrono>

#if defined(__linux__) || defined(__APPLE__)
#include <ctime>
#define PLD_HAS_THREAD_CPU_CLOCK 1
#endif

namespace pld {

/** Monotonic stopwatch reporting elapsed seconds. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart timing from now. */
    void reset() { start = Clock::now(); }

    /** Seconds elapsed since construction or last reset(). */
    double
    seconds() const
    {
        auto d = Clock::now() - start;
        return std::chrono::duration<double>(d).count();
    }

    /** Milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

/**
 * CPU-time stopwatch for the calling thread. Unlike wall clocks it
 * excludes time spent descheduled, so a stage timed on a machine
 * whose cores are oversubscribed (parallel page compiles, loaded CI
 * runners) still reports what the stage would cost on a dedicated
 * node — the quantity Table 2's per-operator compile model needs.
 * Falls back to the wall clock on platforms without a per-thread
 * CPU clock.
 */
class ThreadCpuStopwatch
{
  public:
    ThreadCpuStopwatch() { reset(); }

    void reset() { start = now(); }

    double seconds() const { return now() - start; }

  private:
    static double
    now()
    {
#ifdef PLD_HAS_THREAD_CPU_CLOCK
        timespec ts;
        if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
            return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
#endif
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
            .count();
    }

    double start = 0;
};

} // namespace pld

#endif // PLD_COMMON_STOPWATCH_H
