/**
 * @file
 * Wall-clock stopwatch for compile-time measurement.
 *
 * Model code never reads the wall clock; only the compile-time tables
 * (Table 2, Fig 9, Fig 11) measure how long our own compiler engines
 * take, which is exactly what the paper measures.
 */

#ifndef PLD_COMMON_STOPWATCH_H
#define PLD_COMMON_STOPWATCH_H

#include <chrono>

namespace pld {

/** Monotonic stopwatch reporting elapsed seconds. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart timing from now. */
    void reset() { start = Clock::now(); }

    /** Seconds elapsed since construction or last reset(). */
    double
    seconds() const
    {
        auto d = Clock::now() - start;
        return std::chrono::duration<double>(d).count();
    }

    /** Milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

} // namespace pld

#endif // PLD_COMMON_STOPWATCH_H
