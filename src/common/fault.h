/**
 * @file
 * Deterministic fault injection for the compile pipeline AND the
 * live-reconfiguration runtime.
 *
 * Recovery code that only runs when a design is congested is
 * recovery code that never runs in CI. The FaultInjector lets tests
 * (and users, via the PLD_FAULT environment variable) force every
 * failure the pipeline knows how to survive — routing infeasibility,
 * timing misses, cache corruption, and mid-compile exceptions — at
 * chosen operators and attempts. The same plan drives the runtime
 * faults partial reconfiguration introduces: corrupted or dropped
 * config packets, pages that hang after a swap, and stalled config
 * DMA (see sys::SystemSim::swapPage).
 *
 * Decisions are a pure function of (plan seed, fault kind, operator
 * name, attempt number, salt): no shared mutable state, so injection
 * is thread-safe and bit-for-bit reproducible no matter how compiles
 * are scheduled. The attempt number encodes both the cache claim
 * generation and the retry-ladder step (see kAttemptStride), so
 * "fail the first N attempts" specs let a fault heal after the
 * ladder escalates — exercising recovery, not just failure. Runtime
 * faults reuse the same coordinate system: attempt = swap-attempt *
 * kAttemptStride + retransmission index, with the config-packet
 * ordinal as the salt, so a "*N" spec corrupts the first N
 * transmissions of every packet and then heals under retransmit.
 *
 * Spec grammar (PLD_FAULT or CompileOptions::faults):
 *
 *   spec      := entry (';' entry)*
 *   entry     := kind ':' site ['*' count] ['@' probability]
 *   kind      := route_fail | timing_miss | cache_corrupt | throw
 *              | config_drop | config_corrupt | page_hang
 *              | dma_stall | io_short_write | io_enospc | io_eio
 *              | io_torn_rename | io_crash_point
 *   site      := op | tenant '/' op
 *   op        := operator name, or '*' for every operator
 *   tenant    := tenant name, or '*' for every tenant
 *
 * The io_* kinds drive the FaultVfs seam (common/io.h) under the
 * artifact store rather than the compile pipeline: their site is a
 * file basename ("lru.txt", "<16-hex>.art", "*") or, for
 * io_crash_point, a named crash site ("store.put.tmp_written").
 * Their attempt coordinate is the per-site arrival ordinal, and
 * io_crash_point's '*N' selects the Nth arrival — the process dies
 * exactly once, so "first N" semantics would be meaningless.
 *
 *   "io_enospc:lru.txt*2"   — the first two recency-index writes
 *                             hit a full disk, the third succeeds.
 *   "io_crash_point:store.put.entry_renamed*3"
 *                           — kill -9 equivalent on the third put
 *                             that survives its entry rename.
 *
 * Multi-tenant runs scope fault sites per tenant: a SystemSim whose
 * SystemConfig::faultScope is "t1" reports its fault coordinates as
 * "t1/<op>", so "page_hang:t1/ * " (wildcard op, written here with
 * spaces only to keep this comment intact) hangs only tenant t1's
 * pages while "config_corrupt: * /fc" corrupts operator fc in every
 * tenant. A bare "*" still matches every site, scoped or not; a bare
 * op name never matches a scoped site (a hostile-tenant plan cannot
 * leak into a tenant it does not name).
 *
 *   "route_fail:flow_calc*2" — flow_calc's first two route attempts
 *                             are infeasible, the third succeeds.
 *   "timing_miss:*@0.25"    — a deterministic 25% of timing checks
 *                             miss (hash-coin per site, not random).
 *   "throw:s1"              — every compile of s1 throws mid-flight.
 *   "config_corrupt:fc*2"   — the first two transmissions of every
 *                             config packet of a swap of fc arrive
 *                             with a bad CRC; retransmits heal.
 *   "page_hang:fc"          — fc never comes back up after a swap;
 *                             the watchdog aborts and rolls back.
 *
 * A malformed entry is rejected with a structured Diagnostic
 * (CompileCode::FaultSpecInvalid) carrying the offending entry text
 * and its byte offset in the spec — parse() throws CompileError, it
 * never silently drops or half-accepts an entry.
 */

#ifndef PLD_COMMON_FAULT_H
#define PLD_COMMON_FAULT_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/diag.h"

namespace pld {

enum class FaultKind : uint8_t {
    /** Force the router to report overused tiles. */
    RouteFail,
    /** Derate the achieved Fmax below the required clock. */
    TimingMiss,
    /** Corrupt the cached artifact's stored checksum. */
    CacheCorrupt,
    /** Throw a CompileError mid-compile. */
    CompileThrow,
    /** Runtime: drop a reconfiguration config packet in flight. */
    ConfigDrop,
    /** Runtime: flip a payload bit so the packet CRC check fails. */
    ConfigCorrupt,
    /** Runtime: the page never activates after reconfiguration. */
    PageHang,
    /** Runtime: the config DMA engine stalls mid-stream. */
    DmaStall,
    /** I/O: a file write persists only a prefix, then fails. */
    IoShortWrite,
    /** I/O: a file write fails ENOSPC after a partial prefix. */
    IoEnospc,
    /** I/O: a read/write/rename fails EIO outright. */
    IoEio,
    /** I/O: a rename lands but the destination is torn (simulates
     * a crash after rename-without-fsync). */
    IoTornRename,
    /** I/O: exit the process (kill -9 equivalent) at a named crash
     * site; '*N' picks the Nth arrival. */
    IoCrashPoint,
};

const char *faultKindName(FaultKind k);

/**
 * True when fault-site pattern @p pattern matches site name @p op.
 * A pattern is "*", a literal name, or "tenant/op" where either
 * component may be "*"; a scoped pattern only matches scoped sites
 * and an unscoped literal only matches unscoped sites.
 */
bool faultSiteMatches(const std::string &pattern,
                      const std::string &op);

/** One injected fault site. */
struct FaultSpec
{
    FaultKind kind = FaultKind::RouteFail;
    /** Site pattern: op, "*", or "tenant/op" (see faultSiteMatches). */
    std::string op = "*";
    /** Fire only on attempt numbers < count. */
    int count = std::numeric_limits<int>::max();
    /** Fire with this probability (deterministic hash coin). */
    double probability = 1.0;
};

/** A parsed set of fault sites plus the decision seed. */
struct FaultPlan
{
    std::vector<FaultSpec> specs;
    uint64_t seed = 1;

    bool empty() const { return specs.empty(); }

    /**
     * Parse the spec grammar. A malformed or unknown entry throws
     * CompileError whose Diagnostic (code FaultSpecInvalid, stage
     * Fault) names the entry text and its byte offset in @p spec.
     */
    static FaultPlan parse(const std::string &spec);

    /** Plan from PLD_FAULT / PLD_FAULT_SEED (empty when unset);
     * fatal()s with the rendered diagnostic on a malformed spec. */
    static FaultPlan fromEnv();
};

/**
 * Attempt numbers passed to fires() advance by this stride per cache
 * claim generation, with the retry-ladder step in the low bits:
 * attempt = generation * kAttemptStride + ladderStep. A "*N" spec
 * with N <= kAttemptStride therefore scopes its faults to the first
 * compile of an artifact; recompiles (after eviction) run clean.
 * The runtime swap path uses the same stride with the swap attempt
 * in the high bits and the retransmission index in the low bits.
 */
constexpr int kFaultAttemptStride = 16;

/** Stateless decision engine over a FaultPlan. */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(FaultPlan plan) : plan(std::move(plan)) {}

    bool enabled() const { return !plan.empty(); }

    /**
     * Should fault @p k fire at operator @p op, attempt @p attempt?
     * Pure function of the plan — thread-safe, reproducible.
     * @p salt distinguishes probabilistic sites that share an
     * attempt coordinate (e.g. config packets of one transmission
     * round); it never affects counted (non-probabilistic) specs.
     */
    bool fires(FaultKind k, const std::string &op, int attempt,
               uint64_t salt = 0) const;

  private:
    FaultPlan plan;
};

} // namespace pld

#endif // PLD_COMMON_FAULT_H
