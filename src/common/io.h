/**
 * @file
 * The VFS seam: every byte the artifact store persists goes through
 * a Vfs, so crash-safety code has something to test against.
 *
 * The PR-2 FaultInjector made the compile pipeline's recovery paths
 * runnable in CI; this file extends the same philosophy one layer
 * down, to the filesystem. Durability code — fsync-before-rename,
 * tmp-file quarantine, ENOSPC degradation — is exactly the code
 * that never runs on a healthy developer machine, so the store
 * takes a Vfs instead of calling POSIX directly:
 *
 *  - PosixVfs is the real thing: O_TRUNC writes with optional
 *    fsync, whole-file reads, rename, unlink, and directory fsync.
 *  - FaultVfs wraps any Vfs and injects deterministic, seeded I/O
 *    faults driven by the PLD_FAULT grammar (common/fault.h), using
 *    the file's basename — or a named crash site — as the fault
 *    site:
 *
 *      io_short_write  write persists only a prefix, then fails
 *      io_enospc       write persists a prefix, then fails ENOSPC
 *      io_eio          read/write/rename fails EIO, nothing written
 *      io_torn_rename  rename "succeeds" but the destination is
 *                      torn (simulates rename-without-fsync crash)
 *      io_crash_point  the process exits immediately (as if SIGKILL
 *                      landed) at a named crash site; '*N' selects
 *                      the Nth arrival at that site
 *
 * Determinism contract: fault decisions are a pure function of
 * (plan seed, kind, site, per-site arrival ordinal). All store I/O
 * runs under the store's mutex, so the per-site ordinal sequence —
 * and therefore every injected fault — is identical at any
 * PLD_THREADS as long as the request sequence per site is.
 *
 * Crash sites the store declares (see svc/store.cpp):
 *
 *   store.put.begin          entered put(), nothing written yet
 *   store.put.tmp_written    entry tmp written + fsynced
 *   store.put.entry_renamed  tmp renamed over the entry file
 *   store.put.dir_synced     directory entry durable
 *   store.put.done           recency index persisted
 *   store.evict.removed      an LRU victim's file unlinked
 *   store.get.before_read    about to read an existing entry
 *   store.get.evicted        a corrupt entry evicted
 *   store.index.tmp_written  lru.txt.tmp written + fsynced
 *   store.index.renamed      lru.txt.tmp renamed over lru.txt
 *   store.open.recovered     crash-recovery scan finished
 */

#ifndef PLD_COMMON_IO_H
#define PLD_COMMON_IO_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault.h"

namespace pld {

/** Outcome of one VFS operation: ok() or an errno value. */
struct IoStatus
{
    int err = 0;

    bool ok() const { return err == 0; }
    /** strerror text; "ok" when err == 0. */
    std::string message() const;

    static IoStatus good() { return IoStatus{}; }
    static IoStatus fail(int e) { return IoStatus{e}; }
};

/** One directory entry from Vfs::listDir. */
struct DirEntry
{
    std::string name; ///< basename, not the full path
    /** Modification time in nanoseconds since epoch (recency
     * rebuild when lru.txt is missing or damaged). */
    int64_t mtimeNs = 0;
};

/**
 * The filesystem surface the artifact store needs — small enough to
 * wrap with a fault injector, wide enough that no durability-
 * relevant syscall bypasses the seam.
 */
class Vfs
{
  public:
    virtual ~Vfs() = default;

    /**
     * Create/truncate @p path and write all @p size bytes; when
     * @p sync, fsync before closing so the data survives a crash
     * that happens after this call returns ok.
     */
    virtual IoStatus writeFile(const std::string &path,
                               const uint8_t *data, size_t size,
                               bool sync) = 0;

    /** Read up to @p max_bytes of @p path into @p out (whole file
     * by default). ENOENT is an error like any other. */
    virtual IoStatus
    readFile(const std::string &path, std::vector<uint8_t> *out,
             size_t max_bytes = static_cast<size_t>(-1)) = 0;

    virtual IoStatus rename(const std::string &from,
                            const std::string &to) = 0;

    /** Unlink @p path; a missing file is ok (idempotent). */
    virtual IoStatus remove(const std::string &path) = 0;

    /** fsync the directory itself, making renames/unlinks durable. */
    virtual IoStatus syncDir(const std::string &dir) = 0;

    /** List regular files directly under @p dir. */
    virtual IoStatus listDir(const std::string &dir,
                             std::vector<DirEntry> *out) = 0;

    virtual IoStatus mkdirs(const std::string &dir) = 0;

    /**
     * A named crash site. The real VFS does nothing; a FaultVfs
     * whose plan has io_crash_point matching @p site exits the
     * process here without unwinding — the closest injectable
     * approximation of kill -9 between two syscalls.
     */
    virtual void crashPoint(const std::string &site) { (void)site; }
};

/** The real POSIX filesystem. Stateless; share one freely. */
class PosixVfs : public Vfs
{
  public:
    IoStatus writeFile(const std::string &path, const uint8_t *data,
                       size_t size, bool sync) override;
    IoStatus readFile(const std::string &path,
                      std::vector<uint8_t> *out,
                      size_t max_bytes) override;
    IoStatus rename(const std::string &from,
                    const std::string &to) override;
    IoStatus remove(const std::string &path) override;
    IoStatus syncDir(const std::string &dir) override;
    IoStatus listDir(const std::string &dir,
                     std::vector<DirEntry> *out) override;
    IoStatus mkdirs(const std::string &dir) override;
};

/** The process-wide shared PosixVfs (what you get by passing no
 * Vfs to the store). */
std::shared_ptr<Vfs> systemVfs();

/**
 * Deterministic fault-injecting wrapper. Faults are decided by the
 * embedded FaultInjector over (kind, site, arrival ordinal): the
 * site of a file operation is the file's basename, the site of a
 * crash point is its name. Arrival ordinals count per (kind, site)
 * inside this FaultVfs instance, so a spec like
 * "io_enospc:lru.txt*2" fails the first two lru.txt writes and
 * heals, and "io_crash_point:store.put.tmp_written*3" kills the
 * process on the third put that reaches that site.
 */
class FaultVfs : public Vfs
{
  public:
    FaultVfs(std::shared_ptr<Vfs> base, FaultPlan plan);

    IoStatus writeFile(const std::string &path, const uint8_t *data,
                       size_t size, bool sync) override;
    IoStatus readFile(const std::string &path,
                      std::vector<uint8_t> *out,
                      size_t max_bytes) override;
    IoStatus rename(const std::string &from,
                    const std::string &to) override;
    IoStatus remove(const std::string &path) override;
    IoStatus syncDir(const std::string &dir) override;
    IoStatus listDir(const std::string &dir,
                     std::vector<DirEntry> *out) override;
    IoStatus mkdirs(const std::string &dir) override;
    void crashPoint(const std::string &site) override;

    /** Process exit code used by an io_crash_point abort (matches
     * the 128+SIGKILL convention the chaos harness expects). */
    static constexpr int kCrashExitCode = 137;

  private:
    /** Next arrival ordinal for (kind, site) — then test the plan. */
    bool fires(FaultKind k, const std::string &site);

    std::shared_ptr<Vfs> base_;
    FaultInjector inj_;
    std::mutex mtx_;
    std::map<std::string, int> arrivals_;
};

/** True when @p plan contains any io_* fault kind (used by pldd to
 * decide whether the store needs a FaultVfs wrapper). */
bool planHasIoFaults(const FaultPlan &plan);

/** basename of @p path ("/a/b/c.art" -> "c.art"). */
std::string ioBasename(const std::string &path);

} // namespace pld

#endif // PLD_COMMON_IO_H
