#include "common/diag.h"

#include <sstream>

namespace pld {

const char *
compileStageName(CompileStage s)
{
    switch (s) {
      case CompileStage::Hls: return "hls";
      case CompileStage::Synth: return "synth";
      case CompileStage::Place: return "place";
      case CompileStage::Route: return "route";
      case CompileStage::Timing: return "timing";
      case CompileStage::Bitgen: return "bitgen";
      case CompileStage::Cache: return "cache";
      case CompileStage::Link: return "link";
      case CompileStage::Fault: return "fault";
      case CompileStage::Swap: return "swap";
      case CompileStage::Tenancy: return "tenancy";
    }
    return "?";
}

const char *
compileCodeName(CompileCode c)
{
    switch (c) {
      case CompileCode::Ok: return "ok";
      case CompileCode::RouteInfeasible: return "route-infeasible";
      case CompileCode::TimingMiss: return "timing-miss";
      case CompileCode::PlaceInfeasible: return "place-infeasible";
      case CompileCode::CacheCorrupt: return "cache-corrupt";
      case CompileCode::CompileException: return "compile-exception";
      case CompileCode::DoesNotFit: return "does-not-fit";
      case CompileCode::FaultSpecInvalid: return "fault-spec-invalid";
      case CompileCode::SwapRejected: return "swap-rejected";
      case CompileCode::AdmissionRejected: return "admission-rejected";
      case CompileCode::TenantFaulted: return "tenant-faulted";
      case CompileCode::IoError: return "io-error";
      case CompileCode::DeadlineExceeded: return "deadline-exceeded";
    }
    return "?";
}

bool
compileCodeRetriable(CompileCode c)
{
    switch (c) {
      case CompileCode::RouteInfeasible:
      case CompileCode::TimingMiss:
      case CompileCode::PlaceInfeasible:
      case CompileCode::CacheCorrupt:
      case CompileCode::CompileException:
        return true;
      case CompileCode::SwapRejected:
      case CompileCode::AdmissionRejected:
        // A full queue drains; a later retry may be admitted.
        return true;
      case CompileCode::DeadlineExceeded:
        // A hung daemon may be mid-restart; retry with backoff.
        return true;
      case CompileCode::Ok:
      case CompileCode::DoesNotFit:
      case CompileCode::FaultSpecInvalid:
      case CompileCode::TenantFaulted:
      case CompileCode::IoError:
        return false;
    }
    return false;
}

const char *
diagSeverityName(DiagSeverity s)
{
    switch (s) {
      case DiagSeverity::Info: return "info";
      case DiagSeverity::Warning: return "warning";
      case DiagSeverity::Error: return "error";
    }
    return "?";
}

std::string
Diagnostic::render() const
{
    std::ostringstream os;
    os << "[" << diagSeverityName(severity) << "] "
       << compileStageName(stage) << " ";
    if (!op.empty())
        os << op;
    if (page >= 0)
        os << "@page" << page;
    os << ": " << compileCodeName(code);
    if (!detail.empty())
        os << ": " << detail;
    if (retriable)
        os << " (retriable)";
    return os.str();
}

bool
CompileStatus::ok() const
{
    for (const auto &d : diags) {
        if (d.severity == DiagSeverity::Error)
            return false;
    }
    return true;
}

CompileCode
CompileStatus::firstError() const
{
    for (const auto &d : diags) {
        if (d.severity == DiagSeverity::Error)
            return d.code;
    }
    return CompileCode::Ok;
}

void
CompileStatus::add(Diagnostic d)
{
    diags.push_back(std::move(d));
}

void
CompileStatus::merge(const CompileStatus &o)
{
    diags.insert(diags.end(), o.diags.begin(), o.diags.end());
}

std::string
CompileStatus::render() const
{
    std::string out;
    for (const auto &d : diags) {
        out += d.render();
        out += "\n";
    }
    return out;
}

} // namespace pld
