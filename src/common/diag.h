/**
 * @file
 * Structured compile diagnostics: the error model of the compile
 * pipeline.
 *
 * Every stage (HLS, synthesis, place, route, timing, bitgen, the
 * artifact cache, and linking) reports outcomes as Diagnostics
 * instead of free-form warnings, so the compile manager can decide
 * per failure whether to retry, escalate, degrade, or give up — and
 * the build report can say exactly what happened. A Diagnostic is a
 * value, not a log line: it carries the failing stage, the operator
 * and page it concerns, and whether a retry could plausibly change
 * the outcome (routing congestion: yes; an operator that exceeds
 * every page type: no).
 */

#ifndef PLD_COMMON_DIAG_H
#define PLD_COMMON_DIAG_H

#include <stdexcept>
#include <string>
#include <vector>

namespace pld {

/** Pipeline stage a diagnostic originates from. */
enum class CompileStage : uint8_t {
    Hls,
    Synth,
    Place,
    Route,
    Timing,
    Bitgen,
    Cache,
    Link,
    /** Fault-injection plan handling (PLD_FAULT parsing). */
    Fault,
    /** Runtime hot-swap engine (request queueing / execution). */
    Swap,
    /** Multi-tenant scheduler (admission, eviction, fault domains). */
    Tenancy,
};

const char *compileStageName(CompileStage s);

/** Outcome codes for one compile step or one whole operator. */
enum class CompileCode : uint8_t {
    Ok,
    /** Router finished with overused tiles (congestion). */
    RouteInfeasible,
    /** Achieved Fmax below the required clock. */
    TimingMiss,
    /** Placer could not fit the netlist into the region. */
    PlaceInfeasible,
    /** Cached artifact failed its checksum. */
    CacheCorrupt,
    /** The compiling thread threw mid-compile. */
    CompileException,
    /** Operator exceeds every available page type. */
    DoesNotFit,
    /** Malformed or unknown PLD_FAULT spec entry. */
    FaultSpecInvalid,
    /** Hot-swap request refused at queueing time (full queue,
     * duplicate target, unknown or quarantined page). */
    SwapRejected,
    /** Tenant or request refused by multi-tenant admission control. */
    AdmissionRejected,
    /** Tenant exhausted its fault retry budget and was evicted. */
    TenantFaulted,
    /** Durable-store or wire I/O failed (short write, ENOSPC, EIO,
     * rename failure). The daemon degrades instead of dying. */
    IoError,
    /** A client-side send/recv deadline expired (hung or restarting
     * daemon). Always retriable. */
    DeadlineExceeded,
};

const char *compileCodeName(CompileCode c);

/** Whether a retry (more effort / new seed / bigger page) could
 * plausibly turn this code into Ok. */
bool compileCodeRetriable(CompileCode c);

enum class DiagSeverity : uint8_t { Info, Warning, Error };

const char *diagSeverityName(DiagSeverity s);

/** One structured compile event. */
struct Diagnostic
{
    CompileCode code = CompileCode::Ok;
    CompileStage stage = CompileStage::Hls;
    DiagSeverity severity = DiagSeverity::Info;
    /** Operator concerned; empty for whole-build events. */
    std::string op;
    /** Page concerned; -1 when not page-specific. */
    int page = -1;
    bool retriable = false;
    std::string detail;

    /** "[error] route s1@page7: routing left 3 overused tiles". */
    std::string render() const;
};

/**
 * Accumulated diagnostics of one compile step / operator / build.
 * ok() is false iff any Error-severity diagnostic is present, so a
 * failed stage cannot be ignored by forgetting to check a flag
 * buried in a result struct.
 */
struct CompileStatus
{
    std::vector<Diagnostic> diags;

    bool ok() const;
    /** First Error diagnostic's code, or Ok. */
    CompileCode firstError() const;
    void add(Diagnostic d);
    /** Append all of @p o's diagnostics. */
    void merge(const CompileStatus &o);
    std::string render() const;
};

/**
 * Exception carrying a Diagnostic across the compile pipeline. Thrown
 * for mid-compile failures (including injected ones); the artifact
 * cache converts it into a failure sentinel so waiters never hang.
 */
class CompileError : public std::runtime_error
{
  public:
    explicit CompileError(Diagnostic d)
        : std::runtime_error(d.render()), diag_(std::move(d))
    {
    }

    const Diagnostic &diag() const { return diag_; }

  private:
    Diagnostic diag_;
};

} // namespace pld

#endif // PLD_COMMON_DIAG_H
