/**
 * @file
 * Plain-text table formatter used by the benchmark harness to print
 * paper-style tables (Tab 1-4) and figure series.
 */

#ifndef PLD_COMMON_TABLE_H
#define PLD_COMMON_TABLE_H

#include <string>
#include <vector>

namespace pld {

/**
 * Column-aligned text table. Collect rows of strings, then render with
 * toString(). The first row added is treated as the header.
 */
class Table
{
  public:
    /** Create a table titled @p title (printed above the grid). */
    explicit Table(std::string title = "") : title(std::move(title)) {}

    /** Add a row of cells. Rows may have differing lengths. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: build a row from heterogeneous printable values. */
    template <typename... Args>
    void
    row(Args &&...args)
    {
        addRow({cellOf(std::forward<Args>(args))...});
    }

    /** Render the table with aligned columns and a header rule. */
    std::string toString() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    static std::string cellOf(const std::string &s) { return s; }
    static std::string cellOf(const char *s) { return s; }
    static std::string cellOf(double v);
    static std::string cellOf(int v) { return std::to_string(v); }
    static std::string cellOf(long v) { return std::to_string(v); }
    static std::string cellOf(long long v) { return std::to_string(v); }
    static std::string cellOf(unsigned v) { return std::to_string(v); }
    static std::string
    cellOf(unsigned long v)
    {
        return std::to_string(v);
    }
    static std::string
    cellOf(unsigned long long v)
    {
        return std::to_string(v);
    }

    std::string title;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with @p digits significant decimal places. */
std::string fmtDouble(double v, int digits = 2);

/** Format seconds compactly, e.g. "3.2s", "540ms". */
std::string fmtSeconds(double s);

} // namespace pld

#endif // PLD_COMMON_TABLE_H
