/**
 * @file
 * Fixed-size worker pool used for parallel page compilation.
 *
 * The PLD -O1 flow compiles independent pages concurrently (paper
 * Sec 6.2: "All the operators' compilations can be performed in
 * parallel"). This pool is the stand-in for the paper's Slurm cluster.
 */

#ifndef PLD_COMMON_THREAD_POOL_H
#define PLD_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pld {

/**
 * Simple work-queue thread pool. submit() enqueues a job; wait()
 * blocks until every submitted job has finished. The pool joins its
 * workers on destruction.
 */
class ThreadPool
{
  public:
    /** Spawn @p num_workers threads (0 means hardware_concurrency). */
    explicit ThreadPool(unsigned num_workers = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job for execution on some worker. */
    void submit(std::function<void()> job);

    /** Block until all submitted jobs have completed. */
    void wait();

    /** Number of worker threads. */
    unsigned workerCount() const { return workers.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable cvWork;
    std::condition_variable cvDone;
    unsigned active = 0;
    bool stopping = false;
};

} // namespace pld

#endif // PLD_COMMON_THREAD_POOL_H
